package gcke

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/flight"
	"repro/internal/gpu"
	"repro/internal/kern"
	"repro/internal/sm"
	"repro/internal/stats"
)

// Session runs simulations against one fixed architecture configuration
// and caches isolated-execution profiles (IPCs and scalability curves),
// which Warped-Slicer, SMK-(P+W) and the normalization of every metric
// depend on.
//
// A Session is safe for concurrent use: the profile caches are guarded
// by a mutex and concurrent requests for the same uncached profile are
// deduplicated, so exactly one profiling simulation runs per (kernel,
// occupancy) point no matter how many workers need it. Cached results
// are shared and must be treated as immutable by callers. The only
// exception is ProfileCycles, which must be set before the Session is
// shared across goroutines.
type Session struct {
	cfg    Config
	cycles int64
	// ProfileCycles is the length of isolated profiling runs (defaults
	// to the evaluation length). Set it before sharing the Session.
	ProfileCycles int64
	// Check enables the simulator's per-cycle invariant watchdog on
	// every run started through this session (evaluation and profiling
	// alike). Set it before sharing the Session.
	Check bool
	// Workers sets the cycle engine's intra-run parallelism (per-cycle
	// SM tick fan-out) for every run started through this session. 0
	// defaults to GOMAXPROCS; results are byte-identical for any value.
	// Set it before sharing the Session.
	Workers int
	// PartWorkers sets the memory-side fan-out: L2+DRAM partitions ticked
	// concurrently within each cycle (gpu.Options.PartWorkers). 0 defaults
	// to GOMAXPROCS capped at the partition count; results are
	// byte-identical for any value. Set it before sharing the Session.
	PartWorkers int
	// PhaseTime enables per-phase wall-clock counters on every run
	// (gpu.Options.PhaseTime); read the totals via gpu.PhaseTotals. Set it
	// before sharing the Session.
	PhaseTime bool
	// ForkWarmup enables snapshot forking for schemes with Warmup > 0:
	// runs in the same warmup family (identical config, kernels,
	// partition and warmup length) simulate the shared unmanaged prefix
	// once, and every family member forks from the warmed snapshot
	// instead of re-simulating it. Results are byte-identical either
	// way — both paths execute the same warm-then-manage sequence. Set
	// it before sharing the Session.
	ForkWarmup bool

	mu       sync.Mutex                  // guards the four caches below
	isoIPC   map[string]map[int]float64  // name -> TBs -> IPC
	isoRun   map[string]*stats.RunResult // name -> full-occupancy isolated result
	isoSerie map[string]*stats.RunResult // name -> isolated result with series
	snaps    map[string]*gpu.Snapshot    // warmup-family key -> warmed machine

	// In-flight deduplication for cache misses (one simulation per key
	// even under concurrent demand).
	runFlight   flight.Group[string, *stats.RunResult]
	serieFlight flight.Group[string, *stats.RunResult]
	ipcFlight   flight.Group[string, float64]
	snapFlight  flight.Group[string, *gpu.Snapshot]

	// Fork observability (read via ForkStats, exported by /statz).
	forksTaken    atomic.Int64
	snapshotBytes atomic.Int64
}

// NewSession creates a session simulating cycles cycles per run.
func NewSession(cfg Config, cycles int64) *Session {
	return &Session{
		cfg:           cfg,
		cycles:        cycles,
		ProfileCycles: cycles,
		isoIPC:        make(map[string]map[int]float64),
		isoRun:        make(map[string]*stats.RunResult),
		isoSerie:      make(map[string]*stats.RunResult),
		snaps:         make(map[string]*gpu.Snapshot),
	}
}

// ForkStats reports the session's snapshot-fork counters: how many runs
// were forked from a cached warm snapshot, and the total estimated
// footprint of the snapshots held.
func (s *Session) ForkStats() (forksTaken, snapshotBytes int64) {
	return s.forksTaken.Load(), s.snapshotBytes.Load()
}

// Config returns the session's architecture configuration.
func (s *Session) Config() Config { return s.cfg }

// Cycles returns the evaluation run length.
func (s *Session) Cycles() int64 { return s.cycles }

// interruptOf adapts ctx cancellation to the simulator's polled
// Interrupt hook (the cycle loop is synchronous, so cancellation is
// polled every 1024 cycles rather than select-driven).
func interruptOf(ctx context.Context) func() bool {
	if ctx == nil || ctx.Done() == nil {
		return nil
	}
	return func() bool { return ctx.Err() != nil }
}

// wrapInterrupt attaches the context's cancellation cause to a run
// interruption so callers can test errors.Is(err, context.Canceled) or
// context.DeadlineExceeded on top of gpu.ErrInterrupted.
func wrapInterrupt(ctx context.Context, err error) error {
	if err == nil || ctx == nil {
		return err
	}
	if cause := ctx.Err(); cause != nil && errors.Is(err, gpu.ErrInterrupted) {
		return fmt.Errorf("%w (%w)", err, cause)
	}
	return err
}

// RunIsolated simulates kernel d alone at full occupancy and caches the
// result.
func (s *Session) RunIsolated(d Kernel) (*RunResult, error) {
	return s.RunIsolatedCtx(context.Background(), d)
}

// RunIsolatedCtx is RunIsolated honouring ctx cancellation. Profile
// simulations are deduplicated across goroutines, so a run started on
// behalf of several waiters is interrupted only when the leader's ctx
// is cancelled; interrupted results are never cached, so a later call
// simply re-runs the profile.
func (s *Session) RunIsolatedCtx(ctx context.Context, d Kernel) (*RunResult, error) {
	s.mu.Lock()
	r, ok := s.isoRun[d.Name]
	s.mu.Unlock()
	if ok {
		return r, nil
	}
	return s.runFlight.Do(d.Name, func() (*stats.RunResult, error) {
		s.mu.Lock()
		r, ok := s.isoRun[d.Name]
		s.mu.Unlock()
		if ok {
			return r, nil
		}
		r, err := s.runIsolatedTBs(ctx, d, d.MaxTBsPerSM(&s.cfg), false)
		if err != nil {
			return nil, err
		}
		s.mu.Lock()
		s.isoRun[d.Name] = r
		s.mu.Unlock()
		return r, nil
	})
}

// RunIsolatedSeries is RunIsolated with 1 K-cycle series collection.
func (s *Session) RunIsolatedSeries(d Kernel) (*RunResult, error) {
	return s.RunIsolatedSeriesCtx(context.Background(), d)
}

// RunIsolatedSeriesCtx is RunIsolatedSeries honouring ctx cancellation.
func (s *Session) RunIsolatedSeriesCtx(ctx context.Context, d Kernel) (*RunResult, error) {
	s.mu.Lock()
	r, ok := s.isoSerie[d.Name]
	s.mu.Unlock()
	if ok {
		return r, nil
	}
	return s.serieFlight.Do(d.Name, func() (*stats.RunResult, error) {
		s.mu.Lock()
		r, ok := s.isoSerie[d.Name]
		s.mu.Unlock()
		if ok {
			return r, nil
		}
		r, err := s.runIsolatedTBs(ctx, d, d.MaxTBsPerSM(&s.cfg), true)
		if err != nil {
			return nil, err
		}
		s.mu.Lock()
		s.isoSerie[d.Name] = r
		s.mu.Unlock()
		return r, nil
	})
}

func (s *Session) runIsolatedTBs(ctx context.Context, d Kernel, tbs int, series bool) (*RunResult, error) {
	descs := []*kern.Desc{&d}
	opts := &gpu.Options{
		Cycles:      s.ProfileCycles,
		Quota:       gpu.UniformQuota(s.cfg.NumSMs, []int{tbs}),
		Series:      series,
		Interrupt:   interruptOf(ctx),
		Check:       gpu.CheckConfig{Enabled: s.Check},
		Workers:     s.Workers,
		PartWorkers: s.PartWorkers,
		PhaseTime:   s.PhaseTime,
	}
	if series {
		opts.Cycles = s.cycles
	}
	r, err := gpu.Run(s.cfg, descs, opts)
	return r, wrapInterrupt(ctx, err)
}

// IsolatedIPC returns kernel d's isolated IPC at n TBs per SM (cached).
func (s *Session) IsolatedIPC(d Kernel, n int) (float64, error) {
	return s.IsolatedIPCCtx(context.Background(), d, n)
}

// IsolatedIPCCtx is IsolatedIPC honouring ctx cancellation.
func (s *Session) IsolatedIPCCtx(ctx context.Context, d Kernel, n int) (float64, error) {
	if v, ok := s.lookupIPC(d.Name, n); ok {
		return v, nil
	}
	key := fmt.Sprintf("%s|%d", d.Name, n)
	return s.ipcFlight.Do(key, func() (float64, error) {
		if v, ok := s.lookupIPC(d.Name, n); ok {
			return v, nil
		}
		var v float64
		if n == d.MaxTBsPerSM(&s.cfg) {
			// Share the cached full-occupancy run.
			r, err := s.RunIsolatedCtx(ctx, d)
			if err != nil {
				return 0, err
			}
			v = r.Kernels[0].IPC
		} else {
			r, err := s.runIsolatedTBs(ctx, d, n, false)
			if err != nil {
				return 0, err
			}
			v = r.Kernels[0].IPC
		}
		s.storeIPC(d.Name, n, v)
		return v, nil
	})
}

func (s *Session) lookupIPC(name string, n int) (float64, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	v, ok := s.isoIPC[name][n]
	return v, ok
}

func (s *Session) storeIPC(name string, n int, v float64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	m, ok := s.isoIPC[name]
	if !ok {
		m = make(map[int]float64)
		s.isoIPC[name] = m
	}
	m[n] = v
}

// Curve returns kernel d's scalability curve: isolated IPC with 1..max
// TBs per SM (Figure 3(a)).
func (s *Session) Curve(d Kernel) ([]float64, error) {
	return s.CurveCtx(context.Background(), d)
}

// CurveCtx is Curve honouring ctx cancellation.
func (s *Session) CurveCtx(ctx context.Context, d Kernel) ([]float64, error) {
	max := d.MaxTBsPerSM(&s.cfg)
	out := make([]float64, max)
	for n := 1; n <= max; n++ {
		v, err := s.IsolatedIPCCtx(ctx, d, n)
		if err != nil {
			return nil, err
		}
		out[n-1] = v
	}
	return out, nil
}

// Classify returns the measured class of kernel d: memory-intensive if
// its isolated LSU-stall fraction is at least 20% (the paper's rule).
func (s *Session) Classify(d Kernel) (kern.Class, error) {
	return s.ClassifyCtx(context.Background(), d)
}

// ClassifyCtx is Classify honouring ctx cancellation.
func (s *Session) ClassifyCtx(ctx context.Context, d Kernel) (kern.Class, error) {
	r, err := s.RunIsolatedCtx(ctx, d)
	if err != nil {
		return kern.Compute, err
	}
	if r.LSUStallFrac() >= 0.20 {
		return kern.Memory, nil
	}
	return kern.Compute, nil
}

// Partition computes the per-SM TB partition a scheme would use for the
// workload, plus the theoretical Weighted Speedup at that point (only
// meaningful for Warped-Slicer).
func (s *Session) Partition(ds []Kernel, kind PartitionKind, manual []int) ([]int, float64, error) {
	return s.PartitionCtx(context.Background(), ds, kind, manual)
}

// PartitionCtx is Partition honouring ctx cancellation.
func (s *Session) PartitionCtx(ctx context.Context, ds []Kernel, kind PartitionKind, manual []int) ([]int, float64, error) {
	descs := toPtrs(ds)
	switch kind {
	case PartitionWarpedSlicer:
		curves := make([][]float64, len(ds))
		for i := range ds {
			c, err := s.CurveCtx(ctx, ds[i])
			if err != nil {
				return nil, 0, err
			}
			curves[i] = c
		}
		return wsSweetSpot(&s.cfg, descs, curves)
	case PartitionSMK:
		return core.DRFPartition(&s.cfg, descs), 0, nil
	case PartitionLeftover:
		return core.LeftoverQuota(&s.cfg, descs), 0, nil
	case PartitionEven:
		return core.EvenQuota(&s.cfg, descs), 0, nil
	case PartitionManual:
		if len(manual) != len(ds) {
			return nil, 0, fmt.Errorf("gcke: ManualTBs must have one entry per kernel")
		}
		return append([]int(nil), manual...), 0, nil
	case PartitionSpatial:
		return nil, 0, nil // spatial uses a per-SM matrix, not one row
	default:
		return nil, 0, fmt.Errorf("gcke: unknown partition kind %v", kind)
	}
}

func wsSweetSpot(cfg *Config, descs []*kern.Desc, curves [][]float64) ([]int, float64, error) {
	return core.SweetSpot(cfg, descs, curves)
}

// Checkpoint wires a persistent checkpoint store into one workload run.
// Latest is consulted once at run start (a valid checkpoint short-cuts
// the first cycles); Save is called every Every cycles with the encoded
// machine state. Both closures are pre-bound to the job's fingerprint
// by the caller (internal/runner) — the Session never sees keys.
// Checkpointing is strictly a recovery optimization: any Latest/Save
// failure degrades to a from-zero run / no further checkpoints, never
// to a run failure, and results are byte-identical either way.
type Checkpoint struct {
	Every  int64
	Latest func() (cycle int64, state []byte, ok bool)
	Save   func(cycle int64, state []byte) error
}

// RunWorkload simulates the kernels concurrently under scheme.
func (s *Session) RunWorkload(ds []Kernel, scheme Scheme) (*WorkloadResult, error) {
	return s.RunWorkloadCtx(context.Background(), ds, scheme)
}

// RunWorkloadCtx is RunWorkload honouring ctx: cancellation (or a
// deadline) interrupts the evaluation run and any profiling runs it
// triggers, returning an error wrapping both gpu.ErrInterrupted and the
// context's cause.
func (s *Session) RunWorkloadCtx(ctx context.Context, ds []Kernel, scheme Scheme) (*WorkloadResult, error) {
	res, _, err := s.RunWorkloadCheckpointedCtx(ctx, ds, scheme, nil)
	return res, err
}

// RunWorkloadCheckpointedCtx is RunWorkloadCtx with optional mid-job
// checkpointing: with a non-nil ck the evaluation run resumes from the
// latest valid checkpoint (resumedFrom reports the cycle, 0 for a
// from-zero run) and persists a new checkpoint every ck.Every cycles.
// Schemes whose evaluation leg re-enters the Session-side control plane
// mid-run — hook-driven controllers (DynWS, TBThrottle, L2MIL), UCP
// repartitioning, warmup legs — are silently ineligible and run
// normally: their out-of-engine state is not in the snapshot, and
// resuming them would diverge from an unfaulted run.
func (s *Session) RunWorkloadCheckpointedCtx(ctx context.Context, ds []Kernel, scheme Scheme, ck *Checkpoint) (*WorkloadResult, int64, error) {
	if len(ds) == 0 {
		return nil, 0, fmt.Errorf("gcke: empty workload")
	}
	if err := scheme.Validate(len(ds)); err != nil {
		return nil, 0, err
	}
	if scheme.Warmup >= s.cycles {
		return nil, 0, fmt.Errorf("gcke: Warmup (%d) must be shorter than the run (%d cycles)", scheme.Warmup, s.cycles)
	}
	descs := toPtrs(ds)

	// Normalization base and profile-driven inputs.
	isolated := make([]float64, len(ds))
	for i := range ds {
		r, err := s.RunIsolatedCtx(ctx, ds[i])
		if err != nil {
			return nil, 0, err
		}
		isolated[i] = r.Kernels[0].IPC
	}

	var quota [][]int
	var row []int
	var theoWS float64
	var dynws *core.DynWS
	switch scheme.Partition {
	case PartitionSpatial:
		quota = core.SpatialQuota(&s.cfg, descs)
	case PartitionWarpedSlicerDyn:
		// Online profiling: start from the even partition; the
		// controller reassigns quotas through the hook.
		dynws = core.NewDynWS(&s.cfg, descs)
		quota = gpu.UniformQuota(s.cfg.NumSMs, core.EvenQuota(&s.cfg, descs))
	default:
		var err error
		row, theoWS, err = s.PartitionCtx(ctx, ds, scheme.Partition, scheme.ManualTBs)
		if err != nil {
			return nil, 0, err
		}
		quota = gpu.UniformQuota(s.cfg.NumSMs, row)
	}

	opts := &gpu.Options{
		Cycles:      s.cycles,
		Quota:       quota,
		Series:      scheme.Series,
		Interrupt:   interruptOf(ctx),
		Check:       gpu.CheckConfig{Enabled: s.Check},
		Workers:     s.Workers,
		PartWorkers: s.PartWorkers,
		PhaseTime:   s.PhaseTime,
	}
	var hooks []func(*gpu.GPU, int64)
	if dynws != nil {
		hooks = append(hooks, dynws.Hook)
	}
	if scheme.TBThrottle {
		// Validate already rejected the partitionless kinds.
		hooks = append(hooks, core.NewTBThrottle(row).Hook)
	}

	// Memory issue policy.
	switch scheme.MemIssue {
	case MemIssueRBMI:
		opts.Policies.MemPolicy = func(smID, n int) sm.MemIssuePolicy { return core.NewRBMI(n) }
	case MemIssueQBMI:
		initRPM := make([]int, len(ds))
		for i := range ds {
			initRPM[i] = ds[i].ReqPerMinst
		}
		allZero := scheme.QBMIRefreshAllZero
		opts.Policies.MemPolicy = func(smID, n int) sm.MemIssuePolicy {
			q := core.NewQBMI(n, initRPM)
			q.RefreshAllZero = allZero
			return q
		}
	}

	// Limiter.
	switch scheme.Limiting {
	case LimitStatic:
		lims := append([]int(nil), scheme.StaticLimits...)
		opts.Policies.Limiter = func(smID, n int) sm.Limiter { return core.NewSMIL(lims) }
	case LimitDMIL:
		opts.Policies.Limiter = func(smID, n int) sm.Limiter { return core.NewDMIL(n) }
	case LimitGlobalDMIL:
		shared := core.NewGlobalDMIL(len(ds))
		opts.Policies.Limiter = func(smID, n int) sm.Limiter { return shared }
	case LimitL2MIL:
		shared := core.NewL2MIL(len(ds))
		opts.Policies.Limiter = func(smID, n int) sm.Limiter { return shared }
		hooks = append(hooks, shared.Hook)
	}

	// SMK warp-instruction quota.
	if scheme.SMKQuota {
		epoch := scheme.SMKEpoch
		if epoch <= 0 {
			epoch = 10 * 1024
		}
		iso := append([]float64(nil), isolated...)
		// Per-SM share of the machine-wide isolated IPC.
		for i := range iso {
			iso[i] /= float64(s.cfg.NumSMs)
		}
		opts.Policies.Gate = func(smID, n int) sm.IssueGate { return core.NewSMKGate(iso, epoch) }
	}

	// UCP cache partitioning.
	if scheme.UCP {
		opts.UCP = gpu.UCPConfig{Enabled: true, Interval: scheme.UCPInterval, MinWays: 1}
	}

	// Cache bypassing (Section 4.5 interplay study).
	if scheme.BypassL1 != nil {
		opts.BypassL1 = append([]bool(nil), scheme.BypassL1...)
	}

	if len(hooks) > 0 {
		opts.HookInterval = 1024
		opts.Hook = func(g *gpu.GPU, cycle int64) {
			for _, h := range hooks {
				h(g, cycle)
			}
		}
	}

	var res *stats.RunResult
	var resumedFrom int64
	var err error
	if ck != nil && ck.Every > 0 && opts.Hook == nil && !opts.UCP.Enabled && scheme.Warmup <= 0 {
		res, resumedFrom, err = s.executeCheckpointed(ctx, descs, opts, ck)
	} else {
		res, err = s.execute(ctx, descs, quota, scheme.Warmup, opts)
	}
	if err != nil {
		return nil, resumedFrom, wrapInterrupt(ctx, err)
	}
	if dynws != nil {
		row = dynws.Partition
		theoWS = dynws.TheoreticalWS
	}
	return &WorkloadResult{
		RunResult:     res,
		Scheme:        scheme,
		TBPartition:   row,
		IsolatedIPC:   isolated,
		TheoreticalWS: theoWS,
	}, resumedFrom, nil
}

// executeCheckpointed runs the evaluation simulation with mid-job
// checkpointing: build the machine exactly as a from-zero run would
// (gpu.New installs the scheme's policies and sizes series buckets from
// the full run length), adopt the latest valid checkpoint if one exists
// and run only the remaining cycles, persisting fresh checkpoints along
// the way. Every failure mode degrades — bad checkpoint bytes mean a
// from-zero run, a failing sink disables further checkpoints — so the
// result is byte-identical to an uncheckpointed run in all cases.
func (s *Session) executeCheckpointed(ctx context.Context, descs []*kern.Desc, opts *gpu.Options, ck *Checkpoint) (*stats.RunResult, int64, error) {
	g, err := gpu.New(s.cfg, descs, opts)
	if err != nil {
		return nil, 0, err
	}
	defer func() { g.Close() }()
	var resumedFrom int64
	if cycle, state, ok := ck.Latest(); ok && cycle > 0 && cycle < s.cycles {
		if sn, derr := gpu.DecodeSnapshot(state); derr == nil && sn.Cycle() == cycle {
			if rerr := g.RestoreCheckpoint(sn); rerr == nil {
				resumedFrom = cycle
			} else {
				// A failed restore may have partially overwritten the
				// machine; rebuild it for the from-zero fallback.
				g.Close()
				if g, err = gpu.New(s.cfg, descs, opts); err != nil {
					return nil, 0, err
				}
			}
		}
	}
	run := *opts
	run.Cycles = s.cycles - resumedFrom
	run.CheckpointEvery = ck.Every
	run.Checkpoint = func(g *gpu.GPU, cycle int64) error {
		sn, err := g.SnapshotCheckpoint()
		if err != nil {
			return err
		}
		state, err := gpu.EncodeSnapshot(sn)
		if err != nil {
			return err
		}
		return ck.Save(cycle, state)
	}
	if err := g.RunCycles(&run); err != nil {
		return nil, resumedFrom, err
	}
	return g.Result(), resumedFrom, nil
}

// execute runs the evaluation simulation. With warmup <= 0 it is a
// plain gpu.Run. With warmup > 0 it runs the two-leg warm-then-manage
// sequence: an unmanaged warmup leg (no issue policies, UCP or bypass),
// then InstallPolicies and the managed remainder. The fork path
// replaces the warm leg with a restore from the family's cached warm
// snapshot — everything after the warm boundary is the same code in
// both paths, which is what makes cold and forked runs byte-identical.
func (s *Session) execute(ctx context.Context, descs []*kern.Desc, quota [][]int, warmup int64, opts *gpu.Options) (*stats.RunResult, error) {
	if warmup <= 0 {
		return gpu.Run(s.cfg, descs, opts)
	}
	warmOpts := s.warmupOptions(ctx, quota, opts.Series)
	g, err := gpu.New(s.cfg, descs, warmOpts)
	if err != nil {
		return nil, err
	}
	defer g.Close()
	if s.ForkWarmup {
		sn, err := s.warmSnapshot(ctx, descs, quota, warmup, opts.Series)
		if err != nil {
			return nil, err
		}
		if err := g.Restore(sn); err != nil {
			return nil, err
		}
		s.forksTaken.Add(1)
	} else {
		warmLeg := *warmOpts
		warmLeg.Cycles = warmup
		if err := g.RunCycles(&warmLeg); err != nil {
			return nil, err
		}
	}
	g.InstallPolicies(opts)
	mainLeg := *opts
	mainLeg.Cycles = opts.Cycles - warmup
	if err := g.RunCycles(&mainLeg); err != nil {
		return nil, err
	}
	return g.Result(), nil
}

// warmupOptions builds the unmanaged warm leg's Options. Cycles carries
// the full run length — gpu.New sizes the series buckets from it, and
// the buckets must span both legs.
func (s *Session) warmupOptions(ctx context.Context, quota [][]int, series bool) *gpu.Options {
	return &gpu.Options{
		Cycles:      s.cycles,
		Quota:       quota,
		Series:      series,
		Interrupt:   interruptOf(ctx),
		Check:       gpu.CheckConfig{Enabled: s.Check},
		Workers:     s.Workers,
		PartWorkers: s.PartWorkers,
		PhaseTime:   s.PhaseTime,
	}
}

// familyKey fingerprints a warmup family: everything that shapes the
// warmed machine's state. Scheme mechanisms are deliberately absent —
// they only apply after the warm boundary, which is exactly why family
// members can share one snapshot.
func (s *Session) familyKey(descs []*kern.Desc, quota [][]int, warmup int64, series bool) (string, error) {
	payload := struct {
		Config  Config
		Kernels []*kern.Desc
		Quota   [][]int
		Cycles  int64
		Warmup  int64
		Series  bool
	}{s.cfg, descs, quota, s.cycles, warmup, series}
	b, err := json.Marshal(payload)
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:]), nil
}

// warmSnapshot returns the family's warmed snapshot, simulating the
// warmup prefix once per family no matter how many concurrent runs
// request it (flight-group deduplication, same pattern as the profile
// caches).
func (s *Session) warmSnapshot(ctx context.Context, descs []*kern.Desc, quota [][]int, warmup int64, series bool) (*gpu.Snapshot, error) {
	key, err := s.familyKey(descs, quota, warmup, series)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	sn, ok := s.snaps[key]
	s.mu.Unlock()
	if ok {
		return sn, nil
	}
	return s.snapFlight.Do(key, func() (*gpu.Snapshot, error) {
		s.mu.Lock()
		sn, ok := s.snaps[key]
		s.mu.Unlock()
		if ok {
			return sn, nil
		}
		warmOpts := s.warmupOptions(ctx, quota, series)
		g, err := gpu.New(s.cfg, descs, warmOpts)
		if err != nil {
			return nil, err
		}
		defer g.Close()
		leg := *warmOpts
		leg.Cycles = warmup
		if err := g.RunCycles(&leg); err != nil {
			return nil, err
		}
		sn, err = g.Snapshot()
		if err != nil {
			return nil, err
		}
		s.mu.Lock()
		s.snaps[key] = sn
		s.mu.Unlock()
		s.snapshotBytes.Add(sn.Bytes())
		return sn, nil
	})
}

func toPtrs(ds []Kernel) []*kern.Desc {
	out := make([]*kern.Desc, len(ds))
	for i := range ds {
		d := ds[i]
		out[i] = &d
	}
	return out
}
