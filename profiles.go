package gcke

import (
	"encoding/json"
	"fmt"
	"os"

	"repro/internal/config"
)

// profileFile is the serialized form of a Session's isolated-execution
// profile cache. The architecture fingerprint guards against reusing
// profiles across different machine configurations or run lengths.
type profileFile struct {
	Fingerprint string                        `json:"fingerprint"`
	IsoIPC      map[string]map[string]float64 `json:"isolated_ipc"` // name -> TB count -> IPC
}

// fingerprint captures everything the isolated profiles depend on.
func (s *Session) fingerprint() string {
	cfg, _ := json.Marshal(s.cfg)
	return fmt.Sprintf("v1|cycles=%d|%s", s.ProfileCycles, cfg)
}

// SaveProfiles writes the session's isolated-IPC cache to path as JSON.
// Loading it into a future session with the same configuration and
// ProfileCycles skips the profiling runs (useful for the Warped-Slicer
// scalability curves, which need one run per TB count per kernel).
func (s *Session) SaveProfiles(path string) error {
	pf := profileFile{
		Fingerprint: s.fingerprint(),
		IsoIPC:      make(map[string]map[string]float64),
	}
	s.mu.Lock()
	for name, m := range s.isoIPC {
		row := make(map[string]float64, len(m))
		for tbs, ipc := range m {
			row[fmt.Sprint(tbs)] = ipc
		}
		pf.IsoIPC[name] = row
	}
	s.mu.Unlock()
	data, err := json.MarshalIndent(pf, "", "  ")
	if err != nil {
		return fmt.Errorf("gcke: encoding profiles: %w", err)
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return fmt.Errorf("gcke: writing profiles: %w", err)
	}
	return os.Rename(tmp, path)
}

// LoadProfiles merges previously saved isolated-IPC profiles into the
// session. Profiles recorded under a different architecture or profile
// length are rejected.
func (s *Session) LoadProfiles(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("gcke: reading profiles: %w", err)
	}
	var pf profileFile
	if err := json.Unmarshal(data, &pf); err != nil {
		return fmt.Errorf("gcke: decoding profiles: %w", err)
	}
	if pf.Fingerprint != s.fingerprint() {
		return fmt.Errorf("gcke: profile fingerprint mismatch (different config or ProfileCycles)")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for name, row := range pf.IsoIPC {
		m, ok := s.isoIPC[name]
		if !ok {
			m = make(map[int]float64)
			s.isoIPC[name] = m
		}
		for tbsStr, ipc := range row {
			var tbs int
			if _, err := fmt.Sscanf(tbsStr, "%d", &tbs); err != nil {
				return fmt.Errorf("gcke: bad TB key %q in profiles", tbsStr)
			}
			m[tbs] = ipc
		}
	}
	return nil
}

// Interface checks: the config must stay JSON-serializable for the
// fingerprint.
var _ = func() bool {
	_, err := json.Marshal(config.Default())
	return err == nil
}()
