// Benchmarks regenerating each table and figure of the paper's
// evaluation at a reduced scale (2 SMs, short runs) so the whole suite
// completes in minutes. cmd/ckebench runs the same experiments at
// configurable scale, including the paper's full 16-SM machine with
// -paper-scale; EXPERIMENTS.md records the measured outputs.
//
// Each benchmark iteration regenerates its experiment from scratch
// (fresh session, no caches), so ns/op measures the full cost of
// reproducing that figure.

package gcke_test

import (
	"io"
	"testing"

	gcke "repro"
	"repro/internal/harness"
)

const (
	benchCycles        = 30_000
	benchProfileCycles = 15_000
)

func benchSession() *gcke.Session {
	s := gcke.NewSession(gcke.ScaledConfig(2), benchCycles)
	s.ProfileCycles = benchProfileCycles
	return s
}

func benchHarness() *harness.Harness {
	return harness.New(benchSession(), io.Discard)
}

// benchPairs is a one-per-class subset to bound run times.
func benchPairs() []harness.Workload {
	return []harness.Workload{
		harness.NewWorkload("pf", "bp"), // C+C
		harness.NewWorkload("bp", "sv"), // C+M
		harness.NewWorkload("sv", "ks"), // M+M
	}
}

// BenchmarkTable2 regenerates the benchmark characterization table.
func BenchmarkTable2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		h := benchHarness()
		if _, err := h.Table2(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure2 measures the utilization/stall characterization
// (same runs as Table 2, rendered as the Figure 2 series).
func BenchmarkFigure2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		h := benchHarness()
		if err := h.PrintTable2(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure3 regenerates the scalability curves and sweet spot.
func BenchmarkFigure3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		h := benchHarness()
		if err := h.Figure3("bp", "sv"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure4 regenerates the theoretical-vs-achieved gap.
func BenchmarkFigure4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		h := benchHarness()
		if _, err := h.Figure4(benchPairs()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure5 regenerates the UCP cache-partitioning study.
func BenchmarkFigure5(b *testing.B) {
	for i := 0; i < b.N; i++ {
		h := benchHarness()
		if _, err := h.Figure5(benchPairs()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure6 regenerates the L1D starvation time series.
func BenchmarkFigure6(b *testing.B) {
	for i := 0; i < b.N; i++ {
		h := benchHarness()
		if err := h.Figure6("bp", "sv", 16); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure8 regenerates the BMI issue-balance comparison.
func BenchmarkFigure8(b *testing.B) {
	for i := 0; i < b.N; i++ {
		h := benchHarness()
		if err := h.Figure8("bp", "sv", 0); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure9 regenerates one SMIL static-limit surface (the C+M
// pair; ckebench sweeps all three classes).
func BenchmarkFigure9(b *testing.B) {
	for i := 0; i < b.N; i++ {
		h := benchHarness()
		if err := h.Figure9("bp", "ks", []int{4, 16, 64, 0}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure11 regenerates the QBMI vs DMIL vs combination study.
func BenchmarkFigure11(b *testing.B) {
	for i := 0; i < b.N; i++ {
		h := benchHarness()
		if err := h.Figure11(benchPairs(), benchPairs()[1:2]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure12 regenerates the headline Warped-Slicer comparison.
func BenchmarkFigure12(b *testing.B) {
	for i := 0; i < b.N; i++ {
		h := benchHarness()
		if err := h.Figure12(benchPairs()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure13 regenerates the SMK comparison.
func BenchmarkFigure13(b *testing.B) {
	for i := 0; i < b.N; i++ {
		h := benchHarness()
		if err := h.Figure13(benchPairs()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure14 regenerates the 3-kernel study.
func BenchmarkFigure14(b *testing.B) {
	triples := []harness.Workload{
		harness.NewWorkload("bp", "sv", "dc"),
		harness.NewWorkload("sv", "ks", "s2"),
	}
	for i := 0; i < b.N; i++ {
		h := benchHarness()
		if err := h.Figure14(triples); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSensitivityL1D regenerates the Section 4.3 L1D-capacity
// sensitivity study.
func BenchmarkSensitivityL1D(b *testing.B) {
	for i := 0; i < b.N; i++ {
		h := benchHarness()
		err := harness.SensitivityL1D(gcke.ScaledConfig(2), benchCycles, benchProfileCycles,
			benchPairs()[1:2], h)
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSensitivityLRR regenerates the warp-scheduler sensitivity
// study.
func BenchmarkSensitivityLRR(b *testing.B) {
	for i := 0; i < b.N; i++ {
		h := benchHarness()
		err := harness.SensitivityLRR(gcke.ScaledConfig(2), benchCycles, benchProfileCycles,
			benchPairs()[1:2], h)
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationGlobalDMIL measures the local-vs-global DMIL
// ablation.
func BenchmarkAblationGlobalDMIL(b *testing.B) {
	for i := 0; i < b.N; i++ {
		h := benchHarness()
		if err := h.AblationGlobalDMIL(benchPairs()[1:2]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimulatorCycleRate lives in bench_engine_test.go: it grew
// into the engine perf-regression suite (1-kernel, 2-kernel CKE,
// trace-on, parallel workers) reporting cycles/sec and allocs/cycle.
