// Command cketrace runs a short concurrent simulation with cycle-level
// event tracing and renders the tail of the trace plus an event summary
// — a window into the memory-pipeline behaviour the paper reasons about
// (watch a ks mem-issue of 17 requests followed by a burst of rsfail
// events stalling everyone).
//
// Usage:
//
//	cketrace -kernels bp,ks [-cycles 20000] [-events 120] [-kind rsfail]
package main

import (
	"flag"
	"fmt"
	"log"
	"sort"
	"strings"

	"repro/internal/cli"
	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/gpu"
	"repro/internal/kern"
	"repro/internal/trace"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("cketrace: ")
	kernels := flag.String("kernels", "bp,ks", "comma-separated kernel names")
	cycles := flag.Int64("cycles", 20_000, "cycles to simulate")
	events := flag.Int("events", 120, "trace tail length to print")
	kindFilter := flag.String("kind", "", "only show events of this kind (e.g. rsfail, mem-issue)")
	prof := cli.AddProfileFlags(flag.CommandLine)
	flag.Parse()
	stopProf, err := prof.Start()
	if err != nil {
		log.Fatal(err)
	}
	defer stopProf()

	cfg := config.Scaled(1) // one SM: a readable interleaving
	var descs []*kern.Desc
	for _, n := range strings.Split(*kernels, ",") {
		d, err := kern.ByName(strings.TrimSpace(n))
		if err != nil {
			log.Fatal(err)
		}
		dd := d
		descs = append(descs, &dd)
	}
	quota := core.EvenQuota(&cfg, descs)

	buf := trace.New(1 << 16)
	opts := &gpu.Options{
		Cycles:      *cycles,
		Quota:       gpu.UniformQuota(cfg.NumSMs, quota),
		Trace:       buf,
		Workers:     prof.Workers,
		PartWorkers: prof.PartWorkers,
		PhaseTime:   prof.PhaseTrace,
	}
	g, err := gpu.New(cfg, descs, opts)
	if err != nil {
		log.Fatal(err)
	}
	if err := g.RunCycles(opts); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("workload %s on 1 SM, %d cycles, TB partition %v\n",
		*kernels, *cycles, quota)
	fmt.Printf("%d events recorded (%d retained)\n\n", buf.Total(), len(buf.Snapshot()))

	counts := buf.CountByKind()
	var kinds []trace.Kind
	for k := range counts {
		kinds = append(kinds, k)
	}
	sort.Slice(kinds, func(i, j int) bool { return kinds[i] < kinds[j] })
	fmt.Println("event mix (retained window):")
	for _, k := range kinds {
		fmt.Printf("  %-10s %8d\n", k, counts[k])
	}

	evs := buf.Snapshot()
	if *kindFilter != "" {
		evs = buf.Filter(func(e trace.Event) bool { return e.Kind.String() == *kindFilter })
	}
	if len(evs) > *events {
		evs = evs[len(evs)-*events:]
	}
	fmt.Printf("\ntrace tail (%d events):\n%s", len(evs), trace.Render(evs))
}
