// Command ckebench regenerates every table and figure of the paper's
// evaluation (see DESIGN.md's experiment index) and writes one text
// file per experiment under -out.
//
// Usage:
//
//	ckebench [-out results] [-sms 4] [-cycles 300000] [-profile-cycles 60000]
//	         [-pairs default|all] [-only fig12,fig13] [-paper-scale] [-parallel N]
//
// -paper-scale selects the full Table 1 machine (16 SMs) and 2M-cycle
// runs; expect hours of runtime for the full suite.
//
// Each experiment's (workload x scheme) grid fans out over a bounded
// worker pool (-parallel, default GOMAXPROCS). The engine is
// deterministic and results are rendered in submission order, so the
// output files are byte-identical to a serial (-parallel 1) run.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strings"
	"time"

	gcke "repro"
	"repro/internal/cli"
	"repro/internal/harness"
	"repro/internal/journal"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("ckebench: ")
	outDir := flag.String("out", "results", "output directory")
	sms := flag.Int("sms", 4, "number of SMs (memory system scales)")
	cycles := flag.Int64("cycles", 300_000, "evaluation cycles per run")
	profCycles := flag.Int64("profile-cycles", 60_000, "isolated profiling cycles per run")
	pairsFlag := flag.String("pairs", "default", "pair set: default or all")
	only := flag.String("only", "", "comma-separated experiment subset (e.g. fig12,fig13)")
	paperScale := flag.Bool("paper-scale", false, "16 SMs and 2M cycles (slow)")
	parallel := flag.Int("parallel", 0, "worker pool size per experiment (0 = GOMAXPROCS, 1 = serial)")
	check := flag.Bool("check", false, "enable the per-cycle simulator invariant watchdog")
	journalPath := flag.String("journal", "", "checkpoint journal path; completed points are replayed on restart (empty = disabled)")
	prof := cli.AddProfileFlags(flag.CommandLine)
	flag.Parse()
	ctx, stop := cli.SignalContext()
	defer stop()
	stopProf, err := prof.Start()
	if err != nil {
		log.Fatal(err)
	}
	defer stopProf()

	cfg := gcke.ScaledConfig(*sms)
	if *paperScale {
		cfg = gcke.DefaultConfig()
		*cycles = 2_000_000
		*profCycles = 200_000
	}
	if err := os.MkdirAll(*outDir, 0o755); err != nil {
		log.Fatal(err)
	}

	session := gcke.NewSession(cfg, *cycles)
	session.ProfileCycles = *profCycles
	session.Check = *check
	session.Workers = prof.Workers
	session.PartWorkers = prof.PartWorkers
	session.PhaseTime = prof.PhaseTrace
	var jnl *journal.Journal
	if *journalPath != "" {
		var err error
		jnl, err = journal.Open(*journalPath)
		if err != nil {
			log.Fatal(err)
		}
		defer jnl.Close()
		if n := jnl.Len(); n > 0 {
			fmt.Printf("journal %s: resuming past %d checkpointed point(s)\n", *journalPath, n)
		}
	}
	profilePath := filepath.Join(*outDir, "profiles.json")
	if err := session.LoadProfiles(profilePath); err == nil {
		fmt.Println("loaded cached isolated profiles from", profilePath)
	}
	defer func() {
		if err := session.SaveProfiles(profilePath); err != nil {
			log.Printf("saving profiles: %v", err)
		}
	}()

	pairs := harness.DefaultPairs()
	if *pairsFlag == "all" {
		pairs = harness.AllPairs()
	}
	selected := harness.DefaultPairs()[:6] // the paper's six study pairs
	triples := harness.DefaultTriples()

	want := map[string]bool{}
	if *only != "" {
		for _, s := range strings.Split(*only, ",") {
			want[strings.TrimSpace(s)] = true
		}
	}
	enabled := func(name string) bool { return len(want) == 0 || want[name] }

	runExp := func(name string, fn func(h *harness.Harness) error) {
		if !enabled(name) {
			return
		}
		path := filepath.Join(*outDir, name+".txt")
		f, err := os.Create(path)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		h := harness.New(session, f)
		h.Parallel = *parallel
		h.Ctx = ctx
		h.Journal = jnl
		start := time.Now()
		if err := fn(h); err != nil {
			if errors.Is(err, context.Canceled) {
				// SIGINT/SIGTERM: completed points are already journaled;
				// rerunning with the same -journal resumes from here.
				log.Fatalf("%s: interrupted; checkpointed progress preserved", name)
			}
			log.Fatalf("%s: %v", name, err)
		}
		fmt.Printf("%-12s -> %s (%.1fs)\n", name, path, time.Since(start).Seconds())
	}

	runExp("table2", func(h *harness.Harness) error { return h.PrintTable2() })
	runExp("fig3", func(h *harness.Harness) error { return h.Figure3("bp", "sv") })
	runExp("fig4", func(h *harness.Harness) error { _, err := h.Figure4(pairs); return err })
	runExp("fig5", func(h *harness.Harness) error { _, err := h.Figure5(selected); return err })
	runExp("fig6", func(h *harness.Harness) error { return h.Figure6("bp", "sv", 64) })
	runExp("fig8", func(h *harness.Harness) error { return h.Figure8("bp", "sv", 0) })
	runExp("fig9", func(h *harness.Harness) error {
		grid := []int{2, 4, 8, 16, 32, 64, 0}
		if err := h.Figure9("pf", "bp", grid); err != nil { // C+C
			return err
		}
		if err := h.Figure9("bp", "ks", grid); err != nil { // C+M
			return err
		}
		return h.Figure9("sv", "ks", grid) // M+M
	})
	runExp("fig11", func(h *harness.Harness) error { return h.Figure11(pairs, selected) })
	runExp("fig12", func(h *harness.Harness) error { return h.Figure12(pairs) })
	runExp("fig13", func(h *harness.Harness) error { return h.Figure13(pairs) })
	runExp("fig14", func(h *harness.Harness) error { return h.Figure14(triples) })

	// Sensitivity and ablation studies build their own sessions; the
	// shortened pair list keeps them tractable.
	sens := pairs
	if len(sens) > 6 {
		sens = sens[:6]
	}
	runExp("sens-l1d", func(h *harness.Harness) error {
		return harness.SensitivityL1D(cfg, *cycles, *profCycles, sens, h)
	})
	runExp("sens-lrr", func(h *harness.Harness) error {
		return harness.SensitivityLRR(cfg, *cycles, *profCycles, sens, h)
	})
	runExp("sens-mshr", func(h *harness.Harness) error {
		return harness.AblationMSHR(cfg, *cycles, *profCycles, sens, h)
	})
	runExp("abl-gdmil", func(h *harness.Harness) error {
		return h.AblationGlobalDMIL(sens)
	})
	runExp("abl-bypass", func(h *harness.Harness) error {
		// C+M pairs: bypass the memory-intensive kernel's L1.
		return h.AblationBypass([]harness.Workload{
			harness.NewWorkload("bp", "sv"),
			harness.NewWorkload("bp", "ks"),
		})
	})
	runExp("abl-dynws", func(h *harness.Harness) error {
		return h.AblationDynWS(sens)
	})
	runExp("abl-l2mil", func(h *harness.Harness) error {
		return h.AblationL2MIL([]harness.Workload{
			harness.NewWorkload("bp", "sv"),
			harness.NewWorkload("bp", "ks"),
		})
	})
	runExp("energy", func(h *harness.Harness) error {
		return h.EnergyStudy(sens)
	})
	runExp("abl-qbmi", func(h *harness.Harness) error {
		return h.AblationQBMIRefresh(sens)
	})
	runExp("abl-tbt", func(h *harness.Harness) error {
		return h.AblationTBThrottle([]harness.Workload{
			harness.NewWorkload("bp", "sv"),
			harness.NewWorkload("bp", "ks"),
			harness.NewWorkload("sv", "ks"),
		})
	})
	runExp("paper-vs-measured", func(h *harness.Harness) error {
		return h.PaperComparison(pairs, triples)
	})
}
