// Command ckesim runs one workload under one scheme and prints the
// paper's metrics.
//
// Usage:
//
//	ckesim -kernels bp,sv -scheme ws-dmil [-sms 4] [-cycles 300000]
//
// Schemes: spatial, leftover, even, ws, dynws, ws-rbmi, ws-qbmi,
// ws-dmil, ws-l2mil, ws-ucp, smk, smk-qbmi, smk-dmil, and
// ws-smil:<l0>,<l1>,... with per-kernel static limits (0 = unlimited).
package main

import (
	"flag"
	"fmt"
	"log"
	"strconv"
	"strings"

	gcke "repro"
	"repro/internal/cli"
)

func parseScheme(s string, nKernels int) (gcke.Scheme, error) {
	if rest, ok := strings.CutPrefix(s, "ws-smil:"); ok {
		parts := strings.Split(rest, ",")
		if len(parts) != nKernels {
			return gcke.Scheme{}, fmt.Errorf("ws-smil needs %d limits, got %d", nKernels, len(parts))
		}
		lims := make([]int, len(parts))
		for i, p := range parts {
			v, err := strconv.Atoi(strings.TrimSpace(p))
			if err != nil {
				return gcke.Scheme{}, fmt.Errorf("bad limit %q: %v", p, err)
			}
			lims[i] = v
		}
		return gcke.Scheme{Partition: gcke.PartitionWarpedSlicer, Limiting: gcke.LimitStatic, StaticLimits: lims}, nil
	}
	switch s {
	case "spatial":
		return gcke.Scheme{Partition: gcke.PartitionSpatial}, nil
	case "leftover":
		return gcke.Scheme{Partition: gcke.PartitionLeftover}, nil
	case "even":
		return gcke.Scheme{Partition: gcke.PartitionEven}, nil
	case "ws":
		return gcke.Scheme{Partition: gcke.PartitionWarpedSlicer}, nil
	case "ws-rbmi":
		return gcke.Scheme{Partition: gcke.PartitionWarpedSlicer, MemIssue: gcke.MemIssueRBMI}, nil
	case "ws-qbmi":
		return gcke.Scheme{Partition: gcke.PartitionWarpedSlicer, MemIssue: gcke.MemIssueQBMI}, nil
	case "ws-dmil":
		return gcke.Scheme{Partition: gcke.PartitionWarpedSlicer, Limiting: gcke.LimitDMIL}, nil
	case "ws-ucp":
		return gcke.Scheme{Partition: gcke.PartitionWarpedSlicer, UCP: true}, nil
	case "smk":
		return gcke.Scheme{Partition: gcke.PartitionSMK, SMKQuota: true}, nil
	case "smk-qbmi":
		return gcke.Scheme{Partition: gcke.PartitionSMK, MemIssue: gcke.MemIssueQBMI}, nil
	case "smk-dmil":
		return gcke.Scheme{Partition: gcke.PartitionSMK, Limiting: gcke.LimitDMIL}, nil
	case "dynws":
		return gcke.Scheme{Partition: gcke.PartitionWarpedSlicerDyn}, nil
	case "ws-l2mil":
		return gcke.Scheme{Partition: gcke.PartitionWarpedSlicer, Limiting: gcke.LimitL2MIL}, nil
	default:
		return gcke.Scheme{}, fmt.Errorf("unknown scheme %q", s)
	}
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("ckesim: ")
	kernels := flag.String("kernels", "bp,sv", "comma-separated kernel names")
	schemeName := flag.String("scheme", "ws", "CKE scheme")
	sms := flag.Int("sms", 4, "number of SMs")
	cycles := flag.Int64("cycles", 300_000, "evaluation cycles")
	profCycles := flag.Int64("profile-cycles", 60_000, "profiling cycles")
	check := flag.Bool("check", false, "enable the per-cycle simulator invariant watchdog")
	prof := cli.AddProfileFlags(flag.CommandLine)
	flag.Parse()
	ctx, stop := cli.SignalContext()
	defer stop()
	stopProf, err := prof.Start()
	if err != nil {
		log.Fatal(err)
	}
	defer stopProf()

	cfg := gcke.ScaledConfig(*sms)
	session := gcke.NewSession(cfg, *cycles)
	session.ProfileCycles = *profCycles
	session.Check = *check
	session.Workers = prof.Workers
	session.PartWorkers = prof.PartWorkers
	session.PhaseTime = prof.PhaseTrace

	var wl []gcke.Kernel
	for _, n := range strings.Split(*kernels, ",") {
		d, err := gcke.Benchmark(strings.TrimSpace(n))
		if err != nil {
			log.Fatal(err)
		}
		wl = append(wl, d)
	}
	scheme, err := parseScheme(*schemeName, len(wl))
	if err != nil {
		log.Fatal(err)
	}

	res, err := session.RunWorkloadCtx(ctx, wl, scheme)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("workload %s under %s (%d SMs, %d cycles)\n",
		*kernels, scheme.Name(), *sms, *cycles)
	if res.TBPartition != nil {
		fmt.Printf("TB partition per SM: %v\n", res.TBPartition)
	}
	sp := res.SpeedupsOf()
	fmt.Printf("WeightedSpeedup %.3f  ANTT %.3f  Fairness %.3f  LSUStall %.1f%%  ComputeUtil %.3f\n",
		res.WeightedSpeedup(), res.ANTT(), res.Fairness(),
		res.LSUStallFrac()*100, res.ComputeUtil())
	for i, k := range res.Kernels {
		fmt.Printf("  %-4s speedup=%.3f ipc=%7.3f l1dMiss=%.3f l1dRsfail=%7.3f\n",
			k.Name, sp[i], k.IPC, k.L1D.MissRate(), k.L1D.RsFailRate())
	}
}
