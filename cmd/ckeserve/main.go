// Command ckeserve runs the simulator as a long-lived HTTP job service:
// clients POST simulation jobs (and sweeps) and the service executes
// them on the concurrent runner pool with bounded admission, retry with
// deterministic backoff, a per-fingerprint circuit breaker, journal
// checkpointing, and SIGTERM drain. See internal/server for the
// degradation model and DESIGN.md §10 for the architecture.
//
//	ckeserve -addr :8329 -parallel 8 -timeout 10m -journal serve.ckpt
//	curl -s localhost:8329/jobs -d '{"sms":4,"cycles":150000,
//	    "kernels":["bp","ks"],"scheme":{"Partition":0,"Limiting":2}}'
//
// The -chaos flag (dev/test only) arms the deterministic fault injector
// so the degradation paths can be exercised against a live server.
package main

import (
	"context"
	"flag"
	"log"
	"os"
	"path/filepath"
	"time"

	"repro/internal/backoff"
	"repro/internal/chaos"
	"repro/internal/ckpt"
	"repro/internal/cli"
	"repro/internal/journal"
	"repro/internal/resultcache"
	"repro/internal/server"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("ckeserve: ")
	addr := flag.String("addr", "127.0.0.1:8329", "listen address")
	parallel := flag.Int("parallel", 0, "concurrent simulation slots (0 = GOMAXPROCS)")
	queue := flag.Int("queue", 0, "admitted requests that may wait for a slot (0 = 2x slots); excess load is shed with 429")
	retries := flag.Int("retries", 2, "retries per transiently-failed job (panic, deadline)")
	timeout := flag.Duration("timeout", 10*time.Minute, "per-attempt wall-clock bound, e.g. 90s or 10m (0 = none)")
	drainTimeout := flag.Duration("drain-timeout", 15*time.Minute, "how long SIGTERM waits for in-flight jobs before giving up")
	journalPath := flag.String("journal", "", "checkpoint journal path; completed jobs are replayed instead of re-simulated (empty = disabled)")
	cacheOn := flag.Bool("cache", false, "serve repeated job fingerprints from the content-addressed result cache")
	cacheDir := flag.String("cache-dir", "", "persist the result cache to <dir>/results.jsonl across restarts (implies -cache)")
	forkWarmup := flag.Bool("fork-warmup", false, "fork jobs sharing a warmup family from one warmed engine snapshot (needs scheme Warmup cycles)")
	check := flag.Bool("check", false, "enable the per-cycle simulator invariant watchdog")
	engineWorkers := flag.Int("engine-workers", 0, "SM-tick goroutines per executing job (0 = GOMAXPROCS/slots; results are identical)")
	enginePartWorkers := flag.Int("engine-part-workers", 0, "memory-partition goroutines per executing job (0 = follow -engine-workers; results are identical)")
	phaseTrace := flag.Bool("phasetrace", false, "measure per-phase engine time; /statz reports the breakdown under phase_ns")
	targetLatency := flag.Duration("target-latency", 0, "AIMD per-attempt latency target; the in-flight limit adapts toward it (0 = fixed slots+queue bound)")
	retryBudget := flag.Float64("retry-budget", 0.1, "retry tokens earned per completed job (retries beyond the budget fail fast)")
	retryBurst := flag.Float64("retry-burst", 10, "retry-budget token cap (also the initial balance)")
	breakerN := flag.Int("breaker-threshold", 3, "invariant violations per job fingerprint before its circuit opens")
	breakerCool := flag.Duration("breaker-cooldown", time.Minute, "how long an open circuit sheds before allowing a probe")
	chaosSpec := flag.String("chaos", "", "deterministic fault injection (dev only), e.g. panic=0.5,hang=0.2,journal=0.1,invariant=0.05,corrupt=0.3,seed=42,failures=1")
	workerMode := flag.Bool("worker", false, "fleet-worker mode: expose /journalz so a ckesweep -fleet coordinator can resume from this worker's journal")
	ckptDir := flag.String("ckpt-dir", "", "persist mid-job engine checkpoints to <dir>; a killed job resumes from its last checkpoint (empty = disabled)")
	ckptEvery := flag.Int64("ckpt-every", 0, "checkpoint interval in simulated cycles (0 = 50000 when -ckpt-dir is set)")
	flag.Parse()

	cfg := server.Config{
		Workers:           *parallel,
		QueueDepth:        *queue,
		JobTimeout:        *timeout,
		MaxRetries:        *retries,
		Retry:             backoff.Default(),
		TargetLatency:     *targetLatency,
		RetryBudgetRatio:  *retryBudget,
		RetryBudgetBurst:  *retryBurst,
		BreakerThreshold:  *breakerN,
		BreakerCooldown:   *breakerCool,
		Check:             *check,
		EngineWorkers:     *engineWorkers,
		EnginePartWorkers: *enginePartWorkers,
		PhaseTrace:        *phaseTrace,
		ForkWarmup:        *forkWarmup,
		Worker:            *workerMode,
	}
	if *cacheOn || *cacheDir != "" {
		var copts resultcache.Options
		if *cacheDir != "" {
			if err := os.MkdirAll(*cacheDir, 0o755); err != nil {
				log.Fatal(err)
			}
			copts.Path = filepath.Join(*cacheDir, "results.jsonl")
		}
		c, err := resultcache.Open(copts)
		if err != nil {
			log.Fatal(err)
		}
		cfg.Cache = c
		if n := c.Len(); n > 0 {
			log.Printf("result cache %s: %d cached job(s) will serve without simulating", copts.Path, n)
		}
	}
	if *ckptDir != "" {
		if *ckptEvery <= 0 {
			*ckptEvery = 50_000
		}
		st, err := ckpt.OpenStore(*ckptDir)
		if err != nil {
			log.Fatal(err)
		}
		cfg.Checkpoints = st
		cfg.CheckpointEvery = *ckptEvery
		log.Printf("checkpoints: %s, every %d cycles (killed jobs resume mid-flight)", *ckptDir, *ckptEvery)
	}
	if *chaosSpec != "" {
		ccfg, err := chaos.Parse(*chaosSpec)
		if err != nil {
			log.Fatal(err)
		}
		if ccfg.Enabled() {
			cfg.Chaos = chaos.New(ccfg)
			log.Printf("chaos armed: %s (every resilience path is live-fire)", *chaosSpec)
		}
	}
	if *journalPath != "" {
		jnl, err := journal.Open(*journalPath)
		if err != nil {
			log.Fatal(err)
		}
		if n := jnl.Len(); n > 0 {
			log.Printf("journal %s: %d checkpointed job(s) will replay without simulating", *journalPath, n)
		}
		cfg.Journal = jnl
	}
	srv := server.New(cfg)

	ctx, stop := cli.SignalContext()
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe(*addr) }()
	if *workerMode {
		log.Printf("listening on %s (fleet worker: /journalz exposed)", *addr)
	} else {
		log.Printf("listening on %s", *addr)
	}

	select {
	case err := <-errc:
		if err != nil {
			log.Fatal(err)
		}
	case <-ctx.Done():
		stop() // restore default signal handling: a second signal kills
		log.Printf("signal received; draining in-flight jobs (bound %s)", *drainTimeout)
		dctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		if err := srv.Drain(dctx); err != nil {
			log.Fatalf("drain: %v", err)
		}
		if err := <-errc; err != nil {
			log.Fatal(err)
		}
		log.Printf("drained cleanly; journal flushed")
	}
}
