// Command ckeload is the open-loop load generator for ckeserve: it
// calibrates (or accepts) a base offered rate, sweeps that rate through
// a list of multipliers on a deterministic arrival schedule, classifies
// every job against its deadline, and writes a JSON report suitable for
// results/BENCH_overload.json. Because the generator is open-loop, a
// server that slows down under pressure still faces the full offered
// rate — this is what makes "goodput at 5x stays near the 1x plateau"
// a real claim rather than an artifact of the client backing off.
//
//	ckeload -url http://127.0.0.1:8329 -multipliers 1,5 \
//	    -duration 30s -deadline 2s -out results/BENCH_overload.json
//
// With -rate 0 (the default) the base rate is calibrated by running a
// few jobs closed-loop at concurrency 1, which deliberately
// underestimates a multi-worker server — so the high multipliers are
// genuinely past capacity. Exit status is 0 even when the server sheds
// heavily; sheds are the mechanism under test, not a failure.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/cli"
	"repro/internal/loadgen"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("ckeload: ")
	url := flag.String("url", "http://127.0.0.1:8329", "target ckeserve base URL")
	rate := flag.Float64("rate", 0, "base offered rate in jobs/sec (0 = calibrate against the live server)")
	calibrateJobs := flag.Int("calibrate-jobs", 4, "closed-loop jobs used to calibrate the base rate when -rate is 0")
	multipliers := flag.String("multipliers", "1,5", "comma-separated rate multipliers, one sweep stage each")
	duration := flag.Duration("duration", 30*time.Second, "offered-load window per stage (stragglers are still awaited)")
	deadline := flag.Duration("deadline", 0, "per-job deadline sent with every request (0 = none)")
	grace := flag.Duration("grace", 250*time.Millisecond, "client-side slack before a success past deadline counts as late")
	arrivals := flag.String("arrivals", "poisson", "arrival process: poisson or fixed")
	seed := flag.Uint64("seed", 1, "PRNG seed for the arrival schedule and fingerprint variation")
	unique := flag.Int("unique", 256, "distinct job fingerprints to cycle through")
	sms := flag.Int("sms", 2, "SMs per job")
	cycles := flag.Int64("cycles", 8000, "measured cycles per job")
	profileCycles := flag.Int64("profile-cycles", 6000, "profiling cycles per job")
	kernels := flag.String("kernels", "bp,ks", "comma-separated kernel mix per job")
	fresh := flag.Bool("fresh", true, "send fresh=1 so cache/journal replay cannot stand in for simulation")
	settle := flag.Duration("settle", 2*time.Second, "pause between stages so queue residue cannot bleed across")
	out := flag.String("out", "", "write the JSON report here (empty = stdout)")
	flag.Parse()

	ms, err := loadgen.ParseMultipliers(*multipliers)
	if err != nil {
		log.Fatal(err)
	}
	var ks []string
	for _, k := range strings.Split(*kernels, ",") {
		if k = strings.TrimSpace(k); k != "" {
			ks = append(ks, k)
		}
	}
	cfg := loadgen.Config{
		URL:           *url,
		Duration:      *duration,
		Arrivals:      *arrivals,
		Seed:          *seed,
		Deadline:      *deadline,
		Grace:         *grace,
		SMs:           *sms,
		Cycles:        *cycles,
		ProfileCycles: *profileCycles,
		Kernels:       ks,
		Unique:        *unique,
		Fresh:         *fresh,
	}

	ctx, stop := cli.SignalContext()
	defer stop()

	base := *rate
	calibrated := false
	if base <= 0 {
		log.Printf("calibrating base rate with %d closed-loop jobs against %s", *calibrateJobs, *url)
		base, err = loadgen.Calibrate(ctx, cfg, *calibrateJobs)
		if err != nil {
			log.Fatal(err)
		}
		calibrated = true
		log.Printf("calibrated base rate: %.2f jobs/sec", base)
	}

	rep, err := loadgen.Sweep(ctx, cfg, base, ms, *settle, log.Printf)
	if err != nil {
		log.Fatal(err)
	}
	rep.Calibrated = calibrated
	if statz, err := loadgen.FetchStatz(ctx, nil, *url); err != nil {
		log.Printf("statz snapshot unavailable: %v", err)
	} else {
		rep.ServerStatz = statz
	}

	blob, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	blob = append(blob, '\n')
	if *out == "" {
		os.Stdout.Write(blob)
	} else {
		if dir := filepath.Dir(*out); dir != "." {
			if err := os.MkdirAll(dir, 0o755); err != nil {
				log.Fatal(err)
			}
		}
		if err := os.WriteFile(*out, blob, 0o644); err != nil {
			log.Fatal(err)
		}
		log.Printf("report written to %s", *out)
	}
	for _, m := range ms {
		if m != 1 {
			fmt.Fprintf(os.Stderr, "ckeload: goodput(%gx)/goodput(1x) = %.3f\n", m, rep.GoodputRatio(m))
		}
	}
}
