// Command ckediag compares schemes on one 2-kernel workload
// (development aid; the full experiment suite lives in cmd/ckebench).
// The schemes are independent simulations and run concurrently on a
// bounded worker pool (-parallel); the table order never changes.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"repro"
	"repro/internal/cli"
	"repro/internal/runner"
)

func main() {
	log.SetFlags(0)
	sms := flag.Int("sms", 4, "SMs")
	cycles := flag.Int64("cycles", 300_000, "evaluation cycles")
	profCycles := flag.Int64("profile-cycles", 60_000, "profiling cycles")
	warmup := flag.Int64("warmup", 0, "unmanaged warmup cycles per scheme (schemes sharing a partition form one warmup family; see -fork-warmup)")
	pair := flag.String("pair", "bp,sv", "kernel pair")
	parallel := flag.Int("parallel", 0, "worker pool size (0 = GOMAXPROCS, 1 = serial)")
	rb := cli.AddFlags(flag.CommandLine)
	prof := cli.AddProfileFlags(flag.CommandLine)
	flag.Parse()
	if err := rb.Validate(); err != nil {
		log.Fatal(err)
	}
	stopProf, err := prof.Start()
	if err != nil {
		log.Fatal(err)
	}
	defer stopProf()
	ctx, stop := cli.SignalContext()
	defer stop()

	cfg := gcke.ScaledConfig(*sms)
	session := gcke.NewSession(cfg, *cycles)
	session.ProfileCycles = *profCycles
	session.Check = rb.Check
	session.Workers = prof.Workers
	session.PartWorkers = prof.PartWorkers
	session.PhaseTime = prof.PhaseTrace
	session.ForkWarmup = rb.ForkWarmup

	names := strings.Split(*pair, ",")
	var ds []gcke.Kernel
	for _, n := range names {
		d, err := gcke.Benchmark(strings.TrimSpace(n))
		if err != nil {
			log.Fatal(err)
		}
		ds = append(ds, d)
	}

	schemes := []gcke.Scheme{
		{Partition: gcke.PartitionSpatial},
		{Partition: gcke.PartitionWarpedSlicer},
		{Partition: gcke.PartitionWarpedSlicerDyn},
		{Partition: gcke.PartitionWarpedSlicer, MemIssue: gcke.MemIssueRBMI},
		{Partition: gcke.PartitionWarpedSlicer, MemIssue: gcke.MemIssueQBMI},
		{Partition: gcke.PartitionWarpedSlicer, Limiting: gcke.LimitDMIL},
		{Partition: gcke.PartitionSMK, SMKQuota: true},
		{Partition: gcke.PartitionSMK, MemIssue: gcke.MemIssueQBMI},
		{Partition: gcke.PartitionSMK, Limiting: gcke.LimitDMIL},
	}
	jobs := make([]runner.Job, len(schemes))
	for i := range schemes {
		schemes[i].Warmup = *warmup
		jobs[i] = runner.Job{Session: session, Kernels: ds, Scheme: schemes[i]}
	}
	jnl, err := rb.OpenJournal(log.Printf)
	if err != nil {
		log.Fatal(err)
	}
	if jnl != nil {
		defer jnl.Close()
	}
	rcache, err := rb.OpenCache(log.Printf)
	if err != nil {
		log.Fatal(err)
	}
	if rcache != nil {
		defer rcache.Close()
	}
	ckpts, err := rb.OpenCheckpoints(log.Printf)
	if err != nil {
		log.Fatal(err)
	}
	r := runner.New(*parallel)
	rb.Apply(r, jnl, rcache, ckpts)
	results := r.Run(ctx, jobs)
	failed, err := rb.Failures(log.Printf, results)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-16s %6s %6s %8s %7s %7s %7s %8s\n",
		"scheme", "WS", "ANTT", "fairness", "stall", "k0-spd", "k1-spd", "theoWS")
	for i, sc := range schemes {
		if results[i].Err != nil {
			fmt.Printf("%-16s %6s\n", sc.Name(), "fail")
			continue
		}
		res := results[i].Res
		sp := res.SpeedupsOf()
		fmt.Printf("%-16s %6.3f %6.3f %8.3f %7.3f %7.3f %7.3f %8.3f\n",
			sc.Name(), res.WeightedSpeedup(), res.ANTT(), res.Fairness(),
			res.LSUStallFrac(), sp[0], sp[1], res.TheoreticalWS)
	}
	if failed > 0 {
		log.Print(cli.FailureSummary(results))
		os.Exit(1)
	}
}
