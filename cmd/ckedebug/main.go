// Command ckedebug dumps internal memory-system state after an isolated
// run (development aid).
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/cli"
	"repro/internal/config"
	"repro/internal/gpu"
	"repro/internal/kern"
)

func main() {
	log.SetFlags(0)
	name := flag.String("bench", "bs", "benchmark")
	sms := flag.Int("sms", 4, "SMs")
	cycles := flag.Int64("cycles", 50000, "cycles")
	prof := cli.AddProfileFlags(flag.CommandLine)
	flag.Parse()
	stopProf, err := prof.Start()
	if err != nil {
		log.Fatal(err)
	}
	defer stopProf()
	cfg := config.Scaled(*sms)
	d, err := kern.ByName(*name)
	if err != nil {
		log.Fatal(err)
	}
	descs := []*kern.Desc{&d}
	opts := &gpu.Options{
		Cycles:      *cycles,
		Quota:       gpu.UniformQuota(cfg.NumSMs, []int{d.MaxTBsPerSM(&cfg)}),
		Workers:     prof.Workers,
		PartWorkers: prof.PartWorkers,
		PhaseTime:   prof.PhaseTrace,
	}
	g, err := gpu.New(cfg, descs, opts)
	if err != nil {
		log.Fatal(err)
	}
	if err := g.RunCycles(opts); err != nil {
		log.Fatal(err)
	}
	r := g.Result()
	fmt.Print(r)
	g.DumpMemState()
}
