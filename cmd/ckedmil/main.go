// Command ckedmil traces DMIL limit/inflight dynamics (development
// aid). It accepts one or more workloads (semicolon-separated kernel
// pairs) and traces them concurrently on a bounded worker pool; each
// trace is buffered and printed in workload order.
package main

import (
	"bytes"
	"context"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"strconv"
	"strings"

	"repro/internal/cli"
	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/gpu"
	"repro/internal/kern"
	"repro/internal/runner"
	"repro/internal/sm"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("ckedmil: ")
	pairs := flag.String("pairs", "bp,ks", "workloads to trace: kernel pairs separated by ';' (e.g. \"bp,ks;bp,sv\")")
	quota := flag.String("quota", "", "comma-separated TB quota (default max/2); applies to every workload")
	cycles := flag.Int64("cycles", 300_000, "cycles")
	parallel := flag.Int("parallel", 0, "worker pool size (0 = GOMAXPROCS, 1 = serial)")
	rb := cli.AddFlags(flag.CommandLine)
	prof := cli.AddProfileFlags(flag.CommandLine)
	flag.Parse()
	if err := rb.Validate(); err != nil {
		log.Fatal(err)
	}
	stopProf, err := prof.Start()
	if err != nil {
		log.Fatal(err)
	}
	defer stopProf()
	ctx, stop := cli.SignalContext()
	defer stop()

	specs := strings.Split(*pairs, ";")
	bufs := make([]bytes.Buffer, len(specs))
	errs := make([]error, len(specs))
	runner.Map(ctx, *parallel, len(specs), func(i int) {
		errs[i] = trace(ctx, &bufs[i], strings.TrimSpace(specs[i]), *quota, *cycles, rb.Check, prof)
	})
	failed := 0
	for i, spec := range specs {
		if errs[i] == nil && ctx.Err() != nil && bufs[i].Len() == 0 {
			errs[i] = ctx.Err() // never dispatched before cancellation
		}
		if len(specs) > 1 {
			fmt.Printf("=== %s ===\n", strings.TrimSpace(spec))
		}
		os.Stdout.Write(bufs[i].Bytes())
		if errs[i] != nil {
			failed++
			if rb.Skip() {
				log.Printf("workload %q: %v", strings.TrimSpace(spec), errs[i])
				continue
			}
			log.Fatalf("workload %q: %v", strings.TrimSpace(spec), errs[i])
		}
	}
	if failed > 0 {
		log.Printf("%d workload(s) failed", failed)
		os.Exit(1)
	}
}

// trace runs one workload with per-kernel DMILs and writes the
// limit/inflight timeline plus the final result to w.
func trace(ctx context.Context, w io.Writer, pairSpec, quotaSpec string, cycles int64, check bool, prof *cli.Profiling) error {
	cfg := config.Scaled(4)
	var descs []*kern.Desc
	for _, n := range strings.Split(pairSpec, ",") {
		d, err := kern.ByName(strings.TrimSpace(n))
		if err != nil {
			return err
		}
		dd := d
		descs = append(descs, &dd)
	}
	row := make([]int, len(descs))
	if quotaSpec != "" {
		qs := strings.Split(quotaSpec, ",")
		if len(qs) != len(descs) {
			return fmt.Errorf("quota %q has %d entries for %d kernels", quotaSpec, len(qs), len(descs))
		}
		for i, q := range qs {
			v, err := strconv.Atoi(strings.TrimSpace(q))
			if err != nil || v < 1 {
				return fmt.Errorf("bad quota entry %q: want a positive integer", q)
			}
			row[i] = v
		}
	} else {
		for i, d := range descs {
			row[i] = d.MaxTBsPerSM(&cfg) / 2
			if row[i] < 1 {
				row[i] = 1
			}
		}
	}
	var dmils []*core.DMIL
	opts := &gpu.Options{
		Cycles: cycles,
		Quota:  gpu.UniformQuota(cfg.NumSMs, row),
		Policies: gpu.PolicyFactory{
			Limiter: func(smID, n int) sm.Limiter {
				d := core.NewDMIL(n)
				dmils = append(dmils, d)
				return d
			},
		},
		Hook: func(g *gpu.GPU, cycle int64) {
			if cycle%50000 == 0 {
				fmt.Fprintf(w, "cycle=%7d sm0:", cycle)
				for k := range descs {
					fmt.Fprintf(w, "  k%d lim=%3d inf=%3d", k, dmils[0].Limit(k), g.SMs[0].Inflight(k))
				}
				fmt.Fprintln(w)
			}
		},
		HookInterval: 1000,
		Interrupt:    func() bool { return ctx.Err() != nil },
		Check:        gpu.CheckConfig{Enabled: check},
		Workers:      prof.Workers,
		PartWorkers:  prof.PartWorkers,
		PhaseTime:    prof.PhaseTrace,
	}
	g, err := gpu.New(cfg, descs, opts)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "quota=%v\n", row)
	if err := g.RunCycles(opts); err != nil {
		return err
	}
	fmt.Fprint(w, g.Result())
	fmt.Fprintf(w, "stall=%.3f\n", g.Result().LSUStallFrac())
	return nil
}
