// Command ckedmil traces DMIL limit/inflight dynamics on one workload
// (development aid).
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/gpu"
	"repro/internal/kern"
	"repro/internal/sm"
)

func main() {
	log.SetFlags(0)
	pair := flag.String("pair", "bp,ks", "kernels")
	quota := flag.String("quota", "", "comma-separated TB quota (default max/2)")
	cycles := flag.Int64("cycles", 300_000, "cycles")
	flag.Parse()
	cfg := config.Scaled(4)
	var descs []*kern.Desc
	for _, n := range strings.Split(*pair, ",") {
		d, err := kern.ByName(strings.TrimSpace(n))
		if err != nil {
			log.Fatal(err)
		}
		dd := d
		descs = append(descs, &dd)
	}
	row := make([]int, len(descs))
	if *quota != "" {
		for i, q := range strings.Split(*quota, ",") {
			fmt.Sscanf(q, "%d", &row[i])
		}
	} else {
		for i, d := range descs {
			row[i] = d.MaxTBsPerSM(&cfg) / 2
			if row[i] < 1 {
				row[i] = 1
			}
		}
	}
	var dmils []*core.DMIL
	opts := &gpu.Options{
		Cycles: *cycles,
		Quota:  gpu.UniformQuota(cfg.NumSMs, row),
		Policies: gpu.PolicyFactory{
			Limiter: func(smID, n int) sm.Limiter {
				d := core.NewDMIL(n)
				dmils = append(dmils, d)
				return d
			},
		},
		Hook: func(g *gpu.GPU, cycle int64) {
			if cycle%50000 == 0 {
				fmt.Printf("cycle=%7d sm0:", cycle)
				for k := range descs {
					fmt.Printf("  k%d lim=%3d inf=%3d", k, dmils[0].Limit(k), g.SMs[0].Inflight(k))
				}
				fmt.Println()
			}
		},
		HookInterval: 1000,
	}
	g, err := gpu.New(cfg, descs, opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("quota=%v\n", row)
	g.RunCycles(opts)
	fmt.Print(g.Result())
	fmt.Printf("stall=%.3f\n", g.Result().LSUStallFrac())
}
