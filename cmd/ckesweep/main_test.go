package main

import (
	"strconv"
	"strings"
	"testing"

	"repro"
	"repro/internal/runner"
)

// TestDedupeJobs: a grid with repeated limits submits duplicate
// fingerprints; dedupeJobs must collapse them at parse time and the
// expand function must restore the original grid shape, sharing one
// Result across the duplicates.
func TestDedupeJobs(t *testing.T) {
	bp, _ := gcke.Benchmark("bp")
	ks, _ := gcke.Benchmark("ks")
	mk := func(l0, l1 int) runner.Job {
		return runner.Job{
			Config: gcke.ScaledConfig(2), Cycles: 10_000,
			Kernels: []gcke.Kernel{bp, ks},
			Scheme: gcke.Scheme{
				Partition: gcke.PartitionEven, Limiting: gcke.LimitStatic,
				StaticLimits: []int{l0, l1},
			},
		}
	}
	// The grid "4,4,8" yields 9 points, only 4 distinct: (4,4) x4,
	// (4,8) x2, (8,4) x2, (8,8) x1.
	var jobs []runner.Job
	for _, l0 := range []int{4, 4, 8} {
		for _, l1 := range []int{4, 4, 8} {
			jobs = append(jobs, mk(l0, l1))
		}
	}
	unique, expand, err := dedupeJobs(jobs)
	if err != nil {
		t.Fatal(err)
	}
	if len(unique) != 4 {
		t.Fatalf("unique jobs = %d, want 4", len(unique))
	}
	res := make([]runner.Result, len(unique))
	for i := range res {
		key, err := unique[i].Key()
		if err != nil {
			t.Fatal(err)
		}
		res[i] = runner.Result{Key: key}
	}
	full := expand(res)
	if len(full) != len(jobs) {
		t.Fatalf("expanded to %d results, want %d", len(full), len(jobs))
	}
	for i := range jobs {
		key, err := jobs[i].Key()
		if err != nil {
			t.Fatal(err)
		}
		if full[i].Key != key {
			t.Fatalf("slot %d: expanded result has key %s, want %s", i, full[i].Key, key)
		}
	}
	// Duplicate slots share the first occurrence's result.
	if full[0].Key != full[1].Key || full[0].Key != full[3].Key || full[0].Key != full[4].Key {
		t.Fatal("duplicate (4,4) points did not collapse onto one result")
	}
	if full[2].Key == full[0].Key || full[8].Key == full[0].Key {
		t.Fatal("distinct points collapsed")
	}
}

func TestParseGrid(t *testing.T) {
	lims, err := parseGrid("2,4, 8 ,0")
	if err != nil {
		t.Fatal(err)
	}
	want := []int{2, 4, 8, 0}
	if len(lims) != len(want) {
		t.Fatalf("lims = %v", lims)
	}
	for i := range want {
		if lims[i] != want[i] {
			t.Fatalf("lims = %v, want %v", lims, want)
		}
	}
	for _, bad := range []string{"", "2,,4", "2,x", "-1", "2,4.5", "2;4"} {
		if _, err := parseGrid(bad); err == nil {
			t.Errorf("parseGrid(%q) accepted", bad)
		}
	}
}

// FuzzParseGrid asserts the sweep-grid parser's safety properties over
// arbitrary input: it never panics, never silently drops or invents
// entries, and never returns a negative limit (a malformed grid must be
// rejected, not quietly turned into limit 0 = unlimited).
func FuzzParseGrid(f *testing.F) {
	for _, seed := range []string{
		"2,4,8,16,32,64,0", "0", " 7 ", "1,-1", "a,b", "", ",", "2,,4",
		"9999999999999999999999", "+3", "0x10", "3_0",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, spec string) {
		lims, err := parseGrid(spec)
		if err != nil {
			if lims != nil {
				t.Fatalf("parseGrid(%q) returned both values and error", spec)
			}
			return
		}
		fields := strings.Split(spec, ",")
		if len(lims) != len(fields) {
			t.Fatalf("parseGrid(%q) = %v: %d entries for %d fields", spec, lims, len(lims), len(fields))
		}
		for i, v := range lims {
			if v < 0 {
				t.Fatalf("parseGrid(%q) accepted negative limit %d", spec, v)
			}
			// Each accepted entry must re-parse to the same value (the
			// parser may strip surrounding spaces and nothing else).
			got, err := strconv.Atoi(strings.TrimSpace(fields[i]))
			if err != nil || got != v {
				t.Fatalf("parseGrid(%q) entry %d: %q became %d", spec, i, fields[i], v)
			}
		}
	})
}
