package main

import (
	"strconv"
	"strings"
	"testing"
)

func TestParseGrid(t *testing.T) {
	lims, err := parseGrid("2,4, 8 ,0")
	if err != nil {
		t.Fatal(err)
	}
	want := []int{2, 4, 8, 0}
	if len(lims) != len(want) {
		t.Fatalf("lims = %v", lims)
	}
	for i := range want {
		if lims[i] != want[i] {
			t.Fatalf("lims = %v, want %v", lims, want)
		}
	}
	for _, bad := range []string{"", "2,,4", "2,x", "-1", "2,4.5", "2;4"} {
		if _, err := parseGrid(bad); err == nil {
			t.Errorf("parseGrid(%q) accepted", bad)
		}
	}
}

// FuzzParseGrid asserts the sweep-grid parser's safety properties over
// arbitrary input: it never panics, never silently drops or invents
// entries, and never returns a negative limit (a malformed grid must be
// rejected, not quietly turned into limit 0 = unlimited).
func FuzzParseGrid(f *testing.F) {
	for _, seed := range []string{
		"2,4,8,16,32,64,0", "0", " 7 ", "1,-1", "a,b", "", ",", "2,,4",
		"9999999999999999999999", "+3", "0x10", "3_0",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, spec string) {
		lims, err := parseGrid(spec)
		if err != nil {
			if lims != nil {
				t.Fatalf("parseGrid(%q) returned both values and error", spec)
			}
			return
		}
		fields := strings.Split(spec, ",")
		if len(lims) != len(fields) {
			t.Fatalf("parseGrid(%q) = %v: %d entries for %d fields", spec, lims, len(lims), len(fields))
		}
		for i, v := range lims {
			if v < 0 {
				t.Fatalf("parseGrid(%q) accepted negative limit %d", spec, v)
			}
			// Each accepted entry must re-parse to the same value (the
			// parser may strip surrounding spaces and nothing else).
			got, err := strconv.Atoi(strings.TrimSpace(fields[i]))
			if err != nil || got != v {
				t.Fatalf("parseGrid(%q) entry %d: %q became %d", spec, i, fields[i], v)
			}
		}
	})
}
