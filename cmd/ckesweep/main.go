// Command ckesweep reproduces Figure 9: Weighted Speedup over a grid of
// static in-flight memory access limits (SMIL) for a 2-kernel workload.
// The grid points are independent simulations and run concurrently on a
// bounded worker pool (-parallel); output is identical to a serial run.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"

	"repro"
	"repro/internal/cli"
	"repro/internal/runner"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("ckesweep: ")
	pair := flag.String("pair", "bp,ks", "kernel pair")
	sms := flag.Int("sms", 4, "SMs")
	cycles := flag.Int64("cycles", 150_000, "cycles per point")
	grid := flag.String("grid", "2,4,8,16,32,64,0", "limits to sweep (0 = unlimited)")
	parallel := flag.Int("parallel", 0, "worker pool size (0 = GOMAXPROCS, 1 = serial)")
	warmup := flag.Int64("warmup", 0, "unmanaged warmup cycles per point (grid points share one warmup family; see -fork-warmup)")
	rb := cli.AddFlags(flag.CommandLine)
	prof := cli.AddProfileFlags(flag.CommandLine)
	flag.Parse()
	if err := rb.Validate(); err != nil {
		log.Fatal(err)
	}
	stopProf, err := prof.Start()
	if err != nil {
		log.Fatal(err)
	}
	defer stopProf()
	ctx, stop := cli.SignalContext()
	defer stop()

	cfg := gcke.ScaledConfig(*sms)
	s := gcke.NewSession(cfg, *cycles)
	s.ProfileCycles = 60_000
	s.Check = rb.Check
	s.Workers = prof.Workers
	s.ForkWarmup = rb.ForkWarmup

	var ds []gcke.Kernel
	for _, n := range strings.Split(*pair, ",") {
		d, err := gcke.Benchmark(strings.TrimSpace(n))
		if err != nil {
			log.Fatal(err)
		}
		ds = append(ds, d)
	}
	lims, err := parseGrid(*grid)
	if err != nil {
		log.Fatal(err)
	}

	// One job per (limit0, limit1) grid point, in row-major print order.
	var jobs []runner.Job
	for _, l0 := range lims {
		for _, l1 := range lims {
			jobs = append(jobs, runner.Job{
				Session: s,
				Kernels: ds,
				Scheme: gcke.Scheme{
					Partition:    gcke.PartitionWarpedSlicer,
					Limiting:     gcke.LimitStatic,
					StaticLimits: []int{l0, l1},
					Warmup:       *warmup,
				},
			})
		}
	}
	unique, expand, err := dedupeJobs(jobs)
	if err != nil {
		log.Fatal(err)
	}
	if n := len(jobs) - len(unique); n > 0 {
		log.Printf("collapsed %d duplicate grid point(s): %d unique of %d submitted", n, len(unique), len(jobs))
	}
	jnl, err := rb.OpenJournal(log.Printf)
	if err != nil {
		log.Fatal(err)
	}
	if jnl != nil {
		defer jnl.Close()
	}
	rcache, err := rb.OpenCache(log.Printf)
	if err != nil {
		log.Fatal(err)
	}
	if rcache != nil {
		defer rcache.Close()
	}
	r := runner.New(*parallel)
	rb.Apply(r, jnl, rcache)
	results := expand(r.Run(ctx, unique))
	failed, err := rb.Failures(log.Printf, results)
	if err != nil {
		log.Fatal(err)
	}

	name := func(v int) string {
		if v == 0 {
			return "inf"
		}
		return fmt.Sprint(v)
	}
	fmt.Printf("Weighted Speedup, %s: rows=Limit_k0(%s), cols=Limit_k1(%s)\n", *pair, ds[0].Name, ds[1].Name)
	fmt.Printf("%6s", "")
	for _, l1 := range lims {
		fmt.Printf(" %6s", name(l1))
	}
	fmt.Println()
	bestWS, bestI, bestJ := -1.0, 0, 0
	for i, l0 := range lims {
		fmt.Printf("%6s", name(l0))
		for j, l1 := range lims {
			res := results[i*len(lims)+j]
			if res.Err != nil {
				fmt.Printf(" %6s", "fail")
				continue
			}
			ws := res.Res.WeightedSpeedup()
			if ws > bestWS {
				bestWS, bestI, bestJ = ws, l0, l1
			}
			fmt.Printf(" %6.3f", ws)
		}
		fmt.Println()
	}
	if bestWS >= 0 {
		fmt.Printf("best: (%s,%s) WS=%.3f\n", name(bestI), name(bestJ), bestWS)
	}
	if failed > 0 {
		log.Print(cli.FailureSummary(results))
		os.Exit(1)
	}
}

// dedupeJobs collapses jobs with identical fingerprints (runner.Job.Key)
// at parse time, before any simulation: a grid spec like "2,2,4" submits
// duplicate points, and the engine is deterministic, so simulating a
// fingerprint once is enough. It returns the unique jobs in
// first-appearance order and an expand function mapping the unique
// results back onto the original grid shape.
func dedupeJobs(jobs []runner.Job) ([]runner.Job, func([]runner.Result) []runner.Result, error) {
	var unique []runner.Job
	firstOf := make(map[string]int) // fingerprint -> index in unique
	slot := make([]int, len(jobs))  // original index -> index in unique
	for i := range jobs {
		key, err := jobs[i].Key()
		if err != nil {
			return nil, nil, err
		}
		u, ok := firstOf[key]
		if !ok {
			u = len(unique)
			firstOf[key] = u
			unique = append(unique, jobs[i])
		}
		slot[i] = u
	}
	expand := func(res []runner.Result) []runner.Result {
		out := make([]runner.Result, len(slot))
		for i, u := range slot {
			out[i] = res[u]
		}
		return out
	}
	return unique, expand, nil
}

// parseGrid parses the comma-separated limit list, rejecting anything
// that is not a non-negative integer — a silently-dropped typo would
// otherwise become limit 0 (= unlimited) and corrupt the sweep.
func parseGrid(spec string) ([]int, error) {
	var lims []int
	for _, g := range strings.Split(spec, ",") {
		g = strings.TrimSpace(g)
		v, err := strconv.Atoi(g)
		if err != nil {
			return nil, fmt.Errorf("bad grid entry %q: limits must be integers (0 = unlimited)", g)
		}
		if v < 0 {
			return nil, fmt.Errorf("bad grid entry %q: limits cannot be negative", g)
		}
		lims = append(lims, v)
	}
	return lims, nil
}
