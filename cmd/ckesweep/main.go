// Command ckesweep reproduces Figure 9: Weighted Speedup over a grid of
// static in-flight memory access limits (SMIL) for a 2-kernel workload.
// The grid points are independent simulations and run concurrently on a
// bounded worker pool (-parallel); output is identical to a serial run.
//
// With -fleet the sweep is instead sharded across remote ckeserve
// workers (started with -worker) by the fault-tolerant coordinator in
// internal/fleet: jobs are leased, requeued past dead or misbehaving
// workers, stragglers are hedged, and the merged result stream — NDJSON
// on stdout, one line per grid point in submission order — is
// byte-identical to a single-node run. -journal then names the
// coordinator's assignment journal: a killed coordinator restarted with
// the same journal resumes from the union of its own journal and every
// reachable worker's /journalz.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"strconv"
	"strings"
	"time"

	"repro"
	"repro/internal/backoff"
	"repro/internal/chaos"
	"repro/internal/cli"
	"repro/internal/fleet"
	"repro/internal/runner"
	"repro/internal/server"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("ckesweep: ")
	pair := flag.String("pair", "bp,ks", "kernel pair")
	sms := flag.Int("sms", 4, "SMs")
	cycles := flag.Int64("cycles", 150_000, "cycles per point")
	grid := flag.String("grid", "2,4,8,16,32,64,0", "limits to sweep (0 = unlimited)")
	parallel := flag.Int("parallel", 0, "worker pool size (0 = GOMAXPROCS, 1 = serial)")
	warmup := flag.Int64("warmup", 0, "unmanaged warmup cycles per point (grid points share one warmup family; see -fork-warmup)")
	fleetWorkers := flag.String("fleet", "", "comma-separated ckeserve -worker URLs; shard the sweep across them (NDJSON output)")
	fleetAddr := flag.String("fleet-addr", "", "coordinator control-plane listen address (/statz, /healthz); empty = off")
	fleetChaos := flag.String("fleet-chaos", "", "coordinator-side network fault injection (dev only), e.g. netdrop=0.3,net5xx=0.3,seed=42,failures=1")
	fleetAttempts := flag.Int("fleet-attempts", 8, "dispatch attempts per grid point before the coordinator gives up on it")
	fleetSlots := flag.Int("fleet-slots", 0, "concurrent dispatches per worker (0 = 2; keep at or below each worker's admission capacity)")
	hedgeAfter := flag.Duration("hedge-after", 0, "floor of the straggler-hedge threshold (0 = hedge only once a latency EWMA exists; negative disables hedging)")
	auditRate := flag.Float64("audit-rate", 0, "fraction of completed grid points re-executed on a different worker and byte-compared; divergence quarantines the lying worker (0 = off, 1 = audit everything)")
	fleetRetryBudget := flag.Float64("fleet-retry-budget", 0.1, "requeue tokens earned per audited completion; past-budget requeues are paced, never dropped")
	fleetRetryBurst := flag.Float64("fleet-retry-burst", 32, "fleet retry-budget token cap (also the initial balance)")
	fleetRetryWait := flag.Duration("fleet-retry-wait", 15*time.Second, "pacing delay applied to a requeue when the retry budget is empty")
	rb := cli.AddFlags(flag.CommandLine)
	prof := cli.AddProfileFlags(flag.CommandLine)
	flag.Parse()
	if err := rb.Validate(); err != nil {
		log.Fatal(err)
	}
	stopProf, err := prof.Start()
	if err != nil {
		log.Fatal(err)
	}
	defer stopProf()
	ctx, stop := cli.SignalContext()
	defer stop()

	if *fleetWorkers != "" {
		code := fleetSweep(ctx, rb, fleetOptions{
			workers:     strings.Split(*fleetWorkers, ","),
			addr:        *fleetAddr,
			chaosSpec:   *fleetChaos,
			attempts:    *fleetAttempts,
			slots:       *fleetSlots,
			hedgeAfter:  *hedgeAfter,
			auditRate:   *auditRate,
			retryBudget: *fleetRetryBudget,
			retryBurst:  *fleetRetryBurst,
			retryWait:   *fleetRetryWait,
		}, *pair, *sms, *cycles, *grid, *warmup)
		stopProf()
		os.Exit(code)
	}

	cfg := gcke.ScaledConfig(*sms)
	s := gcke.NewSession(cfg, *cycles)
	s.ProfileCycles = 60_000
	s.Check = rb.Check
	s.Workers = prof.Workers
	s.PartWorkers = prof.PartWorkers
	s.PhaseTime = prof.PhaseTrace
	s.ForkWarmup = rb.ForkWarmup

	var ds []gcke.Kernel
	for _, n := range strings.Split(*pair, ",") {
		d, err := gcke.Benchmark(strings.TrimSpace(n))
		if err != nil {
			log.Fatal(err)
		}
		ds = append(ds, d)
	}
	lims, err := parseGrid(*grid)
	if err != nil {
		log.Fatal(err)
	}

	// One job per (limit0, limit1) grid point, in row-major print order.
	var jobs []runner.Job
	for _, l0 := range lims {
		for _, l1 := range lims {
			jobs = append(jobs, runner.Job{
				Session: s,
				Kernels: ds,
				Scheme: gcke.Scheme{
					Partition:    gcke.PartitionWarpedSlicer,
					Limiting:     gcke.LimitStatic,
					StaticLimits: []int{l0, l1},
					Warmup:       *warmup,
				},
			})
		}
	}
	unique, expand, err := dedupeJobs(jobs)
	if err != nil {
		log.Fatal(err)
	}
	if n := len(jobs) - len(unique); n > 0 {
		log.Printf("collapsed %d duplicate grid point(s): %d unique of %d submitted", n, len(unique), len(jobs))
	}
	jnl, err := rb.OpenJournal(log.Printf)
	if err != nil {
		log.Fatal(err)
	}
	if jnl != nil {
		defer jnl.Close()
	}
	rcache, err := rb.OpenCache(log.Printf)
	if err != nil {
		log.Fatal(err)
	}
	if rcache != nil {
		defer rcache.Close()
	}
	ckpts, err := rb.OpenCheckpoints(log.Printf)
	if err != nil {
		log.Fatal(err)
	}
	r := runner.New(*parallel)
	rb.Apply(r, jnl, rcache, ckpts)
	results := expand(r.Run(ctx, unique))
	failed, err := rb.Failures(log.Printf, results)
	if err != nil {
		log.Fatal(err)
	}

	name := func(v int) string {
		if v == 0 {
			return "inf"
		}
		return fmt.Sprint(v)
	}
	fmt.Printf("Weighted Speedup, %s: rows=Limit_k0(%s), cols=Limit_k1(%s)\n", *pair, ds[0].Name, ds[1].Name)
	fmt.Printf("%6s", "")
	for _, l1 := range lims {
		fmt.Printf(" %6s", name(l1))
	}
	fmt.Println()
	bestWS, bestI, bestJ := -1.0, 0, 0
	for i, l0 := range lims {
		fmt.Printf("%6s", name(l0))
		for j, l1 := range lims {
			res := results[i*len(lims)+j]
			if res.Err != nil {
				fmt.Printf(" %6s", "fail")
				continue
			}
			ws := res.Res.WeightedSpeedup()
			if ws > bestWS {
				bestWS, bestI, bestJ = ws, l0, l1
			}
			fmt.Printf(" %6.3f", ws)
		}
		fmt.Println()
	}
	if bestWS >= 0 {
		fmt.Printf("best: (%s,%s) WS=%.3f\n", name(bestI), name(bestJ), bestWS)
	}
	if failed > 0 {
		log.Print(cli.FailureSummary(results))
		os.Exit(1)
	}
}

// fleetOptions carries the -fleet* flag values into fleetSweep.
type fleetOptions struct {
	workers     []string
	addr        string
	chaosSpec   string
	attempts    int
	slots       int
	hedgeAfter  time.Duration
	auditRate   float64
	retryBudget float64
	retryBurst  float64
	retryWait   time.Duration
}

// fleetSweep shards the grid across remote workers via the fleet
// coordinator and streams the merged NDJSON (one line per grid point,
// submission order) to stdout. Returns the process exit code.
func fleetSweep(ctx context.Context, rb *cli.Robustness, o fleetOptions, pair string, sms int, cycles int64, grid string, warmup int64) int {
	lims, err := parseGrid(grid)
	if err != nil {
		log.Print(err)
		return 1
	}
	var kernels []string
	for _, n := range strings.Split(pair, ",") {
		kernels = append(kernels, strings.TrimSpace(n))
	}
	var timeout string
	if rb.Timeout > 0 {
		timeout = rb.Timeout.String()
	}
	var reqs []server.JobRequest
	for _, l0 := range lims {
		for _, l1 := range lims {
			reqs = append(reqs, server.JobRequest{
				SMs:           sms,
				Cycles:        cycles,
				ProfileCycles: 60_000, // match the local sweep's profiling window
				Kernels:       kernels,
				Scheme: gcke.Scheme{
					Partition:    gcke.PartitionWarpedSlicer,
					Limiting:     gcke.LimitStatic,
					StaticLimits: []int{l0, l1},
					Warmup:       warmup,
				},
				Timeout: timeout,
			})
		}
	}
	jnl, err := rb.OpenJournal(log.Printf)
	if err != nil {
		log.Print(err)
		return 1
	}
	cfg := fleet.Config{
		Workers:          o.workers,
		JobTimeout:       rb.Timeout,
		MaxAttempts:      o.attempts,
		SlotsPerWorker:   o.slots,
		Retry:            backoff.Default(),
		HedgeAfter:       o.hedgeAfter,
		AuditRate:        o.auditRate,
		RetryBudgetRatio: o.retryBudget,
		RetryBudgetBurst: o.retryBurst,
		RetryBudgetWait:  o.retryWait,
		Journal:          jnl,
		Logf:             log.Printf,
	}
	if o.chaosSpec != "" {
		ccfg, err := chaos.Parse(o.chaosSpec)
		if err != nil {
			log.Print(err)
			return 1
		}
		if ccfg.Enabled() {
			cfg.Transport = chaos.New(ccfg).Transport(nil)
			log.Printf("fleet chaos armed: %s (network faults on the dispatch path)", o.chaosSpec)
		}
	}
	c, err := fleet.New(cfg)
	if err != nil {
		log.Print(err)
		return 1
	}
	if o.addr != "" {
		go func() {
			log.Printf("fleet control plane on %s (/statz, /healthz)", o.addr)
			if err := http.ListenAndServe(o.addr, c.Handler()); err != nil {
				log.Printf("fleet control plane: %v", err)
			}
		}()
	}
	runErr := c.Run(ctx, reqs, os.Stdout)
	st := c.StatsSnapshot()
	log.Printf("fleet: %d completed (%d resumed), %d failed, %d dispatches, %d requeues (%d budget-paced), %d sheds, %d hedges (%d won), %d ejections, %d audits (%d mismatched), %d quarantined",
		st.Completed, st.Resumed, st.Failed, st.Dispatched, st.Requeues, st.RetryBudgetWaits, st.Shed429, st.Hedges, st.HedgeWins, st.Ejections, st.Audits, st.AuditMismatches, st.Quarantined)
	if jnl != nil {
		if err := jnl.Close(); err != nil {
			log.Print(err)
			return 1
		}
	}
	if runErr != nil {
		log.Printf("fleet: %v", runErr)
		return 1
	}
	if st.Failed > 0 {
		return 1
	}
	return 0
}

// dedupeJobs collapses jobs with identical fingerprints (runner.Job.Key)
// at parse time, before any simulation: a grid spec like "2,2,4" submits
// duplicate points, and the engine is deterministic, so simulating a
// fingerprint once is enough. It returns the unique jobs in
// first-appearance order and an expand function mapping the unique
// results back onto the original grid shape.
func dedupeJobs(jobs []runner.Job) ([]runner.Job, func([]runner.Result) []runner.Result, error) {
	var unique []runner.Job
	firstOf := make(map[string]int) // fingerprint -> index in unique
	slot := make([]int, len(jobs))  // original index -> index in unique
	for i := range jobs {
		key, err := jobs[i].Key()
		if err != nil {
			return nil, nil, err
		}
		u, ok := firstOf[key]
		if !ok {
			u = len(unique)
			firstOf[key] = u
			unique = append(unique, jobs[i])
		}
		slot[i] = u
	}
	expand := func(res []runner.Result) []runner.Result {
		out := make([]runner.Result, len(slot))
		for i, u := range slot {
			out[i] = res[u]
		}
		return out
	}
	return unique, expand, nil
}

// parseGrid parses the comma-separated limit list, rejecting anything
// that is not a non-negative integer — a silently-dropped typo would
// otherwise become limit 0 (= unlimited) and corrupt the sweep.
func parseGrid(spec string) ([]int, error) {
	var lims []int
	for _, g := range strings.Split(spec, ",") {
		g = strings.TrimSpace(g)
		v, err := strconv.Atoi(g)
		if err != nil {
			return nil, fmt.Errorf("bad grid entry %q: limits must be integers (0 = unlimited)", g)
		}
		if v < 0 {
			return nil, fmt.Errorf("bad grid entry %q: limits cannot be negative", g)
		}
		lims = append(lims, v)
	}
	return lims, nil
}
