// Command ckesweep reproduces Figure 9: Weighted Speedup over a grid of
// static in-flight memory access limits (SMIL) for a 2-kernel workload.
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"

	"repro"
)

func main() {
	log.SetFlags(0)
	pair := flag.String("pair", "bp,ks", "kernel pair")
	sms := flag.Int("sms", 4, "SMs")
	cycles := flag.Int64("cycles", 150_000, "cycles per point")
	grid := flag.String("grid", "2,4,8,16,32,64,0", "limits to sweep (0 = unlimited)")
	flag.Parse()

	cfg := gcke.ScaledConfig(*sms)
	s := gcke.NewSession(cfg, *cycles)
	s.ProfileCycles = 60_000

	var ds []gcke.Kernel
	for _, n := range strings.Split(*pair, ",") {
		d, err := gcke.Benchmark(strings.TrimSpace(n))
		if err != nil {
			log.Fatal(err)
		}
		ds = append(ds, d)
	}
	var lims []int
	for _, g := range strings.Split(*grid, ",") {
		var v int
		fmt.Sscanf(g, "%d", &v)
		lims = append(lims, v)
	}

	name := func(v int) string {
		if v == 0 {
			return "inf"
		}
		return fmt.Sprint(v)
	}
	fmt.Printf("Weighted Speedup, %s: rows=Limit_k0(%s), cols=Limit_k1(%s)\n", *pair, ds[0].Name, ds[1].Name)
	fmt.Printf("%6s", "")
	for _, l1 := range lims {
		fmt.Printf(" %6s", name(l1))
	}
	fmt.Println()
	bestWS, bestI, bestJ := -1.0, 0, 0
	for _, l0 := range lims {
		fmt.Printf("%6s", name(l0))
		for _, l1 := range lims {
			res, err := s.RunWorkload(ds, gcke.Scheme{
				Partition:    gcke.PartitionWarpedSlicer,
				Limiting:     gcke.LimitStatic,
				StaticLimits: []int{l0, l1},
			})
			if err != nil {
				log.Fatal(err)
			}
			ws := res.WeightedSpeedup()
			if ws > bestWS {
				bestWS, bestI, bestJ = ws, l0, l1
			}
			fmt.Printf(" %6.3f", ws)
		}
		fmt.Println()
	}
	fmt.Printf("best: (%s,%s) WS=%.3f\n", name(bestI), name(bestJ), bestWS)
}
