// Command ckechar characterizes the thirteen paper benchmarks in
// isolation, reproducing Table 2 (occupancies, Cinst/Minst, Req/Minst,
// L1D miss and reservation-failure rates, C/M classification) and
// Figure 2 (ALU/SFU utilization vs LSU stall share).
//
// Usage:
//
//	ckechar [-sms N] [-cycles N] [-bench name,name,...] [-parallel N]
//
// The per-benchmark isolated runs are independent and execute
// concurrently on a bounded worker pool; rows print in benchmark order
// regardless of which run finishes first.
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"

	"repro"
	"repro/internal/cli"
	"repro/internal/kern"
	"repro/internal/runner"
)

// charRow is one benchmark's measured characterization.
type charRow struct {
	desc gcke.Kernel
	res  *gcke.RunResult
	cls  kern.Class
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("ckechar: ")
	sms := flag.Int("sms", 4, "number of SMs (memory system scales with it)")
	cycles := flag.Int64("cycles", 100_000, "simulated cycles per run")
	benchList := flag.String("bench", "", "comma-separated benchmark subset (default: all)")
	verbose := flag.Bool("v", false, "print reservation-failure breakdown")
	parallel := flag.Int("parallel", 0, "worker pool size (0 = GOMAXPROCS, 1 = serial)")
	check := flag.Bool("check", false, "enable the per-cycle simulator invariant watchdog")
	prof := cli.AddProfileFlags(flag.CommandLine)
	flag.Parse()
	ctx, stop := cli.SignalContext()
	defer stop()
	stopProf, err := prof.Start()
	if err != nil {
		log.Fatal(err)
	}
	defer stopProf()

	cfg := gcke.ScaledConfig(*sms)
	s := gcke.NewSession(cfg, *cycles)
	s.Check = *check
	s.Workers = prof.Workers
	s.PartWorkers = prof.PartWorkers
	s.PhaseTime = prof.PhaseTrace

	names := gcke.BenchmarkNames()
	if *benchList != "" {
		names = strings.Split(*benchList, ",")
	}

	rows := make([]charRow, len(names))
	err = runner.MapErr(ctx, *parallel, len(names), func(i int) error {
		d, err := gcke.Benchmark(strings.TrimSpace(names[i]))
		if err != nil {
			return err
		}
		r, err := s.RunIsolatedCtx(ctx, d)
		if err != nil {
			return fmt.Errorf("%s: %w", d.Name, err)
		}
		cls, err := s.ClassifyCtx(ctx, d)
		if err != nil {
			return err
		}
		rows[i] = charRow{desc: d, res: r, cls: cls}
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("Benchmark characterization (%d SMs, %d cycles)\n\n", *sms, *cycles)
	fmt.Printf("%-4s %6s %7s %8s %7s %6s %6s %9s %10s %5s %8s %8s %9s\n",
		"name", "RF_oc", "SMEM_oc", "Thrd_oc", "TB_oc",
		"C/M", "Req/M", "l1d_miss", "l1d_rsfail", "type", "IPC", "ALUutil", "LSUstall")
	for _, row := range rows {
		d, r := row.desc, row.res
		maxTBs := d.MaxTBsPerSM(&cfg)
		occ := d.OccupancyAt(&cfg, maxTBs)
		k := r.Kernels[0]
		reqPerM := 0.0
		if k.MemInstrs > 0 {
			reqPerM = float64(k.Requests) / float64(k.MemInstrs)
		}
		fmt.Printf("%-4s %5.1f%% %6.1f%% %7.1f%% %6.1f%% %6d %6.1f %9.3f %10.3f %5s %8.3f %8.3f %8.1f%%\n",
			d.Name, occ.RF*100, occ.Smem*100, occ.Threads*100, occ.TBs*100,
			d.CPerM, reqPerM, k.L1D.MissRate(), k.L1D.RsFailRate(),
			row.cls, k.IPC, r.ALUUtil(), r.LSUStallFrac()*100)
		if *verbose {
			fmt.Printf("     rsfail: mshr=%d missq=%d line=%d  (acc=%d miss=%d merged=%d)\n",
				k.L1D.RsFailMSHR, k.L1D.RsFailMQ, k.L1D.RsFailLine,
				k.L1D.Accesses, k.L1D.Misses, k.L1D.Merged)
		}
	}
}
