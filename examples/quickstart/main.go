// Quickstart: run the paper's running example — the compute-intensive
// backprop (bp) sharing SMs with the memory-intensive spmv (sv) — under
// Warped-Slicer TB partitioning, then add the paper's two mechanisms
// (QBMI and DMIL) and compare Weighted Speedup, ANTT and Fairness.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	log.SetFlags(0)

	// A 4-SM machine with a proportionally scaled memory system keeps
	// this example fast; use gcke.DefaultConfig() for the paper's full
	// 16-SM GPU.
	cfg := gcke.ScaledConfig(4)
	session := gcke.NewSession(cfg, 60_000)

	bp, err := gcke.Benchmark("bp")
	if err != nil {
		log.Fatal(err)
	}
	sv, err := gcke.Benchmark("sv")
	if err != nil {
		log.Fatal(err)
	}
	workload := []gcke.Kernel{bp, sv}

	schemes := []gcke.Scheme{
		{Partition: gcke.PartitionWarpedSlicer},
		{Partition: gcke.PartitionWarpedSlicer, MemIssue: gcke.MemIssueQBMI},
		{Partition: gcke.PartitionWarpedSlicer, Limiting: gcke.LimitDMIL},
	}

	fmt.Println("workload: bp (compute-intensive) + sv (memory-intensive)")
	fmt.Printf("%-12s %6s %6s %8s %6s %6s %9s\n",
		"scheme", "WS", "ANTT", "fairness", "bp", "sv", "tb-split")
	for _, sc := range schemes {
		res, err := session.RunWorkload(workload, sc)
		if err != nil {
			log.Fatal(err)
		}
		sp := res.SpeedupsOf()
		fmt.Printf("%-12s %6.3f %6.3f %8.3f %6.3f %6.3f %9v\n",
			sc.Name(), res.WeightedSpeedup(), res.ANTT(), res.Fairness(),
			sp[0], sp[1], res.TBPartition)
	}
}
