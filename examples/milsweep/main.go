// Milsweep reproduces the paper's Figure 9 experiment: sweep static
// in-flight memory access limits (SMIL) over a grid for a C+M pair and
// print the Weighted Speedup surface. The landscape shows the paper's
// shape — capping the memory-intensive kernel tightly while leaving the
// compute-intensive kernel unlimited maximizes the weighted speedup —
// and the optimum DMIL is expected to find dynamically.
package main

import (
	"flag"
	"fmt"
	"log"

	gcke "repro"
)

func main() {
	log.SetFlags(0)
	a := flag.String("a", "bp", "first kernel (compute-intensive)")
	b := flag.String("b", "ks", "second kernel (memory-intensive)")
	flag.Parse()

	cfg := gcke.ScaledConfig(4)
	session := gcke.NewSession(cfg, 120_000)
	session.ProfileCycles = 60_000

	ka, err := gcke.Benchmark(*a)
	if err != nil {
		log.Fatal(err)
	}
	kb, err := gcke.Benchmark(*b)
	if err != nil {
		log.Fatal(err)
	}
	wl := []gcke.Kernel{ka, kb}

	grid := []int{2, 8, 32, 0} // 0 = unlimited (the paper's "Inf" point)
	name := func(v int) string {
		if v == 0 {
			return "inf"
		}
		return fmt.Sprint(v)
	}

	fmt.Printf("Weighted Speedup of %s+%s under static limits (rows Limit_%s, cols Limit_%s)\n",
		*a, *b, *a, *b)
	fmt.Printf("%6s", "")
	for _, l1 := range grid {
		fmt.Printf(" %7s", name(l1))
	}
	fmt.Println()
	best, bi, bj := -1.0, 0, 0
	for _, l0 := range grid {
		fmt.Printf("%6s", name(l0))
		for _, l1 := range grid {
			res, err := session.RunWorkload(wl, gcke.Scheme{
				Partition:    gcke.PartitionWarpedSlicer,
				Limiting:     gcke.LimitStatic,
				StaticLimits: []int{l0, l1},
			})
			if err != nil {
				log.Fatal(err)
			}
			ws := res.WeightedSpeedup()
			fmt.Printf(" %7.3f", ws)
			if ws > best {
				best, bi, bj = ws, l0, l1
			}
		}
		fmt.Println()
	}
	fmt.Printf("\nstatic optimum: (Limit_%s=%s, Limit_%s=%s) WS=%.3f\n",
		*a, name(bi), *b, name(bj), best)

	dmil, err := session.RunWorkload(wl, gcke.Scheme{
		Partition: gcke.PartitionWarpedSlicer,
		Limiting:  gcke.LimitDMIL,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dynamic (DMIL) without profiling:        WS=%.3f\n", dmil.WeightedSpeedup())
}
