// Customkernel shows the library as a downstream user would adopt it:
// define your own synthetic kernels (rather than the paper's Table 2
// set), characterize them, and evaluate CKE schemes on the mix.
//
// The example models a latency-sensitive "inference" kernel (small
// working set, high compute density) co-running with a "preprocessing"
// streamer (uncoalesced gathers, DRAM-bound) and asks: which mechanism
// protects inference throughput?
package main

import (
	"fmt"
	"log"

	gcke "repro"
)

func main() {
	log.SetFlags(0)

	inference := gcke.Kernel{
		Name:         "infer",
		ThreadsPerTB: 128, RegsPerThread: 32, SmemPerTB: 8192,
		CPerM: 8, SFUFrac: 0.25, ReqPerMinst: 2, StoreFrac: 0.05,
		DepDist: 8, MaxPendingLoads: 2,
		FootprintLines: 1024, ReuseProb: 0.55, ReuseWindow: 4,
		HotProb: 0.2, HotLines: 32,
		WarmProb: 0.6, WarmL2Frac: 0.2,
		InstrsPerWarp: 4000,
	}
	preprocess := gcke.Kernel{
		Name:         "prep",
		ThreadsPerTB: 256, RegsPerThread: 16, SmemPerTB: 0,
		CPerM: 2, SFUFrac: 0.02, ReqPerMinst: 12, StoreFrac: 0.15,
		DepDist: 20, MaxPendingLoads: 6,
		FootprintLines: 16384, ReuseProb: 0.1, ReuseWindow: 4,
		Scatter:       true,
		InstrsPerWarp: 4000,
	}

	cfg := gcke.ScaledConfig(4)
	session := gcke.NewSession(cfg, 150_000)
	session.ProfileCycles = 60_000

	for _, d := range []gcke.Kernel{inference, preprocess} {
		cls, err := session.Classify(d)
		if err != nil {
			log.Fatal(err)
		}
		r, _ := session.RunIsolated(d)
		fmt.Printf("%-6s type=%s isolatedIPC=%.2f l1dMiss=%.2f lsuStall=%.1f%%\n",
			d.Name, cls, r.Kernels[0].IPC,
			r.Kernels[0].L1D.MissRate(), r.LSUStallFrac()*100)
	}

	wl := []gcke.Kernel{inference, preprocess}
	fmt.Printf("\n%-10s %6s %6s %8s %7s %7s\n",
		"scheme", "WS", "ANTT", "fairness", "infer", "prep")
	for _, sc := range []gcke.Scheme{
		{Partition: gcke.PartitionWarpedSlicer},
		{Partition: gcke.PartitionWarpedSlicer, MemIssue: gcke.MemIssueQBMI},
		{Partition: gcke.PartitionWarpedSlicer, Limiting: gcke.LimitDMIL},
		{Partition: gcke.PartitionWarpedSlicer, Limiting: gcke.LimitL2MIL},
	} {
		res, err := session.RunWorkload(wl, sc)
		if err != nil {
			log.Fatal(err)
		}
		sp := res.SpeedupsOf()
		fmt.Printf("%-10s %6.3f %6.3f %8.3f %7.3f %7.3f\n",
			sc.Name(), res.WeightedSpeedup(), res.ANTT(), res.Fairness(), sp[0], sp[1])
	}

	// Section 4.5's energy argument, measurable per scheme.
	fmt.Printf("\nenergy efficiency (instructions per microjoule):\n")
	model := gcke.DefaultEnergyModel()
	for _, sc := range []gcke.Scheme{
		{Partition: gcke.PartitionWarpedSlicer},
		{Partition: gcke.PartitionWarpedSlicer, Limiting: gcke.LimitDMIL},
	} {
		res, err := session.RunWorkload(wl, sc)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-8s %8.1f\n", sc.Name(), res.InstrsPerMicroJoule(model))
	}
}
