// Multikernel reproduces the paper's Section 4.2 scalability claim:
// QBMI and DMIL are not restricted to kernel pairs. Three kernels — two
// memory-intensive and one compute-intensive — share every SM, and the
// mechanisms improve weighted speedup, ANTT and fairness over plain
// Warped-Slicer partitioning.
package main

import (
	"fmt"
	"log"

	gcke "repro"
)

func main() {
	log.SetFlags(0)
	cfg := gcke.ScaledConfig(4)
	session := gcke.NewSession(cfg, 150_000)
	session.ProfileCycles = 60_000

	var workload []gcke.Kernel
	for _, name := range []string{"bp", "sv", "ks"} {
		d, err := gcke.Benchmark(name)
		if err != nil {
			log.Fatal(err)
		}
		workload = append(workload, d)
	}

	schemes := []gcke.Scheme{
		{Partition: gcke.PartitionWarpedSlicer},
		{Partition: gcke.PartitionWarpedSlicer, MemIssue: gcke.MemIssueQBMI},
		{Partition: gcke.PartitionWarpedSlicer, Limiting: gcke.LimitDMIL},
	}

	fmt.Println("3-kernel workload bp+sv+ks (C+M+M)")
	fmt.Printf("%-10s %6s %6s %8s %7s  %s\n",
		"scheme", "WS", "ANTT", "fairness", "stall", "per-kernel speedups")
	for _, sc := range schemes {
		res, err := session.RunWorkload(workload, sc)
		if err != nil {
			log.Fatal(err)
		}
		sp := res.SpeedupsOf()
		fmt.Printf("%-10s %6.3f %6.3f %8.3f %6.1f%%  bp=%.3f sv=%.3f ks=%.3f\n",
			sc.Name(), res.WeightedSpeedup(), res.ANTT(), res.Fairness(),
			res.LSUStallFrac()*100, sp[0], sp[1], sp[2])
	}
}
