// Starvation reproduces the paper's Figure 6 scenario: the compute
// kernel bp shares SMs with the memory kernel sv, and its L1 D-cache
// access rate collapses far below its isolated rate because sv's memory
// instructions monopolize the shared memory pipeline. Quota-based
// balanced memory issuing (QBMI) then restores part of bp's access
// bandwidth — the paper's Figure 8 effect.
package main

import (
	"fmt"
	"log"

	gcke "repro"
)

func avg(series []uint32) float64 {
	if len(series) == 0 {
		return 0
	}
	var sum uint64
	for _, v := range series {
		sum += uint64(v)
	}
	return float64(sum) / float64(len(series))
}

func main() {
	log.SetFlags(0)
	cfg := gcke.ScaledConfig(4)
	session := gcke.NewSession(cfg, 120_000)
	session.ProfileCycles = 60_000

	bp, err := gcke.Benchmark("bp")
	if err != nil {
		log.Fatal(err)
	}
	sv, err := gcke.Benchmark("sv")
	if err != nil {
		log.Fatal(err)
	}

	// Isolated baselines with 1K-cycle time series.
	isoBP, err := session.RunIsolatedSeries(bp)
	if err != nil {
		log.Fatal(err)
	}
	isoSV, err := session.RunIsolatedSeries(sv)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("L1D accesses per 1K cycles (whole GPU):")
	fmt.Printf("  bp alone: %7.0f\n", avg(isoBP.Kernels[0].Series.L1Acc))
	fmt.Printf("  sv alone: %7.0f\n", avg(isoSV.Kernels[0].Series.L1Acc))

	for _, sc := range []gcke.Scheme{
		{Partition: gcke.PartitionWarpedSlicer, Series: true},
		{Partition: gcke.PartitionWarpedSlicer, MemIssue: gcke.MemIssueQBMI, Series: true},
	} {
		res, err := session.RunWorkload([]gcke.Kernel{bp, sv}, sc)
		if err != nil {
			log.Fatal(err)
		}
		sp := res.SpeedupsOf()
		fmt.Printf("\nco-run under %s (TB split %v):\n", sc.Name(), res.TBPartition)
		fmt.Printf("  bp: %7.0f accesses/1K  (normalized IPC %.3f)\n",
			avg(res.Kernels[0].Series.L1Acc), sp[0])
		fmt.Printf("  sv: %7.0f accesses/1K  (normalized IPC %.3f)\n",
			avg(res.Kernels[1].Series.L1Acc), sp[1])
		fmt.Printf("  memory pipeline stalled %.1f%% of cycles\n", res.LSUStallFrac()*100)
	}
}
