package gcke

import (
	"strings"
	"sync"
	"testing"
)

func testSession(t *testing.T) *Session {
	t.Helper()
	s := NewSession(ScaledConfig(2), 20_000)
	s.ProfileCycles = 15_000
	return s
}

func TestBenchmarkLookup(t *testing.T) {
	for _, name := range BenchmarkNames() {
		if _, err := Benchmark(name); err != nil {
			t.Errorf("Benchmark(%q): %v", name, err)
		}
	}
	if _, err := Benchmark("zz"); err == nil {
		t.Error("unknown benchmark accepted")
	}
	if len(Benchmarks()) != 13 {
		t.Errorf("Benchmarks() returned %d kernels, want 13", len(Benchmarks()))
	}
}

func TestSessionIsolatedCached(t *testing.T) {
	s := testSession(t)
	bp, _ := Benchmark("bp")
	r1, err := s.RunIsolated(bp)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := s.RunIsolated(bp)
	if err != nil {
		t.Fatal(err)
	}
	if r1 != r2 {
		t.Fatal("isolated results must be cached (same pointer)")
	}
	if r1.Kernels[0].IPC <= 0 {
		t.Fatal("isolated run made no progress")
	}
}

func TestSessionCurveShape(t *testing.T) {
	s := testSession(t)
	bp, _ := Benchmark("bp")
	curve, err := s.Curve(bp)
	if err != nil {
		t.Fatal(err)
	}
	cfg := s.Config()
	if len(curve) != bp.MaxTBsPerSM(&cfg) {
		t.Fatalf("curve has %d points, want %d", len(curve), bp.MaxTBsPerSM(&cfg))
	}
	// bp's performance must grow substantially from 1 TB to max TBs
	// (the paper's near-linear scaling in Figure 3a).
	if curve[len(curve)-1] < 2*curve[0] {
		t.Fatalf("bp scalability too flat: %v", curve)
	}
}

func TestClassifyMatchesTable2(t *testing.T) {
	if testing.Short() {
		t.Skip("classification needs full isolated runs")
	}
	s := NewSession(ScaledConfig(2), 40_000)
	s.ProfileCycles = 40_000
	for _, name := range BenchmarkNames() {
		d, _ := Benchmark(name)
		got, err := s.Classify(d)
		if err != nil {
			t.Fatal(err)
		}
		if got != d.Class {
			t.Errorf("%s classified %v, Table 2 says %v", name, got, d.Class)
		}
	}
}

func TestRunWorkloadWS(t *testing.T) {
	s := testSession(t)
	bp, _ := Benchmark("bp")
	sv, _ := Benchmark("sv")
	res, err := s.RunWorkload([]Kernel{bp, sv}, Scheme{Partition: PartitionWarpedSlicer})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.TBPartition) != 2 || res.TBPartition[0] < 1 || res.TBPartition[1] < 1 {
		t.Fatalf("bad partition %v", res.TBPartition)
	}
	if res.TheoreticalWS <= 0 {
		t.Fatal("theoretical WS missing")
	}
	ws := res.WeightedSpeedup()
	if ws <= 0 || ws > 2 {
		t.Fatalf("weighted speedup %v out of (0,2]", ws)
	}
	if res.ANTT() < 1 {
		t.Fatalf("ANTT %v < 1 (kernels cannot speed up under sharing)", res.ANTT())
	}
	f := res.Fairness()
	if f < 0 || f > 1 {
		t.Fatalf("fairness %v out of [0,1]", f)
	}
}

func TestRunWorkloadSchemes(t *testing.T) {
	s := testSession(t)
	bp, _ := Benchmark("bp")
	sv, _ := Benchmark("sv")
	wl := []Kernel{bp, sv}
	for _, sc := range []Scheme{
		{Partition: PartitionSpatial},
		{Partition: PartitionSMK, SMKQuota: true},
		{Partition: PartitionSMK, MemIssue: MemIssueQBMI},
		{Partition: PartitionWarpedSlicer, MemIssue: MemIssueRBMI},
		{Partition: PartitionWarpedSlicer, Limiting: LimitDMIL},
		{Partition: PartitionWarpedSlicer, Limiting: LimitGlobalDMIL},
		{Partition: PartitionWarpedSlicer, Limiting: LimitStatic, StaticLimits: []int{0, 8}},
		{Partition: PartitionWarpedSlicer, UCP: true},
		{Partition: PartitionLeftover},
		{Partition: PartitionEven},
		{Partition: PartitionManual, ManualTBs: []int{3, 3}},
	} {
		res, err := s.RunWorkload(wl, sc)
		if err != nil {
			t.Fatalf("%s: %v", sc.Name(), err)
		}
		if res.Kernels[0].Instrs == 0 && res.Kernels[1].Instrs == 0 {
			t.Fatalf("%s: no progress at all", sc.Name())
		}
	}
}

func TestRunWorkloadErrors(t *testing.T) {
	s := testSession(t)
	bp, _ := Benchmark("bp")
	if _, err := s.RunWorkload(nil, Scheme{}); err == nil {
		t.Error("empty workload accepted")
	}
	if _, err := s.RunWorkload([]Kernel{bp}, Scheme{
		Partition: PartitionWarpedSlicer, Limiting: LimitStatic,
	}); err == nil {
		t.Error("LimitStatic without StaticLimits accepted")
	}
	if _, err := s.RunWorkload([]Kernel{bp}, Scheme{
		Partition: PartitionManual, ManualTBs: []int{1, 2},
	}); err == nil {
		t.Error("manual partition with wrong arity accepted")
	}
}

func TestSchemeNames(t *testing.T) {
	cases := []struct {
		s    Scheme
		want string
	}{
		{Scheme{Partition: PartitionWarpedSlicer}, "WS"},
		{Scheme{Partition: PartitionWarpedSlicer, MemIssue: MemIssueQBMI}, "WS-QBMI"},
		{Scheme{Partition: PartitionWarpedSlicer, Limiting: LimitDMIL}, "WS-DMIL"},
		{Scheme{Partition: PartitionSMK, SMKQuota: true}, "SMK-(P+W)"},
		{Scheme{Partition: PartitionSMK, MemIssue: MemIssueQBMI}, "SMK-(P+QBMI)"},
		{Scheme{Partition: PartitionSMK, Limiting: LimitDMIL}, "SMK-(P+DMIL)"},
		{Scheme{Partition: PartitionSpatial}, "Spatial"},
		{Scheme{Partition: PartitionWarpedSlicer, UCP: true}, "WS-L1DPart"},
	}
	for _, c := range cases {
		if got := c.s.Name(); got != c.want {
			t.Errorf("Name() = %q, want %q", got, c.want)
		}
	}
}

func TestThreeKernelWorkload(t *testing.T) {
	s := testSession(t)
	var wl []Kernel
	for _, n := range []string{"bp", "sv", "dc"} {
		d, _ := Benchmark(n)
		wl = append(wl, d)
	}
	res, err := s.RunWorkload(wl, Scheme{Partition: PartitionSMK, MemIssue: MemIssueQBMI})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.SpeedupsOf()) != 3 {
		t.Fatal("want 3 speedups")
	}
	for i, k := range res.Kernels {
		if k.Instrs == 0 {
			t.Fatalf("kernel %d idle", i)
		}
	}
}

// TestInterferenceDirection encodes the paper's central observation: a
// compute kernel loses far more of its isolated performance when paired
// with a memory-intensive kernel than the memory kernel does, and DMIL
// reduces the memory pipeline stall dramatically.
func TestInterferenceDirection(t *testing.T) {
	if testing.Short() {
		t.Skip("needs a longer run")
	}
	s := NewSession(ScaledConfig(2), 100_000)
	s.ProfileCycles = 40_000
	bp, _ := Benchmark("bp")
	ks, _ := Benchmark("ks")
	wl := []Kernel{bp, ks}
	base, err := s.RunWorkload(wl, Scheme{Partition: PartitionWarpedSlicer})
	if err != nil {
		t.Fatal(err)
	}
	if base.LSUStallFrac() < 0.3 {
		t.Fatalf("baseline C+M stall %.2f, expected heavy memory pipeline stalls", base.LSUStallFrac())
	}
	sp := base.SpeedupsOf()
	if sp[0] >= sp[1] {
		t.Fatalf("compute kernel (%.2f) should suffer more than the memory kernel (%.2f)", sp[0], sp[1])
	}
	dmil, err := s.RunWorkload(wl, Scheme{Partition: PartitionWarpedSlicer, Limiting: LimitDMIL})
	if err != nil {
		t.Fatal(err)
	}
	if dmil.LSUStallFrac() > base.LSUStallFrac()/2 {
		t.Fatalf("DMIL stall %.2f vs baseline %.2f: expected at least a halving",
			dmil.LSUStallFrac(), base.LSUStallFrac())
	}
	spD := dmil.SpeedupsOf()
	if spD[0] <= sp[0] {
		t.Fatalf("DMIL must recover the compute kernel: %.3f -> %.3f", sp[0], spD[0])
	}
}

func TestSchemeValidate(t *testing.T) {
	cases := []struct {
		name string
		s    Scheme
		n    int
		ok   bool
	}{
		{"plain WS", Scheme{Partition: PartitionWarpedSlicer}, 2, true},
		{"SMK+W", Scheme{Partition: PartitionSMK, SMKQuota: true}, 2, true},
		{"SMK+W with QBMI", Scheme{Partition: PartitionSMK, SMKQuota: true, MemIssue: MemIssueQBMI}, 2, false},
		{"SMK+W with RBMI", Scheme{Partition: PartitionSMK, SMKQuota: true, MemIssue: MemIssueRBMI}, 2, false},
		{"SMK+W with DMIL", Scheme{Partition: PartitionSMK, SMKQuota: true, Limiting: LimitDMIL}, 2, false},
		{"SMK+W with SMIL", Scheme{Partition: PartitionSMK, SMKQuota: true, Limiting: LimitStatic, StaticLimits: []int{4, 4}}, 2, false},
		{"SMIL right arity", Scheme{Partition: PartitionWarpedSlicer, Limiting: LimitStatic, StaticLimits: []int{4, 8}}, 2, true},
		{"SMIL missing limits", Scheme{Partition: PartitionWarpedSlicer, Limiting: LimitStatic}, 2, false},
		{"SMIL wrong arity", Scheme{Partition: PartitionWarpedSlicer, Limiting: LimitStatic, StaticLimits: []int{4}}, 2, false},
		{"manual right arity", Scheme{Partition: PartitionManual, ManualTBs: []int{2, 2}}, 2, true},
		{"manual wrong arity", Scheme{Partition: PartitionManual, ManualTBs: []int{2, 2, 2}}, 2, false},
		{"bypass right arity", Scheme{Partition: PartitionEven, BypassL1: []bool{false, true}}, 2, true},
		{"bypass wrong arity", Scheme{Partition: PartitionEven, BypassL1: []bool{true}}, 2, false},
		{"TBT on WS", Scheme{Partition: PartitionWarpedSlicer, TBThrottle: true}, 2, true},
		{"TBT on spatial", Scheme{Partition: PartitionSpatial, TBThrottle: true}, 2, false},
		{"TBT on dynWS", Scheme{Partition: PartitionWarpedSlicerDyn, TBThrottle: true}, 2, false},
	}
	for _, c := range cases {
		err := c.s.Validate(c.n)
		if c.ok && err != nil {
			t.Errorf("%s: unexpected error %v", c.name, err)
		}
		if !c.ok && err == nil {
			t.Errorf("%s: invalid scheme accepted", c.name)
		}
	}
}

func TestRunWorkloadRejectsInvalidScheme(t *testing.T) {
	s := testSession(t)
	bp, _ := Benchmark("bp")
	sv, _ := Benchmark("sv")
	if _, err := s.RunWorkload([]Kernel{bp, sv}, Scheme{
		Partition: PartitionSMK, SMKQuota: true, Limiting: LimitDMIL,
	}); err == nil {
		t.Fatal("SMKQuota+DMIL accepted by RunWorkload")
	}
}

// TestSessionConcurrentProfiling shares one session across goroutines
// that all demand the same profiles; the in-flight deduplication must
// hand every caller the same cached objects (and -race verifies the
// locking).
func TestSessionConcurrentProfiling(t *testing.T) {
	s := testSession(t)
	bp, _ := Benchmark("bp")
	sv, _ := Benchmark("sv")

	const n = 8
	runs := make([]*RunResult, n)
	ipcs := make([]float64, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			r, err := s.RunIsolated(bp)
			if err != nil {
				t.Errorf("RunIsolated: %v", err)
				return
			}
			runs[i] = r
			d := sv
			if i%2 == 0 {
				d = bp
			}
			v, err := s.IsolatedIPC(d, 2)
			if err != nil {
				t.Errorf("IsolatedIPC: %v", err)
				return
			}
			if i%2 == 0 {
				ipcs[i], _ = s.IsolatedIPC(bp, 2)
			} else {
				ipcs[i] = v
			}
		}(i)
	}
	wg.Wait()
	for i := 1; i < n; i++ {
		if runs[i] != runs[0] {
			t.Fatal("concurrent RunIsolated returned distinct objects for one kernel")
		}
	}
	for i := 2; i < n; i += 2 {
		if ipcs[i] != ipcs[0] {
			t.Fatalf("concurrent IsolatedIPC disagrees: %v vs %v", ipcs[i], ipcs[0])
		}
	}
}

func TestPartitionKindStrings(t *testing.T) {
	for _, k := range []PartitionKind{PartitionWarpedSlicer, PartitionSMK,
		PartitionSpatial, PartitionLeftover, PartitionEven, PartitionManual} {
		if s := k.String(); s == "" || strings.HasPrefix(s, "PartitionKind(") {
			t.Errorf("missing name for %d", int(k))
		}
	}
}

func TestDynamicWarpedSlicer(t *testing.T) {
	// 4 SMs profile 28 TB configurations in 7 rounds of 16K cycles;
	// 150K cycles leaves time to run at the chosen partition.
	s := NewSession(ScaledConfig(4), 150_000)
	s.ProfileCycles = 15_000
	bp, _ := Benchmark("bp")
	sv, _ := Benchmark("sv")
	res, err := s.RunWorkload([]Kernel{bp, sv}, Scheme{Partition: PartitionWarpedSlicerDyn})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.TBPartition) != 2 || res.TBPartition[0] < 1 || res.TBPartition[1] < 1 {
		t.Fatalf("dynamic WS partition %v", res.TBPartition)
	}
	if res.WeightedSpeedup() <= 0 {
		t.Fatal("no progress under dynamic WS")
	}
}

func TestBypassEndToEnd(t *testing.T) {
	s := testSession(t)
	bp, _ := Benchmark("bp")
	sv, _ := Benchmark("sv")
	res, err := s.RunWorkload([]Kernel{bp, sv}, Scheme{
		Partition: PartitionEven,
		BypassL1:  []bool{false, true},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Kernels[1].L1D.Bypassed == 0 {
		t.Fatal("bypassed kernel recorded no bypasses")
	}
	if res.Kernels[0].L1D.Bypassed != 0 {
		t.Fatal("non-bypassed kernel bypassed")
	}
	// The bypassed kernel must still complete its loads.
	if res.Kernels[1].Instrs == 0 {
		t.Fatal("bypassed kernel made no progress")
	}
	if _, err := s.RunWorkload([]Kernel{bp}, Scheme{
		Partition: PartitionEven, BypassL1: []bool{false, true},
	}); err == nil {
		t.Fatal("BypassL1 arity mismatch accepted")
	}
}

func TestL2MILEndToEnd(t *testing.T) {
	s := NewSession(ScaledConfig(2), 60_000)
	s.ProfileCycles = 20_000
	bp, _ := Benchmark("bp")
	sv, _ := Benchmark("sv")
	res, err := s.RunWorkload([]Kernel{bp, sv}, Scheme{
		Partition: PartitionWarpedSlicer,
		Limiting:  LimitL2MIL,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Kernels[0].Instrs == 0 || res.Kernels[1].Instrs == 0 {
		t.Fatal("a kernel starved under L2MIL")
	}
	if res.Scheme.Name() != "WS-L2MIL" {
		t.Fatalf("scheme name = %q", res.Scheme.Name())
	}
}

func TestEnergyAccounting(t *testing.T) {
	s := testSession(t)
	bp, _ := Benchmark("bp")
	r, err := s.RunIsolated(bp)
	if err != nil {
		t.Fatal(err)
	}
	m := DefaultEnergyModel()
	e := r.Energy(m)
	if e.DynamicPJ <= 0 || e.LeakagePJ <= 0 {
		t.Fatalf("energy breakdown %+v", e)
	}
	if r.Mem.L2Accesses == 0 || r.Mem.DRAMAccesses == 0 || r.Mem.Flits == 0 {
		t.Fatalf("memory-system counters empty: %+v", r.Mem)
	}
	eff := r.InstrsPerMicroJoule(m)
	if eff <= 0 {
		t.Fatalf("efficiency %v", eff)
	}
}

func TestProfilePersistence(t *testing.T) {
	dir := t.TempDir()
	path := dir + "/profiles.json"

	s1 := testSession(t)
	bp, _ := Benchmark("bp")
	if _, err := s1.IsolatedIPC(bp, 3); err != nil {
		t.Fatal(err)
	}
	want, _ := s1.IsolatedIPC(bp, 3)
	if err := s1.SaveProfiles(path); err != nil {
		t.Fatal(err)
	}

	s2 := testSession(t)
	if err := s2.LoadProfiles(path); err != nil {
		t.Fatal(err)
	}
	got, err := s2.IsolatedIPC(bp, 3)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("loaded IPC %v != saved %v", got, want)
	}

	// A session with a different configuration must reject the file.
	s3 := NewSession(ScaledConfig(4), 20_000)
	s3.ProfileCycles = 15_000
	if err := s3.LoadProfiles(path); err == nil {
		t.Fatal("mismatched fingerprint accepted")
	}
}

func TestPartitionAPI(t *testing.T) {
	s := testSession(t)
	bp, _ := Benchmark("bp")
	sv, _ := Benchmark("sv")
	ds := []Kernel{bp, sv}

	row, _, err := s.Partition(ds, PartitionSMK, nil)
	if err != nil || len(row) != 2 {
		t.Fatalf("SMK partition: %v %v", row, err)
	}
	row, _, err = s.Partition(ds, PartitionLeftover, nil)
	if err != nil || row[0] < row[1] {
		t.Fatalf("leftover must favour kernel 0: %v %v", row, err)
	}
	if _, _, err = s.Partition(ds, PartitionKind(99), nil); err == nil {
		t.Fatal("unknown kind accepted")
	}
	// Spatial has no single row.
	row, _, err = s.Partition(ds, PartitionSpatial, nil)
	if err != nil || row != nil {
		t.Fatalf("spatial: %v %v", row, err)
	}
}

func TestSessionAccessors(t *testing.T) {
	s := testSession(t)
	if s.Cycles() != 20_000 {
		t.Fatalf("Cycles = %d", s.Cycles())
	}
	cfg := s.Config()
	if cfg.NumSMs != 2 {
		t.Fatalf("NumSMs = %d", cfg.NumSMs)
	}
}

func TestWorkloadResultMetadata(t *testing.T) {
	s := testSession(t)
	bp, _ := Benchmark("bp")
	sv, _ := Benchmark("sv")
	res, err := s.RunWorkload([]Kernel{bp, sv}, Scheme{Partition: PartitionEven})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.IsolatedIPC) != 2 || res.IsolatedIPC[0] <= 0 {
		t.Fatalf("isolated IPCs missing: %v", res.IsolatedIPC)
	}
	if res.Scheme.Partition != PartitionEven {
		t.Fatal("scheme not recorded")
	}
	sp := res.SpeedupsOf()
	for i, v := range sp {
		if v <= 0 || v > 1.5 {
			t.Fatalf("speedup[%d] = %v out of plausible range", i, v)
		}
	}
}

func TestTBThrottleEndToEnd(t *testing.T) {
	s := NewSession(ScaledConfig(2), 60_000)
	s.ProfileCycles = 20_000
	bp, _ := Benchmark("bp")
	ks, _ := Benchmark("ks")
	res, err := s.RunWorkload([]Kernel{bp, ks}, Scheme{
		Partition:  PartitionWarpedSlicer,
		TBThrottle: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Scheme.Name() != "WS-TBT" {
		t.Fatalf("name = %q", res.Scheme.Name())
	}
	if res.Kernels[0].Instrs == 0 || res.Kernels[1].Instrs == 0 {
		t.Fatal("a kernel starved under TB throttling")
	}
	// Spatial + TBThrottle is rejected (no uniform partition row).
	if _, err := s.RunWorkload([]Kernel{bp, ks}, Scheme{
		Partition: PartitionSpatial, TBThrottle: true,
	}); err == nil {
		t.Fatal("TBThrottle with spatial partition accepted")
	}
}
