package gcke

import (
	"encoding/json"
	"testing"
)

// TestWarmupForkByteIdentical is the fork planner's core contract: a
// run whose warm leg is restored from the family snapshot must be
// byte-identical to a run that simulated its own warmup — for several
// schemes of one warmup family, including fully managed ones.
func TestWarmupForkByteIdentical(t *testing.T) {
	const warmup = 6_000
	schemes := []Scheme{
		{Partition: PartitionEven, Warmup: warmup, Series: true},
		{Partition: PartitionEven, Limiting: LimitDMIL, Warmup: warmup, Series: true},
		{Partition: PartitionEven, MemIssue: MemIssueQBMI, UCP: true, Warmup: warmup, Series: true},
	}
	bp, _ := Benchmark("bp")
	sv, _ := Benchmark("sv")
	wl := []Kernel{bp, sv}

	cold := testSession(t)
	forked := testSession(t)
	forked.ForkWarmup = true

	var bytesAfterFirst int64
	for i, sc := range schemes {
		want, err := cold.RunWorkload(wl, sc)
		if err != nil {
			t.Fatalf("%s cold: %v", sc.Name(), err)
		}
		got, err := forked.RunWorkload(wl, sc)
		if err != nil {
			t.Fatalf("%s forked: %v", sc.Name(), err)
		}
		wantJS, err := json.Marshal(want)
		if err != nil {
			t.Fatal(err)
		}
		gotJS, err := json.Marshal(got)
		if err != nil {
			t.Fatal(err)
		}
		if string(wantJS) != string(gotJS) {
			t.Fatalf("%s: forked run diverged from cold run\ncold:   %s\nforked: %s", sc.Name(), wantJS, gotJS)
		}
		forks, bytes := forked.ForkStats()
		if forks != int64(i+1) {
			t.Fatalf("after run %d: forksTaken = %d, want %d", i+1, forks, i+1)
		}
		if bytes <= 0 {
			t.Fatalf("snapshotBytes = %d, want > 0", bytes)
		}
		if i == 0 {
			bytesAfterFirst = bytes
		} else if bytes != bytesAfterFirst {
			// All three schemes share one warmup family, so the warm
			// prefix must have been simulated (and accounted) exactly once.
			t.Fatalf("snapshotBytes grew from %d to %d: family warmup re-simulated", bytesAfterFirst, bytes)
		}
	}
	if forks, _ := cold.ForkStats(); forks != 0 {
		t.Fatalf("cold session took %d forks, want 0", forks)
	}
}

// TestWarmupValidation: nonsensical warmup lengths must be rejected
// before any simulation happens.
func TestWarmupValidation(t *testing.T) {
	s := testSession(t)
	bp, _ := Benchmark("bp")
	sv, _ := Benchmark("sv")
	wl := []Kernel{bp, sv}
	if _, err := s.RunWorkload(wl, Scheme{Partition: PartitionEven, Warmup: -1}); err == nil {
		t.Fatal("negative Warmup accepted")
	}
	if _, err := s.RunWorkload(wl, Scheme{Partition: PartitionEven, Warmup: s.cycles}); err == nil {
		t.Fatal("Warmup == run length accepted")
	}
}
