// Result-cache and warmup-fork benchmarks: how much a repeated job
// saves against cold simulation, and how much a sweep family sharing
// one warmup prefix saves by forking a warmed engine snapshot instead
// of re-simulating the prefix per member.
//
// results/BENCH_cache.json records the measured numbers; CI runs the
// suite with -benchtime=1x as a smoke test. Run with
//
//	go test -run '^$' -bench 'BenchmarkResultCache|BenchmarkWarmupFork' -benchmem
package gcke_test

import (
	"context"
	"testing"

	gcke "repro"
	"repro/internal/resultcache"
	"repro/internal/runner"
)

// cacheBenchSession builds a session with profiles prewarmed, so the
// benchmarks time simulation (or its absence), not profile runs.
func cacheBenchSession(b *testing.B, kernels []gcke.Kernel, cycles int64) *gcke.Session {
	b.Helper()
	s := gcke.NewSession(gcke.ScaledConfig(2), cycles)
	s.ProfileCycles = 10_000
	for _, d := range kernels {
		if _, err := s.RunIsolated(d); err != nil {
			b.Fatal(err)
		}
	}
	return s
}

func cacheBenchKernels(b *testing.B) []gcke.Kernel {
	b.Helper()
	bp, err := gcke.Benchmark("bp")
	if err != nil {
		b.Fatal(err)
	}
	sv, err := gcke.Benchmark("sv")
	if err != nil {
		b.Fatal(err)
	}
	return []gcke.Kernel{bp, sv}
}

// BenchmarkResultCache measures one job cold (simulated every
// iteration) and warm (served from the content-addressed result cache).
// The ratio is the cache's speedup for repeated points.
func BenchmarkResultCache(b *testing.B) {
	const cycles = 15_000
	ds := cacheBenchKernels(b)
	job := func(s *gcke.Session) runner.Job {
		return runner.Job{
			Session: s, Kernels: ds,
			Scheme: gcke.Scheme{
				Partition: gcke.PartitionEven, Limiting: gcke.LimitDMIL,
			},
		}
	}
	b.Run("cold", func(b *testing.B) {
		s := cacheBenchSession(b, ds, cycles)
		j := job(s)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := runner.FirstErr(runner.New(1).Run(context.Background(), []runner.Job{j})); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("warm", func(b *testing.B) {
		s := cacheBenchSession(b, ds, cycles)
		c, err := resultcache.Open(resultcache.Options{})
		if err != nil {
			b.Fatal(err)
		}
		r := runner.New(1)
		r.Cache = c
		j := job(s)
		// Populate: the first run simulates and stores.
		if err := runner.FirstErr(r.Run(context.Background(), []runner.Job{j})); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			res := r.Run(context.Background(), []runner.Job{j})
			if err := runner.FirstErr(res); err != nil {
				b.Fatal(err)
			}
			if !res[0].Cached {
				b.Fatal("warm iteration was not a cache hit")
			}
		}
	})
}

// BenchmarkWarmupFork measures a three-scheme family whose members
// share a 20k-cycle warmup prefix, unforked (every member simulates its
// own warmup) vs forked (the family's prefix is simulated once,
// members restore the warmed snapshot). Results are byte-identical;
// only the wall-clock differs.
func BenchmarkWarmupFork(b *testing.B) {
	const cycles, warmup = 40_000, 20_000
	ds := cacheBenchKernels(b)
	schemes := []gcke.Scheme{
		{Partition: gcke.PartitionEven, Warmup: warmup},
		{Partition: gcke.PartitionEven, Limiting: gcke.LimitDMIL, Warmup: warmup},
		{Partition: gcke.PartitionEven, MemIssue: gcke.MemIssueQBMI, Warmup: warmup},
	}
	family := func(b *testing.B, s *gcke.Session) {
		b.Helper()
		for _, sc := range schemes {
			if _, err := s.RunWorkload(ds, sc); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("unforked", func(b *testing.B) {
		s := cacheBenchSession(b, ds, cycles)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			family(b, s)
		}
	})
	b.Run("forked", func(b *testing.B) {
		s := cacheBenchSession(b, ds, cycles)
		s.ForkWarmup = true
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			family(b, s)
		}
	})
}
