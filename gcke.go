// Package gcke is the public API of the GPU concurrent-kernel-execution
// (CKE) simulator reproducing "Accelerate GPU Concurrent Kernel
// Execution by Mitigating Memory Pipeline Stalls" (HPCA 2018).
//
// The package wraps a from-scratch cycle-level GPU microarchitecture
// simulator (SMs with GTO/LRR warp schedulers, L1D with MSHR/miss-queue
// reservation-failure semantics, crossbar, banked L2, FR-FCFS DRAM) and
// the paper's mechanisms: Warped-Slicer and SMK thread-block
// partitioning, UCP L1D cache partitioning, balanced memory request
// issuing (RBMI/QBMI) and memory instruction limiting (SMIL/DMIL).
//
// Typical use:
//
//	cfg := gcke.DefaultConfig()
//	s := gcke.NewSession(cfg, 100_000)
//	bp, _ := gcke.Benchmark("bp")
//	sv, _ := gcke.Benchmark("sv")
//	res, err := s.RunWorkload([]gcke.Kernel{bp, sv}, gcke.Scheme{
//	    Partition: gcke.PartitionWarpedSlicer,
//	    Limiting:  gcke.LimitDMIL,
//	})
//	fmt.Println(res.WeightedSpeedup())
package gcke

import (
	"fmt"

	"repro/internal/config"
	"repro/internal/kern"
	"repro/internal/stats"
)

// Re-exported building blocks.
type (
	// Config is the architecture configuration (Table 1 defaults).
	Config = config.Config
	// Kernel describes one synthetic kernel (see internal/kern.Desc).
	Kernel = kern.Desc
	// RunResult is the raw outcome of one simulation.
	RunResult = stats.RunResult
	// EnergyModel holds the per-event energy constants (Section 4.5's
	// energy-efficiency discussion).
	EnergyModel = stats.EnergyModel
)

// DefaultEnergyModel returns the reference energy constants.
func DefaultEnergyModel() EnergyModel { return stats.DefaultEnergyModel() }

// DefaultConfig returns the paper's Table 1 baseline: 16 SMs, 4 GTO
// schedulers, 24 KB 6-way L1D with 128 MSHRs, 2 MB L2, 16 DRAM channels.
func DefaultConfig() Config { return config.Default() }

// ScaledConfig returns a machine with nSMs SMs and a proportionally
// scaled memory system (per-SM behaviour preserved; used to keep sweep
// runtimes practical).
func ScaledConfig(nSMs int) Config { return config.Scaled(nSMs) }

// Benchmark returns one of the paper's Table 2 benchmarks by name
// (cp hs dc pf bp bs st 3m sv cd s2 ks ax).
func Benchmark(name string) (Kernel, error) { return kern.ByName(name) }

// Benchmarks returns all thirteen Table 2 benchmarks in paper order.
func Benchmarks() []Kernel { return kern.Benchmarks() }

// BenchmarkNames returns the Table 2 benchmark names in paper order.
func BenchmarkNames() []string { return kern.Names() }

// PartitionKind selects how thread blocks are partitioned among kernels.
type PartitionKind int

const (
	// PartitionWarpedSlicer picks the scalability-curve sweet spot
	// (profiled from isolated runs, cached by the Session).
	PartitionWarpedSlicer PartitionKind = iota
	// PartitionSMK uses SMK's dominant-resource-fair allocation.
	PartitionSMK
	// PartitionSpatial assigns whole SMs to kernels.
	PartitionSpatial
	// PartitionLeftover gives kernel 0 everything that fits and later
	// kernels the remainder.
	PartitionLeftover
	// PartitionEven splits occupancy evenly (simple baseline).
	PartitionEven
	// PartitionManual uses Scheme.ManualTBs on every SM.
	PartitionManual
	// PartitionWarpedSlicerDyn is the paper's dynamic Warped-Slicer: it
	// profiles the kernels online at the start of the concurrent run
	// (each SM measures one TB configuration, time-shared across
	// rounds) and then applies the sweet-spot partition.
	PartitionWarpedSlicerDyn
)

func (p PartitionKind) String() string {
	switch p {
	case PartitionWarpedSlicer:
		return "WS"
	case PartitionSMK:
		return "SMK-P"
	case PartitionSpatial:
		return "Spatial"
	case PartitionLeftover:
		return "Leftover"
	case PartitionEven:
		return "Even"
	case PartitionManual:
		return "Manual"
	case PartitionWarpedSlicerDyn:
		return "dynWS"
	default:
		return fmt.Sprintf("PartitionKind(%d)", int(p))
	}
}

// MemIssueKind selects the memory-instruction issue arbiter.
type MemIssueKind int

const (
	// MemIssueDefault is the unmanaged baseline (scheduler order wins).
	MemIssueDefault MemIssueKind = iota
	// MemIssueRBMI is loose round-robin between kernels.
	MemIssueRBMI
	// MemIssueQBMI is the paper's quota-based balanced issuing.
	MemIssueQBMI
)

func (m MemIssueKind) String() string {
	switch m {
	case MemIssueRBMI:
		return "RBMI"
	case MemIssueQBMI:
		return "QBMI"
	default:
		return "default"
	}
}

// LimitKind selects the in-flight memory instruction limiter.
type LimitKind int

const (
	// LimitNone applies no cap.
	LimitNone LimitKind = iota
	// LimitStatic applies Scheme.StaticLimits (SMIL).
	LimitStatic
	// LimitDMIL runs one MILG per kernel per SM (the paper's local DMIL).
	LimitDMIL
	// LimitGlobalDMIL shares one MILG set across SMs (ablation).
	LimitGlobalDMIL
	// LimitL2MIL throttles from L2/DRAM-side congestion signals (the
	// paper's Section 4.5 future-work direction).
	LimitL2MIL
)

func (l LimitKind) String() string {
	switch l {
	case LimitStatic:
		return "SMIL"
	case LimitDMIL:
		return "DMIL"
	case LimitGlobalDMIL:
		return "gDMIL"
	case LimitL2MIL:
		return "L2MIL"
	default:
		return "none"
	}
}

// Scheme is a full CKE configuration: a TB partitioning baseline plus
// the paper's mechanisms layered on top.
type Scheme struct {
	Partition PartitionKind
	MemIssue  MemIssueKind
	Limiting  LimitKind
	// StaticLimits holds per-kernel SMIL caps (core.Unlimited = none).
	StaticLimits []int
	// SMKQuota enables SMK's periodic warp-instruction quota (the "+W"
	// in SMK-(P+W)); it is mutually exclusive with MemIssue/Limiting
	// mechanisms per the paper's evaluation.
	SMKQuota bool
	// SMKEpoch is the quota period in cycles (default 10*1024).
	SMKEpoch int64
	// UCP enables utility-based L1D way partitioning.
	UCP bool
	// UCPInterval is the repartition period in cycles (default 50*1024).
	UCPInterval int64
	// ManualTBs is the per-kernel TB partition for PartitionManual.
	ManualTBs []int
	// BypassL1 marks kernels whose L1D load misses bypass allocation
	// (Section 4.5's cache-bypassing interplay study). nil disables.
	BypassL1 []bool
	// QBMIRefreshAllZero switches QBMI to SMK-style quota refresh (only
	// when every kernel is spent) for the ablation study; the paper
	// refreshes when any kernel's quota reaches zero.
	QBMIRefreshAllZero bool
	// TBThrottle enables DynCTA-style dynamic thread-block throttling
	// (the related-work baseline the paper contrasts with: coarser
	// granularity than MIL).
	TBThrottle bool
	// Series enables 1 K-cycle time-series collection.
	Series bool
	// Warmup splits the run into an unmanaged warmup prefix of this
	// many cycles (no issue policies, UCP or bypass — caches and TB
	// occupancy fill under the baseline arbiter) followed by a managed
	// leg for the remaining cycles with the scheme's mechanisms
	// installed. Runs sharing (config, kernels, partition, warmup
	// length) form a warmup family: with Session.ForkWarmup the shared
	// prefix is simulated once, snapshotted, and each family member is
	// forked from the warmed snapshot. 0 disables (single managed run).
	Warmup int64
}

// Validate rejects scheme combinations the paper never evaluates and
// per-kernel slice arity mismatches for a workload of nKernels kernels.
// RunWorkload calls it before simulating; drivers can call it earlier to
// fail fast when assembling large experiment grids.
func (s Scheme) Validate(nKernels int) error {
	if s.SMKQuota && s.MemIssue != MemIssueDefault {
		return fmt.Errorf("gcke: SMKQuota is mutually exclusive with MemIssue=%s (the paper layers either +W or a memory mechanism on SMK, never both)", s.MemIssue)
	}
	if s.SMKQuota && s.Limiting != LimitNone {
		return fmt.Errorf("gcke: SMKQuota is mutually exclusive with Limiting=%s (the paper layers either +W or a memory mechanism on SMK, never both)", s.Limiting)
	}
	if s.Limiting == LimitStatic && len(s.StaticLimits) != nKernels {
		return fmt.Errorf("gcke: StaticLimits has %d entries for %d kernels", len(s.StaticLimits), nKernels)
	}
	if s.Partition == PartitionManual && len(s.ManualTBs) != nKernels {
		return fmt.Errorf("gcke: ManualTBs has %d entries for %d kernels", len(s.ManualTBs), nKernels)
	}
	if s.BypassL1 != nil && len(s.BypassL1) != nKernels {
		return fmt.Errorf("gcke: BypassL1 has %d entries for %d kernels", len(s.BypassL1), nKernels)
	}
	if s.TBThrottle && (s.Partition == PartitionSpatial || s.Partition == PartitionWarpedSlicerDyn) {
		return fmt.Errorf("gcke: TBThrottle needs a uniform TB partition (not spatial/dynamic)")
	}
	if s.Warmup < 0 {
		return fmt.Errorf("gcke: Warmup must be non-negative, got %d", s.Warmup)
	}
	return nil
}

// Name renders a scheme label like "WS-QBMI" or "SMK-(P+W)".
func (s Scheme) Name() string {
	n := s.Partition.String()
	if s.Partition == PartitionSMK {
		if s.SMKQuota {
			return "SMK-(P+W)"
		}
		switch {
		case s.MemIssue == MemIssueQBMI:
			return "SMK-(P+QBMI)"
		case s.MemIssue == MemIssueRBMI:
			return "SMK-(P+RBMI)"
		case s.Limiting == LimitDMIL:
			return "SMK-(P+DMIL)"
		case s.Limiting == LimitStatic:
			return "SMK-(P+SMIL)"
		}
		return "SMK-P"
	}
	if s.UCP {
		n += "-L1DPart"
	}
	if s.BypassL1 != nil {
		n += "-Bypass"
	}
	if s.TBThrottle {
		n += "-TBT"
	}
	if s.MemIssue != MemIssueDefault {
		n += "-" + s.MemIssue.String()
	}
	if s.Limiting != LimitNone {
		n += "-" + s.Limiting.String()
	}
	return n
}

// WorkloadResult is the outcome of a concurrent run plus the context
// needed for the paper's metrics.
type WorkloadResult struct {
	*RunResult
	Scheme        Scheme
	TBPartition   []int     // per-SM partition (nil for spatial)
	IsolatedIPC   []float64 // per-kernel isolated IPC (normalization base)
	TheoreticalWS float64   // sum of normalized isolated IPCs at the partition
}

// SpeedupsOf returns per-kernel normalized IPC.
func (w *WorkloadResult) SpeedupsOf() []float64 { return w.Speedups(w.IsolatedIPC) }

// WeightedSpeedup is the paper's primary metric.
func (w *WorkloadResult) WeightedSpeedup() float64 {
	return stats.WeightedSpeedup(w.SpeedupsOf())
}

// ANTT is the average normalized turnaround time (lower is better).
func (w *WorkloadResult) ANTT() float64 { return stats.ANTT(w.SpeedupsOf()) }

// Fairness is min/max normalized IPC (higher is better).
func (w *WorkloadResult) Fairness() float64 { return stats.Fairness(w.SpeedupsOf()) }
