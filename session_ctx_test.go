package gcke

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/gpu"
)

// TestRunWorkloadCtxCancellation: a cancelled context interrupts the
// simulation and the error carries both the interruption and the cause.
func TestRunWorkloadCtxCancellation(t *testing.T) {
	s := testSession(t)
	bp, _ := Benchmark("bp")
	sv, _ := Benchmark("sv")

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := s.RunWorkloadCtx(ctx, []Kernel{bp, sv}, Scheme{Partition: PartitionEven})
	if err == nil {
		t.Fatal("cancelled run succeeded")
	}
	if !errors.Is(err, gpu.ErrInterrupted) {
		t.Fatalf("err = %v, want gpu.ErrInterrupted in chain", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled in chain", err)
	}

	// A cancelled profiling run must not poison the cache: rerunning
	// without cancellation succeeds.
	if _, err := s.RunWorkload([]Kernel{bp, sv}, Scheme{Partition: PartitionEven}); err != nil {
		t.Fatalf("run after cancellation: %v", err)
	}
}

// TestRunWorkloadCtxDeadline: a deadline surfaces as DeadlineExceeded.
func TestRunWorkloadCtxDeadline(t *testing.T) {
	s := NewSession(ScaledConfig(2), 100_000_000) // far too long for 1ms
	bp, _ := Benchmark("bp")
	sv, _ := Benchmark("sv")
	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	_, err := s.RunWorkloadCtx(ctx, []Kernel{bp, sv}, Scheme{Partition: PartitionEven})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded in chain", err)
	}
}

// TestSessionCheckCleanWorkload: the invariant watchdog stays silent on
// a healthy run driven through the public API, including the paper's
// managed schemes.
func TestSessionCheckCleanWorkload(t *testing.T) {
	s := testSession(t)
	s.Check = true
	bp, _ := Benchmark("bp")
	sv, _ := Benchmark("sv")
	for _, sc := range []Scheme{
		{Partition: PartitionEven},
		{Partition: PartitionWarpedSlicer, MemIssue: MemIssueQBMI},
		{Partition: PartitionWarpedSlicer, Limiting: LimitDMIL},
	} {
		if _, err := s.RunWorkloadCtx(context.Background(), []Kernel{bp, sv}, sc); err != nil {
			t.Fatalf("%s: healthy run flagged: %v", sc.Name(), err)
		}
	}
}
