package ring

import "testing"

// FuzzRing drives a Ring[int] and a plain-slice reference queue with the
// same operation stream and requires identical observable behaviour.
// Each input byte encodes one operation: push (with the byte as value),
// pop, peek, random-access read, or reset.
func FuzzRing(f *testing.F) {
	f.Add([]byte{1, 2, 3, 0, 0, 4, 5, 0})
	f.Add([]byte{255, 254})
	f.Add([]byte{10, 10, 10, 10, 10, 0, 0, 0, 0, 0})
	f.Fuzz(func(t *testing.T, ops []byte) {
		var r Ring[int]
		var ref []int
		for i, op := range ops {
			switch {
			case op == 0: // pop
				v, ok := r.TryPop()
				if ok != (len(ref) > 0) {
					t.Fatalf("op %d: TryPop ok=%v, reference has %d", i, ok, len(ref))
				}
				if ok {
					if v != ref[0] {
						t.Fatalf("op %d: Pop = %d, want %d", i, v, ref[0])
					}
					ref = ref[1:]
				}
			case op == 1 && len(ref) > 0: // peek
				if r.Peek() != ref[0] {
					t.Fatalf("op %d: Peek = %d, want %d", i, r.Peek(), ref[0])
				}
			case op == 2 && len(ref) > 0: // random-access read
				idx := i % len(ref)
				if r.At(idx) != ref[idx] {
					t.Fatalf("op %d: At(%d) = %d, want %d", i, idx, r.At(idx), ref[idx])
				}
			case op == 3: // reset
				r.Reset()
				ref = ref[:0]
			default: // push
				r.Push(int(op))
				ref = append(ref, int(op))
			}
			if r.Len() != len(ref) {
				t.Fatalf("op %d: Len = %d, want %d", i, r.Len(), len(ref))
			}
		}
		// Drain and compare the tail.
		for len(ref) > 0 {
			if got := r.Pop(); got != ref[0] {
				t.Fatalf("drain: Pop = %d, want %d", got, ref[0])
			}
			ref = ref[1:]
		}
		if !r.Empty() {
			t.Fatal("ring not empty after drain")
		}
	})
}
