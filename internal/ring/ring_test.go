package ring

import "testing"

func TestFIFOOrder(t *testing.T) {
	var r Ring[int]
	for i := 0; i < 100; i++ {
		r.Push(i)
	}
	if r.Len() != 100 {
		t.Fatalf("Len = %d, want 100", r.Len())
	}
	for i := 0; i < 100; i++ {
		if got := r.Pop(); got != i {
			t.Fatalf("Pop = %d, want %d", got, i)
		}
	}
	if !r.Empty() {
		t.Fatal("ring not empty after draining")
	}
}

func TestWrapAround(t *testing.T) {
	var r Ring[int]
	// Interleave pushes and pops so head walks around the buffer many
	// times at low occupancy, exercising the wrap masks.
	next, expect := 0, 0
	for round := 0; round < 1000; round++ {
		for i := 0; i < 3; i++ {
			r.Push(next)
			next++
		}
		for i := 0; i < 3; i++ {
			if got := r.Pop(); got != expect {
				t.Fatalf("round %d: Pop = %d, want %d", round, got, expect)
			}
			expect++
		}
	}
}

func TestGrowPreservesOrder(t *testing.T) {
	var r Ring[int]
	// Offset the head, then force growth mid-ring.
	for i := 0; i < 12; i++ {
		r.Push(i)
	}
	for i := 0; i < 12; i++ {
		r.Pop()
	}
	for i := 0; i < 200; i++ {
		r.Push(i)
	}
	for i := 0; i < 200; i++ {
		if got := r.Pop(); got != i {
			t.Fatalf("Pop = %d, want %d", got, i)
		}
	}
}

func TestPeekAndAt(t *testing.T) {
	var r Ring[string]
	r.Push("a")
	r.Push("b")
	r.Push("c")
	if r.Peek() != "a" {
		t.Fatalf("Peek = %q", r.Peek())
	}
	if r.At(0) != "a" || r.At(1) != "b" || r.At(2) != "c" {
		t.Fatal("At returned wrong elements")
	}
	r.Pop()
	if r.Peek() != "b" || r.At(1) != "c" {
		t.Fatal("Peek/At wrong after Pop")
	}
}

func TestTryPop(t *testing.T) {
	var r Ring[int]
	if _, ok := r.TryPop(); ok {
		t.Fatal("TryPop on empty ring reported ok")
	}
	r.Push(7)
	v, ok := r.TryPop()
	if !ok || v != 7 {
		t.Fatalf("TryPop = %d,%v", v, ok)
	}
}

func TestReset(t *testing.T) {
	var r Ring[*int]
	x := 1
	for i := 0; i < 10; i++ {
		r.Push(&x)
	}
	r.Reset()
	if r.Len() != 0 {
		t.Fatalf("Len after Reset = %d", r.Len())
	}
	// Backing array must not retain the old pointers.
	for _, p := range r.buf {
		if p != nil {
			t.Fatal("Reset leaked a reference in the backing array")
		}
	}
	r.Push(&x)
	if r.Pop() != &x {
		t.Fatal("ring unusable after Reset")
	}
}

func TestPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Pop on empty ring did not panic")
		}
	}()
	var r Ring[int]
	r.Pop()
}

func TestPopZeroesSlot(t *testing.T) {
	var r Ring[*int]
	x := 42
	r.Push(&x)
	r.Pop()
	for _, p := range r.buf {
		if p != nil {
			t.Fatal("Pop left a live reference in the backing array")
		}
	}
}
