// Package ring provides the growable FIFO ring buffer used by the
// simulator's hot queues (L2 partition input/response queues, the SM's
// completion queue, cache miss queues, interconnect ports).
//
// The simulator's queues share one access pattern: push at the tail,
// pop at the head, occasionally peek, with bursty occupancy. The naive
// implementations this replaces either copy-shifted the whole slice on
// every pop (O(n) per element) or tracked a head index and periodically
// compacted — per-queue ad-hoc code repeated in four packages. A
// power-of-two ring does both in O(1) with no steady-state allocation:
// storage is only reallocated when occupancy exceeds every previous
// high-water mark.
package ring

// Ring is a growable FIFO queue. The zero value is ready to use. Ring
// is not safe for concurrent use; in the parallel cycle engine every
// ring is owned by exactly one goroutine at a time (per-SM state in the
// parallel phase, memory-side state in the serial phase).
type Ring[T any] struct {
	buf  []T // len(buf) is always 0 or a power of two
	head int
	n    int
}

// minCap is the initial allocation; small enough that idle queues cost
// nothing much, large enough that active queues stop growing quickly.
const minCap = 16

// Len returns the number of queued elements.
func (r *Ring[T]) Len() int { return r.n }

// Empty reports whether the ring holds no elements.
func (r *Ring[T]) Empty() bool { return r.n == 0 }

// grow doubles the storage, linearizing the live elements.
func (r *Ring[T]) grow() {
	newCap := len(r.buf) * 2
	if newCap < minCap {
		newCap = minCap
	}
	buf := make([]T, newCap)
	if r.n > 0 {
		m := copy(buf, r.buf[r.head:])
		copy(buf[m:], r.buf[:r.head])
	}
	r.buf = buf
	r.head = 0
}

// Push appends v at the tail.
func (r *Ring[T]) Push(v T) {
	if r.n == len(r.buf) {
		r.grow()
	}
	r.buf[(r.head+r.n)&(len(r.buf)-1)] = v
	r.n++
}

// Pop removes and returns the head element. It panics on an empty ring;
// guard with Len or use TryPop.
func (r *Ring[T]) Pop() T {
	if r.n == 0 {
		panic("ring: Pop on empty ring")
	}
	v := r.buf[r.head]
	var zero T
	r.buf[r.head] = zero // release references for GC
	r.head = (r.head + 1) & (len(r.buf) - 1)
	r.n--
	return v
}

// TryPop removes and returns the head element, reporting false on an
// empty ring.
func (r *Ring[T]) TryPop() (T, bool) {
	if r.n == 0 {
		var zero T
		return zero, false
	}
	return r.Pop(), true
}

// Peek returns the head element without removing it. It panics on an
// empty ring.
func (r *Ring[T]) Peek() T {
	if r.n == 0 {
		panic("ring: Peek on empty ring")
	}
	return r.buf[r.head]
}

// At returns the i-th element from the head (At(0) == Peek). It panics
// when i is out of range.
func (r *Ring[T]) At(i int) T {
	if i < 0 || i >= r.n {
		panic("ring: At out of range")
	}
	return r.buf[(r.head+i)&(len(r.buf)-1)]
}

// Snapshot returns the queued elements oldest-first, each mapped through
// fn. A nil fn copies elements as-is (correct for value types); element
// types holding pointers into pooled storage must pass a deep-copying fn
// so the returned slice owns its memory (copy-on-snapshot discipline).
// The ring is unchanged.
func (r *Ring[T]) Snapshot(fn func(T) T) []T {
	if r.n == 0 {
		return nil
	}
	out := make([]T, r.n)
	for i := 0; i < r.n; i++ {
		v := r.buf[(r.head+i)&(len(r.buf)-1)]
		if fn != nil {
			v = fn(v)
		}
		out[i] = v
	}
	return out
}

// Restore replaces the ring's contents with elems (oldest first), each
// mapped through fn. Pass the same kind of deep-copying fn as Snapshot
// so a single snapshot can be restored into several rings without any of
// them sharing storage. Existing storage is reused when large enough.
func (r *Ring[T]) Restore(elems []T, fn func(T) T) {
	r.Reset()
	for _, v := range elems {
		if fn != nil {
			v = fn(v)
		}
		r.Push(v)
	}
}

// Reset discards all elements, keeping the storage. Live references are
// zeroed so discarded elements do not leak through the backing array.
func (r *Ring[T]) Reset() {
	var zero T
	for i := 0; i < r.n; i++ {
		r.buf[(r.head+i)&(len(r.buf)-1)] = zero
	}
	r.head, r.n = 0, 0
}
