// Package config defines the architecture configuration of the simulated
// GPU. The defaults reproduce Table 1 of the paper: a Maxwell-like GPU
// with 16 SMs, four greedy-then-oldest warp schedulers per SM, a 24 KB
// six-way L1 D-cache with 128 MSHRs, a 2 MB sixteen-partition L2, a 16x16
// crossbar and sixteen FR-FCFS DRAM channels.
package config

import "fmt"

// SchedulerPolicy selects the warp scheduling policy within an SM.
type SchedulerPolicy int

const (
	// GTO is greedy-then-oldest: keep issuing from the warp that issued
	// last; when it stalls, fall back to the oldest ready warp.
	GTO SchedulerPolicy = iota
	// LRR is loose round-robin over the warps of a scheduler.
	LRR
)

func (p SchedulerPolicy) String() string {
	switch p {
	case GTO:
		return "GTO"
	case LRR:
		return "LRR"
	default:
		return fmt.Sprintf("SchedulerPolicy(%d)", int(p))
	}
}

// SM configures one streaming multiprocessor.
type SM struct {
	Schedulers int // warp schedulers (issue slots per cycle)
	MaxThreads int // resident thread limit
	MaxWarps   int // resident warp limit
	MaxTBs     int // thread block slots
	Registers  int // 32-bit registers in the register file
	SmemBytes  int // shared memory capacity in bytes

	ALUPorts int // ALU instructions accepted per cycle
	SFUPorts int // SFU instructions accepted per cycle
	ALULat   int // ALU result latency in cycles
	SFULat   int // SFU result latency in cycles

	LSUQueue int // coalesced requests buffered between coalescer and L1D

	SmemBanks int // shared memory banks (Table 1: 32)
	SmemLat   int // shared memory access latency in cycles

	Scheduler SchedulerPolicy
}

// Cache configures one cache (L1D or one L2 partition).
type Cache struct {
	SizeBytes  int
	LineBytes  int
	Ways       int
	MSHRs      int
	MSHRMerge  int // max requests merged into one MSHR entry
	MissQueue  int // miss queue entries (requests awaiting injection)
	HitLatency int // cycles from access to data for a hit
	XORIndex   bool
	WriteBack  bool // true: write-back/write-allocate; false: write-evict/write-no-allocate
	FillQueue  int  // incoming fill buffer entries
	WarpSize   int  // unused by the cache proper; kept for layout symmetry
}

// Sets returns the number of sets implied by size, line and ways.
func (c Cache) Sets() int {
	return c.SizeBytes / (c.LineBytes * c.Ways)
}

// Icnt configures the SM<->memory-partition crossbar.
type Icnt struct {
	FlitBytes     int // flit width
	FlitsPerCycle int // flits a port moves per cycle (link bandwidth)
	Latency       int // fixed traversal latency in cycles
	QueueDepth    int // packets buffered per port per direction
	HeaderFlits   int // flits for a packet header
}

// DRAM configures one memory channel.
type DRAM struct {
	Banks       int
	RowBytes    int
	RowHitLat   int // bank busy cycles for a row-buffer hit
	RowMissLat  int // bank busy cycles for a row-buffer miss (precharge+activate)
	DataCycles  int // data bus cycles to transfer one cache line
	QueueDepth  int // per-channel request queue
	ReturnQueue int // per-channel response queue toward the interconnect
}

// Config is the full GPU configuration.
type Config struct {
	NumSMs       int
	WarpSize     int
	NumMemParts  int // L2 partitions == DRAM channels
	CoreClockMHz int // informational only; the simulator is unit-clocked

	SM   SM
	L1D  Cache
	L2   Cache // per partition
	Icnt Icnt
	DRAM DRAM

	// L2ExtraLat models the pipeline depth between interconnect ejection
	// and L2 tag access.
	L2ExtraLat int

	Seed uint64
}

// Default returns the Table 1 baseline configuration.
func Default() Config {
	return Config{
		NumSMs:       16,
		WarpSize:     32,
		NumMemParts:  16,
		CoreClockMHz: 1400,
		SM: SM{
			Schedulers: 4,
			MaxThreads: 3072,
			MaxWarps:   96,
			MaxTBs:     16,
			Registers:  65536,
			SmemBytes:  96 * 1024,
			ALUPorts:   4,
			SFUPorts:   1,
			ALULat:     10,
			SFULat:     20,
			LSUQueue:   64,
			SmemBanks:  32,
			SmemLat:    24,
			Scheduler:  GTO,
		},
		L1D: Cache{
			SizeBytes:  24 * 1024,
			LineBytes:  128,
			Ways:       6,
			MSHRs:      128,
			MSHRMerge:  8,
			MissQueue:  16,
			HitLatency: 28,
			XORIndex:   true,
			WriteBack:  false, // write-evict / write-no-allocate
			FillQueue:  16,
		},
		L2: Cache{
			SizeBytes:  128 * 1024,
			LineBytes:  128,
			Ways:       16,
			MSHRs:      128,
			MSHRMerge:  8,
			MissQueue:  16,
			HitLatency: 30,
			XORIndex:   true,
			WriteBack:  true, // write-back / write-allocate
			FillQueue:  16,
		},
		Icnt: Icnt{
			FlitBytes:     32,
			FlitsPerCycle: 8,
			Latency:       8,
			QueueDepth:    8,
			HeaderFlits:   1,
		},
		DRAM: DRAM{
			Banks:       16,
			RowBytes:    2048,
			RowHitLat:   24,
			RowMissLat:  72,
			DataCycles:  4,
			QueueDepth:  32,
			ReturnQueue: 32,
		},
		L2ExtraLat: 8,
		Seed:       1,
	}
}

// Scaled returns a configuration with nSMs SMs and a proportionally scaled
// memory system (one L2 partition/DRAM channel per SM, as in the
// baseline's 1:1 ratio). Per-SM behaviour is preserved, which is what the
// intra-SM sharing study measures; the experiment harness uses this to
// keep sweep run times practical while cmd flags allow the full 16-SM
// machine.
func Scaled(nSMs int) Config {
	c := Default()
	if nSMs <= 0 {
		nSMs = 1
	}
	c.NumSMs = nSMs
	c.NumMemParts = nSMs
	return c
}

// Validate reports configuration inconsistencies.
func (c Config) Validate() error {
	if c.NumSMs <= 0 {
		return fmt.Errorf("config: NumSMs must be positive, got %d", c.NumSMs)
	}
	if c.WarpSize <= 0 {
		return fmt.Errorf("config: WarpSize must be positive, got %d", c.WarpSize)
	}
	if c.NumMemParts <= 0 {
		return fmt.Errorf("config: NumMemParts must be positive, got %d", c.NumMemParts)
	}
	if c.SM.Schedulers <= 0 {
		return fmt.Errorf("config: SM.Schedulers must be positive, got %d", c.SM.Schedulers)
	}
	if c.SM.MaxWarps%c.SM.Schedulers != 0 {
		return fmt.Errorf("config: MaxWarps (%d) must be divisible by Schedulers (%d)",
			c.SM.MaxWarps, c.SM.Schedulers)
	}
	if c.SM.MaxThreads != c.SM.MaxWarps*c.WarpSize {
		return fmt.Errorf("config: MaxThreads (%d) != MaxWarps*WarpSize (%d)",
			c.SM.MaxThreads, c.SM.MaxWarps*c.WarpSize)
	}
	for _, cc := range []struct {
		name string
		c    Cache
	}{{"L1D", c.L1D}, {"L2", c.L2}} {
		if cc.c.LineBytes <= 0 || cc.c.Ways <= 0 || cc.c.SizeBytes <= 0 {
			return fmt.Errorf("config: %s geometry must be positive", cc.name)
		}
		sets := cc.c.Sets()
		if sets <= 0 || sets*cc.c.LineBytes*cc.c.Ways != cc.c.SizeBytes {
			return fmt.Errorf("config: %s size %dB not divisible into %d-way sets of %dB lines",
				cc.name, cc.c.SizeBytes, cc.c.Ways, cc.c.LineBytes)
		}
		if sets&(sets-1) != 0 {
			return fmt.Errorf("config: %s set count %d must be a power of two", cc.name, sets)
		}
		if cc.c.MSHRs <= 0 || cc.c.MissQueue <= 0 {
			return fmt.Errorf("config: %s MSHRs and MissQueue must be positive", cc.name)
		}
	}
	if c.L1D.LineBytes != c.L2.LineBytes {
		return fmt.Errorf("config: L1D and L2 line sizes differ (%d vs %d)",
			c.L1D.LineBytes, c.L2.LineBytes)
	}
	if c.DRAM.Banks <= 0 || c.DRAM.DataCycles <= 0 {
		return fmt.Errorf("config: DRAM Banks and DataCycles must be positive")
	}
	return nil
}
