package config

import "testing"

// TestDefaultMatchesTable1 pins the baseline to the paper's Table 1.
func TestDefaultMatchesTable1(t *testing.T) {
	c := Default()
	checks := []struct {
		name string
		got  int
		want int
	}{
		{"NumSMs", c.NumSMs, 16},
		{"WarpSize", c.WarpSize, 32},
		{"Schedulers", c.SM.Schedulers, 4},
		{"MaxThreads", c.SM.MaxThreads, 3072},
		{"MaxWarps", c.SM.MaxWarps, 96},
		{"MaxTBs", c.SM.MaxTBs, 16},
		{"L1D MSHRs", c.L1D.MSHRs, 128},
		{"L1D size", c.L1D.SizeBytes, 24 * 1024},
		{"L1D line", c.L1D.LineBytes, 128},
		{"L1D ways", c.L1D.Ways, 6},
		{"SMEM", c.SM.SmemBytes, 96 * 1024},
		{"L2 partition size", c.L2.SizeBytes, 128 * 1024},
		{"L2 ways", c.L2.Ways, 16},
		{"L2 MSHRs", c.L2.MSHRs, 128},
		{"mem partitions", c.NumMemParts, 16},
		{"flit bytes", c.Icnt.FlitBytes, 32},
	}
	for _, ck := range checks {
		if ck.got != ck.want {
			t.Errorf("%s = %d, want %d", ck.name, ck.got, ck.want)
		}
	}
	if c.L1D.WriteBack {
		t.Error("L1D must be write-evict/write-no-allocate")
	}
	if !c.L2.WriteBack {
		t.Error("L2 must be write-back/write-allocate")
	}
	if c.SM.Scheduler != GTO {
		t.Error("default scheduler must be GTO")
	}
	// 2 MB aggregate L2.
	if tot := c.L2.SizeBytes * c.NumMemParts; tot != 2*1024*1024 {
		t.Errorf("aggregate L2 = %d, want 2 MiB", tot)
	}
}

func TestDefaultValidates(t *testing.T) {
	if err := Default().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
}

func TestScaledValidates(t *testing.T) {
	for _, n := range []int{1, 2, 4, 8, 16} {
		c := Scaled(n)
		if err := c.Validate(); err != nil {
			t.Errorf("Scaled(%d): %v", n, err)
		}
		if c.NumSMs != n || c.NumMemParts != n {
			t.Errorf("Scaled(%d) = %d SMs / %d partitions", n, c.NumSMs, c.NumMemParts)
		}
	}
}

func TestScaledClampsNonPositive(t *testing.T) {
	if c := Scaled(0); c.NumSMs != 1 {
		t.Errorf("Scaled(0).NumSMs = %d, want 1", c.NumSMs)
	}
}

func TestL1DSets(t *testing.T) {
	c := Default()
	if got := c.L1D.Sets(); got != 32 {
		t.Errorf("L1D sets = %d, want 32 (24KB / 128B / 6-way)", got)
	}
	if got := c.L2.Sets(); got != 64 {
		t.Errorf("L2 sets = %d, want 64 (128KB / 128B / 16-way)", got)
	}
}

func TestValidateRejectsBadGeometry(t *testing.T) {
	c := Default()
	c.L1D.SizeBytes = 1000 // not divisible
	if err := c.Validate(); err == nil {
		t.Error("expected error for indivisible L1D size")
	}

	c = Default()
	c.SM.MaxWarps = 95 // not divisible by schedulers
	if err := c.Validate(); err == nil {
		t.Error("expected error for MaxWarps not divisible by schedulers")
	}

	c = Default()
	c.SM.MaxThreads = 1000
	if err := c.Validate(); err == nil {
		t.Error("expected error for MaxThreads != MaxWarps*WarpSize")
	}

	c = Default()
	c.NumSMs = 0
	if err := c.Validate(); err == nil {
		t.Error("expected error for zero SMs")
	}

	c = Default()
	c.L2.LineBytes = 64
	if err := c.Validate(); err == nil {
		t.Error("expected error for mismatched line sizes")
	}
}

func TestSchedulerPolicyString(t *testing.T) {
	if GTO.String() != "GTO" || LRR.String() != "LRR" {
		t.Error("scheduler policy names wrong")
	}
	if SchedulerPolicy(9).String() == "" {
		t.Error("unknown policy must still render")
	}
}

func TestValidateMemorySystem(t *testing.T) {
	c := Default()
	c.DRAM.Banks = 0
	if c.Validate() == nil {
		t.Error("zero DRAM banks accepted")
	}
	c = Default()
	c.L1D.MSHRs = 0
	if c.Validate() == nil {
		t.Error("zero MSHRs accepted")
	}
	c = Default()
	c.NumMemParts = 0
	if c.Validate() == nil {
		t.Error("zero partitions accepted")
	}
	c = Default()
	c.L1D.SizeBytes = 24 * 1024 * 5 / 3 // breaks power-of-two sets
	if c.Validate() == nil {
		t.Error("non-power-of-two set count accepted")
	}
}

func TestSmemDefaults(t *testing.T) {
	c := Default()
	if c.SM.SmemBanks != 32 {
		t.Errorf("SMEM banks = %d, want 32 (Table 1)", c.SM.SmemBanks)
	}
	if c.SM.SmemLat <= 0 {
		t.Error("SMEM latency must be positive")
	}
}
