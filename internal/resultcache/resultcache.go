// Package resultcache is the content-addressed result store between
// the sweep/serve drivers and the simulation engine. Keys are the
// deterministic job fingerprints (runner.Job.Key: a sha256 over the
// full configuration), so a hit is by construction the byte-identical
// result of re-simulating — the engine is deterministic and the key
// covers everything that feeds it.
//
// The store is two-tiered. A bounded in-memory LRU holds the hot
// result bytes (MaxEntries / MaxBytes caps); an optional append-only
// JSONL file makes every entry durable across restarts. Eviction only
// drops the resident bytes — the disk tier keeps the entry, and a
// later Get re-reads and re-verifies it. Each persisted line carries a
// sha256 of the value; the checksum is verified lazily on first Get,
// and a mismatch (bit rot, a torn write that still parses) demotes the
// entry to a miss so the caller falls through to re-simulation instead
// of serving a corrupt result.
//
// Writes follow the journal package's crash discipline: one fsynced
// line per entry, failed appends rolled back to the last durable
// boundary, a torn tail discarded on Open. A Put failure is counted
// and surfaced but never fatal to the caller's pipeline — the cache
// degrades to pass-through.
package resultcache

import (
	"bufio"
	"bytes"
	"container/list"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"sync"
)

// line is one persisted entry.
type line struct {
	Key string `json:"key"`
	Sum string `json:"sum"` // sha256 of Val, hex
	Val []byte `json:"val"` // raw result bytes (base64 in the file)
}

// entry is the in-memory index record for one key.
type entry struct {
	key      string
	sum      string
	val      []byte // nil once evicted from the resident tier
	off, n   int64  // line location in the file (n == 0: memory-only)
	verified bool   // checksum confirmed since the bytes last left disk
	elem     *list.Element
}

// Stats is a snapshot of the store's counters.
type Stats struct {
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	PutErrors int64 `json:"put_errors"`
	Corrupt   int64 `json:"corrupt"`   // checksum mismatches demoted to misses
	Evictions int64 `json:"evictions"` // resident-tier evictions
}

// Options configures Open.
type Options struct {
	// Path is the backing JSONL file; empty runs the store memory-only
	// (eviction then discards entries entirely).
	Path string
	// MaxEntries bounds the resident tier's entry count; 0 = default.
	MaxEntries int
	// MaxBytes bounds the resident tier's value bytes; 0 = default.
	MaxBytes int64
}

const (
	// DefaultMaxEntries and DefaultMaxBytes bound the resident tier
	// when Options leaves them zero.
	DefaultMaxEntries = 4096
	DefaultMaxBytes   = 256 << 20
)

// Store is a content-addressed result cache, safe for concurrent use.
type Store struct {
	// FaultHook, when non-nil, is consulted before the write and sync
	// steps of every Put (ops "write" and "sync"); a returned error is
	// treated as that step's disk error. Fault-injection seam
	// (internal/chaos) — set it before the store is shared.
	FaultHook func(op, key string) error

	maxEntries int
	maxBytes   int64

	mu       sync.Mutex
	path     string
	f        *os.File
	off      int64 // end of the last durable line (rollback target)
	broken   bool  // a rollback failed; the file tail is untrusted
	index    map[string]*entry
	lru      *list.List // of *entry with val != nil; front = most recent
	resBytes int64
	stats    Stats
}

// Open loads (or creates) the store. With a non-empty Path, existing
// entries are indexed and their bytes made resident newest-first up to
// the caps; a truncated trailing line is discarded as in the journal.
func Open(opts Options) (*Store, error) {
	s := &Store{
		maxEntries: opts.MaxEntries,
		maxBytes:   opts.MaxBytes,
		path:       opts.Path,
		index:      make(map[string]*entry),
		lru:        list.New(),
	}
	if s.maxEntries <= 0 {
		s.maxEntries = DefaultMaxEntries
	}
	if s.maxBytes <= 0 {
		s.maxBytes = DefaultMaxBytes
	}
	if opts.Path == "" {
		return s, nil
	}
	f, err := os.OpenFile(opts.Path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("resultcache: %w", err)
	}
	s.f = f
	valid := int64(0)
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<28)
	for sc.Scan() {
		raw := sc.Bytes()
		var l line
		if err := json.Unmarshal(raw, &l); err != nil || l.Key == "" || l.Sum == "" {
			break // torn tail: nothing after it can be trusted
		}
		if old := s.index[l.Key]; old != nil {
			s.drop(old) // later entry wins
			delete(s.index, l.Key)
		}
		e := &entry{
			key: l.Key,
			sum: l.Sum,
			val: append([]byte(nil), l.Val...),
			off: valid,
			n:   int64(len(raw)) + 1,
		}
		s.index[l.Key] = e
		s.admit(e)
		valid += int64(len(raw)) + 1
	}
	if err := sc.Err(); err != nil && len(s.index) == 0 {
		f.Close()
		return nil, fmt.Errorf("resultcache: reading %s: %w", opts.Path, err)
	}
	if err := f.Truncate(valid); err != nil {
		f.Close()
		return nil, fmt.Errorf("resultcache: truncating torn tail of %s: %w", opts.Path, err)
	}
	if _, err := f.Seek(valid, 0); err != nil {
		f.Close()
		return nil, fmt.Errorf("resultcache: %w", err)
	}
	s.off = valid
	return s, nil
}

// Get returns a copy of the cached bytes for key. A checksum mismatch
// on a disk-backed entry counts as corruption: the entry is dropped and
// the call reports a miss, so the caller re-simulates.
func (s *Store) Get(key string) ([]byte, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e := s.index[key]
	if e == nil {
		s.stats.Misses++
		return nil, false
	}
	if e.val == nil {
		// Evicted from the resident tier; re-read the line from disk.
		val, err := s.reload(e)
		if err != nil {
			s.discard(e)
			s.stats.Corrupt++
			s.stats.Misses++
			return nil, false
		}
		e.val = val
		e.verified = false
		s.admit(e)
	}
	if !e.verified {
		sum := sha256.Sum256(e.val)
		if hex.EncodeToString(sum[:]) != e.sum {
			s.discard(e)
			s.stats.Corrupt++
			s.stats.Misses++
			return nil, false
		}
		e.verified = true
	}
	if e.elem != nil {
		s.lru.MoveToFront(e.elem)
	}
	s.stats.Hits++
	return append([]byte(nil), e.val...), true
}

// Put records val under key: durable first (one fsynced JSONL line,
// rolled back on failure), then resident. A persistence failure is
// counted, leaves the entry memory-only, and surfaces as an error the
// caller may log and otherwise ignore — the result itself is still
// valid and still cached for this process's lifetime.
func (s *Store) Put(key string, val []byte) error {
	sum := sha256.Sum256(val)
	e := &entry{
		key:      key,
		sum:      hex.EncodeToString(sum[:]),
		val:      append([]byte(nil), val...),
		verified: true,
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if old := s.index[key]; old != nil {
		s.drop(old)
	}
	var werr error
	if s.f != nil {
		werr = s.append(e)
		if werr != nil {
			s.stats.PutErrors++
		}
	}
	s.index[key] = e
	s.admit(e)
	return werr
}

// append persists e's line and stamps its file location; on failure the
// file is rolled back to the last durable boundary (journal discipline).
func (s *Store) append(e *entry) error {
	if s.broken {
		return &WriteError{Path: s.path, Key: e.key, Op: "write",
			Err: fmt.Errorf("store poisoned by an earlier failed rollback")}
	}
	var buf bytes.Buffer
	if err := json.NewEncoder(&buf).Encode(line{Key: e.key, Sum: e.sum, Val: e.val}); err != nil {
		return fmt.Errorf("resultcache: encoding entry %s: %w", e.key, err)
	}
	if s.FaultHook != nil {
		if ferr := s.FaultHook("write", e.key); ferr != nil {
			// Model a torn write: part of the line reached the file.
			s.f.Write(buf.Bytes()[:buf.Len()/2])
			return s.rollback(e.key, "write", ferr)
		}
	}
	if _, err := s.f.Write(buf.Bytes()); err != nil {
		return s.rollback(e.key, "write", err)
	}
	if s.FaultHook != nil {
		if ferr := s.FaultHook("sync", e.key); ferr != nil {
			return s.rollback(e.key, "sync", ferr)
		}
	}
	if err := s.f.Sync(); err != nil {
		return s.rollback(e.key, "sync", err)
	}
	e.off, e.n = s.off, int64(buf.Len())
	s.off += int64(buf.Len())
	return nil
}

func (s *Store) rollback(key, op string, cause error) error {
	if err := s.f.Truncate(s.off); err != nil {
		s.broken = true
		return &WriteError{Path: s.path, Key: key, Op: "rollback",
			Err: fmt.Errorf("%w (truncate after failed %s: %v)", cause, op, err)}
	}
	if _, err := s.f.Seek(s.off, 0); err != nil {
		s.broken = true
		return &WriteError{Path: s.path, Key: key, Op: "rollback",
			Err: fmt.Errorf("%w (seek after failed %s: %v)", cause, op, err)}
	}
	return &WriteError{Path: s.path, Key: key, Op: op, Err: cause}
}

// reload re-reads e's line from the file and returns its value bytes.
func (s *Store) reload(e *entry) ([]byte, error) {
	if s.f == nil || e.n == 0 {
		return nil, fmt.Errorf("resultcache: entry %s has no backing line", e.key)
	}
	raw := make([]byte, e.n)
	if _, err := s.f.ReadAt(raw, e.off); err != nil {
		return nil, fmt.Errorf("resultcache: rereading entry %s: %w", e.key, err)
	}
	var l line
	if err := json.Unmarshal(bytes.TrimRight(raw, "\n"), &l); err != nil || l.Key != e.key {
		return nil, fmt.Errorf("resultcache: entry %s unparseable on reread", e.key)
	}
	return l.Val, nil
}

// admit places e in the resident tier and evicts past the caps. An
// evicted disk-backed entry keeps its index record (bytes reloadable);
// a memory-only one is discarded outright.
func (s *Store) admit(e *entry) {
	e.elem = s.lru.PushFront(e)
	s.resBytes += int64(len(e.val))
	for s.lru.Len() > s.maxEntries || s.resBytes > s.maxBytes {
		tail := s.lru.Back()
		if tail == nil || tail == e.elem && s.lru.Len() == 1 {
			break // never evict the entry being admitted if it is alone
		}
		v := tail.Value.(*entry)
		s.drop(v)
		if v.n == 0 {
			delete(s.index, v.key)
		}
		s.stats.Evictions++
	}
}

// drop removes e from the resident tier (index untouched).
func (s *Store) drop(e *entry) {
	if e.elem != nil {
		s.lru.Remove(e.elem)
		s.resBytes -= int64(len(e.val))
		e.elem = nil
	}
	e.val = nil
}

// discard removes e entirely (corrupt entry).
func (s *Store) discard(e *entry) {
	s.drop(e)
	delete(s.index, e.key)
}

// Len returns the number of distinct keys indexed (resident or not).
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.index)
}

// Resident returns the resident tier's entry count and value bytes.
func (s *Store) Resident() (entries int, bytes int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.lru.Len(), s.resBytes
}

// Stats returns a snapshot of the counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// Close releases the backing file. Resident lookups keep working;
// reloads of evicted entries and Puts to disk fail.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.f == nil {
		return nil
	}
	err := s.f.Close()
	s.f = nil
	return err
}

// WriteError is a failed persistence step of a Put: the entry never
// became durable (it remains cached in memory for this process). Op
// names the failed step ("write", "sync" or "rollback"); Err is the
// cause and is in the Unwrap chain. A rollback failure poisons the
// store's disk tier: the file tail is untrusted, so later Puts fail
// fast while Gets keep serving.
type WriteError struct {
	Path string
	Key  string
	Op   string
	Err  error
}

func (e *WriteError) Error() string {
	return fmt.Sprintf("resultcache: %s of %s to %s failed: %v", e.Op, e.Key, e.Path, e.Err)
}

func (e *WriteError) Unwrap() error { return e.Err }
