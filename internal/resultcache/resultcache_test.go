package resultcache

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func payload(i int) (string, []byte) {
	return fmt.Sprintf("j1-%04d", i),
		[]byte(fmt.Sprintf(`{"cycles":%d,"series":[%d,%d,%d]}`, i*1000, i, i+1, i+2))
}

// TestHitIsByteIdentical: the cache's whole value proposition — what
// comes back is exactly what went in, byte for byte.
func TestHitIsByteIdentical(t *testing.T) {
	s, err := Open(Options{Path: filepath.Join(t.TempDir(), "cache.jsonl")})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	key, val := payload(1)
	if _, ok := s.Get(key); ok {
		t.Fatal("hit on an empty cache")
	}
	if err := s.Put(key, val); err != nil {
		t.Fatal(err)
	}
	got, ok := s.Get(key)
	if !ok {
		t.Fatal("miss after Put")
	}
	if !bytes.Equal(got, val) {
		t.Fatalf("cached bytes differ:\nput: %s\ngot: %s", val, got)
	}
	// The returned slice must be a copy — mutating it must not poison
	// the cache.
	got[0] = 'X'
	got2, ok := s.Get(key)
	if !ok || !bytes.Equal(got2, val) {
		t.Fatal("caller mutation reached the cached bytes")
	}
	st := s.Stats()
	if st.Hits != 2 || st.Misses != 1 {
		t.Fatalf("stats = %+v, want 2 hits / 1 miss", st)
	}
}

// TestRestartSurvival: entries persist across Close/Open, including a
// later Put overwriting an earlier one for the same key.
func TestRestartSurvival(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cache.jsonl")
	s, err := Open(Options{Path: path})
	if err != nil {
		t.Fatal(err)
	}
	k1, v1 := payload(1)
	k2, v2 := payload(2)
	if err := s.Put(k1, []byte(`{"stale":true}`)); err != nil {
		t.Fatal(err)
	}
	if err := s.Put(k2, v2); err != nil {
		t.Fatal(err)
	}
	if err := s.Put(k1, v1); err != nil { // later entry wins
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(Options{Path: path})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.Len() != 2 {
		t.Fatalf("reopened Len = %d, want 2", s2.Len())
	}
	for _, tc := range []struct {
		key  string
		want []byte
	}{{k1, v1}, {k2, v2}} {
		got, ok := s2.Get(tc.key)
		if !ok || !bytes.Equal(got, tc.want) {
			t.Fatalf("after restart, %s = %q ok=%v, want %q", tc.key, got, ok, tc.want)
		}
	}
}

// TestTornTailRecovery: a crash mid-append leaves a truncated final
// line; Open must drop it and recover everything before it.
func TestTornTailRecovery(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cache.jsonl")
	s, err := Open(Options{Path: path})
	if err != nil {
		t.Fatal(err)
	}
	k1, v1 := payload(1)
	if err := s.Put(k1, v1); err != nil {
		t.Fatal(err)
	}
	s.Close()
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString(`{"key":"j1-9999","sum":"ab`) // torn mid-line
	f.Close()

	s2, err := Open(Options{Path: path})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.Len() != 1 {
		t.Fatalf("Len after torn-tail recovery = %d, want 1", s2.Len())
	}
	if got, ok := s2.Get(k1); !ok || !bytes.Equal(got, v1) {
		t.Fatal("intact entry lost with the torn tail")
	}
	// The tail was truncated, so appends continue on a clean boundary.
	k2, v2 := payload(2)
	if err := s2.Put(k2, v2); err != nil {
		t.Fatal(err)
	}
}

// TestLRUBound: the resident tier respects MaxEntries; evicted
// disk-backed entries are transparently reloaded on Get, memory-only
// entries are gone.
func TestLRUBound(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cache.jsonl")
	s, err := Open(Options{Path: path, MaxEntries: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	const n = 10
	vals := make(map[string][]byte)
	for i := 0; i < n; i++ {
		k, v := payload(i)
		vals[k] = v
		if err := s.Put(k, v); err != nil {
			t.Fatal(err)
		}
	}
	if res, _ := s.Resident(); res > 4 {
		t.Fatalf("resident entries = %d, want <= 4", res)
	}
	if st := s.Stats(); st.Evictions < n-4 {
		t.Fatalf("evictions = %d, want >= %d", st.Evictions, n-4)
	}
	// Every entry — evicted or not — still serves from the disk tier.
	for k, v := range vals {
		got, ok := s.Get(k)
		if !ok || !bytes.Equal(got, v) {
			t.Fatalf("disk-backed entry %s lost to eviction", k)
		}
	}

	// Memory-only store: eviction is terminal.
	m, err := Open(Options{MaxEntries: 4})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		k, v := payload(i)
		if err := m.Put(k, v); err != nil {
			t.Fatal(err)
		}
	}
	if m.Len() > 4 {
		t.Fatalf("memory-only Len = %d, want <= 4", m.Len())
	}
	k0, _ := payload(0)
	if _, ok := m.Get(k0); ok {
		t.Fatal("memory-only store served an evicted entry")
	}
}

// TestMaxBytesBound: the resident tier also respects the byte cap.
func TestMaxBytesBound(t *testing.T) {
	s, err := Open(Options{Path: filepath.Join(t.TempDir(), "cache.jsonl"), MaxBytes: 200})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for i := 0; i < 8; i++ {
		k, _ := payload(i)
		if err := s.Put(k, bytes.Repeat([]byte(`x`), 90)); err != nil {
			t.Fatal(err)
		}
	}
	if _, rb := s.Resident(); rb > 200 {
		t.Fatalf("resident bytes = %d, want <= 200", rb)
	}
}

// TestCorruptionFallsThrough: flipping value bytes on disk must be
// caught by the lazy checksum and demoted to a miss (the caller
// re-simulates), never served.
func TestCorruptionFallsThrough(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cache.jsonl")
	s, err := Open(Options{Path: path})
	if err != nil {
		t.Fatal(err)
	}
	k1, v1 := payload(1)
	k2, v2 := payload(2)
	if err := s.Put(k1, v1); err != nil {
		t.Fatal(err)
	}
	if err := s.Put(k2, v2); err != nil {
		t.Fatal(err)
	}
	s.Close()

	// Corrupt k1's value in place (base64 region of the first line).
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	i := bytes.Index(raw, []byte(`"val":"`))
	if i < 0 {
		t.Fatal("no val field found")
	}
	i += len(`"val":"`)
	if raw[i] == 'A' {
		raw[i] = 'B'
	} else {
		raw[i] = 'A'
	}
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(Options{Path: path})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if _, ok := s2.Get(k1); ok {
		t.Fatal("corrupt entry served")
	}
	st := s2.Stats()
	if st.Corrupt != 1 {
		t.Fatalf("Corrupt = %d, want 1", st.Corrupt)
	}
	// The corrupt key is fully demoted: a re-Put repopulates it.
	if err := s2.Put(k1, v1); err != nil {
		t.Fatal(err)
	}
	if got, ok := s2.Get(k1); !ok || !bytes.Equal(got, v1) {
		t.Fatal("re-Put after corruption did not recover the key")
	}
	// The sibling entry is untouched.
	if got, ok := s2.Get(k2); !ok || !bytes.Equal(got, v2) {
		t.Fatal("corruption of one entry leaked into another")
	}
}

// TestPutFaultDegradesGracefully: a failed persistence step surfaces as
// a *WriteError, rolls the file back, and leaves the result cached in
// memory — the pipeline keeps working without the disk tier for that
// entry.
func TestPutFaultDegradesGracefully(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cache.jsonl")
	s, err := Open(Options{Path: path})
	if err != nil {
		t.Fatal(err)
	}
	k1, v1 := payload(1)
	if err := s.Put(k1, v1); err != nil {
		t.Fatal(err)
	}

	boom := errors.New("disk full")
	s.FaultHook = func(op, key string) error {
		if op == "write" && strings.Contains(key, "0002") {
			return boom
		}
		return nil
	}
	k2, v2 := payload(2)
	err = s.Put(k2, v2)
	var we *WriteError
	if !errors.As(err, &we) || !errors.Is(err, boom) {
		t.Fatalf("Put under fault returned %v, want *WriteError wrapping the cause", err)
	}
	if st := s.Stats(); st.PutErrors != 1 {
		t.Fatalf("PutErrors = %d, want 1", st.PutErrors)
	}
	// Still served from memory despite the failed append.
	if got, ok := s.Get(k2); !ok || !bytes.Equal(got, v2) {
		t.Fatal("entry lost after failed persistence")
	}
	// The torn write was rolled back: later appends land cleanly.
	s.FaultHook = nil
	k3, v3 := payload(3)
	if err := s.Put(k3, v3); err != nil {
		t.Fatal(err)
	}
	s.Close()

	s2, err := Open(Options{Path: path})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.Len() != 2 {
		t.Fatalf("reopened Len = %d, want 2 (faulted entry not durable)", s2.Len())
	}
	if _, ok := s2.Get(k2); ok {
		t.Fatal("faulted entry survived restart")
	}
	for _, tc := range []struct {
		key  string
		want []byte
	}{{k1, v1}, {k3, v3}} {
		if got, ok := s2.Get(tc.key); !ok || !bytes.Equal(got, tc.want) {
			t.Fatalf("durable entry %s lost around the faulted append", tc.key)
		}
	}
}

// TestConcurrentUse hammers one store from many goroutines (meaningful
// under -race).
func TestConcurrentUse(t *testing.T) {
	s, err := Open(Options{Path: filepath.Join(t.TempDir(), "cache.jsonl"), MaxEntries: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	done := make(chan struct{})
	for g := 0; g < 4; g++ {
		go func(g int) {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 50; i++ {
				k, v := payload((g*13 + i) % 20)
				if i%3 == 0 {
					s.Put(k, v)
				} else if got, ok := s.Get(k); ok && !bytes.Equal(got, v) {
					t.Errorf("got wrong bytes for %s", k)
				}
			}
		}(g)
	}
	for g := 0; g < 4; g++ {
		<-done
	}
}
