package mem

// Pool is a free-list allocator for the memory path's two hot transient
// objects: Requests (one per coalesced access, created by the SM's
// coalescer and by each cache level's fetch/writeback paths) and
// InstrTokens (one per warp memory instruction). Without pooling these
// dominate the cycle loop's allocation profile; with it the steady
// state allocates nothing on the memory path.
//
// A Pool is NOT safe for concurrent use. The parallel cycle engine
// gives each SM its own Pool (used during the concurrent SM phase) and
// the memory side (L2 partitions + DRAM, ticked serially) a separate
// one, so no lock is needed. Objects may be released into a different
// pool than the one that allocated them — a request allocated by an
// SM's coalescer is often retired on the memory side and vice versa —
// which only shifts free-list population between pools, never
// correctness, because release and reuse always happen on the owning
// phase's goroutine.
//
// The nil *Pool is valid and falls back to plain allocation (release
// becomes a no-op), so components can run unpooled in isolation tests.
type Pool struct {
	reqs []*Request
	toks []*InstrToken

	// Statistics (allocation-profile introspection; not hot).
	ReqAllocs   uint64 // requests served by new()
	ReqReuses   uint64 // requests served from the free list
	TokAllocs   uint64
	TokReuses   uint64
	ReqRecycled uint64 // requests released back
	TokRecycled uint64
}

// poisonLine is written into released requests' LineAddr so use-after-
// release shows up as an impossible address in any downstream check
// rather than as silent aliasing.
const poisonLine = ^uint64(0) - 0xDEAD

// Request returns a zeroed request, reusing a released one when
// available.
func (p *Pool) Request() *Request {
	if p == nil || len(p.reqs) == 0 {
		if p != nil {
			p.ReqAllocs++
		}
		return &Request{}
	}
	p.ReqReuses++
	r := p.reqs[len(p.reqs)-1]
	p.reqs = p.reqs[:len(p.reqs)-1]
	*r = Request{}
	return r
}

// Release returns a request to the free list. The request's fields are
// poisoned immediately: any holder that kept the pointer past release
// reads an impossible address/kernel instead of silently aliasing the
// next owner's data. Releasing nil is a no-op.
func (p *Pool) Release(r *Request) {
	if p == nil || r == nil {
		return
	}
	*r = Request{LineAddr: poisonLine, Kernel: -1, SM: -1, Warp: -1}
	p.ReqRecycled++
	p.reqs = append(p.reqs, r)
}

// Poisoned reports whether r carries the release-time poison pattern —
// the aliasing tests' detector for use-after-release.
func (r *Request) Poisoned() bool {
	return r.LineAddr == poisonLine && r.Kernel == -1 && r.SM == -1
}

// Token returns a zeroed instruction token, reusing a released one when
// available.
func (p *Pool) Token() *InstrToken {
	if p == nil || len(p.toks) == 0 {
		if p != nil {
			p.TokAllocs++
		}
		return &InstrToken{}
	}
	p.TokReuses++
	t := p.toks[len(p.toks)-1]
	p.toks = p.toks[:len(p.toks)-1]
	*t = InstrToken{}
	return t
}

// ReleaseToken returns a token to the free list, poisoned the same way
// as requests (Total/Done set so Completed() stays true but the kernel
// and SM are impossible). Releasing nil is a no-op.
func (p *Pool) ReleaseToken(t *InstrToken) {
	if p == nil || t == nil {
		return
	}
	*t = InstrToken{Kernel: -1, SM: -1, Warp: -1, Total: 0, Done: 0}
	p.TokRecycled++
	p.toks = append(p.toks, t)
}

// FreeRequests returns the free-list occupancy (tests/introspection).
func (p *Pool) FreeRequests() int {
	if p == nil {
		return 0
	}
	return len(p.reqs)
}

// FreeTokens returns the token free-list occupancy.
func (p *Pool) FreeTokens() int {
	if p == nil {
		return 0
	}
	return len(p.toks)
}
