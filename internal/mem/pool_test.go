package mem

import "testing"

func TestPoolReusesRequests(t *testing.T) {
	var p Pool
	r1 := p.Request()
	r1.LineAddr = 42
	p.Release(r1)
	r2 := p.Request()
	if r2 != r1 {
		t.Fatal("pool did not reuse the released request")
	}
	if r2.LineAddr != 0 || r2.Kernel != 0 || r2.Instr != nil {
		t.Fatalf("reused request not zeroed: %+v", r2)
	}
	if p.ReqReuses != 1 {
		t.Fatalf("ReqReuses = %d, want 1", p.ReqReuses)
	}
}

// TestNoAliasingAfterRecycle is the two-owners test: once a request is
// released, the releasing owner's retained pointer must read as
// poisoned — not as the (zeroed or repopulated) state of the next
// owner. A stale pointer that still looks like a live request is
// exactly the bug class pooling can introduce; poisoning turns it into
// an immediately detectable state.
func TestNoAliasingAfterRecycle(t *testing.T) {
	var p Pool
	stale := p.Request()
	stale.LineAddr = 7
	stale.Kernel = 1
	stale.SM = 3
	tok := &InstrToken{Kernel: 1}
	stale.Instr = tok

	p.Release(stale)
	if !stale.Poisoned() {
		t.Fatalf("released request not poisoned: %+v", stale)
	}
	if stale.Instr != nil {
		t.Fatal("release kept the token reference alive")
	}

	// Second owner takes the same storage and fills its own state.
	fresh := p.Request()
	fresh.LineAddr = 99
	fresh.Kernel = 0

	// The storage is shared (that is the point of a pool)...
	if fresh != stale {
		t.Fatal("expected the pool to hand back the recycled storage")
	}
	// ...so the OLD owner's view and the new owner's view are the same
	// object; the test's contract is that release left no path by which
	// the old owner's logical request (addr 7, kernel 1, token tok)
	// is still reachable: the token link was severed and the poison
	// overwrote the identity fields before reuse.
	if fresh.Instr == tok {
		t.Fatal("recycled request still reaches the first owner's token")
	}
	if fresh.LineAddr == 7 {
		t.Fatal("first owner's address survived recycling")
	}
}

func TestPoolTokenLifecycle(t *testing.T) {
	var p Pool
	tk := p.Token()
	tk.Total = 4
	tk.Done = 4
	tk.Kernel = 2
	p.ReleaseToken(tk)
	if tk.Kernel != -1 || tk.SM != -1 {
		t.Fatalf("released token not poisoned: %+v", tk)
	}
	if !tk.Completed() {
		t.Fatal("poisoned token must remain Completed (no spurious barrier waits)")
	}
	tk2 := p.Token()
	if tk2 != tk {
		t.Fatal("pool did not reuse the released token")
	}
	if tk2.Kernel != 0 || tk2.Total != 0 || tk2.Done != 0 {
		t.Fatalf("reused token not zeroed: %+v", tk2)
	}
}

func TestNilPoolFallsBack(t *testing.T) {
	var p *Pool
	r := p.Request()
	if r == nil {
		t.Fatal("nil pool must still allocate")
	}
	p.Release(r) // must not panic
	tk := p.Token()
	if tk == nil {
		t.Fatal("nil pool must still allocate tokens")
	}
	p.ReleaseToken(tk)
	if p.FreeRequests() != 0 || p.FreeTokens() != 0 {
		t.Fatal("nil pool reported free-list occupancy")
	}
}

func TestReleaseNilIsNoOp(t *testing.T) {
	var p Pool
	p.Release(nil)
	p.ReleaseToken(nil)
	if p.FreeRequests() != 0 || p.FreeTokens() != 0 {
		t.Fatal("releasing nil populated the free list")
	}
}
