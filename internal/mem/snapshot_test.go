package mem

import "testing"

// TestClonerPreservesAliasing: all requests of one instruction share one
// token; the clone graph must share one cloned token the same way, and
// repeated clones of the same pointer must return the same clone.
func TestClonerPreservesAliasing(t *testing.T) {
	tok := &InstrToken{Kernel: 1, SM: 2, Warp: 3, Total: 2}
	r1 := &Request{LineAddr: 100, Kernel: 1, Instr: tok}
	r2 := &Request{LineAddr: 228, Kernel: 1, Instr: tok}

	cl := NewCloner()
	c1 := cl.Request(r1)
	c2 := cl.Request(r2)
	if c1 == r1 || c2 == r2 {
		t.Fatal("clone returned the original pointer")
	}
	if c1.Instr == tok {
		t.Fatal("clone kept a pointer to the original token")
	}
	if c1.Instr != c2.Instr {
		t.Fatal("aliasing torn: two requests of one instruction got different token clones")
	}
	if cl.Request(r1) != c1 {
		t.Fatal("re-cloning the same request returned a different clone")
	}
	if cl.Request(nil) != nil || cl.Token(nil) != nil {
		t.Fatal("nil must clone to nil")
	}
	if cl.Requests() != 2 || cl.Tokens() != 1 {
		t.Fatalf("counts = %d requests / %d tokens, want 2 / 1", cl.Requests(), cl.Tokens())
	}
}

// TestCloneSurvivesPoolPoisoning is the copy-on-snapshot regression
// test: releasing the original request back to its pool poisons it in
// place, and the poisoned storage is then reused for a new allocation —
// none of which may reach the clone. This is exactly the snapshot
// lifecycle (snapshot, let the live machine retire and recycle the
// originals, restore later).
func TestCloneSurvivesPoolPoisoning(t *testing.T) {
	p := &Pool{}
	tok := p.Token()
	tok.Kernel, tok.Total = 1, 1
	r := p.Request()
	r.LineAddr, r.Kernel, r.SM, r.Warp, r.Instr = 4242, 1, 3, 7, tok

	cl := NewCloner()
	c := cl.Request(r)

	p.Release(r)
	p.ReleaseToken(tok)
	if !r.Poisoned() {
		t.Fatal("release did not poison the original (test premise broken)")
	}
	// Reuse the poisoned storage for fresh objects and overwrite it.
	r2 := p.Request()
	r2.LineAddr = 1
	tok2 := p.Token()
	tok2.Kernel = 9
	if r2 != r || tok2 != tok {
		t.Fatal("pool did not reuse the released storage (test premise broken)")
	}

	if c.Poisoned() {
		t.Fatal("poison reached the clone")
	}
	if c.LineAddr != 4242 || c.Kernel != 1 || c.SM != 3 || c.Warp != 7 {
		t.Fatalf("clone mutated by pool recycling: %+v", c)
	}
	if c.Instr.Kernel != 1 || c.Instr.Total != 1 {
		t.Fatalf("cloned token mutated by pool recycling: %+v", c.Instr)
	}
}
