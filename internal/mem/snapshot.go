package mem

// Cloner deep-copies the memory path's linked transient objects for the
// engine's snapshot/restore discipline. One Cloner spans one whole
// snapshot (or restore) operation across every component of a GPU: an
// InstrToken is shared by all requests of one memory instruction, and
// those requests may sit in different components at once (an SM's LSU,
// its L1 MSHR targets, the interconnect, an L2 partition, DRAM), so the
// clone map must be machine-wide for the aliasing to survive the copy.
//
// Every clone is freshly allocated — never drawn from a Pool — so a
// snapshot owns its memory outright: releasing (and thereby poisoning)
// the originals after the snapshot cannot reach into it, and restoring
// the same snapshot several times yields fully disjoint object graphs.
type Cloner struct {
	reqs map[*Request]*Request
	toks map[*InstrToken]*InstrToken
}

// NewCloner returns an empty Cloner.
func NewCloner() *Cloner {
	return &Cloner{
		reqs: make(map[*Request]*Request),
		toks: make(map[*InstrToken]*InstrToken),
	}
}

// Request returns the clone of r, creating it on first sight. Cloning
// nil yields nil. Two calls with the same pointer return the same clone,
// so aliasing in the source graph is preserved in the copy.
func (c *Cloner) Request(r *Request) *Request {
	if r == nil {
		return nil
	}
	if cp, ok := c.reqs[r]; ok {
		return cp
	}
	cp := &Request{}
	*cp = *r
	cp.Instr = c.Token(r.Instr)
	c.reqs[r] = cp
	return cp
}

// Token returns the clone of t, creating it on first sight (nil-safe,
// identity-preserving like Request).
func (c *Cloner) Token(t *InstrToken) *InstrToken {
	if t == nil {
		return nil
	}
	if cp, ok := c.toks[t]; ok {
		return cp
	}
	cp := &InstrToken{}
	*cp = *t
	c.toks[t] = cp
	return cp
}

// Requests returns how many distinct requests have been cloned (size
// accounting for snapshot-footprint gauges).
func (c *Cloner) Requests() int { return len(c.reqs) }

// Tokens returns how many distinct tokens have been cloned.
func (c *Cloner) Tokens() int { return len(c.toks) }
