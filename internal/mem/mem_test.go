package mem

import (
	"testing"
	"testing/quick"
)

func TestAddrSpaceDisjointKernels(t *testing.T) {
	a := NewAddrSpace(128)
	// Any two different kernels must never produce the same line address
	// for offsets within the region bound.
	f := func(off1, off2 uint32) bool {
		l0 := a.Line(0, uint64(off1))
		l1 := a.Line(1, uint64(off2))
		return l0 != l1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAddrSpaceLineGranularity(t *testing.T) {
	a := NewAddrSpace(128)
	if a.Line(0, 0) != a.Line(0, 127) {
		t.Error("offsets within one line must map to the same line")
	}
	if a.Line(0, 127) == a.Line(0, 128) {
		t.Error("offset 128 must start a new 128B line")
	}
}

func TestLineOfMatchesLine(t *testing.T) {
	a := NewAddrSpace(128)
	if a.LineOf(2, 5) != a.Line(2, 5*128) {
		t.Error("LineOf and Line disagree")
	}
}

func TestPartitionOfInRange(t *testing.T) {
	f := func(line uint64, parts uint8) bool {
		p := int(parts%16) + 1
		v := PartitionOf(line, p)
		return v >= 0 && v < p
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPartitionOfSpreadsSequential(t *testing.T) {
	// A sequential stream must not camp on one partition.
	const parts = 16
	var counts [parts]int
	const n = 1 << 14
	for i := uint64(0); i < n; i++ {
		counts[PartitionOf(i, parts)]++
	}
	for p, c := range counts {
		if c < n/parts/2 || c > n/parts*2 {
			t.Errorf("partition %d got %d of %d accesses (want ~%d)", p, c, n, n/parts)
		}
	}
}

func TestInstrTokenCompletion(t *testing.T) {
	tok := &InstrToken{Total: 3}
	for i := 0; i < 2; i++ {
		tok.Done++
		if tok.Completed() {
			t.Fatalf("token completed after %d of 3", tok.Done)
		}
	}
	tok.Done++
	if !tok.Completed() {
		t.Fatal("token not completed after all requests done")
	}
}

func TestKindString(t *testing.T) {
	if Load.String() != "load" || Store.String() != "store" {
		t.Error("Kind strings wrong")
	}
}
