// Package trace provides a lightweight cycle-level event tracer for the
// simulator: a fixed-capacity ring buffer of compact events that the SM
// and memory system append to when tracing is enabled (a nil buffer
// costs one pointer check on the hot path). cmd/cketrace renders traces
// for pipeline debugging and teaching.
package trace

import (
	"fmt"
	"strings"
)

// Kind labels an event.
type Kind uint8

const (
	// IssueCompute: a warp issued an ALU/SFU/SMEM instruction.
	IssueCompute Kind = iota
	// IssueMem: a warp memory instruction entered the LSU (Arg holds
	// the coalesced request count).
	IssueMem
	// L1Access: a request was serviced by the L1D (Arg: 0 hit, 1 miss,
	// 2 merged, 3 forwarded, 4 bypassed).
	L1Access
	// RsFail: the LSU head suffered a reservation failure (Arg holds
	// the failure cause as cache.Result).
	RsFail
	// Fill: a line fill arrived at the L1D (Arg: line address).
	Fill
	// TBLaunch / TBDone: thread-block lifecycle (Arg: TB slot).
	TBLaunch
	TBDone
)

func (k Kind) String() string {
	switch k {
	case IssueCompute:
		return "compute"
	case IssueMem:
		return "mem-issue"
	case L1Access:
		return "l1-access"
	case RsFail:
		return "rsfail"
	case Fill:
		return "fill"
	case TBLaunch:
		return "tb-launch"
	case TBDone:
		return "tb-done"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Event is one trace record (32 bytes).
type Event struct {
	Cycle  int64
	Arg    uint64
	Kind   Kind
	SM     int8
	Kernel int8
	Warp   int16
}

func (e Event) String() string {
	return fmt.Sprintf("%8d sm%d k%d w%-3d %-9s arg=%d",
		e.Cycle, e.SM, e.Kernel, e.Warp, e.Kind, e.Arg)
}

// Buffer is a ring of the most recent events. The zero value is unusable;
// create with New. Buffer is not safe for concurrent use (the simulator
// is single-threaded).
type Buffer struct {
	ring  []Event
	next  int
	total uint64
}

// New creates a buffer retaining the last capacity events.
func New(capacity int) *Buffer {
	if capacity < 1 {
		capacity = 1
	}
	return &Buffer{ring: make([]Event, 0, capacity)}
}

// Add appends an event, evicting the oldest when full.
func (b *Buffer) Add(e Event) {
	if len(b.ring) < cap(b.ring) {
		b.ring = append(b.ring, e)
	} else {
		b.ring[b.next] = e
	}
	b.next = (b.next + 1) % cap(b.ring)
	b.total++
}

// Total reports how many events were ever recorded.
func (b *Buffer) Total() uint64 { return b.total }

// Snapshot returns the retained events, oldest first.
func (b *Buffer) Snapshot() []Event {
	if len(b.ring) < cap(b.ring) {
		out := make([]Event, len(b.ring))
		copy(out, b.ring)
		return out
	}
	out := make([]Event, 0, len(b.ring))
	out = append(out, b.ring[b.next:]...)
	out = append(out, b.ring[:b.next]...)
	return out
}

// Filter returns the retained events matching keep, oldest first.
func (b *Buffer) Filter(keep func(Event) bool) []Event {
	var out []Event
	for _, e := range b.Snapshot() {
		if keep(e) {
			out = append(out, e)
		}
	}
	return out
}

// Render formats events, one per line.
func Render(events []Event) string {
	var sb strings.Builder
	for _, e := range events {
		sb.WriteString(e.String())
		sb.WriteByte('\n')
	}
	return sb.String()
}

// CountByKind tallies the retained events per kind.
func (b *Buffer) CountByKind() map[Kind]int {
	out := make(map[Kind]int)
	for _, e := range b.Snapshot() {
		out[e.Kind]++
	}
	return out
}
