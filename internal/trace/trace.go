// Package trace provides a lightweight cycle-level event tracer for the
// simulator: a fixed-capacity ring buffer of compact events that the SM
// and memory system append to when tracing is enabled (a nil buffer
// costs one pointer check on the hot path). cmd/cketrace renders traces
// for pipeline debugging and teaching.
package trace

import (
	"fmt"
	"strings"
)

// Kind labels an event.
type Kind uint8

const (
	// IssueCompute: a warp issued an ALU/SFU/SMEM instruction.
	IssueCompute Kind = iota
	// IssueMem: a warp memory instruction entered the LSU (Arg holds
	// the coalesced request count).
	IssueMem
	// L1Access: a request was serviced by the L1D (Arg: 0 hit, 1 miss,
	// 2 merged, 3 forwarded, 4 bypassed).
	L1Access
	// RsFail: the LSU head suffered a reservation failure (Arg holds
	// the failure cause as cache.Result).
	RsFail
	// Fill: a line fill arrived at the L1D (Arg: line address).
	Fill
	// TBLaunch / TBDone: thread-block lifecycle (Arg: TB slot).
	TBLaunch
	TBDone
)

func (k Kind) String() string {
	switch k {
	case IssueCompute:
		return "compute"
	case IssueMem:
		return "mem-issue"
	case L1Access:
		return "l1-access"
	case RsFail:
		return "rsfail"
	case Fill:
		return "fill"
	case TBLaunch:
		return "tb-launch"
	case TBDone:
		return "tb-done"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Event is one trace record (32 bytes).
type Event struct {
	Cycle  int64
	Arg    uint64
	Kind   Kind
	SM     int8
	Kernel int8
	Warp   int16
}

func (e Event) String() string {
	return fmt.Sprintf("%8d sm%d k%d w%-3d %-9s arg=%d",
		e.Cycle, e.SM, e.Kernel, e.Warp, e.Kind, e.Arg)
}

// ringBuf is the fixed-capacity event ring shared by the flat buffer
// and its per-SM shards.
type ringBuf struct {
	ring  []Event
	next  int
	total uint64
}

func (r *ringBuf) add(e Event) {
	if len(r.ring) < cap(r.ring) {
		r.ring = append(r.ring, e)
	} else {
		r.ring[r.next] = e
	}
	r.next = (r.next + 1) % cap(r.ring)
	r.total++
}

func (r *ringBuf) snapshot() []Event {
	if len(r.ring) < cap(r.ring) {
		out := make([]Event, len(r.ring))
		copy(out, r.ring)
		return out
	}
	out := make([]Event, 0, len(r.ring))
	out = append(out, r.ring[r.next:]...)
	out = append(out, r.ring[:r.next]...)
	return out
}

// Buffer is a ring of the most recent events. The zero value is unusable;
// create with New.
//
// A Buffer starts flat (one ring, single-writer). The parallel cycle
// engine calls EnsureShards(numSMs) so that each SM appends to a
// private shard during the concurrent phase — Add routes by Event.SM,
// touching only per-shard state, so concurrent Adds from different SMs
// do not race. Readers (Snapshot, Filter, Total, CountByKind) merge the
// shards by (Cycle, SM) and must not run concurrently with writers; the
// engine only reads between steps. Sharding is used for Workers=1 runs
// too, so serial and parallel runs retain and order events identically.
type Buffer struct {
	ringBuf            // events Added before sharding (or with out-of-range SM)
	capacity int       // requested retention, divided among shards
	shards   []ringBuf // one per SM once EnsureShards is called
}

// New creates a buffer retaining the last capacity events.
func New(capacity int) *Buffer {
	if capacity < 1 {
		capacity = 1
	}
	return &Buffer{
		ringBuf:  ringBuf{ring: make([]Event, 0, capacity)},
		capacity: capacity,
	}
}

// EnsureShards splits the buffer into n per-SM shards (idempotent for
// the same n). Each shard retains capacity/n events, so total retention
// is unchanged; per-SM retention becomes independent of other SMs'
// event rates, which is what makes retention deterministic when SMs
// tick concurrently.
func (b *Buffer) EnsureShards(n int) {
	if n <= 0 || len(b.shards) == n {
		return
	}
	per := b.capacity / n
	if per < 1 {
		per = 1
	}
	b.shards = make([]ringBuf, n)
	for i := range b.shards {
		b.shards[i].ring = make([]Event, 0, per)
	}
}

// Add appends an event, evicting the oldest when full. On a sharded
// buffer the event goes to its SM's shard; events whose SM is out of
// shard range (or recorded before sharding) stay in the flat ring.
func (b *Buffer) Add(e Event) {
	if i := int(e.SM); i >= 0 && i < len(b.shards) {
		b.shards[i].add(e)
		return
	}
	b.ringBuf.add(e)
}

// Total reports how many events were ever recorded.
func (b *Buffer) Total() uint64 {
	t := b.total
	for i := range b.shards {
		t += b.shards[i].total
	}
	return t
}

// Snapshot returns the retained events, oldest first: ordered by Cycle,
// ties broken by SM, with per-SM insertion order preserved. On a flat
// buffer this is plain insertion order.
func (b *Buffer) Snapshot() []Event {
	if len(b.shards) == 0 {
		return b.ringBuf.snapshot()
	}
	lists := make([][]Event, 0, len(b.shards)+1)
	if s := b.ringBuf.snapshot(); len(s) > 0 {
		lists = append(lists, s)
	}
	for i := range b.shards {
		if s := b.shards[i].snapshot(); len(s) > 0 {
			lists = append(lists, s)
		}
	}
	if len(lists) == 1 {
		return lists[0]
	}
	return mergeByCycleSM(lists)
}

// mergeByCycleSM k-way merges per-shard event lists. Each list is
// nondecreasing in Cycle (SMs stamp events with their current cycle),
// so a head-comparison merge yields a total order by (Cycle, SM) while
// keeping each shard's insertion order for equal keys.
func mergeByCycleSM(lists [][]Event) []Event {
	n := 0
	for _, l := range lists {
		n += len(l)
	}
	out := make([]Event, 0, n)
	idx := make([]int, len(lists))
	for len(out) < n {
		best := -1
		for i, l := range lists {
			if idx[i] >= len(l) {
				continue
			}
			if best < 0 {
				best = i
				continue
			}
			h, bh := l[idx[i]], lists[best][idx[best]]
			if h.Cycle < bh.Cycle || (h.Cycle == bh.Cycle && h.SM < bh.SM) {
				best = i
			}
		}
		out = append(out, lists[best][idx[best]])
		idx[best]++
	}
	return out
}

// Filter returns the retained events matching keep, oldest first.
func (b *Buffer) Filter(keep func(Event) bool) []Event {
	var out []Event
	for _, e := range b.Snapshot() {
		if keep(e) {
			out = append(out, e)
		}
	}
	return out
}

// Render formats events, one per line.
func Render(events []Event) string {
	var sb strings.Builder
	for _, e := range events {
		sb.WriteString(e.String())
		sb.WriteByte('\n')
	}
	return sb.String()
}

// CountByKind tallies the retained events per kind.
func (b *Buffer) CountByKind() map[Kind]int {
	out := make(map[Kind]int)
	for _, e := range b.Snapshot() {
		out[e.Kind]++
	}
	return out
}
