package trace

import (
	"strings"
	"testing"
)

func TestRingEviction(t *testing.T) {
	b := New(4)
	for i := int64(0); i < 10; i++ {
		b.Add(Event{Cycle: i})
	}
	if b.Total() != 10 {
		t.Fatalf("total = %d", b.Total())
	}
	snap := b.Snapshot()
	if len(snap) != 4 {
		t.Fatalf("retained %d, want 4", len(snap))
	}
	for i, e := range snap {
		if e.Cycle != int64(6+i) {
			t.Fatalf("snapshot order wrong: %v", snap)
		}
	}
}

func TestSnapshotBeforeFull(t *testing.T) {
	b := New(8)
	b.Add(Event{Cycle: 1})
	b.Add(Event{Cycle: 2})
	snap := b.Snapshot()
	if len(snap) != 2 || snap[0].Cycle != 1 || snap[1].Cycle != 2 {
		t.Fatalf("snapshot = %v", snap)
	}
}

func TestFilter(t *testing.T) {
	b := New(8)
	b.Add(Event{Kind: RsFail})
	b.Add(Event{Kind: IssueMem})
	b.Add(Event{Kind: RsFail})
	got := b.Filter(func(e Event) bool { return e.Kind == RsFail })
	if len(got) != 2 {
		t.Fatalf("filtered %d, want 2", len(got))
	}
}

func TestCountByKind(t *testing.T) {
	b := New(8)
	b.Add(Event{Kind: Fill})
	b.Add(Event{Kind: Fill})
	b.Add(Event{Kind: TBLaunch})
	counts := b.CountByKind()
	if counts[Fill] != 2 || counts[TBLaunch] != 1 {
		t.Fatalf("counts = %v", counts)
	}
}

func TestRendering(t *testing.T) {
	b := New(2)
	b.Add(Event{Cycle: 5, Kind: IssueMem, SM: 1, Kernel: 0, Warp: 3, Arg: 2})
	out := Render(b.Snapshot())
	if !strings.Contains(out, "mem-issue") || !strings.Contains(out, "sm1") {
		t.Fatalf("render = %q", out)
	}
}

func TestKindStrings(t *testing.T) {
	for k := IssueCompute; k <= TBDone; k++ {
		if strings.HasPrefix(k.String(), "Kind(") {
			t.Errorf("kind %d unnamed", k)
		}
	}
}

func TestZeroCapacityClamped(t *testing.T) {
	b := New(0)
	b.Add(Event{Cycle: 1})
	if len(b.Snapshot()) != 1 {
		t.Fatal("capacity must clamp to 1")
	}
}
