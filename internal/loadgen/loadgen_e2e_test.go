package loadgen_test

import (
	"context"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/backoff"
	"repro/internal/loadgen"
	"repro/internal/server"
)

// TestGracefulDegradationUnderOverload is the end-to-end claim, scaled
// to test wall-clock: against a real 1-worker ckeserve with deadlines
// and a deep queue, offered load at 5x the calibrated base must be
// gracefully shed — goodput stays a healthy fraction of the 1x stage
// (no metastable collapse), admitted p99 stays bounded near the
// deadline, and not one deadline-missed job is served as a success. CI's
// overload-smoke job re-runs this against real binaries with the tight
// 0.8 ratio; the looser bound here absorbs race-detector noise.
func TestGracefulDegradationUnderOverload(t *testing.T) {
	if testing.Short() {
		t.Skip("overload e2e takes seconds of wall-clock")
	}
	srv := server.New(server.Config{
		Workers: 1, QueueDepth: 1000,
		Retry: backoff.Policy{Base: time.Millisecond, Cap: 5 * time.Millisecond, Factor: 2},
	})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Minute)
	defer cancel()
	cfg := loadgen.Config{
		URL:      ts.URL,
		Arrivals: "poisson",
		Seed:     11,
		SMs:      2,
		Cycles:   4000,
		Kernels:  []string{"bp", "ks"},
		Fresh:    true,
	}
	base, err := loadgen.Calibrate(ctx, cfg, 4)
	if err != nil {
		t.Fatal(err)
	}
	if base <= 0 {
		t.Fatalf("calibrated base rate %v", base)
	}
	// Deadline: five mean service times. With the deep queue, admission
	// is governed by the deadline estimate, not the queue bound.
	mean := time.Duration(float64(time.Second) / base)
	cfg.Deadline = 5 * mean
	cfg.Duration = 1500 * time.Millisecond

	rep, err := loadgen.Sweep(ctx, cfg, base, []float64{1, 5}, 500*time.Millisecond, t.Logf)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Stages) != 2 {
		t.Fatalf("stages = %d, want 2", len(rep.Stages))
	}
	s1, s5 := rep.Stages[0], rep.Stages[1]

	// Every job is accounted for, in both stages.
	for _, s := range rep.Stages {
		if s.Completed+s.Shed+s.Missed-s.LateServed+s.Errors != s.Offered {
			t.Fatalf("outcome buckets do not sum to offered: %+v", s)
		}
		// The invariant the server guards with ErrDeadlineMiss: no
		// deadline-missed job is ever served as a success.
		if s.LateServed != 0 {
			t.Fatalf("late_served = %d, want 0: %+v", s.LateServed, s)
		}
	}
	// 5x the calibrated rate is far past a 1-worker server's capacity:
	// overload must be shed, not queued into uniform lateness.
	if s5.Shed == 0 {
		t.Fatalf("no sheds at 5x offered load: %+v", s5)
	}
	// Graceful degradation: goodput at 5x stays a healthy fraction of
	// the 1x plateau instead of collapsing toward zero.
	if ratio := rep.GoodputRatio(5); ratio < 0.5 {
		t.Fatalf("goodput(5x)/goodput(1x) = %.3f, want >= 0.5 (collapse): 1x %+v, 5x %+v", ratio, s1, s5)
	}
	// Admitted p99 stays bounded: nothing admitted may take much longer
	// than the deadline itself (sheds answer instantly and are excluded).
	bound := float64(cfg.Deadline+2*time.Second) / 1e6
	if s5.P99Ms > bound {
		t.Fatalf("admitted p99 at 5x = %.0fms, want <= %.0fms", s5.P99Ms, bound)
	}
	// The server shed on deadlines specifically (deep queue: the
	// deadline estimator, not the fixed bound, is what said no).
	if st := srv.StatsSnapshot(); st.ShedDeadline == 0 {
		t.Fatalf("shed_deadline = 0 after 5x overload with deadlines: %+v", st)
	}
}
