package loadgen

import (
	"context"
	"encoding/json"
	"math"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/server"
)

func TestScheduleFixedIsClosedForm(t *testing.T) {
	sched, err := Schedule("fixed", 1, 10, 5)
	if err != nil {
		t.Fatal(err)
	}
	for i, at := range sched {
		want := time.Duration(i) * 100 * time.Millisecond
		if at != want {
			t.Fatalf("arrival %d at %v, want %v", i, at, want)
		}
	}
}

func TestSchedulePoissonDeterministicAndCalibrated(t *testing.T) {
	a, err := Schedule("poisson", 42, 100, 2000)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := Schedule("poisson", 42, 100, 2000)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at arrival %d: %v vs %v", i, a[i], b[i])
		}
	}
	c, _ := Schedule("poisson", 43, 100, 2000)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced an identical schedule")
	}
	// Monotone non-decreasing, and mean inter-arrival ~ 1/rate: 2000
	// exponential samples put the sample mean within a few percent.
	for i := 1; i < len(a); i++ {
		if a[i] < a[i-1] {
			t.Fatalf("schedule not monotone at %d", i)
		}
	}
	mean := a[len(a)-1].Seconds() / float64(len(a))
	if math.Abs(mean-0.01) > 0.002 {
		t.Fatalf("poisson mean inter-arrival %vs, want ~0.01s", mean)
	}
}

func TestScheduleRejectsBadInput(t *testing.T) {
	if _, err := Schedule("poisson", 1, 0, 10); err == nil {
		t.Fatal("zero rate accepted")
	}
	if _, err := Schedule("weibull", 1, 10, 10); err == nil {
		t.Fatal("unknown arrival process accepted")
	}
}

func TestRequestsCycleDistinctFingerprints(t *testing.T) {
	cfg := Config{Unique: 4}.withDefaults()
	keys := make(map[string]bool)
	for i := 0; i < 8; i++ {
		req := cfg.request(i)
		_, key, _, err := req.Build()
		if err != nil {
			t.Fatalf("request %d does not build: %v", i, err)
		}
		keys[key] = true
	}
	if len(keys) != 4 {
		t.Fatalf("8 requests over Unique=4 minted %d fingerprints, want 4", len(keys))
	}
}

func TestParseMultipliers(t *testing.T) {
	ms, err := ParseMultipliers("5, 1,2.5")
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 3 || ms[0] != 1 || ms[1] != 2.5 || ms[2] != 5 {
		t.Fatalf("parsed %v, want sorted [1 2.5 5]", ms)
	}
	if _, err := ParseMultipliers("1,-2"); err == nil {
		t.Fatal("negative multiplier accepted")
	}
	if _, err := ParseMultipliers(""); err == nil {
		t.Fatal("empty multiplier list accepted")
	}
}

// TestRunStageClassifiesOutcomes drives a stage against a scripted
// handler: successes, sheds, 504 deadline misses and 500s must land in
// their own buckets, and goodput must count only within-deadline 2xxs.
func TestRunStageClassifiesOutcomes(t *testing.T) {
	var i atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch i.Add(1) % 4 {
		case 1:
			w.WriteHeader(http.StatusOK)
			json.NewEncoder(w).Encode(server.JobResponse{})
		case 2:
			w.Header().Set("Retry-After", "1")
			w.WriteHeader(http.StatusTooManyRequests)
		case 3:
			w.WriteHeader(http.StatusGatewayTimeout)
		default:
			w.WriteHeader(http.StatusInternalServerError)
		}
	}))
	defer ts.Close()

	st, err := RunStage(context.Background(), Config{
		URL:      ts.URL,
		Rate:     400,
		Duration: 100 * time.Millisecond,
		Deadline: 5 * time.Second,
		Seed:     7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.Offered != 40 {
		t.Fatalf("offered = %d, want 40", st.Offered)
	}
	if st.Completed != 10 || st.Shed != 10 || st.Missed != 10 || st.Errors != 10 {
		t.Fatalf("classification off: %+v", st)
	}
	if st.LateServed != 0 {
		t.Fatalf("late_served = %d for instant responses, want 0", st.LateServed)
	}
	if st.GoodputPerSec <= 0 {
		t.Fatalf("goodput = %v, want > 0", st.GoodputPerSec)
	}
	if st.P99Ms <= 0 {
		t.Fatalf("p99 = %v over admitted jobs, want > 0", st.P99Ms)
	}
}

// TestRunStageOpenLoopDoesNotSelfThrottle: a server that answers each
// request only after 300ms must still receive every scheduled arrival
// within the stage window — a closed-loop generator would serialize
// behind it and take seconds.
func TestRunStageOpenLoopDoesNotSelfThrottle(t *testing.T) {
	var peak, cur atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		c := cur.Add(1)
		defer cur.Add(-1)
		for {
			p := peak.Load()
			if c <= p || peak.CompareAndSwap(p, c) {
				break
			}
		}
		time.Sleep(300 * time.Millisecond)
		w.WriteHeader(http.StatusOK)
	}))
	defer ts.Close()

	start := time.Now()
	st, err := RunStage(context.Background(), Config{
		URL:      ts.URL,
		Rate:     100,
		Duration: 200 * time.Millisecond, // 20 arrivals inside 200ms
		Seed:     7,
	})
	if err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	if st.Offered != 20 {
		t.Fatalf("offered = %d, want 20", st.Offered)
	}
	// Closed-loop worst case would be 20 x 300ms = 6s; open loop is
	// schedule (200ms) + one response time (300ms) + slack.
	if elapsed > 3*time.Second {
		t.Fatalf("stage took %v — the generator throttled behind the server", elapsed)
	}
	// The slow server must have seen real concurrency: arrivals kept
	// firing while earlier requests were still being held.
	if peak.Load() < 5 {
		t.Fatalf("peak concurrency %d, want >= 5 (open loop)", peak.Load())
	}
}

func TestGoodputRatio(t *testing.T) {
	r := Report{Stages: []Stage{
		{Multiplier: 1, GoodputPerSec: 10},
		{Multiplier: 5, GoodputPerSec: 9},
	}}
	if got := r.GoodputRatio(5); math.Abs(got-0.9) > 1e-9 {
		t.Fatalf("ratio = %v, want 0.9", got)
	}
	empty := Report{}
	if got := empty.GoodputRatio(5); got != 0 {
		t.Fatalf("ratio on empty report = %v, want 0", got)
	}
}
