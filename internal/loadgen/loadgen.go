// Package loadgen is the open-loop load generator behind cmd/ckeload:
// it fires simulation jobs at a ckeserve (or fleet) endpoint on a
// closed-form arrival schedule and reports latency and goodput per
// offered rate.
//
// Open-loop is the property that makes the reports honest. A closed-loop
// generator (fire, wait for the response, fire again) slows down exactly
// when the server does, so offered load collapses to served load and the
// overload regime is never actually exercised — the "coordinated
// omission" trap. Here every arrival time is computed up front from a
// deterministic PRNG (internal/xrand), each request fires in its own
// goroutine at its scheduled instant whether or not earlier requests
// have answered, and a slow server faces exactly the offered rate it
// claims to handle.
//
// Outcomes are classified against the job's deadline: completed within
// deadline (goodput), shed (429 — the server refused it cheaply),
// deadline-missed (504, or the rare success that arrived past the
// deadline anyway), and transport/server errors. The server must never
// serve a deadline-missed job as a success; LateServed counts exactly
// that and any nonzero value is a bug.
package loadgen

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	gcke "repro"
	"repro/internal/overload"
	"repro/internal/server"
	"repro/internal/xrand"
)

// Schedule returns n arrival offsets from stage start, sorted ascending,
// as a pure function of (kind, seed, rate). kind is "fixed" (offset i =
// i/rate) or "poisson" (exponential inter-arrivals with mean 1/rate via
// inverse-CDF over the deterministic PRNG). The schedule is closed-form:
// nothing about the server's behaviour can stretch it.
func Schedule(kind string, seed uint64, rate float64, n int) ([]time.Duration, error) {
	if rate <= 0 {
		return nil, fmt.Errorf("loadgen: rate must be positive, got %v", rate)
	}
	if n < 0 {
		return nil, fmt.Errorf("loadgen: negative arrival count %d", n)
	}
	out := make([]time.Duration, n)
	switch kind {
	case "fixed", "":
		for i := range out {
			out[i] = time.Duration(float64(i) / rate * float64(time.Second))
		}
	case "poisson":
		src := xrand.New(seed)
		at := 0.0 // seconds
		for i := range out {
			// Inverse CDF of Exp(rate); 1-U avoids log(0).
			at += -math.Log(1-src.Float64()) / rate
			out[i] = time.Duration(at * float64(time.Second))
		}
	default:
		return nil, fmt.Errorf("loadgen: unknown arrival process %q (want fixed or poisson)", kind)
	}
	return out, nil
}

// Config describes one load stage.
type Config struct {
	// URL is the target server base (e.g. http://127.0.0.1:8080).
	URL string
	// Rate is the offered arrival rate in jobs/sec.
	Rate float64
	// Duration is the stage length; the stage offers ceil(Rate*Duration)
	// jobs on the schedule and then waits for stragglers.
	Duration time.Duration
	// Arrivals is the arrival process: "poisson" or "fixed".
	Arrivals string
	// Seed drives the arrival schedule and fingerprint variation.
	Seed uint64
	// Deadline is the per-job deadline sent to the server (0 = none).
	Deadline time.Duration
	// Grace pads the client-side deadline classification (default
	// 250ms): a 200 is only counted deadline-missed if it arrived more
	// than Grace past the deadline, so transport skew between the
	// server's clock-side enforcement and the client's stopwatch cannot
	// misclassify boundary jobs.
	Grace time.Duration
	// Job shape: machine size, run lengths, kernel mix (defaults: 2 SMs,
	// 8000 cycles, 6000 profile cycles, bp+ks).
	SMs           int
	Cycles        int64
	ProfileCycles int64
	Kernels       []string
	// Unique is how many distinct job fingerprints the stage cycles
	// through (default 256) so content-addressed caching cannot turn the
	// load test into a cache benchmark.
	Unique int
	// Fresh adds fresh=1 to every request — the server bypasses cache
	// and journal entirely, making every admitted job a real simulation.
	Fresh bool
	// Client is the HTTP client (nil = a client with no overall timeout;
	// per-request contexts bound each call at Deadline+margin instead).
	Client *http.Client
}

func (c Config) withDefaults() Config {
	if c.Grace <= 0 {
		c.Grace = 250 * time.Millisecond
	}
	if c.SMs <= 0 {
		c.SMs = 2
	}
	if c.Cycles <= 0 {
		c.Cycles = 8000
	}
	if c.ProfileCycles < 0 {
		c.ProfileCycles = 0
	}
	if len(c.Kernels) == 0 {
		c.Kernels = []string{"bp", "ks"}
	}
	if c.Unique <= 0 {
		c.Unique = 256
	}
	if c.Client == nil {
		c.Client = &http.Client{}
	}
	return c
}

// request builds the i-th job body. Fingerprints cycle through Unique
// static-limit variants — service time is essentially unchanged, but
// each variant is a distinct content address.
func (c Config) request(i int) server.JobRequest {
	limit := 2 + i%c.Unique
	limits := make([]int, len(c.Kernels))
	for k := range limits {
		limits[k] = limit
	}
	req := server.JobRequest{
		SMs:           c.SMs,
		Cycles:        c.Cycles,
		ProfileCycles: c.ProfileCycles,
		Kernels:       c.Kernels,
		Scheme: gcke.Scheme{
			Partition:    gcke.PartitionEven,
			Limiting:     gcke.LimitStatic,
			StaticLimits: limits,
		},
	}
	if c.Deadline > 0 {
		req.Deadline = c.Deadline.String()
	}
	return req
}

// Stage is one offered-rate stage's report.
type Stage struct {
	// Multiplier is the stage's rate as a multiple of the sweep's base
	// rate (1 when the stage was run standalone).
	Multiplier float64 `json:"multiplier"`
	// OfferedRate is the arrival rate in jobs/sec; Offered is how many
	// jobs the schedule actually fired.
	OfferedRate float64 `json:"offered_rate_per_sec"`
	Offered     int     `json:"offered"`
	// Completed counts 2xx responses that arrived within deadline+grace
	// — the goodput numerator.
	Completed int `json:"completed_within_deadline"`
	// Shed counts 429s: load the server refused on arrival, cheaply.
	Shed int `json:"shed"`
	// Missed counts deadline losses: 504s (the server cancelled or
	// refused to serve past-deadline work) plus LateServed.
	Missed int `json:"deadline_missed"`
	// LateServed counts 2xx responses that arrived past deadline+grace.
	// The server's post-completion guard exists to make this zero; any
	// other value is a correctness bug, not an overload symptom.
	LateServed int `json:"late_served"`
	// Errors counts transport failures and non-429/504 error statuses.
	Errors int `json:"errors"`
	// WallSec is the stage's measured wall-clock (schedule + straggler
	// drain); GoodputPerSec is Completed divided by it.
	WallSec       float64 `json:"wall_sec"`
	GoodputPerSec float64 `json:"goodput_per_sec"`
	// Latency percentiles over ADMITTED jobs (everything except sheds
	// and transport errors): the population whose p99 must stay bounded
	// when load exceeds capacity — sheds answer in microseconds and
	// would flatter the numbers.
	P50Ms float64 `json:"latency_ms_p50"`
	P95Ms float64 `json:"latency_ms_p95"`
	P99Ms float64 `json:"latency_ms_p99"`
}

// sample is one request's raw outcome.
type sample struct {
	status  int
	latency time.Duration
	err     bool
}

// RunStage offers cfg.Rate jobs/sec for cfg.Duration and reports the
// outcome mix. ctx cancellation stops scheduling new arrivals and waits
// for in-flight requests.
func RunStage(ctx context.Context, cfg Config) (Stage, error) {
	cfg = cfg.withDefaults()
	if cfg.Duration <= 0 {
		return Stage{}, fmt.Errorf("loadgen: stage duration must be positive")
	}
	n := int(math.Ceil(cfg.Rate * cfg.Duration.Seconds()))
	if n < 1 {
		n = 1
	}
	sched, err := Schedule(cfg.Arrivals, cfg.Seed, cfg.Rate, n)
	if err != nil {
		return Stage{}, err
	}
	bodies := make([][]byte, n)
	for i := range bodies {
		b, err := json.Marshal(cfg.request(i))
		if err != nil {
			return Stage{}, fmt.Errorf("loadgen: marshaling job %d: %w", i, err)
		}
		bodies[i] = b
	}
	url := strings.TrimRight(cfg.URL, "/") + "/jobs"
	if cfg.Fresh {
		url += "?fresh=1"
	}
	// Per-request bound: the deadline (or 30s) plus slack — a hung
	// server must not wedge the generator, but an honest 504 at the
	// deadline must not be misread as a transport error.
	reqBound := 30 * time.Second
	if cfg.Deadline > 0 {
		reqBound = cfg.Deadline + 10*time.Second
	}

	samples := make([]sample, n)
	var wg sync.WaitGroup
	start := time.Now()
	for i := 0; i < n; i++ {
		// Open loop: sleep until the i-th scheduled instant. If the
		// goroutine scheduler has fallen behind, fire immediately — the
		// schedule never stretches to match the server.
		if d := time.Until(start.Add(sched[i])); d > 0 {
			select {
			case <-ctx.Done():
				samples = samples[:i]
				n = i
			case <-time.After(d):
			}
			if ctx.Err() != nil {
				break
			}
		}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rctx, cancel := context.WithTimeout(context.Background(), reqBound)
			defer cancel()
			t0 := time.Now()
			req, err := http.NewRequestWithContext(rctx, http.MethodPost, url, bytes.NewReader(bodies[i]))
			if err != nil {
				samples[i] = sample{err: true}
				return
			}
			req.Header.Set("Content-Type", "application/json")
			resp, err := cfg.Client.Do(req)
			if err != nil {
				samples[i] = sample{err: true, latency: time.Since(t0)}
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			samples[i] = sample{status: resp.StatusCode, latency: time.Since(t0)}
		}(i)
	}
	wg.Wait()
	wall := time.Since(start)

	st := Stage{
		OfferedRate: cfg.Rate,
		Offered:     n,
		WallSec:     wall.Seconds(),
	}
	var admitted []time.Duration
	for _, s := range samples[:n] {
		switch {
		case s.err:
			st.Errors++
		case s.status == http.StatusTooManyRequests:
			st.Shed++
		case s.status == http.StatusGatewayTimeout:
			st.Missed++
			admitted = append(admitted, s.latency)
		case s.status >= 200 && s.status < 300:
			if cfg.Deadline > 0 && s.latency > cfg.Deadline+cfg.Grace {
				st.LateServed++
				st.Missed++
			} else {
				st.Completed++
			}
			admitted = append(admitted, s.latency)
		default:
			st.Errors++
			admitted = append(admitted, s.latency)
		}
	}
	if wall > 0 {
		st.GoodputPerSec = float64(st.Completed) / wall.Seconds()
	}
	st.P50Ms = float64(overload.Percentile(admitted, 0.50)) / 1e6
	st.P95Ms = float64(overload.Percentile(admitted, 0.95)) / 1e6
	st.P99Ms = float64(overload.Percentile(admitted, 0.99)) / 1e6
	return st, nil
}

// Calibrate estimates the server's per-slot service rate by running k
// jobs back-to-back (closed loop, concurrency 1) and returning
// completions per second. It deliberately underestimates a multi-worker
// server's capacity — a conservative 1x base makes the sweep's high
// multipliers genuinely super-capacity.
func Calibrate(ctx context.Context, cfg Config, k int) (float64, error) {
	cfg = cfg.withDefaults()
	if k < 1 {
		k = 3
	}
	url := strings.TrimRight(cfg.URL, "/") + "/jobs"
	if cfg.Fresh {
		url += "?fresh=1"
	}
	start := time.Now()
	for i := 0; i < k; i++ {
		body, err := json.Marshal(cfg.request(i))
		if err != nil {
			return 0, err
		}
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
		if err != nil {
			return 0, err
		}
		req.Header.Set("Content-Type", "application/json")
		resp, err := cfg.Client.Do(req)
		if err != nil {
			return 0, fmt.Errorf("loadgen: calibration job %d: %w", i, err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return 0, fmt.Errorf("loadgen: calibration job %d: status %d", i, resp.StatusCode)
		}
	}
	elapsed := time.Since(start)
	if elapsed <= 0 {
		return 0, fmt.Errorf("loadgen: calibration measured no elapsed time")
	}
	return float64(k) / elapsed.Seconds(), nil
}

// Report is the rate-sweep output (results/BENCH_overload.json).
type Report struct {
	URL         string          `json:"url"`
	Arrivals    string          `json:"arrivals"`
	Seed        uint64          `json:"seed"`
	DeadlineMs  float64         `json:"deadline_ms,omitempty"`
	BaseRate    float64         `json:"base_rate_per_sec"`
	Calibrated  bool            `json:"calibrated"`
	Stages      []Stage         `json:"stages"`
	ServerStatz json.RawMessage `json:"server_statz,omitempty"`
}

// GoodputRatio returns goodput(multiplier)/goodput(1) — the graceful-
// degradation headline. Zero when either stage is missing or the 1x
// stage completed nothing.
func (r *Report) GoodputRatio(multiplier float64) float64 {
	var base, at float64
	for _, s := range r.Stages {
		if s.Multiplier == 1 {
			base = s.GoodputPerSec
		}
		if s.Multiplier == multiplier {
			at = s.GoodputPerSec
		}
	}
	if base <= 0 {
		return 0
	}
	return at / base
}

// Sweep runs one stage per multiplier (multiplier x base rate), pausing
// settle between stages so one stage's stragglers and queue residue
// cannot bleed into the next stage's numbers.
func Sweep(ctx context.Context, cfg Config, base float64, multipliers []float64, settle time.Duration, logf func(string, ...any)) (Report, error) {
	cfg = cfg.withDefaults()
	if logf == nil {
		logf = func(string, ...any) {}
	}
	rep := Report{
		URL:      cfg.URL,
		Arrivals: cfg.Arrivals,
		Seed:     cfg.Seed,
		BaseRate: base,
	}
	if cfg.Arrivals == "" {
		rep.Arrivals = "fixed"
	}
	if cfg.Deadline > 0 {
		rep.DeadlineMs = float64(cfg.Deadline) / 1e6
	}
	for i, m := range multipliers {
		if m <= 0 {
			return rep, fmt.Errorf("loadgen: multiplier %v must be positive", m)
		}
		sc := cfg
		sc.Rate = base * m
		// Decorrelate stages deterministically: same seed lineage, new
		// stream per stage.
		sc.Seed = cfg.Seed + uint64(i)*0x9E3779B97F4A7C15
		logf("loadgen: stage %d/%d: %.2f jobs/sec (%gx) for %s", i+1, len(multipliers), sc.Rate, m, sc.Duration)
		st, err := RunStage(ctx, sc)
		if err != nil {
			return rep, err
		}
		st.Multiplier = m
		rep.Stages = append(rep.Stages, st)
		logf("loadgen: stage %d/%d done: offered %d, completed %d, shed %d, missed %d, errors %d, goodput %.2f/s, p99 %.0fms",
			i+1, len(multipliers), st.Offered, st.Completed, st.Shed, st.Missed, st.Errors, st.GoodputPerSec, st.P99Ms)
		if settle > 0 && i < len(multipliers)-1 {
			select {
			case <-ctx.Done():
				return rep, ctx.Err()
			case <-time.After(settle):
			}
		}
	}
	return rep, nil
}

// FetchStatz snapshots the target's /statz for embedding in the report.
func FetchStatz(ctx context.Context, client *http.Client, baseURL string) (json.RawMessage, error) {
	if client == nil {
		client = &http.Client{}
	}
	rctx, cancel := context.WithTimeout(ctx, 5*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(rctx, http.MethodGet, strings.TrimRight(baseURL, "/")+"/statz", nil)
	if err != nil {
		return nil, err
	}
	resp, err := client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("loadgen: statz answered %d", resp.StatusCode)
	}
	return json.RawMessage(body), nil
}

// ParseMultipliers parses a comma-separated multiplier list ("1,5").
func ParseMultipliers(s string) ([]float64, error) {
	var out []float64
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		var m float64
		if _, err := fmt.Sscanf(part, "%g", &m); err != nil || m <= 0 {
			return nil, fmt.Errorf("loadgen: bad multiplier %q", part)
		}
		out = append(out, m)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("loadgen: no multipliers in %q", s)
	}
	sort.Float64s(out)
	return out, nil
}
