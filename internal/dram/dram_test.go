package dram

import (
	"testing"
	"testing/quick"

	"repro/internal/config"
	"repro/internal/mem"
)

func testCfg() config.DRAM {
	return config.DRAM{
		Banks: 4, RowBytes: 2048, RowHitLat: 10, RowMissLat: 40,
		DataCycles: 4, QueueDepth: 8, ReturnQueue: 8,
	}
}

func TestLoadGetsResponse(t *testing.T) {
	ch := New(testCfg(), 128)
	r := &mem.Request{LineAddr: 0, Kind: mem.Load}
	if !ch.Push(r, 0) {
		t.Fatal("push failed")
	}
	var got *mem.Request
	for c := int64(0); c < 200 && got == nil; c++ {
		ch.Tick(c)
		got = ch.PopResponse(c)
	}
	if got != r {
		t.Fatal("load never completed")
	}
	if ch.Served != 1 || ch.RowMiss != 1 {
		t.Fatalf("Served=%d RowMiss=%d", ch.Served, ch.RowMiss)
	}
}

func TestStoreIsSilent(t *testing.T) {
	ch := New(testCfg(), 128)
	ch.Push(&mem.Request{LineAddr: 0, Kind: mem.Store}, 0)
	for c := int64(0); c < 200; c++ {
		ch.Tick(c)
		if ch.PopResponse(c) != nil {
			t.Fatal("stores must not produce responses")
		}
	}
	if ch.Served != 1 {
		t.Fatal("store was not served")
	}
}

func TestRowBufferHits(t *testing.T) {
	ch := New(testCfg(), 128)
	// Two lines in the same row (16 lines per 2KB row with 128B lines).
	ch.Push(&mem.Request{LineAddr: 0, Kind: mem.Load}, 0)
	ch.Push(&mem.Request{LineAddr: 1, Kind: mem.Load}, 0)
	for c := int64(0); c < 300; c++ {
		ch.Tick(c)
		ch.PopResponse(c)
	}
	if ch.RowHits != 1 || ch.RowMiss != 1 {
		t.Fatalf("RowHits=%d RowMiss=%d, want 1/1", ch.RowHits, ch.RowMiss)
	}
}

func TestFRFCFSPrefersRowHit(t *testing.T) {
	ch := New(testCfg(), 128)
	// Open row 0 of a bank.
	first := &mem.Request{LineAddr: 0, Kind: mem.Load}
	ch.Push(first, 0)
	c := int64(0)
	for ; ch.PopResponse(c) == nil; c++ {
		ch.Tick(c)
	}
	// Queue an older row-conflict (same bank, different row) and a newer
	// row-hit. Lines per row = 16; same bank needs row stride... with
	// bank hashing we find two lines of the open row vs another row by
	// construction: line 1 shares row 0, any line in a different row of
	// the same bank conflicts. Use line 1 (row hit) pushed after a
	// conflicting request to the same bank.
	rowHit := &mem.Request{LineAddr: 1, Kind: mem.Load}
	// Find a conflicting line: same bank as line 0/1, different row.
	conflictLine := uint64(0)
	b0 := ch.bankOf(0)
	for l := uint64(16); ; l += 16 {
		if ch.bankOf(l) == b0 {
			conflictLine = l
			break
		}
	}
	conflict := &mem.Request{LineAddr: conflictLine, Kind: mem.Load}
	ch.Push(conflict, c)
	ch.Push(rowHit, c)
	var order []*mem.Request
	for ; len(order) < 2 && c < 2000; c++ {
		ch.Tick(c)
		if r := ch.PopResponse(c); r != nil {
			order = append(order, r)
		}
	}
	if len(order) != 2 {
		t.Fatal("requests did not complete")
	}
	if order[0] != rowHit {
		t.Fatal("FR-FCFS must serve the row hit before the older conflict")
	}
}

func TestQueueBackpressure(t *testing.T) {
	ch := New(testCfg(), 128)
	pushed := 0
	for i := 0; i < 20; i++ {
		if ch.Push(&mem.Request{LineAddr: uint64(i * 64), Kind: mem.Load}, 0) {
			pushed++
		}
	}
	if pushed != 8 {
		t.Fatalf("queue accepted %d, want QueueDepth=8", pushed)
	}
	if ch.CanPush() {
		t.Fatal("CanPush must be false at depth")
	}
}

func TestBankParallelismBeatsSerial(t *testing.T) {
	// Requests hitting different banks must finish sooner than the same
	// count serialized on one bank.
	cfg := testCfg()
	multi := New(cfg, 128)
	single := New(cfg, 128)
	b0 := multi.bankOf(0)
	// Four conflicting rows on one bank for "single".
	var singleLines []uint64
	for l := uint64(0); len(singleLines) < 4; l += 16 {
		if single.bankOf(l) == b0 && single.rowOf(l) != single.rowOf(0) || l == 0 {
			singleLines = append(singleLines, l)
		}
	}
	// Four lines on distinct banks for "multi".
	var multiLines []uint64
	seen := map[int]bool{}
	for l := uint64(0); len(multiLines) < 4; l += 16 {
		if b := multi.bankOf(l); !seen[b] {
			seen[b] = true
			multiLines = append(multiLines, l)
		}
	}
	run := func(ch *Channel, lines []uint64) int64 {
		for _, l := range lines {
			ch.Push(&mem.Request{LineAddr: l, Kind: mem.Load}, 0)
		}
		done := 0
		for c := int64(0); ; c++ {
			ch.Tick(c)
			if ch.PopResponse(c) != nil {
				done++
			}
			if done == len(lines) {
				return c
			}
			if c > 5000 {
				t.Fatal("requests never finished")
			}
		}
	}
	tm := run(multi, multiLines)
	ts := run(single, singleLines)
	if tm >= ts {
		t.Fatalf("bank-parallel finish (%d) should beat serialized (%d)", tm, ts)
	}
}

func TestBankHashSpreadsAlignedStreams(t *testing.T) {
	ch := New(testCfg(), 128)
	// Page-aligned region starts (the bug class this guards against):
	// regions at multiples of 2048 lines must not all map to one bank.
	seen := map[int]bool{}
	for seq := uint64(0); seq < 16; seq++ {
		seen[ch.bankOf(seq*2048)] = true
	}
	if len(seen) < 3 {
		t.Fatalf("aligned region starts camp on %d bank(s)", len(seen))
	}
}

// TestPropertyAllLoadsComplete: every accepted load eventually returns
// exactly one response.
func TestPropertyAllLoadsComplete(t *testing.T) {
	f := func(lines []uint16) bool {
		ch := New(testCfg(), 128)
		accepted := 0
		cycle := int64(0)
		responses := 0
		for _, l := range lines {
			if ch.Push(&mem.Request{LineAddr: uint64(l), Kind: mem.Load}, cycle) {
				accepted++
			}
			ch.Tick(cycle)
			if ch.PopResponse(cycle) != nil {
				responses++
			}
			cycle++
		}
		for i := 0; i < 3000 && responses < accepted; i++ {
			ch.Tick(cycle)
			if ch.PopResponse(cycle) != nil {
				responses++
			}
			cycle++
		}
		return responses == accepted
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
