// Package dram models one GDDR memory channel with an FR-FCFS scheduler
// (first-ready, first-come-first-served): among queued requests, a
// request hitting an open row buffer in a ready bank is served before
// older row-miss requests; ties break by age. Bank busy times and the
// shared data bus bound the channel bandwidth (Table 1: 48 B/cycle at
// the memory clock, which our unit-clock model folds into DataCycles
// per 128 B line).
package dram

import (
	"repro/internal/config"
	"repro/internal/mem"
	"repro/internal/ring"
)

type bank struct {
	openRow   uint64
	rowValid  bool
	busyUntil int64
}

type pending struct {
	req     *mem.Request
	arrival int64
	// bank and row are derived from req.LineAddr at Push time. The
	// FR-FCFS scan walks the whole queue every cycle; precomputing here
	// turns the per-entry hash/division into two integer loads from the
	// same cache line the scan is already touching.
	bank int32
	row  uint64
}

type response struct {
	req     *mem.Request
	readyAt int64
}

// Channel is one DRAM channel.
type Channel struct {
	cfg          config.DRAM
	linesPerRow  uint64
	banks        []bank
	queue        []pending
	busBusyUntil int64
	resp         ring.Ring[response]

	// Pool, when non-nil, receives served store requests (stores need no
	// response, so the channel is their final owner). Set by the GPU.
	Pool *mem.Pool

	// Statistics.
	Served  uint64
	RowHits uint64
	RowMiss uint64
}

// New builds a channel. lineBytes is the cache line size.
func New(cfg config.DRAM, lineBytes int) *Channel {
	lpr := uint64(cfg.RowBytes / lineBytes)
	if lpr == 0 {
		lpr = 1
	}
	return &Channel{
		cfg:         cfg,
		linesPerRow: lpr,
		banks:       make([]bank, cfg.Banks),
	}
}

// CanPush reports whether the request queue has space.
func (c *Channel) CanPush() bool { return len(c.queue) < c.cfg.QueueDepth }

// Push enqueues a request. It returns false when the queue is full.
func (c *Channel) Push(r *mem.Request, cycle int64) bool {
	if !c.CanPush() {
		return false
	}
	c.queue = append(c.queue, pending{
		req:     r,
		arrival: cycle,
		bank:    int32(c.bankOf(r.LineAddr)),
		row:     c.rowOf(r.LineAddr),
	})
	return true
}

func (c *Channel) bankOf(lineAddr uint64) int {
	// Hash rows onto banks so power-of-two strided streams (every
	// kernel's per-warp regions are page-aligned) spread across banks
	// instead of camping on one, as real memory controllers do with
	// bank-address swizzling. Accesses within one row still share a
	// bank, preserving row-buffer locality.
	row := lineAddr / c.linesPerRow
	h := row * 0x9E3779B97F4A7C15
	return int((h >> 32) % uint64(len(c.banks)))
}

func (c *Channel) rowOf(lineAddr uint64) uint64 {
	return lineAddr / c.linesPerRow
}

// Tick issues at most one request per cycle using FR-FCFS.
func (c *Channel) Tick(cycle int64) {
	if len(c.queue) == 0 {
		return
	}
	if c.resp.Len() >= c.cfg.ReturnQueue {
		return // response queue backpressure
	}
	pick := -1
	// First ready: oldest row-buffer hit whose bank is free.
	for i := range c.queue {
		bk := &c.banks[c.queue[i].bank]
		if bk.busyUntil <= cycle && bk.rowValid && bk.openRow == c.queue[i].row {
			pick = i
			break
		}
	}
	if pick < 0 {
		// Then FCFS: oldest request whose bank is free.
		for i := range c.queue {
			if c.banks[c.queue[i].bank].busyUntil <= cycle {
				pick = i
				break
			}
		}
	}
	if pick < 0 {
		return
	}
	p := c.queue[pick]
	copy(c.queue[pick:], c.queue[pick+1:])
	c.queue = c.queue[:len(c.queue)-1]

	row := p.row
	bk := &c.banks[p.bank]
	var access int64
	if bk.rowValid && bk.openRow == row {
		access = int64(c.cfg.RowHitLat)
		c.RowHits++
	} else {
		access = int64(c.cfg.RowMissLat)
		c.RowMiss++
		bk.openRow = row
		bk.rowValid = true
	}
	dataStart := cycle + access
	if c.busBusyUntil > dataStart {
		dataStart = c.busBusyUntil
	}
	done := dataStart + int64(c.cfg.DataCycles)
	c.busBusyUntil = done
	bk.busyUntil = done
	c.Served++
	if p.req.Kind == mem.Load {
		c.resp.Push(response{req: p.req, readyAt: done})
	} else {
		// Stores are fire-and-forget: no response travels back up, so
		// the request retires here.
		c.Pool.Release(p.req)
	}
}

// PopResponse returns the next completed load, or nil. Responses become
// visible in completion order.
func (c *Channel) PopResponse(cycle int64) *mem.Request {
	// Completion order follows bus order, so the slice is sorted by
	// readyAt as appended.
	if c.resp.Empty() || c.resp.Peek().readyAt > cycle {
		return nil
	}
	return c.resp.Pop().req
}

// QueueLen returns the number of waiting requests.
func (c *Channel) QueueLen() int { return len(c.queue) }
