// Snapshot/restore for DRAM channels: banks, the FR-FCFS request queue,
// the response ring and bus/statistics state are deep-copied through the
// machine-wide mem.Cloner so no pooled request is shared with the live
// engine (copy-on-snapshot discipline).

package dram

import (
	"fmt"
	"unsafe"

	"repro/internal/mem"
)

// Snapshot is the captured state of one Channel. Immutable once taken;
// Restore deep-copies out of it.
type Snapshot struct {
	banks        []bank
	queue        []pending
	busBusyUntil int64
	resp         []response
	served       uint64
	rowHits      uint64
	rowMiss      uint64
}

// Snapshot captures the channel's full state through cl.
func (c *Channel) Snapshot(cl *mem.Cloner) *Snapshot {
	sn := &Snapshot{
		banks:        append([]bank(nil), c.banks...),
		busBusyUntil: c.busBusyUntil,
		served:       c.Served,
		rowHits:      c.RowHits,
		rowMiss:      c.RowMiss,
	}
	// bank/row are derived from the line address; the snapshot stores only
	// req+arrival and Restore recomputes them, so the encoded format is
	// independent of the bank-swizzle function.
	for _, p := range c.queue {
		sn.queue = append(sn.queue, pending{req: cl.Request(p.req), arrival: p.arrival})
	}
	sn.resp = c.resp.Snapshot(func(r response) response {
		return response{req: cl.Request(r.req), readyAt: r.readyAt}
	})
	return sn
}

// Restore overwrites the channel's state from sn through cl. The channel
// must have the bank count the snapshot was taken from.
func (c *Channel) Restore(sn *Snapshot, cl *mem.Cloner) error {
	if len(sn.banks) != len(c.banks) {
		return fmt.Errorf("dram: restore: snapshot has %d banks, channel has %d",
			len(sn.banks), len(c.banks))
	}
	copy(c.banks, sn.banks)
	c.queue = c.queue[:0]
	for _, p := range sn.queue {
		r := cl.Request(p.req)
		c.queue = append(c.queue, pending{
			req:     r,
			arrival: p.arrival,
			bank:    int32(c.bankOf(r.LineAddr)),
			row:     c.rowOf(r.LineAddr),
		})
	}
	c.busBusyUntil = sn.busBusyUntil
	c.resp.Restore(sn.resp, func(r response) response {
		return response{req: cl.Request(r.req), readyAt: r.readyAt}
	})
	c.Served = sn.served
	c.RowHits = sn.rowHits
	c.RowMiss = sn.rowMiss
	return nil
}

// PendingRequests returns how many requests the channel currently holds
// (snapshot-footprint accounting).
func (c *Channel) PendingRequests() int { return len(c.queue) + c.resp.Len() }

// Bytes estimates the snapshot's memory footprint (cloned requests are
// counted once at the GPU level).
func (sn *Snapshot) Bytes() int64 {
	return int64(len(sn.banks))*int64(unsafe.Sizeof(bank{})) +
		int64(len(sn.queue))*int64(unsafe.Sizeof(pending{})) +
		int64(len(sn.resp))*int64(unsafe.Sizeof(response{}))
}
