// Package ckpt persists mid-job engine checkpoints: a reflection-based
// deep codec for the engine's snapshot object graph plus an atomic
// on-disk store with sha256 integrity and fall-back-on-corruption
// reads.
//
// The codec is deliberately schema-free: the concrete Go type handed to
// Marshal and Unmarshal IS the schema, so both sides of a round trip
// must run the same build. That is exactly the checkpoint contract —
// a checkpoint is only ever consumed by the binary (version) that wrote
// it, and the store's digest rejects everything else.
package ckpt

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math"
	"reflect"
	"unsafe"
)

const streamVersion = 1

// typedPtr keys the encoder's pointer-identity table. The type is part
// of the key so two distinct types at one address (a struct and its
// first field) never alias.
type typedPtr struct {
	t reflect.Type
	p uintptr
}

type encoder struct {
	buf bytes.Buffer
	ids map[typedPtr]uint64
}

// Marshal deep-encodes the value v points to. v must be a non-nil
// pointer. Unexported fields are included (the snapshot graph is built
// from them), pointer aliasing and cycles are preserved through an
// identity table, and kinds the engine graph never contains — maps,
// chans, funcs, interfaces — are rejected rather than silently skipped.
func Marshal(v any) ([]byte, error) {
	rv := reflect.ValueOf(v)
	if rv.Kind() != reflect.Pointer || rv.IsNil() {
		return nil, fmt.Errorf("ckpt: Marshal needs a non-nil pointer, got %T", v)
	}
	e := &encoder{ids: make(map[typedPtr]uint64)}
	e.buf.WriteByte(streamVersion)
	// Register the root so an interior pointer back to it aliases
	// instead of re-encoding the graph.
	e.ids[typedPtr{rv.Type(), rv.Pointer()}] = 0
	if err := e.value(rv.Elem()); err != nil {
		return nil, err
	}
	return e.buf.Bytes(), nil
}

// Unmarshal decodes data (produced by Marshal on the same Go type) into
// the value v points to. Arbitrary or corrupt input never panics: any
// structural mismatch surfaces as an error.
func Unmarshal(data []byte, v any) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("ckpt: corrupt stream: %v", r)
		}
	}()
	rv := reflect.ValueOf(v)
	if rv.Kind() != reflect.Pointer || rv.IsNil() {
		return fmt.Errorf("ckpt: Unmarshal needs a non-nil pointer, got %T", v)
	}
	if len(data) == 0 {
		return fmt.Errorf("ckpt: empty stream")
	}
	if data[0] != streamVersion {
		return fmt.Errorf("ckpt: unknown stream version %d", data[0])
	}
	d := &decoder{data: data, off: 1, ptrs: []reflect.Value{rv}}
	if err := d.value(rv.Elem()); err != nil {
		return err
	}
	if d.off != len(d.data) {
		return fmt.Errorf("ckpt: %d trailing bytes after decode", len(d.data)-d.off)
	}
	return nil
}

// access lifts the read-only flag reflect puts on unexported fields.
// Everything the codec traverses hangs off an addressable root (Marshal
// and Unmarshal both take pointers), so NewAt is always available.
func access(v reflect.Value) reflect.Value {
	if !v.CanInterface() && v.CanAddr() {
		return reflect.NewAt(v.Type(), unsafe.Pointer(v.UnsafeAddr())).Elem()
	}
	return v
}

func (e *encoder) u64(x uint64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], x)
	e.buf.Write(b[:])
}

func (e *encoder) uvarint(x uint64) {
	var b [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(b[:], x)
	e.buf.Write(b[:n])
}

func (e *encoder) value(v reflect.Value) error {
	v = access(v)
	switch v.Kind() {
	case reflect.Bool:
		if v.Bool() {
			e.buf.WriteByte(1)
		} else {
			e.buf.WriteByte(0)
		}
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		e.u64(uint64(v.Int()))
	case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64:
		e.u64(v.Uint())
	case reflect.Float32, reflect.Float64:
		e.u64(math.Float64bits(v.Float()))
	case reflect.String:
		s := v.String()
		e.uvarint(uint64(len(s)))
		e.buf.WriteString(s)
	case reflect.Slice:
		if v.IsNil() {
			e.buf.WriteByte(0)
			return nil
		}
		e.buf.WriteByte(1)
		n := v.Len()
		e.uvarint(uint64(n))
		if v.Type().Elem().Kind() == reflect.Uint8 {
			e.buf.Write(v.Bytes())
			return nil
		}
		for i := 0; i < n; i++ {
			if err := e.value(v.Index(i)); err != nil {
				return err
			}
		}
	case reflect.Array:
		for i := 0; i < v.Len(); i++ {
			if err := e.value(v.Index(i)); err != nil {
				return err
			}
		}
	case reflect.Struct:
		for i := 0; i < v.NumField(); i++ {
			if err := e.value(v.Field(i)); err != nil {
				return err
			}
		}
	case reflect.Pointer:
		if v.IsNil() {
			e.buf.WriteByte(0)
			return nil
		}
		key := typedPtr{v.Type(), v.Pointer()}
		if id, ok := e.ids[key]; ok {
			e.buf.WriteByte(2)
			e.uvarint(id)
			return nil
		}
		e.ids[key] = uint64(len(e.ids))
		e.buf.WriteByte(1)
		return e.value(v.Elem())
	default:
		return fmt.Errorf("ckpt: cannot encode kind %s (%s)", v.Kind(), v.Type())
	}
	return nil
}

type decoder struct {
	data []byte
	off  int
	// ptrs[id] is the id-th pointer materialized, mirroring the
	// encoder's identity table (id 0 is the root).
	ptrs []reflect.Value
}

// take panics (recovered in Unmarshal) when the stream runs short.
func (d *decoder) take(n int) []byte {
	b := d.data[d.off : d.off+n]
	d.off += n
	return b
}

func (d *decoder) byte() byte { return d.take(1)[0] }

func (d *decoder) u64() uint64 { return binary.LittleEndian.Uint64(d.take(8)) }

func (d *decoder) uvarint() (uint64, error) {
	x, n := binary.Uvarint(d.data[d.off:])
	if n <= 0 {
		return 0, fmt.Errorf("ckpt: truncated varint at offset %d", d.off)
	}
	d.off += n
	return x, nil
}

func (d *decoder) value(v reflect.Value) error {
	v = access(v)
	switch v.Kind() {
	case reflect.Bool:
		v.SetBool(d.byte() != 0)
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		v.SetInt(int64(d.u64()))
	case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64:
		v.SetUint(d.u64())
	case reflect.Float32, reflect.Float64:
		v.SetFloat(math.Float64frombits(d.u64()))
	case reflect.String:
		n, err := d.uvarint()
		if err != nil {
			return err
		}
		if n > uint64(len(d.data)-d.off) {
			return fmt.Errorf("ckpt: string length %d exceeds remaining stream", n)
		}
		v.SetString(string(d.take(int(n))))
	case reflect.Slice:
		if d.byte() == 0 {
			v.Set(reflect.Zero(v.Type()))
			return nil
		}
		n, err := d.uvarint()
		if err != nil {
			return err
		}
		// Every element costs at least one stream byte for the kinds we
		// accept, so a length beyond the remaining bytes is corruption —
		// reject it before allocating.
		if n > uint64(len(d.data)-d.off) {
			return fmt.Errorf("ckpt: slice length %d exceeds remaining stream", n)
		}
		if v.Type().Elem().Kind() == reflect.Uint8 {
			v.SetBytes(append([]byte(nil), d.take(int(n))...))
			return nil
		}
		s := reflect.MakeSlice(v.Type(), int(n), int(n))
		for i := 0; i < int(n); i++ {
			if err := d.value(s.Index(i)); err != nil {
				return err
			}
		}
		v.Set(s)
	case reflect.Array:
		for i := 0; i < v.Len(); i++ {
			if err := d.value(v.Index(i)); err != nil {
				return err
			}
		}
	case reflect.Struct:
		for i := 0; i < v.NumField(); i++ {
			if err := d.value(v.Field(i)); err != nil {
				return err
			}
		}
	case reflect.Pointer:
		switch tag := d.byte(); tag {
		case 0:
			v.Set(reflect.Zero(v.Type()))
		case 1:
			p := reflect.New(v.Type().Elem())
			v.Set(p)
			// Register before filling so cycles resolve to p.
			d.ptrs = append(d.ptrs, p)
			return d.value(p.Elem())
		case 2:
			id, err := d.uvarint()
			if err != nil {
				return err
			}
			if id >= uint64(len(d.ptrs)) {
				return fmt.Errorf("ckpt: pointer ref %d out of range (%d known)", id, len(d.ptrs))
			}
			rp := d.ptrs[id]
			if rp.Type() != v.Type() {
				return fmt.Errorf("ckpt: pointer ref %d is %s, want %s", id, rp.Type(), v.Type())
			}
			v.Set(rp)
		default:
			return fmt.Errorf("ckpt: bad pointer tag %d", tag)
		}
	default:
		return fmt.Errorf("ckpt: cannot decode kind %s (%s)", v.Kind(), v.Type())
	}
	return nil
}
