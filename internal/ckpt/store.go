package ckpt

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// magic heads every checkpoint file; bumping it invalidates all
// on-disk checkpoints (they degrade to a from-zero re-simulate).
const magic = "ckecp1\n"

// keepPerKey is how many checkpoints survive per job: the newest plus
// one fallback, so a checkpoint torn by a mid-write crash (or corrupted
// by a flaky disk) degrades to the previous one, not to cycle 0.
const keepPerKey = 2

// Store persists engine checkpoints, one file per (job key, cycle),
// named <key>@<cycle>.ckpt. Writes are atomic (temp + fsync + rename)
// because hedged dispatch can put two worker processes on the same job
// concurrently; reads verify a sha256 digest and fall back to the next
// older checkpoint on mismatch. Safe for concurrent use.
type Store struct {
	// FaultHook, when non-nil, is consulted before each write with
	// (op, key); returning an error makes the store silently corrupt the
	// payload it writes — modelling a disk that lies — so the read path's
	// digest verification is what must catch it.
	FaultHook func(op, key string) error

	dir string

	mu      sync.Mutex
	saves   int64
	corrupt int64
	drops   int64
}

// StoreStats counts store activity for /statz-style gauges.
type StoreStats struct {
	Saves   int64 `json:"saves"`
	Corrupt int64 `json:"corrupt"`
	Drops   int64 `json:"drops"`
}

// OpenStore opens (creating if needed) a checkpoint directory.
func OpenStore(dir string) (*Store, error) {
	if dir == "" {
		return nil, fmt.Errorf("ckpt: empty store directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("ckpt: %w", err)
	}
	return &Store{dir: dir}, nil
}

// Dir returns the store's directory.
func (s *Store) Dir() string { return s.dir }

// Stats returns a snapshot of the store's counters.
func (s *Store) Stats() StoreStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return StoreStats{Saves: s.saves, Corrupt: s.corrupt, Drops: s.drops}
}

// checkKey rejects keys that cannot be file names. Job keys are
// "j1-<hex>", so this only ever fires on programmer error.
func checkKey(key string) error {
	if key == "" || strings.ContainsAny(key, "/\\@") || key == "." || key == ".." {
		return fmt.Errorf("ckpt: unusable key %q", key)
	}
	return nil
}

func (s *Store) path(key string, cycle int64) string {
	return filepath.Join(s.dir, key+"@"+strconv.FormatInt(cycle, 10)+".ckpt")
}

// Save atomically persists state as key's checkpoint at cycle and
// prunes that key's older checkpoints down to keepPerKey.
func (s *Store) Save(key string, cycle int64, state []byte) error {
	if err := checkKey(key); err != nil {
		return err
	}
	if cycle <= 0 {
		return fmt.Errorf("ckpt: save %s at non-positive cycle %d", key, cycle)
	}
	sum := sha256.Sum256(state)
	payload := state
	if s.FaultHook != nil {
		if err := s.FaultHook("write", key); err != nil {
			// A lying disk: the digest above covers the pristine bytes,
			// the file gets a flipped one. Latest must detect this and
			// fall back.
			payload = append([]byte(nil), state...)
			if len(payload) > 0 {
				payload[len(payload)/2] ^= 0x40
			}
		}
	}

	f, err := os.CreateTemp(s.dir, "tmp-*.ckpt")
	if err != nil {
		return fmt.Errorf("ckpt: save %s: %w", key, err)
	}
	tmp := f.Name()
	var hdr [8]byte
	binary.BigEndian.PutUint64(hdr[:], uint64(len(payload)))
	_, err = f.WriteString(magic)
	if err == nil {
		_, err = f.Write(hdr[:])
	}
	if err == nil {
		_, err = f.Write(sum[:])
	}
	if err == nil {
		_, err = f.Write(payload)
	}
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		err = os.Rename(tmp, s.path(key, cycle))
	}
	if err != nil {
		os.Remove(tmp)
		return fmt.Errorf("ckpt: save %s@%d: %w", key, cycle, err)
	}
	// Best-effort directory sync so the rename itself survives a crash.
	if d, derr := os.Open(s.dir); derr == nil {
		d.Sync()
		d.Close()
	}

	s.mu.Lock()
	s.saves++
	s.mu.Unlock()
	s.prune(key)
	return nil
}

// cycles lists key's on-disk checkpoint cycles, newest first.
func (s *Store) cycles(key string) []int64 {
	ents, err := os.ReadDir(s.dir)
	if err != nil {
		return nil
	}
	prefix := key + "@"
	var out []int64
	for _, e := range ents {
		name := e.Name()
		if !strings.HasPrefix(name, prefix) || !strings.HasSuffix(name, ".ckpt") {
			continue
		}
		c, err := strconv.ParseInt(strings.TrimSuffix(name[len(prefix):], ".ckpt"), 10, 64)
		if err != nil {
			continue
		}
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] > out[j] })
	return out
}

func (s *Store) prune(key string) {
	cs := s.cycles(key)
	for _, c := range cs[min(len(cs), keepPerKey):] {
		os.Remove(s.path(key, c))
	}
}

// Latest returns key's newest checkpoint that passes digest
// verification, or ok=false when none does. Corrupt or torn files are
// skipped (counted in Stats().Corrupt), so a bad newest checkpoint
// degrades to the previous one and only then to a from-zero run.
func (s *Store) Latest(key string) (cycle int64, state []byte, ok bool) {
	if checkKey(key) != nil {
		return 0, nil, false
	}
	for _, c := range s.cycles(key) {
		b, err := s.read(key, c)
		if err != nil {
			s.mu.Lock()
			s.corrupt++
			s.mu.Unlock()
			continue
		}
		return c, b, true
	}
	return 0, nil, false
}

func (s *Store) read(key string, cycle int64) ([]byte, error) {
	b, err := os.ReadFile(s.path(key, cycle))
	if err != nil {
		return nil, err
	}
	if len(b) < len(magic)+8+sha256.Size || string(b[:len(magic)]) != magic {
		return nil, fmt.Errorf("ckpt: %s@%d: bad header", key, cycle)
	}
	b = b[len(magic):]
	n := binary.BigEndian.Uint64(b[:8])
	b = b[8:]
	var want [sha256.Size]byte
	copy(want[:], b[:sha256.Size])
	payload := b[sha256.Size:]
	if uint64(len(payload)) != n {
		return nil, fmt.Errorf("ckpt: %s@%d: truncated payload (%d of %d bytes)", key, cycle, len(payload), n)
	}
	if sha256.Sum256(payload) != want {
		return nil, fmt.Errorf("ckpt: %s@%d: digest mismatch", key, cycle)
	}
	return payload, nil
}

// Drop removes every checkpoint for key (called once the job's final
// result is durable — the checkpoints are then dead weight).
func (s *Store) Drop(key string) {
	if checkKey(key) != nil {
		return
	}
	cs := s.cycles(key)
	for _, c := range cs {
		os.Remove(s.path(key, c))
	}
	if len(cs) > 0 {
		s.mu.Lock()
		s.drops++
		s.mu.Unlock()
	}
}
