package ckpt

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// graph exercises every codec feature at once: unexported fields,
// nested pointers, shared pointers (aliasing), a cycle, slices of
// pointers, byte slices, arrays, floats and bools.
type node struct {
	id   int
	next *node
}

type graph struct {
	Name    string
	count   uint32
	ratio   float64
	flags   [3]bool
	raw     []byte
	nilRaw  []byte
	ints    []int64
	shared1 *node
	shared2 *node // aliases shared1
	ring    *node // points into a 2-cycle
	nested  [][]uint32
	empty   []int // non-nil empty: must round-trip as non-nil
}

func buildGraph() *graph {
	sh := &node{id: 7}
	a := &node{id: 1}
	b := &node{id: 2, next: a}
	a.next = b // cycle
	return &graph{
		Name:    "g",
		count:   42,
		ratio:   0.375,
		flags:   [3]bool{true, false, true},
		raw:     []byte{1, 2, 3},
		ints:    []int64{-1, 1 << 40},
		shared1: sh,
		shared2: sh,
		ring:    a,
		nested:  [][]uint32{{1}, nil, {2, 3}},
		empty:   []int{},
	}
}

func TestCodecRoundTrip(t *testing.T) {
	in := buildGraph()
	blob, err := Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	var out graph
	if err := Unmarshal(blob, &out); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, &out) {
		t.Fatalf("round trip diverged:\nin:  %+v\nout: %+v", in, &out)
	}
	// Aliasing must be identity, not just equality.
	if out.shared1 != out.shared2 {
		t.Fatal("shared pointer decoded as two copies")
	}
	if out.ring.next.next != out.ring {
		t.Fatal("pointer cycle not preserved")
	}
	if out.shared1 == in.shared1 {
		t.Fatal("decoded graph shares storage with the source")
	}
	if out.empty == nil || len(out.empty) != 0 {
		t.Fatal("non-nil empty slice decoded as nil")
	}
	if out.nilRaw != nil {
		t.Fatal("nil slice decoded as non-nil")
	}
	// Determinism: same value, same bytes.
	blob2, err := Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(blob, blob2) {
		t.Fatal("encoding is not deterministic")
	}
}

// TestCodecDecodeIntoExisting mirrors how RestoreCheckpoint uses the
// codec: decoding over an already-populated instance must fully
// overwrite it, and decoding the same blob twice must be idempotent
// (shared policy instances are decoded once per SM).
func TestCodecDecodeIntoExisting(t *testing.T) {
	blob, err := Marshal(buildGraph())
	if err != nil {
		t.Fatal(err)
	}
	dst := &graph{Name: "stale", count: 999, ints: []int64{5, 5, 5, 5}}
	for i := 0; i < 2; i++ {
		if err := Unmarshal(blob, dst); err != nil {
			t.Fatalf("decode %d: %v", i, err)
		}
	}
	if !reflect.DeepEqual(buildGraph(), dst) {
		t.Fatalf("decode over existing instance diverged: %+v", dst)
	}
}

func TestCodecRejectsUnsupportedKinds(t *testing.T) {
	type bad1 struct{ m map[string]int }
	type bad2 struct{ f func() }
	type bad3 struct{ i any }
	if _, err := Marshal(&bad1{m: map[string]int{}}); err == nil {
		t.Fatal("map field encoded")
	}
	if _, err := Marshal(&bad2{}); err == nil {
		t.Fatal("func field encoded")
	}
	if _, err := Marshal(&bad3{}); err == nil {
		t.Fatal("interface field encoded")
	}
	if _, err := Marshal(graph{}); err == nil {
		t.Fatal("non-pointer accepted")
	}
	if err := Unmarshal(nil, &graph{}); err == nil {
		t.Fatal("empty stream accepted")
	}
}

// TestCodecGarbageNeverPanics: the decoder must turn arbitrary
// corruption into errors, not panics — the store's digest normally
// screens input, but the codec is the last line of defense.
func TestCodecGarbageNeverPanics(t *testing.T) {
	blob, err := Marshal(buildGraph())
	if err != nil {
		t.Fatal(err)
	}
	var out graph
	// Truncations at every length.
	for n := 0; n < len(blob); n++ {
		_ = Unmarshal(blob[:n], &out)
	}
	// Single-byte corruptions at every offset.
	for i := range blob {
		mut := append([]byte(nil), blob...)
		mut[i] ^= 0xff
		_ = Unmarshal(mut, &out)
	}
	// A huge declared slice length must not allocate.
	_ = Unmarshal([]byte{streamVersion, 1, 0xff, 0xff, 0xff, 0xff, 0x0f}, &out)
}

func TestStoreSaveLatestDrop(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	key := "j1-abc"
	if _, _, ok := s.Latest(key); ok {
		t.Fatal("Latest on empty store reported a checkpoint")
	}
	for _, c := range []int64{100, 200, 300} {
		if err := s.Save(key, c, []byte{byte(c / 100)}); err != nil {
			t.Fatal(err)
		}
	}
	cyc, state, ok := s.Latest(key)
	if !ok || cyc != 300 || !bytes.Equal(state, []byte{3}) {
		t.Fatalf("Latest = (%d, %v, %v), want (300, [3], true)", cyc, state, ok)
	}
	// Pruned to keepPerKey files.
	ents, _ := os.ReadDir(dir)
	if len(ents) != keepPerKey {
		t.Fatalf("store holds %d files after prune, want %d", len(ents), keepPerKey)
	}
	// A second key is independent.
	if err := s.Save("j1-other", 50, []byte("x")); err != nil {
		t.Fatal(err)
	}
	s.Drop(key)
	if _, _, ok := s.Latest(key); ok {
		t.Fatal("Latest after Drop reported a checkpoint")
	}
	if _, _, ok := s.Latest("j1-other"); !ok {
		t.Fatal("Drop removed another key's checkpoint")
	}
	st := s.Stats()
	if st.Saves != 4 || st.Drops != 1 || st.Corrupt != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestStoreCorruptFallsBack: a corrupted newest checkpoint degrades to
// the previous one; with both corrupted, to nothing.
func TestStoreCorruptFallsBack(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	key := "j1-fall"
	if err := s.Save(key, 100, []byte("older")); err != nil {
		t.Fatal(err)
	}
	if err := s.Save(key, 200, []byte("newer")); err != nil {
		t.Fatal(err)
	}
	// Flip one payload byte of the newest file.
	p := filepath.Join(dir, key+"@200.ckpt")
	b, err := os.ReadFile(p)
	if err != nil {
		t.Fatal(err)
	}
	b[len(b)-1] ^= 1
	if err := os.WriteFile(p, b, 0o644); err != nil {
		t.Fatal(err)
	}
	cyc, state, ok := s.Latest(key)
	if !ok || cyc != 100 || string(state) != "older" {
		t.Fatalf("Latest after corruption = (%d, %q, %v), want (100, older, true)", cyc, state, ok)
	}
	if s.Stats().Corrupt != 1 {
		t.Fatalf("corrupt counter = %d, want 1", s.Stats().Corrupt)
	}
	// Truncate the older file too: nothing valid remains.
	p = filepath.Join(dir, key+"@100.ckpt")
	if err := os.WriteFile(p, []byte(magic), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, ok := s.Latest(key); ok {
		t.Fatal("Latest returned a checkpoint with every file corrupt")
	}
}

// TestStoreFaultHookCorruptsSilently: the chaos seam writes a lying
// checkpoint — Save succeeds, Latest must reject it by digest.
func TestStoreFaultHookCorruptsSilently(t *testing.T) {
	s, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	armed := true
	s.FaultHook = func(op, key string) error {
		if armed && op == "write" {
			return os.ErrInvalid
		}
		return nil
	}
	if err := s.Save("j1-liar", 100, []byte("payload")); err != nil {
		t.Fatalf("faulted save must still succeed silently: %v", err)
	}
	if _, _, ok := s.Latest("j1-liar"); ok {
		t.Fatal("digest verification accepted a corrupted checkpoint")
	}
	if s.Stats().Corrupt == 0 {
		t.Fatal("corrupt counter not bumped")
	}
	armed = false
	if err := s.Save("j1-liar", 200, []byte("good")); err != nil {
		t.Fatal(err)
	}
	if cyc, state, ok := s.Latest("j1-liar"); !ok || cyc != 200 || string(state) != "good" {
		t.Fatalf("clean save after faulted one: (%d, %q, %v)", cyc, state, ok)
	}
}

func TestStoreRejectsBadKeys(t *testing.T) {
	s, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"", "a/b", `a\b`, "..", "a@5"} {
		if err := s.Save(key, 1, []byte("x")); err == nil {
			t.Fatalf("Save accepted key %q", key)
		}
	}
	if err := s.Save("ok", 0, []byte("x")); err == nil {
		t.Fatal("Save accepted cycle 0")
	}
}
