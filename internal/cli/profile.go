package cli

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Profiling bundles the performance-diagnosis options shared by every
// driver: the three pprof outputs and the cycle engine's intra-run
// worker count.
type Profiling struct {
	// CPUProfile / MemProfile / BlockProfile are output paths for the
	// corresponding pprof profiles (empty = disabled).
	CPUProfile   string
	MemProfile   string
	BlockProfile string
	// Workers is the per-run SM tick fan-out passed to the engine
	// (gpu.Options.Workers): 0 = GOMAXPROCS, 1 = serial. Results are
	// byte-identical for any value.
	Workers int
}

// AddProfileFlags registers -cpuprofile, -memprofile, -blockprofile and
// -workers on fs.
func AddProfileFlags(fs *flag.FlagSet) *Profiling {
	p := &Profiling{}
	fs.StringVar(&p.CPUProfile, "cpuprofile", "",
		"write a CPU profile to this file")
	fs.StringVar(&p.MemProfile, "memprofile", "",
		"write an allocation profile to this file at exit")
	fs.StringVar(&p.BlockProfile, "blockprofile", "",
		"write a goroutine blocking profile to this file at exit")
	fs.IntVar(&p.Workers, "workers", 0,
		"SM-tick goroutines per simulation cycle (0 = GOMAXPROCS, 1 = serial; results are identical)")
	return p
}

// Start begins the requested profiles and returns a stop function that
// flushes them; call it (usually via defer) before exiting. The stop
// function is never nil.
func (p *Profiling) Start() (func(), error) {
	var cpuFile *os.File
	if p.CPUProfile != "" {
		f, err := os.Create(p.CPUProfile)
		if err != nil {
			return func() {}, fmt.Errorf("cli: -cpuprofile: %w", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return func() {}, fmt.Errorf("cli: -cpuprofile: %w", err)
		}
		cpuFile = f
	}
	if p.BlockProfile != "" {
		runtime.SetBlockProfileRate(1)
	}
	return func() {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			cpuFile.Close()
		}
		if p.MemProfile != "" {
			if f, err := os.Create(p.MemProfile); err == nil {
				runtime.GC() // materialize the final live-heap numbers
				pprof.Lookup("allocs").WriteTo(f, 0)
				f.Close()
			} else {
				fmt.Fprintf(os.Stderr, "cli: -memprofile: %v\n", err)
			}
		}
		if p.BlockProfile != "" {
			if f, err := os.Create(p.BlockProfile); err == nil {
				pprof.Lookup("block").WriteTo(f, 0)
				f.Close()
			} else {
				fmt.Fprintf(os.Stderr, "cli: -blockprofile: %v\n", err)
			}
		}
	}, nil
}
