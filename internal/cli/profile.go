package cli

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"

	"repro/internal/gpu"
)

// Profiling bundles the performance-diagnosis options shared by every
// driver: the pprof outputs, the cycle engine's intra-run worker counts
// and the per-phase wall-clock trace.
type Profiling struct {
	// CPUProfile / MemProfile / BlockProfile / MutexProfile are output
	// paths for the corresponding pprof profiles (empty = disabled).
	CPUProfile   string
	MemProfile   string
	BlockProfile string
	MutexProfile string
	// Workers is the per-run SM tick fan-out passed to the engine
	// (gpu.Options.Workers): 0 = GOMAXPROCS, 1 = serial. Results are
	// byte-identical for any value.
	Workers int
	// PartWorkers is the memory-side fan-out (gpu.Options.PartWorkers):
	// L2+DRAM partitions ticked concurrently within each cycle. 0 =
	// GOMAXPROCS capped at the partition count, 1 = serial. Results are
	// byte-identical for any value.
	PartWorkers int
	// PhaseTrace enables the engine's per-phase wall-clock counters
	// (gpu.Options.PhaseTime) and prints a phase breakdown at exit.
	PhaseTrace bool
}

// AddProfileFlags registers -cpuprofile, -memprofile, -blockprofile,
// -mutexprofile, -workers, -part-workers and -phasetrace on fs.
func AddProfileFlags(fs *flag.FlagSet) *Profiling {
	p := &Profiling{}
	fs.StringVar(&p.CPUProfile, "cpuprofile", "",
		"write a CPU profile to this file")
	fs.StringVar(&p.MemProfile, "memprofile", "",
		"write an allocation profile to this file at exit")
	fs.StringVar(&p.BlockProfile, "blockprofile", "",
		"write a goroutine blocking profile to this file at exit")
	fs.StringVar(&p.MutexProfile, "mutexprofile", "",
		"write a mutex contention profile to this file at exit")
	fs.IntVar(&p.Workers, "workers", 0,
		"SM-tick goroutines per simulation cycle (0 = GOMAXPROCS, 1 = serial; results are identical)")
	fs.IntVar(&p.PartWorkers, "part-workers", 0,
		"memory-partition goroutines per simulation cycle (0 = GOMAXPROCS capped at partitions, 1 = serial; results are identical)")
	fs.BoolVar(&p.PhaseTrace, "phasetrace", false,
		"measure per-phase engine time and print a breakdown at exit")
	return p
}

// Start begins the requested profiles and returns a stop function that
// flushes them; call it (usually via defer) before exiting. The stop
// function is never nil.
func (p *Profiling) Start() (func(), error) {
	var cpuFile *os.File
	if p.CPUProfile != "" {
		f, err := os.Create(p.CPUProfile)
		if err != nil {
			return func() {}, fmt.Errorf("cli: -cpuprofile: %w", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return func() {}, fmt.Errorf("cli: -cpuprofile: %w", err)
		}
		cpuFile = f
	}
	if p.BlockProfile != "" {
		runtime.SetBlockProfileRate(1)
	}
	if p.MutexProfile != "" {
		runtime.SetMutexProfileFraction(1)
	}
	return func() {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			cpuFile.Close()
		}
		if p.MemProfile != "" {
			if f, err := os.Create(p.MemProfile); err == nil {
				runtime.GC() // materialize the final live-heap numbers
				pprof.Lookup("allocs").WriteTo(f, 0)
				f.Close()
			} else {
				fmt.Fprintf(os.Stderr, "cli: -memprofile: %v\n", err)
			}
		}
		if p.BlockProfile != "" {
			if f, err := os.Create(p.BlockProfile); err == nil {
				pprof.Lookup("block").WriteTo(f, 0)
				f.Close()
			} else {
				fmt.Fprintf(os.Stderr, "cli: -blockprofile: %v\n", err)
			}
		}
		if p.MutexProfile != "" {
			if f, err := os.Create(p.MutexProfile); err == nil {
				pprof.Lookup("mutex").WriteTo(f, 0)
				f.Close()
			} else {
				fmt.Fprintf(os.Stderr, "cli: -mutexprofile: %v\n", err)
			}
		}
		if p.PhaseTrace {
			PrintPhaseTrace(os.Stderr)
		}
	}, nil
}

// PrintPhaseTrace writes the process-wide per-phase engine time
// breakdown accumulated so far (all runs with PhaseTime enabled).
func PrintPhaseTrace(w *os.File) {
	t := gpu.PhaseTotals()
	if t.Cycles == 0 {
		fmt.Fprintln(w, "phasetrace: no phase-timed cycles recorded")
		return
	}
	total := t.TotalNs()
	pct := func(ns int64) float64 {
		if total == 0 {
			return 0
		}
		return 100 * float64(ns) / float64(total)
	}
	fmt.Fprintf(w, "phasetrace: %d cycles, %.1f ms engine time\n", t.Cycles, float64(total)/1e6)
	fmt.Fprintf(w, "  sm        %8.1f ms (%5.1f%%)\n", float64(t.SMNs)/1e6, pct(t.SMNs))
	fmt.Fprintf(w, "  drain     %8.1f ms (%5.1f%%)\n", float64(t.DrainNs)/1e6, pct(t.DrainNs))
	fmt.Fprintf(w, "  reqnet    %8.1f ms (%5.1f%%)\n", float64(t.ReqNetNs)/1e6, pct(t.ReqNetNs))
	fmt.Fprintf(w, "  partition %8.1f ms (%5.1f%%)\n", float64(t.PartNs)/1e6, pct(t.PartNs))
	fmt.Fprintf(w, "  respnet   %8.1f ms (%5.1f%%)\n", float64(t.RespNetNs)/1e6, pct(t.RespNetNs))
}
