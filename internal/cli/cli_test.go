package cli

import (
	"context"
	"fmt"
	"strings"
	"testing"

	"repro/internal/runner"
	"repro/internal/sm"
)

func collectLog() (func(format string, args ...any), *[]string) {
	var lines []string
	return func(format string, args ...any) {
		lines = append(lines, fmt.Sprintf(format, args...))
	}, &lines
}

func TestFailuresAbortReturnsFirstError(t *testing.T) {
	rb := &Robustness{OnError: "abort"}
	logf, lines := collectLog()
	results := []runner.Result{
		{Key: "a"},
		{Key: "b", Err: fmt.Errorf("boom-b")},
		{Key: "c", Err: fmt.Errorf("boom-c")},
	}
	n, err := rb.Failures(logf, results)
	if n != 0 || err == nil || err.Error() != "boom-b" {
		t.Fatalf("Failures = (%d, %v), want (0, boom-b)", n, err)
	}
	if len(*lines) != 0 {
		t.Fatalf("abort mode logged %v, want nothing", *lines)
	}
}

func TestFailuresSkipClassifiesTransience(t *testing.T) {
	rb := &Robustness{OnError: "skip"}
	logf, lines := collectLog()
	results := []runner.Result{
		{Key: "ok"},
		{Key: "panicked", Err: &runner.PanicError{Index: 1, Key: "panicked", Value: "boom"}},
		{Key: "violated", Err: &sm.InvariantError{Cycle: 7, SM: 0, Rule: "mshr-leak"}},
	}
	n, err := rb.Failures(logf, results)
	if err != nil {
		t.Fatalf("Failures: %v", err)
	}
	if n != 2 {
		t.Fatalf("failed count = %d, want 2", n)
	}
	joined := strings.Join(*lines, "\n")
	if !strings.Contains(joined, "transient failure") {
		t.Errorf("panic not classified transient:\n%s", joined)
	}
	if !strings.Contains(joined, "permanent failure") {
		t.Errorf("invariant not classified permanent:\n%s", joined)
	}
}

func TestFailuresSkipAbortsOnCancellation(t *testing.T) {
	// Cancellation means the user stopped the sweep: the unfinished
	// points did not fail, so even skip mode must surface the interrupt
	// instead of rendering a mostly-"fail" grid as if it were data.
	rb := &Robustness{OnError: "skip"}
	logf, lines := collectLog()
	results := []runner.Result{
		{Key: "a", Err: fmt.Errorf("wrap: %w", context.Canceled)},
		{Key: "b", Err: fmt.Errorf("also canceled: %w", context.Canceled)},
	}
	_, err := rb.Failures(logf, results)
	if err == nil || !strings.Contains(err.Error(), "canceled") {
		t.Fatalf("Failures err = %v, want cancellation", err)
	}
	if len(*lines) != 0 {
		t.Fatalf("cancelled points logged as failures: %v", *lines)
	}
}

func TestFailureSummary(t *testing.T) {
	results := []runner.Result{
		{Key: "a"},
		{Key: "b", Err: fmt.Errorf("first boom")},
		{Key: "c"},
		{Key: "d", Err: fmt.Errorf("second boom")},
	}
	got := FailureSummary(results)
	want := "2/4 points failed, first error: first boom"
	if got != want {
		t.Fatalf("FailureSummary = %q, want %q", got, want)
	}
	if s := FailureSummary([]runner.Result{{Key: "a"}}); s != "" {
		t.Fatalf("FailureSummary(clean) = %q, want empty", s)
	}
}
