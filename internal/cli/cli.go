// Package cli holds the sweep-robustness plumbing every driver shares:
// the -check/-on-error/-journal/-timeout flag set, the SIGINT/SIGTERM
// cancellation context, and uniform failed-point reporting. Drivers stay
// thin; the behaviour (drain-and-checkpoint on interrupt, skip-or-abort
// on per-point failure) is identical across commands.
package cli

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/ckpt"
	"repro/internal/journal"
	"repro/internal/resultcache"
	"repro/internal/runner"
)

// Robustness bundles the hardening options shared by the sweep drivers.
type Robustness struct {
	// Check enables the simulator's per-cycle invariant watchdog.
	Check bool
	// OnError is the failed-point policy: "abort" stops at the first
	// error (submission order); "skip" reports every failed point and
	// keeps the rest of the grid.
	OnError string
	// JournalPath, when non-empty, checkpoints completed points to a
	// crash-safe journal; on restart, journaled points are replayed
	// instead of re-simulated.
	JournalPath string
	// Timeout bounds each job's wall-clock time (0 = none).
	Timeout time.Duration
	// Cache enables the content-addressed result cache: points whose
	// job fingerprint was already simulated (by this process, or — with
	// CacheDir — by an earlier one) are served from the cache instead of
	// re-simulated.
	Cache bool
	// CacheDir, when non-empty, persists the result cache to
	// <CacheDir>/results.jsonl; it implies Cache.
	CacheDir string
	// ForkWarmup forks schemes that share a warmup family (same config,
	// kernels, partition and Scheme.Warmup length) from one warmed
	// engine snapshot instead of re-simulating the warmup prefix.
	ForkWarmup bool
	// CkptDir, when non-empty, persists mid-job engine checkpoints to
	// that directory every CkptEvery cycles: a killed long job resumes
	// from its last durable checkpoint instead of cycle 0.
	CkptDir string
	// CkptEvery is the checkpoint interval in simulated cycles (default
	// 50000 when CkptDir is set).
	CkptEvery int64
}

// AddFlags registers the shared -check, -on-error, -journal and -timeout
// flags on fs (use flag.CommandLine from a driver's main).
func AddFlags(fs *flag.FlagSet) *Robustness {
	r := &Robustness{}
	fs.BoolVar(&r.Check, "check", false,
		"enable the per-cycle simulator invariant watchdog")
	fs.StringVar(&r.OnError, "on-error", "abort",
		"failed-point policy: abort (stop at first error) or skip (report failures, keep the rest)")
	fs.StringVar(&r.JournalPath, "journal", "",
		"checkpoint journal path; completed points are replayed on restart (empty = disabled)")
	fs.DurationVar(&r.Timeout, "timeout", 0,
		"per-job wall-clock timeout, e.g. 90s or 10m (0 = none)")
	fs.BoolVar(&r.Cache, "cache", false,
		"serve repeated points from the content-addressed result cache")
	fs.StringVar(&r.CacheDir, "cache-dir", "",
		"persist the result cache to <dir>/results.jsonl across runs (implies -cache)")
	fs.BoolVar(&r.ForkWarmup, "fork-warmup", false,
		"fork schemes sharing a warmup family from one warmed engine snapshot (needs Scheme warmup cycles)")
	fs.StringVar(&r.CkptDir, "ckpt-dir", "",
		"persist mid-job engine checkpoints to <dir>; a killed job resumes from its last checkpoint (empty = disabled)")
	fs.Int64Var(&r.CkptEvery, "ckpt-every", 0,
		"checkpoint interval in simulated cycles (0 = 50000 when -ckpt-dir is set)")
	return r
}

// Validate rejects unknown option values before any simulation starts.
func (r *Robustness) Validate() error {
	if r.OnError != "abort" && r.OnError != "skip" {
		return fmt.Errorf("-on-error=%q: want abort or skip", r.OnError)
	}
	return nil
}

// Skip reports whether failed points should be skipped rather than
// aborting the run.
func (r *Robustness) Skip() bool { return r.OnError == "skip" }

// OpenJournal opens the checkpoint journal when one was requested and
// reports how much prior progress it holds. Returns (nil, nil) when
// journaling is disabled.
func (r *Robustness) OpenJournal(logf func(format string, args ...any)) (*journal.Journal, error) {
	if r.JournalPath == "" {
		return nil, nil
	}
	j, err := journal.Open(r.JournalPath)
	if err != nil {
		return nil, err
	}
	if n := j.Len(); n > 0 && logf != nil {
		logf("journal %s: resuming past %d checkpointed point(s)", r.JournalPath, n)
	}
	return j, nil
}

// OpenCache opens the result cache when one was requested (-cache or
// -cache-dir) and reports how many entries the persistent tier holds.
// Returns (nil, nil) when caching is disabled.
func (r *Robustness) OpenCache(logf func(format string, args ...any)) (*resultcache.Store, error) {
	if !r.Cache && r.CacheDir == "" {
		return nil, nil
	}
	var opts resultcache.Options
	if r.CacheDir != "" {
		if err := os.MkdirAll(r.CacheDir, 0o755); err != nil {
			return nil, fmt.Errorf("-cache-dir: %w", err)
		}
		opts.Path = r.CacheDir + string(os.PathSeparator) + "results.jsonl"
	}
	c, err := resultcache.Open(opts)
	if err != nil {
		return nil, err
	}
	if n := c.Len(); n > 0 && logf != nil {
		logf("result cache %s: %d entr%s available", opts.Path, n, plural(n, "y", "ies"))
	}
	return c, nil
}

func plural(n int, one, many string) string {
	if n == 1 {
		return one
	}
	return many
}

// OpenCheckpoints opens the mid-job checkpoint store when one was
// requested (-ckpt-dir). Returns (nil, nil) when disabled.
func (r *Robustness) OpenCheckpoints(logf func(format string, args ...any)) (*ckpt.Store, error) {
	if r.CkptDir == "" {
		return nil, nil
	}
	if r.CkptEvery <= 0 {
		r.CkptEvery = 50_000
	}
	s, err := ckpt.OpenStore(r.CkptDir)
	if err != nil {
		return nil, fmt.Errorf("-ckpt-dir: %w", err)
	}
	if logf != nil {
		logf("checkpoints: %s, every %d cycles", r.CkptDir, r.CkptEvery)
	}
	return s, nil
}

// Apply configures a runner with the per-job timeout, journal, result
// cache, warmup forking and mid-job checkpointing (j, c and ck may be
// nil).
func (r *Robustness) Apply(run *runner.Runner, j *journal.Journal, c *resultcache.Store, ck *ckpt.Store) {
	run.Timeout = r.Timeout
	run.Journal = j
	run.Cache = c
	run.ForkWarmup = r.ForkWarmup
	run.Checkpoints = ck
	if ck != nil {
		run.CheckpointEvery = r.CkptEvery
	}
}

// Failures applies the failed-point policy to a finished grid. Under
// "abort" it returns the first error in submission order. Under "skip"
// it logs every failure with its job attribution and transience class
// (runner.IsTransient — a transient point may pass on rerun, a
// permanent one will not) and returns the count; cancellation is the
// exception: an interrupted run aborts even under "skip", because the
// unfinished points did not fail, the user stopped the sweep.
func (r *Robustness) Failures(logf func(format string, args ...any), results []runner.Result) (int, error) {
	if !r.Skip() {
		return 0, runner.FirstErr(results)
	}
	n := 0
	for i, res := range results {
		if res.Err == nil {
			continue
		}
		if errors.Is(res.Err, context.Canceled) {
			return n, res.Err
		}
		n++
		class := "permanent"
		if runner.IsTransient(res.Err) {
			class = "transient"
		}
		logf("point %d (%s): %s failure: %v", i, res.Key, class, res.Err)
	}
	return n, nil
}

// FailureSummary renders the one-line post-mortem a skip-mode driver
// prints before its non-zero exit, so the failure is diagnosable from
// logs without rerunning the sweep.
func FailureSummary(results []runner.Result) string {
	errs := runner.Errs(results)
	if len(errs) == 0 {
		return ""
	}
	return fmt.Sprintf("%d/%d points failed, first error: %v",
		len(errs), len(results), runner.FirstErr(results))
}

// SignalContext returns a context cancelled on SIGINT or SIGTERM. On
// cancellation, in-flight simulations stop at the next interrupt poll,
// journaled progress is preserved, and a second signal kills the process
// immediately (standard signal.NotifyContext behaviour).
func SignalContext() (context.Context, context.CancelFunc) {
	return signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
}
