// Package gpu assembles the full simulated GPU: SMs, the request and
// response crossbars, the L2 partitions and the DRAM channels, and runs
// the deterministic cycle loop.
//
// Tick order within a cycle is fixed: SM issue/LSU -> request network ->
// L2/DRAM -> response network -> (next cycle) SM fill delivery. The
// engine may execute that order on several goroutines — the SM phase
// fans out across SMs, the partition phase across memory partitions,
// and the whole memory side of cycle N overlaps the SM phase of cycle
// N+1 (see Step and stepPipelined) — but every schedule is byte-
// identical to the serial one; DESIGN.md §16 carries the argument.
package gpu

import (
	"fmt"
	"reflect"
	"runtime"
	"sync"
	"time"

	"repro/internal/cache"
	"repro/internal/config"
	"repro/internal/dram"
	"repro/internal/icnt"
	"repro/internal/kern"
	"repro/internal/mem"
	"repro/internal/ring"
	"repro/internal/sm"
	"repro/internal/stats"
	"repro/internal/trace"
)

// PolicyFactory builds the per-SM policy objects. Local mechanisms (the
// paper's per-SM MILGs and QBMI counters) get one instance per SM; a
// factory may also return a shared instance to model global variants.
type PolicyFactory struct {
	MemPolicy func(smID, numKernels int) sm.MemIssuePolicy
	Limiter   func(smID, numKernels int) sm.Limiter
	Gate      func(smID, numKernels int) sm.IssueGate
}

// UCPConfig enables utility-based L1D way partitioning.
type UCPConfig struct {
	Enabled  bool
	Interval int64 // repartition period in cycles
	MinWays  int
}

// Options configures one simulation run.
type Options struct {
	Cycles int64
	// Quota[smID][kernel] is the per-SM TB partition. Intra-SM sharing
	// schemes use the same row for every SM; spatial multitasking uses
	// disjoint rows.
	Quota    [][]int
	Policies PolicyFactory
	UCP      UCPConfig
	// BypassL1[k]: kernel k's load misses bypass the L1 (Section 4.5).
	BypassL1 []bool
	// Trace, when non-nil, receives cycle-level events from every SM.
	Trace  *trace.Buffer
	Series bool
	// Hook, if non-nil, runs every HookInterval cycles (dynamic
	// profiling schemes re-partition through it).
	Hook         func(g *GPU, cycle int64)
	HookInterval int64
	// Interrupt, if non-nil, is polled every 1024 cycles; when it
	// reports true, RunCycles stops early and returns ErrInterrupted
	// (cancellation and per-job timeouts thread through here).
	Interrupt func() bool
	// Checkpoint, if non-nil, runs every CheckpointEvery cycles (after
	// the cycle's hook) so the caller can persist a mid-job checkpoint
	// (see SnapshotCheckpoint). A sink error disables further
	// checkpoints for the run instead of failing it: checkpointing is a
	// recovery optimization, never a correctness dependency.
	Checkpoint      func(g *GPU, cycle int64) error
	CheckpointEvery int64
	// Check enables the per-cycle invariant watchdog (see watchdog.go).
	Check CheckConfig
	// Workers sets how many goroutines tick SMs concurrently within one
	// cycle (the response-delivery + SM-tick phase). 0 means GOMAXPROCS.
	// Clamped to the SM count, and forced to 1 when the policy factories
	// share a mutable instance across SMs (e.g. core.GlobalDMIL) — a
	// shared limiter ticked from several goroutines would race. Any
	// value produces byte-identical results: SMs are mutually
	// independent within the parallel phase, and every cross-SM
	// interaction happens in the serial phases in fixed SM-index order.
	Workers int
	// PartWorkers sets how many goroutines tick L2/DRAM partitions
	// concurrently within one cycle. 0 means GOMAXPROCS, clamped to the
	// partition count. Partitions are disjoint by address
	// (mem.PartitionOf) and each owns a private request pool, so any
	// value is byte-identical to serial.
	PartWorkers int
	// PhaseTime enables per-phase wall-time accounting (sm/drain/
	// reqnet/partition/respnet); read it back with PhaseStats or the
	// package-wide PhaseTotals. Off by default: it costs two clock
	// reads per phase per cycle.
	PhaseTime bool
}

type l2Response struct {
	req     *mem.Request
	readyAt int64
}

// partition is one L2 slice plus its DRAM channel.
type partition struct {
	l2   *cache.Cache
	ch   *dram.Channel
	inQ  ring.Ring[*mem.Request]
	resp ring.Ring[l2Response]
	// pool recycles requests owned by this partition's L2 and DRAM
	// channel, mirroring the per-SM pools: with one shard per partition
	// the partition phase shares no mutable state across partitions and
	// fans out over the worker pool without any staging.
	pool mem.Pool
}

// GPU is a fully assembled simulator instance.
type GPU struct {
	cfg   config.Config
	descs []*kern.Desc

	SMs     []*sm.SM
	reqNet  *icnt.Network
	respNet *icnt.Network
	parts   []*partition

	ctrlFlits int
	dataFlits int

	cycle int64

	// Parallel SM phase, parallel partition phase and the overlapped
	// memory-side goroutine (see Step and stepPipelined). All workers
	// are started lazily on the first step and stopped by Close.
	workers        int
	partWorkers    int
	overlap        bool // SM tick N+1 may run concurrently with memory cycle N
	workCh         []chan int64
	stepWG         sync.WaitGroup
	partCh         []chan int64
	partWG         sync.WaitGroup
	memCh          chan int64
	memWG          sync.WaitGroup
	memPending     bool // a memory cycle is in flight on the mem goroutine
	workersStarted bool

	// Per-phase wall-time accounting (Options.PhaseTime). In overlapped
	// mode the mem goroutine owns the reqnet/partition/respnet fields
	// and the main goroutine the rest; reads go through flushPipeline's
	// barrier.
	phaseTime bool
	phase     PhaseStats

	// policies holds the per-SM policy instances currently installed,
	// kept for the shared-instance worker clamp and for the snapshot
	// layer's stateful-policy guard (see snapshot.go).
	policies [][3]any
}

// New builds a GPU running the given kernels under opts.
func New(cfg config.Config, descs []*kern.Desc, opts *Options) (*GPU, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if err := sm.Validate(&cfg, descs); err != nil {
		return nil, err
	}
	if len(opts.Quota) != cfg.NumSMs {
		return nil, fmt.Errorf("gpu: Quota has %d rows, want %d (one per SM)", len(opts.Quota), cfg.NumSMs)
	}
	g := &GPU{
		cfg:       cfg,
		descs:     descs,
		reqNet:    icnt.New(cfg.Icnt, cfg.NumSMs, cfg.NumMemParts),
		respNet:   icnt.New(cfg.Icnt, cfg.NumMemParts, cfg.NumSMs),
		ctrlFlits: icnt.CtrlFlits(cfg.Icnt),
		dataFlits: icnt.DataFlits(cfg.Icnt, cfg.L1D.LineBytes),
	}
	if opts.Trace != nil {
		opts.Trace.EnsureShards(cfg.NumSMs)
	}
	var policies [][3]any
	for i := 0; i < cfg.NumSMs; i++ {
		if len(opts.Quota[i]) != len(descs) {
			return nil, fmt.Errorf("gpu: Quota row %d has %d entries, want %d", i, len(opts.Quota[i]), len(descs))
		}
		var mp sm.MemIssuePolicy
		var lim sm.Limiter
		var gate sm.IssueGate
		if opts.Policies.MemPolicy != nil {
			mp = opts.Policies.MemPolicy(i, len(descs))
		}
		if opts.Policies.Limiter != nil {
			lim = opts.Policies.Limiter(i, len(descs))
		}
		if opts.Policies.Gate != nil {
			gate = opts.Policies.Gate(i, len(descs))
		}
		policies = append(policies, [3]any{mp, lim, gate})
		s := sm.New(i, &g.cfg, descs, opts.Quota[i], mp, lim, gate, cfg.Seed)
		if opts.Series {
			s.EnableSeries(opts.Cycles)
		}
		if opts.UCP.Enabled {
			s.L1.AttachUMON()
		}
		if opts.BypassL1 != nil {
			s.L1.SetBypass(opts.BypassL1)
		}
		s.Trace = opts.Trace
		pool := &mem.Pool{}
		s.Pool = pool
		s.L1.Pool = pool
		g.SMs = append(g.SMs, s)
	}
	for p := 0; p < cfg.NumMemParts; p++ {
		part := &partition{
			l2: cache.New(cfg.L2, len(descs)),
			ch: dram.New(cfg.DRAM, cfg.L2.LineBytes),
		}
		part.l2.Pool = &part.pool
		part.ch.Pool = &part.pool
		g.parts = append(g.parts, part)
	}
	g.policies = policies
	g.workers = effectiveWorkers(opts.Workers, cfg.NumSMs, policies)
	g.partWorkers = effectivePartWorkers(opts.PartWorkers, cfg.NumMemParts)
	g.phaseTime = opts.PhaseTime
	g.resolveOverlap()
	return g, nil
}

// effectiveWorkers resolves the Workers option: 0 defaults to
// GOMAXPROCS, the result never exceeds the SM count, and any mutable
// policy instance shared across SMs forces serial ticking.
func effectiveWorkers(requested, numSMs int, policies [][3]any) int {
	w := requested
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > numSMs {
		w = numSMs
	}
	if w > 1 && anySharedPolicy(policies) {
		w = 1
	}
	if w < 1 {
		w = 1
	}
	return w
}

// anySharedPolicy reports whether any two SMs received the same policy
// instance. Only pointer identity counts: stateless value
// implementations (e.g. sm.NopLimiter{}) compare equal but carry no
// state, so copies are safe to tick concurrently. A factory that shares
// state behind a non-pointer handle must request Workers=1 itself.
func anySharedPolicy(policies [][3]any) bool {
	for slot := 0; slot < 3; slot++ {
		for i := range policies {
			pi := policies[i][slot]
			if pi == nil {
				continue
			}
			vi := reflect.ValueOf(pi)
			if vi.Kind() != reflect.Pointer {
				continue
			}
			for j := i + 1; j < len(policies); j++ {
				pj := policies[j][slot]
				if pj == nil {
					continue
				}
				vj := reflect.ValueOf(pj)
				if vj.Kind() == reflect.Pointer && vi.Pointer() == vj.Pointer() {
					return true
				}
			}
		}
	}
	return false
}

// effectivePartWorkers resolves the PartWorkers option: 0 defaults to
// GOMAXPROCS, clamped to the partition count.
func effectivePartWorkers(requested, numParts int) int {
	w := requested
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > numParts {
		w = numParts
	}
	if w < 1 {
		w = 1
	}
	return w
}

// resolveOverlap decides whether the memory side of cycle N may run
// concurrently with the SM phase of cycle N+1. The overlap is only
// byte-identical when the response network imposes at least one cycle
// of traversal latency: with Latency >= 1, nothing respNet.Tick(N)
// stages is poppable at cycle N+1, so committing those deliveries at
// the barrier (after the SM phase of N+1) is indistinguishable from the
// serial order. A fully serial configuration keeps the plain loop —
// overlap with no worker anywhere would only add synchronization.
func (g *GPU) resolveOverlap() {
	g.overlap = (g.workers > 1 || g.partWorkers > 1) && g.cfg.Icnt.Latency >= 1
}

// Workers returns the resolved worker count the engine will use.
func (g *GPU) Workers() int { return g.workers }

// PartWorkers returns the resolved partition worker count.
func (g *GPU) PartWorkers() int { return g.partWorkers }

// Cycle returns the current simulation cycle.
func (g *GPU) Cycle() int64 { return g.cycle }

// Config returns the GPU's configuration.
func (g *GPU) Config() *config.Config { return &g.cfg }

// Kernels returns the kernel descriptors of the workload.
func (g *GPU) Kernels() []*kern.Desc { return g.descs }

// Run executes the simulation for opts.Cycles cycles and returns the
// aggregated result.
func Run(cfg config.Config, descs []*kern.Desc, opts *Options) (*stats.RunResult, error) {
	g, err := New(cfg, descs, opts)
	if err != nil {
		return nil, err
	}
	defer g.Close()
	if err := g.RunCycles(opts); err != nil {
		return nil, err
	}
	return g.Result(), nil
}

// RunCycles advances the machine by opts.Cycles cycles. It returns nil
// on completion, ErrInterrupted (wrapped with the cycle reached) when
// opts.Interrupt reports cancellation, or a *sm.InvariantError when the
// watchdog (opts.Check) detects a conservation violation.
func (g *GPU) RunCycles(opts *Options) error {
	if opts.UCP.Enabled && opts.UCP.Interval <= 0 {
		opts.UCP.Interval = 50 * 1024
	}
	var wd *watchdog
	if opts.Check.Enabled {
		wd = newWatchdog(opts.Check, g.cycle)
	}
	// Hoist the per-cycle polling conditions into precomputed next-fire
	// cycles: the loop body compares one int64 per feature instead of
	// re-evaluating nil checks and modulo arithmetic every cycle.
	const never = int64(^uint64(0) >> 1)
	nextInterrupt := never
	if opts.Interrupt != nil {
		nextInterrupt = g.cycle - g.cycle%interruptInterval
		if nextInterrupt < g.cycle {
			nextInterrupt += interruptInterval
		}
	}
	nextHook := never
	if opts.Hook != nil && opts.HookInterval > 0 {
		// The hook fires after Step, at the first multiple of
		// HookInterval the cycle counter reaches.
		nextHook = (g.cycle/opts.HookInterval + 1) * opts.HookInterval
	}
	ucpNext := never
	if opts.UCP.Enabled {
		ucpNext = g.cycle
	}
	nextCkpt := never
	if opts.Checkpoint != nil && opts.CheckpointEvery > 0 {
		nextCkpt = (g.cycle/opts.CheckpointEvery + 1) * opts.CheckpointEvery
	}
	if g.phaseTime {
		start := g.phase
		defer func() { addPhaseTotals(g.phase.sub(start)) }()
	}
	// Every return path leaves the machine at a committed cycle
	// boundary; deferred flush runs before the phase-totals defer above.
	defer g.flushPipeline()
	// The watchdog observes the whole machine after every cycle, so it
	// forces the fully serial step; otherwise the pipelined step overlaps
	// the memory side of cycle N with the SM phase of cycle N+1 and the
	// loop flushes the pipeline before any point that observes or
	// mutates cross-phase state (UCP repartition, hooks, checkpoints).
	pipelined := g.overlap && wd == nil
	for c := int64(0); c < opts.Cycles; c++ {
		if g.cycle == nextInterrupt {
			if opts.Interrupt() {
				return fmt.Errorf("%w at cycle %d of %d", ErrInterrupted, g.cycle, opts.Cycles)
			}
			nextInterrupt += interruptInterval
		}
		if pipelined {
			g.stepPipelined()
		} else {
			g.Step()
		}
		if wd != nil {
			if err := wd.check(g); err != nil {
				return err
			}
		}
		if g.cycle >= ucpNext {
			g.flushPipeline()
			g.repartitionL1(opts.UCP.MinWays)
			ucpNext = g.cycle + opts.UCP.Interval
		}
		if g.cycle == nextHook {
			g.flushPipeline()
			opts.Hook(g, g.cycle)
			nextHook += opts.HookInterval
		}
		if g.cycle == nextCkpt {
			g.flushPipeline()
			if err := opts.Checkpoint(g, g.cycle); err != nil {
				nextCkpt = never
			} else {
				nextCkpt += opts.CheckpointEvery
			}
		}
	}
	return nil
}

// Step advances the machine by one cycle with every phase executed in
// serial tick order (the SM and partition phases may still fan out over
// their worker pools; each is internally order-free).
//
// The cycle is split into an SM phase, the outbound drain, and the
// memory phase. In the SM phase each SM consumes its private response-
// network ejection port and ticks; SM i touches only SM i's state (its
// warps, L1, pool, trace shard, per-SM policies and the network's per-
// destination queue), so the phase runs on the worker pool when
// Workers > 1 with results byte-identical to serial execution. The same
// holds for partitions: partition p touches only p-indexed crossbar
// ports, its own L2/DRAM and its own pool shard. The crossbar commit
// calls reproduce the serial engine's visibility exactly: the response
// network's tick at cycle c observes pops through cycle c, and both
// networks' deliveries of cycle c become poppable from cycle c+1 on.
func (g *GPU) Step() {
	g.flushPipeline()
	c := g.cycle
	pt := g.phaseTime
	var t0 time.Time
	if pt {
		t0 = time.Now()
	}

	g.smPhaseAll(c)
	if pt {
		t1 := time.Now()
		g.phase.SMNs += t1.Sub(t0).Nanoseconds()
		t0 = t1
	}

	g.drain()
	if pt {
		t1 := time.Now()
		g.phase.DrainNs += t1.Sub(t0).Nanoseconds()
		t0 = t1
	}

	g.reqNet.Tick(c)
	if pt {
		t1 := time.Now()
		g.phase.ReqNetNs += t1.Sub(t0).Nanoseconds()
		t0 = t1
	}

	g.partPhase(c)
	if pt {
		t1 := time.Now()
		g.phase.PartNs += t1.Sub(t0).Nanoseconds()
		t0 = t1
	}

	g.respNet.CommitPops() // the response tick sees this cycle's SM pops
	g.respNet.Tick(c)
	g.respNet.CommitDeliveries() // poppable from cycle c+1
	g.reqNet.CommitPops()        // partition pops, visible to the next tick
	g.reqNet.CommitDeliveries()  // poppable by partitions from cycle c+1
	if pt {
		g.phase.RespNetNs += time.Since(t0).Nanoseconds()
		g.phase.Cycles++
	}
	g.cycle++
}

// stepPipelined advances the machine by one cycle, overlapping this
// cycle's SM phase with the previous cycle's in-flight memory phase
// (software double-buffering of the response-network ejection port).
//
// Schedule: run SM(c) while mem(c-1) finishes on the mem goroutine;
// barrier; commit both networks' staged deliveries and pops; drain
// SM outbound queues into the request network; launch mem(c) and
// return. The commits at the barrier land in exactly the positions the
// serial Step gives them — pops(c) apply before respNet.Tick(c), which
// runs inside mem(c); deliveries of tick c-1 publish before any cycle-c
// consumer that could pop them (Latency >= 1 makes them unpoppable
// before c+1, which resolveOverlap gates on).
func (g *GPU) stepPipelined() {
	g.startWorkers()
	c := g.cycle
	pt := g.phaseTime
	var t0 time.Time
	if pt {
		t0 = time.Now()
	}

	g.smPhaseAll(c) // concurrent with mem(c-1) on the mem goroutine
	if pt {
		g.phase.SMNs += time.Since(t0).Nanoseconds()
	}

	if g.memPending {
		g.memWG.Wait()
		g.memPending = false
	}
	g.respNet.CommitDeliveries()
	g.respNet.CommitPops()
	g.reqNet.CommitPops()
	g.reqNet.CommitDeliveries()

	if pt {
		t0 = time.Now()
	}
	g.drain()
	if pt {
		g.phase.DrainNs += time.Since(t0).Nanoseconds()
		g.phase.Cycles++
	}

	g.memPending = true
	g.memWG.Add(1)
	g.memCh <- c
	g.cycle++
}

// flushPipeline waits out an in-flight memory phase and commits the
// staged crossbar effects, leaving the machine in the exact state the
// serial engine would have after the same number of Steps. It is a
// no-op on an idle pipeline. Every observation point — watchdog, hooks,
// UCP repartition, checkpoints, snapshots, Result — runs behind it.
func (g *GPU) flushPipeline() {
	if !g.memPending {
		return
	}
	g.memWG.Wait()
	g.memPending = false
	g.respNet.CommitDeliveries()
	g.respNet.CommitPops()
	g.reqNet.CommitPops()
	g.reqNet.CommitDeliveries()
}

// smPhaseAll runs the SM phase for cycle c, inline or on the SM worker
// pool.
func (g *GPU) smPhaseAll(c int64) {
	if g.workers > 1 {
		g.startWorkers()
		g.stepWG.Add(len(g.workCh))
		for _, ch := range g.workCh {
			ch <- c
		}
		g.stepWG.Wait()
	} else {
		for i := range g.SMs {
			g.smPhase(i, c)
		}
	}
}

// smPhase delivers pending memory responses to SM i and ticks it. It
// touches only SM i's state and is safe to run concurrently with other
// SMs' phases.
func (g *GPU) smPhase(i int, c int64) {
	s := g.SMs[i]
	for {
		resp := g.respNet.Pop(i, c)
		if resp == nil {
			break
		}
		s.Deliver(resp, c)
	}
	s.Tick(c)
}

// drain moves each SM's L1 miss queue head into the request network, in
// strict SM-index order (the injection queues are shared state).
func (g *GPU) drain() {
	for i, s := range g.SMs {
		if r := s.PeekOutbound(); r != nil && g.reqNet.CanPush(i) {
			flits := g.ctrlFlits
			if r.Kind == mem.Store {
				flits = g.dataFlits
			}
			dst := mem.PartitionOf(r.LineAddr, g.cfg.NumMemParts)
			g.reqNet.Push(i, icnt.Packet{Req: r, Dst: dst, Flits: flits})
			s.PopOutbound()
		}
	}
}

// partPhase ticks every partition for cycle c, inline or on the
// partition worker pool. Partitions are mutually disjoint — partition p
// touches only the p-indexed crossbar ports, its own L2/DRAM state and
// its own pool shard — so no staging or commit order is needed.
func (g *GPU) partPhase(c int64) {
	if g.partWorkers > 1 {
		g.startWorkers()
		g.partWG.Add(len(g.partCh))
		for _, ch := range g.partCh {
			ch <- c
		}
		g.partWG.Wait()
	} else {
		for p, part := range g.parts {
			g.tickPartition(p, part, c)
		}
	}
}

// memPhase executes the memory side of cycle c: request-network tick,
// partition ticks, response-network tick. In pipelined mode it runs on
// the mem goroutine, concurrently with the SM phase of cycle c+1; the
// commits belonging to cycle c happen at the caller's barrier.
func (g *GPU) memPhase(c int64) {
	pt := g.phaseTime
	var t0 time.Time
	if pt {
		t0 = time.Now()
	}
	g.reqNet.Tick(c)
	if pt {
		t1 := time.Now()
		g.phase.ReqNetNs += t1.Sub(t0).Nanoseconds()
		t0 = t1
	}
	g.partPhase(c)
	if pt {
		t1 := time.Now()
		g.phase.PartNs += t1.Sub(t0).Nanoseconds()
		t0 = t1
	}
	g.respNet.Tick(c)
	if pt {
		g.phase.RespNetNs += time.Since(t0).Nanoseconds()
	}
}

// startWorkers lazily spins up the persistent worker pools: SM workers
// each owning a contiguous SM range, partition workers each owning a
// contiguous partition range, and — when phase overlap is enabled — the
// mem goroutine that executes whole memory cycles.
func (g *GPU) startWorkers() {
	if g.workersStarted {
		return
	}
	g.workersStarted = true
	if g.workers > 1 {
		n := len(g.SMs)
		g.workCh = make([]chan int64, g.workers)
		for w := 0; w < g.workers; w++ {
			lo, hi := n*w/g.workers, n*(w+1)/g.workers
			ch := make(chan int64, 1)
			g.workCh[w] = ch
			go func() {
				for c := range ch {
					for i := lo; i < hi; i++ {
						g.smPhase(i, c)
					}
					g.stepWG.Done()
				}
			}()
		}
	}
	if g.partWorkers > 1 {
		n := len(g.parts)
		g.partCh = make([]chan int64, g.partWorkers)
		for w := 0; w < g.partWorkers; w++ {
			lo, hi := n*w/g.partWorkers, n*(w+1)/g.partWorkers
			ch := make(chan int64, 1)
			g.partCh[w] = ch
			go func() {
				for c := range ch {
					for p := lo; p < hi; p++ {
						g.tickPartition(p, g.parts[p], c)
					}
					g.partWG.Done()
				}
			}()
		}
	}
	if g.overlap {
		ch := make(chan int64, 1)
		g.memCh = ch
		go func() {
			for c := range ch {
				g.memPhase(c)
				g.memWG.Done()
			}
		}()
	}
}

// Close flushes any in-flight memory cycle and stops the worker pools.
// It is safe to call multiple times and on a GPU that never started
// workers; the GPU must not be stepped after. Run closes automatically;
// callers driving RunCycles themselves should defer Close.
func (g *GPU) Close() {
	g.flushPipeline()
	if !g.workersStarted {
		return
	}
	g.workersStarted = false
	for _, ch := range g.workCh {
		close(ch)
	}
	g.workCh = nil
	for _, ch := range g.partCh {
		close(ch)
	}
	g.partCh = nil
	if g.memCh != nil {
		close(g.memCh)
		g.memCh = nil
	}
}

func (g *GPU) tickPartition(p int, part *partition, c int64) {
	// Drain the network into the partition's input buffer (the network
	// ejection port is wide; the L2 service rate below is what bounds
	// throughput).
	for part.inQ.Len() < g.cfg.Icnt.QueueDepth*2 {
		r := g.reqNet.Pop(p, c)
		if r == nil {
			break
		}
		part.inQ.Push(r)
	}

	// Service the L2: two accesses per cycle (partitions are internally
	// banked); a reservation failure stalls the in-order stream.
	for served := 0; served < 2 && !part.inQ.Empty(); served++ {
		req := part.inQ.Peek()
		res := part.l2.Access(req)
		if res.Failed() {
			break
		}
		part.inQ.Pop()
		switch res {
		case cache.Hit:
			if req.Kind == mem.Load {
				part.resp.Push(l2Response{
					req:     req,
					readyAt: c + int64(g.cfg.L2.HitLatency+g.cfg.L2ExtraLat),
				})
			} else {
				// A store absorbed by the write-back L2 retires here:
				// no response travels up.
				part.pool.Release(req)
			}
		case cache.Forwarded:
			// Write-through path is unused for the write-back L2;
			// forwarded results occur only for write-no-allocate
			// configurations.
			part.ch.Push(req, c)
		}
	}

	// Drain the L2 miss queue into the DRAM channel.
	if part.ch.CanPush() {
		if r := part.l2.PeekMiss(); r != nil {
			part.l2.PopMiss()
			part.ch.Push(r, c)
		}
	}
	// Dirty evictions also go to DRAM (writes, fire and forget).
	if part.ch.CanPush() {
		if wb := part.l2.PopWriteback(); wb != nil {
			part.ch.Push(wb, c)
		}
	}

	part.ch.Tick(c)

	// DRAM fills complete L2 misses; merged loads produce responses.
	// The fill request itself (the fetch the L2 sent down) and any
	// merged store targets retire here.
	if fill := part.ch.PopResponse(c); fill != nil {
		targets := part.l2.Fill(fill.LineAddr)
		for _, t := range targets {
			if t.Kind == mem.Load {
				part.resp.Push(l2Response{req: t, readyAt: c})
			} else {
				part.pool.Release(t)
			}
		}
		part.pool.Release(fill)
	}

	// Inject up to two responses per cycle into the response network.
	for inj := 0; inj < 2 && !part.resp.Empty() && part.resp.Peek().readyAt <= c; inj++ {
		if !g.respNet.CanPush(p) {
			break
		}
		r := part.resp.Pop().req
		g.respNet.Push(p, icnt.Packet{Req: r, Dst: r.SM, Flits: g.dataFlits})
	}
}

// repartitionL1 recomputes every SM's L1D way partition from its UMON
// (the UCP lookahead algorithm).
func (g *GPU) repartitionL1(minWays int) {
	if len(g.descs) < 2 {
		return
	}
	for _, s := range g.SMs {
		u := s.L1.UMONRef()
		if u == nil {
			continue
		}
		s.L1.SetPartition(u.Lookahead(minWays))
		u.ResetCounters()
	}
}

// Result aggregates statistics across SMs.
func (g *GPU) Result() *stats.RunResult {
	g.flushPipeline()
	r := &stats.RunResult{
		Cycles:  g.cycle,
		NumSMs:  len(g.SMs),
		Kernels: make([]stats.KernelResult, len(g.descs)),
	}
	for k, d := range g.descs {
		kr := &r.Kernels[k]
		kr.Name = d.Name
	}
	for _, s := range g.SMs {
		r.LSUStallCycles += s.LSUStall
		r.LSUBusyCycles += s.LSUBusy
		r.ALUIssued += s.ALUIssued
		r.SFUIssued += s.SFUIssued
		r.SMCycles += uint64(g.cycle)
		r.ALUPortCycles += uint64(g.cycle) * uint64(g.cfg.SM.ALUPorts)
		r.SFUPortCycles += uint64(g.cycle) * uint64(g.cfg.SM.SFUPorts)
		for k := range g.descs {
			kr := &r.Kernels[k]
			kc := s.K[k]
			kr.Instrs += kc.Instrs
			kr.SmemInstrs += kc.SmemInstrs
			kr.MemInstrs += kc.MemInstrs
			kr.Requests += kc.Requests
			kr.TBsDone += kc.TBsDone
			cs := s.L1.Stats[k]
			kr.L1D.Accesses += cs.Accesses
			kr.L1D.Hits += cs.Hits
			kr.L1D.Misses += cs.Misses
			kr.L1D.Merged += cs.Merged
			kr.L1D.Bypassed += cs.Bypassed
			kr.L1D.RsFail += cs.RsFail
			kr.L1D.RsFailMSHR += cs.RsFailMSHR
			kr.L1D.RsFailMQ += cs.RsFailMQ
			kr.L1D.RsFailLine += cs.RsFailLine
			if iss, acc := s.Series(k); iss != nil {
				if kr.Series == nil {
					kr.Series = &stats.Series{
						Issued: make([]uint32, len(iss)),
						L1Acc:  make([]uint32, len(acc)),
					}
				}
				for i := range iss {
					kr.Series.Issued[i] += iss[i]
				}
				for i := range acc {
					kr.Series.L1Acc[i] += acc[i]
				}
			}
		}
	}
	for _, part := range g.parts {
		for _, st := range part.l2.Stats {
			r.Mem.L2Accesses += st.Accesses
		}
		r.Mem.DRAMAccesses += part.ch.Served
	}
	r.Mem.Flits = g.reqNet.TransferredFlits + g.respNet.TransferredFlits
	if g.cycle > 0 {
		for k := range r.Kernels {
			r.Kernels[k].IPC = float64(r.Kernels[k].Instrs) / float64(g.cycle)
		}
	}
	return r
}

// UniformQuota builds a Quota matrix giving every SM the same per-kernel
// TB partition.
func UniformQuota(numSMs int, perSM []int) [][]int {
	q := make([][]int, numSMs)
	for i := range q {
		q[i] = append([]int(nil), perSM...)
	}
	return q
}

// DumpMemState prints memory-system occupancy and statistics to stdout
// (development and debugging aid used by cmd/ckedebug).
func (g *GPU) DumpMemState() {
	g.flushPipeline()
	fmt.Printf("reqNet flits=%d respNet flits=%d\n", g.reqNet.TransferredFlits, g.respNet.TransferredFlits)
	for p, part := range g.parts {
		st := part.l2.Stats
		var acc, miss, rsf uint64
		for _, s := range st {
			acc += s.Accesses
			miss += s.Misses
			rsf += s.RsFail
		}
		fmt.Printf("part%d: l2 acc=%d miss=%d rsfail=%d mshr=%d missq=%d inQ=%d resp=%d dram: served=%d rowhit=%d q=%d\n",
			p, acc, miss, rsf, part.l2.MSHRInUse(), part.l2.MissQueueLen(),
			part.inQ.Len(), part.resp.Len(),
			part.ch.Served, part.ch.RowHits, part.ch.QueueLen())
	}
	for _, s := range g.SMs {
		fmt.Printf("sm%d: l1 mshr=%d missq=%d lsuStall=%d\n", s.ID, s.L1.MSHRInUse(), s.L1.MissQueueLen(), s.LSUStall)
	}
}

// L2KernelStats aggregates kernel k's L2 statistics across partitions
// (used by L2-congestion-driven controllers).
func (g *GPU) L2KernelStats(k int) cache.KernelStats {
	var out cache.KernelStats
	for _, part := range g.parts {
		if k >= len(part.l2.Stats) {
			continue
		}
		st := part.l2.Stats[k]
		out.Accesses += st.Accesses
		out.Hits += st.Hits
		out.Misses += st.Misses
		out.Merged += st.Merged
		out.RsFail += st.RsFail
		out.RsFailMSHR += st.RsFailMSHR
		out.RsFailMQ += st.RsFailMQ
		out.RsFailLine += st.RsFailLine
	}
	return out
}

// DRAMQueueLen returns the summed DRAM channel queue occupancy (a
// congestion signal for L2-side throttling).
func (g *GPU) DRAMQueueLen() int {
	total := 0
	for _, part := range g.parts {
		total += part.ch.QueueLen()
	}
	return total
}
