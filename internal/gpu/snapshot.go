// Whole-machine snapshot/restore, the engine half of the warm-fork
// optimization: the sweep path simulates a family's shared warmup
// prefix once, snapshots the machine and restores the snapshot into a
// fresh GPU per family member instead of re-simulating the prefix.
//
// One mem.Cloner spans the whole capture (and another the whole
// restore): the requests of one memory instruction may simultaneously
// sit in an SM's LSU, its L1 MSHRs, the crossbars, an L2 partition and
// DRAM, and they share one InstrToken — a per-component copy would tear
// that aliasing. Clones are freshly allocated, never pool-drawn, so the
// snapshot owns its memory: releasing (and poisoning) the originals
// afterwards cannot reach it, and restoring the same snapshot many
// times yields disjoint machines.
//
// Policies are deliberately outside the snapshot boundary. A policy
// object may hold arbitrary cross-SM state (global limiters, hook
// closures) that the cloner cannot see, so Snapshot refuses to run
// while stateful (pointer-typed) policies are installed. The intended
// sequence is: build the machine unmanaged, run the warmup leg,
// snapshot, then InstallPolicies for the managed main leg — both the
// cold path and the fork path execute that same sequence, which is what
// makes them byte-identical.

package gpu

import (
	"fmt"
	"reflect"
	"unsafe"

	"repro/internal/cache"
	"repro/internal/ckpt"
	"repro/internal/dram"
	"repro/internal/icnt"
	"repro/internal/mem"
	"repro/internal/sm"
)

// Snapshot is the captured state of a whole GPU. Immutable once taken;
// Restore deep-copies out of it, so one snapshot can seed any number of
// machines (concurrently, if each restore targets a different GPU).
type Snapshot struct {
	cycle int64

	sms      []*sm.Snapshot
	l2s      []*cache.Snapshot
	drams    []*dram.Snapshot
	partInQ  [][]*mem.Request
	partResp [][]l2Response
	reqNet   *icnt.Snapshot
	respNet  *icnt.Snapshot

	// requests/tokens are the distinct in-flight objects captured, for
	// footprint accounting.
	requests int
	tokens   int

	// policies[sm][slot] is the ckpt-encoded state of the policy
	// instance installed in that slot, captured only by
	// SnapshotCheckpoint (nil for fork-path snapshots and for slots
	// holding nil or stateless value-typed policies). A shared instance
	// encodes to identical bytes in every SM's row, so RestoreCheckpoint
	// decoding it once per SM is idempotent.
	policies [][3][]byte
}

// Cycle returns the simulation cycle the snapshot was taken at.
func (sn *Snapshot) Cycle() int64 { return sn.cycle }

// Snapshot captures the machine's full state. It fails when stateful
// (pointer-typed) policy instances are installed: their state lives
// outside the engine's object graph, so a restore could not reproduce
// it. Take snapshots on an unmanaged machine (before InstallPolicies).
func (g *GPU) Snapshot() (*Snapshot, error) {
	for _, p := range g.policies {
		for slot := 0; slot < 3; slot++ {
			if p[slot] == nil {
				continue
			}
			if reflect.ValueOf(p[slot]).Kind() == reflect.Pointer {
				return nil, fmt.Errorf("gpu: snapshot with stateful policy %T installed is unsupported; snapshot before InstallPolicies", p[slot])
			}
		}
	}
	return g.capture(), nil
}

// capture is the unguarded snapshot core shared by Snapshot (fork path,
// which refuses stateful policies) and SnapshotCheckpoint (which
// serializes them alongside).
func (g *GPU) capture() *Snapshot {
	g.flushPipeline()
	cl := mem.NewCloner()
	sn := &Snapshot{cycle: g.cycle}
	for _, s := range g.SMs {
		sn.sms = append(sn.sms, s.Snapshot(cl))
	}
	for _, part := range g.parts {
		sn.l2s = append(sn.l2s, part.l2.Snapshot(cl))
		sn.drams = append(sn.drams, part.ch.Snapshot(cl))
		sn.partInQ = append(sn.partInQ, part.inQ.Snapshot(cl.Request))
		sn.partResp = append(sn.partResp, part.resp.Snapshot(func(r l2Response) l2Response {
			return l2Response{req: cl.Request(r.req), readyAt: r.readyAt}
		}))
	}
	sn.reqNet = g.reqNet.Snapshot(cl)
	sn.respNet = g.respNet.Snapshot(cl)
	sn.requests = cl.Requests()
	sn.tokens = cl.Tokens()
	return sn
}

// SnapshotCheckpoint captures the machine's full state for a mid-job
// checkpoint. Unlike Snapshot (the fork path, which refuses stateful
// policies because the restored machine installs fresh ones), a
// checkpoint resumes the SAME run, so installed pointer-typed policy
// instances are serialized with the machine via the ckpt codec and
// RestoreCheckpoint decodes them back into the instances a fresh
// machine's factories built. Policies holding state the codec cannot
// express (maps, closures) fail here, which callers treat as
// "checkpointing unavailable", never as a run failure.
func (g *GPU) SnapshotCheckpoint() (*Snapshot, error) {
	sn := g.capture()
	sn.policies = make([][3][]byte, len(g.policies))
	for i, row := range g.policies {
		for slot := 0; slot < 3; slot++ {
			p := row[slot]
			if p == nil || reflect.ValueOf(p).Kind() != reflect.Pointer {
				continue // stateless or absent: factories rebuild it
			}
			blob, err := ckpt.Marshal(p)
			if err != nil {
				return nil, fmt.Errorf("gpu: checkpoint: sm %d policy %T: %w", i, p, err)
			}
			sn.policies[i][slot] = blob
		}
	}
	return sn, nil
}

// RestoreCheckpoint overwrites the machine's state from a checkpoint
// snapshot, including the installed policy instances' state. The GPU
// must have the snapshot's geometry AND the same policies installed
// (built by the same factories — the normal resume path runs gpu.New
// with the job's original options first).
func (g *GPU) RestoreCheckpoint(sn *Snapshot) error {
	if sn.policies == nil {
		return fmt.Errorf("gpu: restore checkpoint: snapshot lacks policy state (fork-path snapshot?)")
	}
	if len(sn.policies) != len(g.policies) {
		return fmt.Errorf("gpu: restore checkpoint: snapshot has %d policy rows, machine has %d", len(sn.policies), len(g.policies))
	}
	for i, row := range g.policies {
		for slot := 0; slot < 3; slot++ {
			p := row[slot]
			blob := sn.policies[i][slot]
			stateful := p != nil && reflect.ValueOf(p).Kind() == reflect.Pointer
			if stateful != (blob != nil) {
				return fmt.Errorf("gpu: restore checkpoint: sm %d slot %d: policy shape mismatch (%T vs %d-byte blob)", i, slot, p, len(blob))
			}
		}
	}
	if err := g.Restore(sn); err != nil {
		return err
	}
	for i, row := range g.policies {
		for slot := 0; slot < 3; slot++ {
			if blob := sn.policies[i][slot]; blob != nil {
				if err := ckpt.Unmarshal(blob, row[slot]); err != nil {
					return fmt.Errorf("gpu: restore checkpoint: sm %d policy %T: %w", i, row[slot], err)
				}
			}
		}
	}
	return nil
}

// EncodeSnapshot serializes a snapshot to bytes for persistence.
func EncodeSnapshot(sn *Snapshot) ([]byte, error) {
	return ckpt.Marshal(sn)
}

// DecodeSnapshot deserializes a snapshot produced by EncodeSnapshot.
// Corrupt input yields an error, never a panic; callers degrade to a
// from-zero run.
func DecodeSnapshot(data []byte) (*Snapshot, error) {
	sn := &Snapshot{}
	if err := ckpt.Unmarshal(data, sn); err != nil {
		return nil, err
	}
	return sn, nil
}

// Restore overwrites the machine's state from sn. The GPU must have the
// geometry the snapshot was taken from (same config-derived SM count,
// partition count, cache/queue shapes); its pools keep their free lists
// and its policies are untouched — install the main leg's policies with
// InstallPolicies afterwards. sn itself is never mutated, so concurrent
// restores of one snapshot into different GPUs are safe.
func (g *GPU) Restore(sn *Snapshot) error {
	if len(sn.sms) != len(g.SMs) {
		return fmt.Errorf("gpu: restore: snapshot has %d SMs, machine has %d", len(sn.sms), len(g.SMs))
	}
	if len(sn.l2s) != len(g.parts) {
		return fmt.Errorf("gpu: restore: snapshot has %d partitions, machine has %d", len(sn.l2s), len(g.parts))
	}
	cl := mem.NewCloner()
	for i, s := range g.SMs {
		if err := s.Restore(sn.sms[i], cl); err != nil {
			return err
		}
	}
	for p, part := range g.parts {
		if err := part.l2.Restore(sn.l2s[p], cl); err != nil {
			return fmt.Errorf("gpu: restore: partition %d: %w", p, err)
		}
		if err := part.ch.Restore(sn.drams[p], cl); err != nil {
			return fmt.Errorf("gpu: restore: partition %d: %w", p, err)
		}
		part.inQ.Restore(sn.partInQ[p], cl.Request)
		part.resp.Restore(sn.partResp[p], func(r l2Response) l2Response {
			return l2Response{req: cl.Request(r.req), readyAt: r.readyAt}
		})
	}
	if err := g.reqNet.Restore(sn.reqNet, cl); err != nil {
		return err
	}
	if err := g.respNet.Restore(sn.respNet, cl); err != nil {
		return err
	}
	g.cycle = sn.cycle
	return nil
}

// InstallPolicies replaces the per-SM issue policies and cache policy
// attachments with the ones opts describes, exactly as New would have
// built them: fresh policy instances from the factories, a fresh UMON
// per L1 when UCP is enabled, and the per-kernel bypass vector. The
// worker pool is stopped and its width re-resolved (a shared policy
// instance forces serial ticking); it restarts lazily on the next Step.
//
// This is the managed-leg half of the snapshot discipline: warm the
// machine unmanaged, snapshot or restore, then InstallPolicies and run
// the managed leg.
func (g *GPU) InstallPolicies(opts *Options) {
	g.Close()
	n := len(g.descs)
	var policies [][3]any
	for i, s := range g.SMs {
		var mp sm.MemIssuePolicy
		var lim sm.Limiter
		var gate sm.IssueGate
		if opts.Policies.MemPolicy != nil {
			mp = opts.Policies.MemPolicy(i, n)
		}
		if opts.Policies.Limiter != nil {
			lim = opts.Policies.Limiter(i, n)
		}
		if opts.Policies.Gate != nil {
			gate = opts.Policies.Gate(i, n)
		}
		policies = append(policies, [3]any{mp, lim, gate})
		s.SetPolicies(mp, lim, gate)
		if opts.UCP.Enabled {
			s.L1.AttachUMON()
		}
		if opts.BypassL1 != nil {
			s.L1.SetBypass(opts.BypassL1)
		}
	}
	g.policies = policies
	g.workers = effectiveWorkers(opts.Workers, g.cfg.NumSMs, policies)
	g.partWorkers = effectivePartWorkers(opts.PartWorkers, g.cfg.NumMemParts)
	g.resolveOverlap()
}

// SetQuota installs a new per-SM TB quota matrix (resident TBs drain
// naturally). The managed leg of a warmed run uses this to switch from
// the warmup partition to the scheme's partition.
func (g *GPU) SetQuota(quota [][]int) error {
	if len(quota) != len(g.SMs) {
		return fmt.Errorf("gpu: SetQuota: %d rows, want %d", len(quota), len(g.SMs))
	}
	for i, s := range g.SMs {
		s.SetQuota(quota[i])
	}
	return nil
}

// Bytes estimates the snapshot's memory footprint. The dominant terms —
// in-flight request/token graphs, per-SM warp arrays and cache line
// arrays — are counted exactly; fixed per-component overhead is
// approximated. Feeds the server's snapshot_bytes gauge.
func (sn *Snapshot) Bytes() int64 {
	total := int64(sn.requests)*int64(unsafe.Sizeof(mem.Request{})) +
		int64(sn.tokens)*int64(unsafe.Sizeof(mem.InstrToken{}))
	for _, s := range sn.sms {
		total += s.Bytes()
	}
	for _, l2 := range sn.l2s {
		total += l2.Bytes()
	}
	for _, d := range sn.drams {
		total += d.Bytes()
	}
	for p := range sn.partInQ {
		total += int64(len(sn.partInQ[p])+len(sn.partResp[p])) * 16
	}
	total += sn.reqNet.Bytes() + sn.respNet.Bytes()
	return total
}

// PendingRequests returns the number of in-flight requests held by the
// live machine across every component (debugging/accounting aid).
func (g *GPU) PendingRequests() int {
	total := 0
	for _, s := range g.SMs {
		total += s.PendingRequests()
	}
	for _, part := range g.parts {
		total += part.l2.PendingRequests() + part.ch.PendingRequests()
		total += part.inQ.Len() + part.resp.Len()
	}
	total += g.reqNet.PendingRequests() + g.respNet.PendingRequests()
	return total
}
