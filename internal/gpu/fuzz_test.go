package gpu_test

import (
	"testing"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/gpu"
	"repro/internal/kern"
	"repro/internal/sm"
	"repro/internal/xrand"
)

// TestFuzzRandomWorkloads drives the full machine with randomly drawn
// kernel descriptors under randomly drawn schemes and checks the global
// invariants: no deadlock (every kernel with a quota makes progress or
// the machine is legitimately saturated), determinism, and bounded
// counters. This is the simulator's broadest property test.
func TestFuzzRandomWorkloads(t *testing.T) {
	if testing.Short() {
		t.Skip("fuzz is slow")
	}
	master := xrand.New(2026)
	for trial := 0; trial < 12; trial++ {
		seed := master.Uint64()
		rng := xrand.New(seed)
		cfg := config.Scaled(rng.Intn(3) + 1)
		cfg.Seed = rng.Uint64()

		nk := rng.Intn(2) + 2 // 2 or 3 kernels
		var descs []*kern.Desc
		for i := 0; i < nk; i++ {
			d := kern.RandomDesc(rng, &cfg)
			descs = append(descs, &d)
		}
		if err := sm.Validate(&cfg, descs); err != nil {
			t.Fatalf("trial %d: random descriptor invalid: %v", trial, err)
		}
		quotaRow := core.EvenQuota(&cfg, descs)

		opts := &gpu.Options{
			Cycles: 15_000,
			Quota:  gpu.UniformQuota(cfg.NumSMs, quotaRow),
		}
		switch rng.Intn(4) {
		case 1:
			opts.Policies.MemPolicy = func(smID, n int) sm.MemIssuePolicy { return core.NewQBMI(n, nil) }
		case 2:
			opts.Policies.Limiter = func(smID, n int) sm.Limiter { return core.NewDMIL(n) }
		case 3:
			opts.UCP = gpu.UCPConfig{Enabled: true, Interval: 4000, MinWays: 1}
		}

		run := func() *gpu.GPU {
			g, err := gpu.New(cfg, clone(descs), opts)
			if err != nil {
				t.Fatalf("trial %d (seed %d): %v", trial, seed, err)
			}
			g.RunCycles(opts)
			return g
		}
		g1 := run()
		r1 := g1.Result()

		total := uint64(0)
		for k, kr := range r1.Kernels {
			total += kr.Instrs
			// Conservation: requests counted at the LSU must not exceed
			// L1 accesses recorded by the cache.
			if kr.Requests != kr.L1D.Accesses {
				t.Fatalf("trial %d (seed %d) kernel %d: LSU requests %d != L1 accesses %d",
					trial, seed, k, kr.Requests, kr.L1D.Accesses)
			}
			if kr.L1D.Hits+kr.L1D.Misses != kr.L1D.Accesses {
				t.Fatalf("trial %d kernel %d: hits+misses != accesses", trial, k)
			}
		}
		if total == 0 {
			t.Fatalf("trial %d (seed %d): machine fully wedged", trial, seed)
		}

		// Determinism: the identical configuration replays identically.
		g2 := run()
		r2 := g2.Result()
		for k := range r1.Kernels {
			if r1.Kernels[k].Instrs != r2.Kernels[k].Instrs ||
				r1.Kernels[k].L1D.Misses != r2.Kernels[k].L1D.Misses {
				t.Fatalf("trial %d (seed %d): nondeterministic replay", trial, seed)
			}
		}
	}
}

func clone(descs []*kern.Desc) []*kern.Desc {
	out := make([]*kern.Desc, len(descs))
	for i, d := range descs {
		dd := *d
		out[i] = &dd
	}
	return out
}
