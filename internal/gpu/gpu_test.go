package gpu_test

import (
	"testing"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/gpu"
	"repro/internal/kern"
	"repro/internal/sm"
)

func tinyCfg() config.Config { return config.Scaled(2) }

func getKernel(t *testing.T, name string) *kern.Desc {
	t.Helper()
	d, err := kern.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	return &d
}

func TestIsolatedRunProducesWork(t *testing.T) {
	cfg := tinyCfg()
	d := getKernel(t, "bp")
	res, err := gpu.Run(cfg, []*kern.Desc{d}, &gpu.Options{
		Cycles: 20000,
		Quota:  gpu.UniformQuota(cfg.NumSMs, []int{d.MaxTBsPerSM(&cfg)}),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Kernels[0].IPC <= 0 {
		t.Fatal("no progress")
	}
	if res.Kernels[0].L1D.Accesses == 0 {
		t.Fatal("no L1D accesses")
	}
	if res.Cycles != 20000 {
		t.Fatalf("cycles = %d", res.Cycles)
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	cfg := tinyCfg()
	one := func() *kern.Desc { return getKernel(t, "sv") }
	r1, err := gpu.Run(cfg, []*kern.Desc{one()}, &gpu.Options{
		Cycles: 10000, Quota: gpu.UniformQuota(cfg.NumSMs, []int{8}),
	})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := gpu.Run(cfg, []*kern.Desc{one()}, &gpu.Options{
		Cycles: 10000, Quota: gpu.UniformQuota(cfg.NumSMs, []int{8}),
	})
	if err != nil {
		t.Fatal(err)
	}
	if r1.Kernels[0].Instrs != r2.Kernels[0].Instrs ||
		r1.Kernels[0].L1D.Misses != r2.Kernels[0].L1D.Misses ||
		r1.LSUStallCycles != r2.LSUStallCycles {
		t.Fatalf("nondeterministic: %+v vs %+v", r1.Kernels[0], r2.Kernels[0])
	}
}

func TestSeedChangesOutcome(t *testing.T) {
	cfg := tinyCfg()
	d := getKernel(t, "sv")
	r1, _ := gpu.Run(cfg, []*kern.Desc{d}, &gpu.Options{Cycles: 10000, Quota: gpu.UniformQuota(cfg.NumSMs, []int{8})})
	cfg2 := tinyCfg()
	cfg2.Seed = 99
	d2 := getKernel(t, "sv")
	r2, _ := gpu.Run(cfg2, []*kern.Desc{d2}, &gpu.Options{Cycles: 10000, Quota: gpu.UniformQuota(cfg2.NumSMs, []int{8})})
	if r1.Kernels[0].Instrs == r2.Kernels[0].Instrs &&
		r1.Kernels[0].L1D.Misses == r2.Kernels[0].L1D.Misses {
		t.Fatal("different seeds produced identical statistics (suspicious)")
	}
}

func TestConcurrentRunBothProgress(t *testing.T) {
	cfg := tinyCfg()
	a, b := getKernel(t, "bp"), getKernel(t, "sv")
	res, err := gpu.Run(cfg, []*kern.Desc{a, b}, &gpu.Options{
		Cycles: 30000,
		Quota:  gpu.UniformQuota(cfg.NumSMs, []int{6, 6}),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Kernels[0].Instrs == 0 || res.Kernels[1].Instrs == 0 {
		t.Fatalf("a kernel starved entirely: %+v", res.Kernels)
	}
}

func TestSpatialQuotaSeparatesKernels(t *testing.T) {
	cfg := tinyCfg()
	a, b := getKernel(t, "bp"), getKernel(t, "sv")
	descs := []*kern.Desc{a, b}
	quota := core.SpatialQuota(&cfg, descs)
	g, err := gpu.New(cfg, descs, &gpu.Options{Cycles: 10000, Quota: quota})
	if err != nil {
		t.Fatal(err)
	}
	opts := &gpu.Options{Cycles: 10000, Quota: quota}
	g.RunCycles(opts)
	// SM 0 runs kernel 0 only; SM 1 runs kernel 1 only.
	if g.SMs[0].K[1].Instrs != 0 || g.SMs[1].K[0].Instrs != 0 {
		t.Fatal("spatial multitasking leaked kernels across SMs")
	}
	if g.SMs[0].K[0].Instrs == 0 || g.SMs[1].K[1].Instrs == 0 {
		t.Fatal("spatial SMs idle")
	}
}

func TestQuotaValidation(t *testing.T) {
	cfg := tinyCfg()
	d := getKernel(t, "bp")
	if _, err := gpu.New(cfg, []*kern.Desc{d}, &gpu.Options{Cycles: 1, Quota: [][]int{{1}}}); err == nil {
		t.Fatal("quota with wrong row count must be rejected")
	}
	if _, err := gpu.New(cfg, []*kern.Desc{d}, &gpu.Options{
		Cycles: 1, Quota: [][]int{{1, 2}, {1, 2}},
	}); err == nil {
		t.Fatal("quota with wrong column count must be rejected")
	}
}

func TestUCPRepartitions(t *testing.T) {
	cfg := tinyCfg()
	a, b := getKernel(t, "bp"), getKernel(t, "sv")
	descs := []*kern.Desc{a, b}
	opts := &gpu.Options{
		Cycles: 30000,
		Quota:  gpu.UniformQuota(cfg.NumSMs, []int{6, 6}),
		UCP:    gpu.UCPConfig{Enabled: true, Interval: 5000, MinWays: 1},
	}
	g, err := gpu.New(cfg, descs, opts)
	if err != nil {
		t.Fatal(err)
	}
	g.RunCycles(opts)
	part := g.SMs[0].L1.Partition()
	if part == nil {
		t.Fatal("UCP never installed a partition")
	}
	if part[0]+part[1] != cfg.L1D.Ways {
		t.Fatalf("partition %v does not sum to associativity %d", part, cfg.L1D.Ways)
	}
	if part[0] < 1 || part[1] < 1 {
		t.Fatalf("partition %v violates MinWays", part)
	}
}

func TestHookRuns(t *testing.T) {
	cfg := tinyCfg()
	d := getKernel(t, "bp")
	calls := 0
	opts := &gpu.Options{
		Cycles:       5000,
		Quota:        gpu.UniformQuota(cfg.NumSMs, []int{4}),
		Hook:         func(g *gpu.GPU, cycle int64) { calls++ },
		HookInterval: 1000,
	}
	g, err := gpu.New(cfg, []*kern.Desc{d}, opts)
	if err != nil {
		t.Fatal(err)
	}
	g.RunCycles(opts)
	if calls < 4 {
		t.Fatalf("hook ran %d times, want >= 4", calls)
	}
}

func TestPolicyFactoriesPerSM(t *testing.T) {
	cfg := tinyCfg()
	a, b := getKernel(t, "bp"), getKernel(t, "sv")
	built := 0
	opts := &gpu.Options{
		Cycles: 1000,
		Quota:  gpu.UniformQuota(cfg.NumSMs, []int{4, 4}),
		Policies: gpu.PolicyFactory{
			Limiter: func(smID, n int) sm.Limiter {
				built++
				return core.NewDMIL(n)
			},
		},
	}
	if _, err := gpu.Run(cfg, []*kern.Desc{a, b}, opts); err != nil {
		t.Fatal(err)
	}
	if built != cfg.NumSMs {
		t.Fatalf("limiter factory called %d times, want one per SM (%d)", built, cfg.NumSMs)
	}
}

func TestSeriesAggregation(t *testing.T) {
	cfg := tinyCfg()
	d := getKernel(t, "bp")
	res, err := gpu.Run(cfg, []*kern.Desc{d}, &gpu.Options{
		Cycles: 10000,
		Quota:  gpu.UniformQuota(cfg.NumSMs, []int{4}),
		Series: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	ser := res.Kernels[0].Series
	if ser == nil {
		t.Fatal("series missing")
	}
	var tot uint64
	for _, v := range ser.Issued {
		tot += uint64(v)
	}
	if tot != res.Kernels[0].Instrs {
		t.Fatalf("series sums to %d, instrs %d", tot, res.Kernels[0].Instrs)
	}
}

// TestMemorySystemConservation: the machine must not wedge — every
// kernel keeps making progress over a long run with heavy memory
// pressure (deadlock regression test).
func TestNoWedgeUnderPressure(t *testing.T) {
	cfg := tinyCfg()
	a, b := getKernel(t, "ks"), getKernel(t, "ax")
	descs := []*kern.Desc{a, b}
	opts := &gpu.Options{
		Cycles: 40000,
		Quota:  gpu.UniformQuota(cfg.NumSMs, []int{6, 6}),
	}
	g, err := gpu.New(cfg, descs, opts)
	if err != nil {
		t.Fatal(err)
	}
	var last [2]uint64
	for chunk := 0; chunk < 4; chunk++ {
		for i := 0; i < 10000; i++ {
			g.Step()
		}
		r := g.Result()
		for k := 0; k < 2; k++ {
			if r.Kernels[k].Instrs == last[k] {
				t.Fatalf("kernel %d made no progress in chunk %d (wedged?)", k, chunk)
			}
			last[k] = r.Kernels[k].Instrs
		}
	}
}

func TestResultAggregatesAcrossSMs(t *testing.T) {
	cfg := tinyCfg()
	d := getKernel(t, "bp")
	opts := &gpu.Options{Cycles: 5000, Quota: gpu.UniformQuota(cfg.NumSMs, []int{4})}
	g, err := gpu.New(cfg, []*kern.Desc{d}, opts)
	if err != nil {
		t.Fatal(err)
	}
	g.RunCycles(opts)
	r := g.Result()
	var direct uint64
	for _, s := range g.SMs {
		direct += s.K[0].Instrs
	}
	if r.Kernels[0].Instrs != direct {
		t.Fatalf("aggregate %d != sum over SMs %d", r.Kernels[0].Instrs, direct)
	}
	if r.SMCycles != uint64(cfg.NumSMs)*5000 {
		t.Fatalf("SMCycles = %d", r.SMCycles)
	}
}

func TestInvalidConfigRejected(t *testing.T) {
	cfg := tinyCfg()
	cfg.NumSMs = 0
	d := getKernel(t, "bp")
	if _, err := gpu.New(cfg, []*kern.Desc{d}, &gpu.Options{Cycles: 1, Quota: [][]int{}}); err == nil {
		t.Fatal("invalid config must be rejected")
	}
}
