// The invariant watchdog: an optional per-cycle checker asserting the
// simulator's conservation laws while it runs. Shared-resource
// simulators treat interference accounting as an invariant to be
// checked, not assumed — a leaked in-flight counter or a quota that
// never refreshes does not crash the run, it silently corrupts every
// downstream table. With Options.Check enabled, the first violation
// stops the run with a structured error carrying cycle/SM/kernel
// context, which sweep drivers attribute to the one grid point and
// (under -on-error=skip) report without aborting the rest of the grid.
package gpu

import (
	"errors"
	"fmt"

	"repro/internal/sm"
)

// ErrInterrupted is returned (wrapped with the cycle reached) when
// Options.Interrupt stops a run before Options.Cycles complete.
var ErrInterrupted = errors.New("gpu: run interrupted")

// interruptInterval is how often RunCycles polls Options.Interrupt; it
// bounds cancellation latency without a per-cycle branch in the hot
// loop's common case.
const interruptInterval = 1024

// DefaultProgressWindow is the forward-progress deadline: with the
// watchdog enabled, some SM with resident thread blocks must issue at
// least one instruction within this many cycles. Real stalls are
// bounded by DRAM-scale latencies (hundreds of cycles); a window this
// wide only trips on genuine deadlock.
const DefaultProgressWindow = 50_000

// CheckConfig configures the invariant watchdog.
type CheckConfig struct {
	Enabled bool
	// ProgressWindow overrides DefaultProgressWindow when positive.
	ProgressWindow int64
}

// watchdog holds the checker's cross-cycle state.
type watchdog struct {
	window       int64
	lastIssued   uint64
	lastProgress int64
}

func newWatchdog(cfg CheckConfig, start int64) *watchdog {
	w := &watchdog{window: cfg.ProgressWindow, lastProgress: start}
	if w.window <= 0 {
		w.window = DefaultProgressWindow
	}
	return w
}

// check runs every invariant once for the cycle just executed.
func (w *watchdog) check(g *GPU) error {
	c := g.cycle
	for _, s := range g.SMs {
		if err := s.CheckInvariants(c); err != nil {
			return err
		}
	}
	for p, part := range g.parts {
		if got := part.l2.MSHRInUse(); got < 0 || got > g.cfg.L2.MSHRs {
			return &sm.InvariantError{Cycle: c, SM: -1, Kernel: -1, Rule: "l2-mshr-occupancy",
				Detail: fmt.Sprintf("partition %d: MSHRs in use %d outside [0,%d]", p, got, g.cfg.L2.MSHRs)}
		}
		if got := part.l2.MissQueueLen(); got > g.cfg.L2.MissQueue {
			return &sm.InvariantError{Cycle: c, SM: -1, Kernel: -1, Rule: "l2-missq-occupancy",
				Detail: fmt.Sprintf("partition %d: miss queue holds %d entries, capacity %d", p, got, g.cfg.L2.MissQueue)}
		}
	}

	// Forward progress: while any SM holds resident thread blocks, the
	// machine-wide issued-instruction count must advance within the
	// window; otherwise the machine is deadlocked (e.g. a limiter or
	// issue gate that never reopens).
	var total uint64
	resident := false
	for _, s := range g.SMs {
		total += s.IssuedTotal()
		if s.ResidentTBs() {
			resident = true
		}
	}
	if total != w.lastIssued || !resident {
		w.lastIssued = total
		w.lastProgress = c
	} else if c-w.lastProgress >= w.window {
		return &sm.InvariantError{Cycle: c, SM: -1, Kernel: -1, Rule: "no-progress",
			Detail: fmt.Sprintf("no instruction issued for %d cycles with thread blocks resident", c-w.lastProgress)}
	}
	return nil
}
