package gpu_test

import (
	"encoding/json"
	"testing"

	"repro/internal/core"
	"repro/internal/gpu"
	"repro/internal/kern"
	"repro/internal/sm"
	"repro/internal/trace"
)

// parallelWorkload is one determinism scenario: a kernel mix plus the
// option toggles that exercise different engine paths.
type parallelWorkload struct {
	name    string
	kernels []string
	cycles  int64
	full    bool // Trace + Series + Check on
}

// runWorkload executes the workload with the given worker count and
// returns the marshalled RunResult plus the rendered trace (empty when
// tracing is off).
func runWorkload(t *testing.T, w parallelWorkload, workers int) (string, string) {
	t.Helper()
	cfg := tinyCfg()
	descs := make([]*kern.Desc, 0, len(w.kernels))
	for _, n := range w.kernels {
		descs = append(descs, getKernel(t, n))
	}
	quota := make([]int, len(descs))
	for i, d := range descs {
		q := d.MaxTBsPerSM(&cfg) / len(descs)
		if q < 1 {
			q = 1
		}
		quota[i] = q
	}
	o := &gpu.Options{
		Cycles:  w.cycles,
		Quota:   gpu.UniformQuota(cfg.NumSMs, quota),
		Workers: workers,
	}
	if w.full {
		o.Trace = trace.New(1 << 12)
		o.Series = true
		o.Check = gpu.CheckConfig{Enabled: true}
	}
	res, err := gpu.Run(cfg, descs, o)
	if err != nil {
		t.Fatalf("%s workers=%d: %v", w.name, workers, err)
	}
	js, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	var tr string
	if o.Trace != nil {
		tr = trace.Render(o.Trace.Snapshot())
	}
	return string(js), tr
}

// TestParallelStepMatchesSerial is the engine's core determinism
// contract: for any worker count a run produces byte-identical results
// — the same stats.RunResult JSON and the same rendered trace — as the
// serial (Workers=1) run. Three workloads cover single-kernel,
// concurrent kernel execution, and the fully instrumented path
// (tracing, time series, invariant watchdog). Run under -race this also
// proves the SM phase shares no mutable state across workers.
func TestParallelStepMatchesSerial(t *testing.T) {
	workloads := []parallelWorkload{
		{name: "1kernel", kernels: []string{"bp"}, cycles: 6000},
		{name: "2kernelCKE", kernels: []string{"bp", "sv"}, cycles: 6000},
		{name: "2kernelCKE-full", kernels: []string{"sv", "cd"}, cycles: 6000, full: true},
	}
	for _, w := range workloads {
		t.Run(w.name, func(t *testing.T) {
			baseJS, baseTr := runWorkload(t, w, 1)
			for _, workers := range []int{2, 8} {
				js, tr := runWorkload(t, w, workers)
				if js != baseJS {
					t.Errorf("workers=%d: RunResult diverged from serial\nserial:   %s\nparallel: %s", workers, baseJS, js)
				}
				if tr != baseTr {
					t.Errorf("workers=%d: trace diverged from serial", workers)
				}
			}
		})
	}
}

// TestSharedPolicyClampsWorkers: a limiter instance shared across SMs
// (the paper's global DMIL variant) would race if SMs ticked
// concurrently, so the engine must detect instance sharing and fall
// back to serial ticking.
func TestSharedPolicyClampsWorkers(t *testing.T) {
	cfg := tinyCfg()
	d := getKernel(t, "sv")
	shared := core.NewGlobalDMIL(1)
	g, err := gpu.New(cfg, []*kern.Desc{d}, &gpu.Options{
		Cycles: 100,
		Quota:  gpu.UniformQuota(cfg.NumSMs, []int{4}),
		Policies: gpu.PolicyFactory{
			Limiter: func(smID, n int) sm.Limiter { return shared },
		},
		Workers: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	if g.Workers() != 1 {
		t.Fatalf("Workers() = %d with a shared limiter, want 1", g.Workers())
	}

	// Per-SM instances must keep the requested parallelism.
	g2, err := gpu.New(cfg, []*kern.Desc{d}, &gpu.Options{
		Cycles: 100,
		Quota:  gpu.UniformQuota(cfg.NumSMs, []int{4}),
		Policies: gpu.PolicyFactory{
			Limiter: func(smID, n int) sm.Limiter { return core.NewDMIL(1) },
		},
		Workers: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer g2.Close()
	if g2.Workers() != 2 {
		t.Fatalf("Workers() = %d with per-SM limiters, want 2", g2.Workers())
	}
}
