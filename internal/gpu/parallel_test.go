package gpu_test

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/gpu"
	"repro/internal/kern"
	"repro/internal/sm"
	"repro/internal/trace"
)

// parallelWorkload is one determinism scenario: a kernel mix plus the
// option toggles that exercise different engine paths.
type parallelWorkload struct {
	name    string
	kernels []string
	cycles  int64
	full    bool // Trace + Series + Check on
	ckpt    bool // Trace + periodic encoded checkpoints, digest-compared
}

// runWorkload executes the workload with the given SM and partition
// worker counts and returns the marshalled RunResult, the rendered
// trace (empty when tracing is off), and a digest over every encoded
// mid-run checkpoint (empty when checkpointing is off).
func runWorkload(t *testing.T, w parallelWorkload, workers, partWorkers int) (string, string, string) {
	t.Helper()
	cfg := tinyCfg()
	descs := make([]*kern.Desc, 0, len(w.kernels))
	for _, n := range w.kernels {
		descs = append(descs, getKernel(t, n))
	}
	quota := make([]int, len(descs))
	for i, d := range descs {
		q := d.MaxTBsPerSM(&cfg) / len(descs)
		if q < 1 {
			q = 1
		}
		quota[i] = q
	}
	o := &gpu.Options{
		Cycles:      w.cycles,
		Quota:       gpu.UniformQuota(cfg.NumSMs, quota),
		Workers:     workers,
		PartWorkers: partWorkers,
	}
	if w.full {
		o.Trace = trace.New(1 << 12)
		o.Series = true
		o.Check = gpu.CheckConfig{Enabled: true}
	}
	ckptHash := sha256.New()
	if w.ckpt {
		o.Trace = trace.New(1 << 12)
		o.CheckpointEvery = w.cycles / 3
		o.Checkpoint = func(g *gpu.GPU, cycle int64) error {
			sn, err := g.SnapshotCheckpoint()
			if err != nil {
				return err
			}
			data, err := gpu.EncodeSnapshot(sn)
			if err != nil {
				return err
			}
			ckptHash.Write(data)
			return nil
		}
	}
	res, err := gpu.Run(cfg, descs, o)
	if err != nil {
		t.Fatalf("%s workers=%d partWorkers=%d: %v", w.name, workers, partWorkers, err)
	}
	js, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	var tr string
	if o.Trace != nil {
		tr = trace.Render(o.Trace.Snapshot())
	}
	var ck string
	if w.ckpt {
		ck = hex.EncodeToString(ckptHash.Sum(nil))
	}
	return string(js), tr, ck
}

// TestParallelStepMatchesSerial is the engine's core determinism
// contract: for every (SM workers, partition workers) combination a run
// produces byte-identical results — the same stats.RunResult JSON, the
// same rendered trace, the same encoded checkpoint bytes — as the fully
// serial (1,1) run. Any combination beyond (1,1) also enables the
// pipelined step, which overlaps the memory side of cycle N with the SM
// phase of cycle N+1, so the matrix exercises staging, commits, and the
// flush discipline at checkpoints. Run under -race this also proves the
// phases share no mutable state across workers.
func TestParallelStepMatchesSerial(t *testing.T) {
	workloads := []parallelWorkload{
		{name: "1kernel", kernels: []string{"bp"}, cycles: 6000},
		{name: "2kernelCKE", kernels: []string{"bp", "sv"}, cycles: 6000},
		{name: "2kernelCKE-full", kernels: []string{"sv", "cd"}, cycles: 6000, full: true},
		{name: "2kernelCKE-trace-ckpt", kernels: []string{"bp", "cd"}, cycles: 6000, ckpt: true},
	}
	counts := []int{1, 2, 8}
	for _, w := range workloads {
		t.Run(w.name, func(t *testing.T) {
			baseJS, baseTr, baseCk := runWorkload(t, w, 1, 1)
			for _, workers := range counts {
				for _, partWorkers := range counts {
					if workers == 1 && partWorkers == 1 {
						continue
					}
					js, tr, ck := runWorkload(t, w, workers, partWorkers)
					label := fmt.Sprintf("workers=%d partWorkers=%d", workers, partWorkers)
					if js != baseJS {
						t.Errorf("%s: RunResult diverged from serial\nserial:   %s\nparallel: %s", label, baseJS, js)
					}
					if tr != baseTr {
						t.Errorf("%s: trace diverged from serial", label)
					}
					if ck != baseCk {
						t.Errorf("%s: encoded checkpoints diverged from serial", label)
					}
				}
			}
		})
	}
}

// TestSnapshotMidPipelineRestoreContinue: snapshot a machine mid-run
// while the pipelined engine is active, restore it into a fresh machine
// with different worker counts, continue both to the same horizon, and
// require byte-identical results — also against an uninterrupted serial
// run. This pins the flush discipline: a snapshot taken between
// pipelined steps must capture exactly the serial machine state.
func TestSnapshotMidPipelineRestoreContinue(t *testing.T) {
	cfg := tinyCfg()
	descs := []*kern.Desc{getKernel(t, "bp"), getKernel(t, "sv")}
	quota := gpu.UniformQuota(cfg.NumSMs, []int{2, 2})
	const split, total = 2500, 6000

	run := func(workers, partWorkers int, cycles int64, from *gpu.Snapshot) (*gpu.GPU, string) {
		t.Helper()
		o := &gpu.Options{Quota: quota, Workers: workers, PartWorkers: partWorkers}
		g, err := gpu.New(cfg, descs, o)
		if err != nil {
			t.Fatal(err)
		}
		if from != nil {
			if err := g.Restore(from); err != nil {
				t.Fatal(err)
			}
		}
		o.Cycles = cycles
		if err := g.RunCycles(o); err != nil {
			t.Fatal(err)
		}
		js, err := json.Marshal(g.Result())
		if err != nil {
			t.Fatal(err)
		}
		return g, string(js)
	}

	// Uninterrupted serial reference.
	gRef, want := run(1, 1, total, nil)
	gRef.Close()

	// Pipelined run to the split point, snapshot, continue.
	oA := &gpu.Options{Cycles: split, Quota: quota, Workers: 2, PartWorkers: 2}
	gA, err := gpu.New(cfg, descs, oA)
	if err != nil {
		t.Fatal(err)
	}
	defer gA.Close()
	if err := gA.RunCycles(oA); err != nil {
		t.Fatal(err)
	}
	sn, err := gA.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	oA.Cycles = total - split
	if err := gA.RunCycles(oA); err != nil {
		t.Fatal(err)
	}
	jsA, err := json.Marshal(gA.Result())
	if err != nil {
		t.Fatal(err)
	}
	if string(jsA) != want {
		t.Errorf("pipelined snapshot+continue diverged from serial\nserial:  %s\nresumed: %s", want, jsA)
	}

	// Restore the mid-pipeline snapshot into a machine with different
	// worker counts and continue to the same horizon.
	gB, got := run(8, 1, total-split, sn)
	defer gB.Close()
	if got != want {
		t.Errorf("restored continuation diverged from serial\nserial:   %s\nrestored: %s", want, got)
	}
}

// TestSharedPolicyClampsWorkers: a limiter instance shared across SMs
// (the paper's global DMIL variant) would race if SMs ticked
// concurrently, so the engine must detect instance sharing and fall
// back to serial ticking. Partition workers are unaffected: policies
// live on the SM side only.
func TestSharedPolicyClampsWorkers(t *testing.T) {
	cfg := tinyCfg()
	d := getKernel(t, "sv")
	shared := core.NewGlobalDMIL(1)
	g, err := gpu.New(cfg, []*kern.Desc{d}, &gpu.Options{
		Cycles: 100,
		Quota:  gpu.UniformQuota(cfg.NumSMs, []int{4}),
		Policies: gpu.PolicyFactory{
			Limiter: func(smID, n int) sm.Limiter { return shared },
		},
		Workers:     8,
		PartWorkers: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	if g.Workers() != 1 {
		t.Fatalf("Workers() = %d with a shared limiter, want 1", g.Workers())
	}
	if g.PartWorkers() < 1 {
		t.Fatalf("PartWorkers() = %d, want >= 1", g.PartWorkers())
	}

	// Per-SM instances must keep the requested parallelism.
	g2, err := gpu.New(cfg, []*kern.Desc{d}, &gpu.Options{
		Cycles: 100,
		Quota:  gpu.UniformQuota(cfg.NumSMs, []int{4}),
		Policies: gpu.PolicyFactory{
			Limiter: func(smID, n int) sm.Limiter { return core.NewDMIL(1) },
		},
		Workers: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer g2.Close()
	if g2.Workers() != 2 {
		t.Fatalf("Workers() = %d with per-SM limiters, want 2", g2.Workers())
	}
}
