package gpu_test

import (
	"encoding/json"
	"testing"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/gpu"
	"repro/internal/kern"
	"repro/internal/sm"
	"repro/internal/trace"
)

// snapshotOpts builds the Options for the snapshot determinism tests:
// fully instrumented (trace, series, watchdog) when full is set, so the
// snapshot has to carry series buckets and survive invariant checking.
func snapshotOpts(cfg *config.Config, descs []*kern.Desc, totalCycles int64, workers int, full bool) *gpu.Options {
	quota := make([]int, len(descs))
	for i, d := range descs {
		q := d.MaxTBsPerSM(cfg) / len(descs)
		if q < 1 {
			q = 1
		}
		quota[i] = q
	}
	o := &gpu.Options{
		Cycles:  totalCycles,
		Quota:   gpu.UniformQuota(cfg.NumSMs, quota),
		Workers: workers,
	}
	if full {
		o.Trace = trace.New(1 << 16)
		o.Series = true
		o.Check = gpu.CheckConfig{Enabled: true}
	}
	return o
}

// TestSnapshotRestoreContinueMatchesUninterrupted is the snapshot
// layer's core contract: run-to-N, snapshot, restore into a *fresh*
// machine and continue must be byte-identical (same stats.RunResult
// JSON, same post-snapshot trace events) to an uninterrupted run — for
// serial and parallel engines, with the machine fully instrumented.
//
// The restore happens only after the snapshotted machine has itself run
// to completion: by then every request that was in flight at the
// snapshot point has been retired, released and pool-poisoned, and its
// storage reused — so this test also proves release-time poisoning
// never reaches into a taken snapshot (the copy-on-snapshot
// discipline). Run under -race it additionally proves the restored
// machine shares no storage with the snapshot source.
func TestSnapshotRestoreContinueMatchesUninterrupted(t *testing.T) {
	const warm, cont = 4000, 4000
	for _, tc := range []struct {
		name    string
		kernels []string
		full    bool
	}{
		{name: "plain", kernels: []string{"bp", "sv"}},
		{name: "instrumented", kernels: []string{"sv", "cd"}, full: true},
	} {
		for _, workers := range []int{1, 8} {
			t.Run(tc.name+"/workers="+itoa(workers), func(t *testing.T) {
				cfg := tinyCfg()
				descs := make([]*kern.Desc, 0, len(tc.kernels))
				for _, n := range tc.kernels {
					descs = append(descs, getKernel(t, n))
				}
				// Reference: one uninterrupted run.
				oA := snapshotOpts(&cfg, descs, warm+cont, workers, tc.full)
				gA, err := gpu.New(cfg, descs, oA)
				if err != nil {
					t.Fatal(err)
				}
				defer gA.Close()
				if err := gA.RunCycles(oA); err != nil {
					t.Fatal(err)
				}
				refJS := marshalResult(t, gA)
				var refSuffix string
				if oA.Trace != nil {
					refSuffix = renderSince(oA.Trace, warm)
				}

				// Snapshotted run: warm leg, snapshot, continue leg.
				oB := snapshotOpts(&cfg, descs, warm+cont, workers, tc.full)
				gB, err := gpu.New(cfg, descs, oB)
				if err != nil {
					t.Fatal(err)
				}
				defer gB.Close()
				legWarm := *oB
				legWarm.Cycles = warm
				if err := gB.RunCycles(&legWarm); err != nil {
					t.Fatal(err)
				}
				sn, err := gB.Snapshot()
				if err != nil {
					t.Fatal(err)
				}
				if sn.Cycle() != warm {
					t.Fatalf("snapshot cycle = %d, want %d", sn.Cycle(), warm)
				}
				if sn.Bytes() <= 0 {
					t.Fatalf("snapshot Bytes() = %d, want > 0", sn.Bytes())
				}
				legCont := *oB
				legCont.Cycles = cont
				if err := gB.RunCycles(&legCont); err != nil {
					t.Fatal(err)
				}
				// Taking the snapshot must not perturb the run.
				if js := marshalResult(t, gB); js != refJS {
					t.Fatalf("snapshotted run diverged from uninterrupted run\nref: %s\ngot: %s", refJS, js)
				}

				// Restored run: a fresh machine seeded from the snapshot.
				// gB has fully retired (and pool-poisoned) the requests
				// that were in flight at the snapshot point by now.
				oC := snapshotOpts(&cfg, descs, warm+cont, workers, tc.full)
				gC, err := gpu.New(cfg, descs, oC)
				if err != nil {
					t.Fatal(err)
				}
				defer gC.Close()
				if err := gC.Restore(sn); err != nil {
					t.Fatal(err)
				}
				legC := *oC
				legC.Cycles = cont
				if err := gC.RunCycles(&legC); err != nil {
					t.Fatal(err)
				}
				if js := marshalResult(t, gC); js != refJS {
					t.Fatalf("restored run diverged from uninterrupted run\nref: %s\ngot: %s", refJS, js)
				}
				if oC.Trace != nil {
					if got := renderSince(oC.Trace, warm); got != refSuffix {
						t.Errorf("restored run's trace diverged from the uninterrupted run's post-snapshot events")
					}
				}

				// A second restore from the same snapshot must work too
				// (one snapshot seeds many family members).
				gD, err := gpu.New(cfg, descs, snapshotOpts(&cfg, descs, warm+cont, workers, tc.full))
				if err != nil {
					t.Fatal(err)
				}
				defer gD.Close()
				if err := gD.Restore(sn); err != nil {
					t.Fatal(err)
				}
				legD := *oC
				legD.Trace = nil
				legD.Cycles = cont
				if err := gD.RunCycles(&legD); err != nil {
					t.Fatal(err)
				}
			})
		}
	}
}

// TestSnapshotRejectsStatefulPolicies: policy objects can hold cross-SM
// state outside the engine's object graph, so snapshotting a managed
// machine must fail loudly instead of producing a silently torn copy.
func TestSnapshotRejectsStatefulPolicies(t *testing.T) {
	cfg := tinyCfg()
	d := getKernel(t, "sv")
	g, err := gpu.New(cfg, []*kern.Desc{d}, &gpu.Options{
		Cycles: 100,
		Quota:  gpu.UniformQuota(cfg.NumSMs, []int{4}),
		Policies: gpu.PolicyFactory{
			Limiter: func(smID, n int) sm.Limiter { return core.NewDMIL(1) },
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	if _, err := g.Snapshot(); err == nil {
		t.Fatal("Snapshot() succeeded with a stateful limiter installed")
	}
}

// TestInstallPoliciesAfterWarmup: the warm-then-manage sequence — build
// unmanaged, run, install stateful policies, keep running — must work
// and re-arm the snapshot guard.
func TestInstallPoliciesAfterWarmup(t *testing.T) {
	cfg := tinyCfg()
	descs := []*kern.Desc{getKernel(t, "bp"), getKernel(t, "sv")}
	o := &gpu.Options{
		Cycles: 4000,
		Quota:  gpu.UniformQuota(cfg.NumSMs, []int{2, 2}),
	}
	g, err := gpu.New(cfg, descs, o)
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	warm := *o
	warm.Cycles = 2000
	if err := g.RunCycles(&warm); err != nil {
		t.Fatal(err)
	}
	if _, err := g.Snapshot(); err != nil {
		t.Fatalf("unmanaged snapshot failed: %v", err)
	}
	managed := *o
	managed.Cycles = 2000
	managed.Policies = gpu.PolicyFactory{
		Limiter: func(smID, n int) sm.Limiter { return core.NewDMIL(n) },
	}
	g.InstallPolicies(&managed)
	if err := g.RunCycles(&managed); err != nil {
		t.Fatal(err)
	}
	if _, err := g.Snapshot(); err == nil {
		t.Fatal("Snapshot() succeeded after stateful policies were installed")
	}
	if got := g.Result().Cycles; got != 4000 {
		t.Fatalf("cycles after two legs = %d, want 4000", got)
	}
}

// TestRestoreGeometryMismatch: restoring into a machine with a
// different shape must fail instead of corrupting it.
func TestRestoreGeometryMismatch(t *testing.T) {
	cfg := tinyCfg()
	d := getKernel(t, "bp")
	o := &gpu.Options{Cycles: 500, Quota: gpu.UniformQuota(cfg.NumSMs, []int{2})}
	g, err := gpu.New(cfg, []*kern.Desc{d}, o)
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	if err := g.RunCycles(o); err != nil {
		t.Fatal(err)
	}
	sn, err := g.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	// Two kernel slots instead of one: per-kernel state widths differ.
	g2, err := gpu.New(cfg, []*kern.Desc{d, getKernel(t, "sv")}, &gpu.Options{
		Cycles: 500, Quota: gpu.UniformQuota(cfg.NumSMs, []int{1, 1}),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer g2.Close()
	if err := g2.Restore(sn); err == nil {
		t.Fatal("Restore() succeeded across mismatched kernel-slot counts")
	}
}

func marshalResult(t *testing.T, g *gpu.GPU) string {
	t.Helper()
	js, err := json.Marshal(g.Result())
	if err != nil {
		t.Fatal(err)
	}
	return string(js)
}

// renderSince renders the buffered trace events at or after cycle.
func renderSince(buf *trace.Buffer, cycle int64) string {
	var kept []trace.Event
	for _, e := range buf.Snapshot() {
		if e.Cycle >= cycle {
			kept = append(kept, e)
		}
	}
	return trace.Render(kept)
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [8]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}
