package gpu_test

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/gpu"
	"repro/internal/kern"
	"repro/internal/sm"
)

func watchdogWorkload(t *testing.T) (config.Config, []*kern.Desc, *gpu.Options) {
	t.Helper()
	cfg := config.Scaled(1)
	bp, err := kern.ByName("bp")
	if err != nil {
		t.Fatal(err)
	}
	sv, err := kern.ByName("sv")
	if err != nil {
		t.Fatal(err)
	}
	descs := []*kern.Desc{&bp, &sv}
	opts := &gpu.Options{
		Cycles: 20_000,
		Quota:  gpu.UniformQuota(cfg.NumSMs, core.EvenQuota(&cfg, descs)),
	}
	return cfg, descs, opts
}

// TestWatchdogCleanOnHealthyRuns guards against false positives: the
// checker must stay silent across the mechanism configurations the
// paper evaluates.
func TestWatchdogCleanOnHealthyRuns(t *testing.T) {
	for _, tc := range []struct {
		name  string
		setup func(o *gpu.Options, n int)
	}{
		{"baseline", func(o *gpu.Options, n int) {}},
		{"qbmi", func(o *gpu.Options, n int) {
			o.Policies.MemPolicy = func(smID, nk int) sm.MemIssuePolicy { return core.NewQBMI(nk, nil) }
		}},
		{"dmil", func(o *gpu.Options, n int) {
			o.Policies.Limiter = func(smID, nk int) sm.Limiter { return core.NewDMIL(nk) }
		}},
		{"smil", func(o *gpu.Options, n int) {
			o.Policies.Limiter = func(smID, nk int) sm.Limiter { return core.NewSMIL([]int{4, 8}) }
		}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			cfg, descs, opts := watchdogWorkload(t)
			tc.setup(opts, len(descs))
			opts.Check = gpu.CheckConfig{Enabled: true}
			res, err := gpu.Run(cfg, descs, opts)
			if err != nil {
				t.Fatalf("healthy run flagged: %v", err)
			}
			if res.Kernels[0].Instrs == 0 {
				t.Fatal("no progress; nothing exercised")
			}
		})
	}
}

// blockedGate admits no instruction from any kernel: with thread blocks
// resident and the gate shut, the machine makes no progress — the
// watchdog's deadlock rule must fire.
type blockedGate struct{}

func (blockedGate) CanIssue(kernel int) bool { return false }
func (blockedGate) OnIssue(kernel int)       {}
func (blockedGate) Tick(cycle int64)         {}

func TestWatchdogDetectsNoProgress(t *testing.T) {
	cfg, descs, opts := watchdogWorkload(t)
	opts.Policies.Gate = func(smID, n int) sm.IssueGate { return blockedGate{} }
	opts.Check = gpu.CheckConfig{Enabled: true, ProgressWindow: 2_000}
	_, err := gpu.Run(cfg, descs, opts)
	var ie *sm.InvariantError
	if !errors.As(err, &ie) {
		t.Fatalf("deadlocked machine not detected: err=%v", err)
	}
	if ie.Rule != "no-progress" {
		t.Fatalf("rule = %q, want no-progress", ie.Rule)
	}
	if ie.Cycle < 2_000 || ie.Cycle > 4_000 {
		t.Fatalf("violation cycle %d outside expected window", ie.Cycle)
	}
}

// corruptPolicy reports an internal invariant violation after a fixed
// number of issues — the injection seam for testing the reporting path.
type corruptPolicy struct{ issues, failAfter int }

func (p *corruptPolicy) Pick(kernels []int) int   { return 0 }
func (p *corruptPolicy) OnIssue(kernel, reqs int) { p.issues++ }
func (p *corruptPolicy) CheckInvariant() error {
	if p.issues >= p.failAfter {
		return fmt.Errorf("injected: quota conservation broken after %d issues", p.issues)
	}
	return nil
}

func TestWatchdogSurfacesInjectedPolicyViolation(t *testing.T) {
	cfg, descs, opts := watchdogWorkload(t)
	opts.Policies.MemPolicy = func(smID, n int) sm.MemIssuePolicy {
		return &corruptPolicy{failAfter: 50}
	}
	opts.Check = gpu.CheckConfig{Enabled: true}
	_, err := gpu.Run(cfg, descs, opts)
	var ie *sm.InvariantError
	if !errors.As(err, &ie) {
		t.Fatalf("injected violation not surfaced: err=%v", err)
	}
	if ie.Rule != "mem-policy" || ie.SM < 0 {
		t.Fatalf("violation context wrong: %+v", ie)
	}
}

func TestRunCyclesInterrupt(t *testing.T) {
	cfg, descs, opts := watchdogWorkload(t)
	opts.Cycles = 1_000_000
	stop := false
	cycles := 0
	opts.Interrupt = func() bool { cycles++; return stop }
	g, err := gpu.New(cfg, descs, opts)
	if err != nil {
		t.Fatal(err)
	}
	// Let a few polls pass, then trip the interrupt via the hook.
	opts.Hook = func(gg *gpu.GPU, cycle int64) {
		if cycle >= 10_000 {
			stop = true
		}
	}
	opts.HookInterval = 1_000
	err = g.RunCycles(opts)
	if !errors.Is(err, gpu.ErrInterrupted) {
		t.Fatalf("err = %v, want ErrInterrupted", err)
	}
	if g.Cycle() < 10_000 || g.Cycle() > 12_000 {
		t.Fatalf("interrupted at cycle %d, want shortly after 10k", g.Cycle())
	}
	// A non-interrupted run completes and returns nil.
	opts2 := &gpu.Options{Cycles: 5_000, Quota: opts.Quota,
		Interrupt: func() bool { return false }}
	g2, err := gpu.New(cfg, descs, opts2)
	if err != nil {
		t.Fatal(err)
	}
	if err := g2.RunCycles(opts2); err != nil {
		t.Fatalf("uninterrupted run errored: %v", err)
	}
}
