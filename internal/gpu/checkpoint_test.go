package gpu_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/gpu"
	"repro/internal/kern"
	"repro/internal/sm"
)

// TestCheckpointRestoreContinueMatchesUninterrupted is the checkpoint
// layer's core contract and the piece the fork-path snapshot cannot do:
// with STATEFUL policies installed (the sweep grid's SMIL, the dynamic
// DMIL, a cross-SM shared GlobalDMIL), run-to-N → SnapshotCheckpoint →
// encode to bytes → decode → restore into a freshly built machine with
// the same factories → continue must be byte-identical to an
// uninterrupted run. This is exactly the crash-resume path: the bytes
// are what the ckpt store persists and a different process reloads.
func TestCheckpointRestoreContinueMatchesUninterrupted(t *testing.T) {
	const warm, cont = 4000, 4000
	// Each machine build gets FRESH policy instances (factories returns a
	// new factory set per call) — sharing one GlobalDMIL between the
	// reference and the checkpointed machine would leak state across runs.
	for _, tc := range []struct {
		name      string
		factories func() gpu.PolicyFactory
	}{
		{name: "static", factories: func() gpu.PolicyFactory {
			return gpu.PolicyFactory{Limiter: func(smID, n int) sm.Limiter { return core.NewSMIL([]int{3, 3}) }}
		}},
		{name: "dmil", factories: func() gpu.PolicyFactory {
			return gpu.PolicyFactory{Limiter: func(smID, n int) sm.Limiter { return core.NewDMIL(n) }}
		}},
		{name: "qbmi", factories: func() gpu.PolicyFactory {
			return gpu.PolicyFactory{MemPolicy: func(smID, n int) sm.MemIssuePolicy { return core.NewQBMI(n, nil) }}
		}},
		{name: "shared-global-dmil", factories: func() gpu.PolicyFactory {
			g := core.NewGlobalDMIL(2)
			return gpu.PolicyFactory{Limiter: func(smID, n int) sm.Limiter { return g }}
		}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			cfg := tinyCfg()
			descs := []*kern.Desc{getKernel(t, "bp"), getKernel(t, "sv")}
			mkOpts := func() *gpu.Options {
				o := snapshotOpts(&cfg, descs, warm+cont, 1, false)
				o.Policies = tc.factories()
				return o
			}

			// Reference: one uninterrupted managed run.
			oA := mkOpts()
			gA, err := gpu.New(cfg, descs, oA)
			if err != nil {
				t.Fatal(err)
			}
			defer gA.Close()
			if err := gA.RunCycles(oA); err != nil {
				t.Fatal(err)
			}
			refJS := marshalResult(t, gA)

			// Checkpointed run: warm leg, checkpoint through the byte
			// codec, continue on the original machine.
			oB := mkOpts()
			gB, err := gpu.New(cfg, descs, oB)
			if err != nil {
				t.Fatal(err)
			}
			defer gB.Close()
			legWarm := *oB
			legWarm.Cycles = warm
			if err := gB.RunCycles(&legWarm); err != nil {
				t.Fatal(err)
			}
			sn, err := gB.SnapshotCheckpoint()
			if err != nil {
				t.Fatal(err)
			}
			blob, err := gpu.EncodeSnapshot(sn)
			if err != nil {
				t.Fatal(err)
			}
			legCont := *oB
			legCont.Cycles = cont
			if err := gB.RunCycles(&legCont); err != nil {
				t.Fatal(err)
			}
			if js := marshalResult(t, gB); js != refJS {
				t.Fatalf("checkpointed run diverged from uninterrupted run\nref: %s\ngot: %s", refJS, js)
			}

			// Resumed run: a fresh machine (fresh policy instances from
			// the same factories) fed the decoded checkpoint.
			dec, err := gpu.DecodeSnapshot(blob)
			if err != nil {
				t.Fatal(err)
			}
			if dec.Cycle() != warm {
				t.Fatalf("decoded checkpoint cycle = %d, want %d", dec.Cycle(), warm)
			}
			oC := mkOpts()
			gC, err := gpu.New(cfg, descs, oC)
			if err != nil {
				t.Fatal(err)
			}
			defer gC.Close()
			if err := gC.RestoreCheckpoint(dec); err != nil {
				t.Fatal(err)
			}
			legC := *oC
			legC.Cycles = cont
			if err := gC.RunCycles(&legC); err != nil {
				t.Fatal(err)
			}
			if js := marshalResult(t, gC); js != refJS {
				t.Fatalf("resumed run diverged from uninterrupted run\nref: %s\ngot: %s", refJS, js)
			}
		})
	}
}

// TestCheckpointSinkFires: RunCycles calls the Checkpoint sink at every
// multiple of CheckpointEvery, and a sink error disables further
// checkpoints without failing the run.
func TestCheckpointSinkFires(t *testing.T) {
	cfg := tinyCfg()
	descs := []*kern.Desc{getKernel(t, "bp")}
	var fired []int64
	o := snapshotOpts(&cfg, descs, 5000, 1, false)
	o.CheckpointEvery = 1000
	o.Checkpoint = func(g *gpu.GPU, cycle int64) error {
		fired = append(fired, cycle)
		return nil
	}
	g, err := gpu.New(cfg, descs, o)
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	if err := g.RunCycles(o); err != nil {
		t.Fatal(err)
	}
	want := []int64{1000, 2000, 3000, 4000, 5000}
	if len(fired) != len(want) {
		t.Fatalf("sink fired at %v, want %v", fired, want)
	}
	for i := range want {
		if fired[i] != want[i] {
			t.Fatalf("sink fired at %v, want %v", fired, want)
		}
	}

	// A failing sink disables checkpointing, not the run.
	fails := 0
	o2 := snapshotOpts(&cfg, descs, 5000, 1, false)
	o2.CheckpointEvery = 1000
	o2.Checkpoint = func(g *gpu.GPU, cycle int64) error {
		fails++
		return errSink
	}
	g2, err := gpu.New(cfg, descs, o2)
	if err != nil {
		t.Fatal(err)
	}
	defer g2.Close()
	if err := g2.RunCycles(o2); err != nil {
		t.Fatal(err)
	}
	if fails != 1 {
		t.Fatalf("failing sink called %d times, want 1 (then disabled)", fails)
	}
	if got := g2.Result().Cycles; got != 5000 {
		t.Fatalf("run stopped at %d cycles after sink failure, want 5000", got)
	}
}

// TestRestoreCheckpointShapeMismatch: a checkpoint taken under one
// policy scheme must not restore into a machine managed by another, and
// a fork-path snapshot (no policy state) must not restore as a
// checkpoint.
func TestRestoreCheckpointShapeMismatch(t *testing.T) {
	cfg := tinyCfg()
	descs := []*kern.Desc{getKernel(t, "bp"), getKernel(t, "sv")}
	o := snapshotOpts(&cfg, descs, 2000, 1, false)
	o.Policies = gpu.PolicyFactory{
		Limiter: func(smID, n int) sm.Limiter { return core.NewDMIL(n) },
	}
	g, err := gpu.New(cfg, descs, o)
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	if err := g.RunCycles(o); err != nil {
		t.Fatal(err)
	}
	sn, err := g.SnapshotCheckpoint()
	if err != nil {
		t.Fatal(err)
	}

	// Unmanaged machine: stateful blob has no instance to land in.
	oU := snapshotOpts(&cfg, descs, 2000, 1, false)
	gU, err := gpu.New(cfg, descs, oU)
	if err != nil {
		t.Fatal(err)
	}
	defer gU.Close()
	if err := gU.RestoreCheckpoint(sn); err == nil {
		t.Fatal("checkpoint with policy state restored into an unmanaged machine")
	}

	// Fork-path snapshot into RestoreCheckpoint: refused.
	forkSn, err := gU.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if err := gU.RestoreCheckpoint(forkSn); err == nil {
		t.Fatal("fork-path snapshot accepted by RestoreCheckpoint")
	}
}

var errSink = &sinkErr{}

type sinkErr struct{}

func (*sinkErr) Error() string { return "sink unavailable" }
