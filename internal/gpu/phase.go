// Per-phase wall-time accounting for the cycle engine. With
// Options.PhaseTime enabled, the engine records how long each phase of
// the cycle — SM tick, outbound drain, request-network tick, partition
// tick, response-network tick — spends executing, so Amdahl breakdowns
// ("where would another worker help?") are measured instead of guessed.
//
// In pipelined mode the memory-side phases run on the mem goroutine
// concurrently with the SM phase of the next cycle, so the per-phase
// sums may legitimately exceed wall-clock time; the gap between the two
// is the overlap the pipeline bought. Counter reads synchronize through
// the pipeline flush barrier, never concurrently with a running cycle.
package gpu

import "sync/atomic"

// PhaseStats is cumulative per-phase execution time in nanoseconds,
// plus the number of cycles measured. Sums exceed wall-clock when
// phases overlap across cycles.
type PhaseStats struct {
	Cycles    int64 `json:"cycles"`
	SMNs      int64 `json:"sm_ns"`
	DrainNs   int64 `json:"drain_ns"`
	ReqNetNs  int64 `json:"reqnet_ns"`
	PartNs    int64 `json:"partition_ns"`
	RespNetNs int64 `json:"respnet_ns"`
}

// sub returns the component-wise difference s - o.
func (s PhaseStats) sub(o PhaseStats) PhaseStats {
	return PhaseStats{
		Cycles:    s.Cycles - o.Cycles,
		SMNs:      s.SMNs - o.SMNs,
		DrainNs:   s.DrainNs - o.DrainNs,
		ReqNetNs:  s.ReqNetNs - o.ReqNetNs,
		PartNs:    s.PartNs - o.PartNs,
		RespNetNs: s.RespNetNs - o.RespNetNs,
	}
}

// TotalNs returns the summed execution time across phases.
func (s PhaseStats) TotalNs() int64 {
	return s.SMNs + s.DrainNs + s.ReqNetNs + s.PartNs + s.RespNetNs
}

// PhaseStats returns this machine's cumulative phase times. All zeros
// unless Options.PhaseTime was set.
func (g *GPU) PhaseStats() PhaseStats {
	g.flushPipeline()
	return g.phase
}

// phaseTotals accumulates phase time across every run in the process
// (ckeserve exports it via /statz; driver -phasetrace summaries read it
// at exit). Atomic because runs execute concurrently on the runner
// pool.
var phaseTotals [6]atomic.Int64

func addPhaseTotals(d PhaseStats) {
	phaseTotals[0].Add(d.Cycles)
	phaseTotals[1].Add(d.SMNs)
	phaseTotals[2].Add(d.DrainNs)
	phaseTotals[3].Add(d.ReqNetNs)
	phaseTotals[4].Add(d.PartNs)
	phaseTotals[5].Add(d.RespNetNs)
}

// PhaseTotals returns the process-wide cumulative phase times across
// all runs that had Options.PhaseTime enabled.
func PhaseTotals() PhaseStats {
	return PhaseStats{
		Cycles:    phaseTotals[0].Load(),
		SMNs:      phaseTotals[1].Load(),
		DrainNs:   phaseTotals[2].Load(),
		ReqNetNs:  phaseTotals[3].Load(),
		PartNs:    phaseTotals[4].Load(),
		RespNetNs: phaseTotals[5].Load(),
	}
}
