// Package journal is the checkpoint/resume layer of the sweep pipeline:
// an append-only JSONL file mapping deterministic job keys to completed
// results. Drivers append every finished grid point as it completes and,
// after a crash or SIGINT, reopen the journal and skip the points it
// already holds — the engine is deterministic, so a replayed result is
// byte-identical to re-simulating it.
//
// Crash safety comes from the format, not from coordination: each entry
// is one self-contained JSON line, appended and fsynced. A process
// killed mid-write leaves at most one truncated final line, which Open
// discards. When the same key appears twice (a point re-run under a
// newer journal generation), the later entry wins.
package journal

import (
	"bufio"
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"sync"
)

// entry is one journal line. Sha is the hex sha256 of Val: parseable
// lines whose payload bytes were silently damaged (bit rot, a lying
// disk, a corrupt worker journal served over /journalz) fail the digest
// on replay and degrade to a re-simulate instead of poisoning resume.
// Entries written before the digest existed have Sha == "" and replay
// unverified.
type entry struct {
	Key string          `json:"key"`
	Val json.RawMessage `json:"val"`
	Sha string          `json:"sha,omitempty"`
}

// jentry is one in-memory entry: the raw value plus its digest.
type jentry struct {
	val json.RawMessage
	sha string
}

// Digest returns the hex sha256 of a journal value's raw bytes — THE
// integrity fingerprint carried end-to-end (journal line, /journalz,
// fleet adoption, audit comparison).
func Digest(raw []byte) string {
	sum := sha256.Sum256(raw)
	return hex.EncodeToString(sum[:])
}

// WriteError is a failed append: the value for Key never became durable
// and was not recorded in the in-memory index — from the caller's view
// the append did not happen. Op names the failed step ("write", "sync"
// or "rollback"); Err is the underlying cause and is in the Unwrap
// chain. A rollback failure additionally poisons the journal: the file
// tail is untrusted, so every later append fails fast.
type WriteError struct {
	Path string
	Key  string
	Op   string
	Err  error
}

func (e *WriteError) Error() string {
	return fmt.Sprintf("journal: %s of %s to %s failed: %v", e.Op, e.Key, e.Path, e.Err)
}

func (e *WriteError) Unwrap() error { return e.Err }

// Journal is an append-only key -> JSON value store backed by one JSONL
// file. It is safe for concurrent use by the worker pool.
type Journal struct {
	// FaultHook, when non-nil, is consulted before the write and sync
	// steps of every append (ops "write" and "sync"); a returned error
	// is treated as that step's disk error. It is the fault-injection
	// seam (internal/chaos) for exercising the rollback path — set it
	// before the journal is shared. A faulted "write" still leaves
	// partial bytes in the file, as a torn real write would, so the
	// rollback is tested against the worst case.
	FaultHook func(op, key string) error

	mu      sync.Mutex
	path    string
	f       *os.File
	off     int64 // end of the last durable entry (rollback target)
	broken  bool  // a rollback failed; the file tail is untrusted
	entries map[string]jentry
	loaded  int // entries recovered by Open (before any Append)
	corrupt int // parseable lines rejected by Open for a digest mismatch
}

// Open loads the journal at path (creating it if absent) and positions
// it for appending. A truncated or corrupt trailing line — the footprint
// of a crash mid-append — is dropped; everything before it is recovered.
func Open(path string) (*Journal, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("journal: %w", err)
	}
	j := &Journal{path: path, f: f, entries: make(map[string]jentry)}
	valid := int64(0) // byte offset of the end of the last parseable line
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<28)
	for sc.Scan() {
		line := sc.Bytes()
		var e entry
		if err := json.Unmarshal(line, &e); err != nil || e.Key == "" {
			// A line that does not parse marks the crash point; nothing
			// after it can be trusted (appends are strictly ordered).
			break
		}
		valid += int64(len(line)) + 1
		if e.Sha != "" && Digest(e.Val) != e.Sha {
			// Parseable but lying: the payload bytes do not match the
			// digest recorded when the entry was written. Unlike a torn
			// tail this is NOT the crash point — ordering is intact, so
			// skip just this entry (the point re-simulates) and keep
			// scanning. The line still counts toward the durable offset:
			// appends resume after it, never over it.
			j.corrupt++
			continue
		}
		j.entries[e.Key] = jentry{val: append(json.RawMessage(nil), e.Val...), sha: e.Sha}
	}
	if err := sc.Err(); err != nil && len(j.entries) == 0 {
		f.Close()
		return nil, fmt.Errorf("journal: reading %s: %w", path, err)
	}
	// Drop the torn tail so the next append starts on a clean boundary.
	if err := f.Truncate(valid); err != nil {
		f.Close()
		return nil, fmt.Errorf("journal: truncating torn tail of %s: %w", path, err)
	}
	if _, err := f.Seek(valid, 0); err != nil {
		f.Close()
		return nil, fmt.Errorf("journal: %w", err)
	}
	j.off = valid
	j.loaded = len(j.entries)
	return j, nil
}

// Path returns the backing file's path.
func (j *Journal) Path() string { return j.path }

// Len returns the number of distinct keys currently journaled.
func (j *Journal) Len() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return len(j.entries)
}

// Recovered returns how many entries Open found on disk (the resume
// set), as opposed to entries appended by this process.
func (j *Journal) Recovered() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.loaded
}

// Corrupt returns how many parseable entries Open rejected because
// their payload failed the per-entry digest (each degrades to a
// re-simulate of that point).
func (j *Journal) Corrupt() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.corrupt
}

// Lookup decodes the journaled value for key into v and reports whether
// the key was present.
func (j *Journal) Lookup(key string, v any) (bool, error) {
	j.mu.Lock()
	e, ok := j.entries[key]
	j.mu.Unlock()
	if !ok {
		return false, nil
	}
	if err := json.Unmarshal(e.val, v); err != nil {
		return false, fmt.Errorf("journal: decoding entry %s: %w", key, err)
	}
	return true, nil
}

// Has reports whether key is journaled without decoding it.
func (j *Journal) Has(key string) bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	_, ok := j.entries[key]
	return ok
}

// Each calls fn once per journaled entry, in sorted key order, with the
// entry's raw JSON value. It is the export path for fleet-level resume:
// a coordinator unions worker journals by streaming them entry by entry.
// The raw slice is fn's to keep (it is a copy). A non-nil error from fn
// stops the iteration and is returned.
func (j *Journal) Each(fn func(key string, raw json.RawMessage) error) error {
	return j.EachEntry(func(key string, raw json.RawMessage, _ string) error {
		return fn(key, raw)
	})
}

// EachEntry is Each with the entry's digest alongside the value, for
// consumers that carry integrity end-to-end (a coordinator verifying a
// worker's /journalz stream before adopting its results). Sha is "" for
// entries written before digests existed.
func (j *Journal) EachEntry(fn func(key string, raw json.RawMessage, sha string) error) error {
	j.mu.Lock()
	keys := make([]string, 0, len(j.entries))
	for k := range j.entries {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	ents := make([]jentry, len(keys))
	for i, k := range keys {
		e := j.entries[k]
		ents[i] = jentry{val: append(json.RawMessage(nil), e.val...), sha: e.sha}
	}
	j.mu.Unlock()
	for i, k := range keys {
		if err := fn(k, ents[i].val, ents[i].sha); err != nil {
			return err
		}
	}
	return nil
}

// Append records v under key: one JSON line, flushed and fsynced before
// returning so a subsequent crash cannot lose the point. A failed append
// is atomic from the caller's view: the key is not recorded, the file is
// rolled back to the end of the last durable entry, and the failure
// surfaces as a *WriteError.
func (j *Journal) Append(key string, v any) error {
	raw, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("journal: encoding value for %s: %w", key, err)
	}
	sha := Digest(raw)
	var buf bytes.Buffer
	if err := json.NewEncoder(&buf).Encode(entry{Key: key, Val: raw, Sha: sha}); err != nil {
		return fmt.Errorf("journal: encoding entry %s: %w", key, err)
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return fmt.Errorf("journal: %s is closed", j.path)
	}
	if j.broken {
		return &WriteError{Path: j.path, Key: key, Op: "write",
			Err: fmt.Errorf("journal poisoned by an earlier failed rollback")}
	}
	if j.FaultHook != nil {
		if ferr := j.FaultHook("write", key); ferr != nil {
			// Model the failure as a torn write: part of the entry
			// reached the file before the error.
			j.f.Write(buf.Bytes()[:len(buf.Bytes())/2])
			return j.rollback(key, "write", ferr)
		}
	}
	if _, err := j.f.Write(buf.Bytes()); err != nil {
		return j.rollback(key, "write", err)
	}
	if j.FaultHook != nil {
		if ferr := j.FaultHook("sync", key); ferr != nil {
			return j.rollback(key, "sync", ferr)
		}
	}
	if err := j.f.Sync(); err != nil {
		return j.rollback(key, "sync", err)
	}
	j.entries[key] = jentry{val: raw, sha: sha}
	j.off += int64(buf.Len())
	return nil
}

// rollback discards whatever a failed append left past the last durable
// entry, restoring the file to its pre-append bytes, and wraps cause in
// a *WriteError. If the rollback itself fails the journal is poisoned:
// the on-disk tail can no longer be trusted, so later appends fail fast
// (Open's torn-tail truncation still recovers the file on restart).
func (j *Journal) rollback(key, op string, cause error) error {
	if err := j.f.Truncate(j.off); err != nil {
		j.broken = true
		return &WriteError{Path: j.path, Key: key, Op: "rollback",
			Err: fmt.Errorf("%w (truncate after failed %s: %v)", cause, op, err)}
	}
	if _, err := j.f.Seek(j.off, 0); err != nil {
		j.broken = true
		return &WriteError{Path: j.path, Key: key, Op: "rollback",
			Err: fmt.Errorf("%w (seek after failed %s: %v)", cause, op, err)}
	}
	return &WriteError{Path: j.path, Key: key, Op: op, Err: cause}
}

// Close releases the backing file. Lookups keep working; appends fail.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return nil
	}
	err := j.f.Close()
	j.f = nil
	return err
}
