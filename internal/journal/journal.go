// Package journal is the checkpoint/resume layer of the sweep pipeline:
// an append-only JSONL file mapping deterministic job keys to completed
// results. Drivers append every finished grid point as it completes and,
// after a crash or SIGINT, reopen the journal and skip the points it
// already holds — the engine is deterministic, so a replayed result is
// byte-identical to re-simulating it.
//
// Crash safety comes from the format, not from coordination: each entry
// is one self-contained JSON line, appended and fsynced. A process
// killed mid-write leaves at most one truncated final line, which Open
// discards. When the same key appears twice (a point re-run under a
// newer journal generation), the later entry wins.
package journal

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"sync"
)

// entry is one journal line.
type entry struct {
	Key string          `json:"key"`
	Val json.RawMessage `json:"val"`
}

// Journal is an append-only key -> JSON value store backed by one JSONL
// file. It is safe for concurrent use by the worker pool.
type Journal struct {
	mu      sync.Mutex
	path    string
	f       *os.File
	entries map[string]json.RawMessage
	loaded  int // entries recovered by Open (before any Append)
}

// Open loads the journal at path (creating it if absent) and positions
// it for appending. A truncated or corrupt trailing line — the footprint
// of a crash mid-append — is dropped; everything before it is recovered.
func Open(path string) (*Journal, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("journal: %w", err)
	}
	j := &Journal{path: path, f: f, entries: make(map[string]json.RawMessage)}
	valid := int64(0) // byte offset of the end of the last parseable line
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<28)
	for sc.Scan() {
		line := sc.Bytes()
		var e entry
		if err := json.Unmarshal(line, &e); err != nil || e.Key == "" {
			// A line that does not parse marks the crash point; nothing
			// after it can be trusted (appends are strictly ordered).
			break
		}
		j.entries[e.Key] = append(json.RawMessage(nil), e.Val...)
		valid += int64(len(line)) + 1
	}
	if err := sc.Err(); err != nil && len(j.entries) == 0 {
		f.Close()
		return nil, fmt.Errorf("journal: reading %s: %w", path, err)
	}
	// Drop the torn tail so the next append starts on a clean boundary.
	if err := f.Truncate(valid); err != nil {
		f.Close()
		return nil, fmt.Errorf("journal: truncating torn tail of %s: %w", path, err)
	}
	if _, err := f.Seek(valid, 0); err != nil {
		f.Close()
		return nil, fmt.Errorf("journal: %w", err)
	}
	j.loaded = len(j.entries)
	return j, nil
}

// Path returns the backing file's path.
func (j *Journal) Path() string { return j.path }

// Len returns the number of distinct keys currently journaled.
func (j *Journal) Len() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return len(j.entries)
}

// Recovered returns how many entries Open found on disk (the resume
// set), as opposed to entries appended by this process.
func (j *Journal) Recovered() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.loaded
}

// Lookup decodes the journaled value for key into v and reports whether
// the key was present.
func (j *Journal) Lookup(key string, v any) (bool, error) {
	j.mu.Lock()
	raw, ok := j.entries[key]
	j.mu.Unlock()
	if !ok {
		return false, nil
	}
	if err := json.Unmarshal(raw, v); err != nil {
		return false, fmt.Errorf("journal: decoding entry %s: %w", key, err)
	}
	return true, nil
}

// Has reports whether key is journaled without decoding it.
func (j *Journal) Has(key string) bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	_, ok := j.entries[key]
	return ok
}

// Append records v under key: one JSON line, flushed and fsynced before
// returning so a subsequent crash cannot lose the point.
func (j *Journal) Append(key string, v any) error {
	raw, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("journal: encoding value for %s: %w", key, err)
	}
	var buf bytes.Buffer
	if err := json.NewEncoder(&buf).Encode(entry{Key: key, Val: raw}); err != nil {
		return fmt.Errorf("journal: encoding entry %s: %w", key, err)
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return fmt.Errorf("journal: %s is closed", j.path)
	}
	if _, err := j.f.Write(buf.Bytes()); err != nil {
		return fmt.Errorf("journal: appending to %s: %w", j.path, err)
	}
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("journal: syncing %s: %w", j.path, err)
	}
	j.entries[key] = raw
	return nil
}

// Close releases the backing file. Lookups keep working; appends fail.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return nil
	}
	err := j.f.Close()
	j.f = nil
	return err
}
