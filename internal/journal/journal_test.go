package journal

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

type point struct {
	WS    float64
	Cells []int
}

func tmpJournal(t *testing.T) string {
	t.Helper()
	return filepath.Join(t.TempDir(), "journal.jsonl")
}

func TestRoundTrip(t *testing.T) {
	path := tmpJournal(t)
	j, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if j.Len() != 0 || j.Recovered() != 0 {
		t.Fatalf("fresh journal not empty: len=%d recovered=%d", j.Len(), j.Recovered())
	}
	want := point{WS: 1.375, Cells: []int{2, 4, 8}}
	if err := j.Append("k1", want); err != nil {
		t.Fatal(err)
	}
	if err := j.Append("k2", point{WS: 0.5}); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	j2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if j2.Len() != 2 || j2.Recovered() != 2 {
		t.Fatalf("reopened journal: len=%d recovered=%d, want 2/2", j2.Len(), j2.Recovered())
	}
	var got point
	ok, err := j2.Lookup("k1", &got)
	if err != nil || !ok {
		t.Fatalf("lookup k1: ok=%v err=%v", ok, err)
	}
	if got.WS != want.WS || len(got.Cells) != 3 || got.Cells[2] != 8 {
		t.Fatalf("roundtrip mismatch: %+v", got)
	}
	if j2.Has("k3") {
		t.Fatal("phantom key")
	}
	// Floats must roundtrip exactly: replayed tables are byte-identical
	// only if the decoded value is the same float64.
	if err := j2.Append("f", 0.1+0.2); err != nil {
		t.Fatal(err)
	}
	var f float64
	if ok, _ := j2.Lookup("f", &f); !ok || f != 0.1+0.2 {
		t.Fatalf("float not exact: %v", f)
	}
}

func TestAppendExtendsRatherThanTruncates(t *testing.T) {
	path := tmpJournal(t)
	j, _ := Open(path)
	j.Append("a", 1)
	j.Close()

	j, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	j.Append("b", 2)
	j.Close()

	j, err = Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	if j.Len() != 2 {
		t.Fatalf("len = %d after two sessions, want 2", j.Len())
	}
}

func TestTornTailDiscarded(t *testing.T) {
	path := tmpJournal(t)
	j, _ := Open(path)
	j.Append("a", 10)
	j.Append("b", 20)
	j.Close()

	// Simulate a crash mid-append: chop the file mid-way through the
	// second line.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)-7], 0o644); err != nil {
		t.Fatal(err)
	}

	j2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if j2.Len() != 1 || !j2.Has("a") || j2.Has("b") {
		t.Fatalf("torn tail handling: len=%d hasA=%v hasB=%v", j2.Len(), j2.Has("a"), j2.Has("b"))
	}
	// The journal must stay appendable on a clean line boundary.
	if err := j2.Append("c", 30); err != nil {
		t.Fatal(err)
	}
	j2.Close()
	j3, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j3.Close()
	var v int
	if ok, _ := j3.Lookup("c", &v); !ok || v != 30 {
		t.Fatalf("post-recovery append lost: ok=%v v=%d", ok, v)
	}
}

func TestLatestEntryWins(t *testing.T) {
	path := tmpJournal(t)
	j, _ := Open(path)
	j.Append("k", 1)
	j.Append("k", 2)
	j.Close()
	j2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	var v int
	if ok, _ := j2.Lookup("k", &v); !ok || v != 2 {
		t.Fatalf("latest entry must win, got %d", v)
	}
	if j2.Len() != 1 {
		t.Fatalf("duplicate key counted twice: %d", j2.Len())
	}
}

func TestAppendAfterCloseFails(t *testing.T) {
	j, _ := Open(tmpJournal(t))
	j.Close()
	if err := j.Append("k", 1); err == nil {
		t.Fatal("append after close must fail")
	}
}

// TestEachSortedAndComplete: Each visits every entry exactly once in
// sorted key order with decodable values, and a stopping error halts the
// iteration.
func TestEachSortedAndComplete(t *testing.T) {
	j, _ := Open(tmpJournal(t))
	defer j.Close()
	for _, k := range []string{"c", "a", "b"} {
		if err := j.Append(k, map[string]string{"v": k}); err != nil {
			t.Fatal(err)
		}
	}
	var keys []string
	err := j.Each(func(key string, raw json.RawMessage) error {
		var v map[string]string
		if err := json.Unmarshal(raw, &v); err != nil {
			return err
		}
		if v["v"] != key {
			t.Fatalf("entry %s holds %v", key, v)
		}
		keys = append(keys, key)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := fmt.Sprint(keys); got != "[a b c]" {
		t.Fatalf("Each order = %v, want sorted [a b c]", keys)
	}
	stop := errors.New("stop")
	n := 0
	if err := j.Each(func(string, json.RawMessage) error { n++; return stop }); err != stop {
		t.Fatalf("Each did not propagate fn's error: %v", err)
	}
	if n != 1 {
		t.Fatalf("Each continued after an error: %d calls", n)
	}
}
