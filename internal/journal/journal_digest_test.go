package journal

import (
	"bytes"
	"encoding/json"
	"os"
	"strings"
	"testing"
)

// TestDigestMismatchSkipsEntryAndContinues: a parseable line whose
// payload fails its digest is dropped from the index (the point
// re-simulates), but — unlike the torn tail — scanning continues, so
// entries after the damaged one survive and the durable offset covers
// the whole file.
func TestDigestMismatchSkipsEntryAndContinues(t *testing.T) {
	path := tmpJournal(t)
	j, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []string{"a", "b", "c"} {
		if err := j.Append(k, point{WS: float64(len(k))}); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	// Flip payload bytes inside entry "b" without breaking JSON: the
	// line still parses, but its Val no longer matches its Sha. The WS
	// value 1.000000 has same-length replacements.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := bytes.Split(data, []byte("\n"))
	if !bytes.Contains(lines[1], []byte(`"b"`)) {
		t.Fatalf("unexpected layout: %s", lines[1])
	}
	lines[1] = bytes.Replace(lines[1], []byte(`"WS":1`), []byte(`"WS":7`), 1)
	if err := os.WriteFile(path, bytes.Join(lines, []byte("\n")), 0o644); err != nil {
		t.Fatal(err)
	}

	j2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if j2.Corrupt() != 1 {
		t.Fatalf("Corrupt() = %d, want 1", j2.Corrupt())
	}
	if j2.Has("b") {
		t.Fatal("digest-mismatched entry still indexed")
	}
	// The entries before AND after the damaged line both survive.
	if !j2.Has("a") || !j2.Has("c") {
		t.Fatalf("digest skip did not continue scanning: a=%v c=%v", j2.Has("a"), j2.Has("c"))
	}
	if j2.Recovered() != 2 {
		t.Fatalf("Recovered() = %d, want 2", j2.Recovered())
	}

	// The damaged line's bytes still count toward the durable offset:
	// a re-append of "b" lands after it, and a reopen sees all four
	// lines with the fresh "b" winning.
	if err := j2.Append("b", point{WS: 2}); err != nil {
		t.Fatal(err)
	}
	if err := j2.Close(); err != nil {
		t.Fatal(err)
	}
	j3, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j3.Close()
	if j3.Corrupt() != 1 || j3.Len() != 3 {
		t.Fatalf("after repair: corrupt=%d len=%d, want 1/3", j3.Corrupt(), j3.Len())
	}
	var got point
	if ok, err := j3.Lookup("b", &got); !ok || err != nil || got.WS != 2 {
		t.Fatalf("repaired entry: ok=%v err=%v ws=%v", ok, err, got.WS)
	}
}

// TestEachEntryCarriesDigest: every appended entry's digest is exposed
// by EachEntry and matches a recomputation over the raw value —
// including after a reopen.
func TestEachEntryCarriesDigest(t *testing.T) {
	path := tmpJournal(t)
	j, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Append("k", point{WS: 1.5, Cells: []int{1, 2}}); err != nil {
		t.Fatal(err)
	}
	check := func(j *Journal) {
		t.Helper()
		n := 0
		err := j.EachEntry(func(key string, raw json.RawMessage, sha string) error {
			n++
			if sha == "" {
				t.Fatalf("entry %s has no digest", key)
			}
			if Digest(raw) != sha {
				t.Fatalf("entry %s: digest %s does not cover raw %s", key, sha, raw)
			}
			return nil
		})
		if err != nil || n != 1 {
			t.Fatalf("EachEntry: n=%d err=%v", n, err)
		}
	}
	check(j)
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	j2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	check(j2)
}

// TestLegacyLinesWithoutShaReplay: lines written before the digest
// existed (no "sha" field) replay unverified rather than being dropped.
func TestLegacyLinesWithoutShaReplay(t *testing.T) {
	path := tmpJournal(t)
	legacy := `{"key":"old","val":{"WS":3.25,"Cells":null}}` + "\n"
	if err := os.WriteFile(path, []byte(legacy), 0o644); err != nil {
		t.Fatal(err)
	}
	j, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	if j.Corrupt() != 0 || !j.Has("old") {
		t.Fatalf("legacy entry rejected: corrupt=%d has=%v", j.Corrupt(), j.Has("old"))
	}
	var got point
	if ok, _ := j.Lookup("old", &got); !ok || got.WS != 3.25 {
		t.Fatalf("legacy lookup: ok=%v ws=%v", ok, got.WS)
	}
	seen := ""
	j.EachEntry(func(key string, raw json.RawMessage, sha string) error {
		seen = key
		if sha != "" {
			t.Fatalf("legacy entry grew a digest: %q", sha)
		}
		return nil
	})
	if seen != "old" {
		t.Fatalf("EachEntry skipped the legacy entry")
	}
	// New appends on the same journal do carry digests.
	if err := j.Append("new", point{WS: 1}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"sha":"`) {
		t.Fatal("new append has no sha field on disk")
	}
}
