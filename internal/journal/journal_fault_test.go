package journal

import (
	"errors"
	"fmt"
	"os"
	"testing"

	"repro/internal/chaos"
)

// TestAppendFaultAtomic pins the append atomicity contract on both
// failure points: after a failed write or sync, the key is absent from
// the index, the file bytes are identical to the pre-append state, and
// the journal keeps accepting later appends.
func TestAppendFaultAtomic(t *testing.T) {
	for _, op := range []string{"write", "sync"} {
		t.Run(op, func(t *testing.T) {
			path := tmpJournal(t)
			j, err := Open(path)
			if err != nil {
				t.Fatal(err)
			}
			defer j.Close()
			if err := j.Append("good", point{WS: 1.5}); err != nil {
				t.Fatal(err)
			}
			before, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}

			failOp := op
			j.FaultHook = func(o, key string) error {
				if o == failOp && key == "bad" {
					return fmt.Errorf("injected %s error", o)
				}
				return nil
			}
			err = j.Append("bad", point{WS: 2})
			var we *WriteError
			if !errors.As(err, &we) {
				t.Fatalf("append error is %T (%v), want *WriteError", err, err)
			}
			if we.Key != "bad" || we.Op != op || we.Path != path {
				t.Fatalf("WriteError attribution: %+v", we)
			}
			if j.Has("bad") {
				t.Fatal("failed append recorded in the index")
			}
			after, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if string(after) != string(before) {
				t.Fatalf("file changed by failed append:\nbefore: %q\nafter:  %q", before, after)
			}

			// The journal must remain usable and consistent on disk.
			if err := j.Append("later", point{WS: 3}); err != nil {
				t.Fatal(err)
			}
			j.Close()
			j2, err := Open(path)
			if err != nil {
				t.Fatal(err)
			}
			defer j2.Close()
			if !j2.Has("good") || !j2.Has("later") || j2.Has("bad") {
				t.Fatalf("reopened index diverged: good=%v later=%v bad=%v",
					j2.Has("good"), j2.Has("later"), j2.Has("bad"))
			}
		})
	}
}

// TestAppendChaosDiskError wires the deterministic chaos injector in as
// the disk-fault source: the first append of a journal-planned key fails
// with a typed *WriteError and no index/file divergence; the retry (the
// injector's budget spent) succeeds and is durable.
func TestAppendChaosDiskError(t *testing.T) {
	inj := chaos.New(chaos.Config{Seed: 11, JournalProb: 1, Failures: 1})
	path := tmpJournal(t)
	j, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	j.FaultHook = inj.JournalFault

	err = j.Append("k1", point{WS: 1.25, Cells: []int{1, 2}})
	var we *WriteError
	if !errors.As(err, &we) {
		t.Fatalf("chaos-faulted append returned %T (%v), want *WriteError", err, err)
	}
	if j.Has("k1") {
		t.Fatal("faulted append left k1 in the index")
	}
	if data, _ := os.ReadFile(path); len(data) != 0 {
		t.Fatalf("faulted append left %d bytes on disk", len(data))
	}

	// Retry: the injector's per-key budget is spent, so this succeeds.
	if err := j.Append("k1", point{WS: 1.25, Cells: []int{1, 2}}); err != nil {
		t.Fatalf("retry after chaos fault: %v", err)
	}
	j.Close()
	j2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	var got point
	if ok, _ := j2.Lookup("k1", &got); !ok || got.WS != 1.25 {
		t.Fatalf("retried append not durable: ok=%v got=%+v", true, got)
	}
	if n := inj.Counts()[chaos.KindJournal]; n != 1 {
		t.Fatalf("injector reports %d journal faults, want 1", n)
	}
}

// TestAppendAfterFailedRollback: when even the rollback fails the
// journal poisons itself rather than appending after an untrusted tail.
func TestAppendAfterFailedRollback(t *testing.T) {
	path := tmpJournal(t)
	j, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	// Close the fd out from under the journal so the write and the
	// rollback's truncate both fail. (Reach into the struct: this
	// simulates a dead disk, which no public API can produce.)
	j.f.Close()
	err = j.Append("bad", point{})
	var we *WriteError
	if !errors.As(err, &we) || we.Op != "rollback" {
		t.Fatalf("err = %v, want rollback *WriteError", err)
	}
	err = j.Append("next", point{})
	if !errors.As(err, &we) {
		t.Fatalf("append after poisoned rollback returned %T (%v), want *WriteError", err, err)
	}
}
