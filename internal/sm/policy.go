// Policy hook points. The SM consults three small interfaces each cycle;
// the paper's mechanisms (RBMI, QBMI, SMIL, DMIL, SMK's warp-instruction
// quota) are implemented against them in internal/core. The zero-cost
// defaults below reproduce the unmanaged baseline.

package sm

// MemIssuePolicy arbitrates which kernel issues the SM's one memory
// instruction of this cycle when several kernels have ready candidates
// (the paper's BMI family plugs in here).
type MemIssuePolicy interface {
	// Pick returns the index into kernels of the winning candidate.
	// kernels lists the kernel slot of each ready candidate in the
	// scheduler scan order (the unmanaged baseline picks index 0);
	// kernel slots may repeat.
	Pick(kernels []int) int
	// OnIssue reports that kernel issued one memory instruction that
	// expanded into reqs coalesced requests.
	OnIssue(kernel, reqs int)
}

// Limiter caps in-flight memory instructions per kernel (the paper's MIL
// family). The SM reports the events the DMIL hardware counters observe.
type Limiter interface {
	// Allow reports whether kernel, currently holding inflight in-flight
	// memory accesses (coalesced requests), may issue another memory
	// instruction.
	Allow(kernel, inflight int) bool
	// OnRequest is called for each request that successfully accesses
	// the L1D (the MILG 10-bit request counter).
	OnRequest(kernel int)
	// OnRsFail is called for each reservation-failed access attempt
	// (the MILG 12-bit reservation-failure counter).
	OnRsFail(kernel int)
	// NoteInflight lets the MILG track the peak in-flight memory
	// instruction count (7-bit counter).
	NoteInflight(kernel, inflight int)
	// Tick runs once per SM cycle (drives interval timeouts).
	Tick(cycle int64)
}

// IssueGate gates all instruction issue of a kernel (SMK's periodic
// warp-instruction quota plugs in here).
type IssueGate interface {
	CanIssue(kernel int) bool
	OnIssue(kernel int)
	Tick(cycle int64)
}

// NopMemPolicy is the unmanaged baseline: the first ready candidate in
// scheduler scan order wins.
type NopMemPolicy struct{}

func (NopMemPolicy) Pick(kernels []int) int   { return 0 }
func (NopMemPolicy) OnIssue(kernel, reqs int) {}

// NopLimiter never limits.
type NopLimiter struct{}

func (NopLimiter) Allow(kernel, inflight int) bool   { return true }
func (NopLimiter) OnRequest(kernel int)              {}
func (NopLimiter) OnRsFail(kernel int)               {}
func (NopLimiter) NoteInflight(kernel, inflight int) {}
func (NopLimiter) Tick(cycle int64)                  {}

// NopGate never gates.
type NopGate struct{}

func (NopGate) CanIssue(kernel int) bool { return true }
func (NopGate) OnIssue(kernel int)       {}
func (NopGate) Tick(cycle int64)         {}
