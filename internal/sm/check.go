// Invariant checking for the memory-pipeline bookkeeping. The paper's
// mechanisms (BMI quota refresh, MIL caps) and the simulator's own
// accounting (per-kernel in-flight counters, MSHR/miss-queue occupancy)
// are conservation laws: a silent violation — an in-flight counter that
// leaks, a quota that never refreshes — does not crash the run, it
// quietly corrupts every downstream table. The optional watchdog
// (gpu.Options.Check) calls CheckInvariants every cycle and turns the
// first violation into a structured error instead.
package sm

import "fmt"

// coalescerSlack is the legal overshoot past a MIL cap: Allow is
// consulted once per instruction, before its up-to-32 coalesced
// requests enter flight, so the counter may exceed the cap by at most
// one instruction's worth of requests minus the slot Allow granted.
const coalescerSlack = 31

// InvariantError is one detected conservation violation, attributed to
// the cycle, SM and kernel where it was caught. SM or Kernel is -1 when
// the rule is not specific to one (machine-level checks reuse the type).
type InvariantError struct {
	Cycle  int64
	SM     int
	Kernel int
	Rule   string // short rule identifier, e.g. "inflight-negative"
	Detail string
}

func (e *InvariantError) Error() string {
	loc := ""
	if e.SM >= 0 {
		loc = fmt.Sprintf(" sm=%d", e.SM)
	}
	if e.Kernel >= 0 {
		loc += fmt.Sprintf(" kernel=%d", e.Kernel)
	}
	return fmt.Sprintf("invariant %s violated at cycle %d%s: %s", e.Rule, e.Cycle, loc, e.Detail)
}

// limitReporter is implemented by limiters whose per-kernel caps never
// move during a run (SMIL). The cap rule deliberately excludes dynamic
// limiters: a DMIL that lowers its limit legitimately leaves the
// already-admitted in-flight count above the new cap until it drains.
type limitReporter interface{ StaticLimit(k int) int }

// policyChecker is implemented by memory-issue policies with an internal
// conservation rule of their own (QBMI's quota refresh).
type policyChecker interface{ CheckInvariant() error }

// CheckInvariants validates the SM's per-cycle conservation invariants
// and returns a structured *InvariantError for the first violation:
//
//   - per-kernel in-flight access counters never go negative (a negative
//     count means a completion was delivered twice);
//   - with a static limiter attached, in-flight accesses never exceed
//     the MIL cap by more than one instruction's coalesced requests;
//   - L1D MSHR and miss-queue occupancy stay within their configured
//     capacity (an excess means reservation accounting leaked);
//   - the memory-issue policy's own invariant holds (QBMI quotas refresh
//     exactly when any kernel's quota hits zero).
func (s *SM) CheckInvariants(cycle int64) error {
	lr, hasLimit := s.limiter.(limitReporter)
	for k := range s.descs {
		if s.inflight[k] < 0 {
			return &InvariantError{Cycle: cycle, SM: s.ID, Kernel: k, Rule: "inflight-negative",
				Detail: fmt.Sprintf("in-flight access count is %d", s.inflight[k])}
		}
		if hasLimit {
			if cap := lr.StaticLimit(k); cap > 0 && s.inflight[k] > cap+coalescerSlack {
				return &InvariantError{Cycle: cycle, SM: s.ID, Kernel: k, Rule: "mil-cap",
					Detail: fmt.Sprintf("in-flight accesses %d exceed MIL cap %d (+%d coalescer slack)",
						s.inflight[k], cap, coalescerSlack)}
			}
		}
	}
	if got := s.L1.MSHRInUse(); got < 0 || got > s.cfg.L1D.MSHRs {
		return &InvariantError{Cycle: cycle, SM: s.ID, Kernel: -1, Rule: "mshr-occupancy",
			Detail: fmt.Sprintf("L1D MSHRs in use %d outside [0,%d]", got, s.cfg.L1D.MSHRs)}
	}
	if got := s.L1.MissQueueLen(); got > s.cfg.L1D.MissQueue {
		return &InvariantError{Cycle: cycle, SM: s.ID, Kernel: -1, Rule: "missq-occupancy",
			Detail: fmt.Sprintf("L1D miss queue holds %d entries, capacity %d", got, s.cfg.L1D.MissQueue)}
	}
	if pc, ok := s.memPolicy.(policyChecker); ok {
		if err := pc.CheckInvariant(); err != nil {
			return &InvariantError{Cycle: cycle, SM: s.ID, Kernel: -1, Rule: "mem-policy",
				Detail: err.Error()}
		}
	}
	return nil
}

// ResidentTBs reports whether any thread block is resident on the SM
// (the forward-progress watchdog only expects issue while work is
// resident).
func (s *SM) ResidentTBs() bool {
	for _, c := range s.tbCount {
		if c > 0 {
			return true
		}
	}
	return false
}

// IssuedTotal returns the SM's total issued instruction count across
// kernels (the forward-progress watchdog's monotone counter).
func (s *SM) IssuedTotal() uint64 {
	var total uint64
	for k := range s.K {
		total += s.K[k].Instrs
	}
	return total
}
