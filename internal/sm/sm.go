// Package sm models one streaming multiprocessor: thread-block dispatch
// against static resources (registers, shared memory, threads, TB
// slots), four warp schedulers (GTO or LRR), ALU/SFU pipelines with a
// scoreboard, a memory coalescer and an in-order load/store unit in
// front of the L1 D-cache.
//
// The memory pipeline follows the paper's model: the LSU accepts at most
// one warp memory instruction per cycle (expanded into Req/Minst
// coalesced requests), services one request per cycle against the L1D,
// and *stalls* whenever the head request suffers a reservation failure —
// blocking every kernel sharing the SM. Which kernel gets the one memory
// issue slot per cycle is decided by a pluggable MemIssuePolicy; whether
// a kernel may add another in-flight memory instruction is decided by a
// pluggable Limiter. These are the paper's BMI and MIL hook points.
package sm

import (
	"fmt"

	"repro/internal/cache"
	"repro/internal/config"
	"repro/internal/kern"
	"repro/internal/mem"
	"repro/internal/ring"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/xrand"
)

const noBarrier = ^uint64(0)

// Warp is one resident warp.
type Warp struct {
	Active      bool
	doneIssuing bool
	Kernel      int8
	SchedID     int8
	TB          int16
	Gen         uint32
	// age is the SM-wide launch sequence number: GTO's "oldest" order.
	age int64

	IssuedInstrs uint64
	NextKind     kern.InstrKind
	pos          int
	ReadyAt      int64
	lastCycle    int64 // last cycle this warp issued (at most 1 instr/cycle)

	outBarriers [8]uint64 // barrier indices of outstanding loads
	outN        int
}

// minBarrier returns the smallest outstanding-load barrier, or noBarrier.
func (w *Warp) minBarrier() uint64 {
	m := uint64(noBarrier)
	for i := 0; i < w.outN; i++ {
		if w.outBarriers[i] < m {
			m = w.outBarriers[i]
		}
	}
	return m
}

func (w *Warp) removeBarrier(b uint64) {
	for i := 0; i < w.outN; i++ {
		if w.outBarriers[i] == b {
			w.outN--
			w.outBarriers[i] = w.outBarriers[w.outN]
			return
		}
	}
}

type tbSlot struct {
	active    bool
	kernel    int8
	warpsLeft int
	warps     []int
}

type scheduler struct {
	warps      []int // assigned warp slots, oldest first
	lastIssued int   // warp slot of the greedy warp, or -1
	rrPos      int
	issuedAt   int64 // cycle of last issue (one instruction per cycle)
}

type compEntry struct {
	token *mem.InstrToken
	at    int64
}

// SM is one streaming multiprocessor instance.
type SM struct {
	ID  int
	cfg *config.Config

	descs []*kern.Desc
	quota []int

	L1    *cache.Cache
	space mem.AddrSpace

	warps []Warp
	// Cold per-warp state lives in parallel arrays indexed by warp slot,
	// keeping Warp small: the schedulers scan every resident Warp each
	// cycle, while the address-generator state and per-warp RNG are only
	// touched on the one slot that actually issues.
	wAddr []kern.AddrState
	wRNG  []xrand.Source

	freeWarps []int
	tbs       []tbSlot
	scheds    []scheduler

	tbCount     []int
	tbLaunched  []uint64
	threadsUsed int
	regsUsed    int
	smemUsed    int
	dispatchPtr int
	schedAssign int
	warpAge     int64

	// The LSU pipeline register: one memory instruction dispatches at a
	// time, one coalesced request per cycle. A reservation failure
	// leaves the request in place and stalls the pipeline; a new
	// instruction can only enter once every request of the current one
	// has been dispatched. This is the single shared structure the
	// paper's kernels contend for: a high-Req/Minst instruction holds
	// the LSU for many cycles and absorbs the failure attribution.
	lsuReqs []*mem.Request
	lsuIdx  int

	compQ ring.Ring[compEntry]

	// now is the cycle of the most recent Tick/Deliver, used to stamp
	// trace events emitted from retirement paths that have no cycle
	// argument of their own (TB completion, line fills).
	now int64

	// Pool, when non-nil, supplies this SM's requests and instruction
	// tokens and receives them back at retirement. Owned exclusively by
	// this SM (each SM gets its own pool so the parallel phase needs no
	// locks); the GPU sets it and shares it with the SM's L1.
	Pool *mem.Pool

	// smemBusyUntil serializes the banked shared memory: a conflicted
	// access occupies the unit for multiple cycles.
	smemBusyUntil int64

	// inflight counts in-flight memory *accesses* (coalesced requests)
	// per kernel: a kernel's footprint in the miss-handling resources.
	// The paper's 7-bit MILG counter saturates at 128 — the MSHR count —
	// i.e. it measures concurrent L1D accesses, which is what this
	// tracks (an instruction with Req/Minst requests counts Req/Minst).
	inflight []int

	memPolicy MemIssuePolicy
	limiter   Limiter
	gate      IssueGate

	// Statistics.
	K         []stats.KernelCounters
	LSUStall  uint64
	LSUBusy   uint64
	ALUIssued uint64
	SFUIssued uint64

	seriesOn     bool
	seriesIssued [][]uint32
	seriesL1Acc  [][]uint32

	// warmLines[k] is kernel k's effective warm-region size in lines
	// (WarmL2Frac scaled by the machine's aggregate L2 capacity).
	warmLines []uint64

	// Trace, when non-nil, receives cycle-level events.
	Trace *trace.Buffer

	// Scratch buffers.
	candKernels []int
	candWarps   []int
	candAges    []int64
	lineBuf     [32]uint64

	rng *xrand.Source
}

// New builds an SM running the given kernel slots with per-kernel TB
// quotas. Policies may be nil (unmanaged defaults).
func New(id int, cfg *config.Config, descs []*kern.Desc, quota []int,
	memPolicy MemIssuePolicy, limiter Limiter, gate IssueGate, seed uint64) *SM {

	n := len(descs)
	s := &SM{
		ID:         id,
		cfg:        cfg,
		descs:      descs,
		quota:      append([]int(nil), quota...),
		L1:         cache.New(cfg.L1D, n),
		space:      mem.NewAddrSpace(cfg.L1D.LineBytes),
		warps:      make([]Warp, cfg.SM.MaxWarps),
		wAddr:      make([]kern.AddrState, cfg.SM.MaxWarps),
		wRNG:       make([]xrand.Source, cfg.SM.MaxWarps),
		tbs:        make([]tbSlot, cfg.SM.MaxTBs),
		scheds:     make([]scheduler, cfg.SM.Schedulers),
		tbCount:    make([]int, n),
		tbLaunched: make([]uint64, n),
		inflight:   make([]int, n),
		K:          make([]stats.KernelCounters, n),
		memPolicy:  memPolicy,
		limiter:    limiter,
		gate:       gate,
		rng:        xrand.New(seed ^ (uint64(id)+1)*0xA24BAED4963EE407),
	}
	if s.memPolicy == nil {
		s.memPolicy = NopMemPolicy{}
	}
	if s.limiter == nil {
		s.limiter = NopLimiter{}
	}
	if s.gate == nil {
		s.gate = NopGate{}
	}
	for i := range s.scheds {
		s.scheds[i].lastIssued = -1
		s.scheds[i].issuedAt = -1
	}
	for i := len(s.warps) - 1; i >= 0; i-- {
		s.warps[i].Gen = 1
		s.freeWarps = append(s.freeWarps, i)
	}
	totalL2Lines := cfg.L2.SizeBytes / cfg.L2.LineBytes * cfg.NumMemParts
	s.warmLines = make([]uint64, n)
	for k, d := range descs {
		s.warmLines[k] = d.EffectiveWarmLines(totalL2Lines)
	}
	return s
}

// EnableSeries turns on 1 K-cycle time-series collection for a run of
// the given length.
func (s *SM) EnableSeries(cycles int64) {
	s.seriesOn = true
	buckets := int(cycles/stats.SeriesInterval) + 1
	s.seriesIssued = make([][]uint32, len(s.descs))
	s.seriesL1Acc = make([][]uint32, len(s.descs))
	for k := range s.descs {
		s.seriesIssued[k] = make([]uint32, buckets)
		s.seriesL1Acc[k] = make([]uint32, buckets)
	}
}

// Series returns the collected per-kernel series (nil when disabled).
func (s *SM) Series(k int) ([]uint32, []uint32) {
	if !s.seriesOn {
		return nil, nil
	}
	return s.seriesIssued[k], s.seriesL1Acc[k]
}

// SetQuota replaces the per-kernel TB quota; resident TBs drain
// naturally (no preemption), matching the paper's baselines.
func (s *SM) SetQuota(quota []int) {
	copy(s.quota, quota)
}

// Drain force-retires every resident warp: each stops issuing
// immediately and finalizes once its outstanding loads return (their
// completions are generation-guarded, so recycling the slots is safe).
// Dynamic Warped-Slicer uses this between profiling rounds; without it
// a thread block lingers for its full lifetime and pollutes the next
// round's measurement.
func (s *SM) Drain() {
	for i := range s.warps {
		w := &s.warps[i]
		if w.Active && !w.doneIssuing {
			w.doneIssuing = true
			if w.outN == 0 {
				s.finalizeWarp(i)
			}
		}
	}
}

// Quota returns the active per-kernel TB quota.
func (s *SM) Quota() []int { return s.quota }

// TBCount returns the resident TB count of kernel k.
func (s *SM) TBCount(k int) int { return s.tbCount[k] }

// Inflight returns kernel k's in-flight memory access count.
func (s *SM) Inflight(k int) int { return s.inflight[k] }

// Tick advances the SM one cycle. Memory responses must have been
// delivered (Deliver) before the owner calls Tick for the cycle.
func (s *SM) Tick(cycle int64) {
	s.now = cycle
	s.gate.Tick(cycle)
	s.limiter.Tick(cycle)
	s.drainCompletions(cycle)
	s.dispatch(cycle)
	// The LSU dispatches before issue so that the pipeline register can
	// accept a new memory instruction in the cycle its last request
	// leaves.
	s.lsuTick(cycle)
	memScheduler := s.issueMem(cycle)
	s.issueCompute(cycle, memScheduler)
}

// drainCompletions finishes L1-hit loads whose latency elapsed.
func (s *SM) drainCompletions(cycle int64) {
	for !s.compQ.Empty() && s.compQ.Peek().at <= cycle {
		s.onReqDone(s.compQ.Pop().token)
	}
}

// onReqDone retires one completed request of a memory instruction; when
// it is the instruction's last, the owning warp's load barrier clears.
func (s *SM) onReqDone(t *mem.InstrToken) {
	t.Done++
	s.inflight[t.Kernel]--
	s.limiter.NoteInflight(t.Kernel, s.inflight[t.Kernel])
	if t.Completed() {
		s.onTokenDone(t)
		// Every request of the instruction has retired, so nothing live
		// references the token anymore (retiring paths sever or release
		// their Instr pointers).
		s.Pool.ReleaseToken(t)
	}
}

// onTokenDone retires one completed memory instruction.
func (s *SM) onTokenDone(t *mem.InstrToken) {
	if t.Kind != mem.Load {
		return
	}
	w := &s.warps[t.Warp]
	if w.Gen != t.WarpGen {
		return
	}
	w.removeBarrier(t.BarrierIdx)
	if w.doneIssuing && w.outN == 0 {
		s.finalizeWarp(t.Warp)
	}
}

// dispatch launches at most one thread block per cycle, round-robin
// across kernels under quota.
func (s *SM) dispatch(cycle int64) {
	n := len(s.descs)
	for i := 0; i < n; i++ {
		k := (s.dispatchPtr + i) % n
		if s.tbCount[k] >= s.quota[k] {
			continue
		}
		d := s.descs[k]
		wpt := d.WarpsPerTB(s.cfg.WarpSize)
		if len(s.freeWarps) < wpt ||
			s.threadsUsed+d.ThreadsPerTB > s.cfg.SM.MaxThreads ||
			s.regsUsed+d.ThreadsPerTB*d.RegsPerThread > s.cfg.SM.Registers ||
			s.smemUsed+d.SmemPerTB > s.cfg.SM.SmemBytes {
			continue
		}
		slot := -1
		for t := range s.tbs {
			if !s.tbs[t].active {
				slot = t
				break
			}
		}
		if slot < 0 {
			continue
		}
		s.launchTB(k, slot, wpt, cycle)
		s.dispatchPtr = (k + 1) % n
		return
	}
}

func (s *SM) launchTB(k, slot, wpt int, cycle int64) {
	d := s.descs[k]
	tb := &s.tbs[slot]
	tb.active = true
	tb.kernel = int8(k)
	tb.warpsLeft = wpt
	tb.warps = tb.warps[:0]
	tbSeq := s.tbLaunched[k]*uint64(s.cfg.NumSMs) + uint64(s.ID)
	s.tbLaunched[k]++
	for wi := 0; wi < wpt; wi++ {
		slotW := s.freeWarps[len(s.freeWarps)-1]
		s.freeWarps = s.freeWarps[:len(s.freeWarps)-1]
		w := &s.warps[slotW]
		gen := w.Gen
		s.warpAge++
		*w = Warp{Active: true, Kernel: int8(k), TB: int16(slot), Gen: gen, age: s.warpAge}
		seq := tbSeq*uint64(wpt) + uint64(wi)
		s.wRNG[slotW].Seed(uint64(s.ID)<<32 ^ seq*0x9E3779B97F4A7C15 ^ uint64(k)<<56 ^ s.cfg.Seed)
		s.wAddr[slotW] = kern.AddrState{}
		d.InitAddrState(&s.wAddr[slotW], seq, s.warmLines[k])
		w.NextKind, w.pos = d.NextKind(0, &s.wRNG[slotW])
		w.ReadyAt = cycle
		w.lastCycle = -1
		sched := s.schedAssign % len(s.scheds)
		s.schedAssign++
		w.SchedID = int8(sched)
		s.scheds[sched].warps = append(s.scheds[sched].warps, slotW)
		tb.warps = append(tb.warps, slotW)
	}
	s.threadsUsed += d.ThreadsPerTB
	s.regsUsed += d.ThreadsPerTB * d.RegsPerThread
	s.smemUsed += d.SmemPerTB
	s.tbCount[k]++
	if s.Trace != nil {
		s.Trace.Add(trace.Event{Cycle: cycle, Kind: trace.TBLaunch, SM: int8(s.ID), Kernel: int8(k), Arg: uint64(slot)})
	}
}

func (s *SM) finalizeWarp(slotW int) {
	w := &s.warps[slotW]
	w.Active = false
	w.Gen++
	sched := &s.scheds[w.SchedID]
	for i, x := range sched.warps {
		if x == slotW {
			sched.warps = append(sched.warps[:i], sched.warps[i+1:]...)
			break
		}
	}
	if sched.lastIssued == slotW {
		sched.lastIssued = -1
	}
	s.freeWarps = append(s.freeWarps, slotW)
	tb := &s.tbs[w.TB]
	tb.warpsLeft--
	if tb.warpsLeft == 0 {
		k := int(tb.kernel)
		d := s.descs[k]
		s.threadsUsed -= d.ThreadsPerTB
		s.regsUsed -= d.ThreadsPerTB * d.RegsPerThread
		s.smemUsed -= d.SmemPerTB
		s.tbCount[k]--
		tb.active = false
		s.K[k].TBsDone++
		if s.Trace != nil {
			s.Trace.Add(trace.Event{Cycle: s.now, Kind: trace.TBDone, SM: int8(s.ID), Kernel: tb.kernel, Arg: uint64(w.TB)})
		}
	}
}

// lsuFree reports whether the LSU pipeline register can accept a new
// memory instruction.
func (s *SM) lsuFree() bool { return s.lsuIdx >= len(s.lsuReqs) }

// readyForMem reports whether warp w can issue its memory instruction.
func (s *SM) readyForMem(w *Warp, cycle int64) bool {
	if !w.Active || w.doneIssuing || w.lastCycle == cycle || w.ReadyAt > cycle {
		return false
	}
	if w.NextKind != kern.MemLoad && w.NextKind != kern.MemStore {
		return false
	}
	if w.outN > 0 && w.minBarrier() <= w.IssuedInstrs {
		return false
	}
	k := int(w.Kernel)
	d := s.descs[k]
	if w.NextKind == kern.MemLoad && w.outN >= d.MaxPendingLoads {
		return false
	}
	if !s.limiter.Allow(k, s.inflight[k]) {
		return false
	}
	return s.gate.CanIssue(k)
}

// issueMem performs the memory-issue stage: at most one warp memory
// instruction enters the LSU per cycle. It returns the scheduler that
// issued, or -1.
//
// Candidates are collected per kernel: the oldest ready memory warp of
// each kernel across all schedulers. The unmanaged default then picks
// the globally oldest one — greedy-then-oldest semantics, under which a
// memory-intensive kernel (whose warps are almost always memory-ready)
// naturally monopolizes the LSU, the starvation the paper's Section 3.2
// targets. BMI policies override the choice among kernels.
func (s *SM) issueMem(cycle int64) int {
	if !s.lsuFree() {
		return -1
	}
	s.candKernels = s.candKernels[:0]
	s.candWarps = s.candWarps[:0]
	s.candAges = s.candAges[:0]
	nk := len(s.descs)
	for si := range s.scheds {
		sc := &s.scheds[si]
		if sc.issuedAt == cycle {
			continue
		}
		var seenHere uint64 // kernels already found in this scheduler
		found := 0
		for _, slotW := range sc.warps {
			w := &s.warps[slotW]
			k := int(w.Kernel)
			if seenHere&(1<<uint(k)) != 0 {
				continue
			}
			if !s.readyForMem(w, cycle) {
				continue
			}
			// Within a scheduler warps are age-ordered, so the first
			// ready warp of each kernel is its oldest here.
			seenHere |= 1 << uint(k)
			found++
			idx := -1
			for i, ck := range s.candKernels {
				if ck == k {
					idx = i
					break
				}
			}
			if idx < 0 {
				s.candKernels = append(s.candKernels, k)
				s.candWarps = append(s.candWarps, slotW)
				s.candAges = append(s.candAges, w.age)
			} else if w.age < s.candAges[idx] {
				s.candWarps[idx] = slotW
				s.candAges[idx] = w.age
			}
			if found == nk {
				break
			}
		}
	}
	if len(s.candKernels) == 0 {
		return -1
	}
	pick := 0
	if len(s.candKernels) > 1 {
		if _, isNop := s.memPolicy.(NopMemPolicy); isNop {
			for i := 1; i < len(s.candAges); i++ {
				if s.candAges[i] < s.candAges[pick] {
					pick = i
				}
			}
		} else {
			pick = s.memPolicy.Pick(s.candKernels)
			if pick < 0 || pick >= len(s.candKernels) {
				pick = 0
			}
		}
	}
	slotW := s.candWarps[pick]
	w := &s.warps[slotW]
	k := int(w.Kernel)
	d := s.descs[k]
	kind := mem.Load
	if w.NextKind == kern.MemStore {
		kind = mem.Store
	}
	nreq := d.GenLines(&s.wAddr[slotW], &s.wRNG[slotW], s.lineBuf[:], kind == mem.Store, s.warmLines[k])
	barrier := uint64(noBarrier)
	if kind == mem.Load {
		barrier = w.IssuedInstrs + uint64(d.DepDist)
	}
	token := s.Pool.Token()
	token.Kernel, token.SM, token.Warp, token.Kind = k, s.ID, slotW, kind
	token.Total, token.BarrierIdx, token.WarpGen = nreq, barrier, w.Gen
	s.lsuReqs = s.lsuReqs[:0]
	s.lsuIdx = 0
	for i := 0; i < nreq; i++ {
		r := s.Pool.Request()
		r.LineAddr = s.space.LineOf(k, s.lineBuf[i])
		r.Kind = kind
		r.Kernel = k
		r.SM = s.ID
		r.Warp = slotW
		r.Instr = token
		r.IssueCycle = cycle
		s.lsuReqs = append(s.lsuReqs, r)
	}
	if kind == mem.Load {
		w.outBarriers[w.outN] = barrier
		w.outN++
	}
	s.inflight[k] += nreq
	s.limiter.NoteInflight(k, s.inflight[k])
	s.memPolicy.OnIssue(k, nreq)
	s.gate.OnIssue(k)
	if s.Trace != nil {
		s.Trace.Add(trace.Event{Cycle: cycle, Kind: trace.IssueMem, SM: int8(s.ID), Kernel: int8(k), Warp: int16(slotW), Arg: uint64(nreq)})
	}
	s.K[k].Instrs++
	s.K[k].MemInstrs++
	if s.seriesOn {
		s.seriesIssued[k][cycle/stats.SeriesInterval]++
	}
	sched := int(w.SchedID)
	s.scheds[sched].issuedAt = cycle
	s.scheds[sched].lastIssued = slotW
	// advanceWarp may finalize the warp (store as last instruction), in
	// which case it also clears the scheduler's greedy pointer.
	s.advanceWarp(slotW, cycle)
	return sched
}

// advanceWarp moves the warp in slot past the instruction it just issued.
func (s *SM) advanceWarp(slot int, cycle int64) {
	w := &s.warps[slot]
	w.lastCycle = cycle
	w.IssuedInstrs++
	d := s.descs[w.Kernel]
	if w.IssuedInstrs >= d.InstrsPerWarp {
		w.doneIssuing = true
		if w.outN == 0 {
			s.finalizeWarp(slot)
		}
		return
	}
	w.NextKind, w.pos = d.NextKind(w.pos, &s.wRNG[slot])
}

// readyForCompute reports whether warp w can issue an ALU/SFU
// instruction this cycle, given remaining port budgets.
func (s *SM) readyForCompute(w *Warp, cycle int64, aluLeft, sfuLeft int) bool {
	if !w.Active || w.doneIssuing || w.lastCycle == cycle || w.ReadyAt > cycle {
		return false
	}
	switch w.NextKind {
	case kern.ALU:
		if aluLeft <= 0 {
			return false
		}
	case kern.SFU:
		if sfuLeft <= 0 {
			return false
		}
	case kern.Smem:
		if s.smemBusyUntil > cycle {
			return false
		}
	default:
		return false
	}
	if w.outN > 0 && w.minBarrier() <= w.IssuedInstrs {
		return false
	}
	return s.gate.CanIssue(int(w.Kernel))
}

// issueCompute runs each scheduler's compute-issue slot.
func (s *SM) issueCompute(cycle int64, memScheduler int) {
	aluLeft := s.cfg.SM.ALUPorts
	sfuLeft := s.cfg.SM.SFUPorts
	lrr := s.cfg.SM.Scheduler == config.LRR
	for si := range s.scheds {
		if si == memScheduler {
			continue
		}
		sc := &s.scheds[si]
		if sc.issuedAt == cycle || len(sc.warps) == 0 {
			continue
		}
		picked := -1
		if !lrr && sc.lastIssued >= 0 {
			w := &s.warps[sc.lastIssued]
			if int(w.SchedID) == si && s.readyForCompute(w, cycle, aluLeft, sfuLeft) {
				picked = sc.lastIssued
			}
		}
		if picked < 0 {
			n := len(sc.warps)
			start := 0
			if lrr {
				start = sc.rrPos % n
			}
			for i := 0; i < n; i++ {
				slotW := sc.warps[(start+i)%n]
				w := &s.warps[slotW]
				if s.readyForCompute(w, cycle, aluLeft, sfuLeft) {
					picked = slotW
					if lrr {
						sc.rrPos = (start + i + 1) % n
					}
					break
				}
			}
		}
		if picked < 0 {
			continue
		}
		w := &s.warps[picked]
		k := int(w.Kernel)
		switch w.NextKind {
		case kern.ALU:
			aluLeft--
			s.ALUIssued++
			s.K[k].ALUInstrs++
			w.ReadyAt = cycle + int64(s.cfg.SM.ALULat)
		case kern.SFU:
			sfuLeft--
			s.SFUIssued++
			s.K[k].SFUInstrs++
			w.ReadyAt = cycle + int64(s.cfg.SM.SFULat)
		case kern.Smem:
			d := s.descs[k]
			// A bank conflict serializes the access over extra cycles
			// (degree 2..SmemBanks/4, drawn per access).
			busy := int64(1)
			if d.SmemConflictProb > 0 && s.wRNG[picked].Bool(d.SmemConflictProb) {
				maxDeg := s.cfg.SM.SmemBanks / 4
				if maxDeg < 2 {
					maxDeg = 2
				}
				busy = int64(2 + s.wRNG[picked].Intn(maxDeg-1))
			}
			s.smemBusyUntil = cycle + busy
			s.K[k].SmemInstrs++
			w.ReadyAt = cycle + int64(s.cfg.SM.SmemLat) + busy - 1
		}
		s.K[k].Instrs++
		if s.seriesOn {
			s.seriesIssued[k][cycle/stats.SeriesInterval]++
		}
		s.gate.OnIssue(k)
		if s.Trace != nil {
			s.Trace.Add(trace.Event{Cycle: cycle, Kind: trace.IssueCompute, SM: int8(s.ID), Kernel: int8(k), Warp: int16(picked)})
		}
		sc.issuedAt = cycle
		sc.lastIssued = picked
		s.advanceWarp(picked, cycle)
	}
}

// lsuTick services one coalesced request against the L1D.
func (s *SM) lsuTick(cycle int64) {
	if s.lsuIdx >= len(s.lsuReqs) {
		return
	}
	req := s.lsuReqs[s.lsuIdx]
	res := s.L1.Access(req)
	if res.Failed() {
		k := req.Kernel
		s.LSUStall++
		s.K[k].StallRsf++
		s.limiter.OnRsFail(k)
		if s.Trace != nil {
			s.Trace.Add(trace.Event{Cycle: cycle, Kind: trace.RsFail, SM: int8(s.ID), Kernel: int8(k), Warp: int16(req.Warp), Arg: uint64(res)})
		}
		return
	}
	s.lsuIdx++
	k := req.Kernel
	s.LSUBusy++
	s.K[k].Requests++
	s.limiter.OnRequest(k)
	if s.seriesOn {
		s.seriesL1Acc[k][cycle/stats.SeriesInterval]++
	}
	if s.Trace != nil {
		var arg uint64
		switch res {
		case cache.Miss:
			arg = 1
		case cache.HitPending:
			arg = 2
		case cache.Forwarded:
			arg = 3
		case cache.Bypassed:
			arg = 4
		}
		s.Trace.Add(trace.Event{Cycle: cycle, Kind: trace.L1Access, SM: int8(s.ID), Kernel: int8(k), Warp: int16(req.Warp), Arg: arg})
	}
	switch res {
	case cache.Hit:
		// The cache kept nothing: the request retires here.
		if req.Kind == mem.Load {
			s.compQ.Push(compEntry{token: req.Instr, at: cycle + int64(s.cfg.L1D.HitLatency)})
		} else {
			s.onReqDone(req.Instr)
		}
		s.Pool.Release(req)
	case cache.Forwarded:
		// Stores complete at forward; the write travels below on its
		// own. Sever the token link first — the token may be recycled
		// while the store is still in flight, and stores never come
		// back up to dereference it.
		token := req.Instr
		req.Instr = nil
		s.onReqDone(token)
	case cache.Miss, cache.HitPending, cache.Bypassed:
		// Completion arrives with the fill (or, for a bypassed load,
		// with the response addressed straight to this instruction).
	}
}

// Deliver accepts one memory response (a filled line) from the
// interconnect and completes the merged loads. cycle is the cycle the
// response is delivered in (the SM may not have Ticked yet this cycle).
func (s *SM) Deliver(resp *mem.Request, cycle int64) {
	s.now = cycle
	if resp.Instr != nil {
		// A bypassed load: the response answers the original request
		// directly, with no line to fill; the request retires here.
		s.onReqDone(resp.Instr)
		s.Pool.Release(resp)
		return
	}
	if s.Trace != nil {
		s.Trace.Add(trace.Event{Cycle: cycle, Kind: trace.Fill, SM: int8(s.ID), Kernel: int8(resp.Kernel), Arg: resp.LineAddr})
	}
	targets := s.L1.Fill(resp.LineAddr)
	for _, t := range targets {
		if t.Instr != nil {
			s.onReqDone(t.Instr)
		}
		s.Pool.Release(t)
	}
	s.Pool.Release(resp)
}

// PeekOutbound returns the next request destined for the memory
// partitions without consuming it.
func (s *SM) PeekOutbound() *mem.Request { return s.L1.PeekMiss() }

// PopOutbound consumes the next outbound request.
func (s *SM) PopOutbound() *mem.Request { return s.L1.PopMiss() }

// Validate checks the workload against the configuration.
func Validate(cfg *config.Config, descs []*kern.Desc) error {
	for _, d := range descs {
		if err := d.Validate(cfg); err != nil {
			return err
		}
		if d.ReqPerMinst > 32 {
			return fmt.Errorf("sm: kernel %s ReqPerMinst (%d) exceeds the coalescer buffer (32)",
				d.Name, d.ReqPerMinst)
		}
	}
	return nil
}
