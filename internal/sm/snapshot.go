// Snapshot/restore for one SM: warps, TB slots, schedulers, occupancy
// accounting, the LSU pipeline register, the completion queue, series
// and statistics — plus the embedded L1 — deep-copied through the
// machine-wide mem.Cloner. Requests and tokens are cloned (never
// pool-drawn), so releasing/poisoning the originals after a snapshot
// cannot corrupt it.
//
// Deliberately NOT captured: the Pool (a restored SM refills its own),
// the Trace buffer (an external observer, not engine state), warmLines
// and the scratch buffers (derived/transient), and the issue policies —
// policy objects may hold cross-SM shared state the cloner cannot see,
// so the GPU layer refuses to snapshot while stateful policies are
// installed and reinstalls them after restore (see gpu.InstallPolicies).

package sm

import (
	"fmt"
	"unsafe"

	"repro/internal/cache"
	"repro/internal/kern"
	"repro/internal/mem"
	"repro/internal/stats"
	"repro/internal/xrand"
)

// Snapshot is the captured state of one SM. Immutable once taken;
// Restore deep-copies out of it, so one snapshot can seed many SMs.
type Snapshot struct {
	warps     []Warp
	wAddr     []kern.AddrState
	wRNG      []xrand.Source
	freeWarps []int
	tbs       []tbSlot
	scheds    []scheduler

	tbCount     []int
	tbLaunched  []uint64
	threadsUsed int
	regsUsed    int
	smemUsed    int
	dispatchPtr int
	schedAssign int
	warpAge     int64

	// Only the undispatched suffix of the LSU pipeline register is
	// captured (requests at indices < lsuIdx have already left; the live
	// SM only ever reads lsuReqs[lsuIdx:]), so the restored SM starts
	// with lsuIdx = 0.
	lsuReqs []*mem.Request

	compQ []compEntry
	now   int64

	smemBusyUntil int64
	inflight      []int

	counters  []stats.KernelCounters
	lsuStall  uint64
	lsuBusy   uint64
	aluIssued uint64
	sfuIssued uint64

	seriesOn     bool
	seriesIssued [][]uint32
	seriesL1Acc  [][]uint32

	rng xrand.Source

	l1 *cache.Snapshot
}

// Snapshot captures the SM's full state (including its L1) through cl,
// the snapshot operation's machine-wide cloner.
func (s *SM) Snapshot(cl *mem.Cloner) *Snapshot {
	sn := &Snapshot{
		warps:         append([]Warp(nil), s.warps...),
		wAddr:         append([]kern.AddrState(nil), s.wAddr...),
		wRNG:          append([]xrand.Source(nil), s.wRNG...),
		freeWarps:     append([]int(nil), s.freeWarps...),
		tbCount:       append([]int(nil), s.tbCount...),
		tbLaunched:    append([]uint64(nil), s.tbLaunched...),
		threadsUsed:   s.threadsUsed,
		regsUsed:      s.regsUsed,
		smemUsed:      s.smemUsed,
		dispatchPtr:   s.dispatchPtr,
		schedAssign:   s.schedAssign,
		warpAge:       s.warpAge,
		now:           s.now,
		smemBusyUntil: s.smemBusyUntil,
		inflight:      append([]int(nil), s.inflight...),
		counters:      append([]stats.KernelCounters(nil), s.K...),
		lsuStall:      s.LSUStall,
		lsuBusy:       s.LSUBusy,
		aluIssued:     s.ALUIssued,
		sfuIssued:     s.SFUIssued,
		seriesOn:      s.seriesOn,
		rng:           *s.rng,
		l1:            s.L1.Snapshot(cl),
	}
	for i := range s.tbs {
		tb := s.tbs[i]
		tb.warps = append([]int(nil), s.tbs[i].warps...)
		sn.tbs = append(sn.tbs, tb)
	}
	for i := range s.scheds {
		sc := s.scheds[i]
		sc.warps = append([]int(nil), s.scheds[i].warps...)
		sn.scheds = append(sn.scheds, sc)
	}
	for _, r := range s.lsuReqs[s.lsuIdx:] {
		sn.lsuReqs = append(sn.lsuReqs, cl.Request(r))
	}
	sn.compQ = s.compQ.Snapshot(func(e compEntry) compEntry {
		return compEntry{token: cl.Token(e.token), at: e.at}
	})
	if s.seriesOn {
		for k := range s.seriesIssued {
			sn.seriesIssued = append(sn.seriesIssued, append([]uint32(nil), s.seriesIssued[k]...))
			sn.seriesL1Acc = append(sn.seriesL1Acc, append([]uint32(nil), s.seriesL1Acc[k]...))
		}
	}
	return sn
}

// Restore overwrites the SM's state from sn, deep-copying through cl
// (the restore operation's machine-wide cloner). The SM must have the
// geometry the snapshot was taken from; its policies are untouched (the
// GPU layer reinstalls them).
func (s *SM) Restore(sn *Snapshot, cl *mem.Cloner) error {
	if len(sn.warps) != len(s.warps) || len(sn.tbs) != len(s.tbs) ||
		len(sn.scheds) != len(s.scheds) || len(sn.inflight) != len(s.inflight) {
		return fmt.Errorf("sm %d: restore: geometry mismatch (warps %d/%d, tbs %d/%d, scheds %d/%d, kernels %d/%d)",
			s.ID, len(sn.warps), len(s.warps), len(sn.tbs), len(s.tbs),
			len(sn.scheds), len(s.scheds), len(sn.inflight), len(s.inflight))
	}
	if err := s.L1.Restore(sn.l1, cl); err != nil {
		return fmt.Errorf("sm %d: %w", s.ID, err)
	}
	copy(s.warps, sn.warps)
	copy(s.wAddr, sn.wAddr)
	copy(s.wRNG, sn.wRNG)
	s.freeWarps = append(s.freeWarps[:0], sn.freeWarps...)
	for i := range s.tbs {
		w := append(s.tbs[i].warps[:0], sn.tbs[i].warps...)
		s.tbs[i] = sn.tbs[i]
		s.tbs[i].warps = w
	}
	for i := range s.scheds {
		w := append(s.scheds[i].warps[:0], sn.scheds[i].warps...)
		s.scheds[i] = sn.scheds[i]
		s.scheds[i].warps = w
	}
	copy(s.tbCount, sn.tbCount)
	copy(s.tbLaunched, sn.tbLaunched)
	s.threadsUsed = sn.threadsUsed
	s.regsUsed = sn.regsUsed
	s.smemUsed = sn.smemUsed
	s.dispatchPtr = sn.dispatchPtr
	s.schedAssign = sn.schedAssign
	s.warpAge = sn.warpAge
	s.lsuReqs = s.lsuReqs[:0]
	for _, r := range sn.lsuReqs {
		s.lsuReqs = append(s.lsuReqs, cl.Request(r))
	}
	s.lsuIdx = 0
	s.compQ.Restore(sn.compQ, func(e compEntry) compEntry {
		return compEntry{token: cl.Token(e.token), at: e.at}
	})
	s.now = sn.now
	s.smemBusyUntil = sn.smemBusyUntil
	copy(s.inflight, sn.inflight)
	copy(s.K, sn.counters)
	s.LSUStall = sn.lsuStall
	s.LSUBusy = sn.lsuBusy
	s.ALUIssued = sn.aluIssued
	s.SFUIssued = sn.sfuIssued
	if sn.seriesOn {
		if !s.seriesOn || len(s.seriesIssued) != len(sn.seriesIssued) {
			return fmt.Errorf("sm %d: restore: series shape mismatch", s.ID)
		}
		for k := range sn.seriesIssued {
			if len(s.seriesIssued[k]) < len(sn.seriesIssued[k]) {
				return fmt.Errorf("sm %d: restore: series kernel %d has %d buckets, snapshot has %d",
					s.ID, k, len(s.seriesIssued[k]), len(sn.seriesIssued[k]))
			}
			copy(s.seriesIssued[k], sn.seriesIssued[k])
			copy(s.seriesL1Acc[k], sn.seriesL1Acc[k])
		}
	}
	*s.rng = sn.rng
	return nil
}

// SetPolicies replaces the SM's issue policies; nil arguments fall back
// to the unmanaged defaults, exactly as in New. The GPU layer uses this
// to install the managed policies on a freshly restored (or warmed-up)
// machine.
func (s *SM) SetPolicies(memPolicy MemIssuePolicy, limiter Limiter, gate IssueGate) {
	s.memPolicy = memPolicy
	s.limiter = limiter
	s.gate = gate
	if s.memPolicy == nil {
		s.memPolicy = NopMemPolicy{}
	}
	if s.limiter == nil {
		s.limiter = NopLimiter{}
	}
	if s.gate == nil {
		s.gate = NopGate{}
	}
}

// PendingRequests returns how many requests/tokens the SM currently
// holds in its LSU, completion queue and L1 (snapshot-footprint
// accounting).
func (s *SM) PendingRequests() int {
	return len(s.lsuReqs[s.lsuIdx:]) + s.compQ.Len() + s.L1.PendingRequests()
}

// Bytes estimates the snapshot's memory footprint, including the
// embedded L1 (cloned requests/tokens are counted once at the GPU
// level).
func (sn *Snapshot) Bytes() int64 {
	total := int64(len(sn.warps)) * int64(unsafe.Sizeof(Warp{}))
	total += int64(len(sn.wAddr)) * int64(unsafe.Sizeof(kern.AddrState{}))
	total += int64(len(sn.wRNG)) * int64(unsafe.Sizeof(xrand.Source{}))
	total += int64(len(sn.freeWarps)+len(sn.tbCount)+len(sn.inflight))*8 +
		int64(len(sn.tbLaunched))*8
	for i := range sn.tbs {
		total += int64(unsafe.Sizeof(tbSlot{})) + int64(len(sn.tbs[i].warps))*8
	}
	for i := range sn.scheds {
		total += int64(unsafe.Sizeof(scheduler{})) + int64(len(sn.scheds[i].warps))*8
	}
	total += int64(len(sn.lsuReqs))*8 + int64(len(sn.compQ))*int64(unsafe.Sizeof(compEntry{}))
	total += int64(len(sn.counters)) * int64(unsafe.Sizeof(stats.KernelCounters{}))
	for k := range sn.seriesIssued {
		total += int64(len(sn.seriesIssued[k])+len(sn.seriesL1Acc[k])) * 4
	}
	return total + sn.l1.Bytes()
}
