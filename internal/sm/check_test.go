package sm

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/kern"
)

// fakeLimiter is a limiter with a reportable cap (0 = uncapped).
type fakeLimiter struct{ caps []int }

func (f *fakeLimiter) Allow(kernel, inflight int) bool {
	return f.caps[kernel] == 0 || inflight < f.caps[kernel]
}
func (f *fakeLimiter) OnRequest(kernel int)              {}
func (f *fakeLimiter) OnRsFail(kernel int)               {}
func (f *fakeLimiter) NoteInflight(kernel, inflight int) {}
func (f *fakeLimiter) Tick(cycle int64)                  {}
func (f *fakeLimiter) StaticLimit(k int) int             { return f.caps[k] }

// faultyPolicy is a MemIssuePolicy whose internal invariant fails.
type faultyPolicy struct{ err error }

func (p *faultyPolicy) Pick(kernels []int) int   { return 0 }
func (p *faultyPolicy) OnIssue(kernel, reqs int) {}
func (p *faultyPolicy) CheckInvariant() error    { return p.err }

func TestCheckInvariantsCleanRun(t *testing.T) {
	c := computeKernel()
	m := memKernel()
	s, _ := newSM(t, []*kern.Desc{&c, &m}, []int{2, 2})
	pm := &perfectMem{lat: 40}
	for cycle := int64(0); cycle < 5000; cycle++ {
		s.Tick(cycle)
		pm.tick(s, cycle)
		if err := s.CheckInvariants(cycle); err != nil {
			t.Fatalf("healthy SM reported violation at cycle %d: %v", cycle, err)
		}
	}
	if s.IssuedTotal() == 0 {
		t.Fatal("no instructions issued; test exercised nothing")
	}
	if !s.ResidentTBs() {
		t.Fatal("expected resident thread blocks")
	}
}

func TestCheckInvariantsDetectsInflightLeak(t *testing.T) {
	c := computeKernel()
	m := memKernel()
	s, _ := newSM(t, []*kern.Desc{&c, &m}, []int{1, 1})
	// Corrupt the accounting the way a double-completion bug would.
	s.inflight[1] = -1
	err := s.CheckInvariants(1234)
	if err == nil {
		t.Fatal("negative in-flight count not detected")
	}
	var ie *InvariantError
	if !errors.As(err, &ie) {
		t.Fatalf("error is %T, want *InvariantError", err)
	}
	if ie.Rule != "inflight-negative" || ie.SM != 0 || ie.Kernel != 1 || ie.Cycle != 1234 {
		t.Fatalf("violation context wrong: %+v", ie)
	}
}

func TestCheckInvariantsEnforcesMILCap(t *testing.T) {
	c := computeKernel()
	m := memKernel()
	lim := &fakeLimiter{caps: []int{0, 8}}
	cfg := tinyConfig()
	descs := []*kern.Desc{&c, &m}
	if err := Validate(&cfg, descs); err != nil {
		t.Fatal(err)
	}
	s := New(0, &cfg, descs, []int{1, 1}, nil, lim, nil, 1)

	// Within cap plus one instruction's coalescer slack: legal.
	s.inflight[1] = 8 + coalescerSlack
	if err := s.CheckInvariants(10); err != nil {
		t.Fatalf("legal overshoot flagged: %v", err)
	}
	// Beyond the slack: the limiter is not being consulted — a leak.
	s.inflight[1] = 8 + coalescerSlack + 1
	err := s.CheckInvariants(11)
	var ie *InvariantError
	if !errors.As(err, &ie) || ie.Rule != "mil-cap" || ie.Kernel != 1 {
		t.Fatalf("cap violation not attributed: %v", err)
	}
	// Kernel 0 is uncapped: any count is legal for the cap rule.
	s.inflight[1] = 0
	s.inflight[0] = 500
	if err := s.CheckInvariants(12); err != nil {
		t.Fatalf("uncapped kernel flagged: %v", err)
	}
}

func TestCheckInvariantsSurfacesPolicyViolation(t *testing.T) {
	c := computeKernel()
	cfg := tinyConfig()
	descs := []*kern.Desc{&c}
	if err := Validate(&cfg, descs); err != nil {
		t.Fatal(err)
	}
	pol := &faultyPolicy{}
	s := New(0, &cfg, descs, []int{1}, pol, nil, nil, 1)
	if err := s.CheckInvariants(0); err != nil {
		t.Fatalf("clean policy flagged: %v", err)
	}
	pol.err = fmt.Errorf("quota stuck at zero")
	err := s.CheckInvariants(77)
	var ie *InvariantError
	if !errors.As(err, &ie) || ie.Rule != "mem-policy" || ie.Cycle != 77 {
		t.Fatalf("policy violation not surfaced: %v", err)
	}
	if ie.Detail != "quota stuck at zero" {
		t.Fatalf("detail lost: %q", ie.Detail)
	}
}
