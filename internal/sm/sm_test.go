package sm

import (
	"testing"

	"repro/internal/config"
	"repro/internal/kern"
	"repro/internal/mem"
)

// tinyConfig returns a 1-SM machine with small structures so tests can
// reason about exact resource counts.
func tinyConfig() config.Config {
	c := config.Scaled(1)
	return c
}

// computeKernel never touches memory-adjacent structures heavily.
func computeKernel() kern.Desc {
	return kern.Desc{
		Name: "comp", ThreadsPerTB: 64, RegsPerThread: 16, SmemPerTB: 0,
		CPerM: 30, SFUFrac: 0, ReqPerMinst: 1, StoreFrac: 0,
		DepDist: 30, MaxPendingLoads: 1,
		FootprintLines: 64, ReuseProb: 0, ReuseWindow: 0,
		WarmProb: 0, InstrsPerWarp: 500,
	}
}

func memKernel() kern.Desc {
	return kern.Desc{
		Name: "memk", ThreadsPerTB: 64, RegsPerThread: 16, SmemPerTB: 0,
		CPerM: 1, SFUFrac: 0, ReqPerMinst: 4, StoreFrac: 0,
		DepDist: 9, MaxPendingLoads: 4,
		FootprintLines: 4096, ReuseProb: 0, ReuseWindow: 0,
		WarmProb: 0, InstrsPerWarp: 500,
	}
}

func newSM(t *testing.T, descs []*kern.Desc, quota []int) (*SM, *config.Config) {
	t.Helper()
	cfg := tinyConfig()
	if err := Validate(&cfg, descs); err != nil {
		t.Fatal(err)
	}
	s := New(0, &cfg, descs, quota, nil, nil, nil, 1)
	return s, &cfg
}

// drainMem services the SM's outbound traffic with a perfect memory:
// every fetch returns after lat cycles.
type perfectMem struct {
	pending []struct {
		req *mem.Request
		at  int64
	}
	lat int64
}

func (p *perfectMem) tick(s *SM, cycle int64) {
	for {
		r := s.PeekOutbound()
		if r == nil {
			break
		}
		s.PopOutbound()
		if r.Kind == mem.Load {
			p.pending = append(p.pending, struct {
				req *mem.Request
				at  int64
			}{r, cycle + p.lat})
		}
	}
	keep := p.pending[:0]
	for _, e := range p.pending {
		if e.at <= cycle {
			s.Deliver(e.req, cycle)
		} else {
			keep = append(keep, e)
		}
	}
	p.pending = keep
}

func run(s *SM, pm *perfectMem, cycles int64) {
	for c := int64(0); c < cycles; c++ {
		pm.tick(s, c)
		s.Tick(c)
	}
}

func TestTBDispatchRespectsQuota(t *testing.T) {
	d := computeKernel()
	s, _ := newSM(t, []*kern.Desc{&d}, []int{3})
	pm := &perfectMem{lat: 50}
	run(s, pm, 100)
	if got := s.TBCount(0); got != 3 {
		t.Fatalf("resident TBs = %d, want quota 3", got)
	}
}

func TestTBDispatchRespectsResources(t *testing.T) {
	d := computeKernel()
	d.ThreadsPerTB = 1024 // 3 TBs max by threads (3072)
	s, _ := newSM(t, []*kern.Desc{&d}, []int{16})
	pm := &perfectMem{lat: 50}
	run(s, pm, 100)
	if got := s.TBCount(0); got != 3 {
		t.Fatalf("resident TBs = %d, want 3 (thread-limited)", got)
	}
}

func TestComputeKernelMakesProgress(t *testing.T) {
	d := computeKernel()
	s, _ := newSM(t, []*kern.Desc{&d}, []int{8})
	pm := &perfectMem{lat: 50}
	run(s, pm, 5000)
	if s.K[0].Instrs == 0 {
		t.Fatal("no instructions issued")
	}
	ipc := float64(s.K[0].Instrs) / 5000
	if ipc < 1 {
		t.Fatalf("compute kernel IPC = %v, want >= 1", ipc)
	}
	if s.K[0].ALUInstrs == 0 {
		t.Fatal("no ALU instructions")
	}
}

func TestTBsCompleteAndRedispatch(t *testing.T) {
	d := computeKernel()
	d.InstrsPerWarp = 100
	s, _ := newSM(t, []*kern.Desc{&d}, []int{2})
	pm := &perfectMem{lat: 20}
	run(s, pm, 20000)
	if s.K[0].TBsDone == 0 {
		t.Fatal("no TBs completed")
	}
	if got := s.TBCount(0); got != 2 {
		t.Fatalf("TB slots must be refilled after completion, resident=%d", got)
	}
}

func TestIssueNeverExceedsSchedulers(t *testing.T) {
	d := computeKernel()
	d.CPerM = 5
	d.DepDist = 5
	dm := memKernel()
	s, cfg := newSM(t, []*kern.Desc{&d, &dm}, []int{4, 4})
	pm := &perfectMem{lat: 60}
	var prev uint64
	for c := int64(0); c < 3000; c++ {
		pm.tick(s, c)
		s.Tick(c)
		total := s.K[0].Instrs + s.K[1].Instrs
		if total-prev > uint64(cfg.SM.Schedulers) {
			t.Fatalf("cycle %d issued %d instructions (> %d schedulers)",
				c, total-prev, cfg.SM.Schedulers)
		}
		prev = total
	}
}

func TestMemoryInstructionsGenerateRequests(t *testing.T) {
	d := memKernel()
	s, _ := newSM(t, []*kern.Desc{&d}, []int{4})
	pm := &perfectMem{lat: 40}
	run(s, pm, 3000)
	if s.K[0].MemInstrs == 0 {
		t.Fatal("no memory instructions")
	}
	reqPerM := float64(s.K[0].Requests) / float64(s.K[0].MemInstrs)
	if reqPerM < 3.5 || reqPerM > 4.5 {
		t.Fatalf("requests per memory instruction = %v, want ~4", reqPerM)
	}
}

func TestInflightAccountingReturnsToZero(t *testing.T) {
	d := memKernel()
	d.InstrsPerWarp = 40
	s, _ := newSM(t, []*kern.Desc{&d}, []int{1})
	pm := &perfectMem{lat: 30}
	run(s, pm, 2000)
	// Stop dispatching: drain by setting quota to zero and waiting.
	s.SetQuota([]int{0})
	for c := int64(2000); c < 12000; c++ {
		pm.tick(s, c)
		s.Tick(c)
	}
	if got := s.Inflight(0); got != 0 {
		t.Fatalf("in-flight accesses = %d after drain, want 0", got)
	}
	if got := s.TBCount(0); got != 0 {
		t.Fatalf("TBs resident after drain = %d, want 0", got)
	}
}

// blockAll denies all memory issue for kernel 1.
type blockAll struct{}

func (blockAll) Allow(kernel, inflight int) bool   { return kernel != 1 }
func (blockAll) OnRequest(kernel int)              {}
func (blockAll) OnRsFail(kernel int)               {}
func (blockAll) NoteInflight(kernel, inflight int) {}
func (blockAll) Tick(cycle int64)                  {}

func TestLimiterBlocksMemoryIssue(t *testing.T) {
	d0 := computeKernel()
	d1 := memKernel()
	cfg := tinyConfig()
	descs := []*kern.Desc{&d0, &d1}
	s := New(0, &cfg, descs, []int{4, 4}, nil, blockAll{}, nil, 1)
	pm := &perfectMem{lat: 40}
	run(s, pm, 3000)
	if s.K[1].MemInstrs != 0 {
		t.Fatalf("limited kernel issued %d memory instructions", s.K[1].MemInstrs)
	}
	if s.K[0].MemInstrs == 0 {
		t.Fatal("unlimited kernel should still issue")
	}
}

// preferKernel always picks a given kernel when it is a candidate.
type preferKernel struct {
	want   int
	issues []int
}

func (p *preferKernel) Pick(kernels []int) int {
	for i, k := range kernels {
		if k == p.want {
			return i
		}
	}
	return 0
}
func (p *preferKernel) OnIssue(kernel, reqs int) { p.issues = append(p.issues, kernel) }

func TestMemPolicyArbitratesIssue(t *testing.T) {
	d0 := memKernel()
	d1 := memKernel()
	d1.Name = "memk2"
	cfg := tinyConfig()
	descs := []*kern.Desc{&d0, &d1}
	pol := &preferKernel{want: 1}
	s := New(0, &cfg, descs, []int{4, 4}, pol, nil, nil, 1)
	pm := &perfectMem{lat: 40}
	run(s, pm, 3000)
	if len(pol.issues) == 0 {
		t.Fatal("policy never consulted")
	}
	k1 := 0
	for _, k := range pol.issues {
		if k == 1 {
			k1++
		}
	}
	// Kernel 1 must win clearly more often (it is preferred whenever
	// both are candidates; kernel 0 still issues when alone).
	if frac := float64(k1) / float64(len(pol.issues)); frac < 0.6 {
		t.Fatalf("preferred kernel won only %.2f of issues", frac)
	}
}

// denyGate blocks all issue of kernel 0.
type denyGate struct{}

func (denyGate) CanIssue(kernel int) bool { return kernel != 0 }
func (denyGate) OnIssue(kernel int)       {}
func (denyGate) Tick(cycle int64)         {}

func TestGateBlocksAllIssue(t *testing.T) {
	d0 := computeKernel()
	d1 := computeKernel()
	d1.Name = "comp2"
	cfg := tinyConfig()
	descs := []*kern.Desc{&d0, &d1}
	s := New(0, &cfg, descs, []int{2, 2}, nil, nil, denyGate{}, 1)
	pm := &perfectMem{lat: 40}
	run(s, pm, 2000)
	if s.K[0].Instrs != 0 {
		t.Fatalf("gated kernel issued %d instructions", s.K[0].Instrs)
	}
	if s.K[1].Instrs == 0 {
		t.Fatal("ungated kernel should issue")
	}
}

func TestDeterminism(t *testing.T) {
	runOnce := func() (uint64, uint64) {
		d0 := computeKernel()
		d1 := memKernel()
		cfg := tinyConfig()
		descs := []*kern.Desc{&d0, &d1}
		s := New(0, &cfg, descs, []int{4, 4}, nil, nil, nil, 7)
		pm := &perfectMem{lat: 45}
		run(s, pm, 4000)
		return s.K[0].Instrs, s.K[1].Instrs
	}
	a0, a1 := runOnce()
	b0, b1 := runOnce()
	if a0 != b0 || a1 != b1 {
		t.Fatalf("nondeterministic: (%d,%d) vs (%d,%d)", a0, a1, b0, b1)
	}
}

func TestSeriesCollection(t *testing.T) {
	d := computeKernel()
	cfg := tinyConfig()
	descs := []*kern.Desc{&d}
	s := New(0, &cfg, descs, []int{4}, nil, nil, nil, 1)
	s.EnableSeries(5000)
	pm := &perfectMem{lat: 30}
	run(s, pm, 5000)
	iss, acc := s.Series(0)
	if iss == nil || acc == nil {
		t.Fatal("series not collected")
	}
	var sum uint64
	for _, v := range iss {
		sum += uint64(v)
	}
	if sum != s.K[0].Instrs {
		t.Fatalf("series total %d != issued %d", sum, s.K[0].Instrs)
	}
}

func TestValidateRejectsOversizedCoalescing(t *testing.T) {
	cfg := tinyConfig()
	d := computeKernel()
	d.ReqPerMinst = 33
	if err := Validate(&cfg, []*kern.Desc{&d}); err == nil {
		t.Fatal("ReqPerMinst > 32 must be rejected")
	}
}

func TestWarpBarrierBlocksDependentInstr(t *testing.T) {
	// DepDist 1 with CPerM 2: after a load, one compute issues, then the
	// warp must block until the load returns. With a huge latency the
	// warp wedges, bounding issued instructions.
	d := kern.Desc{
		Name: "dep", ThreadsPerTB: 32, RegsPerThread: 16,
		CPerM: 2, ReqPerMinst: 1, DepDist: 1, MaxPendingLoads: 1,
		FootprintLines: 64, InstrsPerWarp: 100,
	}
	cfg := tinyConfig()
	s := New(0, &cfg, []*kern.Desc{&d}, []int{1}, nil, nil, nil, 1)
	pm := &perfectMem{lat: 1 << 30} // loads never return
	run(s, pm, 2000)
	// One warp: issues up to the first load + DepDist instructions, then
	// stalls forever. Loop: C C M -> after M, 1 more instr then block.
	if s.K[0].Instrs > 8 {
		t.Fatalf("warp issued %d instructions past an unresolved load", s.K[0].Instrs)
	}
	if s.K[0].Instrs == 0 {
		t.Fatal("warp never started")
	}
}

// TestGTOGreedierThanLRR: greedy-then-oldest runs one warp ahead while
// loose round-robin spreads issue evenly, so the spread of per-warp
// progress at a snapshot must be wider under GTO.
func TestGTOGreedierThanLRR(t *testing.T) {
	spread := func(policy config.SchedulerPolicy) uint64 {
		cfg := tinyConfig()
		cfg.SM.Scheduler = policy
		// Single-cycle ALU latency keeps every warp ready every cycle,
		// exposing the pure scheduling-order difference.
		cfg.SM.ALULat = 1
		d := computeKernel()
		d.InstrsPerWarp = 1 << 30 // never finish: measure steady progress
		descs := []*kern.Desc{&d}
		s := New(0, &cfg, descs, []int{4}, nil, nil, nil, 1)
		pm := &perfectMem{lat: 40}
		run(s, pm, 3000)
		var lo, hi uint64 = ^uint64(0), 0
		for i := range s.warps {
			w := &s.warps[i]
			if !w.Active {
				continue
			}
			if w.IssuedInstrs < lo {
				lo = w.IssuedInstrs
			}
			if w.IssuedInstrs > hi {
				hi = w.IssuedInstrs
			}
		}
		return hi - lo
	}
	gto := spread(config.GTO)
	lrr := spread(config.LRR)
	if gto <= lrr {
		t.Fatalf("GTO progress spread (%d) should exceed LRR's (%d)", gto, lrr)
	}
}

func TestDrainReleasesResources(t *testing.T) {
	d := computeKernel()
	s, _ := newSM(t, []*kern.Desc{&d}, []int{4})
	pm := &perfectMem{lat: 30}
	run(s, pm, 500)
	if s.TBCount(0) == 0 {
		t.Fatal("setup: no TBs resident")
	}
	s.SetQuota([]int{0})
	s.Drain()
	// Give outstanding loads time to return and finalize warps.
	for c := int64(500); c < 3000; c++ {
		pm.tick(s, c)
		s.Tick(c)
	}
	if got := s.TBCount(0); got != 0 {
		t.Fatalf("TBs resident after drain = %d", got)
	}
	if got := s.Inflight(0); got != 0 {
		t.Fatalf("in-flight accesses after drain = %d", got)
	}
}

func TestSmemInstructionsServiced(t *testing.T) {
	d := computeKernel()
	d.SmemPerM = 3
	s, _ := newSM(t, []*kern.Desc{&d}, []int{4})
	pm := &perfectMem{lat: 40}
	run(s, pm, 5000)
	if s.K[0].SmemInstrs == 0 {
		t.Fatal("no shared-memory accesses serviced")
	}
	// Loop shape: ~CPerM compute + 3 smem + 1 global per iteration.
	ratio := float64(s.K[0].SmemInstrs) / float64(s.K[0].MemInstrs)
	if ratio < 2.5 || ratio > 3.5 {
		t.Fatalf("smem per global = %v, want ~3", ratio)
	}
}

func TestSmemBankConflictsSlowProgress(t *testing.T) {
	runWith := func(conflict float64) uint64 {
		d := computeKernel()
		d.SmemPerM = 4
		d.SmemConflictProb = conflict
		cfg := tinyConfig()
		descs := []*kern.Desc{&d}
		s := New(0, &cfg, descs, []int{8}, nil, nil, nil, 1)
		pm := &perfectMem{lat: 40}
		run(s, pm, 5000)
		return s.K[0].Instrs
	}
	clean := runWith(0)
	conflicted := runWith(0.9)
	if conflicted >= clean {
		t.Fatalf("bank conflicts must slow progress: %d vs %d", conflicted, clean)
	}
}
