// Package overload holds the adaptive overload-control mechanisms the
// service and fleet layers share: an AIMD limit on in-flight work, a
// token-bucket retry budget that bounds aggregate retry amplification, a
// per-job-family service-time estimator for deadline-aware admission,
// and a ring buffer of recent queue waits for percentile reporting.
//
// The design goal is graceful degradation under sustained overload: when
// offered load exceeds capacity, goodput (jobs completed within their
// deadline) should plateau at capacity instead of collapsing, because
//
//   - work that can no longer meet its deadline is shed on arrival (or
//     dropped at dequeue once it has gone stale) before it burns an
//     engine slot,
//   - the in-flight limit shrinks multiplicatively when per-attempt
//     latency blows past its target, so the machine is never
//     oversubscribed into the latency regime where every job misses,
//   - and retries can never exceed a bounded fraction of fresh traffic,
//     closing the retry-amplification loop behind metastable collapse.
//
// Every type here is safe for concurrent use and deliberately free of
// background goroutines: state advances only when callers observe
// samples, so the mechanisms are as testable as the engine they guard.
package overload

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// AIMD is an additive-increase / multiplicative-decrease limit on
// in-flight work, driven by per-attempt latency against a target. The
// limit starts at the ceiling (optimistic), grows by ~1 per limit's
// worth of fast samples, and shrinks by 30% — at most once per cooldown
// window, so one burst of queued slow samples cannot collapse it to the
// floor in a single round — whenever a sample overruns the target. A
// zero target disables adaptation: the limit stays pinned at the
// ceiling, which keeps the pre-adaptive fixed bound as the exact
// behaviour of an unconfigured server.
type AIMD struct {
	mu     sync.Mutex
	target time.Duration
	limit  float64
	floor  float64
	ceil   float64
	last   time.Time // last multiplicative decrease
}

// NewAIMD returns an AIMD limiter with the given latency target and
// hard ceiling (floor is 1). target <= 0 disables adaptation.
func NewAIMD(target time.Duration, ceil int) *AIMD {
	if ceil < 1 {
		ceil = 1
	}
	a := &AIMD{target: target, floor: 1, ceil: float64(ceil)}
	a.limit = a.ceil
	return a
}

// Observe folds one per-attempt latency into the limit.
func (a *AIMD) Observe(d time.Duration) {
	if a.target <= 0 {
		return
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if d <= a.target {
		a.limit += 1 / a.limit
		if a.limit > a.ceil {
			a.limit = a.ceil
		}
		return
	}
	cool := a.target
	if cool < 10*time.Millisecond {
		cool = 10 * time.Millisecond
	}
	if time.Since(a.last) < cool {
		return
	}
	a.last = time.Now()
	a.limit *= 0.7
	if a.limit < a.floor {
		a.limit = a.floor
	}
}

// Limit returns the current in-flight limit (always >= 1).
func (a *AIMD) Limit() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.limit < 1 {
		return 1
	}
	return int(a.limit)
}

// RetryBudget is a token bucket bounding aggregate retry amplification:
// each retry spends one token, each success earns Ratio of one, and the
// balance is capped at Burst (also the initial balance). Retries are
// therefore bounded by Burst + Ratio x successes — a fleet or server
// whose fresh traffic is all failing runs out of tokens instead of
// amplifying its own overload.
type RetryBudget struct {
	mu     sync.Mutex
	tokens float64
	burst  float64
	ratio  float64
}

// NewRetryBudget returns a budget refilled by ratio per success, capped
// at (and starting from) burst. Negative arguments clamp to zero; a
// zero burst with a zero ratio never grants a retry.
func NewRetryBudget(ratio, burst float64) *RetryBudget {
	if ratio < 0 {
		ratio = 0
	}
	if burst < 0 {
		burst = 0
	}
	return &RetryBudget{tokens: burst, burst: burst, ratio: ratio}
}

// Earn credits one success's worth of refill.
func (b *RetryBudget) Earn() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.tokens += b.ratio
	if b.tokens > b.burst {
		b.tokens = b.burst
	}
}

// Spend consumes one retry token, reporting whether one was available.
func (b *RetryBudget) Spend() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.tokens < 1 {
		return false
	}
	b.tokens--
	return true
}

// Tokens returns the current balance (for observability).
func (b *RetryBudget) Tokens() float64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.tokens
}

// maxFamilies bounds the estimator map: families are coarse (machine
// size, run length, kernel mix — not schemes), so real deployments hold
// a handful; the bound only guards against a client minting unbounded
// distinct cycle counts to leak memory.
const maxFamilies = 4096

// Estimator tracks a service-time EWMA per job family, the admission
// controller's estimate of how long a job will hold an engine slot.
// Families deliberately exclude the scheme: schemes steer the simulated
// machine, not the simulation's cost, so a new scheme inherits its
// family's estimate instead of being admitted blind.
type Estimator struct {
	mu   sync.Mutex
	ewma map[string]int64 // family -> nanoseconds
}

// NewEstimator returns an empty estimator.
func NewEstimator() *Estimator {
	return &Estimator{ewma: make(map[string]int64)}
}

// Observe folds one attempt's service time into the family's EWMA
// (alpha 0.2). Callers should clamp d to the per-attempt timeout first,
// so a hung-then-cancelled attempt cannot inflate the estimate beyond
// what the server would ever actually spend on a job.
func (e *Estimator) Observe(family string, d time.Duration) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if len(e.ewma) >= maxFamilies {
		if _, ok := e.ewma[family]; !ok {
			e.ewma = make(map[string]int64) // reset; estimates re-warm in a few samples
		}
	}
	old := e.ewma[family]
	if old > 0 {
		e.ewma[family] = old + (d.Nanoseconds()-old)/5
	} else {
		e.ewma[family] = d.Nanoseconds()
	}
}

// Estimate returns the family's current service-time estimate; ok is
// false when the family has never been observed.
func (e *Estimator) Estimate(family string) (time.Duration, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	ns, ok := e.ewma[family]
	return time.Duration(ns), ok
}

// Family derives the estimator key for a job: the machine size, run
// length and kernel mix that dominate simulation cost. Two jobs in one
// family differ only in scheme, which leaves cost essentially unchanged.
func Family(sms int, cycles int64, kernels []string) string {
	return fmt.Sprintf("sms=%d|cycles=%d|kernels=%s", sms, cycles, strings.Join(kernels, "+"))
}

// WaitRing records the most recent queue waits (admission to slot
// acquisition) in a fixed ring for percentile reporting. Observation is
// O(1); Percentile sorts a copy and is meant for /statz-rate callers.
type WaitRing struct {
	mu  sync.Mutex
	buf []int64
	n   int // total observations ever
}

// NewWaitRing returns a ring holding the last size samples (size <= 0
// selects 1024).
func NewWaitRing(size int) *WaitRing {
	if size <= 0 {
		size = 1024
	}
	return &WaitRing{buf: make([]int64, size)}
}

// Observe records one queue wait.
func (r *WaitRing) Observe(d time.Duration) {
	r.mu.Lock()
	r.buf[r.n%len(r.buf)] = d.Nanoseconds()
	r.n++
	r.mu.Unlock()
}

// Percentile returns the p-quantile (0 < p <= 1) over the retained
// samples, or 0 when nothing has been observed.
func (r *WaitRing) Percentile(p float64) time.Duration {
	r.mu.Lock()
	m := r.n
	if m > len(r.buf) {
		m = len(r.buf)
	}
	samples := make([]time.Duration, m)
	for i := 0; i < m; i++ {
		samples[i] = time.Duration(r.buf[i])
	}
	r.mu.Unlock()
	return Percentile(samples, p)
}

// Percentile returns the p-quantile (nearest-rank, 0 < p <= 1) of
// samples, or 0 for an empty slice. It sorts a copy; callers keep their
// order.
func Percentile(samples []time.Duration, p float64) time.Duration {
	if len(samples) == 0 {
		return 0
	}
	sorted := make([]time.Duration, len(samples))
	copy(sorted, samples)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	if p <= 0 {
		return sorted[0]
	}
	if p >= 1 {
		return sorted[len(sorted)-1]
	}
	idx := int(p*float64(len(sorted))+0.5) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}
