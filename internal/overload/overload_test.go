package overload

import (
	"sync"
	"testing"
	"time"
)

func TestAIMDStartsAtCeiling(t *testing.T) {
	a := NewAIMD(10*time.Millisecond, 8)
	if got := a.Limit(); got != 8 {
		t.Fatalf("initial limit = %d, want 8", got)
	}
}

func TestAIMDDisabledWhenTargetZero(t *testing.T) {
	a := NewAIMD(0, 6)
	for i := 0; i < 100; i++ {
		a.Observe(time.Hour) // would collapse an enabled limiter
	}
	if got := a.Limit(); got != 6 {
		t.Fatalf("disabled limiter moved: limit = %d, want 6", got)
	}
}

func TestAIMDDecreasesOnSlowSamples(t *testing.T) {
	a := NewAIMD(time.Millisecond, 10)
	// One decrease fires immediately; further ones wait out the cooldown.
	a.Observe(time.Second)
	if got := a.Limit(); got != 7 {
		t.Fatalf("after one slow sample limit = %d, want 7", got)
	}
	// Within the cooldown window more slow samples are no-ops.
	a.Observe(time.Second)
	if got := a.Limit(); got != 7 {
		t.Fatalf("cooldown violated: limit = %d, want 7", got)
	}
}

func TestAIMDFloorIsOne(t *testing.T) {
	a := NewAIMD(time.Nanosecond, 4)
	for i := 0; i < 50; i++ {
		a.Observe(time.Second)
		a.mu.Lock()
		a.last = time.Time{} // defeat the cooldown for the test
		a.mu.Unlock()
	}
	if got := a.Limit(); got != 1 {
		t.Fatalf("limit fell through the floor: %d", got)
	}
}

func TestAIMDRecoversAdditively(t *testing.T) {
	a := NewAIMD(time.Second, 10)
	a.mu.Lock()
	a.limit = 2
	a.mu.Unlock()
	// 1/limit per fast sample: from 2, ~17 samples reach 4.
	for i := 0; i < 40; i++ {
		a.Observe(time.Millisecond)
	}
	if got := a.Limit(); got <= 2 {
		t.Fatalf("limit did not recover: %d", got)
	}
	for i := 0; i < 10000; i++ {
		a.Observe(time.Millisecond)
	}
	if got := a.Limit(); got != 10 {
		t.Fatalf("limit overshot or undershot ceiling: %d, want 10", got)
	}
}

func TestRetryBudgetSpendAndEarn(t *testing.T) {
	b := NewRetryBudget(0.5, 2)
	if !b.Spend() || !b.Spend() {
		t.Fatal("burst tokens not spendable")
	}
	if b.Spend() {
		t.Fatal("spend granted beyond burst")
	}
	b.Earn() // 0.5 — still below one token
	if b.Spend() {
		t.Fatal("spend granted on fractional token")
	}
	b.Earn() // 1.0
	if !b.Spend() {
		t.Fatal("earned token not spendable")
	}
}

func TestRetryBudgetCapsAtBurst(t *testing.T) {
	b := NewRetryBudget(1, 3)
	for i := 0; i < 100; i++ {
		b.Earn()
	}
	if got := b.Tokens(); got != 3 {
		t.Fatalf("tokens = %v, want capped at 3", got)
	}
}

func TestRetryBudgetZeroNeverGrants(t *testing.T) {
	b := NewRetryBudget(0, 0)
	if b.Spend() {
		t.Fatal("zero budget granted a retry")
	}
}

func TestEstimatorWarmsAndConverges(t *testing.T) {
	e := NewEstimator()
	if _, ok := e.Estimate("f"); ok {
		t.Fatal("estimate for unobserved family")
	}
	e.Observe("f", 100*time.Millisecond)
	if d, ok := e.Estimate("f"); !ok || d != 100*time.Millisecond {
		t.Fatalf("first sample should seed the EWMA: %v %v", d, ok)
	}
	for i := 0; i < 64; i++ {
		e.Observe("f", 10*time.Millisecond)
	}
	d, _ := e.Estimate("f")
	if d > 12*time.Millisecond {
		t.Fatalf("EWMA failed to converge: %v", d)
	}
}

func TestEstimatorFamiliesIndependent(t *testing.T) {
	e := NewEstimator()
	e.Observe("fast", time.Millisecond)
	e.Observe("slow", time.Second)
	f, _ := e.Estimate("fast")
	s, _ := e.Estimate("slow")
	if f >= s {
		t.Fatalf("families bled together: fast=%v slow=%v", f, s)
	}
}

func TestEstimatorBoundsFamilies(t *testing.T) {
	e := NewEstimator()
	for i := 0; i < maxFamilies+10; i++ {
		e.Observe(Family(2, int64(i), []string{"bp"}), time.Millisecond)
	}
	e.mu.Lock()
	n := len(e.ewma)
	e.mu.Unlock()
	if n > maxFamilies {
		t.Fatalf("family map unbounded: %d", n)
	}
}

func TestFamilyIgnoresNothingItShould(t *testing.T) {
	a := Family(2, 8000, []string{"bp", "ks"})
	b := Family(2, 8000, []string{"bp", "ks"})
	c := Family(4, 8000, []string{"bp", "ks"})
	if a != b {
		t.Fatalf("identical inputs differ: %q vs %q", a, b)
	}
	if a == c {
		t.Fatalf("different SMs collide: %q", a)
	}
}

func TestWaitRingPercentiles(t *testing.T) {
	r := NewWaitRing(8)
	if got := r.Percentile(0.5); got != 0 {
		t.Fatalf("empty ring percentile = %v, want 0", got)
	}
	for i := 1; i <= 8; i++ {
		r.Observe(time.Duration(i) * time.Millisecond)
	}
	if got := r.Percentile(0.5); got != 4*time.Millisecond {
		t.Fatalf("p50 = %v, want 4ms", got)
	}
	if got := r.Percentile(1); got != 8*time.Millisecond {
		t.Fatalf("p100 = %v, want 8ms", got)
	}
	// Overwrite wraps: ring keeps only the newest 8.
	for i := 0; i < 8; i++ {
		r.Observe(100 * time.Millisecond)
	}
	if got := r.Percentile(0.5); got != 100*time.Millisecond {
		t.Fatalf("post-wrap p50 = %v, want 100ms", got)
	}
}

func TestPercentileNearestRank(t *testing.T) {
	samples := []time.Duration{5, 1, 3, 2, 4}
	if got := Percentile(samples, 0.5); got != 3 {
		t.Fatalf("p50 = %v, want 3", got)
	}
	if got := Percentile(samples, 0.99); got != 5 {
		t.Fatalf("p99 = %v, want 5", got)
	}
	if samples[0] != 5 {
		t.Fatal("Percentile mutated its input")
	}
	if got := Percentile(nil, 0.5); got != 0 {
		t.Fatalf("nil samples = %v, want 0", got)
	}
}

func TestConcurrentUseUnderRace(t *testing.T) {
	a := NewAIMD(time.Millisecond, 16)
	b := NewRetryBudget(0.1, 10)
	e := NewEstimator()
	r := NewWaitRing(64)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				a.Observe(time.Duration(i%3) * time.Millisecond)
				a.Limit()
				if i%2 == 0 {
					b.Earn()
				} else {
					b.Spend()
				}
				e.Observe(Family(g, int64(i%4), []string{"bp"}), time.Millisecond)
				e.Estimate(Family(g, int64(i%4), []string{"bp"}))
				r.Observe(time.Duration(i) * time.Microsecond)
				r.Percentile(0.95)
			}
		}(g)
	}
	wg.Wait()
}
