// Package fleet is the distributed sweep fabric: a coordinator that
// shards a sweep across ckeserve workers over the existing HTTP job
// protocol and keeps the sweep running — and its output byte-identical —
// while workers die, hang, shed load, or answer garbage.
//
// The fault model and the mechanisms, in the order a job meets them:
//
//   - Sharding: jobs are deduplicated by content fingerprint
//     (runner.Job.Key via server.JobRequest.Build) and each unique
//     fingerprint is dispatched to one healthy worker with a free slot.
//     Duplicate completions are harmless by construction — the result is
//     content-addressed by the same key on both sides.
//   - Leases: every dispatch runs under a lease (the job's timeout plus
//     a margin). A worker that neither answers nor fails within the
//     lease forfeits the job: the dispatch is cancelled and the job is
//     requeued to another worker.
//   - Requeue with deterministic backoff: worker 5xx, connection
//     failure, shed (429) and lease expiry all requeue the job, spaced
//     by the per-fingerprint backoff policy, capped at MaxAttempts.
//   - Health: each worker is probed at /healthz on an interval;
//     a failing prober ejects the worker from the dispatch set,
//     a succeeding one re-admits it. Connection errors and unparseable
//     5xx responses eject immediately — the prober re-admits when the
//     worker recovers. The prober also watches /readyz: a worker that is
//     alive but draining (SIGTERM'd, finishing in-flight work) stops
//     receiving leases before its liveness goes red and rejoins when
//     ready again.
//   - Integrity: every full result carries the worker's sha256 digest,
//     verified at every hop (response, journal line, /journalz resume).
//     A deterministic AuditRate sample of completed jobs is additionally
//     re-executed from scratch on a different worker and byte-compared;
//     divergence triggers a 2-of-3 vote and quarantines the lying worker
//     — sticky ejection plus requeue of its unaudited results. This is
//     the net for workers that answer promptly, self-consistently, and
//     wrong (bad RAM, sabotage): their digests cover their corrupt
//     bytes, so only independent re-execution exposes them.
//   - Hedged stragglers: a dispatch that outlives the straggler
//     threshold (HedgeFactor x the fleet latency EWMA, floored at
//     HedgeAfter) is raced against a second dispatch on a different
//     worker. The engine is deterministic, so whichever result arrives
//     first is the result; the loser is cancelled.
//   - Ordered merge: results are emitted as NDJSON in submission order,
//     journaled (fsync'd) before they become visible, so the merged
//     output of a fleet run is byte-identical to a single-node run.
//   - Fleet resume: a restarted coordinator unions its own assignment
//     journal with every reachable worker's /journalz dump and emits
//     already-completed fingerprints without re-dispatching them.
package fleet

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	gcke "repro"
	"repro/internal/backoff"
	"repro/internal/chaos"
	"repro/internal/journal"
	"repro/internal/overload"
	"repro/internal/server"
	"repro/internal/xrand"
)

// Config assembles a coordinator. Workers is required; every other
// field's zero value selects a sensible default.
type Config struct {
	// Workers is the base URL of each worker (e.g. http://10.0.0.1:8080).
	Workers []string
	// Transport is the HTTP transport used for every worker call (nil =
	// http.DefaultTransport). The chaos injector's Transport wrapper
	// plugs in here.
	Transport http.RoundTripper
	// JobTimeout is the per-job budget used to size leases when a job
	// carries no timeout of its own (0 = jobs without timeouts get no
	// lease deadline, only connection-level failure detection).
	JobTimeout time.Duration
	// LeaseMargin is added to the job timeout to form the lease: the
	// slack a worker gets for queueing and transfer before the
	// coordinator declares the assignment lost (default 10s).
	LeaseMargin time.Duration
	// MaxAttempts caps how many times one fingerprint is dispatched
	// before the coordinator gives up on it (default 8).
	MaxAttempts int
	// Retry spaces a fingerprint's requeues (zero value = backoff
	// defaults; delays are a pure function of (fingerprint, attempt)).
	Retry backoff.Policy
	// HealthInterval is the /healthz probe period (default 250ms);
	// HealthTimeout bounds each probe and journal fetch (default 2s).
	HealthInterval time.Duration
	HealthTimeout  time.Duration
	// HedgeAfter floors the straggler threshold (default 0: hedging
	// stays off until a latency sample exists; negative disables hedging
	// entirely). HedgeFactor scales the fleet latency EWMA into the
	// threshold (default 4).
	HedgeAfter  time.Duration
	HedgeFactor float64
	// SlotsPerWorker bounds concurrent dispatches per worker (default 2
	// — workers shed excess themselves, this only keeps the coordinator
	// from dogpiling one node; a ckeserve -parallel 1 worker still
	// admits 3 requests, so 2 pipelines without shedding).
	SlotsPerWorker int
	// Journal, when non-nil, is the coordinator's assignment journal:
	// completed results are appended (fsync'd) before they are emitted,
	// and a restarted coordinator resumes from it.
	Journal *journal.Journal
	// AuditRate is the fraction of completed jobs whose result is
	// re-executed from scratch (fresh=1, no cache, no journal) on a
	// DIFFERENT worker and byte-compared — the integrity net for workers
	// that answer promptly, self-consistently, and wrong. The engine is
	// deterministic, so any divergence proves a lie; a 2-of-3 vote on a
	// third worker decides which side lied, and the liar is quarantined:
	// ejected for good (probes never re-admit it) with its unaudited
	// results requeued. Which keys are audited is a pure function of
	// (AuditSeed, fingerprint) — deterministic and independent of worker
	// assignment. 0 disables auditing; 1 audits everything.
	AuditRate float64
	// AuditSeed salts audit selection (default 0).
	AuditSeed uint64
	// RetryBudgetRatio is the coordinator's retry-budget refill per
	// completed job (default 0.1); RetryBudgetBurst is the bucket's
	// capacity and initial balance (default 32; negative = literal 0).
	// The budget paces requeues rather than failing them: a requeue with
	// no token waits out RetryBudgetWait (default 15s) first, so a fleet
	// whose dispatches are all failing stops hammering itself without
	// ever abandoning a job the MaxAttempts cap would still allow. 429
	// sheds are backpressure, not retries — they stay exempt.
	RetryBudgetRatio float64
	RetryBudgetBurst float64
	RetryBudgetWait  time.Duration
	// Logf receives operational events (ejections, requeues, hedges);
	// nil discards them.
	Logf func(format string, args ...any)
}

func (c Config) withDefaults() Config {
	if c.LeaseMargin <= 0 {
		c.LeaseMargin = 10 * time.Second
	}
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 8
	}
	if c.HealthInterval <= 0 {
		c.HealthInterval = 250 * time.Millisecond
	}
	if c.HealthTimeout <= 0 {
		c.HealthTimeout = 2 * time.Second
	}
	if c.HedgeFactor <= 0 {
		c.HedgeFactor = 4
	}
	if c.SlotsPerWorker <= 0 {
		c.SlotsPerWorker = 2
	}
	if c.RetryBudgetRatio == 0 {
		c.RetryBudgetRatio = 0.1
	}
	if c.RetryBudgetRatio < 0 {
		c.RetryBudgetRatio = 0
	}
	if c.RetryBudgetBurst == 0 {
		c.RetryBudgetBurst = 32
	}
	if c.RetryBudgetBurst < 0 {
		c.RetryBudgetBurst = 0
	}
	if c.RetryBudgetWait <= 0 {
		c.RetryBudgetWait = 15 * time.Second
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	return c
}

// Line is one merged-output NDJSON record. It carries only
// deterministic content — no attempt counts, no worker identity — so a
// fleet sweep under chaos byte-matches a clean single-node sweep.
type Line struct {
	Index           int     `json:"index"`
	Key             string  `json:"key"`
	WeightedSpeedup float64 `json:"weighted_speedup,omitempty"`
	ANTT            float64 `json:"antt,omitempty"`
	Fairness        float64 `json:"fairness,omitempty"`
	Error           string  `json:"error,omitempty"`
}

// worker is one dispatch target.
type worker struct {
	url     string
	slots   chan struct{}
	healthy atomic.Bool
	// draining: the worker's /readyz answered 503 while /healthz is
	// still green — it is finishing in-flight work and refusing new
	// jobs. Leasing to it would bounce off 503s and burn requeues, so
	// dispatch skips it until /readyz recovers.
	draining atomic.Bool
	// quarantined: the worker was caught lying by an audit (or served
	// bytes that failed their own digest). Sticky — probes re-admit
	// crashed workers, never corrupt ones.
	quarantined atomic.Bool
}

// usable reports whether the worker may receive new leases.
func (w *worker) usable() bool {
	return w.healthy.Load() && !w.draining.Load() && !w.quarantined.Load()
}

// task is one unique job fingerprint's lifecycle state. The lifecycle
// goroutine owns res/errText until it sends the task on the done
// channel; the emitter owns them after.
type task struct {
	key     string
	body    []byte // marshaled JobRequest
	timeout time.Duration

	res       *gcke.WorkloadResult
	raw       json.RawMessage // the result bytes as the worker sent them
	src       *worker         // worker whose answer res came from (nil if resumed)
	audited   bool            // res survived (or was produced by) an audit
	errText   string
	journaled bool // already durable in the coordinator journal
}

func (t *task) line(index int) Line {
	l := Line{Index: index, Key: t.key, Error: t.errText}
	if t.res != nil {
		l.WeightedSpeedup = t.res.WeightedSpeedup()
		l.ANTT = t.res.ANTT()
		l.Fairness = t.res.Fairness()
	}
	return l
}

// Coordinator shards sweeps across the worker fleet. Create with New,
// run with Run, inspect with StatsSnapshot or the Handler's /statz.
type Coordinator struct {
	cfg     Config
	client  *http.Client
	workers []*worker
	rr      atomic.Int64 // round-robin dispatch offset
	// budget meters requeues: completed jobs refill it, each requeue
	// spends a token, and an empty bucket paces the requeue by
	// RetryBudgetWait instead of firing it on the backoff schedule.
	budget *overload.RetryBudget

	// latEWMA is the moving average of successful dispatch latencies in
	// nanoseconds; it sizes the straggler-hedge threshold.
	latEWMA atomic.Int64

	dispatched    atomic.Int64
	requeues      atomic.Int64
	shed429       atomic.Int64
	leaseExpiries atomic.Int64
	hedges        atomic.Int64
	hedgeWins     atomic.Int64
	ejections     atomic.Int64
	readmissions  atomic.Int64
	resumed       atomic.Int64
	completed     atomic.Int64
	failed        atomic.Int64

	audits           atomic.Int64 // audit re-executions compared
	auditMismatches  atomic.Int64 // audits whose bytes diverged
	quarantines      atomic.Int64 // workers quarantined
	digestMismatches atomic.Int64 // responses/entries failing their own digest
	drainSkips       atomic.Int64 // draining transitions observed by /readyz probes
	resumeRejects    atomic.Int64 // resume entries rejected by digest verification
	budgetWaits      atomic.Int64 // requeues paced because the retry budget ran dry
}

// New assembles a coordinator for the given worker set.
func New(cfg Config) (*Coordinator, error) {
	cfg = cfg.withDefaults()
	if len(cfg.Workers) == 0 {
		return nil, fmt.Errorf("fleet: no workers configured")
	}
	c := &Coordinator{
		cfg:    cfg,
		client: &http.Client{Transport: cfg.Transport},
		budget: overload.NewRetryBudget(cfg.RetryBudgetRatio, cfg.RetryBudgetBurst),
	}
	for _, u := range cfg.Workers {
		w := &worker{
			url:   strings.TrimRight(u, "/"),
			slots: make(chan struct{}, cfg.SlotsPerWorker),
		}
		w.healthy.Store(true) // optimistic until the first probe says otherwise
		c.workers = append(c.workers, w)
	}
	return c, nil
}

// Run shards reqs across the fleet and writes one NDJSON Line per
// request, in submission order, to out. Completed results are journaled
// before they are emitted. Run returns ctx's error if cancelled
// mid-sweep (the journal then carries the resume state) and the number
// of jobs that exhausted their attempts is visible in StatsSnapshot.
func (c *Coordinator) Run(ctx context.Context, reqs []server.JobRequest, out io.Writer) error {
	tasks, slot, err := c.group(reqs)
	if err != nil {
		return err
	}
	c.resume(ctx, tasks)

	pctx, pcancel := context.WithCancel(ctx)
	defer pcancel()
	for _, w := range c.workers {
		go c.probe(pctx, w)
	}

	done := make(chan *task, len(tasks))
	fin := make(map[*task]bool, len(tasks))
	for _, t := range tasks {
		if t.res != nil {
			// Resumed: emit without dispatching. settle back-fills the
			// coordinator journal with entries recovered from workers.
			fin[t] = true
			if err := c.settle(t); err != nil {
				return err
			}
			continue
		}
		go c.lifecycle(pctx, t, done)
	}

	bw := bufio.NewWriter(out)
	enc := json.NewEncoder(bw)
	for next := 0; next < len(slot); {
		t := tasks[slot[next]]
		if !fin[t] {
			select {
			case ft := <-done:
				// A worker can be quarantined AFTER results it produced
				// finished but before they settled. An unaudited result
				// from a quarantined worker is untrusted: discard it and
				// restart the lifecycle (the quarantined worker no longer
				// receives leases, so the re-run lands elsewhere).
				if ft.res != nil && ft.src != nil && ft.src.quarantined.Load() && !ft.audited {
					c.requeues.Add(1)
					c.cfg.Logf("fleet: requeue %s: produced by quarantined %s before audit", ft.key, ft.src.url)
					ft.res, ft.raw, ft.src = nil, nil, nil
					go c.lifecycle(pctx, ft, done)
					continue
				}
				fin[ft] = true
				if err := c.settle(ft); err != nil {
					bw.Flush()
					return err
				}
			case <-ctx.Done():
				bw.Flush()
				return ctx.Err()
			}
			continue
		}
		if err := enc.Encode(t.line(next)); err != nil {
			return err
		}
		next++
	}
	return bw.Flush()
}

// settle journals a freshly finished task (durability before
// visibility) and scores the fleet counters.
func (c *Coordinator) settle(t *task) error {
	if t.res == nil {
		c.failed.Add(1)
		return nil
	}
	c.completed.Add(1)
	if c.cfg.Journal != nil && !t.journaled {
		if err := c.cfg.Journal.Append(t.key, t.res); err != nil {
			return fmt.Errorf("fleet: journaling %s: %w", t.key, err)
		}
		t.journaled = true
	}
	return nil
}

// group validates the requests and collapses duplicate fingerprints
// into one task each, preserving submission order via the slot map.
func (c *Coordinator) group(reqs []server.JobRequest) ([]*task, []int, error) {
	var tasks []*task
	at := make(map[string]int) // fingerprint -> index in tasks
	slot := make([]int, len(reqs))
	for i := range reqs {
		_, key, limits, err := reqs[i].Build()
		if err != nil {
			return nil, nil, fmt.Errorf("fleet: job %d: %w", i, err)
		}
		j, ok := at[key]
		if !ok {
			body, err := json.Marshal(&reqs[i])
			if err != nil {
				return nil, nil, fmt.Errorf("fleet: job %d: %w", i, err)
			}
			j = len(tasks)
			at[key] = j
			tasks = append(tasks, &task{key: key, body: body, timeout: limits.Timeout})
		}
		slot[i] = j
	}
	return tasks, slot, nil
}

// resume unions the coordinator's own journal with every reachable
// worker's /journalz dump, marking already-completed tasks so Run emits
// them without dispatching. Unreachable workers and unknown keys are
// skipped — resume is best-effort recovery, never a correctness gate.
func (c *Coordinator) resume(ctx context.Context, tasks []*task) {
	byKey := make(map[string]*task, len(tasks))
	for _, t := range tasks {
		byKey[t.key] = t
	}
	adopt := func(key string, raw json.RawMessage, sha string, durable bool, src string) {
		t := byKey[key]
		if t == nil || t.res != nil {
			return
		}
		if sha != "" && journal.Digest(raw) != sha {
			// The entry's bytes no longer match the digest recorded when
			// it was written — bit rot, a damaged worker journal, or a
			// mangled /journalz stream. Adopting it would poison the
			// merged output; skipping it just re-simulates one point.
			c.resumeRejects.Add(1)
			c.cfg.Logf("fleet: resume: %s entry %s failed its digest; re-simulating", src, key)
			return
		}
		var res gcke.WorkloadResult
		if err := json.Unmarshal(raw, &res); err != nil {
			c.cfg.Logf("fleet: resume: %s entry %s does not decode: %v", src, key, err)
			return
		}
		t.res = &res
		t.raw = raw
		t.journaled = durable
		c.resumed.Add(1)
	}
	if c.cfg.Journal != nil {
		c.cfg.Journal.EachEntry(func(key string, raw json.RawMessage, sha string) error {
			adopt(key, raw, sha, true, "journal")
			return nil
		})
	}
	for _, w := range c.workers {
		hctx, cancel := context.WithTimeout(ctx, c.cfg.HealthTimeout)
		req, err := http.NewRequestWithContext(hctx, http.MethodGet, w.url+"/journalz", nil)
		if err != nil {
			cancel()
			continue
		}
		resp, err := c.client.Do(req)
		if err != nil {
			cancel()
			c.cfg.Logf("fleet: resume: %s unreachable: %v", w.url, err)
			continue
		}
		if resp.StatusCode == http.StatusOK {
			sc := bufio.NewScanner(resp.Body)
			sc.Buffer(make([]byte, 0, 1<<20), 1<<26)
			for sc.Scan() {
				var e server.JournalEntry
				if json.Unmarshal(sc.Bytes(), &e) == nil {
					adopt(e.Key, e.Val, e.Sha, false, w.url)
				}
			}
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		cancel()
	}
	if n := c.resumed.Load(); n > 0 {
		c.cfg.Logf("fleet: resumed %d completed job(s) from journal union", n)
	}
}

// lifecycle drives one fingerprint from first dispatch to a final
// result: requeue on transient failure with deterministic backoff,
// give up at MaxAttempts, finish on success or permanent error.
func (c *Coordinator) lifecycle(ctx context.Context, t *task, done chan<- *task) {
	defer func() { done <- t }()
	for attempt := 1; ; {
		o := c.attempt(ctx, t)
		switch {
		case o.ok:
			t.res, t.raw, t.src = o.result, o.raw, o.src
			if c.shouldAudit(t.key) && !c.audit(ctx, t) {
				// The audit condemned the result without producing a
				// trusted replacement: drop it and re-dispatch (the
				// quarantined producer is out of the lease set).
				t.res, t.raw, t.src = nil, nil, nil
				o.ok, o.reason = false, "audit condemned the result"
				break
			}
			c.budget.Earn()
			return
		case o.permanent:
			t.errText = o.errText
			return
		case ctx.Err() != nil:
			t.errText = "fleet: sweep cancelled: " + ctx.Err().Error()
			return
		}
		if o.shed {
			// Backpressure, not failure: the worker is healthy and asked
			// us to come back later. Waiting out a saturated fleet must
			// not burn the job's attempt budget.
			c.shed429.Add(1)
			c.cfg.Logf("fleet: backing off %s: %s", t.key, o.reason)
		} else {
			c.requeues.Add(1)
			c.cfg.Logf("fleet: requeue %s (attempt %d): %s", t.key, attempt, o.reason)
			if attempt >= c.cfg.MaxAttempts {
				t.errText = fmt.Sprintf("fleet: gave up after %d attempts: %s", attempt, o.reason)
				return
			}
			attempt++
		}
		delay := c.cfg.Retry.Delay(t.key, attempt)
		if o.retryAfter > delay {
			delay = o.retryAfter
		}
		if !o.shed && !c.budget.Spend() {
			// The retry budget ran dry: the fleet's failures are no longer
			// a bounded fraction of its successes, so this requeue is load
			// amplification. Pace it — stretch the wait to RetryBudgetWait
			// and then proceed; MaxAttempts stays the only thing that
			// abandons a job. (429 backpressure never reaches here.)
			c.budgetWaits.Add(1)
			c.cfg.Logf("fleet: retry budget dry: pacing requeue of %s by %s", t.key, c.cfg.RetryBudgetWait)
			if c.cfg.RetryBudgetWait > delay {
				delay = c.cfg.RetryBudgetWait
			}
		}
		timer := time.NewTimer(delay)
		select {
		case <-ctx.Done():
			timer.Stop()
			t.errText = "fleet: sweep cancelled: " + ctx.Err().Error()
			return
		case <-timer.C:
		}
	}
}

// outcome classifies one dispatch (or one hedged pair of dispatches).
type outcome struct {
	ok         bool
	result     *gcke.WorkloadResult
	raw        json.RawMessage // worker-sent result bytes (audit comparand)
	src        *worker         // worker that produced result
	permanent  bool
	shed       bool // 429: backpressure, not failure — exempt from MaxAttempts
	errText    string
	reason     string
	retryAfter time.Duration
}

// attempt runs one dispatch, hedging it to a second worker if it
// outlives the straggler threshold. The first success wins and cancels
// the other dispatch; a transient failure waits for the survivor.
func (c *Coordinator) attempt(ctx context.Context, t *task) outcome {
	w := c.acquire(ctx)
	if w == nil {
		return outcome{reason: "no healthy worker before cancellation"}
	}
	dctx, cancel := context.WithCancel(ctx)
	defer cancel()
	type result struct {
		o     outcome
		hedge bool
	}
	ch := make(chan result, 2)
	go func() { ch <- result{o: c.dispatch(dctx, w, t, false)} }()
	inflight := 1

	var hedgeC <-chan time.Time
	var hedgeTimer *time.Timer
	if th := c.hedgeThreshold(); th > 0 {
		hedgeTimer = time.NewTimer(th)
		defer hedgeTimer.Stop()
		hedgeC = hedgeTimer.C
	}
	for {
		select {
		case r := <-ch:
			inflight--
			if r.o.ok && r.hedge {
				c.hedgeWins.Add(1)
			}
			if r.o.ok || r.o.permanent || inflight == 0 {
				return r.o
			}
			// Transient failure while the other dispatch still races:
			// wait for the survivor before classifying the attempt.
		case <-hedgeC:
			if w2 := c.tryAcquire(w); w2 != nil {
				hedgeC = nil
				c.hedges.Add(1)
				c.cfg.Logf("fleet: hedging straggler %s to %s", t.key, w2.url)
				go func() { ch <- result{o: c.dispatch(dctx, w2, t, false), hedge: true} }()
				inflight++
			} else {
				// No second worker free yet: the primary is still a
				// straggler, so keep trying to hedge it.
				hedgeTimer.Reset(c.cfg.HealthInterval)
			}
		case <-ctx.Done():
			return outcome{reason: "cancelled: " + ctx.Err().Error()}
		}
	}
}

// hedgeThreshold is the straggler cutoff: HedgeFactor times the fleet
// latency EWMA, floored at HedgeAfter. Zero disables hedging for this
// attempt (no samples yet and no configured floor).
func (c *Coordinator) hedgeThreshold() time.Duration {
	if c.cfg.HedgeAfter < 0 {
		return 0
	}
	th := time.Duration(float64(c.latEWMA.Load()) * c.cfg.HedgeFactor)
	if th < c.cfg.HedgeAfter {
		th = c.cfg.HedgeAfter
	}
	return th
}

// dispatch posts one job to one worker under a lease and classifies
// the answer. It owns (and releases) the worker slot acquired for it.
// fresh dispatches carry fresh=1: the worker bypasses its cache and
// journal entirely — the audit path's independent re-execution.
func (c *Coordinator) dispatch(ctx context.Context, w *worker, t *task, fresh bool) outcome {
	defer func() { <-w.slots }()
	lease := t.timeout
	if lease <= 0 {
		lease = c.cfg.JobTimeout
	}
	dctx := ctx
	if lease > 0 {
		lease += c.cfg.LeaseMargin
		var cancel context.CancelFunc
		dctx, cancel = context.WithTimeout(ctx, lease)
		defer cancel()
	}
	c.dispatched.Add(1)
	start := time.Now()
	url := w.url + "/jobs?full=1"
	if fresh {
		url += "&fresh=1"
	}
	req, err := http.NewRequestWithContext(dctx, http.MethodPost, url, bytes.NewReader(t.body))
	if err != nil {
		return outcome{permanent: true, errText: "fleet: building request: " + err.Error()}
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(chaos.JobKeyHeader, t.key)
	resp, err := c.client.Do(req)
	if err != nil {
		switch {
		case ctx.Err() != nil:
			return outcome{reason: "cancelled: " + err.Error()}
		case dctx.Err() != nil:
			// The lease expired with the parent context alive: the worker
			// forfeits the assignment. The prober decides its health.
			c.leaseExpiries.Add(1)
			return outcome{reason: fmt.Sprintf("lease (%s) expired on %s", lease, w.url)}
		default:
			c.eject(w, err)
			return outcome{reason: fmt.Sprintf("dispatch to %s: %v", w.url, err)}
		}
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		if ctx.Err() != nil {
			return outcome{reason: "cancelled: " + err.Error()}
		}
		c.eject(w, err)
		return outcome{reason: fmt.Sprintf("reading %s response: %v", w.url, err)}
	}
	switch {
	case resp.StatusCode == http.StatusOK:
		// Shadow-decode to get the result's exact wire bytes: the digest
		// covers them, and the audit path byte-compares them.
		var shadow struct {
			Digest string          `json:"digest"`
			Result json.RawMessage `json:"result"`
		}
		if err := json.Unmarshal(body, &shadow); err != nil || len(shadow.Result) == 0 {
			c.eject(w, fmt.Errorf("malformed 200 body"))
			return outcome{reason: fmt.Sprintf("%s answered 200 with an undecodable body", w.url)}
		}
		if shadow.Digest != "" && journal.Digest(shadow.Result) != shadow.Digest {
			// The bytes do not match the digest the worker itself sent:
			// damage in transit or a worker too broken to hash its own
			// output. Either way its answers cannot be trusted.
			c.digestMismatches.Add(1)
			c.eject(w, fmt.Errorf("result digest mismatch for %s", t.key))
			return outcome{reason: fmt.Sprintf("%s result failed its own digest", w.url)}
		}
		var res gcke.WorkloadResult
		if err := json.Unmarshal(shadow.Result, &res); err != nil {
			c.eject(w, fmt.Errorf("malformed result body"))
			return outcome{reason: fmt.Sprintf("%s answered 200 with an undecodable result", w.url)}
		}
		c.observeLatency(time.Since(start))
		return outcome{ok: true, result: &res, raw: shadow.Result, src: w}
	case resp.StatusCode == http.StatusTooManyRequests:
		o := outcome{shed: true, reason: fmt.Sprintf("%s shed the job (429)", w.url)}
		if secs, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil && secs > 0 {
			o.retryAfter = time.Duration(secs) * time.Second
		}
		return o
	default:
		var jr server.JobResponse
		if json.Unmarshal(body, &jr) == nil && jr.Error != "" {
			if jr.Transient || resp.StatusCode == http.StatusServiceUnavailable {
				// Worker-side transient failure or drain: another worker
				// (or this one, later) can still finish the job.
				return outcome{reason: fmt.Sprintf("%s: %s", w.url, jr.Error)}
			}
			return outcome{permanent: true, errText: jr.Error}
		}
		// Unparseable 5xx (injected fault, middlebox garbage): the
		// worker's state is unknown — eject it and requeue; the prober
		// re-admits it when /healthz answers again.
		c.eject(w, fmt.Errorf("status %d", resp.StatusCode))
		return outcome{reason: fmt.Sprintf("%s answered %d: %.120s", w.url, resp.StatusCode, body)}
	}
}

// acquire blocks until a usable worker not in except has a free slot
// (or ctx is cancelled — then nil). Workers are scanned round-robin so
// load spreads without coordination.
func (c *Coordinator) acquire(ctx context.Context, except ...*worker) *worker {
	for {
		if w := c.tryAcquire(except...); w != nil {
			return w
		}
		select {
		case <-ctx.Done():
			return nil
		case <-time.After(2 * time.Millisecond):
		}
	}
}

// tryAcquire makes one non-blocking pass over the usable workers
// (healthy, not draining, not quarantined).
func (c *Coordinator) tryAcquire(except ...*worker) *worker {
	start := int(c.rr.Add(1))
	n := len(c.workers)
scan:
	for off := 0; off < n; off++ {
		w := c.workers[(start+off)%n]
		for _, x := range except {
			if w == x {
				continue scan
			}
		}
		if !w.usable() {
			continue
		}
		select {
		case w.slots <- struct{}{}:
			return w
		default:
		}
	}
	return nil
}

// probe watches one worker's /healthz and /readyz, ejecting it from
// the dispatch set on liveness failure and re-admitting it on recovery.
// A worker that is alive but draining (/readyz 503, /healthz 200 — a
// SIGTERM'd ckeserve finishing its in-flight jobs) is taken out of the
// lease set BEFORE its liveness goes red, so the coordinator stops
// bouncing new work off its 503s; it rejoins when /readyz recovers.
func (c *Coordinator) probe(ctx context.Context, w *worker) {
	// Deterministic per-worker phase jitter: after a coordinator
	// (re)start every prober goroutine begins at the same instant, so
	// without a phase offset a large fleet's probes all land on the same
	// tick forever — a self-inflicted thundering herd against its own
	// workers' /healthz. The offset is a pure function of the worker URL,
	// so probe timing stays reproducible run to run.
	select {
	case <-ctx.Done():
		return
	case <-time.After(proberPhase(w.url, c.cfg.HealthInterval)):
	}
	tick := time.NewTicker(c.cfg.HealthInterval)
	defer tick.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-tick.C:
		}
		ok := c.get(ctx, w.url+"/healthz")
		if ctx.Err() != nil {
			return // sweep finished; a cancelled probe says nothing about the worker
		}
		if !ok {
			c.eject(w, fmt.Errorf("liveness probe failed"))
			continue
		}
		if w.healthy.CompareAndSwap(false, true) {
			c.readmissions.Add(1)
			c.cfg.Logf("fleet: re-admitted %s", w.url)
		}
		ready := c.get(ctx, w.url+"/readyz")
		if ctx.Err() != nil {
			return
		}
		if !ready {
			if w.draining.CompareAndSwap(false, true) {
				c.drainSkips.Add(1)
				c.cfg.Logf("fleet: %s draining (readyz red, healthz green): leases withheld", w.url)
			}
		} else if w.draining.CompareAndSwap(true, false) {
			c.cfg.Logf("fleet: %s ready again: leases restored", w.url)
		}
	}
}

// proberPhase is the worker's deterministic probe-phase offset in
// [0, interval): fnv64a over the URL seeds xrand, so distinct workers
// start their probe cycles spread across the interval.
func proberPhase(url string, interval time.Duration) time.Duration {
	if interval <= 0 {
		return 0
	}
	h := fnv.New64a()
	h.Write([]byte(url))
	h.Write([]byte("/probe-phase"))
	return time.Duration(xrand.New(h.Sum64()).Uint64n(uint64(interval)))
}

// get performs one bounded control-plane GET, reporting a 200.
func (c *Coordinator) get(ctx context.Context, url string) bool {
	hctx, cancel := context.WithTimeout(ctx, c.cfg.HealthTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(hctx, http.MethodGet, url, nil)
	if err != nil {
		return false
	}
	resp, err := c.client.Do(req)
	if resp != nil {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
	return err == nil && resp.StatusCode == http.StatusOK
}

// eject removes a worker from the dispatch set until a probe succeeds.
func (c *Coordinator) eject(w *worker, cause error) {
	if w.healthy.CompareAndSwap(true, false) {
		c.ejections.Add(1)
		c.cfg.Logf("fleet: ejected %s: %v", w.url, cause)
	}
}

// quarantine permanently removes a worker caught serving wrong bytes.
// Unlike eject it is sticky: probes never clear it — a worker that lies
// once cannot be trusted just because its /healthz answers.
func (c *Coordinator) quarantine(w *worker, cause string) {
	if w.quarantined.CompareAndSwap(false, true) {
		c.quarantines.Add(1)
		c.cfg.Logf("fleet: QUARANTINED %s: %s", w.url, cause)
	}
}

// shouldAudit deterministically selects which fingerprints get their
// result re-executed and byte-compared: a pure function of (AuditSeed,
// fingerprint), independent of worker assignment and arrival order, so
// the same sweep audits the same keys on every run.
func (c *Coordinator) shouldAudit(key string) bool {
	if c.cfg.AuditRate <= 0 {
		return false
	}
	if c.cfg.AuditRate >= 1 {
		return true
	}
	h := fnv.New64a()
	h.Write([]byte(key))
	h.Write([]byte("/audit"))
	return xrand.New(c.cfg.AuditSeed^h.Sum64()).Float64() < c.cfg.AuditRate
}

// audit re-executes t's finished result from scratch on a different
// worker and byte-compares. The engine is deterministic, so equal bytes
// prove integrity and divergent bytes prove a lie; a third worker then
// votes 2-of-3 on which side lied, and the loser is quarantined. audit
// reports whether t still carries a trustworthy result on return: false
// means the result was condemned without a trusted replacement and the
// caller must re-dispatch. A fleet too small (or too busy) to supply an
// independent worker skips the audit — integrity checking is
// best-effort, never a liveness hazard.
func (c *Coordinator) audit(ctx context.Context, t *task) bool {
	o2 := c.auditDispatch(ctx, t, t.src)
	if o2 == nil {
		return true // no independent worker: audit skipped
	}
	c.audits.Add(1)
	if bytes.Equal(t.raw, o2.raw) {
		t.audited = true
		return true
	}
	c.auditMismatches.Add(1)
	c.cfg.Logf("fleet: AUDIT MISMATCH %s: %s and %s disagree", t.key, t.src.url, o2.src.url)
	// Tie-break on a third worker, independent of both.
	o3 := c.auditDispatch(ctx, t, t.src, o2.src)
	switch {
	case o3 != nil && bytes.Equal(o3.raw, o2.raw):
		// Origin outvoted 2-1: it lied. Adopt the majority bytes.
		c.quarantine(t.src, fmt.Sprintf("outvoted 2-1 on %s by %s and %s", t.key, o2.src.url, o3.src.url))
		t.res, t.raw, t.src = o2.result, o2.raw, o2.src
		t.audited = true
		return true
	case o3 != nil && bytes.Equal(o3.raw, t.raw):
		// Auditor outvoted 2-1: the re-execution lied.
		c.quarantine(o2.src, fmt.Sprintf("outvoted 2-1 on %s by %s and %s", t.key, t.src.url, o3.src.url))
		t.audited = true
		return true
	default:
		// No tiebreaker reachable (a two-worker fleet) or a three-way
		// split: neither byte-string has a majority and blame cannot be
		// attributed — the liar may just as well be the auditor as the
		// origin, and quarantining on a coin flip ejects honest workers
		// (and can quarantine the whole fleet into a deadlock). Trust
		// neither answer: discard the bytes and make the caller
		// re-dispatch; the attempt budget bounds a pathological fleet
		// where no decidable audit ever forms.
		c.cfg.Logf("fleet: AUDIT UNDECIDED %s: no deciding vote; discarding and re-dispatching", t.key)
		return false
	}
}

// auditDispatch runs one fresh re-execution of t on a worker not in
// except, bounded by HealthTimeout for slot acquisition (an audit must
// not stall the sweep when the fleet is saturated). nil = no slot or
// the re-execution failed; the audit is skipped, not retried — the
// deterministic sampler will audit this worker again on other keys.
func (c *Coordinator) auditDispatch(ctx context.Context, t *task, except ...*worker) *outcome {
	actx, cancel := context.WithTimeout(ctx, c.cfg.HealthTimeout)
	w := c.acquire(actx, except...)
	cancel()
	if w == nil {
		return nil
	}
	o := c.dispatch(ctx, w, t, true)
	if !o.ok || o.raw == nil {
		return nil
	}
	return &o
}

// observeLatency folds one successful dispatch's wall-clock into the
// fleet latency EWMA (alpha 0.2, lock-free).
func (c *Coordinator) observeLatency(d time.Duration) {
	for {
		old := c.latEWMA.Load()
		ewma := d.Nanoseconds()
		if old > 0 {
			ewma = old + (d.Nanoseconds()-old)/5
		}
		if c.latEWMA.CompareAndSwap(old, ewma) {
			return
		}
	}
}

// WorkerStatus is one worker's view in the fleet stats.
type WorkerStatus struct {
	URL         string `json:"url"`
	Healthy     bool   `json:"healthy"`
	Busy        int    `json:"busy"`
	Draining    bool   `json:"draining,omitempty"`
	Quarantined bool   `json:"quarantined,omitempty"`
}

// Stats is the coordinator's /statz snapshot.
type Stats struct {
	Workers       []WorkerStatus `json:"workers"`
	Dispatched    int64          `json:"dispatched"`
	Requeues      int64          `json:"requeues"`
	Shed429       int64          `json:"shed_429"`
	LeaseExpiries int64          `json:"lease_expiries"`
	Hedges        int64          `json:"hedges"`
	HedgeWins     int64          `json:"hedge_wins"`
	Ejections     int64          `json:"ejections"`
	Readmissions  int64          `json:"readmissions"`
	Resumed       int64          `json:"resumed"`
	Completed     int64          `json:"completed"`
	Failed        int64          `json:"failed"`
	LatencyEWMAMs float64        `json:"latency_ewma_ms,omitempty"`
	// Integrity-layer counters: audit re-executions compared, audits
	// whose bytes diverged, workers quarantined, responses or resume
	// entries that failed their own digest, and draining transitions
	// observed by the /readyz probes.
	Audits           int64 `json:"audits"`
	AuditMismatches  int64 `json:"audit_mismatches"`
	Quarantined      int64 `json:"quarantined"`
	DigestMismatches int64 `json:"digest_mismatches"`
	ResumeRejects    int64 `json:"resume_rejects"`
	DrainSkips       int64 `json:"drain_skips"`
	// Retry-budget gauges: the bucket's current balance and how many
	// requeues were paced (delayed by RetryBudgetWait) because it ran
	// dry.
	RetryBudgetTokens float64 `json:"retry_budget_tokens"`
	RetryBudgetWaits  int64   `json:"retry_budget_waits"`
}

// StatsSnapshot returns current fleet counters.
func (c *Coordinator) StatsSnapshot() Stats {
	st := Stats{
		Dispatched:    c.dispatched.Load(),
		Requeues:      c.requeues.Load(),
		Shed429:       c.shed429.Load(),
		LeaseExpiries: c.leaseExpiries.Load(),
		Hedges:        c.hedges.Load(),
		HedgeWins:     c.hedgeWins.Load(),
		Ejections:     c.ejections.Load(),
		Readmissions:  c.readmissions.Load(),
		Resumed:       c.resumed.Load(),
		Completed:     c.completed.Load(),
		Failed:        c.failed.Load(),
		LatencyEWMAMs: float64(c.latEWMA.Load()) / 1e6,

		Audits:           c.audits.Load(),
		AuditMismatches:  c.auditMismatches.Load(),
		Quarantined:      c.quarantines.Load(),
		DigestMismatches: c.digestMismatches.Load(),
		ResumeRejects:    c.resumeRejects.Load(),
		DrainSkips:       c.drainSkips.Load(),

		RetryBudgetTokens: c.budget.Tokens(),
		RetryBudgetWaits:  c.budgetWaits.Load(),
	}
	for _, w := range c.workers {
		st.Workers = append(st.Workers, WorkerStatus{
			URL: w.url, Healthy: w.healthy.Load(), Busy: len(w.slots),
			Draining: w.draining.Load(), Quarantined: w.quarantined.Load(),
		})
	}
	return st
}

// Handler exposes the coordinator's own control plane: /statz (fleet
// counters + per-worker health) and /healthz.
func (c *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/statz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(c.StatsSnapshot())
	})
	return mux
}
