package fleet_test

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/chaos"
	"repro/internal/fleet"
	"repro/internal/server"
)

// TestFleetAuditQuarantinesCorruptWorker is the integrity acceptance
// test: one worker of three silently corrupts every result it serves —
// self-consistently, so its digests verify and nothing short of an
// independent re-execution can tell. With AuditRate 1 the coordinator
// must catch it, quarantine it, requeue its results, and still emit
// merged output byte-identical to a clean single-worker run.
func TestFleetAuditQuarantinesCorruptWorker(t *testing.T) {
	reqs := []server.JobRequest{
		fleetJob(2), fleetJob(3), fleetJob(4), fleetJob(5), fleetJob(6), fleetJob(7),
	}

	clean := startWorker(t, server.Config{})
	golden, _ := runFleet(t, fleet.Config{Workers: []string{clean.URL}}, reqs)

	liar := startWorker(t, server.Config{
		Chaos: chaos.New(chaos.Config{Seed: 5, CorruptProb: 1, Failures: 1 << 30}),
	})
	w2 := startWorker(t, server.Config{})
	w3 := startWorker(t, server.Config{})

	out, st := runFleet(t, fleet.Config{
		Workers:   []string{liar.URL, w2.URL, w3.URL},
		AuditRate: 1,
	}, reqs)

	if out != golden {
		t.Fatalf("audited fleet output diverged from clean run:\nfleet:\n%s\nclean:\n%s", out, golden)
	}
	if st.Audits == 0 {
		t.Fatalf("no audits ran at AuditRate 1: %+v", st)
	}
	if st.AuditMismatches == 0 {
		t.Fatalf("corrupt worker never tripped an audit: %+v", st)
	}
	if st.Quarantined == 0 {
		t.Fatalf("corrupt worker not quarantined: %+v", st)
	}
	if st.Failed != 0 {
		t.Fatalf("audited sweep failed jobs: %+v", st)
	}
	quarantined := 0
	for _, w := range st.Workers {
		if w.Quarantined {
			quarantined++
			if w.URL != liar.URL {
				t.Fatalf("quarantined the wrong worker: %s (liar is %s)", w.URL, liar.URL)
			}
		}
	}
	if quarantined != 1 {
		t.Fatalf("%d workers quarantined, want exactly the liar: %+v", quarantined, st.Workers)
	}
}

// drainableWorker wraps a real worker handler with a switchable /readyz:
// while draining, /readyz answers 503 and /jobs refuses with the same
// body a draining ckeserve sends, but /healthz stays green — the window
// satellite draining-awareness targets.
func drainableWorker(t *testing.T) (*httptest.Server, *atomic.Bool) {
	t.Helper()
	inner := server.New(server.Config{Workers: 2, Worker: true, Retry: fastRetry()})
	var draining atomic.Bool
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if draining.Load() {
			switch r.URL.Path {
			case "/readyz":
				http.Error(w, "draining", http.StatusServiceUnavailable)
				return
			case "/jobs", "/sweep":
				w.Header().Set("Content-Type", "application/json")
				w.WriteHeader(http.StatusServiceUnavailable)
				json.NewEncoder(w).Encode(map[string]string{"error": "draining"})
				return
			}
		}
		inner.Handler().ServeHTTP(w, r)
	}))
	t.Cleanup(ts.Close)
	return ts, &draining
}

// TestFleetDrainingAwareDispatch: a worker whose /readyz goes red while
// /healthz stays green must stop receiving leases (before its liveness
// fails) and get them back when /readyz recovers.
func TestFleetDrainingAwareDispatch(t *testing.T) {
	w1, draining := drainableWorker(t)
	w2 := startWorker(t, server.Config{})
	draining.Store(true)

	c, err := fleet.New(fleet.Config{
		Workers:        []string{w1.URL, w2.URL},
		HealthInterval: 5 * time.Millisecond,
		MaxAttempts:    10,
		Retry:          fastRetry(),
		Logf:           t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	reqs := make([]server.JobRequest, 8)
	for i := range reqs {
		reqs[i] = fleetJob(2 + i)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	var out bytes.Buffer
	runErr := make(chan error, 1)
	go func() { runErr <- c.Run(ctx, reqs, &out) }()

	waitFor := func(what string, cond func(fleet.Stats) bool) fleet.Stats {
		t.Helper()
		deadline := time.Now().Add(30 * time.Second)
		for time.Now().Before(deadline) {
			st := c.StatsSnapshot()
			if cond(st) {
				return st
			}
			time.Sleep(2 * time.Millisecond)
		}
		t.Fatalf("timed out waiting for %s: %+v", what, c.StatsSnapshot())
		return fleet.Stats{}
	}
	isDraining := func(st fleet.Stats) bool {
		for _, w := range st.Workers {
			if w.URL == w1.URL {
				return w.Draining
			}
		}
		return false
	}
	// The prober must mark the worker draining while its liveness is
	// still green (no ejection for w1 — connection-level health is fine).
	waitFor("draining detection", func(st fleet.Stats) bool { return st.DrainSkips >= 1 && isDraining(st) })

	// Recovery: /readyz goes green again and the worker rejoins.
	draining.Store(false)
	waitFor("drain recovery", func(st fleet.Stats) bool { return !isDraining(st) })

	if err := <-runErr; err != nil {
		t.Fatalf("fleet run: %v", err)
	}
	st := c.StatsSnapshot()
	if st.Failed != 0 {
		t.Fatalf("draining sweep failed jobs: %+v", st)
	}
	if got := strings.Count(out.String(), "\n"); got != len(reqs) {
		t.Fatalf("emitted %d lines, want %d", got, len(reqs))
	}
}

// TestFleetHedgeLoserDiscardedOnce races the hedge loser's late result
// against the winner under -race: every first dispatch is delayed past
// the hedge threshold (but not killed), so the hedge wins and the
// delayed loser's result lands afterwards. Each fingerprint must appear
// exactly once in the merged output, and every lease must be returned
// (no slot leaks from discarded losers).
func TestFleetHedgeLoserDiscardedOnce(t *testing.T) {
	w1 := startWorker(t, server.Config{})
	w2 := startWorker(t, server.Config{})
	// Every key's first dispatch is delayed 400ms in the transport; the
	// retry of the same key (the hedge) passes clean.
	inj := chaos.New(chaos.Config{Seed: 13, NetDelayProb: 1, NetDelay: 400 * time.Millisecond, Failures: 1})

	// Fewer jobs than fleet slots: a hedge can always find a free slot
	// on the other worker, so every delayed dispatch really gets raced.
	reqs := make([]server.JobRequest, 4)
	for i := range reqs {
		reqs[i] = fleetJob(20 + i)
	}
	c, err := fleet.New(fleet.Config{
		Workers:        []string{w1.URL, w2.URL},
		Transport:      inj.Transport(nil),
		HedgeAfter:     50 * time.Millisecond,
		SlotsPerWorker: 6,
		MaxAttempts:    10,
		Retry:          fastRetry(),
		Logf:           t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	var out bytes.Buffer
	if err := c.Run(ctx, reqs, &out); err != nil {
		t.Fatalf("fleet run: %v", err)
	}

	st := c.StatsSnapshot()
	if st.Hedges == 0 {
		t.Fatalf("delayed dispatches never hedged: %+v", st)
	}
	if st.Failed != 0 {
		t.Fatalf("hedged sweep failed jobs: %+v", st)
	}
	// Exactly one merged line per request, each key exactly once per
	// submission slot, none with errors: the loser's late result was
	// discarded, not double-emitted.
	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	if len(lines) != len(reqs) {
		t.Fatalf("emitted %d lines, want %d", len(lines), len(reqs))
	}
	seen := make(map[int]bool)
	for _, line := range lines {
		var l fleet.Line
		if err := json.Unmarshal([]byte(line), &l); err != nil {
			t.Fatalf("bad merged line %q: %v", line, err)
		}
		if l.Error != "" || l.WeightedSpeedup == 0 {
			t.Fatalf("bad merged line: %s", line)
		}
		if seen[l.Index] {
			t.Fatalf("index %d emitted twice", l.Index)
		}
		seen[l.Index] = true
	}
	// Lease accounting: every slot (winner's and discarded loser's) is
	// eventually released.
	deadline := time.Now().Add(10 * time.Second)
	for {
		busy := 0
		for _, w := range c.StatsSnapshot().Workers {
			busy += w.Busy
		}
		if busy == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("leaked %d worker slots after the sweep", busy)
		}
		time.Sleep(5 * time.Millisecond)
	}
}
