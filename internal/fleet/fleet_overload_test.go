package fleet

// Internal-package tests for the overload-control seams: prober phase
// jitter and retry-budget requeue pacing. The end-to-end fleet
// behaviour lives in the external fleet_test package; these pin the
// mechanisms directly.

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/backoff"
	"repro/internal/server"
)

func TestProberPhaseJitterDeterministicAndSpread(t *testing.T) {
	const interval = 250 * time.Millisecond
	urls := []string{
		"http://10.0.0.1:8080", "http://10.0.0.2:8080",
		"http://10.0.0.3:8080", "http://10.0.0.4:8080",
	}
	seen := make(map[time.Duration]bool)
	for _, u := range urls {
		p := proberPhase(u, interval)
		if p < 0 || p >= interval {
			t.Fatalf("phase(%s) = %v, want in [0, %v)", u, p, interval)
		}
		if p != proberPhase(u, interval) {
			t.Fatalf("phase(%s) not deterministic", u)
		}
		seen[p] = true
	}
	// Four workers all landing on the same phase is exactly the
	// thundering herd the jitter exists to prevent.
	if len(seen) < 2 {
		t.Fatalf("all %d workers share one probe phase: %v", len(urls), seen)
	}
	if proberPhase("http://x", 0) != 0 {
		t.Fatal("zero interval must yield zero phase")
	}
}

// TestRetryBudgetPacesRequeues: with the budget drained, a transient
// worker failure is still requeued (MaxAttempts stays the only cap) but
// only after RetryBudgetWait — and the pacing is visible in stats.
func TestRetryBudgetPacesRequeues(t *testing.T) {
	var hits atomic.Int64
	var times [3]atomic.Int64
	worker := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch r.URL.Path {
		case "/healthz", "/readyz":
			w.WriteHeader(http.StatusOK)
		case "/jobs":
			n := hits.Add(1)
			if n <= int64(len(times)) {
				times[n-1].Store(time.Now().UnixNano())
			}
			// Parseable transient failure: requeued without ejecting the
			// worker, so the budget path (not the health path) decides.
			w.WriteHeader(http.StatusInternalServerError)
			json.NewEncoder(w).Encode(server.JobResponse{Error: "injected transient", Transient: true})
		default:
			w.WriteHeader(http.StatusNotFound)
		}
	}))
	defer worker.Close()

	const pace = 120 * time.Millisecond
	c, err := New(Config{
		Workers:          []string{worker.URL},
		MaxAttempts:      3,
		Retry:            backoff.Policy{Base: time.Millisecond, Cap: time.Millisecond, Factor: 1},
		RetryBudgetBurst: -1, // literal zero: every requeue is paced
		RetryBudgetWait:  pace,
	})
	if err != nil {
		t.Fatal(err)
	}

	req := server.JobRequest{
		SMs: 2, Cycles: 1000, Kernels: []string{"bp"},
	}
	var out bytes.Buffer
	if err := c.Run(context.Background(), []server.JobRequest{req}, &out); err != nil {
		t.Fatal(err)
	}

	st := c.StatsSnapshot()
	if st.Dispatched != 3 {
		t.Fatalf("dispatched = %d, want 3 (budget must pace, not abandon)", st.Dispatched)
	}
	if st.RetryBudgetWaits != 2 {
		t.Fatalf("retry_budget_waits = %d, want 2", st.RetryBudgetWaits)
	}
	if st.RetryBudgetTokens != 0 {
		t.Fatalf("retry_budget_tokens = %v, want 0", st.RetryBudgetTokens)
	}
	// Each paced requeue must have waited out RetryBudgetWait, not the
	// millisecond backoff.
	for i := 0; i < 2; i++ {
		gap := time.Duration(times[i+1].Load() - times[i].Load())
		if gap < pace {
			t.Fatalf("requeue %d fired after %v, want >= %v (paced)", i+1, gap, pace)
		}
	}
	// The job still ends as a normal attempts-exhausted failure.
	var line Line
	if err := json.Unmarshal(out.Bytes(), &line); err != nil {
		t.Fatalf("output %q: %v", out.String(), err)
	}
	if line.Error == "" {
		t.Fatalf("exhausted job reported no error: %+v", line)
	}
}

// TestRetryBudgetExemptFrom429: sheds are backpressure, not retries —
// they must not spend budget tokens or trigger pacing.
func TestRetryBudgetExemptFrom429(t *testing.T) {
	var hits atomic.Int64
	worker := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch r.URL.Path {
		case "/healthz", "/readyz":
			w.WriteHeader(http.StatusOK)
		case "/jobs":
			if hits.Add(1) < 3 {
				w.Header().Set("Retry-After", "1")
				w.WriteHeader(http.StatusTooManyRequests)
				json.NewEncoder(w).Encode(map[string]string{"error": "admission queue full"})
				return
			}
			// Then fail permanently so the sweep terminates quickly.
			w.WriteHeader(http.StatusInternalServerError)
			json.NewEncoder(w).Encode(server.JobResponse{Error: "permanent", Transient: false})
		default:
			w.WriteHeader(http.StatusNotFound)
		}
	}))
	defer worker.Close()

	c, err := New(Config{
		Workers:          []string{worker.URL},
		MaxAttempts:      2,
		Retry:            backoff.Policy{Base: time.Millisecond, Cap: time.Millisecond, Factor: 1},
		RetryBudgetBurst: -1, // zero tokens: any spend attempt would pace
		RetryBudgetWait:  time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	req := server.JobRequest{SMs: 2, Cycles: 1000, Kernels: []string{"bp"}}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	var out bytes.Buffer
	if err := c.Run(ctx, []server.JobRequest{req}, &out); err != nil {
		t.Fatal(err)
	}
	st := c.StatsSnapshot()
	if st.Shed429 != 2 {
		t.Fatalf("shed_429 = %d, want 2", st.Shed429)
	}
	if st.RetryBudgetWaits != 0 {
		t.Fatalf("429s consulted the retry budget: waits = %d, want 0", st.RetryBudgetWaits)
	}
}
