package fleet_test

import (
	"bytes"
	"context"
	"io"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	gcke "repro"
	"repro/internal/backoff"
	"repro/internal/chaos"
	"repro/internal/fleet"
	"repro/internal/journal"
	"repro/internal/server"
)

// fleetJob mints a small job request; n varies the static limits so
// each n is a distinct fingerprint.
func fleetJob(n int) server.JobRequest {
	return server.JobRequest{
		SMs:           2,
		Cycles:        8_000,
		ProfileCycles: 6_000,
		Kernels:       []string{"bp", "ks"},
		Scheme: gcke.Scheme{
			Partition:    gcke.PartitionEven,
			Limiting:     gcke.LimitStatic,
			StaticLimits: []int{n, n},
		},
	}
}

func fastRetry() backoff.Policy {
	return backoff.Policy{Base: time.Millisecond, Cap: 5 * time.Millisecond, Factor: 2, Jitter: 0.5}
}

// startWorker spins an in-process ckeserve worker.
func startWorker(t *testing.T, cfg server.Config) *httptest.Server {
	t.Helper()
	cfg.Worker = true
	if cfg.Workers == 0 {
		cfg.Workers = 2
	}
	if cfg.Retry == (backoff.Policy{}) {
		cfg.Retry = fastRetry()
	}
	ts := httptest.NewServer(server.New(cfg).Handler())
	t.Cleanup(ts.Close)
	return ts
}

// runFleet runs one coordinator over reqs and returns the merged NDJSON.
func runFleet(t *testing.T, cfg fleet.Config, reqs []server.JobRequest) (string, fleet.Stats) {
	t.Helper()
	if cfg.MaxAttempts == 0 {
		cfg.MaxAttempts = 10
	}
	if cfg.Retry == (backoff.Policy{}) {
		cfg.Retry = fastRetry()
	}
	if cfg.HealthInterval == 0 {
		cfg.HealthInterval = 25 * time.Millisecond
	}
	if cfg.Logf == nil {
		cfg.Logf = t.Logf
	}
	c, err := fleet.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	var out bytes.Buffer
	if err := c.Run(ctx, reqs, &out); err != nil {
		t.Fatalf("fleet run: %v", err)
	}
	return out.String(), c.StatsSnapshot()
}

// killAfterFirstWrite closes a worker once the first merged line lands —
// a deterministic "mid-sweep" crash.
type killAfterFirstWrite struct {
	io.Writer
	once sync.Once
	kill func()
}

func (k *killAfterFirstWrite) Write(p []byte) (int, error) {
	n, err := k.Writer.Write(p)
	k.once.Do(func() { go k.kill() })
	return n, err
}

// TestFleetMatchesSingleNode is the headline property: a 3-worker fleet
// under network chaos (every fingerprint's first dispatch is dropped or
// answered 503) plus a worker killed mid-sweep produces byte-identical
// merged output to a clean single-worker run — and really did requeue.
func TestFleetMatchesSingleNode(t *testing.T) {
	reqs := []server.JobRequest{
		fleetJob(2), fleetJob(3), fleetJob(4), fleetJob(5),
		fleetJob(6), fleetJob(7), fleetJob(2), fleetJob(5), // duplicates collapse
	}

	clean := startWorker(t, server.Config{})
	golden, gst := runFleet(t, fleet.Config{Workers: []string{clean.URL}}, reqs)
	if gst.Requeues != 0 || gst.Failed != 0 {
		t.Fatalf("clean baseline not clean: %+v", gst)
	}
	if got := strings.Count(golden, "\n"); got != len(reqs) {
		t.Fatalf("baseline emitted %d lines, want %d", got, len(reqs))
	}

	w1 := startWorker(t, server.Config{})
	w2 := startWorker(t, server.Config{})
	w3 := startWorker(t, server.Config{})
	inj := chaos.New(chaos.Config{Seed: 11, NetDropProb: 0.5, Net5xxProb: 0.5, Failures: 1})
	cfg := fleet.Config{
		Workers:     []string{w1.URL, w2.URL, w3.URL},
		Transport:   inj.Transport(nil),
		JobTimeout:  time.Minute,
		MaxAttempts: 10,
		Retry:       fastRetry(),
		Logf:        t.Logf,
	}
	c, err := fleet.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	out := &killAfterFirstWrite{Writer: &buf, kill: func() {
		w3.CloseClientConnections()
		w3.Close()
	}}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	if err := c.Run(ctx, reqs, out); err != nil {
		t.Fatalf("chaos fleet run: %v", err)
	}
	if buf.String() != golden {
		t.Fatalf("fleet output diverged from single-node run:\nfleet:\n%s\nsingle:\n%s", buf.String(), golden)
	}
	st := c.StatsSnapshot()
	if st.Requeues == 0 {
		t.Fatalf("chaos sweep survived without requeues: %+v", st)
	}
	if st.Failed != 0 {
		t.Fatalf("failed jobs under recoverable chaos: %+v", st)
	}
}

// TestFleetHedgesStraggler: one worker hangs every job it is handed;
// the straggler threshold hedges those dispatches to the healthy worker
// and the hedge's result wins, so the sweep completes with every line
// populated.
func TestFleetHedgesStraggler(t *testing.T) {
	slow := startWorker(t, server.Config{
		JobTimeout: time.Hour, MaxRetries: -1,
		Chaos: chaos.New(chaos.Config{Seed: 7, HangProb: 1, Hang: time.Hour, Failures: 1 << 30}),
	})
	fast := startWorker(t, server.Config{})

	reqs := make([]server.JobRequest, 8)
	for i := range reqs {
		reqs[i] = fleetJob(10 + i)
	}
	out, st := runFleet(t, fleet.Config{
		Workers:    []string{slow.URL, fast.URL},
		HedgeAfter: 200 * time.Millisecond,
	}, reqs)

	if st.Failed != 0 {
		t.Fatalf("hedged sweep failed jobs: %+v", st)
	}
	if st.Hedges == 0 || st.HedgeWins == 0 {
		t.Fatalf("straggler sweep completed without hedging: %+v", st)
	}
	for _, line := range strings.Split(strings.TrimSpace(out), "\n") {
		if strings.Contains(line, `"error"`) || !strings.Contains(line, `"weighted_speedup"`) {
			t.Fatalf("bad merged line: %s", line)
		}
	}
}

// corrupt appends a torn half-line to a closed journal file, simulating
// a coordinator killed mid-append.
func corrupt(t *testing.T, path string) {
	t.Helper()
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"key":"j1-torn","val":{"half`); err != nil {
		t.Fatal(err)
	}
	f.Close()
}

// TestFleetResumeFromJournalUnion is the fleet-resume acceptance test:
// two workers each hold a partial journal, the coordinator's own
// journal holds the rest plus a torn tail, and the resumed sweep must
// union all three — re-simulating nothing (the workers are armed to
// fail any real simulation) and emitting byte-identical merged output.
func TestFleetResumeFromJournalUnion(t *testing.T) {
	dir := t.TempDir()
	reqs := []server.JobRequest{
		fleetJob(2), fleetJob(3), fleetJob(4), fleetJob(5), fleetJob(6), fleetJob(7),
	}

	// Golden: the whole sweep on one clean worker.
	clean := startWorker(t, server.Config{})
	golden, _ := runFleet(t, fleet.Config{Workers: []string{clean.URL}}, reqs)

	// Seed worker A's journal with jobs 0-2 and worker B's with 3-4 by
	// running partial sweeps against journaled workers.
	pathA := filepath.Join(dir, "workerA.ckpt")
	pathB := filepath.Join(dir, "workerB.ckpt")
	pathC := filepath.Join(dir, "coord.ckpt")
	jA, err := journal.Open(pathA)
	if err != nil {
		t.Fatal(err)
	}
	wa := startWorker(t, server.Config{Journal: jA})
	runFleet(t, fleet.Config{Workers: []string{wa.URL}}, reqs[0:3])
	wa.Close()
	jA.Close()

	jB, err := journal.Open(pathB)
	if err != nil {
		t.Fatal(err)
	}
	wb := startWorker(t, server.Config{Journal: jB})
	runFleet(t, fleet.Config{Workers: []string{wb.URL}}, reqs[3:5])
	wb.Close()
	jB.Close()

	// Seed the coordinator journal with job 5, then tear its tail as if
	// the coordinator died mid-append.
	jC, err := journal.Open(pathC)
	if err != nil {
		t.Fatal(err)
	}
	runFleet(t, fleet.Config{Workers: []string{clean.URL}, Journal: jC}, reqs[5:6])
	jC.Close()
	corrupt(t, pathC)

	// Resurrect the fleet. Every worker is armed with an unconditional
	// invariant fault: any job that actually simulates fails loudly, so
	// byte-identical output proves zero re-simulation.
	armed := chaos.Config{Seed: 3, InvariantProb: 1, Failures: 1 << 30}
	jA2, err := journal.Open(pathA)
	if err != nil {
		t.Fatal(err)
	}
	defer jA2.Close()
	jB2, err := journal.Open(pathB)
	if err != nil {
		t.Fatal(err)
	}
	defer jB2.Close()
	jC2, err := journal.Open(pathC)
	if err != nil {
		t.Fatal(err)
	}
	defer jC2.Close()
	if jC2.Recovered() != 1 {
		t.Fatalf("coordinator journal recovered %d entries, want 1 (torn tail dropped)", jC2.Recovered())
	}
	wa2 := startWorker(t, server.Config{Journal: jA2, Chaos: chaos.New(armed)})
	wb2 := startWorker(t, server.Config{Journal: jB2, Chaos: chaos.New(armed)})

	out, st := runFleet(t, fleet.Config{
		Workers: []string{wa2.URL, wb2.URL},
		Journal: jC2,
	}, reqs)

	if out != golden {
		t.Fatalf("resumed fleet output diverged:\nresumed:\n%s\ngolden:\n%s", out, golden)
	}
	if st.Resumed != int64(len(reqs)) {
		t.Fatalf("resumed %d jobs, want %d (journal union covers the sweep)", st.Resumed, len(reqs))
	}
	if st.Dispatched != 0 {
		t.Fatalf("resume dispatched %d jobs, want 0", st.Dispatched)
	}
	if jC2.Len() != len(reqs) {
		t.Fatalf("coordinator journal holds %d keys after resume, want %d (worker entries back-filled)", jC2.Len(), len(reqs))
	}
}
