// Package backoff implements capped exponential backoff with
// deterministic jitter for retrying transient job failures.
//
// The service retries jobs whose failure is plausibly environmental (a
// recovered worker panic, a per-attempt deadline) rather than a property
// of the job itself. Retrying in lockstep would synchronize retries from
// concurrent jobs into bursts, so each delay is jittered — but the
// simulator's reproducibility contract extends to its failure handling:
// the jitter is drawn from internal/xrand seeded by the job fingerprint
// and attempt number, so the same job retried in the same process (or a
// different one) waits exactly as long. There is no global randomness
// and no wall-clock dependence anywhere in the schedule.
package backoff

import (
	"hash/fnv"
	"time"

	"repro/internal/xrand"
)

// Defaults used when the corresponding Policy field is zero.
const (
	DefaultBase   = 100 * time.Millisecond
	DefaultCap    = 5 * time.Second
	DefaultFactor = 2.0
	DefaultJitter = 0.5
)

// Default returns the recommended policy: 100ms base doubling to a 5s
// cap, with half of each delay jittered.
func Default() Policy {
	return Policy{Base: DefaultBase, Cap: DefaultCap, Factor: DefaultFactor, Jitter: DefaultJitter}
}

// Policy describes a capped exponential backoff schedule. The zero value
// is usable: it selects the default base/cap/factor with no jitter (use
// Default for the jittered recommendation).
type Policy struct {
	// Base is the nominal first delay (attempt 1).
	Base time.Duration
	// Cap bounds every delay regardless of attempt number.
	Cap time.Duration
	// Factor is the per-attempt growth multiplier.
	Factor float64
	// Jitter is the fraction of each delay that is randomized: a delay d
	// becomes uniform in [d*(1-Jitter), d]. 0 disables jitter; values
	// outside [0,1] are clamped.
	Jitter float64
	// Seed perturbs the jitter stream (e.g. per-service), on top of the
	// per-key stream separation.
	Seed uint64
}

func (p Policy) withDefaults() Policy {
	if p.Base <= 0 {
		p.Base = DefaultBase
	}
	if p.Cap <= 0 {
		p.Cap = DefaultCap
	}
	if p.Factor < 1 {
		p.Factor = DefaultFactor
	}
	if p.Jitter < 0 {
		p.Jitter = 0
	}
	if p.Jitter > 1 {
		p.Jitter = 1
	}
	return p
}

// Delay returns the wait before retry number attempt (1-based; attempt 0
// and below return 0) of the job identified by key. It is a pure
// function of (Policy, key, attempt).
func (p Policy) Delay(key string, attempt int) time.Duration {
	if attempt <= 0 {
		return 0
	}
	p = p.withDefaults()
	d := float64(p.Base)
	for i := 1; i < attempt; i++ {
		d *= p.Factor
		if d >= float64(p.Cap) {
			break
		}
	}
	if d > float64(p.Cap) {
		d = float64(p.Cap)
	}
	if p.Jitter > 0 {
		// One independent deterministic stream per (seed, key, attempt):
		// the draw does not depend on how many delays were computed
		// before it, so concurrent retry loops stay reproducible.
		src := xrand.New(p.Seed ^ hashKey(key)).Fork(uint64(attempt))
		d *= 1 - p.Jitter*src.Float64()
	}
	if d < 1 {
		d = 1
	}
	return time.Duration(d)
}

// hashKey folds a job fingerprint into a 64-bit stream selector.
func hashKey(key string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(key))
	return h.Sum64()
}
