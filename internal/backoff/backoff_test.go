package backoff

import (
	"testing"
	"time"
)

func TestDelayDeterministic(t *testing.T) {
	p := Policy{Base: 10 * time.Millisecond, Cap: time.Second, Factor: 2, Jitter: 0.5, Seed: 7}
	for attempt := 1; attempt <= 8; attempt++ {
		a := p.Delay("j1-abc", attempt)
		b := p.Delay("j1-abc", attempt)
		if a != b {
			t.Fatalf("attempt %d: delay not deterministic: %v vs %v", attempt, a, b)
		}
	}
	// Different keys (and different seeds) must draw from different
	// jitter streams, or concurrent retries synchronize into bursts.
	same := 0
	for attempt := 1; attempt <= 8; attempt++ {
		if p.Delay("j1-abc", attempt) == p.Delay("j1-def", attempt) {
			same++
		}
	}
	if same == 8 {
		t.Fatal("all delays identical across keys: jitter stream is not key-separated")
	}
}

func TestDelayGrowthAndCap(t *testing.T) {
	p := Policy{Base: 10 * time.Millisecond, Cap: 80 * time.Millisecond, Factor: 2, Jitter: 0}
	want := []time.Duration{
		10 * time.Millisecond, 20 * time.Millisecond, 40 * time.Millisecond,
		80 * time.Millisecond, 80 * time.Millisecond, 80 * time.Millisecond,
	}
	for i, w := range want {
		if got := p.Delay("k", i+1); got != w {
			t.Fatalf("attempt %d: delay %v, want %v", i+1, got, w)
		}
	}
	if got := p.Delay("k", 0); got != 0 {
		t.Fatalf("attempt 0: delay %v, want 0", got)
	}
	if got := p.Delay("k", -3); got != 0 {
		t.Fatalf("negative attempt: delay %v, want 0", got)
	}
}

func TestDelayJitterBounds(t *testing.T) {
	p := Policy{Base: 100 * time.Millisecond, Cap: time.Second, Factor: 2, Jitter: 0.5}
	// The jittered delay for attempt n must stay within
	// [nominal*(1-jitter), nominal] of the un-jittered schedule.
	plain := Policy{Base: p.Base, Cap: p.Cap, Factor: p.Factor, Jitter: 0}
	for attempt := 1; attempt <= 6; attempt++ {
		nominal := plain.Delay("k", attempt)
		for _, key := range []string{"a", "b", "c", "d"} {
			got := p.Delay(key, attempt)
			lo := time.Duration(float64(nominal) * 0.5)
			if got < lo || got > nominal {
				t.Fatalf("attempt %d key %s: delay %v outside [%v, %v]", attempt, key, got, lo, nominal)
			}
		}
	}
}

func TestZeroPolicyUsable(t *testing.T) {
	var p Policy
	if d := p.Delay("k", 1); d != DefaultBase {
		t.Fatalf("zero policy attempt 1: %v, want %v (defaults, no jitter)", d, DefaultBase)
	}
	if d := p.Delay("k", 100); d != DefaultCap {
		t.Fatalf("zero policy attempt 100: %v, want default cap %v", d, DefaultCap)
	}
	dp := Default()
	if d := dp.Delay("k", 1); d <= 0 || d > DefaultBase {
		t.Fatalf("default policy attempt 1: %v, want in (0, %v]", d, DefaultBase)
	}
}

// TestDelayHugeAttemptNoOverflow guards the growth loop against float
// overflow turning a capped delay into garbage.
func TestDelayHugeAttemptNoOverflow(t *testing.T) {
	p := Policy{Base: time.Second, Cap: 30 * time.Second, Factor: 10, Jitter: 0}
	if got := p.Delay("k", 1_000_000); got != 30*time.Second {
		t.Fatalf("huge attempt: delay %v, want cap", got)
	}
}
