package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/chaos"
)

// TestBurstAdmissionExactLimitNoSlotLeak: N concurrent POSTs against a
// 1-worker server with hung jobs admit exactly Workers+QueueDepth, shed
// the rest with a coherent Retry-After, and leak no admission or engine
// slot once the burst drains. Run under -race in CI.
func TestBurstAdmissionExactLimitNoSlotLeak(t *testing.T) {
	const burst = 12
	srv := New(Config{
		Workers: 1, QueueDepth: 2, Retry: fastRetry(), MaxRetries: 0,
		JobTimeout: time.Hour,
		Chaos:      chaos.New(chaos.Config{Seed: 5, HangProb: 1, Hang: time.Hour, Failures: 1 << 30}),
	})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	limit := srv.cfg.Workers + srv.cfg.QueueDepth

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var shed, badRetryAfter atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < burst; i++ {
		wg.Add(1)
		go func(n int) {
			defer wg.Done()
			body, _ := json.Marshal(smallJob(300 + n))
			req, _ := http.NewRequestWithContext(ctx, http.MethodPost,
				ts.URL+"/jobs", bytes.NewReader(body))
			resp, err := ts.Client().Do(req)
			if err != nil {
				return // admitted-then-cancelled below
			}
			defer resp.Body.Close()
			if resp.StatusCode == http.StatusTooManyRequests {
				shed.Add(1)
				if resp.Header.Get("Retry-After") == "" {
					badRetryAfter.Add(1)
				}
			}
		}(i)
	}

	// Hung jobs never finish, so admission counts are stable once every
	// request has either claimed a slot or been shed — wait for the shed
	// clients to finish reading their 429s too, or the cancel below
	// races their response bodies.
	deadline := time.Now().Add(10 * time.Second)
	for {
		st := srv.StatsSnapshot()
		if st.Accepted+st.ShedQueue == burst && shed.Load() == st.ShedQueue {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("burst never settled: server %+v, client sheds %d", st, shed.Load())
		}
		time.Sleep(2 * time.Millisecond)
	}
	st := srv.StatsSnapshot()
	if st.Accepted != int64(limit) {
		t.Fatalf("accepted = %d, want exactly limit %d", st.Accepted, limit)
	}
	if st.ShedQueue != int64(burst-limit) {
		t.Fatalf("shed = %d, want %d", st.ShedQueue, burst-limit)
	}

	cancel() // release the hung requests
	wg.Wait()
	if got := shed.Load(); got != int64(burst-limit) {
		t.Fatalf("client-observed 429s = %d, want %d", got, burst-limit)
	}
	if badRetryAfter.Load() != 0 {
		t.Fatalf("%d sheds arrived without Retry-After", badRetryAfter.Load())
	}
	// No admission-slot leak: queued must return to zero...
	deadline = time.Now().Add(10 * time.Second)
	for srv.StatsSnapshot().Queued != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("admission slots leaked: %+v", srv.StatsSnapshot())
		}
		time.Sleep(2 * time.Millisecond)
	}
	// ...and no engine-slot leak: the slot channel must fully drain.
	deadline = time.Now().Add(10 * time.Second)
	for len(srv.slots) != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("engine slots leaked: %d still held", len(srv.slots))
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestDeadlineShedOnArrival: once the estimator knows a family's
// service time, a job whose deadline cannot fit even one run is shed at
// arrival with 429 + Retry-After and the distinct shed_deadline counter
// — it never touches the admission queue.
func TestDeadlineShedOnArrival(t *testing.T) {
	srv := New(Config{Workers: 1, Retry: fastRetry()})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// Warm the estimator with a real run of the family.
	warm := smallJob(4)
	if status, out := postJob(t, ts, warm); status != http.StatusOK {
		t.Fatalf("warm job status %d, body %+v", status, out)
	}

	// Same family, microscopic deadline: estimate alone overruns it.
	doomed := smallJob(5)
	doomed.Deadline = "1ns"
	body, _ := json.Marshal(doomed)
	resp, err := ts.Client().Post(ts.URL+"/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("deadline shed without Retry-After")
	}
	st := srv.StatsSnapshot()
	if st.ShedDeadline != 1 {
		t.Fatalf("shed_deadline = %d, want 1", st.ShedDeadline)
	}
	if st.ShedQueue != 0 {
		t.Fatalf("deadline shed miscounted as queue shed: %+v", st)
	}

	// A meetable deadline on the same family is admitted and served.
	fine := smallJob(6)
	fine.Deadline = "1h"
	if status, out := postJob(t, ts, fine); status != http.StatusOK {
		t.Fatalf("meetable-deadline job status %d, body %+v", status, out)
	}
}

// TestDeadlineStaleDroppedAtDequeue: a job whose deadline became
// unmeetable while it waited for an engine slot is dropped by the
// dequeue-time re-check (ErrStale) before it burns the slot.
func TestDeadlineStaleDroppedAtDequeue(t *testing.T) {
	srv := New(Config{Workers: 1})
	req := smallJob(4)
	job, key, _, err := req.Build()
	if err != nil {
		t.Fatal(err)
	}
	fam := req.Family()
	// The family is known to cost an hour; the deadline is 50ms out. The
	// arrival check was passed when the queue was shorter — by dequeue
	// the budget no longer fits one run.
	srv.est.Observe(fam, time.Hour)
	res, attempts := srv.executeSlot(context.Background(), job, key, fam, time.Now().Add(50*time.Millisecond))
	if !errors.Is(res.Err, ErrStale) {
		t.Fatalf("err = %v, want ErrStale", res.Err)
	}
	if attempts != 0 {
		t.Fatalf("stale job burned %d attempts, want 0", attempts)
	}
	if got := srv.StatsSnapshot().ShedDeadline; got != 1 {
		t.Fatalf("shed_deadline = %d, want 1", got)
	}
	// A deadline already in the past is stale regardless of estimates.
	srv2 := New(Config{Workers: 1})
	res, _ = srv2.executeSlot(context.Background(), job, key, fam, time.Now().Add(-time.Second))
	if !errors.Is(res.Err, ErrStale) {
		t.Fatalf("past-deadline err = %v, want ErrStale", res.Err)
	}
}

// TestDeadlineMissedNeverServedAsSuccess: a simulation that finishes
// after its deadline is returned as 504 (ErrDeadlineMiss), not 200 —
// even when nothing cancelled it mid-run.
func TestDeadlineMissedNeverServedAsSuccess(t *testing.T) {
	srv := New(Config{Workers: 1})
	req := smallJob(4)
	job, key, _, err := req.Build()
	if err != nil {
		t.Fatal(err)
	}
	// Deadline a hair in the future: any real simulation takes far
	// longer, so the run completes past it and hits the guard.
	res, attempts := srv.execute(context.Background(), job, key, req.Family(), time.Now().Add(time.Microsecond))
	if !errors.Is(res.Err, ErrDeadlineMiss) {
		t.Fatalf("err = %v, want ErrDeadlineMiss", res.Err)
	}
	if attempts == 0 {
		t.Fatal("guard fired without an attempt")
	}
	if got := statusOf(res.Err); got != http.StatusGatewayTimeout {
		t.Fatalf("statusOf(ErrDeadlineMiss) = %d, want 504", got)
	}
	st := srv.StatsSnapshot()
	if st.DeadlineLate != 1 || st.Completed != 0 {
		t.Fatalf("late success leaked into goodput: %+v", st)
	}
}

// TestRetryBudgetExhaustedStopsRetries: with a zero retry budget a
// transient failure is not retried — the budget counter moves and the
// job fails with its last error instead of amplifying load.
func TestRetryBudgetExhaustedStopsRetries(t *testing.T) {
	srv := New(Config{
		Workers: 2, Retry: fastRetry(), MaxRetries: 5,
		RetryBudgetBurst: -1, // literal zero tokens
		Chaos:            chaos.New(chaos.Config{Seed: 5, PanicProb: 1, Failures: 1 << 30}),
	})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	status, out := postJob(t, ts, smallJob(4))
	if status != http.StatusInternalServerError {
		t.Fatalf("status = %d, want 500", status)
	}
	if out.Attempts != 1 {
		t.Fatalf("attempts = %d, want 1 (no budget, no retry)", out.Attempts)
	}
	st := srv.StatsSnapshot()
	if st.ShedRetryBudget != 1 {
		t.Fatalf("shed_retry_budget = %d, want 1", st.ShedRetryBudget)
	}
	if st.Retries != 0 {
		t.Fatalf("retries = %d with an empty budget, want 0", st.Retries)
	}
}

// TestRetryBudgetRefillsFromSuccesses: successes earn tokens back, so a
// drained budget recovers once traffic is healthy again.
func TestRetryBudgetRefillsFromSuccesses(t *testing.T) {
	srv := New(Config{
		Workers: 1, Retry: fastRetry(), MaxRetries: 2,
		RetryBudgetRatio: 1, RetryBudgetBurst: 1,
		// First attempt of each fingerprint panics, then succeeds.
		Chaos: chaos.New(chaos.Config{Seed: 5, PanicProb: 1, Failures: 1}),
	})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// Job 1 spends the only token on its retry and succeeds, earning one
	// back; job 2 needs that earned token for its own retry.
	for n := 4; n <= 5; n++ {
		if status, out := postJob(t, ts, smallJob(n)); status != http.StatusOK {
			t.Fatalf("job %d status %d, body %+v", n, status, out)
		}
	}
	st := srv.StatsSnapshot()
	if st.Retries != 2 || st.ShedRetryBudget != 0 {
		t.Fatalf("refill failed: %+v", st)
	}
}

// TestStatzOverloadGaugesMoveUnderLoad: the new /statz fields —
// queue-wait percentiles, inflight_limit, shed_deadline — move when the
// server is actually loaded, end-to-end through the HTTP surface.
func TestStatzOverloadGaugesMoveUnderLoad(t *testing.T) {
	srv := New(Config{
		Workers: 1, QueueDepth: 4, Retry: fastRetry(),
		// An absurd 1ns target: every real attempt overruns it, so the
		// AIMD limit must fall below its ceiling under load.
		TargetLatency: time.Nanosecond,
	})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// Contend: 3 concurrent jobs on 1 worker, so two of them queue and
	// the wait ring records real waits.
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func(n int) {
			defer wg.Done()
			body, _ := json.Marshal(smallJob(400 + n))
			resp, err := ts.Client().Post(ts.URL+"/jobs", "application/json", bytes.NewReader(body))
			if err == nil {
				resp.Body.Close()
			}
		}(i)
	}
	wg.Wait()

	// One deadline shed so the counter moves.
	doomed := smallJob(4)
	doomed.Deadline = "1ns"
	body, _ := json.Marshal(doomed)
	if resp, err := ts.Client().Post(ts.URL+"/jobs", "application/json", bytes.NewReader(body)); err == nil {
		resp.Body.Close()
	}

	resp, err := ts.Client().Get(ts.URL + "/statz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.QueueWaitP95Ms <= 0 {
		t.Fatalf("queue_wait_ms_p95 = %v after contended load, want > 0", st.QueueWaitP95Ms)
	}
	if st.QueueWaitP50Ms > st.QueueWaitP95Ms || st.QueueWaitP95Ms > st.QueueWaitP99Ms {
		t.Fatalf("percentiles out of order: p50=%v p95=%v p99=%v",
			st.QueueWaitP50Ms, st.QueueWaitP95Ms, st.QueueWaitP99Ms)
	}
	if ceil := srv.cfg.Workers + srv.cfg.QueueDepth; st.InflightLimit >= ceil {
		t.Fatalf("inflight_limit = %d, want < ceiling %d after slow attempts", st.InflightLimit, ceil)
	}
	if st.ShedDeadline != 1 {
		t.Fatalf("shed_deadline = %d, want 1", st.ShedDeadline)
	}
	if st.RetryBudgetTokens <= 0 {
		t.Fatalf("retry_budget_tokens = %v, want > 0 on a healthy server", st.RetryBudgetTokens)
	}
}

// TestAIMDDisabledKeepsFixedBound: without a TargetLatency the
// inflight limit stays pinned at Workers+QueueDepth no matter how slow
// attempts are — pre-adaptive behaviour is the default, exactly.
func TestAIMDDisabledKeepsFixedBound(t *testing.T) {
	srv := New(Config{Workers: 1, QueueDepth: 2, Retry: fastRetry()})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	if status, out := postJob(t, ts, smallJob(4)); status != http.StatusOK {
		t.Fatalf("status %d, body %+v", status, out)
	}
	if got := srv.StatsSnapshot().InflightLimit; got != 3 {
		t.Fatalf("inflight_limit = %d, want fixed 3", got)
	}
}
