// Package server is the long-lived simulation service: an HTTP layer
// that accepts simulation jobs (the runner.Job shape), executes them on
// the concurrent runner pool, journals completed results, and degrades
// gracefully instead of falling over.
//
// The degradation mechanisms, in the order a request meets them:
//
//   - Circuit breaker: a job fingerprint that keeps tripping the
//     invariant watchdog is shed with 429 before execution — the engine
//     is deterministic, so retrying a *sm.InvariantError is futile.
//   - Bounded admission: at most Workers+QueueDepth requests are in the
//     building; excess load is shed immediately with 429 + Retry-After
//     rather than queued without bound.
//   - Per-attempt deadlines: Runner.Timeout bounds each attempt's
//     wall-clock; a request-level deadline (the job's "timeout" field)
//     bounds the whole retry loop on top.
//   - Retry with deterministic backoff: attempts that fail transiently
//     (recovered panic, deadline expiry — runner.IsTransient) are
//     retried up to MaxRetries times, spaced by internal/backoff delays
//     jittered deterministically per job fingerprint.
//   - Drain: once draining starts, new work is refused (503, /readyz
//     red) while in-flight jobs run to completion and the journal is
//     flushed — SIGTERM never abandons a half-simulated job.
//
// Every mechanism is exercised end-to-end by the chaos tests in this
// package: each resilience claim has a failing-then-recovering test
// driven by the deterministic internal/chaos injector.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"runtime"
	"sync/atomic"
	"time"

	gcke "repro"
	"repro/internal/backoff"
	"repro/internal/chaos"
	"repro/internal/ckpt"
	"repro/internal/gpu"
	"repro/internal/journal"
	"repro/internal/overload"
	"repro/internal/resultcache"
	"repro/internal/runner"
	"repro/internal/sm"
	"repro/internal/stats"
)

// ErrStale marks a job whose deadline became unmeetable while it waited
// in the admission queue: the dequeue-time re-check drops it before it
// burns an engine slot, and the handler sheds it like an arrival-time
// deadline rejection (429).
var ErrStale = errors.New("deadline overrun while queued")

// ErrDeadlineMiss marks a job that finished simulating after its
// deadline had already passed. The server never returns such a result as
// a success — a deadline-carrying client has, by definition, stopped
// caring, and counting it as goodput would hide overload.
var ErrDeadlineMiss = errors.New("completed past deadline")

// Config assembles the service. The zero value of every field selects a
// sensible default (see the field comments).
type Config struct {
	// Workers is the number of concurrent simulation slots (default
	// GOMAXPROCS).
	Workers int
	// QueueDepth is how many admitted requests may wait for a slot
	// beyond the ones executing (default 2*Workers). Past
	// Workers+QueueDepth, requests are shed with 429.
	QueueDepth int
	// JobTimeout bounds each attempt's wall-clock time (0 = unbounded).
	JobTimeout time.Duration
	// MaxRetries is how many times a transiently-failed job is re-run
	// (default 2; negative disables retries).
	MaxRetries int
	// Retry is the backoff schedule between attempts (zero value =
	// backoff defaults without jitter; backoff.Default() is recommended).
	Retry backoff.Policy
	// BreakerThreshold is how many invariant-watchdog violations a job
	// fingerprint accrues before its circuit opens (default 3).
	BreakerThreshold int
	// BreakerCooldown is how long an open circuit sheds before allowing
	// a probe (default 1m).
	BreakerCooldown time.Duration
	// RetryAfter is the Retry-After hint on queue-shed responses
	// (default 1s). Breaker sheds report the circuit's remaining
	// cooldown instead.
	RetryAfter time.Duration
	// Journal, when non-nil, checkpoints completed jobs and replays
	// already-journaled fingerprints without re-simulating. Drain closes
	// it.
	Journal *journal.Journal
	// Cache, when non-nil, is the content-addressed result store: a job
	// whose fingerprint is cached is served before the breaker and the
	// admission queue (it costs no simulation), and every newly
	// simulated result is stored. Drain closes it.
	Cache *resultcache.Store
	// ForkWarmup enables warmup-snapshot forking on the runner's derived
	// sessions (jobs with Scheme.Warmup sharing a warmup family simulate
	// the unmanaged prefix once).
	ForkWarmup bool
	// Chaos, when non-nil, wires the deterministic fault injector into
	// the runner and journal (dev/test only — the -chaos flag).
	Chaos *chaos.Injector
	// Check enables the per-cycle invariant watchdog on every derived
	// session.
	Check bool
	// EngineWorkers is the cycle engine's intra-run SM-tick fan-out for
	// each executing job. The worker budget is shared with the job-level
	// pool: when 0, it defaults to GOMAXPROCS/Workers (min 1), so
	// Workers slots x EngineWorkers goroutines never oversubscribe the
	// machine. Results are byte-identical for any value.
	EngineWorkers int
	// EnginePartWorkers is the engine's memory-side fan-out per job
	// (L2+DRAM partitions ticked concurrently within a cycle). When 0
	// it follows the resolved EngineWorkers, keeping the per-job
	// goroutine budget the one EngineWorkers was sized for. Results are
	// byte-identical for any value.
	EnginePartWorkers int
	// PhaseTrace enables the engine's per-phase wall-clock counters on
	// every derived session; /statz then reports the process-wide
	// per-phase breakdown under "phase_ns".
	PhaseTrace bool
	// Worker enables fleet-worker mode: the server additionally exposes
	// /journalz, an NDJSON dump of its checkpoint journal, so a fleet
	// coordinator can resume a sweep from the union of worker journals
	// without re-dispatching completed fingerprints.
	Worker bool
	// Checkpoints, when non-nil, persists mid-job engine checkpoints
	// every CheckpointEvery cycles, so a job interrupted by a crash or
	// kill resumes from its last durable checkpoint instead of cycle 0.
	Checkpoints *ckpt.Store
	// CheckpointEvery is the checkpoint interval in simulated cycles
	// (0 disables checkpointing even with a store configured).
	CheckpointEvery int64
	// TargetLatency drives the adaptive (AIMD) in-flight limit: while
	// per-attempt latency stays at or under the target the admission
	// limit creeps up toward Workers+QueueDepth; every overrun shrinks
	// it multiplicatively (floor 1). Zero disables adaptation and keeps
	// the fixed Workers+QueueDepth bound as the admission gate.
	TargetLatency time.Duration
	// RetryBudgetRatio is the retry-budget refill per completed success
	// (default 0.1 — retries bounded at ~10% of fresh traffic).
	// Negative clamps to 0.
	RetryBudgetRatio float64
	// RetryBudgetBurst is the retry token bucket's capacity and initial
	// balance (default 10). Negative selects a literal 0 — no retries
	// ever, for tests pinning exhaustion behaviour.
	RetryBudgetBurst float64
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 2 * c.Workers
	}
	if c.MaxRetries == 0 {
		c.MaxRetries = 2
	}
	if c.MaxRetries < 0 {
		c.MaxRetries = 0
	}
	if c.BreakerThreshold <= 0 {
		c.BreakerThreshold = 3
	}
	if c.BreakerCooldown <= 0 {
		c.BreakerCooldown = time.Minute
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = time.Second
	}
	if c.EngineWorkers <= 0 {
		c.EngineWorkers = runtime.GOMAXPROCS(0) / c.Workers
		if c.EngineWorkers < 1 {
			c.EngineWorkers = 1
		}
	}
	if c.EnginePartWorkers <= 0 {
		c.EnginePartWorkers = c.EngineWorkers
	}
	if c.RetryBudgetRatio == 0 {
		c.RetryBudgetRatio = 0.1
	}
	if c.RetryBudgetRatio < 0 {
		c.RetryBudgetRatio = 0
	}
	if c.RetryBudgetBurst == 0 {
		c.RetryBudgetBurst = 10
	}
	if c.RetryBudgetBurst < 0 {
		c.RetryBudgetBurst = 0
	}
	return c
}

// Server is the HTTP simulation service. Create with New, expose with
// Handler or ListenAndServe, stop with Drain.
type Server struct {
	cfg     Config
	run     *runner.Runner
	slots   chan struct{} // execution slots (capacity Workers)
	queued  atomic.Int64  // admitted requests (waiting + executing)
	brk     *breaker
	mux     *http.ServeMux
	hs      atomic.Pointer[http.Server]
	drainng atomic.Bool

	// Overload control: the AIMD limit is the admission gate (its
	// ceiling is the old fixed Workers+QueueDepth bound), the estimator
	// prices deadline admission per job family, the budget meters
	// retries, and the wait ring feeds /statz queue-wait percentiles.
	aimd   *overload.AIMD
	budget *overload.RetryBudget
	est    *overload.Estimator
	waits  *overload.WaitRing

	accepted  atomic.Int64
	shedQueue atomic.Int64
	shedBrk   atomic.Int64
	shedDline atomic.Int64 // deadline sheds (arrival + dequeue-stale)
	shedRetry atomic.Int64 // retries denied by the exhausted budget
	dlineLate atomic.Int64 // successes converted to 504 by the deadline guard
	retries   atomic.Int64
	completed atomic.Int64
	failed    atomic.Int64
	corrupted atomic.Int64 // chaos-corrupted responses sent (dev/test)

	// Aggregate engine-performance gauges over executed (non-replayed)
	// successful attempts: simulated cycles, wall-clock nanoseconds and
	// heap allocations. /statz derives cycles/sec and allocs/cycle.
	simCycles atomic.Int64
	simNanos  atomic.Int64
	simAllocs atomic.Int64

	// latEWMA is the exponentially weighted moving average of successful
	// attempt latencies, in nanoseconds (0 = no samples yet). It sizes
	// the load-proportional Retry-After hint on queue sheds.
	latEWMA atomic.Int64
}

// New assembles a server from cfg.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	r := runner.New(cfg.Workers)
	r.Timeout = cfg.JobTimeout
	r.Journal = cfg.Journal
	r.Cache = cfg.Cache
	r.Check = cfg.Check
	r.EngineWorkers = cfg.EngineWorkers
	r.EnginePartWorkers = cfg.EnginePartWorkers
	r.PhaseTime = cfg.PhaseTrace
	r.ForkWarmup = cfg.ForkWarmup
	r.Checkpoints = cfg.Checkpoints
	r.CheckpointEvery = cfg.CheckpointEvery
	if cfg.Chaos != nil {
		r.Fault = cfg.Chaos.JobFault
		if cfg.Journal != nil {
			cfg.Journal.FaultHook = cfg.Chaos.JournalFault
		}
		if cfg.Cache != nil {
			cfg.Cache.FaultHook = cfg.Chaos.CacheFault
		}
		if cfg.Checkpoints != nil {
			cfg.Checkpoints.FaultHook = cfg.Chaos.CheckpointFault
		}
	}
	s := &Server{
		cfg:    cfg,
		run:    r,
		slots:  make(chan struct{}, cfg.Workers),
		brk:    newBreaker(cfg.BreakerThreshold, cfg.BreakerCooldown),
		mux:    http.NewServeMux(),
		aimd:   overload.NewAIMD(cfg.TargetLatency, cfg.Workers+cfg.QueueDepth),
		budget: overload.NewRetryBudget(cfg.RetryBudgetRatio, cfg.RetryBudgetBurst),
		est:    overload.NewEstimator(),
		waits:  overload.NewWaitRing(0),
	}
	s.mux.HandleFunc("/jobs", s.handleJob)
	s.mux.HandleFunc("/sweep", s.handleSweep)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/readyz", s.handleReadyz)
	s.mux.HandleFunc("/statz", s.handleStatz)
	if cfg.Worker {
		s.mux.HandleFunc("/journalz", s.handleJournalz)
	}
	s.mux.HandleFunc("/debug/pprof/", pprof.Index)
	s.mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	s.mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	s.mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	s.mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return s
}

// Handler returns the service's HTTP handler (for tests and embedding).
func (s *Server) Handler() http.Handler { return s.mux }

// ListenAndServe serves on addr until Drain (or a listener error).
// http.ErrServerClosed — the clean-drain outcome — is returned as nil.
func (s *Server) ListenAndServe(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(ln)
}

// Serve serves on ln until Drain (or a listener error).
func (s *Server) Serve(ln net.Listener) error {
	hs := &http.Server{Handler: s.mux}
	s.hs.Store(hs)
	if err := hs.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}

// Drain performs graceful shutdown: new work is refused (503, /readyz
// red) while in-flight requests run to completion, then the journal is
// closed so every completed job is durable. ctx bounds the wait; on
// expiry the remaining requests are abandoned and ctx's error returned.
func (s *Server) Drain(ctx context.Context) error {
	s.drainng.Store(true)
	if hs := s.hs.Load(); hs != nil {
		if err := hs.Shutdown(ctx); err != nil {
			return err
		}
	} else {
		// Handler-only deployment (tests): poll the admission count.
		for s.queued.Load() > 0 {
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-time.After(2 * time.Millisecond):
			}
		}
	}
	if s.cfg.Cache != nil {
		if err := s.cfg.Cache.Close(); err != nil {
			return err
		}
	}
	if s.cfg.Journal != nil {
		return s.cfg.Journal.Close()
	}
	return nil
}

// Draining reports whether Drain has started.
func (s *Server) Draining() bool { return s.drainng.Load() }

// JobRequest is the wire shape of one simulation job. The machine is
// described by size (sms) and run lengths; kernels are Table 2 names;
// scheme uses the gcke.Scheme JSON encoding (Go field names).
type JobRequest struct {
	SMs           int         `json:"sms"`
	Cycles        int64       `json:"cycles"`
	ProfileCycles int64       `json:"profile_cycles,omitempty"`
	Kernels       []string    `json:"kernels"`
	Scheme        gcke.Scheme `json:"scheme"`
	// Timeout, when set (Go duration string), bounds the job's whole
	// retry loop — layered on the server's per-attempt JobTimeout.
	Timeout string `json:"timeout,omitempty"`
	// Deadline, when set (Go duration string), is the client's
	// end-to-end latency budget: the server sheds the job as soon as
	// queue-wait plus estimated service time can no longer fit inside
	// it, drops it at dequeue if it went stale while queued, and never
	// returns a success past it (504 instead).
	Deadline string `json:"deadline,omitempty"`
}

// Limits are the request-level time bounds parsed out of a JobRequest.
// Timeout bounds the retry loop; Deadline is the admission-control
// budget (zero = the client did not state one).
type Limits struct {
	Timeout  time.Duration
	Deadline time.Duration
}

// Build validates the request into a runnable job plus its fingerprint
// and request-level limits. It is exported for the fleet coordinator,
// which shards and journals by the same fingerprint the worker will
// compute — content addressing only dedupes duplicate completions if
// both sides derive the key from the identical job.
func (req *JobRequest) Build() (runner.Job, string, Limits, error) {
	if req.SMs <= 0 {
		req.SMs = 4
	}
	if req.Cycles <= 0 {
		return runner.Job{}, "", Limits{}, fmt.Errorf("cycles must be positive")
	}
	if len(req.Kernels) == 0 {
		return runner.Job{}, "", Limits{}, fmt.Errorf("kernels must name at least one benchmark")
	}
	ds := make([]gcke.Kernel, len(req.Kernels))
	for i, name := range req.Kernels {
		d, err := gcke.Benchmark(name)
		if err != nil {
			return runner.Job{}, "", Limits{}, err
		}
		ds[i] = d
	}
	if err := req.Scheme.Validate(len(ds)); err != nil {
		return runner.Job{}, "", Limits{}, err
	}
	var lim Limits
	if req.Timeout != "" {
		d, err := time.ParseDuration(req.Timeout)
		if err != nil || d <= 0 {
			return runner.Job{}, "", Limits{}, fmt.Errorf("timeout %q: want a positive Go duration", req.Timeout)
		}
		lim.Timeout = d
	}
	if req.Deadline != "" {
		d, err := time.ParseDuration(req.Deadline)
		if err != nil || d <= 0 {
			return runner.Job{}, "", Limits{}, fmt.Errorf("deadline %q: want a positive Go duration", req.Deadline)
		}
		lim.Deadline = d
	}
	job := runner.Job{
		Config:        gcke.ScaledConfig(req.SMs),
		Cycles:        req.Cycles,
		ProfileCycles: req.ProfileCycles,
		Kernels:       ds,
		Scheme:        req.Scheme,
	}
	key, err := job.Key()
	if err != nil {
		return runner.Job{}, "", Limits{}, err
	}
	return job, key, lim, nil
}

// Family is the service-time estimator key for this request: machine
// size, run length and kernel mix — the cost-dominating fields. Call
// after Build (which defaults SMs).
func (req *JobRequest) Family() string {
	return overload.Family(req.SMs, req.Cycles, req.Kernels)
}

// JobResponse is the wire shape of one job outcome.
type JobResponse struct {
	Key             string               `json:"key"`
	Index           int                  `json:"index"`
	Attempts        int                  `json:"attempts"`
	Replayed        bool                 `json:"replayed,omitempty"`
	Cached          bool                 `json:"cached,omitempty"`
	WeightedSpeedup float64              `json:"weighted_speedup,omitempty"`
	ANTT            float64              `json:"antt,omitempty"`
	Fairness        float64              `json:"fairness,omitempty"`
	Error           string               `json:"error,omitempty"`
	Transient       bool                 `json:"transient,omitempty"`
	Result          *gcke.WorkloadResult `json:"result,omitempty"`
	// ResumedFrom is the cycle the job resumed simulation from (0 = a
	// full run), when mid-job checkpointing is enabled.
	ResumedFrom int64 `json:"resumed_from,omitempty"`
	// Digest is the hex sha256 of the marshaled Result, present when the
	// full result is included. A coordinator verifies the result bytes it
	// received against it at every hop. It is computed by the worker over
	// whatever it is about to send — a corrupt worker's digest covers its
	// corrupt bytes (self-consistent), which is why the audit layer
	// re-executes rather than re-hashes.
	Digest string `json:"digest,omitempty"`
}

func (s *Server) response(index int, res runner.Result, attempts int, full bool) JobResponse {
	out := JobResponse{Key: res.Key, Index: index, Attempts: attempts,
		Replayed: res.Replayed, Cached: res.Cached, ResumedFrom: res.ResumedFrom}
	if res.Err != nil {
		out.Error = res.Err.Error()
		out.Transient = runner.IsTransient(res.Err)
		return out
	}
	out.WeightedSpeedup = res.Res.WeightedSpeedup()
	out.ANTT = res.Res.ANTT()
	out.Fairness = res.Res.Fairness()
	if full {
		out.Result = res.Res
		// The silent-corruption seam sits BEFORE the digest so a corrupt
		// worker is self-consistent: digest and bytes agree, every
		// per-hop integrity check passes, and only an independent
		// re-execution on another worker can expose the damage.
		if s.cfg.Chaos != nil && s.cfg.Chaos.ResultFault(res.Key) {
			out.Result = corruptResult(res.Res)
			s.corrupted.Add(1)
		}
		if raw, err := json.Marshal(out.Result); err == nil {
			out.Digest = journal.Digest(raw)
		}
	}
	return out
}

// corruptResult returns a damaged copy of r — the original stays intact
// so the worker's own journal/cache keep the true bytes; only the wire
// response lies. The flip (one bit of an instruction counter) is small
// enough to pass every sanity check and survive only byte comparison.
func corruptResult(r *gcke.WorkloadResult) *gcke.WorkloadResult {
	cp := *r
	rr := *r.RunResult
	rr.Kernels = append([]stats.KernelResult(nil), r.RunResult.Kernels...)
	if len(rr.Kernels) > 0 {
		rr.Kernels[0].Instrs ^= 1
	} else {
		rr.Cycles ^= 1
	}
	cp.RunResult = &rr
	return &cp
}

// admit claims an admission slot, shedding when the adaptive in-flight
// limit is reached. The limit is the AIMD value — at most the old fixed
// Workers+QueueDepth bound (its ceiling, and the exact gate when
// TargetLatency is unset), shrinking toward 1 while attempts overrun
// the latency target.
func (s *Server) admit() bool {
	if s.queued.Add(1) > int64(s.aimd.Limit()) {
		s.queued.Add(-1)
		s.shedQueue.Add(1)
		return false
	}
	s.accepted.Add(1)
	return true
}

func (s *Server) release() { s.queued.Add(-1) }

// executeSlot runs one job through the retry loop on an execution slot.
// family keys the service-time estimator; deadlineAt, when non-zero, is
// the job's absolute deadline — re-checked here, at dequeue, so work
// that went stale while queued is dropped (ErrStale) before it burns
// the slot it just acquired.
func (s *Server) executeSlot(ctx context.Context, job runner.Job, key, family string, deadlineAt time.Time) (runner.Result, int) {
	enqueued := time.Now()
	select {
	case s.slots <- struct{}{}:
	case <-ctx.Done():
		return runner.Result{Key: key, Err: ctx.Err()}, 0
	}
	defer func() { <-s.slots }()
	s.waits.Observe(time.Since(enqueued))
	if !deadlineAt.IsZero() {
		now := time.Now()
		est, ok := s.est.Estimate(family)
		if now.After(deadlineAt) || (ok && now.Add(est).After(deadlineAt)) {
			s.shedDline.Add(1)
			return runner.Result{Key: key, Err: ErrStale}, 0
		}
	}
	return s.execute(ctx, job, key, family, deadlineAt)
}

// execute is the retry loop: run, classify, back off, re-run. Transient
// failures (recovered panic, per-attempt deadline) are retried up to
// MaxRetries times with deterministic per-fingerprint backoff jitter —
// each retry also spends a retry-budget token, so aggregate retries stay
// a bounded fraction of fresh traffic even when everything is failing.
// Everything else — cancellation, validation, invariant violations,
// journal write errors — returns immediately. Invariant violations are
// additionally scored against the fingerprint's circuit breaker.
func (s *Server) execute(ctx context.Context, job runner.Job, key, family string, deadlineAt time.Time) (runner.Result, int) {
	attempts := 0
	var last runner.Result
	for {
		// Gate every attempt on the context, not just the backoff select:
		// a cancellation (SIGTERM drain, request-level deadline, client
		// gone) that lands between the backoff timer firing and the next
		// attempt starting must not buy the job one more execution.
		if err := ctx.Err(); err != nil {
			if attempts == 0 {
				return runner.Result{Key: key, Err: err}, 0
			}
			s.failed.Add(1)
			return last, attempts
		}
		attempts++
		start := time.Now()
		var m0 runtime.MemStats
		runtime.ReadMemStats(&m0)
		res := s.run.Run(ctx, []runner.Job{job})[0]
		if res.Err == nil {
			d := time.Since(start)
			if !res.Replayed {
				// Engine-performance gauges: concurrent jobs share the
				// process heap, so allocs/cycle is an aggregate
				// service-level signal, not a per-job microbenchmark.
				var m1 runtime.MemStats
				runtime.ReadMemStats(&m1)
				s.simCycles.Add(job.Cycles)
				s.simNanos.Add(d.Nanoseconds())
				s.simAllocs.Add(int64(m1.Mallocs - m0.Mallocs))
				// Clamp EWMA/estimator samples to the per-attempt timeout:
				// an attempt that straggled past its timeout before
				// succeeding can never have cost the server more slot-time
				// than the timeout, so letting the raw duration through
				// would inflate Retry-After (toward its 1m cap) and
				// deadline estimates for everyone after it.
				clamped := d
				if s.cfg.JobTimeout > 0 && clamped > s.cfg.JobTimeout {
					clamped = s.cfg.JobTimeout
				}
				s.observeLatency(clamped)
				s.aimd.Observe(d)
				if family != "" {
					s.est.Observe(family, clamped)
				}
			}
			s.brk.success(key)
			if !deadlineAt.IsZero() && time.Now().After(deadlineAt) {
				// Finished, but past the deadline: the client stopped
				// caring, so this is overload debt, not goodput.
				s.dlineLate.Add(1)
				s.failed.Add(1)
				return runner.Result{Key: key, Err: ErrDeadlineMiss}, attempts
			}
			s.budget.Earn()
			s.completed.Add(1)
			return res, attempts
		}
		if errors.Is(res.Err, context.DeadlineExceeded) {
			// A timed-out attempt is the strongest slow-latency signal the
			// AIMD can get; successful-only sampling would go blind right
			// when the server tips over.
			s.aimd.Observe(time.Since(start))
		}
		last = res
		var ie *sm.InvariantError
		if errors.As(res.Err, &ie) {
			s.brk.failure(key)
		}
		if !runner.IsTransient(res.Err) || attempts > s.cfg.MaxRetries {
			s.failed.Add(1)
			return res, attempts
		}
		if !s.budget.Spend() {
			s.shedRetry.Add(1)
			s.failed.Add(1)
			return res, attempts
		}
		s.retries.Add(1)
		t := time.NewTimer(s.cfg.Retry.Delay(key, attempts))
		select {
		case <-ctx.Done():
			t.Stop()
			s.failed.Add(1)
			return res, attempts
		case <-t.C:
		}
	}
}

// observeLatency folds one successful attempt's wall-clock into the
// latency EWMA (alpha 0.2, CAS loop — samples from concurrent slots
// never block each other).
func (s *Server) observeLatency(d time.Duration) {
	for {
		old := s.latEWMA.Load()
		ewma := d.Nanoseconds()
		if old > 0 {
			ewma = old + (d.Nanoseconds()-old)/5
		}
		if s.latEWMA.CompareAndSwap(old, ewma) {
			return
		}
	}
}

// retryAfterHint derives the Retry-After for queue sheds from current
// load: with q requests in the building and Workers slots draining at
// one job per EWMA latency, the queue turns over in about q*EWMA/Workers
// — a client that waits that long meets a queue with room, instead of
// hammering a fixed 1s hint into repeated 429s. Config.RetryAfter is the
// floor (and the whole answer until the first sample); the hint is
// capped at a minute so a latency spike cannot park clients forever.
func (s *Server) retryAfterHint() time.Duration {
	ewma := s.latEWMA.Load()
	if ewma <= 0 {
		return s.cfg.RetryAfter
	}
	est := time.Duration(ewma * s.queued.Load() / int64(s.cfg.Workers))
	if est < s.cfg.RetryAfter {
		est = s.cfg.RetryAfter
	}
	if est > time.Minute {
		est = time.Minute
	}
	return est
}

// shed writes a 429 with a Retry-After hint.
func (s *Server) shed(w http.ResponseWriter, retryAfter time.Duration, reason string) {
	secs := int(retryAfter.Round(time.Second) / time.Second)
	if secs < 1 {
		secs = 1
	}
	w.Header().Set("Retry-After", fmt.Sprint(secs))
	writeJSON(w, http.StatusTooManyRequests, map[string]string{"error": reason})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

// statusOf maps a failed result to its HTTP status.
func statusOf(err error) int {
	switch {
	case errors.Is(err, ErrDeadlineMiss):
		return http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		return http.StatusServiceUnavailable // drain or client gone
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	default:
		return http.StatusInternalServerError
	}
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeJSON(w, http.StatusMethodNotAllowed, map[string]string{"error": "POST only"})
		return
	}
	if s.drainng.Load() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"error": "draining"})
		return
	}
	var req JobRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": "decoding job: " + err.Error()})
		return
	}
	job, key, limits, err := req.Build()
	if err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": err.Error()})
		return
	}
	family := req.Family()
	// fresh=1 is the audit seam: bypass the cache and journal (read AND
	// write) and re-simulate from scratch, so a coordinator can obtain a
	// result that shares no storage with the one it is auditing.
	fresh := r.URL.Query().Get("fresh") == "1"
	job.Fresh = fresh
	// Cache-aware admission: a fingerprint already in the result cache
	// costs no simulation, so it is served ahead of the breaker and the
	// admission queue — repeated identical jobs cannot be shed by load.
	if s.cfg.Cache != nil && !fresh {
		if raw, ok := s.cfg.Cache.Get(key); ok {
			var wres gcke.WorkloadResult
			if err := json.Unmarshal(raw, &wres); err == nil {
				s.completed.Add(1)
				res := runner.Result{Key: key, Res: &wres, Cached: true}
				writeJSON(w, http.StatusOK, s.response(0, res, 0, r.URL.Query().Get("full") == "1"))
				return
			}
		}
	}
	if ok, wait := s.brk.allow(key); !ok {
		s.shedBrk.Add(1)
		s.shed(w, wait, "circuit open for "+key+": repeated invariant violations")
		return
	}
	// Deadline-aware admission: before taking a queue slot, price the
	// job — current queue turns over in about queued*estimate/Workers,
	// then the job itself runs for about one estimate. If that already
	// overruns the client's deadline, admitting it only converts a cheap
	// arrival-time 429 into an expensive post-simulation 504.
	var deadlineAt time.Time
	if limits.Deadline > 0 {
		deadlineAt = time.Now().Add(limits.Deadline)
		if est, ok := s.est.Estimate(family); ok {
			wait := time.Duration(s.queued.Load() * est.Nanoseconds() / int64(s.cfg.Workers))
			if wait+est > limits.Deadline {
				s.shedDline.Add(1)
				s.shed(w, s.retryAfterHint(), "deadline unmeetable at current load")
				return
			}
		}
	}
	if !s.admit() {
		s.shed(w, s.retryAfterHint(), "admission queue full")
		return
	}
	defer s.release()

	ctx := r.Context()
	if limits.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, limits.Timeout)
		defer cancel()
	}
	if !deadlineAt.IsZero() {
		// Running past the deadline is pure waste — cap the whole retry
		// loop at it, so a deadline-missing attempt is cancelled instead
		// of finishing a result nobody will accept.
		var cancel context.CancelFunc
		ctx, cancel = context.WithDeadline(ctx, deadlineAt)
		defer cancel()
	}
	res, attempts := s.executeSlot(ctx, job, key, family, deadlineAt)
	if errors.Is(res.Err, ErrStale) {
		s.shed(w, s.retryAfterHint(), "deadline overrun while queued")
		return
	}
	full := r.URL.Query().Get("full") == "1"
	resp := s.response(0, res, attempts, full)
	if res.Err != nil {
		writeJSON(w, statusOf(res.Err), resp)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleSweep accepts a JSON array of jobs and streams one NDJSON
// JobResponse line per job, in submission order, as results become
// available. The sweep holds one admission slot; its points share the
// server's execution slots and each point goes through the same
// breaker/retry path as a single job.
func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeJSON(w, http.StatusMethodNotAllowed, map[string]string{"error": "POST only"})
		return
	}
	if s.drainng.Load() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"error": "draining"})
		return
	}
	var reqs []JobRequest
	if err := json.NewDecoder(r.Body).Decode(&reqs); err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": "decoding sweep: " + err.Error()})
		return
	}
	if len(reqs) == 0 {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": "empty sweep"})
		return
	}
	jobs := make([]runner.Job, len(reqs))
	keys := make([]string, len(reqs))
	fams := make([]string, len(reqs))
	for i := range reqs {
		job, key, _, err := reqs[i].Build()
		if err != nil {
			writeJSON(w, http.StatusBadRequest,
				map[string]string{"error": fmt.Sprintf("job %d: %v", i, err)})
			return
		}
		jobs[i], keys[i], fams[i] = job, key, reqs[i].Family()
	}
	if !s.admit() {
		s.shed(w, s.retryAfterHint(), "admission queue full")
		return
	}
	defer s.release()

	ctx := r.Context()
	full := r.URL.Query().Get("full") == "1"
	out := make([]JobResponse, len(jobs))
	done := make([]chan struct{}, len(jobs))
	for i := range done {
		done[i] = make(chan struct{})
	}
	go func() {
		runner.Map(ctx, s.cfg.Workers, len(jobs), func(i int) {
			if ok, wait := s.brk.allow(keys[i]); !ok {
				s.shedBrk.Add(1)
				out[i] = JobResponse{Key: keys[i], Index: i,
					Error: fmt.Sprintf("circuit open: retry after %s", wait.Round(time.Second))}
			} else {
				res, attempts := s.executeSlot(ctx, jobs[i], keys[i], fams[i], time.Time{})
				out[i] = s.response(i, res, attempts, full)
			}
			close(done[i])
		})
		// Points never dispatched (cancelled feeder): attribute the
		// cancellation. Map has returned, so no concurrent writers.
		for i := range done {
			select {
			case <-done[i]:
			default:
				out[i] = JobResponse{Key: keys[i], Index: i, Error: context.Cause(ctx).Error()}
				close(done[i])
			}
		}
	}()

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	for i := range done {
		<-done[i]
		enc.Encode(out[i])
		if flusher != nil {
			flusher.Flush()
		}
	}
}

// handleHealthz is liveness: 200 while the process serves at all —
// chaos faults, open circuits and shed load do not make it red.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.WriteHeader(http.StatusOK)
	fmt.Fprintln(w, "ok")
}

// handleReadyz is readiness: red while draining or while the admission
// queue is saturated, so a load balancer stops routing before requests
// start bouncing off 429s.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	switch {
	case s.drainng.Load():
		http.Error(w, "draining", http.StatusServiceUnavailable)
	case s.queued.Load() >= int64(s.aimd.Limit()):
		// The adaptive limit is the real admission gate, so readiness
		// tracks it — a load balancer stops routing when the server has
		// shrunk itself, not only when the hard ceiling is hit.
		http.Error(w, "saturated", http.StatusServiceUnavailable)
	default:
		fmt.Fprintln(w, "ready")
	}
}

// JournalEntry is one /journalz NDJSON line: a checkpointed job
// fingerprint and its raw result — the same (key, val) pair the journal
// stores on disk, so a coordinator unioning worker journals sees exactly
// what a local resume would.
type JournalEntry struct {
	Key string          `json:"key"`
	Val json.RawMessage `json:"val"`
	// Sha is the hex sha256 of Val as recorded at append time ("" for
	// entries that predate digests). The coordinator verifies Val
	// against it before adopting the entry on fleet resume.
	Sha string `json:"sha,omitempty"`
}

// handleJournalz streams the worker's checkpoint journal as NDJSON, one
// JournalEntry per line in sorted key order. It is the fleet-resume
// export: a restarted coordinator asks every reachable worker what it
// already completed instead of re-dispatching the whole grid.
func (s *Server) handleJournalz(w http.ResponseWriter, r *http.Request) {
	if s.cfg.Journal == nil {
		writeJSON(w, http.StatusNotFound, map[string]string{"error": "no journal configured"})
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	enc := json.NewEncoder(w)
	s.cfg.Journal.EachEntry(func(key string, raw json.RawMessage, sha string) error {
		return enc.Encode(JournalEntry{Key: key, Val: raw, Sha: sha})
	})
}

// Stats is the /statz snapshot.
type Stats struct {
	Accepted    int64 `json:"accepted"`
	ShedQueue   int64 `json:"shed_queue"`
	ShedBreaker int64 `json:"shed_breaker"`
	// ShedDeadline counts jobs shed because their deadline was already
	// unmeetable — at arrival (queue-wait + estimate > budget) or at
	// dequeue (went stale while queued).
	ShedDeadline int64 `json:"shed_deadline"`
	// ShedRetryBudget counts retries denied by the exhausted budget (the
	// job fails with its last error instead of amplifying load).
	ShedRetryBudget int64 `json:"shed_retry_budget"`
	// DeadlineLate counts simulations that finished past their deadline
	// and were returned as 504 instead of success.
	DeadlineLate int64 `json:"deadline_late,omitempty"`
	Retries      int64 `json:"retries"`
	Completed    int64 `json:"completed"`
	Failed       int64 `json:"failed"`
	Queued       int64 `json:"queued"`
	// InflightLimit is the current adaptive admission limit (AIMD;
	// equals Workers+QueueDepth when TargetLatency is unset).
	InflightLimit int `json:"inflight_limit"`
	// RetryBudgetTokens is the retry bucket's current balance.
	RetryBudgetTokens float64 `json:"retry_budget_tokens"`
	// QueueWaitP50/95/99Ms are percentiles of recent queue waits
	// (admission to engine-slot acquisition) over a 1024-sample ring.
	QueueWaitP50Ms float64 `json:"queue_wait_ms_p50"`
	QueueWaitP95Ms float64 `json:"queue_wait_ms_p95"`
	QueueWaitP99Ms float64 `json:"queue_wait_ms_p99"`
	BreakerOpen    int     `json:"breaker_open"`
	// Breakers is the per-fingerprint circuit state (every fingerprint
	// with failure history): open/half-open/accumulating, violation
	// count, and remaining cooldown — the per-job view fleet health is
	// debugged from.
	Breakers []BreakerInfo `json:"breakers,omitempty"`
	Draining bool          `json:"draining"`
	// Worker reports fleet-worker mode (/journalz exposed).
	Worker     bool `json:"worker,omitempty"`
	JournalLen int  `json:"journal_len,omitempty"`
	// LatencyEWMAMs is the moving average of successful attempt
	// latencies; with Queued it derives the load-proportional
	// Retry-After hint (RetryAfterHintMs) queue sheds report.
	LatencyEWMAMs    float64 `json:"latency_ewma_ms,omitempty"`
	RetryAfterHintMs int64   `json:"retry_after_hint_ms"`
	// EngineWorkers is the resolved per-job SM-tick fan-out;
	// EnginePartWorkers the resolved memory-partition fan-out.
	EngineWorkers     int `json:"engine_workers"`
	EnginePartWorkers int `json:"engine_part_workers"`
	// Phase is the process-wide per-phase engine time breakdown,
	// present only when Config.PhaseTrace is on.
	Phase *gpu.PhaseStats `json:"phase_ns,omitempty"`
	// CyclesPerSec and AllocsPerCycle aggregate over executed
	// (non-replayed) successful jobs since the server started.
	CyclesPerSec   float64 `json:"cycles_per_sec"`
	AllocsPerCycle float64 `json:"allocs_per_cycle"`
	// Result-cache gauges (zero when no cache is configured): hit/miss
	// counters, failed persistence writes (the cache degrades to
	// pass-through), checksum-corrupt entries demoted to misses, and the
	// number of fingerprints indexed.
	CacheHits      int64 `json:"cache_hits"`
	CacheMisses    int64 `json:"cache_misses"`
	CachePutErrors int64 `json:"cache_put_errors,omitempty"`
	CacheCorrupt   int64 `json:"cache_corrupt,omitempty"`
	CacheLen       int   `json:"cache_len,omitempty"`
	// Warmup-fork gauges: how many runs forked from a warmed engine
	// snapshot instead of re-simulating their warmup prefix, and the
	// bytes held in cached snapshots.
	ForksTaken    int64 `json:"forks_taken"`
	SnapshotBytes int64 `json:"snapshot_bytes"`
	// Mid-job checkpoint gauges (zero when no checkpoint store is
	// configured): checkpoints persisted, checkpoint files rejected by
	// the load-time digest, jobs resumed from a checkpoint, and the sum
	// of cycles those resumes skipped re-simulating.
	CkptSaves         int64 `json:"ckpt_saves,omitempty"`
	CkptCorrupt       int64 `json:"ckpt_corrupt,omitempty"`
	CkptResumes       int64 `json:"ckpt_resumes,omitempty"`
	CkptResumedCycles int64 `json:"ckpt_resumed_cycles,omitempty"`
	// Corrupted counts chaos-damaged responses sent (dev/test only).
	Corrupted int64 `json:"corrupted,omitempty"`
}

// StatsSnapshot returns current counters (also served at /statz).
func (s *Server) StatsSnapshot() Stats {
	st := Stats{
		Accepted:        s.accepted.Load(),
		ShedQueue:       s.shedQueue.Load(),
		ShedBreaker:     s.shedBrk.Load(),
		ShedDeadline:    s.shedDline.Load(),
		ShedRetryBudget: s.shedRetry.Load(),
		DeadlineLate:    s.dlineLate.Load(),
		Retries:         s.retries.Load(),
		Completed:       s.completed.Load(),
		Failed:          s.failed.Load(),
		Queued:          s.queued.Load(),
		BreakerOpen:     s.brk.openCount(),
		Breakers:        s.brk.snapshot(),
		Draining:        s.drainng.Load(),
		Worker:          s.cfg.Worker,

		InflightLimit:     s.aimd.Limit(),
		RetryBudgetTokens: s.budget.Tokens(),
		QueueWaitP50Ms:    float64(s.waits.Percentile(0.50)) / 1e6,
		QueueWaitP95Ms:    float64(s.waits.Percentile(0.95)) / 1e6,
		QueueWaitP99Ms:    float64(s.waits.Percentile(0.99)) / 1e6,

		EngineWorkers:     s.cfg.EngineWorkers,
		EnginePartWorkers: s.cfg.EnginePartWorkers,
		LatencyEWMAMs:     float64(s.latEWMA.Load()) / 1e6,
		RetryAfterHintMs:  s.retryAfterHint().Milliseconds(),
	}
	if s.cfg.PhaseTrace {
		t := gpu.PhaseTotals()
		st.Phase = &t
	}
	if ns := s.simNanos.Load(); ns > 0 {
		st.CyclesPerSec = float64(s.simCycles.Load()) / (float64(ns) / 1e9)
	}
	if cyc := s.simCycles.Load(); cyc > 0 {
		st.AllocsPerCycle = float64(s.simAllocs.Load()) / float64(cyc)
	}
	if s.cfg.Journal != nil {
		st.JournalLen = s.cfg.Journal.Len()
	}
	if s.cfg.Cache != nil {
		cs := s.cfg.Cache.Stats()
		st.CacheHits = cs.Hits
		st.CacheMisses = cs.Misses
		st.CachePutErrors = cs.PutErrors
		st.CacheCorrupt = cs.Corrupt
		st.CacheLen = s.cfg.Cache.Len()
	}
	st.ForksTaken, st.SnapshotBytes = s.run.ForkStats()
	if s.cfg.Checkpoints != nil {
		ck := s.cfg.Checkpoints.Stats()
		st.CkptSaves = ck.Saves
		st.CkptCorrupt = ck.Corrupt
	}
	st.CkptResumes, st.CkptResumedCycles = s.run.CkptStats()
	st.Corrupted = s.corrupted.Load()
	return st
}

func (s *Server) handleStatz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.StatsSnapshot())
}
