package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	gcke "repro"
	"repro/internal/backoff"
	"repro/internal/chaos"
	"repro/internal/journal"
)

// smallJob returns a job request light enough for test runtimes; n
// varies the scheme's static limits so each n mints a distinct job
// fingerprint.
func smallJob(n int) JobRequest {
	return JobRequest{
		SMs:           2,
		Cycles:        8_000,
		ProfileCycles: 6_000,
		Kernels:       []string{"bp", "ks"},
		Scheme: gcke.Scheme{
			Partition:    gcke.PartitionEven,
			Limiting:     gcke.LimitStatic,
			StaticLimits: []int{n, n},
		},
	}
}

// fastRetry keeps test wall-clock negligible while still exercising the
// deterministic-jitter path.
func fastRetry() backoff.Policy {
	return backoff.Policy{Base: time.Millisecond, Cap: 5 * time.Millisecond, Factor: 2, Jitter: 0.5}
}

func postJob(t *testing.T, ts *httptest.Server, req JobRequest) (int, JobResponse) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := ts.Client().Post(ts.URL+"/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out JobResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("decoding response (status %d): %v", resp.StatusCode, err)
	}
	return resp.StatusCode, out
}

func getStatus(t *testing.T, ts *httptest.Server, path string) int {
	t.Helper()
	resp, err := ts.Client().Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	return resp.StatusCode
}

// TestChaosPanicRetrySucceeds: injected worker panic on the first
// attempt → backoff retry → success, with /healthz green throughout.
func TestChaosPanicRetrySucceeds(t *testing.T) {
	srv := New(Config{
		Workers: 2, Retry: fastRetry(), MaxRetries: 2,
		Chaos: chaos.New(chaos.Config{Seed: 5, PanicProb: 1, Failures: 1}),
	})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	status, out := postJob(t, ts, smallJob(4))
	if status != http.StatusOK {
		t.Fatalf("status %d, body %+v", status, out)
	}
	if out.Attempts != 2 {
		t.Fatalf("attempts = %d, want 2 (one injected panic, one retry)", out.Attempts)
	}
	if out.WeightedSpeedup <= 0 {
		t.Fatalf("no result after recovery: %+v", out)
	}
	if got := getStatus(t, ts, "/healthz"); got != http.StatusOK {
		t.Fatalf("healthz = %d during chaos, want 200", got)
	}
	st := srv.StatsSnapshot()
	if st.Retries != 1 || st.Completed != 1 {
		t.Fatalf("stats = %+v, want 1 retry, 1 completed", st)
	}
}

// TestChaosHangDeadlineKillRetry: injected hang → per-attempt deadline
// kills it (transient) → retry succeeds.
func TestChaosHangDeadlineKillRetry(t *testing.T) {
	srv := New(Config{
		Workers: 2, Retry: fastRetry(), MaxRetries: 2,
		// Generous enough that a real (race-detector-slowed) simulation
		// never trips it; only the injected infinite hang can.
		JobTimeout: 5 * time.Second,
		Chaos:      chaos.New(chaos.Config{Seed: 5, HangProb: 1, Hang: time.Hour, Failures: 1}),
	})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	status, out := postJob(t, ts, smallJob(8))
	if status != http.StatusOK {
		t.Fatalf("status %d, body %+v", status, out)
	}
	if out.Attempts != 2 {
		t.Fatalf("attempts = %d, want 2 (one deadline kill, one retry)", out.Attempts)
	}
}

// TestInvariantCircuitBreaker: repeated deterministic invariant
// violations for one fingerprint open its circuit; further submissions
// shed with 429 + Retry-After without executing; other fingerprints and
// liveness are unaffected.
func TestInvariantCircuitBreaker(t *testing.T) {
	inj := chaos.New(chaos.Config{Seed: 5, InvariantProb: 1, Failures: 1 << 30})
	srv := New(Config{
		Workers: 2, Retry: fastRetry(), MaxRetries: 2,
		BreakerThreshold: 2, BreakerCooldown: time.Hour,
		Chaos: inj,
	})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	for i := 0; i < 2; i++ {
		status, out := postJob(t, ts, smallJob(16))
		if status != http.StatusInternalServerError {
			t.Fatalf("submit %d: status %d, body %+v", i, status, out)
		}
		if out.Transient {
			t.Fatalf("submit %d: invariant violation classified transient", i)
		}
		if out.Attempts != 1 {
			t.Fatalf("submit %d: attempts = %d — invariant violations must not be retried", i, out.Attempts)
		}
	}
	// Threshold reached: the circuit is open, submissions shed.
	body, _ := json.Marshal(smallJob(16))
	resp, err := ts.Client().Post(ts.URL+"/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("post-trip status = %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 shed without Retry-After")
	}
	executed := inj.Counts()[chaos.KindInvariant]
	if executed != 2 {
		t.Fatalf("open circuit still executed the job: %d faults injected, want 2", executed)
	}
	if srv.StatsSnapshot().BreakerOpen != 1 {
		t.Fatalf("stats report %d open circuits, want 1", srv.StatsSnapshot().BreakerOpen)
	}
	// The circuit is per-fingerprint: a different job still executes
	// (and takes its own first violation, a 500 — not a 429 shed).
	if status, out := postJob(t, ts, smallJob(17)); status != http.StatusInternalServerError {
		t.Fatalf("unrelated fingerprint: status %d, body %+v — want it executed, not shed", status, out)
	}
	if got := inj.Counts()[chaos.KindInvariant]; got != executed+1 {
		t.Fatalf("unrelated fingerprint did not execute: %d faults, want %d", got, executed+1)
	}
	if got := getStatus(t, ts, "/healthz"); got != http.StatusOK {
		t.Fatalf("healthz = %d with an open circuit, want 200", got)
	}
}

// TestJournalFaultTypedAndConsistent: an injected journal write fault
// surfaces as a typed non-transient error with no index/file
// divergence; a resubmit (fault budget spent) journals durably.
func TestJournalFaultTypedAndConsistent(t *testing.T) {
	path := filepath.Join(t.TempDir(), "serve.journal")
	jnl, err := journal.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	srv := New(Config{
		Workers: 2, Retry: fastRetry(), MaxRetries: 2,
		Journal: jnl,
		Chaos:   chaos.New(chaos.Config{Seed: 5, JournalProb: 1, Failures: 1}),
	})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	status, out := postJob(t, ts, smallJob(32))
	if status != http.StatusInternalServerError {
		t.Fatalf("status %d, body %+v", status, out)
	}
	if !strings.Contains(out.Error, "journal") {
		t.Fatalf("error not attributed to the journal: %q", out.Error)
	}
	if out.Transient {
		t.Fatal("journal write fault classified transient (re-simulating does not fix the disk)")
	}
	if jnl.Has(out.Key) {
		t.Fatal("failed append left the key in the index")
	}
	if jnl.Len() != 0 {
		t.Fatalf("journal holds %d entries after a faulted write, want 0", jnl.Len())
	}

	// Resubmit: fault budget spent, so the append goes through.
	status, out2 := postJob(t, ts, smallJob(32))
	if status != http.StatusOK {
		t.Fatalf("resubmit: status %d, body %+v", status, out2)
	}
	if !jnl.Has(out2.Key) {
		t.Fatal("successful job not journaled")
	}
	// And a third submit replays from the journal without simulating.
	status, out3 := postJob(t, ts, smallJob(32))
	if status != http.StatusOK || !out3.Replayed {
		t.Fatalf("third submit: status %d replayed=%v, want journal replay", status, out3.Replayed)
	}
	if out3.WeightedSpeedup != out2.WeightedSpeedup {
		t.Fatalf("replayed WS %v != simulated WS %v", out3.WeightedSpeedup, out2.WeightedSpeedup)
	}
}

// TestAdmissionQueueSheds: once Workers+QueueDepth requests are in the
// building, the next one bounces with 429 + Retry-After and /readyz
// goes red, while /healthz stays green.
func TestAdmissionQueueSheds(t *testing.T) {
	// Jobs hang forever (budget unlimited) so the building stays full.
	srv := New(Config{
		Workers: 1, QueueDepth: 1, Retry: fastRetry(), MaxRetries: 0,
		JobTimeout: time.Hour,
		Chaos:      chaos.New(chaos.Config{Seed: 5, HangProb: 1, Hang: time.Hour, Failures: 1 << 30}),
	})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(n int) {
			defer wg.Done()
			body, _ := json.Marshal(smallJob(100 + n))
			req, _ := http.NewRequestWithContext(ctx, http.MethodPost,
				ts.URL+"/jobs", bytes.NewReader(body))
			resp, err := ts.Client().Do(req)
			if err == nil {
				resp.Body.Close()
			}
		}(i)
	}
	// Wait until both requests are admitted (1 executing + 1 queued).
	deadline := time.Now().Add(5 * time.Second)
	for srv.StatsSnapshot().Queued < 2 {
		if time.Now().After(deadline) {
			t.Fatalf("admission never filled: %+v", srv.StatsSnapshot())
		}
		time.Sleep(2 * time.Millisecond)
	}

	body, _ := json.Marshal(smallJob(200))
	resp, err := ts.Client().Post(ts.URL+"/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("shed without Retry-After")
	}
	if got := getStatus(t, ts, "/readyz"); got != http.StatusServiceUnavailable {
		t.Fatalf("readyz = %d while saturated, want 503", got)
	}
	if got := getStatus(t, ts, "/healthz"); got != http.StatusOK {
		t.Fatalf("healthz = %d while saturated, want 200", got)
	}
	cancel() // release the hung requests
	wg.Wait()
}

// TestDrainFinishesInFlightAndJournal: SIGTERM-style drain refuses new
// work, completes the in-flight job, and leaves a journal a fresh
// process resumes byte-identically.
func TestDrainFinishesInFlightAndJournal(t *testing.T) {
	path := filepath.Join(t.TempDir(), "drain.journal")
	jnl, err := journal.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	srv := New(Config{Workers: 2, Retry: fastRetry(), Journal: jnl})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	type jobOut struct {
		status int
		out    JobResponse
	}
	ch := make(chan jobOut, 1)
	go func() {
		status, out := postJob(t, ts, smallJob(64))
		ch <- jobOut{status, out}
	}()
	// Wait for the job to be admitted, then drain mid-flight.
	deadline := time.Now().Add(5 * time.Second)
	for srv.StatsSnapshot().Queued < 1 {
		if time.Now().After(deadline) {
			t.Fatal("job never admitted")
		}
		time.Sleep(time.Millisecond)
	}
	drainCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := srv.Drain(drainCtx); err != nil {
		t.Fatalf("drain: %v", err)
	}

	got := <-ch
	if got.status != http.StatusOK {
		t.Fatalf("in-flight job during drain: status %d, body %+v", got.status, got.out)
	}
	if got.out.WeightedSpeedup <= 0 {
		t.Fatalf("drained job has no result: %+v", got.out)
	}
	// New work is refused after drain.
	body, _ := json.Marshal(smallJob(65))
	resp, err := ts.Client().Post(ts.URL+"/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("post-drain submit: status %d, want 503", resp.StatusCode)
	}
	if getStatus(t, ts, "/readyz") != http.StatusServiceUnavailable {
		t.Fatal("readyz green after drain")
	}
	if getStatus(t, ts, "/healthz") != http.StatusOK {
		t.Fatal("healthz red after drain (process is still alive)")
	}
	// The journal was flushed and closed: appends fail, and a fresh
	// process replays the drained job's result byte-identically.
	if err := jnl.Append("x", 1); err == nil {
		t.Fatal("journal still open after drain")
	}
	j2, err := journal.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if !j2.Has(got.out.Key) {
		t.Fatal("drained job missing from the reopened journal")
	}
	var replayed gcke.WorkloadResult
	if ok, err := j2.Lookup(got.out.Key, &replayed); !ok || err != nil {
		t.Fatalf("lookup drained result: ok=%v err=%v", ok, err)
	}
	if ws := replayed.WeightedSpeedup(); ws != got.out.WeightedSpeedup {
		t.Fatalf("resumed WS %v != served WS %v", ws, got.out.WeightedSpeedup)
	}
}

// TestSweepStreamsInOrder: /sweep streams one NDJSON line per point in
// submission order, surviving a mid-sweep injected panic via retry.
func TestSweepStreamsInOrder(t *testing.T) {
	srv := New(Config{
		Workers: 4, Retry: fastRetry(), MaxRetries: 2,
		Chaos: chaos.New(chaos.Config{Seed: 5, PanicProb: 0.5, Failures: 1}),
	})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	reqs := []JobRequest{smallJob(2), smallJob(4), smallJob(8), smallJob(16)}
	body, _ := json.Marshal(reqs)
	resp, err := ts.Client().Post(ts.URL+"/sweep", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	sc := bufio.NewScanner(resp.Body)
	var lines []JobResponse
	for sc.Scan() {
		var out JobResponse
		if err := json.Unmarshal(sc.Bytes(), &out); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		lines = append(lines, out)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(lines) != len(reqs) {
		t.Fatalf("got %d lines, want %d", len(lines), len(reqs))
	}
	for i, out := range lines {
		if out.Index != i {
			t.Fatalf("line %d has index %d: stream out of submission order", i, out.Index)
		}
		if out.Error != "" {
			t.Fatalf("point %d failed despite retry budget: %+v", i, out)
		}
		if out.WeightedSpeedup <= 0 {
			t.Fatalf("point %d has no result: %+v", i, out)
		}
	}
	// Deterministic engine: the same sweep resubmitted (chaos budgets
	// spent) returns identical metrics.
	resp2, err := ts.Client().Post(ts.URL+"/sweep", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	sc2 := bufio.NewScanner(resp2.Body)
	for i := 0; sc2.Scan(); i++ {
		var out JobResponse
		if err := json.Unmarshal(sc2.Bytes(), &out); err != nil {
			t.Fatal(err)
		}
		if out.WeightedSpeedup != lines[i].WeightedSpeedup {
			t.Fatalf("point %d: WS %v on rerun, want %v", i, out.WeightedSpeedup, lines[i].WeightedSpeedup)
		}
	}
}

// TestBadRequests: malformed submissions fail fast with 400 and never
// reach the pool.
func TestBadRequests(t *testing.T) {
	srv := New(Config{Workers: 1})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	cases := []string{
		`{`, // broken JSON
		`{"cycles":0,"kernels":["bp"]}`,
		`{"cycles":1000,"kernels":[]}`,
		`{"cycles":1000,"kernels":["nope"]}`,
		`{"cycles":1000,"kernels":["bp","ks"],"scheme":{"Limiting":1}}`, // SMIL without limits
		`{"cycles":1000,"kernels":["bp"],"timeout":"banana"}`,
	}
	for _, body := range cases {
		resp, err := ts.Client().Post(ts.URL+"/jobs", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("body %s: status %d, want 400", body, resp.StatusCode)
		}
	}
	if n := srv.StatsSnapshot().Accepted; n != 0 {
		t.Fatalf("%d bad requests were admitted", n)
	}
	resp, err := ts.Client().Get(ts.URL + "/jobs")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /jobs: status %d, want 405", resp.StatusCode)
	}
}

// TestRequestTimeoutLayered: a request-level timeout bounds the whole
// retry loop even when each attempt would pass the per-attempt deadline.
func TestRequestTimeoutLayered(t *testing.T) {
	srv := New(Config{
		Workers: 1, Retry: fastRetry(), MaxRetries: 10,
		Chaos: chaos.New(chaos.Config{Seed: 5, HangProb: 1, Hang: time.Hour, Failures: 1 << 30}),
	})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	req := smallJob(7)
	req.Timeout = "200ms"
	start := time.Now()
	status, out := postJob(t, ts, req)
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("request-level timeout did not bound the retry loop (%v)", elapsed)
	}
	if status != http.StatusGatewayTimeout {
		t.Fatalf("status = %d (body %+v), want 504", status, out)
	}
	if !out.Transient {
		t.Fatal("deadline expiry not classified transient")
	}
}

// TestFullResult: ?full=1 includes the complete workload result.
func TestFullResult(t *testing.T) {
	srv := New(Config{Workers: 1})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	body, _ := json.Marshal(smallJob(3))
	resp, err := ts.Client().Post(ts.URL+"/jobs?full=1", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out JobResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.Result == nil {
		t.Fatal("full=1 response missing result")
	}
	if got := out.Result.WeightedSpeedup(); got != out.WeightedSpeedup {
		t.Fatalf("embedded result WS %v != summary WS %v", got, out.WeightedSpeedup)
	}
	if fmt.Sprint(out.Result.Scheme.StaticLimits) != "[3 3]" {
		t.Fatalf("scheme did not round-trip: %+v", out.Result.Scheme)
	}
}
