package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"sync/atomic"
	"testing"
	"time"

	gcke "repro"
	"repro/internal/backoff"
	"repro/internal/chaos"
	"repro/internal/journal"
)

// TestRetryCancelRace pins the fix for the drain/timeout retry race: a
// cancellation that lands while an attempt is in flight (or while the
// backoff timer is firing) must not buy the job one more attempt. The
// fault hook cancels the request context from inside attempt 1 and then
// panics (a transient failure); with a near-zero backoff the old loop
// could race the expired timer past the cancelled context into attempt
// 2. Run with -race: the assertion is attempts == 1, every time.
func TestRetryCancelRace(t *testing.T) {
	for i := 0; i < 20; i++ {
		srv := New(Config{
			Workers: 1, MaxRetries: 10,
			Retry: backoff.Policy{Base: time.Nanosecond, Cap: time.Nanosecond, Factor: 1},
		})
		ctx, cancel := context.WithCancel(context.Background())
		var calls atomic.Int64
		srv.run.Fault = func(fctx context.Context, index int, key string) error {
			calls.Add(1)
			cancel() // the drain/deadline fires mid-attempt
			panic("transient failure after cancellation")
		}
		req := smallJob(5)
		job, key, _, err := req.Build()
		if err != nil {
			t.Fatal(err)
		}
		res, attempts := srv.execute(ctx, job, key, req.Family(), time.Time{})
		if res.Err == nil {
			t.Fatal("cancelled retry loop reported success")
		}
		if attempts != 1 {
			t.Fatalf("iteration %d: %d attempts after cancellation, want exactly 1", i, attempts)
		}
		if got := calls.Load(); got != 1 {
			t.Fatalf("iteration %d: job executed %d times after cancellation, want 1", i, got)
		}
		cancel()
	}
}

// TestJournalzDumpsWorkerJournal: in worker mode, /journalz streams the
// checkpoint journal as NDJSON (key + raw result) so a coordinator can
// union worker state; without a journal it 404s, and outside worker
// mode the route does not exist.
func TestJournalzDumpsWorkerJournal(t *testing.T) {
	jnl, err := journal.Open(filepath.Join(t.TempDir(), "worker.ckpt"))
	if err != nil {
		t.Fatal(err)
	}
	srv := New(Config{Workers: 1, Journal: jnl, Worker: true})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	status, out := postJob(t, ts, smallJob(9))
	if status != http.StatusOK {
		t.Fatalf("job failed: %d %+v", status, out)
	}
	resp, err := ts.Client().Get(ts.URL + "/journalz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("journalz status = %d", resp.StatusCode)
	}
	var entries []JournalEntry
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<26)
	for sc.Scan() {
		var e JournalEntry
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			t.Fatalf("bad journalz line %q: %v", sc.Text(), err)
		}
		entries = append(entries, e)
	}
	if len(entries) != 1 || entries[0].Key != out.Key {
		t.Fatalf("journalz entries = %+v, want the one completed key %s", entries, out.Key)
	}
	var res gcke.WorkloadResult
	if err := json.Unmarshal(entries[0].Val, &res); err != nil {
		t.Fatalf("journalz value does not decode: %v", err)
	}
	if ws := res.WeightedSpeedup(); ws != out.WeightedSpeedup {
		t.Fatalf("journalz WS %v != served WS %v", ws, out.WeightedSpeedup)
	}

	// No journal → 404 (worker mode without checkpointing has nothing to
	// dump); non-worker mode → route absent.
	nojnl := New(Config{Workers: 1, Worker: true})
	ts2 := httptest.NewServer(nojnl.Handler())
	defer ts2.Close()
	if got := getStatus(t, ts2, "/journalz"); got != http.StatusNotFound {
		t.Fatalf("journalz without journal = %d, want 404", got)
	}
	plain := New(Config{Workers: 1, Journal: jnl})
	ts3 := httptest.NewServer(plain.Handler())
	defer ts3.Close()
	if got := getStatus(t, ts3, "/journalz"); got == http.StatusOK {
		t.Fatal("non-worker server exposes /journalz")
	}
}

// TestStatzPerFingerprintBreakers: /statz reports each unhealthy
// fingerprint's circuit state — accumulating below threshold, open with
// remaining cooldown at threshold, half-open once the cooldown elapses.
func TestStatzPerFingerprintBreakers(t *testing.T) {
	inj := chaos.New(chaos.Config{Seed: 5, InvariantProb: 1, Failures: 1 << 30})
	srv := New(Config{
		Workers: 2, Retry: fastRetry(), MaxRetries: 2,
		BreakerThreshold: 2, BreakerCooldown: time.Hour,
		Chaos: inj,
	})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// One violation: accumulating, not open.
	if status, _ := postJob(t, ts, smallJob(21)); status != http.StatusInternalServerError {
		t.Fatalf("status = %d", status)
	}
	st := srv.StatsSnapshot()
	if len(st.Breakers) != 1 {
		t.Fatalf("breakers = %+v, want 1 tracked fingerprint", st.Breakers)
	}
	if b := st.Breakers[0]; b.State != "accumulating" || b.Fails != 1 || b.CooldownMs != 0 {
		t.Fatalf("after 1 violation: %+v", b)
	}

	// Second violation: open, cooldown counting down.
	if status, _ := postJob(t, ts, smallJob(21)); status != http.StatusInternalServerError {
		t.Fatalf("status = %d", status)
	}
	st = srv.StatsSnapshot()
	if b := st.Breakers[0]; b.State != "open" || b.Fails != 2 || b.CooldownMs <= 0 {
		t.Fatalf("after threshold: %+v", b)
	}
	if st.BreakerOpen != 1 {
		t.Fatalf("BreakerOpen = %d", st.BreakerOpen)
	}

	// Cooldown elapsed (clock injected): half-open, probe allowed next.
	srv.brk.now = func() time.Time { return time.Now().Add(2 * time.Hour) }
	st = srv.StatsSnapshot()
	if b := st.Breakers[0]; b.State != "half-open" || b.CooldownMs != 0 {
		t.Fatalf("after cooldown: %+v", b)
	}
	// The statz JSON carries the list end-to-end.
	resp, err := ts.Client().Get(ts.URL + "/statz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var wire Stats
	if err := json.NewDecoder(resp.Body).Decode(&wire); err != nil {
		t.Fatal(err)
	}
	if len(wire.Breakers) != 1 || wire.Breakers[0].State != "half-open" {
		t.Fatalf("wire breakers = %+v", wire.Breakers)
	}
}

// TestRetryAfterLoadProportional: the Retry-After hint scales with queue
// depth times the latency EWMA, floored at Config.RetryAfter and capped
// at a minute — and the header on a real queue shed reflects it.
func TestRetryAfterLoadProportional(t *testing.T) {
	srv := New(Config{Workers: 2, QueueDepth: 1, RetryAfter: time.Second})
	if got := srv.retryAfterHint(); got != time.Second {
		t.Fatalf("no samples: hint = %v, want the 1s floor", got)
	}
	srv.latEWMA.Store(int64(2 * time.Second))
	srv.queued.Store(6)
	if got := srv.retryAfterHint(); got != 6*time.Second {
		t.Fatalf("hint = %v, want 6s (6 queued x 2s EWMA / 2 workers)", got)
	}
	srv.queued.Store(1)
	if got := srv.retryAfterHint(); got != time.Second {
		t.Fatalf("light load: hint = %v, want the 1s floor", got)
	}
	srv.latEWMA.Store(int64(time.Hour))
	srv.queued.Store(100)
	if got := srv.retryAfterHint(); got != time.Minute {
		t.Fatalf("overload: hint = %v, want the 1m cap", got)
	}

	// End-to-end: saturate a hang-chaos server whose EWMA is primed and
	// check the shed's Retry-After header carries the derived hint.
	// Workers=1 with the defaulted queue depth (2x workers) admits three
	// requests; the fourth is shed.
	hang := New(Config{
		Workers: 1, Retry: fastRetry(), MaxRetries: 0,
		RetryAfter: time.Second, JobTimeout: time.Hour,
		Chaos: chaos.New(chaos.Config{Seed: 5, HangProb: 1, Hang: time.Hour, Failures: 1 << 30}),
	})
	hang.latEWMA.Store(int64(10 * time.Second))
	ts := httptest.NewServer(hang.Handler())
	defer ts.Close()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	for i := 0; i < 3; i++ {
		go func(n int) {
			body, _ := json.Marshal(smallJob(31 + n))
			req, _ := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/jobs", bytes.NewReader(body))
			resp, err := ts.Client().Do(req)
			if err == nil {
				resp.Body.Close()
			}
		}(i)
	}
	deadline := time.Now().Add(5 * time.Second)
	for hang.StatsSnapshot().Queued < 3 {
		if time.Now().After(deadline) {
			t.Fatal("admission never filled")
		}
		time.Sleep(2 * time.Millisecond)
	}
	body, _ := json.Marshal(smallJob(40))
	resp, err := ts.Client().Post(ts.URL+"/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429", resp.StatusCode)
	}
	// 3 queued x 10s EWMA / 1 worker = 30s (rounded to whole seconds).
	if got := resp.Header.Get("Retry-After"); got != "30" {
		t.Fatalf("Retry-After = %q, want 30 (load-proportional)", got)
	}
	cancel()
}
