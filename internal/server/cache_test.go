package server

import (
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"testing"

	"repro/internal/chaos"
	"repro/internal/resultcache"
)

func newCache(t *testing.T, path string) *resultcache.Store {
	t.Helper()
	c, err := resultcache.Open(resultcache.Options{Path: path})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// TestRepeatedJobIsCacheHit: the serve-smoke contract — POSTing the
// same job twice simulates once; the repeat is served from the result
// cache ahead of admission, and the hit is visible in /statz.
func TestRepeatedJobIsCacheHit(t *testing.T) {
	srv := New(Config{Workers: 2, Cache: newCache(t, "")})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	status, first := postJob(t, ts, smallJob(4))
	if status != http.StatusOK {
		t.Fatalf("first POST: status %d, body %+v", status, first)
	}
	if first.Cached {
		t.Fatal("first POST served from an empty cache")
	}
	status, second := postJob(t, ts, smallJob(4))
	if status != http.StatusOK {
		t.Fatalf("second POST: status %d, body %+v", status, second)
	}
	if !second.Cached {
		t.Fatalf("repeated POST not a cache hit: %+v", second)
	}
	if second.Attempts != 0 {
		t.Fatalf("cache hit took %d attempts, want 0 (no execution)", second.Attempts)
	}
	if second.WeightedSpeedup != first.WeightedSpeedup ||
		second.ANTT != first.ANTT || second.Fairness != first.Fairness {
		t.Fatalf("cached metrics differ:\nfirst:  %+v\nsecond: %+v", first, second)
	}

	st := srv.StatsSnapshot()
	if st.CacheHits < 1 {
		t.Fatalf("statz cache_hits = %d, want >= 1", st.CacheHits)
	}
	if st.CacheMisses < 1 {
		t.Fatalf("statz cache_misses = %d, want >= 1", st.CacheMisses)
	}
	if st.CacheLen != 1 {
		t.Fatalf("statz cache_len = %d, want 1", st.CacheLen)
	}
	// Both POSTs completed, but only the first occupied an execution slot.
	if st.Completed != 2 || st.Accepted != 1 {
		t.Fatalf("stats = %+v, want 2 completed / 1 accepted", st)
	}
}

// TestChaosCacheFaultDegradesGracefully: an injected cache-write fault
// must not fail the job — the result is still computed and returned,
// the failed persist is counted, and the entry still serves repeats
// from the memory tier.
func TestChaosCacheFaultDegradesGracefully(t *testing.T) {
	path := filepath.Join(t.TempDir(), "results.jsonl")
	srv := New(Config{
		Workers: 2, Retry: fastRetry(),
		Cache: newCache(t, path),
		Chaos: chaos.New(chaos.Config{Seed: 7, CacheProb: 1, Failures: 1}),
	})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	status, first := postJob(t, ts, smallJob(8))
	if status != http.StatusOK {
		t.Fatalf("POST under cache fault: status %d, body %+v", status, first)
	}
	if first.WeightedSpeedup <= 0 {
		t.Fatalf("no result under cache fault: %+v", first)
	}
	st := srv.StatsSnapshot()
	if st.CachePutErrors < 1 {
		t.Fatalf("statz cache_put_errors = %d, want >= 1", st.CachePutErrors)
	}
	if st.Failed != 0 {
		t.Fatalf("statz failed = %d, want 0 (cache faults never fail jobs)", st.Failed)
	}
	// The entry persisted nowhere but still lives in the memory tier.
	status, second := postJob(t, ts, smallJob(8))
	if status != http.StatusOK || !second.Cached {
		t.Fatalf("repeat after cache fault: status %d, %+v", status, second)
	}
}

// TestStatzForkGauges: jobs with a shared warmup family under
// ForkWarmup surface forks_taken and snapshot_bytes in /statz.
func TestStatzForkGauges(t *testing.T) {
	srv := New(Config{Workers: 2, ForkWarmup: true})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	for _, n := range []int{4, 8} {
		req := smallJob(n)
		req.Scheme.Warmup = 3_000
		if status, out := postJob(t, ts, req); status != http.StatusOK {
			t.Fatalf("POST: status %d, body %+v", status, out)
		}
	}
	st := srv.StatsSnapshot()
	if st.ForksTaken != 2 {
		t.Fatalf("statz forks_taken = %d, want 2", st.ForksTaken)
	}
	if st.SnapshotBytes <= 0 {
		t.Fatalf("statz snapshot_bytes = %d, want > 0", st.SnapshotBytes)
	}
}
