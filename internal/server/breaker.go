package server

import (
	"sort"
	"sync"
	"time"
)

// breaker is a per-job-fingerprint circuit breaker for deterministic
// failures. The engine is a pure function of the job, so a fingerprint
// that tripped the invariant watchdog will trip it again — retrying
// burns a worker slot to reproduce a known bug. After threshold
// violations the fingerprint's circuit opens and submissions are shed
// (429) without executing; after cooldown one probe is allowed through,
// and a success closes the circuit (the fingerprint hashes only the
// job, so a successful probe means the engine binary changed — e.g. a
// redeploy fixed the violated invariant).
type breaker struct {
	threshold int
	cooldown  time.Duration
	now       func() time.Time // injectable in tests

	mu     sync.Mutex
	states map[string]*breakerState
}

type breakerState struct {
	fails     int
	open      bool
	openUntil time.Time
}

func newBreaker(threshold int, cooldown time.Duration) *breaker {
	return &breaker{
		threshold: threshold,
		cooldown:  cooldown,
		now:       time.Now,
		states:    make(map[string]*breakerState),
	}
}

// allow reports whether key may execute now; when shed, the second
// result is how long until the next probe is allowed.
func (b *breaker) allow(key string) (bool, time.Duration) {
	b.mu.Lock()
	defer b.mu.Unlock()
	st := b.states[key]
	if st == nil || !st.open {
		return true, 0
	}
	if wait := st.openUntil.Sub(b.now()); wait > 0 {
		return false, wait
	}
	// Cooldown elapsed: let one probe through, and push the next probe
	// window out so concurrent submissions do not all probe at once.
	st.openUntil = b.now().Add(b.cooldown)
	return true, 0
}

// failure scores one invariant violation against key and reports
// whether this call opened the circuit.
func (b *breaker) failure(key string) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	st := b.states[key]
	if st == nil {
		st = &breakerState{}
		b.states[key] = st
	}
	st.fails++
	if st.fails < b.threshold {
		return false
	}
	opened := !st.open
	st.open = true
	st.openUntil = b.now().Add(b.cooldown)
	return opened
}

// success clears key's failure history and closes its circuit.
func (b *breaker) success(key string) {
	b.mu.Lock()
	defer b.mu.Unlock()
	delete(b.states, key)
}

// openCount returns how many fingerprints currently have open circuits.
func (b *breaker) openCount() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	n := 0
	for _, st := range b.states {
		if st.open {
			n++
		}
	}
	return n
}

// BreakerInfo is one fingerprint's circuit state as reported by /statz —
// the per-job health view a fleet operator debugs from. State is "open"
// (shedding, CooldownMs until the next probe window), "half-open"
// (cooldown elapsed; the next submission executes as a probe) or
// "accumulating" (violations recorded, threshold not yet reached).
type BreakerInfo struct {
	Key        string `json:"key"`
	State      string `json:"state"`
	Fails      int    `json:"fails"`
	CooldownMs int64  `json:"cooldown_remaining_ms,omitempty"`
}

// snapshot returns every tracked fingerprint's circuit state, sorted by
// key. Fingerprints with no failure history are not tracked (success
// deletes the state), so the list is exactly the unhealthy set.
func (b *breaker) snapshot() []BreakerInfo {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make([]BreakerInfo, 0, len(b.states))
	for key, st := range b.states {
		info := BreakerInfo{Key: key, State: "accumulating", Fails: st.fails}
		if st.open {
			if wait := st.openUntil.Sub(b.now()); wait > 0 {
				info.State = "open"
				info.CooldownMs = wait.Milliseconds()
			} else {
				info.State = "half-open"
			}
		}
		out = append(out, info)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}
