package chaos

import (
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// TestTransportNet5xx: a net5xx-planned key is answered with a synthetic
// 503 without the request reaching the worker; once the budget is spent
// the same key passes through.
func TestTransportNet5xx(t *testing.T) {
	hits := 0
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits++
		io.WriteString(w, "ok")
	}))
	defer ts.Close()

	inj := New(Config{Seed: 3, Net5xxProb: 1, Failures: 1})
	client := &http.Client{Transport: inj.Transport(nil)}

	req, _ := http.NewRequest(http.MethodPost, ts.URL, strings.NewReader("body"))
	req.Header.Set(JobKeyHeader, "j1-abc")
	resp, err := client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503", resp.StatusCode)
	}
	if hits != 0 {
		t.Fatalf("synthetic 5xx reached the worker (%d hits)", hits)
	}

	req2, _ := http.NewRequest(http.MethodPost, ts.URL, strings.NewReader("body"))
	req2.Header.Set(JobKeyHeader, "j1-abc")
	resp2, err := client.Do(req2)
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK || hits != 1 {
		t.Fatalf("post-budget request: status=%d hits=%d, want 200 and 1", resp2.StatusCode, hits)
	}
}

// TestTransportNetDrop: a netdrop-planned key fails with a connection
// error; requests without a job-key header are never faulted.
func TestTransportNetDrop(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "ok")
	}))
	defer ts.Close()

	inj := New(Config{Seed: 3, NetDropProb: 1, Failures: 1})
	client := &http.Client{Transport: inj.Transport(nil)}

	req, _ := http.NewRequest(http.MethodGet, ts.URL, nil)
	req.Header.Set(JobKeyHeader, "j1-abc")
	if _, err := client.Do(req); err == nil {
		t.Fatal("netdrop-planned request succeeded")
	}
	if got := inj.Counts()[KindNetDrop]; got != 1 {
		t.Fatalf("Counts()[netdrop] = %d, want 1", got)
	}
	// Control-plane requests (no job key) pass through even at prob 1.
	resp, err := client.Get(ts.URL)
	if err != nil {
		t.Fatalf("keyless request faulted: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("keyless request status = %d", resp.StatusCode)
	}
}

// TestTransportNetDelayRespectsContext: an injected delay releases on
// request-context expiry — the lease/hedge machinery, not the fault,
// decides how long a straggler is tolerated.
func TestTransportNetDelayRespectsContext(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "ok")
	}))
	defer ts.Close()

	inj := New(Config{Seed: 3, NetDelayProb: 1, NetDelay: time.Hour})
	client := &http.Client{Transport: inj.Transport(nil)}

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	req, _ := http.NewRequestWithContext(ctx, http.MethodGet, ts.URL, nil)
	req.Header.Set(JobKeyHeader, "j1-abc")
	start := time.Now()
	_, err := client.Do(req)
	if err == nil {
		t.Fatal("delayed request succeeded before its context expired")
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("netdelay did not release on context expiry")
	}
}

// TestParseNetKeys: the -chaos spec accepts the network fault class.
func TestParseNetKeys(t *testing.T) {
	cfg, err := Parse("netdrop=0.2,netdelay=0.1,net5xx=0.5,netdelaydur=250ms,seed=9")
	if err != nil {
		t.Fatal(err)
	}
	want := Config{Seed: 9, NetDropProb: 0.2, NetDelayProb: 0.1, Net5xxProb: 0.5,
		NetDelay: 250 * time.Millisecond}
	if cfg != want {
		t.Fatalf("cfg = %+v, want %+v", cfg, want)
	}
	if !cfg.Enabled() {
		t.Fatal("net-only config not enabled")
	}
	for _, bad := range []string{"netdrop=2", "net5xx=x", "netdelaydur=0"} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q) accepted", bad)
		}
	}
}
