package chaos

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"repro/internal/sm"
)

func TestPlanDeterministic(t *testing.T) {
	cfg := Config{Seed: 42, PanicProb: 0.3, HangProb: 0.3, JournalProb: 0.2, InvariantProb: 0.1}
	a, b := New(cfg), New(cfg)
	keys := []string{"j1-aaa", "j1-bbb", "j1-ccc", "j1-ddd", "j1-eee", "j1-fff"}
	seen := map[Kind]bool{}
	for _, k := range keys {
		pa, pb := a.Plan(k), b.Plan(k)
		if pa != pb {
			t.Fatalf("key %s: plan differs across injectors: %s vs %s", k, pa, pb)
		}
		seen[pa] = true
	}
	// A different seed must reshuffle at least one key's fate.
	c := New(Config{Seed: 43, PanicProb: 0.3, HangProb: 0.3, JournalProb: 0.2, InvariantProb: 0.1})
	moved := false
	for _, k := range keys {
		if c.Plan(k) != a.Plan(k) {
			moved = true
		}
	}
	if !moved {
		t.Fatal("changing the seed changed no plan: selection is not seed-driven")
	}
}

func TestPlanExhaustiveProbability(t *testing.T) {
	inj := New(Config{Seed: 1, PanicProb: 1})
	for _, k := range []string{"x", "y", "z"} {
		if got := inj.Plan(k); got != KindPanic {
			t.Fatalf("panic=1: key %s planned %s", k, got)
		}
	}
	none := New(Config{Seed: 1})
	for _, k := range []string{"x", "y", "z"} {
		if got := none.Plan(k); got != KindNone {
			t.Fatalf("disabled injector planned %s for %s", got, k)
		}
	}
}

// TestFailureBudget pins the fails-then-recovers shape: a selected key
// injects exactly Failures faults, then behaves normally forever.
func TestFailureBudget(t *testing.T) {
	inj := New(Config{Seed: 7, PanicProb: 1, Failures: 2})
	ctx := context.Background()
	panics := 0
	for i := 0; i < 5; i++ {
		func() {
			defer func() {
				if recover() != nil {
					panics++
				}
			}()
			if err := inj.JobFault(ctx, 0, "key"); err != nil {
				t.Fatalf("panic plan returned error: %v", err)
			}
		}()
	}
	if panics != 2 {
		t.Fatalf("injected %d panics, want exactly 2", panics)
	}
	if got := inj.Counts()[KindPanic]; got != 2 {
		t.Fatalf("Counts()[panic] = %d, want 2", got)
	}
}

func TestHangRespectsContext(t *testing.T) {
	inj := New(Config{Seed: 7, HangProb: 1, Hang: time.Hour})
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	start := time.Now()
	err := inj.JobFault(ctx, 3, "key")
	if time.Since(start) > 5*time.Second {
		t.Fatal("hang did not release on context expiry")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("hang error = %v, want context.DeadlineExceeded in chain", err)
	}
	if !strings.Contains(err.Error(), "injected hang") {
		t.Fatalf("hang error not attributed: %v", err)
	}
}

func TestInvariantFaultTyped(t *testing.T) {
	inj := New(Config{Seed: 7, InvariantProb: 1})
	err := inj.JobFault(context.Background(), 1, "key")
	var ie *sm.InvariantError
	if !errors.As(err, &ie) {
		t.Fatalf("invariant fault is %T, want *sm.InvariantError", err)
	}
	if ie.Rule != "chaos-injected" {
		t.Fatalf("rule = %q", ie.Rule)
	}
	// Budget spent: the retry must succeed.
	if err := inj.JobFault(context.Background(), 1, "key"); err != nil {
		t.Fatalf("second attempt still faulted: %v", err)
	}
}

func TestJournalFaultOnlyForJournalPlan(t *testing.T) {
	inj := New(Config{Seed: 7, JournalProb: 1, Failures: 1})
	if err := inj.JournalFault("sync", "key"); err == nil {
		t.Fatal("journal fault not injected for journal-planned key")
	}
	if err := inj.JournalFault("sync", "key"); err != nil {
		t.Fatalf("budget ignored: %v", err)
	}
	// A panic-planned key must not fault journal writes, and vice versa.
	pinj := New(Config{Seed: 7, PanicProb: 1})
	if err := pinj.JournalFault("sync", "key"); err != nil {
		t.Fatalf("panic-planned key faulted a journal write: %v", err)
	}
	jinj := New(Config{Seed: 7, JournalProb: 1})
	if err := jinj.JobFault(context.Background(), 0, "key"); err != nil {
		t.Fatalf("journal-planned key faulted the job itself: %v", err)
	}
}

func TestCacheFaultOnlyForCachePlan(t *testing.T) {
	inj := New(Config{Seed: 7, CacheProb: 1, Failures: 1})
	if err := inj.CacheFault("write", "key"); err == nil {
		t.Fatal("cache fault not injected for cache-planned key")
	}
	if err := inj.CacheFault("write", "key"); err != nil {
		t.Fatalf("budget ignored: %v", err)
	}
	// Cross-class isolation: a cache-planned key faults neither the job
	// nor the journal, and vice versa.
	cinj := New(Config{Seed: 7, CacheProb: 1})
	if err := cinj.JobFault(context.Background(), 0, "key"); err != nil {
		t.Fatalf("cache-planned key faulted the job itself: %v", err)
	}
	if err := cinj.JournalFault("sync", "key"); err != nil {
		t.Fatalf("cache-planned key faulted a journal write: %v", err)
	}
	jinj := New(Config{Seed: 7, JournalProb: 1})
	if err := jinj.CacheFault("write", "key"); err != nil {
		t.Fatalf("journal-planned key faulted a cache write: %v", err)
	}
}

func TestParse(t *testing.T) {
	cfg, err := Parse("panic=0.5, hang=0.25, journal=0.1, invariant=0.05, cache=0.1, seed=42, failures=3, hangdur=2s")
	if err != nil {
		t.Fatal(err)
	}
	want := Config{Seed: 42, PanicProb: 0.5, HangProb: 0.25, JournalProb: 0.1,
		InvariantProb: 0.05, CacheProb: 0.1, Hang: 2 * time.Second, Failures: 3}
	if cfg != want {
		t.Fatalf("cfg = %+v, want %+v", cfg, want)
	}
	if !cfg.Enabled() {
		t.Fatal("parsed config not enabled")
	}
	if c, err := Parse(""); err != nil || c.Enabled() {
		t.Fatalf("empty spec: cfg=%+v err=%v, want disabled, nil", c, err)
	}
	for _, bad := range []string{
		"panic", "panic=2", "panic=-0.1", "panic=x", "seed=-1", "seed=abc",
		"failures=0", "failures=x", "hangdur=0", "hangdur=x", "bogus=1",
	} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q) accepted", bad)
		}
	}
}
