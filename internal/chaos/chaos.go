// Package chaos is a deterministic fault injector for the service and
// sweep pipelines: it forces worker panics, artificial hangs, journal
// and result-cache write errors and invariant-watchdog violations so
// every degradation
// path (retry, deadline kill, circuit breaker, journal rollback) has a
// failing-then-recovering test instead of an untested error branch.
//
// Determinism is the point. Whether a job is faulted, and how, is a pure
// function of (seed, job fingerprint): the same seed replays the same
// fault schedule across runs and across processes, so a chaos test that
// fails is reproducible by its seed alone. Each selected key injects a
// bounded number of faults (Config.Failures) and then behaves normally —
// the "fails, then recovers" shape the resilience layer must survive.
package chaos

import (
	"context"
	"fmt"
	"hash/fnv"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/sm"
	"repro/internal/xrand"
)

// Kind names one injected fault class.
type Kind string

const (
	// KindPanic makes the job's worker goroutine panic (exercises
	// runner panic isolation and transient-error retry).
	KindPanic Kind = "panic"
	// KindHang blocks the job until its deadline context expires
	// (exercises per-job deadline kill and retry).
	KindHang Kind = "hang"
	// KindJournal fails the journal write for the job's checkpoint
	// (exercises journal append rollback and typed write errors).
	KindJournal Kind = "journal"
	// KindInvariant fails the job with a deterministic
	// *sm.InvariantError (exercises the circuit breaker: retrying a
	// deterministic violation is futile, so the service must shed).
	KindInvariant Kind = "invariant"
	// KindCache fails the result cache's persistence write (exercises
	// the cache's pass-through degradation: the job must still succeed,
	// only the entry's durability is lost).
	KindCache Kind = "cache"
	// KindNone means the key was not selected for any fault.
	KindNone Kind = "none"
)

// Config selects which fraction of job keys each fault class claims.
// The probabilities partition [0,1): a key draws one uniform variate and
// the first class whose cumulative range contains it wins, so the
// classes are mutually exclusive per key. Probabilities summing past 1
// are effectively truncated by that order.
type Config struct {
	Seed          uint64
	PanicProb     float64
	HangProb      float64
	JournalProb   float64
	InvariantProb float64
	CacheProb     float64
	// Hang is how long a hang fault blocks before giving up and
	// proceeding (it normally loses to the job deadline; the bound keeps
	// an undeadlined dev run from blocking forever). 0 means 30s.
	Hang time.Duration
	// Failures is how many faults each selected key injects before it is
	// allowed to succeed (<=0 means 1). The per-key budget is in-memory:
	// a restarted process injects afresh.
	Failures int
}

// Enabled reports whether any fault class has a non-zero probability.
func (c Config) Enabled() bool {
	return c.PanicProb > 0 || c.HangProb > 0 || c.JournalProb > 0 ||
		c.InvariantProb > 0 || c.CacheProb > 0
}

// Injector injects faults per Config. It is safe for concurrent use.
type Injector struct {
	cfg Config

	mu       sync.Mutex
	injected map[string]int // key -> faults already injected
	counts   map[Kind]int   // faults injected so far, by kind
}

// New returns an injector for cfg.
func New(cfg Config) *Injector {
	if cfg.Hang <= 0 {
		cfg.Hang = 30 * time.Second
	}
	if cfg.Failures <= 0 {
		cfg.Failures = 1
	}
	return &Injector{
		cfg:      cfg,
		injected: make(map[string]int),
		counts:   make(map[Kind]int),
	}
}

// Plan returns the fault class key is selected for — a pure function of
// the injector's seed and the key, independent of call order.
func (inj *Injector) Plan(key string) Kind {
	h := fnv.New64a()
	h.Write([]byte(key))
	r := xrand.New(inj.cfg.Seed ^ h.Sum64()).Float64()
	for _, c := range []struct {
		p float64
		k Kind
	}{
		{inj.cfg.PanicProb, KindPanic},
		{inj.cfg.HangProb, KindHang},
		{inj.cfg.JournalProb, KindJournal},
		{inj.cfg.InvariantProb, KindInvariant},
		{inj.cfg.CacheProb, KindCache},
	} {
		if r < c.p {
			return c.k
		}
		r -= c.p
	}
	return KindNone
}

// spend consumes one unit of key's fault budget, reporting whether a
// fault of kind should be injected now.
func (inj *Injector) spend(key string, kind Kind) bool {
	inj.mu.Lock()
	defer inj.mu.Unlock()
	if inj.injected[key] >= inj.cfg.Failures {
		return false
	}
	inj.injected[key]++
	inj.counts[kind]++
	return true
}

// Counts returns how many faults have been injected so far, by kind.
func (inj *Injector) Counts() map[Kind]int {
	inj.mu.Lock()
	defer inj.mu.Unlock()
	out := make(map[Kind]int, len(inj.counts))
	for k, v := range inj.counts {
		out[k] = v
	}
	return out
}

// JobFault is the runner.Runner.Fault seam: called inside the worker's
// recovery scope before a job executes. Depending on the key's plan it
// panics (recovered into a *runner.PanicError), blocks until ctx
// expires (surfacing the deadline), returns a deterministic
// *sm.InvariantError, or does nothing.
func (inj *Injector) JobFault(ctx context.Context, index int, key string) error {
	switch inj.Plan(key) {
	case KindPanic:
		if inj.spend(key, KindPanic) {
			panic(fmt.Sprintf("chaos: injected panic for job %d (%s)", index, key))
		}
	case KindHang:
		if inj.spend(key, KindHang) {
			t := time.NewTimer(inj.cfg.Hang)
			defer t.Stop()
			select {
			case <-ctx.Done():
				return fmt.Errorf("chaos: injected hang for job %d (%s) interrupted: %w",
					index, key, ctx.Err())
			case <-t.C:
				// Hang bound elapsed without a deadline; let the job run.
			}
		}
	case KindInvariant:
		if inj.spend(key, KindInvariant) {
			return &sm.InvariantError{
				Cycle: 0, SM: 0, Kernel: 0,
				Rule:   "chaos-injected",
				Detail: fmt.Sprintf("injected invariant violation for job %d (%s)", index, key),
			}
		}
	}
	return nil
}

// JournalFault is the journal.Journal.FaultHook seam: it fails the
// write or sync step of an append for keys planned KindJournal.
func (inj *Injector) JournalFault(op, key string) error {
	if inj.Plan(key) != KindJournal {
		return nil
	}
	if !inj.spend(key, KindJournal) {
		return nil
	}
	return fmt.Errorf("chaos: injected journal %s error for %s", op, key)
}

// CacheFault is the resultcache.Store.FaultHook seam: it fails the
// write or sync step of a cache persist for keys planned KindCache.
func (inj *Injector) CacheFault(op, key string) error {
	if inj.Plan(key) != KindCache {
		return nil
	}
	if !inj.spend(key, KindCache) {
		return nil
	}
	return fmt.Errorf("chaos: injected cache %s error for %s", op, key)
}

// Parse decodes a -chaos flag spec: comma-separated key=value pairs with
// keys panic, hang, journal, invariant, cache (probabilities in [0,1]),
// seed (uint64), failures (int) and hangdur (Go duration). Example:
//
//	panic=0.5,hang=0.2,seed=42,failures=1,hangdur=2s
//
// An empty spec yields a disabled Config.
func Parse(spec string) (Config, error) {
	var cfg Config
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return cfg, nil
	}
	for _, field := range strings.Split(spec, ",") {
		k, v, ok := strings.Cut(strings.TrimSpace(field), "=")
		if !ok {
			return Config{}, fmt.Errorf("chaos: bad field %q: want key=value", field)
		}
		k, v = strings.TrimSpace(k), strings.TrimSpace(v)
		switch k {
		case "panic", "hang", "journal", "invariant", "cache":
			p, err := strconv.ParseFloat(v, 64)
			if err != nil || p < 0 || p > 1 {
				return Config{}, fmt.Errorf("chaos: %s=%q: want a probability in [0,1]", k, v)
			}
			switch k {
			case "panic":
				cfg.PanicProb = p
			case "hang":
				cfg.HangProb = p
			case "journal":
				cfg.JournalProb = p
			case "invariant":
				cfg.InvariantProb = p
			case "cache":
				cfg.CacheProb = p
			}
		case "seed":
			s, err := strconv.ParseUint(v, 10, 64)
			if err != nil {
				return Config{}, fmt.Errorf("chaos: seed=%q: want a uint64", v)
			}
			cfg.Seed = s
		case "failures":
			n, err := strconv.Atoi(v)
			if err != nil || n < 1 {
				return Config{}, fmt.Errorf("chaos: failures=%q: want a positive integer", v)
			}
			cfg.Failures = n
		case "hangdur":
			d, err := time.ParseDuration(v)
			if err != nil || d <= 0 {
				return Config{}, fmt.Errorf("chaos: hangdur=%q: want a positive duration", v)
			}
			cfg.Hang = d
		default:
			return Config{}, fmt.Errorf("chaos: unknown key %q (want panic, hang, journal, invariant, cache, seed, failures or hangdur)", k)
		}
	}
	return cfg, nil
}
