// Package chaos is a deterministic fault injector for the service, sweep
// and fleet pipelines: it forces worker panics, artificial hangs,
// journal and result-cache write errors, invariant-watchdog violations
// and network faults (connection drops, added latency, synthetic 5xx) so
// every degradation path (retry, deadline kill, circuit breaker, journal
// rollback, fleet requeue/hedge/eject) has a failing-then-recovering
// test instead of an untested error branch.
//
// Determinism is the point. Whether a job is faulted, and how, is a pure
// function of (seed, job fingerprint): the same seed replays the same
// fault schedule across runs and across processes, so a chaos test that
// fails is reproducible by its seed alone. Each selected key injects a
// bounded number of faults (Config.Failures) and then behaves normally —
// the "fails, then recovers" shape the resilience layer must survive.
package chaos

import (
	"context"
	"fmt"
	"hash/fnv"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/sm"
	"repro/internal/xrand"
)

// Kind names one injected fault class.
type Kind string

const (
	// KindPanic makes the job's worker goroutine panic (exercises
	// runner panic isolation and transient-error retry).
	KindPanic Kind = "panic"
	// KindHang blocks the job until its deadline context expires
	// (exercises per-job deadline kill and retry).
	KindHang Kind = "hang"
	// KindJournal fails the journal write for the job's checkpoint
	// (exercises journal append rollback and typed write errors).
	KindJournal Kind = "journal"
	// KindInvariant fails the job with a deterministic
	// *sm.InvariantError (exercises the circuit breaker: retrying a
	// deterministic violation is futile, so the service must shed).
	KindInvariant Kind = "invariant"
	// KindCache fails the result cache's persistence write (exercises
	// the cache's pass-through degradation: the job must still succeed,
	// only the entry's durability is lost).
	KindCache Kind = "cache"
	// KindNetDrop fails the HTTP round trip with a connection error
	// before the request reaches the worker (exercises the fleet
	// coordinator's requeue-on-connection-failure path; from the
	// coordinator's view it is indistinguishable from a partition or a
	// crashed worker).
	KindNetDrop Kind = "netdrop"
	// KindNetDelay adds latency to the round trip (exercises straggler
	// hedging and lease expiry without a real slow network).
	KindNetDelay Kind = "netdelay"
	// KindNet5xx answers the request with a synthetic 503 without
	// reaching the worker (exercises requeue-on-5xx; the worker never
	// executes, so the retried job must still produce the one true
	// result).
	KindNet5xx Kind = "net5xx"
	// KindCorrupt silently flips bytes in the job's result or persisted
	// checkpoint AFTER digests are computed — the silently-wrong-worker
	// / lying-disk model. The damage is self-consistent at the source
	// (digest covers the corrupt bytes), so per-hop digest verification
	// cannot catch it; only an independent re-execution (the audit
	// path) or the checkpoint store's load-time digest can.
	KindCorrupt Kind = "corrupt"
	// KindNone means the key was not selected for any fault.
	KindNone Kind = "none"
)

// Config selects which fraction of job keys each fault class claims.
// The probabilities partition [0,1): a key draws one uniform variate and
// the first class whose cumulative range contains it wins, so the
// classes are mutually exclusive per key. Probabilities summing past 1
// are effectively truncated by that order.
type Config struct {
	Seed          uint64
	PanicProb     float64
	HangProb      float64
	JournalProb   float64
	InvariantProb float64
	CacheProb     float64
	NetDropProb   float64
	NetDelayProb  float64
	Net5xxProb    float64
	CorruptProb   float64
	// Hang is how long a hang fault blocks before giving up and
	// proceeding (it normally loses to the job deadline; the bound keeps
	// an undeadlined dev run from blocking forever). 0 means 30s.
	Hang time.Duration
	// NetDelay is how much latency a netdelay fault adds to the round
	// trip. 0 means 1s.
	NetDelay time.Duration
	// Failures is how many faults each selected key injects before it is
	// allowed to succeed (<=0 means 1). The per-key budget is in-memory:
	// a restarted process injects afresh.
	Failures int
}

// Enabled reports whether any fault class has a non-zero probability.
func (c Config) Enabled() bool {
	return c.PanicProb > 0 || c.HangProb > 0 || c.JournalProb > 0 ||
		c.InvariantProb > 0 || c.CacheProb > 0 ||
		c.NetDropProb > 0 || c.NetDelayProb > 0 || c.Net5xxProb > 0 ||
		c.CorruptProb > 0
}

// Injector injects faults per Config. It is safe for concurrent use.
type Injector struct {
	cfg Config

	mu       sync.Mutex
	injected map[string]int // key -> faults already injected
	counts   map[Kind]int   // faults injected so far, by kind
}

// New returns an injector for cfg.
func New(cfg Config) *Injector {
	if cfg.Hang <= 0 {
		cfg.Hang = 30 * time.Second
	}
	if cfg.NetDelay <= 0 {
		cfg.NetDelay = time.Second
	}
	if cfg.Failures <= 0 {
		cfg.Failures = 1
	}
	return &Injector{
		cfg:      cfg,
		injected: make(map[string]int),
		counts:   make(map[Kind]int),
	}
}

// Plan returns the fault class key is selected for — a pure function of
// the injector's seed and the key, independent of call order.
func (inj *Injector) Plan(key string) Kind {
	h := fnv.New64a()
	h.Write([]byte(key))
	r := xrand.New(inj.cfg.Seed ^ h.Sum64()).Float64()
	for _, c := range []struct {
		p float64
		k Kind
	}{
		{inj.cfg.PanicProb, KindPanic},
		{inj.cfg.HangProb, KindHang},
		{inj.cfg.JournalProb, KindJournal},
		{inj.cfg.InvariantProb, KindInvariant},
		{inj.cfg.CacheProb, KindCache},
		{inj.cfg.NetDropProb, KindNetDrop},
		{inj.cfg.NetDelayProb, KindNetDelay},
		{inj.cfg.Net5xxProb, KindNet5xx},
		{inj.cfg.CorruptProb, KindCorrupt},
	} {
		if r < c.p {
			return c.k
		}
		r -= c.p
	}
	return KindNone
}

// spend consumes one unit of key's fault budget, reporting whether a
// fault of kind should be injected now.
func (inj *Injector) spend(key string, kind Kind) bool {
	inj.mu.Lock()
	defer inj.mu.Unlock()
	if inj.injected[key] >= inj.cfg.Failures {
		return false
	}
	inj.injected[key]++
	inj.counts[kind]++
	return true
}

// Counts returns how many faults have been injected so far, by kind.
func (inj *Injector) Counts() map[Kind]int {
	inj.mu.Lock()
	defer inj.mu.Unlock()
	out := make(map[Kind]int, len(inj.counts))
	for k, v := range inj.counts {
		out[k] = v
	}
	return out
}

// JobFault is the runner.Runner.Fault seam: called inside the worker's
// recovery scope before a job executes. Depending on the key's plan it
// panics (recovered into a *runner.PanicError), blocks until ctx
// expires (surfacing the deadline), returns a deterministic
// *sm.InvariantError, or does nothing.
func (inj *Injector) JobFault(ctx context.Context, index int, key string) error {
	switch inj.Plan(key) {
	case KindPanic:
		if inj.spend(key, KindPanic) {
			panic(fmt.Sprintf("chaos: injected panic for job %d (%s)", index, key))
		}
	case KindHang:
		if inj.spend(key, KindHang) {
			t := time.NewTimer(inj.cfg.Hang)
			defer t.Stop()
			select {
			case <-ctx.Done():
				return fmt.Errorf("chaos: injected hang for job %d (%s) interrupted: %w",
					index, key, ctx.Err())
			case <-t.C:
				// Hang bound elapsed without a deadline; let the job run.
			}
		}
	case KindInvariant:
		if inj.spend(key, KindInvariant) {
			return &sm.InvariantError{
				Cycle: 0, SM: 0, Kernel: 0,
				Rule:   "chaos-injected",
				Detail: fmt.Sprintf("injected invariant violation for job %d (%s)", index, key),
			}
		}
	}
	return nil
}

// JournalFault is the journal.Journal.FaultHook seam: it fails the
// write or sync step of an append for keys planned KindJournal.
func (inj *Injector) JournalFault(op, key string) error {
	if inj.Plan(key) != KindJournal {
		return nil
	}
	if !inj.spend(key, KindJournal) {
		return nil
	}
	return fmt.Errorf("chaos: injected journal %s error for %s", op, key)
}

// CacheFault is the resultcache.Store.FaultHook seam: it fails the
// write or sync step of a cache persist for keys planned KindCache.
func (inj *Injector) CacheFault(op, key string) error {
	if inj.Plan(key) != KindCache {
		return nil
	}
	if !inj.spend(key, KindCache) {
		return nil
	}
	return fmt.Errorf("chaos: injected cache %s error for %s", op, key)
}

// ResultFault is the worker's silent-corruption seam: it reports whether
// the finished result for key should have its bytes damaged before the
// response (and its digest) are built. The caller does the mutation so
// chaos stays format-agnostic. A corrupt worker is self-consistent —
// its digest covers the damaged bytes — which is exactly what the audit
// layer exists to catch.
func (inj *Injector) ResultFault(key string) bool {
	if inj.Plan(key) != KindCorrupt {
		return false
	}
	return inj.spend(key, KindCorrupt)
}

// CheckpointFault is the ckpt.Store.FaultHook seam: a returned error for
// keys planned KindCorrupt makes the store silently flip a payload byte
// AFTER the digest is computed (a lying disk). The store's load-time
// digest check must then reject the file and fall back.
func (inj *Injector) CheckpointFault(op, key string) error {
	if inj.Plan(key) != KindCorrupt {
		return nil
	}
	if !inj.spend(key, KindCorrupt) {
		return nil
	}
	return fmt.Errorf("chaos: injected checkpoint %s corruption for %s", op, key)
}

// JobKeyHeader carries the job fingerprint on fleet HTTP requests so the
// network fault transport can plan per (seed, fingerprint) — the same
// determinism contract as every other fault class.
const JobKeyHeader = "X-Cke-Job-Key"

// Transport wraps base (nil = http.DefaultTransport) with the network
// fault classes: requests carrying a JobKeyHeader whose plan is a net
// fault are dropped (connection error), delayed, or answered with a
// synthetic 503 without reaching the worker. Requests without the header
// (health probes, journal dumps) pass through untouched — network chaos
// targets work, not the control plane, so the failure matrix stays
// attributable per job.
func (inj *Injector) Transport(base http.RoundTripper) http.RoundTripper {
	if base == nil {
		base = http.DefaultTransport
	}
	return &netTransport{inj: inj, base: base}
}

type netTransport struct {
	inj  *Injector
	base http.RoundTripper
}

func (t *netTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	key := req.Header.Get(JobKeyHeader)
	if key == "" {
		return t.base.RoundTrip(req)
	}
	switch t.inj.Plan(key) {
	case KindNetDrop:
		if t.inj.spend(key, KindNetDrop) {
			if req.Body != nil {
				req.Body.Close()
			}
			return nil, fmt.Errorf("chaos: injected connection drop for %s", key)
		}
	case KindNetDelay:
		if t.inj.spend(key, KindNetDelay) {
			timer := time.NewTimer(t.inj.cfg.NetDelay)
			defer timer.Stop()
			select {
			case <-req.Context().Done():
				if req.Body != nil {
					req.Body.Close()
				}
				return nil, fmt.Errorf("chaos: injected delay for %s interrupted: %w",
					key, req.Context().Err())
			case <-timer.C:
			}
		}
	case KindNet5xx:
		if t.inj.spend(key, KindNet5xx) {
			if req.Body != nil {
				req.Body.Close()
			}
			body := fmt.Sprintf("chaos: injected 5xx for %s", key)
			return &http.Response{
				Status:        "503 Service Unavailable",
				StatusCode:    http.StatusServiceUnavailable,
				Proto:         "HTTP/1.1",
				ProtoMajor:    1,
				ProtoMinor:    1,
				Header:        http.Header{"Content-Type": []string{"text/plain"}},
				Body:          io.NopCloser(strings.NewReader(body)),
				ContentLength: int64(len(body)),
				Request:       req,
			}, nil
		}
	}
	return t.base.RoundTrip(req)
}

// Parse decodes a -chaos flag spec: comma-separated key=value pairs with
// keys panic, hang, journal, invariant, cache, netdrop, netdelay,
// net5xx, corrupt (probabilities in [0,1]),
// seed (uint64), failures (int), hangdur and netdelaydur (Go durations).
// Example:
//
//	panic=0.5,hang=0.2,seed=42,failures=1,hangdur=2s
//
// An empty spec yields a disabled Config.
func Parse(spec string) (Config, error) {
	var cfg Config
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return cfg, nil
	}
	for _, field := range strings.Split(spec, ",") {
		k, v, ok := strings.Cut(strings.TrimSpace(field), "=")
		if !ok {
			return Config{}, fmt.Errorf("chaos: bad field %q: want key=value", field)
		}
		k, v = strings.TrimSpace(k), strings.TrimSpace(v)
		switch k {
		case "panic", "hang", "journal", "invariant", "cache", "netdrop", "netdelay", "net5xx", "corrupt":
			p, err := strconv.ParseFloat(v, 64)
			if err != nil || p < 0 || p > 1 {
				return Config{}, fmt.Errorf("chaos: %s=%q: want a probability in [0,1]", k, v)
			}
			switch k {
			case "panic":
				cfg.PanicProb = p
			case "hang":
				cfg.HangProb = p
			case "journal":
				cfg.JournalProb = p
			case "invariant":
				cfg.InvariantProb = p
			case "cache":
				cfg.CacheProb = p
			case "netdrop":
				cfg.NetDropProb = p
			case "netdelay":
				cfg.NetDelayProb = p
			case "net5xx":
				cfg.Net5xxProb = p
			case "corrupt":
				cfg.CorruptProb = p
			}
		case "seed":
			s, err := strconv.ParseUint(v, 10, 64)
			if err != nil {
				return Config{}, fmt.Errorf("chaos: seed=%q: want a uint64", v)
			}
			cfg.Seed = s
		case "failures":
			n, err := strconv.Atoi(v)
			if err != nil || n < 1 {
				return Config{}, fmt.Errorf("chaos: failures=%q: want a positive integer", v)
			}
			cfg.Failures = n
		case "hangdur":
			d, err := time.ParseDuration(v)
			if err != nil || d <= 0 {
				return Config{}, fmt.Errorf("chaos: hangdur=%q: want a positive duration", v)
			}
			cfg.Hang = d
		case "netdelaydur":
			d, err := time.ParseDuration(v)
			if err != nil || d <= 0 {
				return Config{}, fmt.Errorf("chaos: netdelaydur=%q: want a positive duration", v)
			}
			cfg.NetDelay = d
		default:
			return Config{}, fmt.Errorf("chaos: unknown key %q (want panic, hang, journal, invariant, cache, netdrop, netdelay, net5xx, corrupt, seed, failures, hangdur or netdelaydur)", k)
		}
	}
	return cfg, nil
}
