// Package icnt models the SM <-> memory-partition crossbar of Table 1:
// a 16x16 crossbar with 32 B flits. Two independent instances form the
// request and response virtual networks.
//
// Each source owns a FIFO injection queue. Each destination port moves
// up to FlitsPerCycle flits per cycle, granting several small control
// packets in one cycle while a data packet wider than the link
// serializes over multiple cycles, plus a fixed traversal latency.
// Output ports arbitrate among sources round-robin; the destination cap
// covers the bandwidth-delay product (packets in flight on the wire
// count against it). Head-of-line blocking at the injection queues is
// modelled (it is part of the congestion the paper's schemes react to).
package icnt

import (
	"repro/internal/config"
	"repro/internal/mem"
	"repro/internal/ring"
)

// Packet is one message: a memory request or response plus its size.
type Packet struct {
	Req   *mem.Request
	Dst   int
	Flits int
}

type delivered struct {
	req     *mem.Request
	readyAt int64
}

// Network is one direction of the crossbar.
//
// The ejection port is double-buffered so the consumer side (Pop) and
// the producer side (Tick) may run on different goroutines within one
// engine cycle: Tick stages deliveries into inStage and Pop records
// drained packets in popped without touching inCount. CommitPops and
// CommitDeliveries apply the staged effects; the engine calls them at
// its determinism barrier, in the exact positions that reproduce the
// serial tick order (Tick at cycle c observes pops through cycle c;
// Pop at cycle c observes deliveries staged through cycle c-1, which
// is all it could consume anyway because readyAt >= c+1 for anything
// Tick(c) stages).
type Network struct {
	cfg      config.Icnt
	nSrc     int
	nDst     int
	outQ     []ring.Ring[Packet]
	rr       []int // per-destination round-robin pointer over sources
	portFree []int64
	// inQ holds delivered packets per destination; readyAt is monotonic
	// per destination because each output port serializes transfers.
	inQ     []ring.Ring[delivered]
	inCount []int // packets in flight + queued per destination
	inCap   int
	// inStage holds packets granted by Tick but not yet visible to Pop;
	// popped counts packets drained by Pop but not yet applied to
	// inCount. Only Tick touches inStage/inCount; only Pop touches
	// inQ/popped (per destination); the commit methods touch both and
	// run single-threaded at the engine's barrier.
	inStage []ring.Ring[delivered]
	popped  []int

	// TransferredFlits counts total flits moved (utilization statistic).
	TransferredFlits uint64
}

// New builds a network with nSrc sources and nDst destinations.
func New(cfg config.Icnt, nSrc, nDst int) *Network {
	fpc := cfg.FlitsPerCycle
	if fpc < 1 {
		fpc = 1
	}
	n := &Network{
		cfg:      cfg,
		nSrc:     nSrc,
		nDst:     nDst,
		outQ:     make([]ring.Ring[Packet], nSrc),
		rr:       make([]int, nDst),
		portFree: make([]int64, nDst),
		inQ:      make([]ring.Ring[delivered], nDst),
		inCount:  make([]int, nDst),
		inStage:  make([]ring.Ring[delivered], nDst),
		popped:   make([]int, nDst),
		// Packets in flight on the wire count toward the destination,
		// so the cap must cover the bandwidth-delay product plus the
		// ejection buffer proper.
		inCap: cfg.QueueDepth + (cfg.Latency+1)*fpc,
	}
	return n
}

// CanPush reports whether source src can inject another packet.
func (n *Network) CanPush(src int) bool {
	return n.outQ[src].Len() < n.cfg.QueueDepth
}

// Push injects a packet from src. It returns false when the injection
// queue is full.
func (n *Network) Push(src int, p Packet) bool {
	if !n.CanPush(src) {
		return false
	}
	n.outQ[src].Push(p)
	return true
}

// Tick advances the crossbar by one cycle: every free output port
// arbitrates among sources whose head packet targets it, granting
// packets until its per-cycle flit budget is spent (several small
// control packets fit in one cycle; a data packet wider than the link
// occupies the port for multiple cycles).
func (n *Network) Tick(cycle int64) {
	fpc := n.cfg.FlitsPerCycle
	if fpc < 1 {
		fpc = 1
	}
	for dst := 0; dst < n.nDst; dst++ {
		if n.portFree[dst] > cycle {
			continue
		}
		budget := fpc
		for budget > 0 && n.inCount[dst] < n.inCap {
			start := n.rr[dst]
			granted := false
			for i := 0; i < n.nSrc; i++ {
				src := (start + i) % n.nSrc
				q := &n.outQ[src]
				if q.Empty() || q.Peek().Dst != dst {
					continue
				}
				p := q.Peek()
				if p.Flits > budget && budget < fpc {
					// Does not fit in what remains of this cycle;
					// leave it for the next.
					continue
				}
				q.Pop()
				var readyAt int64
				if p.Flits <= budget {
					budget -= p.Flits
					readyAt = cycle + 1 + int64(n.cfg.Latency)
				} else {
					// Wider than the link: serialize over cycles.
					xfer := int64((p.Flits + fpc - 1) / fpc)
					n.portFree[dst] = cycle + xfer
					readyAt = cycle + xfer + int64(n.cfg.Latency)
					budget = 0
				}
				// Staged: invisible to Pop until CommitDeliveries. The
				// count is the producer side's own backpressure signal
				// and is maintained immediately (the grant loop above
				// re-reads it within this very cycle).
				n.inStage[dst].Push(delivered{req: p.Req, readyAt: readyAt})
				n.inCount[dst]++
				n.TransferredFlits += uint64(p.Flits)
				n.rr[dst] = (src + 1) % n.nSrc
				granted = true
				break
			}
			if !granted {
				break
			}
		}
	}
}

// Pop returns the next delivered request at destination dst, or nil if
// none has arrived by cycle. Distinct destinations may be popped from
// distinct goroutines concurrently with Tick; the drain is applied to
// the shared occupancy count only at CommitPops.
func (n *Network) Pop(dst int, cycle int64) *mem.Request {
	q := &n.inQ[dst]
	if q.Empty() || q.Peek().readyAt > cycle {
		return nil
	}
	r := q.Pop().req
	n.popped[dst]++
	return r
}

// CommitPops applies the pops staged since the last commit to the
// per-destination occupancy counts. Single-threaded; the engine calls
// it at its barrier, before the Tick that must observe those pops.
func (n *Network) CommitPops() {
	for dst, p := range n.popped {
		if p != 0 {
			n.inCount[dst] -= p
			n.popped[dst] = 0
		}
	}
}

// CommitDeliveries publishes packets staged by Tick since the last
// commit to the ejection queues Pop reads. Single-threaded; the engine
// calls it at its barrier, after the consumers that must not yet see
// them have run.
func (n *Network) CommitDeliveries() {
	for dst := range n.inStage {
		st := &n.inStage[dst]
		for !st.Empty() {
			n.inQ[dst].Push(st.Pop())
		}
	}
}

// Pending reports the number of packets queued or in flight toward dst.
func (n *Network) Pending(dst int) int { return n.inCount[dst] }

// DataFlits returns the flit count for a packet carrying one cache line.
func DataFlits(cfg config.Icnt, lineBytes int) int {
	d := lineBytes / cfg.FlitBytes
	if d < 1 {
		d = 1
	}
	return cfg.HeaderFlits + d
}

// CtrlFlits returns the flit count for a header-only packet.
func CtrlFlits(cfg config.Icnt) int { return cfg.HeaderFlits }
