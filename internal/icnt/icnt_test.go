package icnt

import (
	"testing"
	"testing/quick"

	"repro/internal/config"
	"repro/internal/mem"
)

func testCfg() config.Icnt {
	return config.Icnt{FlitBytes: 32, FlitsPerCycle: 1, Latency: 4, QueueDepth: 4, HeaderFlits: 1}
}

// tick runs one serial-engine network cycle: commit consumer pops,
// arbitrate, publish deliveries — the order gpu.Step uses.
func tick(n *Network, c int64) {
	n.CommitPops()
	n.Tick(c)
	n.CommitDeliveries()
}

// TestStagedEjectionDoubleBuffer pins the commit discipline the
// pipelined engine relies on: deliveries granted by Tick are invisible
// to Pop until CommitDeliveries, and pops do not reach the occupancy
// count until CommitPops.
func TestStagedEjectionDoubleBuffer(t *testing.T) {
	cfg := testCfg()
	cfg.Latency = 0 // make the packet poppable the cycle after transfer
	n := New(cfg, 1, 1)
	r := &mem.Request{LineAddr: 7}
	n.Push(0, Packet{Req: r, Dst: 0, Flits: 1})
	n.Tick(0)
	if got := n.Pending(0); got != 1 {
		t.Fatalf("Pending after Tick = %d, want 1 (producer-side count is immediate)", got)
	}
	if got := n.Pop(0, 10); got != nil {
		t.Fatal("staged delivery visible to Pop before CommitDeliveries")
	}
	n.CommitDeliveries()
	if got := n.Pop(0, 1); got != r {
		t.Fatal("committed delivery not poppable")
	}
	if got := n.Pending(0); got != 1 {
		t.Fatalf("Pending after Pop = %d, want 1 (pop staged until CommitPops)", got)
	}
	n.CommitPops()
	if got := n.Pending(0); got != 0 {
		t.Fatalf("Pending after CommitPops = %d, want 0", got)
	}
}

func TestDeliveryLatency(t *testing.T) {
	n := New(testCfg(), 2, 2)
	r := &mem.Request{LineAddr: 42}
	if !n.Push(0, Packet{Req: r, Dst: 1, Flits: 1}) {
		t.Fatal("push failed")
	}
	tick(n, 0)
	// 1 flit transfer + 4 latency: ready at cycle 5.
	for c := int64(1); c < 5; c++ {
		if got := n.Pop(1, c); got != nil {
			t.Fatalf("delivered too early at cycle %d", c)
		}
		tick(n, c)
	}
	if got := n.Pop(1, 5); got != r {
		t.Fatal("packet not delivered at expected cycle")
	}
}

func TestPortSerializesMultiFlitPackets(t *testing.T) {
	n := New(testCfg(), 2, 1)
	r1 := &mem.Request{LineAddr: 1}
	r2 := &mem.Request{LineAddr: 2}
	n.Push(0, Packet{Req: r1, Dst: 0, Flits: 5})
	n.Push(1, Packet{Req: r2, Dst: 0, Flits: 5})
	tick(n, 0) // r1 wins the port; busy 5 cycles
	tick(n, 1) // port busy: r2 waits
	var got []*mem.Request
	for c := int64(0); c < 40; c++ {
		tick(n, c)
		if r := n.Pop(0, c); r != nil {
			got = append(got, r)
		}
	}
	if len(got) != 2 {
		t.Fatalf("delivered %d of 2 packets", len(got))
	}
}

func TestFlitsPerCycleSpeedsTransfer(t *testing.T) {
	slow := New(config.Icnt{FlitBytes: 32, FlitsPerCycle: 1, Latency: 0, QueueDepth: 4, HeaderFlits: 1}, 1, 1)
	fast := New(config.Icnt{FlitBytes: 32, FlitsPerCycle: 4, Latency: 0, QueueDepth: 4, HeaderFlits: 1}, 1, 1)
	for _, n := range []*Network{slow, fast} {
		n.Push(0, Packet{Req: &mem.Request{}, Dst: 0, Flits: 4})
		tick(n, 0)
	}
	if slow.Pop(0, 3) != nil {
		t.Fatal("slow link delivered 4 flits in under 4 cycles")
	}
	if fast.Pop(0, 1) == nil {
		t.Fatal("fast link should deliver 4 flits in 1 cycle")
	}
}

func TestInjectionBackpressure(t *testing.T) {
	n := New(testCfg(), 1, 1)
	for i := 0; i < 4; i++ {
		if !n.Push(0, Packet{Req: &mem.Request{}, Dst: 0, Flits: 1}) {
			t.Fatalf("push %d rejected below queue depth", i)
		}
	}
	if n.Push(0, Packet{Req: &mem.Request{}, Dst: 0, Flits: 1}) {
		t.Fatal("push beyond queue depth must fail")
	}
	if n.CanPush(0) {
		t.Fatal("CanPush must be false when full")
	}
}

func TestRoundRobinFairness(t *testing.T) {
	n := New(testCfg(), 4, 1)
	counts := make(map[uint64]int)
	// Saturate all sources toward one destination; deliveries must be
	// spread round-robin.
	for c := int64(0); c < 400; c++ {
		for src := 0; src < 4; src++ {
			n.Push(src, Packet{Req: &mem.Request{LineAddr: uint64(src)}, Dst: 0, Flits: 1})
		}
		tick(n, c)
		for {
			r := n.Pop(0, c)
			if r == nil {
				break
			}
			counts[r.LineAddr]++
		}
	}
	for src := uint64(0); src < 4; src++ {
		if counts[src] < 50 {
			t.Fatalf("source %d delivered only %d packets: %v", src, counts[src], counts)
		}
	}
}

func TestFIFOPerSourceDestination(t *testing.T) {
	n := New(testCfg(), 1, 1)
	var sent []uint64
	var got []uint64
	next := uint64(0)
	for c := int64(0); c < 200; c++ {
		if n.CanPush(0) && next < 20 {
			n.Push(0, Packet{Req: &mem.Request{LineAddr: next}, Dst: 0, Flits: 2})
			sent = append(sent, next)
			next++
		}
		tick(n, c)
		if r := n.Pop(0, c); r != nil {
			got = append(got, r.LineAddr)
		}
	}
	if len(got) != len(sent) {
		t.Fatalf("delivered %d of %d", len(got), len(sent))
	}
	for i := range got {
		if got[i] != sent[i] {
			t.Fatalf("order violated at %d: %v", i, got)
		}
	}
}

// TestPropertyConservation: every pushed packet is delivered exactly
// once, none invented, none lost (given enough draining cycles).
func TestPropertyConservation(t *testing.T) {
	f := func(plan []uint8) bool {
		n := New(testCfg(), 3, 3)
		pushed := 0
		cycle := int64(0)
		delivered := 0
		drain := func() {
			for d := 0; d < 3; d++ {
				for n.Pop(d, cycle) != nil {
					delivered++
				}
			}
		}
		for _, p := range plan {
			src := int(p % 3)
			dst := int(p/3) % 3
			if n.Push(src, Packet{Req: &mem.Request{}, Dst: dst, Flits: int(p%4) + 1}) {
				pushed++
			}
			tick(n, cycle)
			drain()
			cycle++
		}
		for i := 0; i < 200; i++ {
			tick(n, cycle)
			drain()
			cycle++
		}
		return delivered == pushed
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestFlitHelpers(t *testing.T) {
	cfg := testCfg()
	if got := DataFlits(cfg, 128); got != 5 {
		t.Fatalf("DataFlits(128B) = %d, want 5 (1 header + 4 data)", got)
	}
	if got := CtrlFlits(cfg); got != 1 {
		t.Fatalf("CtrlFlits = %d, want 1", got)
	}
}
