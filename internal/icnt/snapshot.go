// Snapshot/restore for the crossbar: injection queues, round-robin
// pointers, port serialization deadlines and in-flight delivery queues
// are deep-copied through the machine-wide mem.Cloner.

package icnt

import (
	"fmt"
	"unsafe"

	"repro/internal/mem"
)

// Snapshot is the captured state of one Network. Immutable once taken;
// Restore deep-copies out of it.
type Snapshot struct {
	outQ             [][]Packet
	rr               []int
	portFree         []int64
	inQ              [][]delivered
	inCount          []int
	transferredFlits uint64
}

// Snapshot captures the network's full state through cl. The engine
// only snapshots at a determinism barrier, where every staged delivery
// and pop has been committed; a non-empty stage here is an engine bug,
// not a recoverable condition.
func (n *Network) Snapshot(cl *mem.Cloner) *Snapshot {
	for i := range n.inStage {
		if !n.inStage[i].Empty() || n.popped[i] != 0 {
			panic("icnt: snapshot taken with uncommitted staged deliveries/pops")
		}
	}
	sn := &Snapshot{
		rr:               append([]int(nil), n.rr...),
		portFree:         append([]int64(nil), n.portFree...),
		inCount:          append([]int(nil), n.inCount...),
		transferredFlits: n.TransferredFlits,
	}
	for i := range n.outQ {
		sn.outQ = append(sn.outQ, n.outQ[i].Snapshot(func(p Packet) Packet {
			p.Req = cl.Request(p.Req)
			return p
		}))
	}
	for i := range n.inQ {
		sn.inQ = append(sn.inQ, n.inQ[i].Snapshot(func(d delivered) delivered {
			return delivered{req: cl.Request(d.req), readyAt: d.readyAt}
		}))
	}
	return sn
}

// Restore overwrites the network's state from sn through cl. The network
// must have the port counts the snapshot was taken from.
func (n *Network) Restore(sn *Snapshot, cl *mem.Cloner) error {
	if len(sn.outQ) != len(n.outQ) || len(sn.inQ) != len(n.inQ) {
		return fmt.Errorf("icnt: restore: snapshot is %dx%d ports, network is %dx%d",
			len(sn.outQ), len(sn.inQ), len(n.outQ), len(n.inQ))
	}
	for i := range n.outQ {
		n.outQ[i].Restore(sn.outQ[i], func(p Packet) Packet {
			p.Req = cl.Request(p.Req)
			return p
		})
	}
	copy(n.rr, sn.rr)
	copy(n.portFree, sn.portFree)
	for i := range n.inQ {
		n.inQ[i].Restore(sn.inQ[i], func(d delivered) delivered {
			return delivered{req: cl.Request(d.req), readyAt: d.readyAt}
		})
	}
	copy(n.inCount, sn.inCount)
	for i := range n.inStage {
		n.inStage[i].Reset()
		n.popped[i] = 0
	}
	n.TransferredFlits = sn.transferredFlits
	return nil
}

// PendingRequests returns how many packets the network currently holds
// across all queues (snapshot-footprint accounting).
func (n *Network) PendingRequests() int {
	total := 0
	for i := range n.outQ {
		total += n.outQ[i].Len()
	}
	for i := range n.inQ {
		total += n.inQ[i].Len()
	}
	return total
}

// Bytes estimates the snapshot's memory footprint (cloned requests are
// counted once at the GPU level).
func (sn *Snapshot) Bytes() int64 {
	total := int64(len(sn.rr)+len(sn.inCount))*8 + int64(len(sn.portFree))*8
	for i := range sn.outQ {
		total += int64(len(sn.outQ[i])) * int64(unsafe.Sizeof(Packet{}))
	}
	for i := range sn.inQ {
		total += int64(len(sn.inQ[i])) * int64(unsafe.Sizeof(delivered{}))
	}
	return total
}
