// Package xrand provides a small, deterministic xorshift64* pseudo-random
// number generator for the simulator.
//
// The simulator must be fully reproducible: the same configuration and
// seed must produce the same cycle-by-cycle trace. Every stochastic
// component (address generators, arbitration tie-breakers) owns its own
// Source seeded from the run seed and a stable component identifier, so
// adding or removing one component never perturbs the streams of others.
package xrand

// Source is a xorshift64* generator. The zero value is not usable; create
// sources with New.
type Source struct {
	state uint64
}

// New returns a Source seeded from seed. A zero seed is remapped to a
// fixed non-zero constant because xorshift has an all-zero fixed point.
func New(seed uint64) *Source {
	s := &Source{}
	s.Seed(seed)
	return s
}

// Seed resets the generator state.
func (s *Source) Seed(seed uint64) {
	if seed == 0 {
		seed = 0x9E3779B97F4A7C15
	}
	// Scramble the seed so that consecutive small seeds yield unrelated
	// streams.
	seed ^= seed >> 33
	seed *= 0xFF51AFD7ED558CCD
	seed ^= seed >> 33
	seed *= 0xC4CEB9FE1A85EC53
	seed ^= seed >> 33
	if seed == 0 {
		seed = 1
	}
	s.state = seed
}

// Uint64 returns the next 64 pseudo-random bits.
func (s *Source) Uint64() uint64 {
	x := s.state
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	s.state = x
	return x * 0x2545F4914F6CDD1D
}

// Uint32 returns the next 32 pseudo-random bits.
func (s *Source) Uint32() uint32 {
	return uint32(s.Uint64() >> 32)
}

// Intn returns a pseudo-random int in [0, n). It panics if n <= 0.
func (s *Source) Intn(n int) int {
	if n <= 0 {
		panic("xrand: Intn called with n <= 0")
	}
	return int(s.Uint64() % uint64(n))
}

// Uint64n returns a pseudo-random uint64 in [0, n). It panics if n == 0.
func (s *Source) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("xrand: Uint64n called with n == 0")
	}
	return s.Uint64() % n
}

// Float64 returns a pseudo-random float64 in [0, 1).
func (s *Source) Float64() float64 {
	return float64(s.Uint64()>>11) / (1 << 53)
}

// Bool returns true with probability p.
func (s *Source) Bool(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return s.Float64() < p
}

// Fork derives a new independent Source from this one, labelled with id.
// The parent state is not advanced, so forking is order-independent with
// respect to draws from the parent.
func (s *Source) Fork(id uint64) *Source {
	return New(s.state ^ (id+1)*0x9E3779B97F4A7C15)
}
