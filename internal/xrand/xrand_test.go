package xrand

import (
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if av, bv := a.Uint64(), b.Uint64(); av != bv {
			t.Fatalf("draw %d diverged: %d vs %d", i, av, bv)
		}
	}
}

func TestSeedIndependence(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("seeds 1 and 2 collided on %d of 1000 draws", same)
	}
}

func TestZeroSeedUsable(t *testing.T) {
	s := New(0)
	if s.Uint64() == 0 && s.Uint64() == 0 && s.Uint64() == 0 {
		t.Fatal("zero seed produced a stuck generator")
	}
}

func TestIntnRange(t *testing.T) {
	s := New(7)
	f := func(n uint16) bool {
		bound := int(n%1000) + 1
		v := s.Intn(bound)
		return v >= 0 && v < bound
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestFloat64Range(t *testing.T) {
	s := New(9)
	for i := 0; i < 10000; i++ {
		v := s.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %v", v)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	s := New(11)
	var sum float64
	const n = 100000
	for i := 0; i < n; i++ {
		sum += s.Float64()
	}
	mean := sum / n
	if mean < 0.49 || mean > 0.51 {
		t.Fatalf("mean of %d uniform draws = %v, want ~0.5", n, mean)
	}
}

func TestBoolEdges(t *testing.T) {
	s := New(13)
	for i := 0; i < 100; i++ {
		if s.Bool(0) {
			t.Fatal("Bool(0) returned true")
		}
		if !s.Bool(1) {
			t.Fatal("Bool(1) returned false")
		}
	}
}

func TestBoolProbability(t *testing.T) {
	s := New(17)
	hits := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if s.Bool(0.3) {
			hits++
		}
	}
	frac := float64(hits) / n
	if frac < 0.28 || frac > 0.32 {
		t.Fatalf("Bool(0.3) hit fraction = %v", frac)
	}
}

func TestForkIndependentOfParentDraws(t *testing.T) {
	a := New(5)
	fork1 := a.Fork(1)
	v1 := fork1.Uint64()

	b := New(5)
	b.Uint64() // advancing the parent must not change the fork... but
	// Fork derives from current state, so fork before drawing.
	_ = b

	c := New(5)
	fork2 := c.Fork(1)
	if v2 := fork2.Uint64(); v1 != v2 {
		t.Fatalf("forks from identical states diverged: %d vs %d", v1, v2)
	}
}

func TestForkDistinctIDs(t *testing.T) {
	s := New(5)
	a := s.Fork(1).Uint64()
	b := s.Fork(2).Uint64()
	if a == b {
		t.Fatal("forks with distinct ids produced identical first draws")
	}
}

func TestUint64nRange(t *testing.T) {
	s := New(21)
	for i := 0; i < 10000; i++ {
		if v := s.Uint64n(17); v >= 17 {
			t.Fatalf("Uint64n(17) = %d", v)
		}
	}
}
