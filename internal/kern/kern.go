// Package kern models GPU kernels synthetically. The paper's schemes
// never inspect program semantics — they react to *rates*: how often a
// kernel issues memory instructions (Cinst/Minst), how many coalesced
// requests each memory instruction produces (Req/Minst), the kernel's
// L1D locality, and its static-resource footprint (registers, shared
// memory, threads, TB slots). A Desc captures exactly those knobs, and
// the thirteen descriptors in benchmarks.go are parameterized to match
// Table 2 of the paper.
package kern

import (
	"fmt"

	"repro/internal/config"
	"repro/internal/xrand"
)

// Class is the paper's workload classification.
type Class int

const (
	// Compute-intensive: less than 20% LSU stall cycles in isolation.
	Compute Class = iota
	// Memory-intensive: at least 20% LSU stall cycles in isolation.
	Memory
)

func (c Class) String() string {
	if c == Memory {
		return "M"
	}
	return "C"
}

// Desc describes one synthetic kernel.
type Desc struct {
	Name string
	// Class is the *expected* classification from the paper; the
	// characterization harness re-derives it from measured LSU stalls.
	Class Class

	// Static resources per thread block (determine occupancy and the
	// DRF shares used by SMK).
	ThreadsPerTB  int
	RegsPerThread int
	SmemPerTB     int

	// Instruction mix: the warp program is a loop of CPerM compute
	// instructions followed by one memory instruction.
	CPerM   int
	SFUFrac float64 // fraction of compute instructions using the SFU

	// Memory behaviour.
	ReqPerMinst int     // coalesced requests per memory instruction
	StoreFrac   float64 // fraction of memory instructions that are stores
	// SmemPerM inserts this many shared-memory access instructions per
	// loop iteration (serviced by the banked SMEM, never touching the
	// L1D). SmemConflictProb is the chance such an access suffers a
	// bank conflict and serializes over extra cycles. The thirteen
	// Table 2 benchmarks leave these at zero (their smem usage is
	// captured by occupancy only); custom kernels can model smem-heavy
	// codes explicitly.
	SmemPerM         int
	SmemConflictProb float64
	// DepDist is how many further instructions the warp may issue after
	// a load before depending on its value.
	DepDist int
	// MaxPendingLoads caps the warp's memory-level parallelism.
	MaxPendingLoads int

	// Locality model for generated line addresses.
	FootprintLines uint64  // per-warp streaming region, in cache lines
	ReuseProb      float64 // probability of re-referencing a recent line
	ReuseWindow    int     // recent-lines window size (<= 8)
	HotProb        float64 // probability of touching the kernel-wide hot region
	HotLines       uint64  // size of the hot region, in cache lines
	// WarmProb/WarmL2Frac define a kernel-wide region sized to miss in
	// the L1 but hit in the L2: this is how benchmarks like pf combine a
	// ~1.0 L1 miss rate with near-zero reservation failures (short L2
	// hit latency turns MSHRs over quickly). WarmL2Frac is a fraction of
	// the aggregate L2 capacity so behaviour is preserved on scaled
	// machines; warps stream through the region from staggered starts.
	WarmProb   float64
	WarmL2Frac float64
	Scatter    bool // true: requests hit random lines (uncoalesced)

	// InstrsPerWarp is the TB lifetime: a thread block finishes when
	// each of its warps has issued this many instructions, freeing its
	// resources for a fresh TB (kernels restart indefinitely, matching
	// the paper's 2M-cycle methodology).
	InstrsPerWarp uint64
}

// Validate reports descriptor inconsistencies against cfg.
func (d *Desc) Validate(cfg *config.Config) error {
	if d.Name == "" {
		return fmt.Errorf("kern: descriptor has no name")
	}
	if d.ThreadsPerTB <= 0 || d.ThreadsPerTB%cfg.WarpSize != 0 {
		return fmt.Errorf("kern %s: ThreadsPerTB (%d) must be a positive multiple of the warp size (%d)",
			d.Name, d.ThreadsPerTB, cfg.WarpSize)
	}
	if d.CPerM < 0 || d.ReqPerMinst <= 0 {
		return fmt.Errorf("kern %s: CPerM must be >= 0 and ReqPerMinst positive", d.Name)
	}
	if d.MaxPendingLoads <= 0 || d.MaxPendingLoads > 8 {
		return fmt.Errorf("kern %s: MaxPendingLoads must be in [1,8]", d.Name)
	}
	if d.ReuseWindow < 0 || d.ReuseWindow > 8 {
		return fmt.Errorf("kern %s: ReuseWindow must be in [0,8]", d.Name)
	}
	if d.FootprintLines == 0 {
		return fmt.Errorf("kern %s: FootprintLines must be positive", d.Name)
	}
	if d.InstrsPerWarp == 0 {
		return fmt.Errorf("kern %s: InstrsPerWarp must be positive", d.Name)
	}
	if d.MaxTBsPerSM(cfg) < 1 {
		return fmt.Errorf("kern %s: one TB does not fit in an SM", d.Name)
	}
	return nil
}

// WarpsPerTB returns the number of warps per thread block.
func (d *Desc) WarpsPerTB(warpSize int) int { return d.ThreadsPerTB / warpSize }

// MaxTBsPerSM returns the occupancy limit: the number of TBs of this
// kernel that fit in one SM given every static resource.
func (d *Desc) MaxTBsPerSM(cfg *config.Config) int {
	n := cfg.SM.MaxTBs
	if d.ThreadsPerTB > 0 {
		if byThreads := cfg.SM.MaxThreads / d.ThreadsPerTB; byThreads < n {
			n = byThreads
		}
	}
	if regs := d.ThreadsPerTB * d.RegsPerThread; regs > 0 {
		if byRegs := cfg.SM.Registers / regs; byRegs < n {
			n = byRegs
		}
	}
	if d.SmemPerTB > 0 {
		if bySmem := cfg.SM.SmemBytes / d.SmemPerTB; bySmem < n {
			n = bySmem
		}
	}
	return n
}

// Occupancy reports the fraction of each static resource used when n TBs
// of this kernel are resident (Table 2's RF_oc, SMEM_oc, Thread_oc,
// TB_occu columns).
type Occupancy struct {
	RF, Smem, Threads, TBs float64
}

// OccupancyAt computes occupancy for n resident TBs.
func (d *Desc) OccupancyAt(cfg *config.Config, n int) Occupancy {
	return Occupancy{
		RF:      float64(n*d.ThreadsPerTB*d.RegsPerThread) / float64(cfg.SM.Registers),
		Smem:    float64(n*d.SmemPerTB) / float64(cfg.SM.SmemBytes),
		Threads: float64(n*d.ThreadsPerTB) / float64(cfg.SM.MaxThreads),
		TBs:     float64(n) / float64(cfg.SM.MaxTBs),
	}
}

// DominantShare returns the DRF dominant share of n TBs of this kernel:
// the maximum across resources of the used fraction (used by SMK's
// static partitioning).
func (d *Desc) DominantShare(cfg *config.Config, n int) float64 {
	o := d.OccupancyAt(cfg, n)
	m := o.RF
	for _, v := range []float64{o.Smem, o.Threads, o.TBs} {
		if v > m {
			m = v
		}
	}
	return m
}

// InstrKind is the type of the next warp instruction.
type InstrKind uint8

const (
	ALU InstrKind = iota
	SFU
	Smem
	MemLoad
	MemStore
)

// AddrState is the per-warp address-generation state.
//
// Re-reference draws come from the lines of the warp's *previous* memory
// instruction: at full occupancy thousands of other accesses interleave
// before the warp returns, so the lines are long evicted and the draw
// misses (thrashing); with few warps in flight (under memory instruction
// limiting and greedy-then-oldest scheduling) the distance shrinks to
// tens of accesses and the draws hit. This is the latent locality whose
// recovery the paper observes as the throttled kernel's improved L1D
// efficiency.
type AddrState struct {
	Base      uint64 // first line of this warp's streaming region (kernel-relative)
	StreamPos uint64
	WarmPos   uint64
	prev      [8]uint64 // lines of the previous memory instruction
	prevN     int
	cur       [8]uint64 // lines of the instruction being generated
	curN      int
}

// InitAddrState seeds a warp's address state. seq must be unique per
// (kernel, TB instance, warp-in-TB) so fresh TBs stream fresh data.
// warm is the effective warm-region size in lines (see GenLines).
func (d *Desc) InitAddrState(s *AddrState, seq uint64, warm uint64) {
	// Keep regions inside the kernel's address-space slice; see
	// mem.AddrSpace. The hot region occupies [0, HotLines), the warm
	// region the next warm lines; streaming regions start above both.
	const regionLimit = 1 << 26
	lo := d.HotLines + warm
	s.Base = lo + (seq*d.FootprintLines)%(regionLimit-d.FootprintLines-lo)
	s.StreamPos = 0
	if warm > 0 {
		// Stagger warp starting points through the warm region with a
		// golden-ratio low-discrepancy sequence: successive warps land
		// maximally far apart, so no two warps trail each other closely
		// (which would overlap their fetches and inflate MSHR merges).
		const phi32 = 2654435769            // 2^32 * (golden ratio - 1)
		frac := uint64(uint32(seq * phi32)) // (seq*phi) mod 1, in 2^-32 units
		s.WarmPos = frac * warm >> 32
	}
	s.prevN = 0
	s.curN = 0
}

// NextKind returns the instruction kind at loop position pos and the
// next position. The loop body is CPerM compute instructions, SmemPerM
// shared-memory accesses, then one global memory instruction. rng
// breaks the SFU/store choices.
func (d *Desc) NextKind(pos int, rng *xrand.Source) (InstrKind, int) {
	if pos < d.CPerM {
		if d.SFUFrac > 0 && rng.Bool(d.SFUFrac) {
			return SFU, pos + 1
		}
		return ALU, pos + 1
	}
	if pos < d.CPerM+d.SmemPerM {
		return Smem, pos + 1
	}
	if d.StoreFrac > 0 && rng.Bool(d.StoreFrac) {
		return MemStore, 0
	}
	return MemLoad, 0
}

// GenLines fills buf[:ReqPerMinst] with the kernel-relative line indices
// of one memory instruction's coalesced requests and returns the count.
// Stores target the streaming output region only (they never pollute the
// hot/warm read regions — write-evict would otherwise destroy read
// locality, which real kernels avoid by writing to separate arrays).
// warm is the effective warm-region size in lines, derived from
// WarmL2Frac and the machine's aggregate L2 capacity.
func (d *Desc) GenLines(s *AddrState, rng *xrand.Source, buf []uint64, isStore bool, warm uint64) int {
	n := d.ReqPerMinst
	if n > len(buf) {
		n = len(buf)
	}
	if !isStore {
		// The new instruction's re-reference window is the previous
		// instruction's line set.
		s.prev, s.prevN = s.cur, s.curN
		s.curN = 0
	}
	for i := 0; i < n; i++ {
		var line uint64
		switch {
		case isStore:
			if d.Scatter {
				line = s.Base + rng.Uint64n(d.FootprintLines)
			} else {
				line = s.Base + s.StreamPos%d.FootprintLines
				s.StreamPos++
			}
			buf[i] = line
			continue
		case s.prevN > 0 && rng.Bool(d.ReuseProb):
			line = s.prev[rng.Intn(s.prevN)]
		case d.HotLines > 0 && rng.Bool(d.HotProb):
			line = rng.Uint64n(d.HotLines)
		case warm > 0 && rng.Bool(d.WarmProb):
			line = d.HotLines + s.WarmPos
			s.WarmPos++
			if s.WarmPos >= warm {
				s.WarmPos = 0
			}
		case d.Scatter:
			line = s.Base + rng.Uint64n(d.FootprintLines)
		default:
			line = s.Base + s.StreamPos%d.FootprintLines
			s.StreamPos++
		}
		buf[i] = line
		d.remember(s, line)
	}
	return n
}

// EffectiveWarmLines converts WarmL2Frac into lines for a machine with
// the given aggregate L2 line capacity.
func (d *Desc) EffectiveWarmLines(totalL2Lines int) uint64 {
	if d.WarmL2Frac <= 0 || totalL2Lines <= 0 {
		return 0
	}
	w := uint64(d.WarmL2Frac * float64(totalL2Lines))
	if w < 1 {
		w = 1
	}
	return w
}

func (d *Desc) remember(s *AddrState, line uint64) {
	if d.ReuseWindow == 0 || s.curN >= d.ReuseWindow || s.curN >= len(s.cur) {
		return
	}
	s.cur[s.curN] = line
	s.curN++
}
