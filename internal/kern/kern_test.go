package kern

import (
	"testing"
	"testing/quick"

	"repro/internal/config"
	"repro/internal/xrand"
)

func TestAllBenchmarksValidate(t *testing.T) {
	cfg := config.Default()
	for _, d := range Benchmarks() {
		if err := d.Validate(&cfg); err != nil {
			t.Errorf("%s: %v", d.Name, err)
		}
	}
}

// TestTable2Occupancies pins the static-resource occupancies to the
// paper's Table 2 (exact by construction).
func TestTable2Occupancies(t *testing.T) {
	cfg := config.Default()
	want := map[string]struct{ rf, smem, thr, tb float64 }{
		"cp": {0.875, 0.667, 0.667, 1.000},
		"hs": {0.984, 0.219, 0.583, 0.438},
		"dc": {0.562, 0.333, 0.333, 1.000},
		"pf": {0.750, 0.250, 1.000, 0.750},
		"bp": {0.562, 0.133, 1.000, 0.750},
		"bs": {0.750, 0.000, 1.000, 0.375},
		"st": {0.750, 0.000, 1.000, 0.375},
		"3m": {0.562, 0.000, 1.000, 0.750},
		"sv": {0.750, 0.000, 1.000, 1.000},
		"cd": {1.000, 0.000, 0.333, 1.000},
		"s2": {0.500, 0.000, 0.667, 1.000},
		"ks": {0.562, 0.000, 1.000, 0.750},
		"ax": {0.562, 0.000, 1.000, 0.750},
	}
	const tol = 0.02
	for _, d := range Benchmarks() {
		w, ok := want[d.Name]
		if !ok {
			t.Fatalf("unexpected benchmark %q", d.Name)
		}
		occ := d.OccupancyAt(&cfg, d.MaxTBsPerSM(&cfg))
		for _, c := range []struct {
			name       string
			got, want2 float64
		}{
			{"RF", occ.RF, w.rf}, {"SMEM", occ.Smem, w.smem},
			{"Threads", occ.Threads, w.thr}, {"TBs", occ.TBs, w.tb},
		} {
			if diff := c.got - c.want2; diff > tol || diff < -tol {
				t.Errorf("%s %s occupancy = %.3f, want %.3f", d.Name, c.name, c.got, c.want2)
			}
		}
	}
}

// TestTable2InstructionMix pins Cinst/Minst and Req/Minst to Table 2.
func TestTable2InstructionMix(t *testing.T) {
	want := map[string]struct{ cpm, req int }{
		"cp": {4, 2}, "hs": {7, 3}, "dc": {5, 1}, "pf": {6, 2},
		"bp": {6, 2}, "bs": {4, 1}, "st": {4, 1}, "3m": {2, 1},
		"sv": {3, 3}, "cd": {9, 6}, "s2": {2, 2}, "ks": {3, 17}, "ax": {2, 11},
	}
	for _, d := range Benchmarks() {
		w := want[d.Name]
		if d.CPerM != w.cpm {
			t.Errorf("%s CPerM = %d, want %d", d.Name, d.CPerM, w.cpm)
		}
		if d.ReqPerMinst != w.req {
			t.Errorf("%s ReqPerMinst = %d, want %d", d.Name, d.ReqPerMinst, w.req)
		}
	}
}

func TestTable2Classes(t *testing.T) {
	wantM := map[string]bool{"3m": true, "sv": true, "cd": true, "s2": true, "ks": true, "ax": true}
	for _, d := range Benchmarks() {
		if got := d.Class == Memory; got != wantM[d.Name] {
			t.Errorf("%s class = %v, want M=%v", d.Name, d.Class, wantM[d.Name])
		}
	}
}

func TestByName(t *testing.T) {
	d, err := ByName("bp")
	if err != nil || d.Name != "bp" {
		t.Fatalf("ByName(bp) = %v, %v", d.Name, err)
	}
	if _, err := ByName("nope"); err == nil {
		t.Fatal("unknown benchmark must error")
	}
}

func TestNamesOrder(t *testing.T) {
	want := []string{"cp", "hs", "dc", "pf", "bp", "bs", "st", "3m", "sv", "cd", "s2", "ks", "ax"}
	got := Names()
	if len(got) != len(want) {
		t.Fatalf("got %d names", len(got))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("names[%d] = %s, want %s", i, got[i], want[i])
		}
	}
}

func TestNextKindLoopShape(t *testing.T) {
	d, _ := ByName("bp") // CPerM 6
	rng := xrand.New(1)
	pos := 0
	var kind InstrKind
	counts := map[InstrKind]int{}
	for i := 0; i < 7000; i++ {
		kind, pos = d.NextKind(pos, rng)
		counts[kind]++
	}
	mem := counts[MemLoad] + counts[MemStore]
	compute := counts[ALU] + counts[SFU]
	if mem == 0 {
		t.Fatal("no memory instructions generated")
	}
	ratio := float64(compute) / float64(mem)
	if ratio < 5.8 || ratio > 6.2 {
		t.Fatalf("Cinst/Minst = %v, want ~6", ratio)
	}
}

func TestGenLinesCount(t *testing.T) {
	d, _ := ByName("ks")
	rng := xrand.New(2)
	var s AddrState
	d.InitAddrState(&s, 0, 0)
	var buf [32]uint64
	if n := d.GenLines(&s, rng, buf[:], false, 0); n != 17 {
		t.Fatalf("ks GenLines = %d requests, want 17", n)
	}
}

func TestGenLinesStoreAvoidsReadRegions(t *testing.T) {
	d, _ := ByName("dc") // has a hot region
	rng := xrand.New(3)
	var s AddrState
	warm := uint64(512)
	d.InitAddrState(&s, 1, warm)
	lo := d.HotLines + warm
	var buf [32]uint64
	for i := 0; i < 1000; i++ {
		n := d.GenLines(&s, rng, buf[:], true, warm)
		for j := 0; j < n; j++ {
			if buf[j] < lo {
				t.Fatalf("store touched read region line %d (< %d)", buf[j], lo)
			}
		}
	}
}

func TestGenLinesReusePullsFromPreviousInstr(t *testing.T) {
	d := Desc{
		Name: "t", ThreadsPerTB: 32, CPerM: 1, ReqPerMinst: 2,
		DepDist: 1, MaxPendingLoads: 1, FootprintLines: 100,
		ReuseProb: 1.0, ReuseWindow: 4, InstrsPerWarp: 10,
	}
	rng := xrand.New(4)
	var s AddrState
	d.InitAddrState(&s, 0, 0)
	var first, second [32]uint64
	n1 := d.GenLines(&s, rng, first[:], false, 0)
	n2 := d.GenLines(&s, rng, second[:], false, 0)
	// With ReuseProb 1 every request of the second instruction must be a
	// line of the first.
	for i := 0; i < n2; i++ {
		found := false
		for j := 0; j < n1; j++ {
			if second[i] == first[j] {
				found = true
			}
		}
		if !found {
			t.Fatalf("request %d (%d) not drawn from previous instruction %v", i, second[i], first[:n1])
		}
	}
}

func TestWarpRegionsDisjoint(t *testing.T) {
	d, _ := ByName("bs")
	var a, b AddrState
	d.InitAddrState(&a, 0, 0)
	d.InitAddrState(&b, 1, 0)
	if a.Base == b.Base {
		t.Fatal("consecutive warp sequence numbers share a streaming base")
	}
}

func TestEffectiveWarmLines(t *testing.T) {
	d := Desc{WarmL2Frac: 0.5}
	if got := d.EffectiveWarmLines(16384); got != 8192 {
		t.Fatalf("warm = %d, want 8192", got)
	}
	if (&Desc{}).EffectiveWarmLines(16384) != 0 {
		t.Fatal("zero frac must be zero lines")
	}
}

func TestDominantShareMonotone(t *testing.T) {
	cfg := config.Default()
	d, _ := ByName("hs")
	f := func(n uint8) bool {
		a := int(n % 7)
		return d.DominantShare(&cfg, a) <= d.DominantShare(&cfg, a+1)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestValidateRejectsBadDescs(t *testing.T) {
	cfg := config.Default()
	good, _ := ByName("bp")

	d := good
	d.Name = ""
	if d.Validate(&cfg) == nil {
		t.Error("empty name accepted")
	}
	d = good
	d.ThreadsPerTB = 33
	if d.Validate(&cfg) == nil {
		t.Error("non-multiple-of-warp threads accepted")
	}
	d = good
	d.ReqPerMinst = 0
	if d.Validate(&cfg) == nil {
		t.Error("zero requests accepted")
	}
	d = good
	d.MaxPendingLoads = 9
	if d.Validate(&cfg) == nil {
		t.Error("MaxPendingLoads 9 accepted")
	}
	d = good
	d.FootprintLines = 0
	if d.Validate(&cfg) == nil {
		t.Error("zero footprint accepted")
	}
	d = good
	d.InstrsPerWarp = 0
	if d.Validate(&cfg) == nil {
		t.Error("zero lifetime accepted")
	}
	d = good
	d.RegsPerThread = 100000
	if d.Validate(&cfg) == nil {
		t.Error("unschedulable TB accepted")
	}
}

func TestClassString(t *testing.T) {
	if Compute.String() != "C" || Memory.String() != "M" {
		t.Error("class strings wrong")
	}
}

func TestRandomDescAlwaysValid(t *testing.T) {
	cfg := config.Default()
	rng := xrand.New(99)
	for i := 0; i < 500; i++ {
		d := RandomDesc(rng, &cfg)
		if err := d.Validate(&cfg); err != nil {
			t.Fatalf("draw %d: %v (%+v)", i, err, d)
		}
		if d.MaxTBsPerSM(&cfg) < 1 {
			t.Fatalf("draw %d: no TB fits", i)
		}
	}
}
