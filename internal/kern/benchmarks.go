// The thirteen benchmarks of the paper's Table 2, parameterized so that
// the measurable characteristics match the published ones on the Table 1
// baseline architecture:
//
//   - static-resource occupancies (RF_oc, SMEM_oc, Thread_oc, TB_occu)
//     are matched exactly by construction (ThreadsPerTB, RegsPerThread,
//     SmemPerTB are solved from the published fractions);
//   - Cinst/Minst and Req/Minst are matched exactly (they are direct
//     program-shape knobs);
//   - L1D miss rate, L1D reservation-failure rate and the LSU-stall-based
//     C/M classification are matched approximately through the locality
//     knobs (reuse window, hot region, L2-warm region, footprint) —
//     EXPERIMENTS.md records paper-vs-measured values.

package kern

import "fmt"

// Benchmarks returns fresh copies of the thirteen paper benchmarks in
// Table 2 order: cp hs dc pf bp bs st 3m sv cd s2 ks ax.
func Benchmarks() []Desc {
	return []Desc{
		{
			// cutcp: SFU-heavy compute with shared memory and decent
			// L1 locality.
			Name: "cp", Class: Compute,
			ThreadsPerTB: 128, RegsPerThread: 28, SmemPerTB: 4096,
			CPerM: 4, SFUFrac: 0.35, ReqPerMinst: 2, StoreFrac: 0.05,
			DepDist: 4, MaxPendingLoads: 2,
			FootprintLines: 2048, ReuseProb: 0.50, ReuseWindow: 4,
			WarmProb: 0.80, WarmL2Frac: 0.25,
			InstrsPerWarp: 3000,
		},
		{
			// hotspot: compute-bound despite a ~1.0 L1 miss rate; its
			// working set is largely L2-resident.
			Name: "hs", Class: Compute,
			ThreadsPerTB: 256, RegsPerThread: 36, SmemPerTB: 3072,
			CPerM: 7, SFUFrac: 0.10, ReqPerMinst: 3, StoreFrac: 0.08,
			DepDist: 7, MaxPendingLoads: 2,
			FootprintLines: 4096, ReuseProb: 0.02, ReuseWindow: 4,
			WarmProb: 0.97, WarmL2Frac: 0.50,
			InstrsPerWarp: 3000,
		},
		{
			// dxtc: small hot texture block, very high L1 hit rate.
			Name: "dc", Class: Compute,
			ThreadsPerTB: 64, RegsPerThread: 36, SmemPerTB: 2048,
			CPerM: 5, SFUFrac: 0.15, ReqPerMinst: 1, StoreFrac: 0.05,
			DepDist: 5, MaxPendingLoads: 2,
			FootprintLines: 1024, ReuseProb: 0.35, ReuseWindow: 4,
			HotProb: 0.88, HotLines: 24,
			WarmProb: 0.05, WarmL2Frac: 0.125,
			InstrsPerWarp: 3000,
		},
		{
			// pathfinder: streams through an L2-resident row; misses L1
			// almost always but never saturates miss resources.
			Name: "pf", Class: Compute,
			ThreadsPerTB: 256, RegsPerThread: 16, SmemPerTB: 2048,
			CPerM: 6, SFUFrac: 0.05, ReqPerMinst: 2, StoreFrac: 0.08,
			DepDist: 3, MaxPendingLoads: 1,
			FootprintLines: 1024, ReuseProb: 0.01, ReuseWindow: 2,
			WarmProb: 0.975, WarmL2Frac: 0.50,
			InstrsPerWarp: 3000,
		},
		{
			// backprop: moderate locality, mild miss-resource pressure.
			Name: "bp", Class: Compute,
			ThreadsPerTB: 256, RegsPerThread: 12, SmemPerTB: 1088,
			CPerM: 6, SFUFrac: 0.10, ReqPerMinst: 2, StoreFrac: 0.10,
			DepDist: 4, MaxPendingLoads: 2,
			FootprintLines: 2048, ReuseProb: 0.20, ReuseWindow: 4,
			WarmProb: 0.92, WarmL2Frac: 0.375,
			InstrsPerWarp: 3000,
		},
		{
			// bfs: fully streaming, L2-resident frontier; no rsfail.
			Name: "bs", Class: Compute,
			ThreadsPerTB: 512, RegsPerThread: 16, SmemPerTB: 0,
			CPerM: 4, SFUFrac: 0.05, ReqPerMinst: 1, StoreFrac: 0.05,
			DepDist: 4, MaxPendingLoads: 1,
			FootprintLines: 2048, ReuseProb: 0, ReuseWindow: 0,
			WarmProb: 0.97, WarmL2Frac: 0.50,
			InstrsPerWarp: 3000,
		},
		{
			// stencil: halo reuse in L1, larger L2 spill.
			Name: "st", Class: Compute,
			ThreadsPerTB: 512, RegsPerThread: 16, SmemPerTB: 0,
			CPerM: 4, SFUFrac: 0.05, ReqPerMinst: 1, StoreFrac: 0.10,
			DepDist: 4, MaxPendingLoads: 2,
			FootprintLines: 2048, ReuseProb: 0.30, ReuseWindow: 4,
			WarmProb: 0.88, WarmL2Frac: 0.45,
			InstrsPerWarp: 3000,
		},
		{
			// 3mm: dense matrix chains, DRAM-bound with some row reuse.
			Name: "3m", Class: Memory,
			ThreadsPerTB: 256, RegsPerThread: 12, SmemPerTB: 0,
			CPerM: 2, SFUFrac: 0.02, ReqPerMinst: 1, StoreFrac: 0.05,
			DepDist: 11, MaxPendingLoads: 4,
			FootprintLines: 4096, ReuseProb: 0.45, ReuseWindow: 4,
			WarmProb: 0.20, WarmL2Frac: 0.50,
			InstrsPerWarp: 3000,
		},
		{
			// spmv: irregular sparse accesses, heavy miss traffic.
			Name: "sv", Class: Memory,
			ThreadsPerTB: 192, RegsPerThread: 16, SmemPerTB: 0,
			CPerM: 3, SFUFrac: 0.02, ReqPerMinst: 3, StoreFrac: 0.05,
			DepDist: 15, MaxPendingLoads: 4,
			FootprintLines: 4096, ReuseProb: 0.30, ReuseWindow: 4,
			WarmProb: 0.20, WarmL2Frac: 0.50,
			InstrsPerWarp: 3000,
		},
		{
			// cfd: very large working set, six requests per memory
			// instruction; memory-bound despite nine compute per mem.
			Name: "cd", Class: Memory,
			ThreadsPerTB: 64, RegsPerThread: 64, SmemPerTB: 0,
			CPerM: 9, SFUFrac: 0.05, ReqPerMinst: 6, StoreFrac: 0.10,
			DepDist: 39, MaxPendingLoads: 4,
			FootprintLines: 8192, ReuseProb: 0.04, ReuseWindow: 4,
			WarmProb: 0.10, WarmL2Frac: 0.50,
			InstrsPerWarp: 3000,
		},
		{
			// sad2: short loop body, streaming frame data.
			Name: "s2", Class: Memory,
			ThreadsPerTB: 128, RegsPerThread: 16, SmemPerTB: 0,
			CPerM: 2, SFUFrac: 0.02, ReqPerMinst: 2, StoreFrac: 0.10,
			DepDist: 11, MaxPendingLoads: 4,
			FootprintLines: 4096, ReuseProb: 0.14, ReuseWindow: 4,
			WarmProb: 0.15, WarmL2Frac: 0.50,
			InstrsPerWarp: 3000,
		},
		{
			// kmeans: 17 uncoalesced requests per memory instruction.
			Name: "ks", Class: Memory,
			ThreadsPerTB: 256, RegsPerThread: 12, SmemPerTB: 0,
			CPerM: 3, SFUFrac: 0.02, ReqPerMinst: 17, StoreFrac: 0.05,
			DepDist: 7, MaxPendingLoads: 2,
			FootprintLines: 8192, ReuseProb: 0.35, ReuseWindow: 8,
			Scatter:       true,
			InstrsPerWarp: 3000,
		},
		{
			// ATAX: scattered vector gathers; extreme rsfail pressure.
			Name: "ax", Class: Memory,
			ThreadsPerTB: 256, RegsPerThread: 12, SmemPerTB: 0,
			CPerM: 2, SFUFrac: 0.02, ReqPerMinst: 11, StoreFrac: 0.05,
			DepDist: 23, MaxPendingLoads: 8,
			FootprintLines: 16384, ReuseProb: 0.25, ReuseWindow: 4,
			Scatter:       true,
			InstrsPerWarp: 3000,
		},
	}
}

// ByName returns the benchmark descriptor with the given name.
func ByName(name string) (Desc, error) {
	for _, d := range Benchmarks() {
		if d.Name == name {
			return d, nil
		}
	}
	return Desc{}, fmt.Errorf("kern: unknown benchmark %q", name)
}

// Names returns the benchmark names in Table 2 order.
func Names() []string {
	bs := Benchmarks()
	out := make([]string, len(bs))
	for i, d := range bs {
		out[i] = d.Name
	}
	return out
}
