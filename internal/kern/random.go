// Random kernel descriptors for property-based testing: the simulator
// must stay deterministic, deadlock-free and conservation-correct for
// ANY valid descriptor, not just the thirteen calibrated benchmarks.

package kern

import (
	"fmt"

	"repro/internal/config"
	"repro/internal/xrand"
)

// RandomDesc draws a valid descriptor from rng. The distributions cover
// the corners: tiny and huge TBs, extreme coalescing, all-store-ish
// mixes, every locality mode.
func RandomDesc(rng *xrand.Source, cfg *config.Config) Desc {
	threads := (rng.Intn(16) + 1) * cfg.WarpSize // 32..512
	d := Desc{
		Name:             fmt.Sprintf("rnd%d", rng.Intn(1<<20)),
		ThreadsPerTB:     threads,
		RegsPerThread:    rng.Intn(64) + 1,
		SmemPerTB:        rng.Intn(5) * 4096,
		CPerM:            rng.Intn(12),
		SFUFrac:          rng.Float64() * 0.5,
		SmemPerM:         rng.Intn(4),
		SmemConflictProb: rng.Float64() * 0.5,
		ReqPerMinst:      rng.Intn(31) + 1,
		StoreFrac:        rng.Float64() * 0.5,
		DepDist:          rng.Intn(32),
		MaxPendingLoads:  rng.Intn(8) + 1,
		FootprintLines:   uint64(rng.Intn(16384) + 16),
		ReuseProb:        rng.Float64() * 0.8,
		ReuseWindow:      rng.Intn(9),
		HotProb:          rng.Float64() * 0.5,
		HotLines:         uint64(rng.Intn(64)),
		WarmProb:         rng.Float64(),
		WarmL2Frac:       rng.Float64() * 0.8,
		Scatter:          rng.Bool(0.3),
		InstrsPerWarp:    uint64(rng.Intn(4000) + 50),
	}
	if d.HotLines == 0 {
		d.HotProb = 0
	}
	if d.ReuseWindow == 0 {
		d.ReuseProb = 0
	}
	// Ensure at least one TB fits.
	for d.MaxTBsPerSM(cfg) < 1 {
		switch {
		case d.ThreadsPerTB > cfg.WarpSize:
			d.ThreadsPerTB -= cfg.WarpSize
		case d.RegsPerThread > 1:
			d.RegsPerThread /= 2
		default:
			d.SmemPerTB /= 2
		}
	}
	return d
}
