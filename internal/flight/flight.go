// Package flight provides in-flight call deduplication (a minimal
// generic singleflight): concurrent Do calls with the same key share one
// execution of the function and all receive its result.
//
// The Session profile caches use it so that parallel experiment jobs
// needing the same isolated profile trigger exactly one profiling
// simulation instead of one per worker.
package flight

import "sync"

// call is one in-flight execution.
type call[V any] struct {
	wg  sync.WaitGroup
	val V
	err error
}

// Group deduplicates concurrent calls by key. The zero value is ready to
// use. V is shared between all callers of the same key, so it must be
// safe for concurrent read (immutable results, typically).
type Group[K comparable, V any] struct {
	mu sync.Mutex
	m  map[K]*call[V]
}

// Do executes fn once per key at a time: if another goroutine is already
// running fn for key, Do waits for it and returns its result instead of
// calling fn again. Once the call completes the key is forgotten, so a
// later Do runs fn afresh — callers are expected to consult their own
// cache before invoking Do.
func (g *Group[K, V]) Do(key K, fn func() (V, error)) (V, error) {
	g.mu.Lock()
	if g.m == nil {
		g.m = make(map[K]*call[V])
	}
	if c, ok := g.m[key]; ok {
		g.mu.Unlock()
		c.wg.Wait()
		return c.val, c.err
	}
	c := &call[V]{}
	c.wg.Add(1)
	g.m[key] = c
	g.mu.Unlock()

	c.val, c.err = fn()

	g.mu.Lock()
	delete(g.m, key)
	g.mu.Unlock()
	c.wg.Done()
	return c.val, c.err
}
