package flight

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
)

func TestDoDeduplicatesConcurrentCalls(t *testing.T) {
	var g Group[string, int]
	var calls atomic.Int32
	release := make(chan struct{})

	const n = 16
	var wg sync.WaitGroup
	results := make([]int, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, err := g.Do("k", func() (int, error) {
				calls.Add(1)
				<-release
				return 42, nil
			})
			if err != nil {
				t.Errorf("unexpected error: %v", err)
			}
			results[i] = v
		}(i)
	}
	// Let every goroutine reach Do before the first call completes, so
	// all of them must join the same in-flight execution.
	for calls.Load() == 0 {
	}
	close(release)
	wg.Wait()

	if got := calls.Load(); got != 1 {
		t.Fatalf("fn ran %d times, want 1", got)
	}
	for i, v := range results {
		if v != 42 {
			t.Fatalf("results[%d] = %d, want 42", i, v)
		}
	}
}

func TestDoDistinctKeysRunIndependently(t *testing.T) {
	var g Group[int, int]
	var wg sync.WaitGroup
	var calls atomic.Int32
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, _ := g.Do(i, func() (int, error) {
				calls.Add(1)
				return i * i, nil
			})
			if v != i*i {
				t.Errorf("key %d got %d", i, v)
			}
		}(i)
	}
	wg.Wait()
	if calls.Load() != 8 {
		t.Fatalf("calls = %d, want 8", calls.Load())
	}
}

func TestDoPropagatesErrorToAllWaiters(t *testing.T) {
	var g Group[string, int]
	wantErr := errors.New("boom")
	release := make(chan struct{})
	started := make(chan struct{})

	var wg sync.WaitGroup
	errs := make([]error, 4)
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, errs[0] = g.Do("k", func() (int, error) {
			close(started)
			<-release
			return 0, wantErr
		})
	}()
	<-started
	for i := 1; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = g.Do("k", func() (int, error) { return 0, wantErr })
		}(i)
	}
	close(release)
	wg.Wait()
	for i, err := range errs {
		if !errors.Is(err, wantErr) {
			t.Fatalf("waiter %d got %v, want %v", i, err, wantErr)
		}
	}
}

func TestDoForgetsCompletedKeys(t *testing.T) {
	var g Group[string, int]
	var calls int
	for i := 0; i < 3; i++ {
		v, err := g.Do("k", func() (int, error) {
			calls++
			return calls, nil
		})
		if err != nil || v != i+1 {
			t.Fatalf("call %d: v=%d err=%v", i, v, err)
		}
	}
	if calls != 3 {
		t.Fatalf("sequential calls must each run fn, got %d", calls)
	}
}
