// UCP: utility-based cache partitioning (Qureshi & Patt, MICRO 2006),
// applied to the L1 D-cache per the paper's Section 3.1 study.
//
// Each kernel gets a UMON: a shadow tag directory with the geometry of
// the full cache and an LRU stack-distance hit histogram. The lookahead
// algorithm periodically converts the histograms into a way partition
// that maximizes total marginal utility.

package cache

import "repro/internal/config"

// UMON is a set of per-kernel shadow tag arrays with stack-distance hit
// counters. As in the UCP paper, the monitor observes every access the
// kernel makes as if it owned the whole cache.
type UMON struct {
	ways    int
	sets    int
	setMask uint64
	xor     bool
	// tags[k][set*ways+w], ordered most- to least-recently used per set.
	tags  [][]uint64
	valid [][]bool
	// wayHits[k][d]: hits at stack distance d (0 = MRU).
	wayHits  [][]uint64
	accesses []uint64
}

// NewUMON builds a monitor for numKernels kernels over cfg's geometry.
func NewUMON(cfg config.Cache, numKernels int) *UMON {
	sets := cfg.Sets()
	u := &UMON{
		ways:     cfg.Ways,
		sets:     sets,
		setMask:  uint64(sets - 1),
		xor:      cfg.XORIndex,
		tags:     make([][]uint64, numKernels),
		valid:    make([][]bool, numKernels),
		wayHits:  make([][]uint64, numKernels),
		accesses: make([]uint64, numKernels),
	}
	for k := 0; k < numKernels; k++ {
		u.tags[k] = make([]uint64, sets*cfg.Ways)
		u.valid[k] = make([]bool, sets*cfg.Ways)
		u.wayHits[k] = make([]uint64, cfg.Ways)
	}
	return u
}

func (u *UMON) setIndex(lineAddr uint64) int {
	if !u.xor {
		return int(lineAddr & u.setMask)
	}
	bits := uint(0)
	for 1<<bits < u.sets {
		bits++
	}
	h := lineAddr ^ (lineAddr >> bits) ^ (lineAddr >> (2 * bits))
	return int(h & u.setMask)
}

// Access records one access by kernel k in its shadow directory.
func (u *UMON) Access(k int, lineAddr uint64) {
	if k >= len(u.tags) {
		return
	}
	u.accesses[k]++
	set := u.setIndex(lineAddr)
	base := set * u.ways
	tags := u.tags[k][base : base+u.ways]
	valid := u.valid[k][base : base+u.ways]
	// Search the LRU stack.
	for d := 0; d < u.ways; d++ {
		if valid[d] && tags[d] == lineAddr {
			u.wayHits[k][d]++
			// Move to MRU.
			copy(tags[1:], tags[:d])
			copy(valid[1:], valid[:d])
			tags[0] = lineAddr
			valid[0] = true
			return
		}
	}
	// Miss: insert at MRU, shifting everything down (LRU falls off).
	copy(tags[1:], tags[:u.ways-1])
	copy(valid[1:], valid[:u.ways-1])
	tags[0] = lineAddr
	valid[0] = true
}

// hitsWithWays returns the hits kernel k would have obtained with n ways
// (cumulative stack-distance histogram).
func (u *UMON) hitsWithWays(k, n int) uint64 {
	var h uint64
	for d := 0; d < n && d < u.ways; d++ {
		h += u.wayHits[k][d]
	}
	return h
}

// Lookahead computes a way partition over the monitored kernels using
// the UCP lookahead algorithm: repeatedly grant the block of ways with
// the highest marginal utility per way. Every kernel is guaranteed at
// least minWays. The returned slice sums to the cache associativity.
func (u *UMON) Lookahead(minWays int) []int {
	n := len(u.tags)
	alloc := make([]int, n)
	remaining := u.ways
	if minWays < 1 {
		minWays = 1
	}
	for k := 0; k < n; k++ {
		alloc[k] = minWays
		remaining -= minWays
	}
	if remaining < 0 {
		// More kernels than ways: fall back to as even as possible.
		for k := range alloc {
			alloc[k] = u.ways / n
			if k < u.ways%n {
				alloc[k]++
			}
			if alloc[k] == 0 {
				alloc[k] = 1
			}
		}
		return alloc
	}
	for remaining > 0 {
		bestK, bestWays := -1, 1
		bestMU := -1.0
		for k := 0; k < n; k++ {
			base := u.hitsWithWays(k, alloc[k])
			for w := 1; w <= remaining; w++ {
				mu := float64(u.hitsWithWays(k, alloc[k]+w)-base) / float64(w)
				if mu > bestMU {
					bestMU, bestK, bestWays = mu, k, w
				}
			}
		}
		if bestK < 0 {
			break
		}
		alloc[bestK] += bestWays
		remaining -= bestWays
	}
	// Distribute any leftover (all-zero utility) evenly.
	for k := 0; remaining > 0; k = (k + 1) % n {
		alloc[k]++
		remaining--
	}
	return alloc
}

// ResetCounters halves the hit counters, aging the histogram between
// repartition intervals (as in the UCP paper's periodic decay).
func (u *UMON) ResetCounters() {
	for k := range u.wayHits {
		for d := range u.wayHits[k] {
			u.wayHits[k][d] /= 2
		}
		u.accesses[k] /= 2
	}
}

// Accesses returns the monitored access count for kernel k.
func (u *UMON) Accesses(k int) uint64 { return u.accesses[k] }
