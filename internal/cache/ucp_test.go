package cache

import (
	"testing"

	"repro/internal/config"
)

func umonCfg() config.Cache {
	return config.Cache{
		SizeBytes: 4 * 4 * 128, LineBytes: 128, Ways: 4,
		MSHRs: 8, MSHRMerge: 4, MissQueue: 4, HitLatency: 1,
		XORIndex: false, WriteBack: false,
	}
}

func TestUMONStackDistances(t *testing.T) {
	u := NewUMON(umonCfg(), 1)
	// Access the same line twice: second access hits at MRU (distance 0).
	u.Access(0, 100)
	u.Access(0, 100)
	if u.wayHits[0][0] != 1 {
		t.Fatalf("MRU hits = %d, want 1", u.wayHits[0][0])
	}
	// A-B-A in one set: A now hits at distance 1.
	u.Access(0, 104) // same set (4 sets, line%4==0)
	u.Access(0, 100)
	if u.wayHits[0][1] != 1 {
		t.Fatalf("distance-1 hits = %d, want 1", u.wayHits[0][1])
	}
}

func TestUMONHitsWithWaysCumulative(t *testing.T) {
	u := NewUMON(umonCfg(), 1)
	u.wayHits[0] = []uint64{10, 5, 2, 1}
	if got := u.hitsWithWays(0, 1); got != 10 {
		t.Fatalf("1 way = %d", got)
	}
	if got := u.hitsWithWays(0, 4); got != 18 {
		t.Fatalf("4 ways = %d", got)
	}
}

func TestLookaheadFavorsHighUtility(t *testing.T) {
	u := NewUMON(umonCfg(), 2)
	// Kernel 0: strong utility up to 3 ways. Kernel 1: cache-averse.
	u.wayHits[0] = []uint64{100, 80, 60, 5}
	u.wayHits[1] = []uint64{3, 2, 1, 0}
	alloc := u.Lookahead(1)
	if len(alloc) != 2 || alloc[0]+alloc[1] != 4 {
		t.Fatalf("allocation %v must sum to associativity 4", alloc)
	}
	if alloc[0] <= alloc[1] {
		t.Fatalf("high-utility kernel got %d ways vs %d", alloc[0], alloc[1])
	}
	if alloc[1] < 1 {
		t.Fatal("every kernel must keep at least one way")
	}
}

func TestLookaheadEqualUtility(t *testing.T) {
	u := NewUMON(umonCfg(), 2)
	u.wayHits[0] = []uint64{10, 10, 10, 10}
	u.wayHits[1] = []uint64{10, 10, 10, 10}
	alloc := u.Lookahead(1)
	if alloc[0]+alloc[1] != 4 {
		t.Fatalf("bad total: %v", alloc)
	}
	if alloc[0] < 1 || alloc[1] < 1 {
		t.Fatalf("min ways violated: %v", alloc)
	}
}

func TestLookaheadZeroUtility(t *testing.T) {
	u := NewUMON(umonCfg(), 2)
	alloc := u.Lookahead(1)
	if alloc[0]+alloc[1] != 4 {
		t.Fatalf("zero-utility allocation %v must still sum to 4", alloc)
	}
}

func TestResetCountersHalves(t *testing.T) {
	u := NewUMON(umonCfg(), 1)
	u.wayHits[0][0] = 100
	u.accesses[0] = 50
	u.ResetCounters()
	if u.wayHits[0][0] != 50 || u.Accesses(0) != 25 {
		t.Fatal("ResetCounters must halve counters")
	}
}

func TestAttachUMONObservesAccesses(t *testing.T) {
	c := New(umonCfg(), 2)
	u := c.AttachUMON()
	c.Access(load(0, 1))
	c.Access(load(0, 1))
	if u.Accesses(0) != 2 {
		t.Fatalf("UMON observed %d accesses, want 2", u.Accesses(0))
	}
	if c.UMONRef() != u {
		t.Fatal("UMONRef must return the attached monitor")
	}
}
