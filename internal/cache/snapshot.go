// Snapshot/restore for caches and UMONs. A snapshot deep-copies every
// piece of mutable state — lines, MSHR entries with their merged target
// requests, the miss and writeback queues, partition/bypass policy and
// statistics — through the machine-wide mem.Cloner so cross-component
// request aliasing survives, and never references pooled storage
// (copy-on-snapshot: releasing the originals cannot poison a snapshot).

package cache

import (
	"fmt"
	"slices"
	"unsafe"

	"repro/internal/mem"
)

// mshrSnapshot is one captured MSHR entry.
type mshrSnapshot struct {
	lineAddr uint64
	set, way int
	isStore  bool
	targets  []*mem.Request
}

// Snapshot is the captured state of one Cache. It is immutable once
// taken; Restore deep-copies out of it, so one snapshot can seed many
// caches.
type Snapshot struct {
	lines    []line
	mshr     []mshrSnapshot
	mshrFree int
	missQ    []*mem.Request
	wbQ      []*mem.Request
	lruClock uint64
	quota    []int
	bypass   []bool
	stats    []KernelStats
	umon     *umonSnapshot
}

type umonSnapshot struct {
	tags     [][]uint64
	valid    [][]bool
	wayHits  [][]uint64
	accesses []uint64
}

// Snapshot captures the cache's full state. cl must be the snapshot
// operation's machine-wide cloner.
func (c *Cache) Snapshot(cl *mem.Cloner) *Snapshot {
	sn := &Snapshot{
		lines:    append([]line(nil), c.lines...),
		mshrFree: c.mshrFree,
		missQ:    c.missQ.Snapshot(cl.Request),
		wbQ:      c.wbQ.Snapshot(cl.Request),
		lruClock: c.lruClock,
		quota:    append([]int(nil), c.quota...),
		bypass:   append([]bool(nil), c.bypass...),
		stats:    append([]KernelStats(nil), c.Stats...),
	}
	// Iterate the MSHR map in sorted line order: map order is random
	// per process, and two identical runs must produce byte-identical
	// encoded snapshots (checkpoint digests are compared across worker
	// configurations and across resumed runs).
	addrs := make([]uint64, 0, len(c.mshrMap))
	for a := range c.mshrMap {
		addrs = append(addrs, a)
	}
	slices.Sort(addrs)
	for _, a := range addrs {
		e := c.mshrMap[a]
		ms := mshrSnapshot{lineAddr: e.lineAddr, set: e.set, way: e.way, isStore: e.isStore}
		for _, t := range e.targets {
			ms.targets = append(ms.targets, cl.Request(t))
		}
		sn.mshr = append(sn.mshr, ms)
	}
	if c.umon != nil {
		sn.umon = c.umon.snapshot()
	}
	return sn
}

// Restore overwrites the cache's state from sn, deep-copying through cl
// (the restore operation's machine-wide cloner) so the cache never
// shares storage with the snapshot or with other restored caches. The
// cache must have the geometry the snapshot was taken from.
func (c *Cache) Restore(sn *Snapshot, cl *mem.Cloner) error {
	if len(sn.lines) != len(c.lines) {
		return fmt.Errorf("cache: restore: snapshot has %d lines, cache has %d (geometry mismatch)",
			len(sn.lines), len(c.lines))
	}
	if len(sn.stats) != c.numKernels {
		return fmt.Errorf("cache: restore: snapshot has %d kernel slots, cache has %d",
			len(sn.stats), c.numKernels)
	}
	copy(c.lines, sn.lines)
	c.mshrMap = make(map[uint64]*mshrEntry, len(sn.mshr))
	c.entryFree = nil
	for _, ms := range sn.mshr {
		e := &mshrEntry{lineAddr: ms.lineAddr, set: ms.set, way: ms.way, isStore: ms.isStore}
		for _, t := range ms.targets {
			e.targets = append(e.targets, cl.Request(t))
		}
		c.mshrMap[ms.lineAddr] = e
	}
	c.mshrFree = sn.mshrFree
	c.missQ.Restore(sn.missQ, cl.Request)
	c.wbQ.Restore(sn.wbQ, cl.Request)
	c.lruClock = sn.lruClock
	c.quota = append([]int(nil), sn.quota...)
	if sn.quota == nil {
		c.quota = nil
	}
	c.bypass = append([]bool(nil), sn.bypass...)
	if sn.bypass == nil {
		c.bypass = nil
	}
	copy(c.Stats, sn.stats)
	if sn.umon != nil {
		if c.umon == nil {
			c.AttachUMON()
		}
		c.umon.restore(sn.umon)
	} else {
		c.umon = nil
	}
	return nil
}

// PendingRequests returns how many requests the cache's queues and MSHR
// targets currently hold (snapshot-footprint accounting).
func (c *Cache) PendingRequests() int {
	n := c.missQ.Len() + c.wbQ.Len()
	for _, e := range c.mshrMap {
		n += len(e.targets)
	}
	return n
}

// Bytes estimates the snapshot's memory footprint (line array, MSHR
// entries, queue pointer slots, UMON shadow tags). Cloned requests are
// counted once at the GPU level, so pointer slots count 8 bytes here.
func (sn *Snapshot) Bytes() int64 {
	total := int64(len(sn.lines)) * int64(unsafe.Sizeof(line{}))
	for _, ms := range sn.mshr {
		total += int64(unsafe.Sizeof(mshrSnapshot{})) + int64(len(ms.targets))*8
	}
	total += int64(len(sn.missQ)+len(sn.wbQ)) * 8
	total += int64(len(sn.quota))*8 + int64(len(sn.bypass))
	total += int64(len(sn.stats)) * int64(unsafe.Sizeof(KernelStats{}))
	if sn.umon != nil {
		for k := range sn.umon.tags {
			total += int64(len(sn.umon.tags[k]))*8 + int64(len(sn.umon.valid[k])) +
				int64(len(sn.umon.wayHits[k]))*8
		}
		total += int64(len(sn.umon.accesses)) * 8
	}
	return total
}

func (u *UMON) snapshot() *umonSnapshot {
	sn := &umonSnapshot{accesses: append([]uint64(nil), u.accesses...)}
	for k := range u.tags {
		sn.tags = append(sn.tags, append([]uint64(nil), u.tags[k]...))
		sn.valid = append(sn.valid, append([]bool(nil), u.valid[k]...))
		sn.wayHits = append(sn.wayHits, append([]uint64(nil), u.wayHits[k]...))
	}
	return sn
}

func (u *UMON) restore(sn *umonSnapshot) {
	for k := range u.tags {
		copy(u.tags[k], sn.tags[k])
		copy(u.valid[k], sn.valid[k])
		copy(u.wayHits[k], sn.wayHits[k])
	}
	copy(u.accesses, sn.accesses)
}
