// Package cache implements the set-associative caches of the simulated
// GPU: the per-SM L1 data cache (write-evict / write-no-allocate) and the
// L2 partitions (write-back / write-allocate), with xor set indexing, LRU
// replacement, allocate-on-miss line reservation, MSHRs with merging and
// a miss queue.
//
// The package models the paper's central failure mode precisely: a miss
// needs an MSHR, a miss-queue entry and an allocatable (non-reserved)
// line; if any is unavailable, the access suffers a *reservation failure*
// and the memory pipeline stalls. Reservation failures are counted per
// kernel and per cause.
//
// It also implements UCP (utility-based cache partitioning) for the
// paper's Section 3.1 study: per-kernel UMON shadow tags and the
// lookahead partitioning algorithm, with way-quota enforcement during
// victim selection.
package cache

import (
	"fmt"

	"repro/internal/config"
	"repro/internal/mem"
	"repro/internal/ring"
)

// Result classifies the outcome of an Access.
type Result int

const (
	// Hit: data present; caller schedules completion after HitLatency.
	Hit Result = iota
	// HitPending: miss merged into an existing MSHR entry; the request
	// completes when the pending fill arrives.
	HitPending
	// Miss: MSHR and line reserved, fetch enqueued to the lower level;
	// the request completes when the fill arrives.
	Miss
	// Forwarded: the request was passed through to the lower level with
	// no local allocation (write-evict/write-no-allocate stores). The
	// request is complete from this cache's point of view.
	Forwarded
	// Bypassed: a load miss sent below without allocating (per-kernel
	// cache bypassing, Section 4.5). The original request travels down
	// and its response completes the instruction directly.
	Bypassed
	// ResFailMSHR, ResFailMissQueue, ResFailLine: reservation failures.
	// The access did not take place; the caller must retry and the
	// memory pipeline is considered stalled.
	ResFailMSHR
	ResFailMissQueue
	ResFailLine
)

// Failed reports whether r is any reservation-failure result.
func (r Result) Failed() bool { return r >= ResFailMSHR }

func (r Result) String() string {
	switch r {
	case Hit:
		return "hit"
	case HitPending:
		return "hit-pending"
	case Miss:
		return "miss"
	case Forwarded:
		return "forwarded"
	case Bypassed:
		return "bypassed"
	case ResFailMSHR:
		return "rsfail-mshr"
	case ResFailMissQueue:
		return "rsfail-missq"
	case ResFailLine:
		return "rsfail-line"
	default:
		return fmt.Sprintf("Result(%d)", int(r))
	}
}

type line struct {
	tag      uint64
	valid    bool
	reserved bool // allocated for an outstanding miss
	dirty    bool
	owner    int8 // kernel slot that allocated the line
	lru      uint64
}

type mshrEntry struct {
	lineAddr uint64
	targets  []*mem.Request
	set, way int
	isStore  bool       // WBWA store-miss entry: fill marks dirty, no response expected upward
	next     *mshrEntry // free-list link (entries are recycled across fills)
}

// KernelStats aggregates per-kernel cache statistics.
type KernelStats struct {
	Accesses   uint64 // successful probes (hit + merged + miss + forwarded)
	Hits       uint64
	Misses     uint64 // misses + merges (both count against miss rate)
	Merged     uint64
	Bypassed   uint64 // load misses sent below without allocation
	RsFail     uint64 // failed access attempts
	RsFailMSHR uint64
	RsFailMQ   uint64
	RsFailLine uint64
}

// MissRate returns the fraction of accesses that required a new line
// fetch. Requests merged into a pending MSHR entry (GPGPU-Sim's
// "hit_reserved") count as hits: their data arrives with the in-flight
// fill and they consume no new miss resources.
func (s KernelStats) MissRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Misses-s.Merged) / float64(s.Accesses)
}

// RsFailRate returns reservation failures per successful access, the
// paper's "l1d_rsfail_rate".
func (s KernelStats) RsFailRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.RsFail) / float64(s.Accesses)
}

// Cache is one cache instance.
type Cache struct {
	cfg     config.Cache
	sets    int
	setMask uint64
	lines   []line // sets*ways, row-major by set

	mshrMap  map[uint64]*mshrEntry
	mshrFree int
	// entryFree recycles mshrEntry records (and their targets storage)
	// across fills, keeping MSHR turnover allocation-free.
	entryFree *mshrEntry

	missQ    ring.Ring[*mem.Request] // pending fetch/forward requests toward the lower level
	missQCap int

	// Writeback queue for dirty evictions (write-back caches). Drained
	// via PopWriteback; if full, allocation fails with ResFailLine.
	wbQ    ring.Ring[*mem.Request]
	wbQCap int

	// Pool, when non-nil, supplies the fetch and writeback requests this
	// cache creates and receives the MSHR-target requests it retires.
	// The owner (SM for an L1, the GPU for an L2 partition) sets it; nil
	// falls back to plain allocation.
	Pool *mem.Pool

	lruClock uint64

	// UCP way partition: quota[k] = ways kernel k may occupy per set.
	// nil means unpartitioned.
	quota []int

	// bypass[k]: kernel k's load misses skip allocation and go below
	// (Section 4.5's cache bypassing).
	bypass []bool

	umon *UMON

	numKernels int
	Stats      []KernelStats // indexed by kernel slot
	// TotalRsFailCycles counts cycles in which at least one access
	// attempt failed (set by the owner via the returned Result).
}

// New constructs a cache from cfg for up to numKernels kernel slots.
func New(cfg config.Cache, numKernels int) *Cache {
	sets := cfg.Sets()
	c := &Cache{
		cfg:        cfg,
		sets:       sets,
		setMask:    uint64(sets - 1),
		lines:      make([]line, sets*cfg.Ways),
		mshrMap:    make(map[uint64]*mshrEntry, cfg.MSHRs),
		mshrFree:   cfg.MSHRs,
		missQCap:   cfg.MissQueue,
		wbQCap:     8,
		numKernels: numKernels,
		Stats:      make([]KernelStats, numKernels),
	}
	return c
}

// setIndex maps a line address to a set, with optional xor folding of
// higher address bits (the "xor-indexing" of Table 1), which spreads
// power-of-two strides across sets.
func (c *Cache) setIndex(lineAddr uint64) int {
	if !c.cfg.XORIndex {
		return int(lineAddr & c.setMask)
	}
	h := lineAddr
	bits := uint(0)
	for 1<<bits < c.sets {
		bits++
	}
	h ^= lineAddr >> bits
	h ^= lineAddr >> (2 * bits)
	return int(h & c.setMask)
}

// probe looks up lineAddr; it returns the way index or -1.
func (c *Cache) probe(set int, lineAddr uint64) int {
	base := set * c.cfg.Ways
	for w := 0; w < c.cfg.Ways; w++ {
		ln := &c.lines[base+w]
		if ln.valid && ln.tag == lineAddr {
			return w
		}
	}
	return -1
}

// victim selects a replaceable way in set for kernel k, honouring the UCP
// way quota when partitioning is enabled. It returns -1 when every line
// in the set is reserved (or quota enforcement leaves no candidate).
func (c *Cache) victim(set int, k int) int {
	base := set * c.cfg.Ways
	// Invalid line first.
	for w := 0; w < c.cfg.Ways; w++ {
		if !c.lines[base+w].valid && !c.lines[base+w].reserved {
			return w
		}
	}
	if c.quota == nil || k >= len(c.quota) {
		return c.lruVictim(set, -1)
	}
	// UCP enforcement: if kernel k is within its quota, evict from a
	// kernel that exceeds its quota; otherwise evict k's own LRU line.
	occ := make([]int, c.numKernels)
	for w := 0; w < c.cfg.Ways; w++ {
		ln := &c.lines[base+w]
		if ln.valid || ln.reserved {
			if int(ln.owner) < len(occ) {
				occ[ln.owner]++
			}
		}
	}
	if occ[k] >= c.quota[k] {
		if w := c.lruVictim(set, k); w >= 0 {
			return w
		}
		return c.lruVictim(set, -1)
	}
	// Find the LRU line among over-quota owners.
	best, bestLRU := -1, ^uint64(0)
	for w := 0; w < c.cfg.Ways; w++ {
		ln := &c.lines[base+w]
		if ln.reserved {
			continue
		}
		o := int(ln.owner)
		if o < len(occ) && occ[o] > c.quota[o] && ln.lru < bestLRU {
			best, bestLRU = w, ln.lru
		}
	}
	if best >= 0 {
		return best
	}
	return c.lruVictim(set, -1)
}

// lruVictim returns the LRU non-reserved way, optionally restricted to
// lines owned by kernel k (k < 0 means any owner), or -1.
func (c *Cache) lruVictim(set int, k int) int {
	base := set * c.cfg.Ways
	best, bestLRU := -1, ^uint64(0)
	for w := 0; w < c.cfg.Ways; w++ {
		ln := &c.lines[base+w]
		if ln.reserved {
			continue
		}
		if k >= 0 && int(ln.owner) != k {
			continue
		}
		if ln.lru < bestLRU {
			best, bestLRU = w, ln.lru
		}
	}
	return best
}

// Access performs one cache access. On reservation failure the cache
// state is unchanged and the caller must retry.
func (c *Cache) Access(req *mem.Request) Result {
	k := req.Kernel
	st := &c.Stats[k]
	set := c.setIndex(req.LineAddr)

	if c.umon != nil {
		c.umon.Access(k, req.LineAddr)
	}

	if w := c.probe(set, req.LineAddr); w >= 0 {
		ln := &c.lines[set*c.cfg.Ways+w]
		if ln.reserved {
			// Line is being fetched: merge into the MSHR entry.
			return c.merge(req, st)
		}
		if req.Kind == mem.Store && !c.cfg.WriteBack {
			// Write-evict: invalidate on write hit and forward the
			// store to the lower level.
			if c.missQ.Len() >= c.missQCap {
				st.RsFail++
				st.RsFailMQ++
				return ResFailMissQueue
			}
			ln.valid = false
			c.missQ.Push(req)
			st.Accesses++
			st.Hits++
			return Forwarded
		}
		c.lruClock++
		ln.lru = c.lruClock
		if req.Kind == mem.Store {
			ln.dirty = true
		}
		st.Accesses++
		st.Hits++
		return Hit
	}

	// Miss path.
	if req.Kind == mem.Store && !c.cfg.WriteBack {
		// Write-no-allocate: forward the store.
		if c.missQ.Len() >= c.missQCap {
			st.RsFail++
			st.RsFailMQ++
			return ResFailMissQueue
		}
		c.missQ.Push(req)
		st.Accesses++
		st.Misses++
		return Forwarded
	}

	if e, ok := c.mshrMap[req.LineAddr]; ok {
		_ = e
		return c.merge(req, st)
	}

	if k < len(c.bypass) && c.bypass[k] && req.Kind == mem.Load {
		// Bypass: ship the original request below; its response will
		// complete the instruction without filling this cache.
		if c.missQ.Len() >= c.missQCap {
			st.RsFail++
			st.RsFailMQ++
			return ResFailMissQueue
		}
		c.missQ.Push(req)
		st.Accesses++
		st.Misses++
		st.Bypassed++
		return Bypassed
	}

	if req.Kind == mem.Store && c.cfg.WriteBack {
		// Write-validate: a coalesced store covers the whole line, so
		// allocate it dirty without fetching from below. Only the
		// eventual writeback reaches the lower level.
		w := c.victim(set, k)
		if w < 0 {
			st.RsFail++
			st.RsFailLine++
			return ResFailLine
		}
		ln := &c.lines[set*c.cfg.Ways+w]
		if res := c.evictForAlloc(ln, req.SM, st); res != Hit {
			return res
		}
		c.lruClock++
		*ln = line{tag: req.LineAddr, valid: true, dirty: true, owner: int8(k), lru: c.lruClock}
		st.Accesses++
		st.Misses++
		return Hit
	}

	// New miss: need MSHR + miss-queue slot + allocatable line.
	if c.mshrFree == 0 {
		st.RsFail++
		st.RsFailMSHR++
		return ResFailMSHR
	}
	if c.missQ.Len() >= c.missQCap {
		st.RsFail++
		st.RsFailMQ++
		return ResFailMissQueue
	}
	w := c.victim(set, k)
	if w < 0 {
		st.RsFail++
		st.RsFailLine++
		return ResFailLine
	}
	ln := &c.lines[set*c.cfg.Ways+w]
	if res := c.evictForAlloc(ln, req.SM, st); res != Hit {
		return res
	}
	// Reserve the line for the incoming fill.
	c.lruClock++
	*ln = line{tag: req.LineAddr, valid: false, reserved: true, owner: int8(k), lru: c.lruClock}

	e := c.newEntry()
	e.lineAddr, e.set, e.way, e.isStore = req.LineAddr, set, w, req.Kind == mem.Store
	e.targets = append(e.targets, req)
	c.mshrMap[req.LineAddr] = e
	c.mshrFree--

	// The fetch sent below is a load for the full line regardless of the
	// triggering request's kind (WBWA store misses fetch-then-merge).
	fetch := c.Pool.Request()
	fetch.LineAddr = req.LineAddr
	fetch.Kind = mem.Load
	fetch.Kernel = k
	fetch.SM = req.SM
	fetch.Warp = req.Warp
	c.missQ.Push(fetch)
	st.Accesses++
	st.Misses++
	return Miss
}

// evictForAlloc queues the writeback of a dirty victim. It returns Hit
// on success or a reservation-failure result when the writeback queue is
// full (the allocation must be retried).
func (c *Cache) evictForAlloc(ln *line, smID int, st *KernelStats) Result {
	if ln.valid && ln.dirty && c.cfg.WriteBack {
		if c.wbQ.Len() >= c.wbQCap {
			st.RsFail++
			st.RsFailLine++
			return ResFailLine
		}
		wb := c.Pool.Request()
		wb.LineAddr = ln.tag
		wb.Kind = mem.Store
		wb.Kernel = int(ln.owner)
		wb.SM = smID
		c.wbQ.Push(wb)
	}
	return Hit
}

func (c *Cache) merge(req *mem.Request, st *KernelStats) Result {
	e, ok := c.mshrMap[req.LineAddr]
	if !ok {
		// A reserved line without an MSHR entry cannot happen by
		// construction; treat as MSHR failure defensively.
		st.RsFail++
		st.RsFailMSHR++
		return ResFailMSHR
	}
	if len(e.targets) >= c.cfg.MSHRMerge {
		st.RsFail++
		st.RsFailMSHR++
		return ResFailMSHR
	}
	e.targets = append(e.targets, req)
	st.Accesses++
	st.Misses++
	st.Merged++
	return HitPending
}

// PopMiss removes and returns the oldest pending fetch/forward request,
// or nil when the miss queue is empty.
func (c *Cache) PopMiss() *mem.Request {
	if r, ok := c.missQ.TryPop(); ok {
		return r
	}
	return nil
}

// PeekMiss returns the oldest pending request without removing it.
func (c *Cache) PeekMiss() *mem.Request {
	if c.missQ.Empty() {
		return nil
	}
	return c.missQ.Peek()
}

// PopWriteback removes and returns the oldest dirty-eviction writeback.
func (c *Cache) PopWriteback() *mem.Request {
	if r, ok := c.wbQ.TryPop(); ok {
		return r
	}
	return nil
}

// Fill delivers the line for lineAddr, validating the reserved line,
// releasing the MSHR entry and returning the merged target requests so
// the owner can complete them. Fill for an unknown address returns nil
// (e.g. a line invalidated by an intervening write-evict).
func (c *Cache) Fill(lineAddr uint64) []*mem.Request {
	e, ok := c.mshrMap[lineAddr]
	if !ok {
		return nil
	}
	delete(c.mshrMap, lineAddr)
	c.mshrFree++
	ln := &c.lines[e.set*c.cfg.Ways+e.way]
	if ln.reserved && ln.tag == lineAddr {
		ln.reserved = false
		ln.valid = true
		ln.dirty = e.isStore && c.cfg.WriteBack
		c.lruClock++
		ln.lru = c.lruClock
	}
	// WBWA: merged stores dirty the line.
	if c.cfg.WriteBack {
		for _, t := range e.targets {
			if t.Kind == mem.Store {
				ln.dirty = true
			}
		}
	}
	targets := e.targets
	c.freeEntry(e)
	return targets
}

// newEntry takes an mshrEntry from the free list (or allocates one).
// Its targets slice is empty but keeps prior capacity.
func (c *Cache) newEntry() *mshrEntry {
	e := c.entryFree
	if e == nil {
		return &mshrEntry{}
	}
	c.entryFree = e.next
	e.next = nil
	return e
}

// freeEntry recycles an mshrEntry after its fill. The targets returned
// to the caller stay valid until the next miss allocates an entry, by
// which point the owner has retired them (fills are consumed in the
// same cycle they are delivered).
func (c *Cache) freeEntry(e *mshrEntry) {
	// Truncate without zeroing: the returned slice aliases this storage
	// and the caller is still consuming it. Stale pointers beyond the
	// next entry's length are overwritten by its appends.
	e.targets = e.targets[:0]
	e.next = c.entryFree
	c.entryFree = e
}

// Contains reports whether lineAddr is resident and valid, without
// touching replacement state.
func (c *Cache) Contains(lineAddr uint64) bool {
	set := c.setIndex(lineAddr)
	w := c.probe(set, lineAddr)
	if w < 0 {
		return false
	}
	ln := &c.lines[set*c.cfg.Ways+w]
	return ln.valid && !ln.reserved
}

// MSHRInUse returns the number of occupied MSHR entries.
func (c *Cache) MSHRInUse() int { return c.cfg.MSHRs - c.mshrFree }

// MissQueueLen returns the current miss queue occupancy.
func (c *Cache) MissQueueLen() int { return c.missQ.Len() }

// SetPartition installs a per-kernel way quota (UCP enforcement). Pass
// nil to disable partitioning.
func (c *Cache) SetPartition(quota []int) {
	if quota == nil {
		c.quota = nil
		return
	}
	q := make([]int, len(quota))
	copy(q, quota)
	c.quota = q
}

// Partition returns the active way quota, or nil.
func (c *Cache) Partition() []int { return c.quota }

// SetBypass installs the per-kernel L1 bypass policy (nil disables).
func (c *Cache) SetBypass(bypass []bool) {
	if bypass == nil {
		c.bypass = nil
		return
	}
	c.bypass = append([]bool(nil), bypass...)
}

// AttachUMON enables utility monitoring for UCP.
func (c *Cache) AttachUMON() *UMON {
	c.umon = NewUMON(c.cfg, c.numKernels)
	return c.umon
}

// UMONRef returns the attached utility monitor, or nil.
func (c *Cache) UMONRef() *UMON { return c.umon }

// ResetStats zeroes the per-kernel statistics (used after warmup).
func (c *Cache) ResetStats() {
	for i := range c.Stats {
		c.Stats[i] = KernelStats{}
	}
}
