package cache

import (
	"testing"
	"testing/quick"

	"repro/internal/config"
	"repro/internal/mem"
)

// smallL1 is a tiny write-evict cache for focused tests: 4 sets, 2 ways,
// 4 MSHRs with 2-deep merging, 2-deep miss queue, no xor indexing so set
// mapping is predictable.
func smallL1() *Cache {
	return New(config.Cache{
		SizeBytes:  4 * 2 * 128,
		LineBytes:  128,
		Ways:       2,
		MSHRs:      4,
		MSHRMerge:  2,
		MissQueue:  2,
		HitLatency: 1,
		XORIndex:   false,
		WriteBack:  false,
	}, 2)
}

func smallL2() *Cache {
	return New(config.Cache{
		SizeBytes:  4 * 2 * 128,
		LineBytes:  128,
		Ways:       2,
		MSHRs:      4,
		MSHRMerge:  2,
		MissQueue:  2,
		HitLatency: 1,
		XORIndex:   false,
		WriteBack:  true,
	}, 2)
}

func load(k int, line uint64) *mem.Request {
	return &mem.Request{LineAddr: line, Kind: mem.Load, Kernel: k, Instr: &mem.InstrToken{Kernel: k, Total: 1}}
}

func store(k int, line uint64) *mem.Request {
	return &mem.Request{LineAddr: line, Kind: mem.Store, Kernel: k, Instr: &mem.InstrToken{Kernel: k, Total: 1, Kind: mem.Store}}
}

func TestColdMissThenHit(t *testing.T) {
	c := smallL1()
	r := load(0, 100)
	if res := c.Access(r); res != Miss {
		t.Fatalf("cold access = %v, want Miss", res)
	}
	// The fetch goes below and comes back.
	fetch := c.PopMiss()
	if fetch == nil || fetch.LineAddr != 100 {
		t.Fatal("miss queue should hold the fetch for line 100")
	}
	targets := c.Fill(100)
	if len(targets) != 1 || targets[0] != r {
		t.Fatalf("Fill returned %d targets", len(targets))
	}
	if res := c.Access(load(0, 100)); res != Hit {
		t.Fatalf("post-fill access = %v, want Hit", res)
	}
	st := c.Stats[0]
	if st.Accesses != 2 || st.Misses != 1 || st.Hits != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestMSHRMerge(t *testing.T) {
	c := smallL1()
	if res := c.Access(load(0, 7)); res != Miss {
		t.Fatal("first access should miss")
	}
	if res := c.Access(load(0, 7)); res != HitPending {
		t.Fatal("second access to pending line should merge")
	}
	// Merge capacity is 2: the third access must fail on the MSHR.
	if res := c.Access(load(0, 7)); res != ResFailMSHR {
		t.Fatal("exceeding merge capacity must be a reservation failure")
	}
	c.PopMiss()
	targets := c.Fill(7)
	if len(targets) != 2 {
		t.Fatalf("fill should complete 2 merged targets, got %d", len(targets))
	}
	if c.Stats[0].Merged != 1 {
		t.Fatalf("Merged = %d, want 1", c.Stats[0].Merged)
	}
}

func TestMissQueueReservationFailure(t *testing.T) {
	c := smallL1()
	// Two misses fill the 2-deep miss queue (not drained).
	if c.Access(load(0, 1)) != Miss || c.Access(load(0, 2)) != Miss {
		t.Fatal("setup misses failed")
	}
	if res := c.Access(load(0, 3)); res != ResFailMissQueue {
		t.Fatalf("third miss = %v, want ResFailMissQueue", res)
	}
	if c.Stats[0].RsFailMQ != 1 {
		t.Fatal("miss-queue failure not counted")
	}
	// Draining the queue clears the failure.
	c.PopMiss()
	if res := c.Access(load(0, 3)); res != Miss {
		t.Fatalf("after drain = %v, want Miss", res)
	}
}

func TestLineReservationFailure(t *testing.T) {
	c := smallL1()
	// Set 0 holds lines 0, 4, 8, ... (4 sets). Two ways: two outstanding
	// misses reserve both; a third miss to the same set cannot allocate.
	if c.Access(load(0, 0)) != Miss {
		t.Fatal("miss 1")
	}
	c.PopMiss()
	if c.Access(load(0, 4)) != Miss {
		t.Fatal("miss 2")
	}
	c.PopMiss()
	if res := c.Access(load(0, 8)); res != ResFailLine {
		t.Fatalf("third miss to full set = %v, want ResFailLine", res)
	}
	// A fill frees the line and the access proceeds.
	c.Fill(0)
	if res := c.Access(load(0, 8)); res != Miss {
		t.Fatalf("after fill = %v, want Miss", res)
	}
}

func TestMSHRExhaustion(t *testing.T) {
	c := smallL1()
	// 4 MSHRs; use lines in different sets, draining the miss queue.
	for i, line := range []uint64{0, 1, 2, 3} {
		if res := c.Access(load(0, line)); res != Miss {
			t.Fatalf("setup miss %d = %v", i, res)
		}
		c.PopMiss()
	}
	if res := c.Access(load(0, 5)); res != ResFailMSHR {
		t.Fatalf("5th outstanding miss = %v, want ResFailMSHR", res)
	}
	if c.MSHRInUse() != 4 {
		t.Fatalf("MSHRInUse = %d", c.MSHRInUse())
	}
	c.Fill(0)
	if c.MSHRInUse() != 3 {
		t.Fatalf("MSHRInUse after fill = %d", c.MSHRInUse())
	}
}

func TestWriteEvictStoreHitInvalidates(t *testing.T) {
	c := smallL1()
	c.Access(load(0, 9))
	c.PopMiss()
	c.Fill(9)
	if c.Access(load(0, 9)) != Hit {
		t.Fatal("line should be resident")
	}
	// Store hit: write-evict forwards the store and invalidates.
	if res := c.Access(store(0, 9)); res != Forwarded {
		t.Fatalf("store hit = %v, want Forwarded", res)
	}
	if w := c.PopMiss(); w == nil || w.Kind != mem.Store {
		t.Fatal("store must be forwarded below")
	}
	if res := c.Access(load(0, 9)); res != Miss {
		t.Fatalf("line must have been evicted by the store, got %v", res)
	}
}

func TestWriteNoAllocateStoreMiss(t *testing.T) {
	c := smallL1()
	if res := c.Access(store(0, 11)); res != Forwarded {
		t.Fatalf("store miss = %v, want Forwarded", res)
	}
	if c.MSHRInUse() != 0 {
		t.Fatal("write-no-allocate must not take an MSHR")
	}
	// When the miss queue is full, the store suffers a reservation
	// failure.
	c.Access(store(0, 12))
	if res := c.Access(store(0, 13)); res != ResFailMissQueue {
		t.Fatalf("store with full miss queue = %v", res)
	}
}

func TestWriteValidateL2(t *testing.T) {
	c := smallL2()
	// A store miss on the write-back L2 allocates the line dirty without
	// fetching (write-validate).
	if res := c.Access(store(0, 20)); res != Hit {
		t.Fatalf("L2 store miss = %v, want Hit (write-validate)", res)
	}
	if c.MSHRInUse() != 0 || c.MissQueueLen() != 0 {
		t.Fatal("write-validate must not use miss resources")
	}
	if res := c.Access(load(0, 20)); res != Hit {
		t.Fatal("written line must be resident")
	}
}

func TestWritebackOnDirtyEviction(t *testing.T) {
	c := smallL2()
	// Dirty line 0 in set 0, then displace it with misses to 4 and 8.
	c.Access(store(0, 0))
	c.Access(load(0, 4))
	c.PopMiss()
	c.Fill(4)
	// Set 0 now holds dirty 0 and clean 4. A miss to 8 evicts LRU (0).
	if res := c.Access(load(0, 8)); res != Miss {
		t.Fatalf("res=%v", res)
	}
	wb := c.PopWriteback()
	if wb == nil || wb.LineAddr != 0 || wb.Kind != mem.Store {
		t.Fatalf("expected writeback of dirty line 0, got %+v", wb)
	}
}

func TestLRUReplacement(t *testing.T) {
	c := smallL1()
	fill := func(line uint64) {
		if res := c.Access(load(0, line)); res != Miss {
			t.Fatalf("line %d: %v", line, res)
		}
		c.PopMiss()
		c.Fill(line)
	}
	fill(0)
	fill(4)
	// Touch 0 so 4 is LRU.
	if c.Access(load(0, 0)) != Hit {
		t.Fatal("expected hit on 0")
	}
	fill(8) // evicts 4
	if res := c.Access(load(0, 0)); res != Hit {
		t.Fatal("0 (MRU) must survive")
	}
	if res := c.Access(load(0, 4)); res == Hit {
		t.Fatal("4 (LRU) must have been evicted")
	}
}

func TestPartitionEnforcement(t *testing.T) {
	c := smallL1()
	c.SetPartition([]int{1, 1}) // one way each in every set
	fill := func(k int, line uint64) {
		res := c.Access(load(k, line))
		if res != Miss {
			t.Fatalf("k%d line %d: %v", k, line, res)
		}
		c.PopMiss()
		c.Fill(line)
	}
	// Kernel 0 fills both ways of set 0 (allowed while kernel 1 absent).
	fill(0, 0)
	fill(0, 4)
	// Kernel 1 misses into set 0: kernel 0 is over quota, so one of its
	// lines must be the victim.
	fill(1, 8)
	kept0 := 0
	if c.Contains(0) {
		kept0++
	}
	if c.Contains(4) {
		kept0++
	}
	if kept0 != 1 {
		t.Fatalf("kernel 0 should retain exactly 1 line in the set, kept %d", kept0)
	}
	if !c.Contains(8) {
		t.Fatal("kernel 1's line must be resident")
	}
}

func TestXORIndexSpreadsStride(t *testing.T) {
	cfg := config.Cache{
		SizeBytes: 32 * 6 * 128, LineBytes: 128, Ways: 6,
		MSHRs: 128, MSHRMerge: 8, MissQueue: 64, HitLatency: 1,
		XORIndex: true, WriteBack: false,
	}
	c := New(cfg, 1)
	// Power-of-two-strided lines (stride = number of sets) all map to
	// one set without xor; with xor they must spread.
	seen := map[int]bool{}
	for i := uint64(0); i < 16; i++ {
		seen[c.setIndex(i*32)] = true
	}
	if len(seen) < 4 {
		t.Fatalf("xor indexing spread 16 strided lines over only %d sets", len(seen))
	}
}

func TestFillUnknownLineIsNil(t *testing.T) {
	c := smallL1()
	if targets := c.Fill(999); targets != nil {
		t.Fatal("fill of unknown line must return nil")
	}
}

func TestResetStats(t *testing.T) {
	c := smallL1()
	c.Access(load(0, 1))
	c.ResetStats()
	if c.Stats[0].Accesses != 0 || c.Stats[0].Misses != 0 {
		t.Fatal("ResetStats did not zero counters")
	}
}

func TestMissRateCountsMergesAsHits(t *testing.T) {
	s := KernelStats{Accesses: 10, Misses: 6, Merged: 2}
	if got := s.MissRate(); got != 0.4 {
		t.Fatalf("MissRate = %v, want 0.4 ((6-2)/10)", got)
	}
}

func TestRsFailRate(t *testing.T) {
	s := KernelStats{Accesses: 4, RsFail: 10}
	if got := s.RsFailRate(); got != 2.5 {
		t.Fatalf("RsFailRate = %v, want 2.5", got)
	}
	var zero KernelStats
	if zero.MissRate() != 0 || zero.RsFailRate() != 0 {
		t.Fatal("zero-access rates must be 0")
	}
}

// TestPropertyNoLostRequests: every load accepted by the cache (Miss or
// HitPending) is eventually returned by exactly one Fill.
func TestPropertyNoLostRequests(t *testing.T) {
	f := func(lines []uint8) bool {
		c := smallL1()
		accepted := map[*mem.Request]bool{}
		pending := map[uint64]bool{}
		for _, ln := range lines {
			r := load(0, uint64(ln%16))
			res := c.Access(r)
			switch res {
			case Miss, HitPending:
				accepted[r] = true
				pending[r.LineAddr] = true
			}
			// Drain and fill aggressively to bound resource pressure.
			c.PopMiss()
		}
		returned := 0
		for line := range pending {
			returned += len(c.Fill(line))
		}
		return returned == len(accepted)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestPropertyStatsConsistent: accesses == hits + misses for any access
// sequence, and failures never mutate cache state visible to stats.
func TestPropertyStatsConsistent(t *testing.T) {
	f := func(ops []uint16) bool {
		c := smallL1()
		for _, op := range ops {
			line := uint64(op % 64)
			if op%5 == 0 {
				c.Access(store(0, line))
			} else {
				c.Access(load(0, line))
			}
			if op%3 == 0 {
				c.PopMiss()
			}
			if op%7 == 0 {
				c.Fill(line)
			}
		}
		st := c.Stats[0]
		return st.Accesses == st.Hits+st.Misses
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestBypassSkipsAllocation(t *testing.T) {
	c := smallL1()
	c.SetBypass([]bool{false, true})
	// Kernel 1 bypasses: its load miss goes below without MSHR/line.
	r := load(1, 50)
	if res := c.Access(r); res != Bypassed {
		t.Fatalf("bypassed kernel's miss = %v, want Bypassed", res)
	}
	if c.MSHRInUse() != 0 {
		t.Fatal("bypass must not allocate an MSHR")
	}
	out := c.PopMiss()
	if out != r {
		t.Fatal("the original request must travel below")
	}
	if c.Stats[1].Bypassed != 1 {
		t.Fatal("bypass not counted")
	}
	// Kernel 0 still allocates normally.
	if res := c.Access(load(0, 51)); res != Miss {
		t.Fatalf("non-bypassed kernel's miss = %v, want Miss", res)
	}
}

func TestBypassStillHitsResidentLines(t *testing.T) {
	c := smallL1()
	// Fill a line for kernel 1 before enabling bypass.
	c.Access(load(1, 60))
	c.PopMiss()
	c.Fill(60)
	c.SetBypass([]bool{false, true})
	if res := c.Access(load(1, 60)); res != Hit {
		t.Fatalf("bypass must not disable hits on resident lines, got %v", res)
	}
}

func TestBypassRespectsMissQueue(t *testing.T) {
	c := smallL1()
	c.SetBypass([]bool{true, false})
	c.Access(load(0, 1))
	c.Access(load(0, 2))
	if res := c.Access(load(0, 3)); res != ResFailMissQueue {
		t.Fatalf("bypass with full miss queue = %v", res)
	}
}

func TestContains(t *testing.T) {
	c := smallL1()
	if c.Contains(5) {
		t.Fatal("empty cache contains nothing")
	}
	c.Access(load(0, 5))
	if c.Contains(5) {
		t.Fatal("reserved (pending) line must not count as resident")
	}
	c.PopMiss()
	c.Fill(5)
	if !c.Contains(5) {
		t.Fatal("filled line must be resident")
	}
}

func TestPeekMissNonDestructive(t *testing.T) {
	c := smallL1()
	c.Access(load(0, 9))
	p1 := c.PeekMiss()
	p2 := c.PeekMiss()
	if p1 == nil || p1 != p2 {
		t.Fatal("PeekMiss must not consume")
	}
	if c.PopMiss() != p1 {
		t.Fatal("PopMiss must return the peeked request")
	}
	if c.PeekMiss() != nil || c.PopMiss() != nil {
		t.Fatal("queue must now be empty")
	}
}

func TestSetPartitionNilDisables(t *testing.T) {
	c := smallL1()
	c.SetPartition([]int{1, 1})
	if c.Partition() == nil {
		t.Fatal("partition not installed")
	}
	c.SetPartition(nil)
	if c.Partition() != nil {
		t.Fatal("nil must disable partitioning")
	}
}

func TestResultStrings(t *testing.T) {
	for r := Hit; r <= ResFailLine; r++ {
		if s := r.String(); s == "" {
			t.Errorf("result %d has no name", r)
		}
	}
	if !ResFailMSHR.Failed() || Hit.Failed() || Bypassed.Failed() {
		t.Fatal("Failed() classification wrong")
	}
}
