package runner

import (
	"reflect"
	"sync/atomic"
	"testing"

	gcke "repro"
)

func testJobs(t *testing.T, s *gcke.Session) []Job {
	t.Helper()
	bp, _ := gcke.Benchmark("bp")
	sv, _ := gcke.Benchmark("sv")
	ks, _ := gcke.Benchmark("ks")
	schemes := []gcke.Scheme{
		{Partition: gcke.PartitionWarpedSlicer},
		{Partition: gcke.PartitionWarpedSlicer, Limiting: gcke.LimitDMIL},
		{Partition: gcke.PartitionSMK, MemIssue: gcke.MemIssueQBMI},
		{Partition: gcke.PartitionWarpedSlicer, Limiting: gcke.LimitStatic, StaticLimits: []int{4, 8}},
	}
	var jobs []Job
	for _, wl := range [][]gcke.Kernel{{bp, sv}, {bp, ks}} {
		for _, sc := range schemes {
			jobs = append(jobs, Job{Session: s, Kernels: wl, Scheme: sc})
		}
	}
	return jobs
}

func testSession(t *testing.T) *gcke.Session {
	t.Helper()
	s := gcke.NewSession(gcke.ScaledConfig(2), 15_000)
	s.ProfileCycles = 10_000
	return s
}

// TestParallelMatchesSerial pins the "parallelism never changes results"
// contract: the same (workload, scheme) grid run twice serially and once
// through the parallel pool must produce identical RunResult stats.
func TestParallelMatchesSerial(t *testing.T) {
	serial1 := New(1).Run(testJobs(t, testSession(t)))
	serial2 := New(1).Run(testJobs(t, testSession(t)))
	parallel := New(8).Run(testJobs(t, testSession(t)))

	if err := FirstErr(serial1); err != nil {
		t.Fatal(err)
	}
	for i := range serial1 {
		if serial2[i].Err != nil || parallel[i].Err != nil {
			t.Fatalf("job %d errors: serial=%v parallel=%v", i, serial2[i].Err, parallel[i].Err)
		}
		a, b, c := serial1[i].Res, serial2[i].Res, parallel[i].Res
		if !reflect.DeepEqual(*a.RunResult, *b.RunResult) {
			t.Fatalf("job %d: serial reruns disagree (engine not deterministic)", i)
		}
		if !reflect.DeepEqual(*a.RunResult, *c.RunResult) {
			t.Fatalf("job %d: parallel run disagrees with serial", i)
		}
		if !reflect.DeepEqual(a.IsolatedIPC, c.IsolatedIPC) {
			t.Fatalf("job %d: isolated IPCs differ: %v vs %v", i, a.IsolatedIPC, c.IsolatedIPC)
		}
		if !reflect.DeepEqual(a.TBPartition, c.TBPartition) {
			t.Fatalf("job %d: partitions differ: %v vs %v", i, a.TBPartition, c.TBPartition)
		}
		if a.WeightedSpeedup() != c.WeightedSpeedup() {
			t.Fatalf("job %d: WS %v vs %v", i, a.WeightedSpeedup(), c.WeightedSpeedup())
		}
	}
}

// TestSharedSessionUnderConcurrency hammers one session's profile cache
// from many jobs needing the same profiles; with -race this doubles as
// the Session thread-safety check.
func TestSharedSessionUnderConcurrency(t *testing.T) {
	s := testSession(t)
	bp, _ := gcke.Benchmark("bp")
	sv, _ := gcke.Benchmark("sv")
	jobs := make([]Job, 12)
	for i := range jobs {
		jobs[i] = Job{Session: s, Kernels: []gcke.Kernel{bp, sv},
			Scheme: gcke.Scheme{Partition: gcke.PartitionEven}}
	}
	results := New(6).Run(jobs)
	if err := FirstErr(results); err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(results); i++ {
		if !reflect.DeepEqual(*results[0].Res.RunResult, *results[i].Res.RunResult) {
			t.Fatalf("identical jobs %d disagree", i)
		}
	}
	// The shared full-occupancy profiles must be cached as one object.
	r1, err := s.RunIsolated(bp)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := s.RunIsolated(bp)
	if err != nil {
		t.Fatal(err)
	}
	if r1 != r2 {
		t.Fatal("isolated profile not cached after concurrent runs")
	}
}

func TestRunnerDerivesAndDedupsSessions(t *testing.T) {
	r := New(4)
	cfg := gcke.ScaledConfig(2)
	s1 := r.Session(cfg, 15_000, 10_000)
	s2 := r.Session(cfg, 15_000, 10_000)
	if s1 != s2 {
		t.Fatal("equal machine descriptions must share a session")
	}
	if s3 := r.Session(cfg, 20_000, 10_000); s3 == s1 {
		t.Fatal("different cycles must not share a session")
	}
	if s4 := r.Session(gcke.ScaledConfig(4), 15_000, 10_000); s4 == s1 {
		t.Fatal("different configs must not share a session")
	}

	bp, _ := gcke.Benchmark("bp")
	sv, _ := gcke.Benchmark("sv")
	res := r.Run([]Job{{
		Config: cfg, Cycles: 15_000, ProfileCycles: 10_000,
		Kernels: []gcke.Kernel{bp, sv},
		Scheme:  gcke.Scheme{Partition: gcke.PartitionEven},
	}})
	if err := FirstErr(res); err != nil {
		t.Fatal(err)
	}
	// The job ran against the deduplicated session, so its profiles are
	// now cached there.
	if _, err := s1.RunIsolated(bp); err != nil {
		t.Fatal(err)
	}
}

func TestRunReportsErrorsInOrder(t *testing.T) {
	s := testSession(t)
	bp, _ := gcke.Benchmark("bp")
	sv, _ := gcke.Benchmark("sv")
	good := Job{Session: s, Kernels: []gcke.Kernel{bp, sv},
		Scheme: gcke.Scheme{Partition: gcke.PartitionEven}}
	bad := Job{Session: s, Kernels: []gcke.Kernel{bp, sv},
		Scheme: gcke.Scheme{Partition: gcke.PartitionWarpedSlicer, Limiting: gcke.LimitStatic}}
	results := New(4).Run([]Job{good, bad, good})
	if results[0].Err != nil || results[2].Err != nil {
		t.Fatalf("good jobs failed: %v %v", results[0].Err, results[2].Err)
	}
	if results[1].Err == nil {
		t.Fatal("invalid scheme accepted")
	}
	if err := FirstErr(results); err != results[1].Err {
		t.Fatalf("FirstErr = %v, want job 1's error", err)
	}
}

func TestMapCoversAllIndicesOnce(t *testing.T) {
	for _, workers := range []int{1, 3, 16} {
		const n = 100
		counts := make([]atomic.Int32, n)
		Map(workers, n, func(i int) { counts[i].Add(1) })
		for i := range counts {
			if c := counts[i].Load(); c != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, c)
			}
		}
	}
	Map(4, 0, func(i int) { t.Fatal("fn called for n=0") })
}

func TestMapErrReturnsFirstByIndex(t *testing.T) {
	err := MapErr(8, 10, func(i int) error {
		if i == 3 || i == 7 {
			return errIndex(i)
		}
		return nil
	})
	if err != errIndex(3) {
		t.Fatalf("err = %v, want index 3", err)
	}
	if err := MapErr(8, 10, func(i int) error { return nil }); err != nil {
		t.Fatalf("unexpected error %v", err)
	}
}

type errIndex int

func (e errIndex) Error() string { return "error at index" }
