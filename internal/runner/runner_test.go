package runner

import (
	"context"
	"errors"
	"path/filepath"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	gcke "repro"
	"repro/internal/journal"
)

func testJobs(t *testing.T, s *gcke.Session) []Job {
	t.Helper()
	bp, _ := gcke.Benchmark("bp")
	sv, _ := gcke.Benchmark("sv")
	ks, _ := gcke.Benchmark("ks")
	schemes := []gcke.Scheme{
		{Partition: gcke.PartitionWarpedSlicer},
		{Partition: gcke.PartitionWarpedSlicer, Limiting: gcke.LimitDMIL},
		{Partition: gcke.PartitionSMK, MemIssue: gcke.MemIssueQBMI},
		{Partition: gcke.PartitionWarpedSlicer, Limiting: gcke.LimitStatic, StaticLimits: []int{4, 8}},
	}
	var jobs []Job
	for _, wl := range [][]gcke.Kernel{{bp, sv}, {bp, ks}} {
		for _, sc := range schemes {
			jobs = append(jobs, Job{Session: s, Kernels: wl, Scheme: sc})
		}
	}
	return jobs
}

func testSession(t *testing.T) *gcke.Session {
	t.Helper()
	s := gcke.NewSession(gcke.ScaledConfig(2), 15_000)
	s.ProfileCycles = 10_000
	return s
}

// TestParallelMatchesSerial pins the "parallelism never changes results"
// contract: the same (workload, scheme) grid run twice serially and once
// through the parallel pool must produce identical RunResult stats.
func TestParallelMatchesSerial(t *testing.T) {
	ctx := context.Background()
	serial1 := New(1).Run(ctx, testJobs(t, testSession(t)))
	serial2 := New(1).Run(ctx, testJobs(t, testSession(t)))
	parallel := New(8).Run(ctx, testJobs(t, testSession(t)))

	if err := FirstErr(serial1); err != nil {
		t.Fatal(err)
	}
	for i := range serial1 {
		if serial2[i].Err != nil || parallel[i].Err != nil {
			t.Fatalf("job %d errors: serial=%v parallel=%v", i, serial2[i].Err, parallel[i].Err)
		}
		a, b, c := serial1[i].Res, serial2[i].Res, parallel[i].Res
		if !reflect.DeepEqual(*a.RunResult, *b.RunResult) {
			t.Fatalf("job %d: serial reruns disagree (engine not deterministic)", i)
		}
		if !reflect.DeepEqual(*a.RunResult, *c.RunResult) {
			t.Fatalf("job %d: parallel run disagrees with serial", i)
		}
		if !reflect.DeepEqual(a.IsolatedIPC, c.IsolatedIPC) {
			t.Fatalf("job %d: isolated IPCs differ: %v vs %v", i, a.IsolatedIPC, c.IsolatedIPC)
		}
		if !reflect.DeepEqual(a.TBPartition, c.TBPartition) {
			t.Fatalf("job %d: partitions differ: %v vs %v", i, a.TBPartition, c.TBPartition)
		}
		if a.WeightedSpeedup() != c.WeightedSpeedup() {
			t.Fatalf("job %d: WS %v vs %v", i, a.WeightedSpeedup(), c.WeightedSpeedup())
		}
		if serial1[i].Key == "" || serial1[i].Key != parallel[i].Key {
			t.Fatalf("job %d: fingerprints differ: %q vs %q", i, serial1[i].Key, parallel[i].Key)
		}
	}
}

// TestSharedSessionUnderConcurrency hammers one session's profile cache
// from many jobs needing the same profiles; with -race this doubles as
// the Session thread-safety check.
func TestSharedSessionUnderConcurrency(t *testing.T) {
	s := testSession(t)
	bp, _ := gcke.Benchmark("bp")
	sv, _ := gcke.Benchmark("sv")
	jobs := make([]Job, 12)
	for i := range jobs {
		jobs[i] = Job{Session: s, Kernels: []gcke.Kernel{bp, sv},
			Scheme: gcke.Scheme{Partition: gcke.PartitionEven}}
	}
	results := New(6).Run(context.Background(), jobs)
	if err := FirstErr(results); err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(results); i++ {
		if !reflect.DeepEqual(*results[0].Res.RunResult, *results[i].Res.RunResult) {
			t.Fatalf("identical jobs %d disagree", i)
		}
	}
	// The shared full-occupancy profiles must be cached as one object.
	r1, err := s.RunIsolated(bp)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := s.RunIsolated(bp)
	if err != nil {
		t.Fatal(err)
	}
	if r1 != r2 {
		t.Fatal("isolated profile not cached after concurrent runs")
	}
}

func TestRunnerDerivesAndDedupsSessions(t *testing.T) {
	r := New(4)
	cfg := gcke.ScaledConfig(2)
	s1, err := r.Session(cfg, 15_000, 10_000)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := r.Session(cfg, 15_000, 10_000)
	if err != nil {
		t.Fatal(err)
	}
	if s1 != s2 {
		t.Fatal("equal machine descriptions must share a session")
	}
	if s3, _ := r.Session(cfg, 20_000, 10_000); s3 == s1 {
		t.Fatal("different cycles must not share a session")
	}
	if s4, _ := r.Session(gcke.ScaledConfig(4), 15_000, 10_000); s4 == s1 {
		t.Fatal("different configs must not share a session")
	}

	bp, _ := gcke.Benchmark("bp")
	sv, _ := gcke.Benchmark("sv")
	res := r.Run(context.Background(), []Job{{
		Config: cfg, Cycles: 15_000, ProfileCycles: 10_000,
		Kernels: []gcke.Kernel{bp, sv},
		Scheme:  gcke.Scheme{Partition: gcke.PartitionEven},
	}})
	if err := FirstErr(res); err != nil {
		t.Fatal(err)
	}
	// The job ran against the deduplicated session, so its profiles are
	// now cached there.
	if _, err := s1.RunIsolated(bp); err != nil {
		t.Fatal(err)
	}
}

func TestRunReportsErrorsInOrder(t *testing.T) {
	s := testSession(t)
	bp, _ := gcke.Benchmark("bp")
	sv, _ := gcke.Benchmark("sv")
	good := Job{Session: s, Kernels: []gcke.Kernel{bp, sv},
		Scheme: gcke.Scheme{Partition: gcke.PartitionEven}}
	bad := Job{Session: s, Kernels: []gcke.Kernel{bp, sv},
		Scheme: gcke.Scheme{Partition: gcke.PartitionWarpedSlicer, Limiting: gcke.LimitStatic}}
	results := New(4).Run(context.Background(), []Job{good, bad, good})
	if results[0].Err != nil || results[2].Err != nil {
		t.Fatalf("good jobs failed: %v %v", results[0].Err, results[2].Err)
	}
	if results[1].Err == nil {
		t.Fatal("invalid scheme accepted")
	}
	if err := FirstErr(results); err != results[1].Err {
		t.Fatalf("FirstErr = %v, want job 1's error", err)
	}
	if got := Errs(results); len(got) != 1 || got[0] != results[1].Err {
		t.Fatalf("Errs = %v, want exactly job 1's error", got)
	}
}

// TestRunRecoversPanicIntoJobError pins panic isolation: one poisoned
// job must fail with an attributed *PanicError while every other point
// in the grid completes normally.
func TestRunRecoversPanicIntoJobError(t *testing.T) {
	testJobHook = func(i int, j *Job) {
		if i == 2 {
			panic("injected worker fault")
		}
	}
	defer func() { testJobHook = nil }()

	jobs := testJobs(t, testSession(t))
	results := New(4).Run(context.Background(), jobs)
	for i, res := range results {
		if i == 2 {
			continue
		}
		if res.Err != nil {
			t.Fatalf("job %d poisoned by job 2's panic: %v", i, res.Err)
		}
		if res.Res == nil {
			t.Fatalf("job %d missing result", i)
		}
	}
	var pe *PanicError
	if !errors.As(results[2].Err, &pe) {
		t.Fatalf("job 2 error is %T, want *PanicError", results[2].Err)
	}
	if pe.Index != 2 || pe.Key == "" || len(pe.Stack) == 0 {
		t.Fatalf("panic not attributed: index=%d key=%q stack=%d bytes", pe.Index, pe.Key, len(pe.Stack))
	}
	if !strings.Contains(pe.Error(), "injected worker fault") {
		t.Fatalf("panic value lost: %v", pe)
	}
}

// TestRunHonorsCancellation: a cancelled context marks every
// not-yet-finished job with the cancellation instead of running it.
func TestRunHonorsCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, workers := range []int{1, 4} {
		results := New(workers).Run(ctx, testJobs(t, testSession(t)))
		for i, res := range results {
			if !errors.Is(res.Err, context.Canceled) {
				t.Fatalf("workers=%d job %d: err=%v, want context.Canceled", workers, i, res.Err)
			}
		}
	}
}

// TestRunPerJobTimeout: with a tiny per-job deadline, long simulations
// fail with context.DeadlineExceeded (wrapped over gpu.ErrInterrupted)
// rather than hanging the sweep.
func TestRunPerJobTimeout(t *testing.T) {
	// A session big enough that the run cannot finish in a millisecond.
	s := gcke.NewSession(gcke.ScaledConfig(2), 50_000_000)
	bp, _ := gcke.Benchmark("bp")
	sv, _ := gcke.Benchmark("sv")
	r := New(2)
	r.Timeout = time.Millisecond
	results := r.Run(context.Background(), []Job{{
		Session: s, Kernels: []gcke.Kernel{bp, sv},
		Scheme: gcke.Scheme{Partition: gcke.PartitionEven},
	}})
	if !errors.Is(results[0].Err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", results[0].Err)
	}
}

// TestRunJournalResume pins checkpoint/resume: a partially journaled
// grid, resumed by a fresh runner and session against the same journal,
// replays the finished points and produces results identical to an
// uninterrupted run.
func TestRunJournalResume(t *testing.T) {
	jobs := testJobs(t, testSession(t))
	golden := New(4).Run(context.Background(), testJobs(t, testSession(t)))
	if err := FirstErr(golden); err != nil {
		t.Fatal(err)
	}

	path := filepath.Join(t.TempDir(), "sweep.journal")
	j1, err := journal.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	// "Interrupted" first attempt: only the first three points finish.
	r1 := New(4)
	r1.Journal = j1
	if err := FirstErr(r1.Run(context.Background(), jobs[:3])); err != nil {
		t.Fatal(err)
	}
	if err := j1.Close(); err != nil {
		t.Fatal(err)
	}

	// Resume in a "new process": fresh runner, fresh session, same file.
	j2, err := journal.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	r2 := New(4)
	r2.Journal = j2
	resumed := r2.Run(context.Background(), testJobs(t, testSession(t)))
	if err := FirstErr(resumed); err != nil {
		t.Fatal(err)
	}
	for i := range golden {
		if want := i < 3; resumed[i].Replayed != want {
			t.Fatalf("job %d: Replayed=%v, want %v", i, resumed[i].Replayed, want)
		}
		a, b := golden[i].Res, resumed[i].Res
		if !reflect.DeepEqual(*a.RunResult, *b.RunResult) {
			t.Fatalf("job %d: resumed stats differ from uninterrupted run", i)
		}
		if !reflect.DeepEqual(a.IsolatedIPC, b.IsolatedIPC) ||
			!reflect.DeepEqual(a.TBPartition, b.TBPartition) ||
			a.TheoreticalWS != b.TheoreticalWS {
			t.Fatalf("job %d: resumed metadata differs", i)
		}
		if a.WeightedSpeedup() != b.WeightedSpeedup() {
			t.Fatalf("job %d: WS %v vs %v", i, a.WeightedSpeedup(), b.WeightedSpeedup())
		}
	}
	// Every point is journaled now; a third pass simulates nothing.
	if j2.Len() != len(jobs) {
		t.Fatalf("journal holds %d entries, want %d", j2.Len(), len(jobs))
	}
}

// TestJobKeyStability: the fingerprint must not depend on whether the
// machine is described inline or via a derived session, and must change
// when any dimension of the point changes.
func TestJobKeyStability(t *testing.T) {
	cfg := gcke.ScaledConfig(2)
	bp, _ := gcke.Benchmark("bp")
	sv, _ := gcke.Benchmark("sv")
	inline := Job{Config: cfg, Cycles: 15_000, ProfileCycles: 10_000,
		Kernels: []gcke.Kernel{bp, sv}, Scheme: gcke.Scheme{Partition: gcke.PartitionEven}}
	s := gcke.NewSession(cfg, 15_000)
	s.ProfileCycles = 10_000
	viaSession := inline
	viaSession.Session = s

	k1, err := inline.Key()
	if err != nil {
		t.Fatal(err)
	}
	k2, err := viaSession.Key()
	if err != nil {
		t.Fatal(err)
	}
	if k1 != k2 {
		t.Fatalf("same point fingerprints differently: %q vs %q", k1, k2)
	}
	other := inline
	other.Scheme = gcke.Scheme{Partition: gcke.PartitionSMK}
	if k3, _ := other.Key(); k3 == k1 {
		t.Fatal("different schemes share a fingerprint")
	}
	longer := inline
	longer.Cycles = 20_000
	if k4, _ := longer.Key(); k4 == k1 {
		t.Fatal("different run lengths share a fingerprint")
	}
}

func TestMapCoversAllIndicesOnce(t *testing.T) {
	ctx := context.Background()
	for _, workers := range []int{1, 3, 16} {
		const n = 100
		counts := make([]atomic.Int32, n)
		Map(ctx, workers, n, func(i int) { counts[i].Add(1) })
		for i := range counts {
			if c := counts[i].Load(); c != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, c)
			}
		}
	}
	Map(ctx, 4, 0, func(i int) { t.Fatal("fn called for n=0") })
}

func TestMapErrReturnsFirstByIndex(t *testing.T) {
	ctx := context.Background()
	err := MapErr(ctx, 8, 10, func(i int) error {
		if i == 3 || i == 7 {
			return errIndex(i)
		}
		return nil
	})
	if err != errIndex(3) {
		t.Fatalf("err = %v, want index 3", err)
	}
	if err := MapErr(ctx, 8, 10, func(i int) error { return nil }); err != nil {
		t.Fatalf("unexpected error %v", err)
	}
}

// TestMapErrRecoversPanic: a panicking index fails alone, as a
// *PanicError, and the other indices still run.
func TestMapErrRecoversPanic(t *testing.T) {
	var ran atomic.Int32
	err := MapErr(context.Background(), 4, 10, func(i int) error {
		if i == 5 {
			panic("boom")
		}
		ran.Add(1)
		return nil
	})
	var pe *PanicError
	if !errors.As(err, &pe) || pe.Index != 5 {
		t.Fatalf("err = %v, want *PanicError at index 5", err)
	}
	if ran.Load() != 9 {
		t.Fatalf("%d indices ran, want 9", ran.Load())
	}
}

// TestMapErrCancellation: indices never dispatched under a cancelled
// context report the context error, not silent success.
func TestMapErrCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := MapErr(ctx, 4, 10, func(i int) error { return nil })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

type errIndex int

func (e errIndex) Error() string { return "error at index" }
