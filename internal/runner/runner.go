// Package runner is the concurrent experiment-execution layer: it fans
// a grid of independent (workload x scheme x config) simulation jobs out
// over a bounded worker pool and delivers the results in submission
// order, so table and figure renderers produce byte-identical output to
// a serial loop while the points simulate in parallel.
//
// The engine underneath is deterministic (seeded PRNGs, no wall-clock),
// and the Session profile caches deduplicate concurrent profiling
// demand, so running through the pool never changes any result — it only
// changes how many points are in flight at once.
//
// The pool is also the robustness boundary for sweeps: cancellation and
// per-job deadlines thread through a context, a panicking job is
// recovered into that one job's error instead of killing the process,
// and an attached journal checkpoints each completed point so an
// interrupted sweep resumes without recomputing.
package runner

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	gcke "repro"
	"repro/internal/ckpt"
	"repro/internal/journal"
	"repro/internal/resultcache"
)

// Job is one simulation point: a workload run under a scheme against an
// architecture. Either set Session explicitly (to share profile caches
// with other jobs and with non-runner code) or leave it nil and fill
// Config/Cycles/ProfileCycles, in which case the Runner derives a
// Session and shares it between all jobs with the same parameters.
type Job struct {
	// Session to run against; overrides Config/Cycles when non-nil.
	Session *gcke.Session
	// Config, Cycles and ProfileCycles describe the machine when
	// Session is nil. ProfileCycles of 0 means Cycles.
	Config        gcke.Config
	Cycles        int64
	ProfileCycles int64

	Kernels []gcke.Kernel
	Scheme  gcke.Scheme

	// Fresh forces a real simulation: the result cache and journal are
	// neither consulted nor written for this job. Audit re-execution
	// (internal/fleet) uses it so a re-run actually re-simulates instead
	// of echoing the possibly-corrupt stored bytes back. Deliberately
	// NOT part of the fingerprint — a fresh run of a job has the same
	// key and must produce the same bytes.
	Fresh bool
}

// Key returns the job's deterministic fingerprint: a hash over the full
// machine description (config, run lengths), the kernel descriptors and
// the scheme. Two jobs that would produce the same simulation result
// have the same key, across process restarts — it is the checkpoint
// journal's index.
func (j *Job) Key() (string, error) {
	fp := struct {
		Config        gcke.Config
		Cycles        int64
		ProfileCycles int64
		Kernels       []gcke.Kernel
		Scheme        gcke.Scheme
	}{j.Config, j.Cycles, j.ProfileCycles, j.Kernels, j.Scheme}
	if s := j.Session; s != nil {
		fp.Config = s.Config()
		fp.Cycles = s.Cycles()
		fp.ProfileCycles = s.ProfileCycles
	} else if fp.ProfileCycles <= 0 {
		fp.ProfileCycles = fp.Cycles
	}
	raw, err := json.Marshal(fp)
	if err != nil {
		return "", fmt.Errorf("runner: fingerprinting job: %w", err)
	}
	sum := sha256.Sum256(raw)
	return "j1-" + hex.EncodeToString(sum[:]), nil
}

// Result pairs a job's outcome with any simulation error.
type Result struct {
	// Key is the job's deterministic fingerprint (set even on failure,
	// empty only if fingerprinting itself failed).
	Key string
	Res *gcke.WorkloadResult
	Err error
	// Replayed reports that Res was restored from the checkpoint journal
	// rather than simulated in this process.
	Replayed bool
	// Cached reports that Res was served from the content-addressed
	// result cache rather than simulated.
	Cached bool
	// ResumedFrom is the cycle the simulation resumed from via a mid-job
	// checkpoint (0 when the run started from cycle zero or was served
	// without simulating).
	ResumedFrom int64
}

// PanicError is a worker panic recovered into one job's error: the rest
// of the grid keeps running, and the failed point stays attributed.
type PanicError struct {
	Index int    // submission index of the job (or Map index)
	Key   string // job fingerprint, when known
	Value any    // the recovered panic value
	Stack []byte // goroutine stack captured at recovery
}

func (e *PanicError) Error() string {
	id := fmt.Sprintf("job %d", e.Index)
	if e.Key != "" {
		id += " (" + e.Key + ")"
	}
	return fmt.Sprintf("runner: %s panicked: %v\n%s", id, e.Value, e.Stack)
}

// Runner executes jobs on a bounded worker pool.
type Runner struct {
	workers int

	// Timeout, when positive, bounds each job's wall-clock time; an
	// expired job fails with an error wrapping context.DeadlineExceeded
	// while the rest of the grid continues.
	Timeout time.Duration
	// Journal, when non-nil, checkpoints completed jobs: Run restores
	// journaled results instead of re-simulating and appends each newly
	// completed result. Failures are never journaled, so a fixed build
	// re-runs them on resume.
	Journal *journal.Journal
	// Fault, when non-nil, runs inside the worker's recovery scope
	// before each executed (non-replayed) job — the fault-injection seam
	// (internal/chaos). A returned error fails the job; a panic is
	// recovered like any worker panic; ctx carries the job's deadline.
	Fault func(ctx context.Context, index int, key string) error
	// Cache, when non-nil, is the content-addressed result store: a job
	// whose fingerprint is cached is served without simulating, and
	// every newly simulated result is stored. Cache-write failures are
	// counted by the store and never fail the job (the cache degrades to
	// pass-through), unlike journal appends, which are the sweep's
	// durability contract.
	Cache *resultcache.Store
	// ForkWarmup enables warmup-snapshot forking on sessions the runner
	// derives: jobs in one warmup family (same config, kernels,
	// partition, warmup length) simulate the shared unmanaged prefix
	// once and fork from the warmed snapshot. Results are byte-identical
	// either way. Set it before the first Run; explicit job sessions
	// keep their own setting.
	ForkWarmup bool
	// Check enables the per-cycle invariant watchdog on sessions the
	// runner derives (jobs with a nil Session). Set it before the first
	// Run; explicit job sessions keep their own Check setting.
	Check bool
	// EngineWorkers is the cycle engine's intra-run SM-tick fan-out for
	// sessions the runner derives (gcke.Session.Workers). Leave 0 to
	// let the engine default to GOMAXPROCS; set 1 when the runner's own
	// job-level pool already saturates the machine, so jobs do not
	// oversubscribe cores. Set it before the first Run.
	EngineWorkers int
	// EnginePartWorkers is the engine's memory-side fan-out for derived
	// sessions (gcke.Session.PartWorkers): L2+DRAM partitions ticked
	// concurrently within each cycle. Same budget considerations as
	// EngineWorkers. Set it before the first Run.
	EnginePartWorkers int
	// PhaseTime enables per-phase engine wall-clock counters on derived
	// sessions (gcke.Session.PhaseTime); totals are process-wide via
	// gpu.PhaseTotals. Set it before the first Run.
	PhaseTime bool
	// Checkpoints, when non-nil (and CheckpointEvery > 0), persists
	// mid-job engine checkpoints keyed by job fingerprint: an eligible
	// job resumes from its latest valid checkpoint instead of cycle 0,
	// and drops its checkpoints once the result is durable. Results are
	// byte-identical with or without checkpointing.
	Checkpoints     *ckpt.Store
	CheckpointEvery int64

	mu       sync.Mutex
	sessions map[string]*gcke.Session // derived sessions, deduplicated

	// Checkpoint observability (read via CkptStats, exported by /statz).
	ckptResumes       atomic.Int64
	ckptResumedCycles atomic.Int64
}

// New creates a runner with the given worker count; workers <= 0 selects
// GOMAXPROCS.
func New(workers int) *Runner {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Runner{workers: workers, sessions: make(map[string]*gcke.Session)}
}

// Workers returns the pool size.
func (r *Runner) Workers() int { return r.workers }

// Session returns the runner's shared session for a machine description,
// creating it on first use. Jobs with equal (Config, Cycles,
// ProfileCycles) share one session and therefore one profile cache.
func (r *Runner) Session(cfg gcke.Config, cycles, profileCycles int64) (*gcke.Session, error) {
	if profileCycles <= 0 {
		profileCycles = cycles
	}
	raw, err := json.Marshal(cfg)
	if err != nil {
		return nil, fmt.Errorf("runner: encoding config: %w", err)
	}
	key := fmt.Sprintf("c%d|p%d|%s", cycles, profileCycles, raw)
	r.mu.Lock()
	defer r.mu.Unlock()
	s, ok := r.sessions[key]
	if !ok {
		s = gcke.NewSession(cfg, cycles)
		s.ProfileCycles = profileCycles
		s.Check = r.Check
		s.Workers = r.EngineWorkers
		s.PartWorkers = r.EnginePartWorkers
		s.PhaseTime = r.PhaseTime
		s.ForkWarmup = r.ForkWarmup
		r.sessions[key] = s
	}
	return s, nil
}

// testJobHook, when set (by tests only), runs at the start of every job
// inside the worker's recovery scope — the injection seam for panic-
// isolation tests, since real jobs are pure data with no panic path.
var testJobHook func(i int, j *Job)

// Run executes all jobs on the pool and returns one Result per job, in
// submission order. Every job runs to completion even if earlier jobs
// fail — a panic or an invariant violation in one point surfaces as that
// point's error; callers decide whether a single error aborts their
// experiment. Cancelling ctx stops feeding the pool, interrupts jobs in
// flight, and marks never-started jobs with the context's error.
func (r *Runner) Run(ctx context.Context, jobs []Job) []Result {
	if ctx == nil {
		ctx = context.Background()
	}
	results := make([]Result, len(jobs))
	Map(ctx, r.workers, len(jobs), func(i int) {
		r.runJob(ctx, i, &jobs[i], &results[i])
	})
	// Jobs the cancelled feeder never dispatched: attribute the
	// cancellation rather than returning an inexplicable zero Result.
	if err := ctx.Err(); err != nil {
		for i := range results {
			if results[i].Res == nil && results[i].Err == nil {
				results[i].Err = err
			}
		}
	}
	return results
}

func (r *Runner) runJob(ctx context.Context, i int, j *Job, out *Result) {
	key, err := j.Key()
	out.Key = key
	if err != nil {
		out.Err = err
		return
	}
	if r.Cache != nil && !j.Fresh {
		if raw, ok := r.Cache.Get(key); ok {
			// A checksummed entry that fails to decode means the result
			// schema moved; fall through to re-simulation.
			var res gcke.WorkloadResult
			if err := json.Unmarshal(raw, &res); err == nil {
				out.Res, out.Cached = &res, true
				return
			}
		}
	}
	if r.Journal != nil && !j.Fresh {
		var res gcke.WorkloadResult
		if ok, err := r.Journal.Lookup(key, &res); err != nil {
			out.Err = fmt.Errorf("runner: reading journal entry %s: %w", key, err)
			return
		} else if ok {
			out.Res, out.Replayed = &res, true
			r.cachePut(key, &res)
			return
		}
	}
	defer func() {
		if v := recover(); v != nil {
			out.Res = nil
			out.Err = &PanicError{Index: i, Key: key, Value: v, Stack: debug.Stack()}
		}
	}()
	jobCtx := ctx
	if r.Timeout > 0 {
		var cancel context.CancelFunc
		jobCtx, cancel = context.WithTimeout(ctx, r.Timeout)
		defer cancel()
	}
	if testJobHook != nil {
		testJobHook(i, j)
	}
	if r.Fault != nil {
		if err := r.Fault(jobCtx, i, key); err != nil {
			out.Err = err
			return
		}
	}
	s := j.Session
	if s == nil {
		s, err = r.Session(j.Config, j.Cycles, j.ProfileCycles)
		if err != nil {
			out.Err = err
			return
		}
	}
	res, resumedFrom, err := s.RunWorkloadCheckpointedCtx(jobCtx, j.Kernels, j.Scheme, r.checkpoint(key))
	if resumedFrom > 0 {
		out.ResumedFrom = resumedFrom
		r.ckptResumes.Add(1)
		r.ckptResumedCycles.Add(resumedFrom)
	}
	if err == nil && r.Journal != nil && !j.Fresh {
		if jerr := r.Journal.Append(key, res); jerr != nil {
			err = fmt.Errorf("runner: checkpointing %s: %w", key, jerr)
		}
	}
	if err == nil {
		if !j.Fresh {
			r.cachePut(key, res)
		}
		// The result is durable (or the caller's problem): the job's
		// mid-run checkpoints are dead weight now.
		if r.Checkpoints != nil {
			r.Checkpoints.Drop(key)
		}
	}
	out.Res, out.Err = res, err
}

// checkpoint binds the runner's checkpoint store to one job fingerprint
// for the Session (which never sees keys). Nil when checkpointing is
// not configured.
func (r *Runner) checkpoint(key string) *gcke.Checkpoint {
	if r.Checkpoints == nil || r.CheckpointEvery <= 0 {
		return nil
	}
	st := r.Checkpoints
	return &gcke.Checkpoint{
		Every:  r.CheckpointEvery,
		Latest: func() (int64, []byte, bool) { return st.Latest(key) },
		Save:   func(cycle int64, state []byte) error { return st.Save(key, cycle, state) },
	}
}

// CkptStats reports checkpoint-resume counters: how many jobs resumed
// from a mid-job checkpoint and how many simulation cycles those
// resumes skipped.
func (r *Runner) CkptStats() (resumes, resumedCycles int64) {
	return r.ckptResumes.Load(), r.ckptResumedCycles.Load()
}

// cachePut stores a completed result in the result cache. Failures are
// deliberately swallowed: the store counts them (Stats().PutErrors) and
// a cache that cannot persist degrades to pass-through rather than
// failing jobs.
func (r *Runner) cachePut(key string, res *gcke.WorkloadResult) {
	if r.Cache == nil {
		return
	}
	raw, err := json.Marshal(res)
	if err != nil {
		return
	}
	_ = r.Cache.Put(key, raw)
}

// ForkStats sums warmup-fork counters over the runner's derived
// sessions (forks taken, bytes held in warm snapshots).
func (r *Runner) ForkStats() (forksTaken, snapshotBytes int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, s := range r.sessions {
		f, b := s.ForkStats()
		forksTaken += f
		snapshotBytes += b
	}
	return forksTaken, snapshotBytes
}

// FirstErr returns the first error in results by submission order, so
// error reporting is deterministic regardless of execution order.
func FirstErr(results []Result) error {
	for _, res := range results {
		if res.Err != nil {
			return res.Err
		}
	}
	return nil
}

// Errs returns every failed result by submission order (for skip-mode
// drivers that report all failures instead of aborting on the first).
func Errs(results []Result) []error {
	var out []error
	for _, res := range results {
		if res.Err != nil {
			out = append(out, res.Err)
		}
	}
	return out
}

// Map runs fn(0..n-1) on at most workers goroutines and waits for all
// started work. It is the ordered fan-out primitive underneath Run,
// exposed for call sites whose unit of work is not a full workload
// simulation (e.g. per-benchmark characterization). fn must write its
// output to slot i of a caller-owned slice rather than share state
// across indices. When ctx is cancelled, no further indices are
// dispatched (in-flight fn calls run to completion); fn itself observes
// cancellation through whatever it passed the ctx into. Map does not
// recover fn panics — use MapErr for isolation.
func Map(ctx context.Context, workers, n int, fn func(i int)) {
	if ctx == nil {
		ctx = context.Background()
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if ctx.Err() != nil {
				return
			}
			fn(i)
		}
		return
	}
	next := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				fn(i)
			}
		}()
	}
	done := ctx.Done()
feed:
	for i := 0; i < n; i++ {
		select {
		case next <- i:
		case <-done:
			break feed
		}
	}
	close(next)
	wg.Wait()
}

// MapErr is Map for fallible work: it collects one error per index and
// returns the first failure in index order (nil if none failed). A
// panicking fn call fails only its own index (as a *PanicError); indices
// never dispatched because ctx was cancelled fail with the context's
// error.
func MapErr(ctx context.Context, workers, n int, fn func(i int) error) error {
	if ctx == nil {
		ctx = context.Background()
	}
	errs := make([]error, n)
	ran := make([]bool, n)
	Map(ctx, workers, n, func(i int) {
		ran[i] = true
		defer func() {
			if v := recover(); v != nil {
				errs[i] = &PanicError{Index: i, Value: v, Stack: debug.Stack()}
			}
		}()
		errs[i] = fn(i)
	})
	if err := ctx.Err(); err != nil {
		for i := range errs {
			if !ran[i] && errs[i] == nil {
				errs[i] = err
			}
		}
	}
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
