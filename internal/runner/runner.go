// Package runner is the concurrent experiment-execution layer: it fans
// a grid of independent (workload x scheme x config) simulation jobs out
// over a bounded worker pool and delivers the results in submission
// order, so table and figure renderers produce byte-identical output to
// a serial loop while the points simulate in parallel.
//
// The engine underneath is deterministic (seeded PRNGs, no wall-clock),
// and the Session profile caches deduplicate concurrent profiling
// demand, so running through the pool never changes any result — it only
// changes how many points are in flight at once.
package runner

import (
	"encoding/json"
	"fmt"
	"runtime"
	"sync"

	gcke "repro"
)

// Job is one simulation point: a workload run under a scheme against an
// architecture. Either set Session explicitly (to share profile caches
// with other jobs and with non-runner code) or leave it nil and fill
// Config/Cycles/ProfileCycles, in which case the Runner derives a
// Session and shares it between all jobs with the same parameters.
type Job struct {
	// Session to run against; overrides Config/Cycles when non-nil.
	Session *gcke.Session
	// Config, Cycles and ProfileCycles describe the machine when
	// Session is nil. ProfileCycles of 0 means Cycles.
	Config        gcke.Config
	Cycles        int64
	ProfileCycles int64

	Kernels []gcke.Kernel
	Scheme  gcke.Scheme
}

// Result pairs a job's outcome with any simulation error.
type Result struct {
	Res *gcke.WorkloadResult
	Err error
}

// Runner executes jobs on a bounded worker pool.
type Runner struct {
	workers int

	mu       sync.Mutex
	sessions map[string]*gcke.Session // derived sessions, deduplicated
}

// New creates a runner with the given worker count; workers <= 0 selects
// GOMAXPROCS.
func New(workers int) *Runner {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Runner{workers: workers, sessions: make(map[string]*gcke.Session)}
}

// Workers returns the pool size.
func (r *Runner) Workers() int { return r.workers }

// Session returns the runner's shared session for a machine description,
// creating it on first use. Jobs with equal (Config, Cycles,
// ProfileCycles) share one session and therefore one profile cache.
func (r *Runner) Session(cfg gcke.Config, cycles, profileCycles int64) *gcke.Session {
	if profileCycles <= 0 {
		profileCycles = cycles
	}
	raw, err := json.Marshal(cfg)
	if err != nil {
		// Config is a plain data struct; Marshal cannot fail in practice
		// (profiles.go asserts serializability at init).
		panic(fmt.Sprintf("runner: encoding config: %v", err))
	}
	key := fmt.Sprintf("c%d|p%d|%s", cycles, profileCycles, raw)
	r.mu.Lock()
	defer r.mu.Unlock()
	s, ok := r.sessions[key]
	if !ok {
		s = gcke.NewSession(cfg, cycles)
		s.ProfileCycles = profileCycles
		r.sessions[key] = s
	}
	return s
}

// Run executes all jobs on the pool and returns one Result per job, in
// submission order. Every job runs to completion even if earlier jobs
// fail; callers decide whether a single error aborts their experiment.
func (r *Runner) Run(jobs []Job) []Result {
	results := make([]Result, len(jobs))
	Map(r.workers, len(jobs), func(i int) {
		j := jobs[i]
		s := j.Session
		if s == nil {
			s = r.Session(j.Config, j.Cycles, j.ProfileCycles)
		}
		res, err := s.RunWorkload(j.Kernels, j.Scheme)
		results[i] = Result{Res: res, Err: err}
	})
	return results
}

// FirstErr returns the first error in results by submission order, so
// error reporting is deterministic regardless of execution order.
func FirstErr(results []Result) error {
	for _, res := range results {
		if res.Err != nil {
			return res.Err
		}
	}
	return nil
}

// Map runs fn(0..n-1) on at most workers goroutines and waits for all of
// them. It is the ordered fan-out primitive underneath Run, exposed for
// call sites whose unit of work is not a full workload simulation (e.g.
// per-benchmark characterization). fn must write its output to slot i of
// a caller-owned slice rather than share state across indices.
func Map(workers, n int, fn func(i int)) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	next := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
}

// MapErr is Map for fallible work: it collects one error per index and
// returns the first failure in index order (nil if none failed).
func MapErr(workers, n int, fn func(i int) error) error {
	errs := make([]error, n)
	Map(workers, n, func(i int) { errs[i] = fn(i) })
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
