package runner

import (
	"context"
	"errors"

	"repro/internal/journal"
	"repro/internal/sm"
)

// IsTransient classifies a job error for retry policy: true means the
// failure is plausibly environmental and re-running the same job may
// succeed; false means retrying is futile.
//
// Transient: a recovered worker panic (*PanicError) and a per-job
// deadline expiry (an error chain carrying context.DeadlineExceeded) —
// both describe the attempt, not the job.
//
// Not transient: cancellation (context.Canceled — the caller asked to
// stop), invariant-watchdog violations (*sm.InvariantError — the engine
// is deterministic, the same point trips the same rule every time),
// journal write failures (*journal.WriteError — the job succeeded, the
// disk did not; re-simulating does not fix the disk), and everything
// else (validation and configuration errors are properties of the job).
func IsTransient(err error) bool {
	if err == nil {
		return false
	}
	var ie *sm.InvariantError
	if errors.As(err, &ie) {
		return false
	}
	var we *journal.WriteError
	if errors.As(err, &we) {
		return false
	}
	if errors.Is(err, context.Canceled) {
		return false
	}
	var pe *PanicError
	if errors.As(err, &pe) {
		return true
	}
	return errors.Is(err, context.DeadlineExceeded)
}
