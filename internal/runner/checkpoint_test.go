package runner

import (
	"context"
	"encoding/json"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	gcke "repro"
	"repro/internal/ckpt"
	"repro/internal/journal"
)

func ckptJob() Job {
	bp, _ := gcke.Benchmark("bp")
	ks, _ := gcke.Benchmark("ks")
	return Job{
		Config:        gcke.ScaledConfig(2),
		Cycles:        60_000,
		ProfileCycles: 10_000,
		Kernels:       []gcke.Kernel{bp, ks},
		Scheme: gcke.Scheme{
			Partition:    gcke.PartitionEven,
			Limiting:     gcke.LimitStatic,
			StaticLimits: []int{4, 4},
		},
	}
}

// TestCheckpointResumeCycleAccounting is the kill-mid-job acceptance
// test at the runner level: a job interrupted after its first
// checkpoint, re-run against the same store, must resume from a cycle
// strictly between 0 and the total (re-simulating only the tail),
// produce a byte-identical result to a never-interrupted run, and drop
// its checkpoints once the result lands.
func TestCheckpointResumeCycleAccounting(t *testing.T) {
	job := ckptJob()

	// Golden: a clean, checkpoint-free run.
	golden := New(1).Run(context.Background(), []Job{job})
	if err := FirstErr(golden); err != nil {
		t.Fatal(err)
	}
	goldenJS, err := json.Marshal(golden[0].Res)
	if err != nil {
		t.Fatal(err)
	}

	store, err := ckpt.OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}

	// First attempt: cancel as soon as the first checkpoint is durable —
	// a deterministic stand-in for kill -9 mid-job.
	r1 := New(1)
	r1.Checkpoints = store
	r1.CheckpointEvery = 10_000
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		for store.Stats().Saves == 0 {
			time.Sleep(time.Millisecond)
		}
		cancel()
	}()
	res1 := r1.Run(ctx, []Job{job})
	cancel()
	if res1[0].Err == nil {
		// The machine outran the canceller; the resume path still gets
		// exercised by the interrupted case on slower hosts, but this
		// run proves nothing — require the interruption.
		t.Fatal("first attempt completed before cancellation; raise Cycles")
	}
	if store.Stats().Saves == 0 {
		t.Fatal("no checkpoint persisted before interruption")
	}

	// Second attempt: same store, fresh runner (a new process).
	r2 := New(1)
	r2.Checkpoints = store
	r2.CheckpointEvery = 10_000
	res2 := r2.Run(context.Background(), []Job{job})
	if err := FirstErr(res2); err != nil {
		t.Fatal(err)
	}
	if res2[0].ResumedFrom <= 0 || res2[0].ResumedFrom >= job.Cycles {
		t.Fatalf("ResumedFrom = %d, want in (0, %d): the resume must skip a strict prefix", res2[0].ResumedFrom, job.Cycles)
	}
	resumes, resumedCycles := r2.CkptStats()
	if resumes != 1 || resumedCycles != res2[0].ResumedFrom {
		t.Fatalf("CkptStats = (%d, %d), want (1, %d)", resumes, resumedCycles, res2[0].ResumedFrom)
	}
	js, err := json.Marshal(res2[0].Res)
	if err != nil {
		t.Fatal(err)
	}
	if string(js) != string(goldenJS) {
		t.Fatalf("resumed result diverged from uninterrupted run:\nresumed: %s\ngolden:  %s", js, goldenJS)
	}
	// Success drops the job's checkpoints.
	key, err := job.Key()
	if err != nil {
		t.Fatal(err)
	}
	if _, _, ok := store.Latest(key); ok {
		t.Fatal("checkpoints not dropped after the result became durable")
	}
	if store.Stats().Drops == 0 {
		t.Fatal("drop counter not bumped")
	}
}

// TestCheckpointIneligibleSchemesRunNormally: hook-driven and warmup
// schemes are silently ineligible — same results, no checkpoints, no
// resume.
func TestCheckpointIneligibleSchemesRunNormally(t *testing.T) {
	bp, _ := gcke.Benchmark("bp")
	sv, _ := gcke.Benchmark("sv")
	job := Job{
		Config:        gcke.ScaledConfig(2),
		Cycles:        15_000,
		ProfileCycles: 10_000,
		Kernels:       []gcke.Kernel{bp, sv},
		Scheme:        gcke.Scheme{Partition: gcke.PartitionWarpedSlicer, Limiting: gcke.LimitDMIL, TBThrottle: true},
	}
	golden := New(1).Run(context.Background(), []Job{job})
	if err := FirstErr(golden); err != nil {
		t.Fatal(err)
	}

	store, err := ckpt.OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	r := New(1)
	r.Checkpoints = store
	r.CheckpointEvery = 1_000
	got := r.Run(context.Background(), []Job{job})
	if err := FirstErr(got); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(golden[0].Res, got[0].Res) {
		t.Fatal("ineligible scheme's result changed under a configured checkpoint store")
	}
	if got[0].ResumedFrom != 0 {
		t.Fatalf("ineligible scheme reported ResumedFrom=%d", got[0].ResumedFrom)
	}
	if st := store.Stats(); st.Saves != 0 {
		t.Fatalf("ineligible scheme persisted %d checkpoints", st.Saves)
	}
}

// TestFreshBypassesCacheAndJournal: a Fresh job re-simulates even when
// the journal already holds its fingerprint, and writes nothing back.
func TestFreshBypassesCacheAndJournal(t *testing.T) {
	j, err := journal.Open(filepath.Join(t.TempDir(), "fresh.ckpt"))
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	bp, _ := gcke.Benchmark("bp")
	sv, _ := gcke.Benchmark("sv")
	job := Job{Session: testSession(t), Kernels: []gcke.Kernel{bp, sv},
		Scheme: gcke.Scheme{Partition: gcke.PartitionEven}}

	r := New(1)
	r.Journal = j
	first := r.Run(context.Background(), []Job{job})
	if err := FirstErr(first); err != nil {
		t.Fatal(err)
	}
	if first[0].Replayed {
		t.Fatal("first run replayed")
	}

	// Same job again: replayed from the journal.
	replay := r.Run(context.Background(), []Job{job})
	if !replay[0].Replayed {
		t.Fatal("repeat run did not replay from journal")
	}

	// Fresh: must simulate despite the journal entry, and not append.
	fresh := job
	fresh.Fresh = true
	before := j.Len()
	res := r.Run(context.Background(), []Job{fresh})
	if err := FirstErr(res); err != nil {
		t.Fatal(err)
	}
	if res[0].Replayed || res[0].Cached {
		t.Fatal("fresh run served from storage")
	}
	if j.Len() != before {
		t.Fatal("fresh run wrote to the journal")
	}
	if res[0].Key != first[0].Key {
		t.Fatalf("Fresh changed the fingerprint: %q vs %q", res[0].Key, first[0].Key)
	}
	a, _ := json.Marshal(first[0].Res)
	b, _ := json.Marshal(res[0].Res)
	if string(a) != string(b) {
		t.Fatal("fresh re-execution diverged from the original run")
	}
}
