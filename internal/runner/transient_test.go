package runner

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	gcke "repro"
	"repro/internal/chaos"
	"repro/internal/gpu"
	"repro/internal/journal"
	"repro/internal/sm"
)

func TestIsTransient(t *testing.T) {
	timeoutErr := fmt.Errorf("%w (%w)",
		fmt.Errorf("%w at cycle 4096 of 50000", gpu.ErrInterrupted), context.DeadlineExceeded)
	cancelErr := fmt.Errorf("%w (%w)",
		fmt.Errorf("%w at cycle 4096 of 50000", gpu.ErrInterrupted), context.Canceled)
	cases := []struct {
		name string
		err  error
		want bool
	}{
		{"nil", nil, false},
		{"panic", &PanicError{Index: 1, Value: "boom"}, true},
		{"wrapped panic", fmt.Errorf("outer: %w", &PanicError{Index: 1}), true},
		{"timeout", timeoutErr, true},
		{"bare deadline", context.DeadlineExceeded, true},
		{"cancel", cancelErr, false},
		{"bare cancel", context.Canceled, false},
		{"invariant", &sm.InvariantError{Cycle: 10, Rule: "mil-cap"}, false},
		{"wrapped invariant", fmt.Errorf("point 3: %w", &sm.InvariantError{Rule: "mil-cap"}), false},
		{"validation", fmt.Errorf("gcke: StaticLimits has 1 entries for 2 kernels"), false},
		{"journal write", &journal.WriteError{Path: "p", Key: "k", Op: "sync", Err: fmt.Errorf("EIO")}, false},
		{"wrapped journal write", fmt.Errorf("runner: checkpointing k: %w",
			&journal.WriteError{Op: "sync", Err: fmt.Errorf("EIO")}), false},
	}
	for _, tc := range cases {
		if got := IsTransient(tc.err); got != tc.want {
			t.Errorf("IsTransient(%s) = %v, want %v", tc.name, got, tc.want)
		}
	}
}

// TestRunFaultSeam: an error returned by the Fault hook fails exactly
// that job; a panicking hook is recovered like any worker panic.
func TestRunFaultSeam(t *testing.T) {
	jobs := testJobs(t, testSession(t))
	r := New(4)
	r.Fault = func(ctx context.Context, index int, key string) error {
		switch index {
		case 1:
			return fmt.Errorf("injected fault for %s", key)
		case 3:
			panic("injected hook panic")
		}
		return nil
	}
	results := r.Run(context.Background(), jobs)
	for i, res := range results {
		switch i {
		case 1:
			if res.Err == nil || res.Res != nil {
				t.Fatalf("job 1: err=%v res=%v, want injected failure", res.Err, res.Res)
			}
		case 3:
			var pe *PanicError
			if !errors.As(res.Err, &pe) || pe.Index != 3 {
				t.Fatalf("job 3: err=%v, want recovered *PanicError", res.Err)
			}
		default:
			if res.Err != nil {
				t.Fatalf("job %d poisoned by injected faults: %v", i, res.Err)
			}
		}
	}
}

// TestRunChaosPanicThenRecover drives the Fault seam with the real
// chaos injector: every job's first attempt panics, a second Run of the
// same grid (same keys, budget spent) succeeds — the failing-then-
// recovering shape the service retry loop depends on.
func TestRunChaosPanicThenRecover(t *testing.T) {
	inj := chaos.New(chaos.Config{Seed: 3, PanicProb: 1, Failures: 1})
	s := testSession(t)
	r := New(4)
	r.Fault = inj.JobFault

	first := r.Run(context.Background(), testJobs(t, s))
	for i, res := range first {
		var pe *PanicError
		if !errors.As(res.Err, &pe) {
			t.Fatalf("first attempt job %d: err=%v, want *PanicError", i, res.Err)
		}
		if !IsTransient(res.Err) {
			t.Fatalf("job %d: injected panic not classified transient", i)
		}
	}
	second := r.Run(context.Background(), testJobs(t, s))
	if err := FirstErr(second); err != nil {
		t.Fatalf("retry after chaos budget spent still fails: %v", err)
	}
}

// TestRunTimeoutCancelRace exercises the race between the per-job
// deadline and parent-context cancellation firing together (under
// -race this doubles as the data-race check on the two ctx.Done paths):
// every job must fail with one of the two context errors — never a
// silent zero Result, never a mixed or missing attribution.
func TestRunTimeoutCancelRace(t *testing.T) {
	// A run far too long to finish, so only the two deadlines can end it.
	s := gcke.NewSession(gcke.ScaledConfig(2), 500_000_000)
	bp, _ := gcke.Benchmark("bp")
	sv, _ := gcke.Benchmark("sv")
	jobs := make([]Job, 8)
	for i := range jobs {
		jobs[i] = Job{Session: s, Kernels: []gcke.Kernel{bp, sv},
			Scheme: gcke.Scheme{Partition: gcke.PartitionEven}}
	}
	r := New(4)
	r.Timeout = 5 * time.Millisecond

	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		// Land the cancellation right on top of the per-job timeouts.
		time.Sleep(5 * time.Millisecond)
		cancel()
	}()
	results := r.Run(ctx, jobs)
	wg.Wait()
	for i, res := range results {
		if res.Err == nil {
			t.Fatalf("job %d: no error from an unfinishable run", i)
		}
		deadline := errors.Is(res.Err, context.DeadlineExceeded)
		cancelled := errors.Is(res.Err, context.Canceled)
		if !deadline && !cancelled {
			t.Fatalf("job %d: err=%v, want DeadlineExceeded or Canceled in chain", i, res.Err)
		}
		if res.Res != nil {
			t.Fatalf("job %d: result delivered alongside error", i)
		}
	}
}
