package runner

import (
	"context"
	"path/filepath"
	"reflect"
	"testing"

	gcke "repro"
	"repro/internal/journal"
	"repro/internal/resultcache"
)

// TestRunCacheHit: a repeated fingerprint is served from the result
// cache (Cached=true) with a result identical to the simulated one.
func TestRunCacheHit(t *testing.T) {
	c, err := resultcache.Open(resultcache.Options{})
	if err != nil {
		t.Fatal(err)
	}
	r := New(2)
	r.Cache = c
	jobs := testJobs(t, testSession(t))[:3]
	ctx := context.Background()

	cold := r.Run(ctx, jobs)
	if err := FirstErr(cold); err != nil {
		t.Fatal(err)
	}
	for i := range cold {
		if cold[i].Cached {
			t.Fatalf("job %d cached on a cold run", i)
		}
	}
	warm := r.Run(ctx, jobs)
	if err := FirstErr(warm); err != nil {
		t.Fatal(err)
	}
	for i := range warm {
		if !warm[i].Cached {
			t.Fatalf("job %d not served from cache on rerun", i)
		}
		if !reflect.DeepEqual(*cold[i].Res.RunResult, *warm[i].Res.RunResult) {
			t.Fatalf("job %d: cached result differs from simulated", i)
		}
		if cold[i].Res.WeightedSpeedup() != warm[i].Res.WeightedSpeedup() {
			t.Fatalf("job %d: cached WS differs", i)
		}
	}
	st := c.Stats()
	if st.Hits != 3 || st.Misses != 3 {
		t.Fatalf("cache stats = %+v, want 3 hits / 3 misses", st)
	}
}

// TestRunCachePersistsAcrossProcesses: with a disk-backed cache, a
// fresh runner (a "restarted process") serves the prior run's points
// without simulating.
func TestRunCachePersistsAcrossProcesses(t *testing.T) {
	path := filepath.Join(t.TempDir(), "results.jsonl")
	c1, err := resultcache.Open(resultcache.Options{Path: path})
	if err != nil {
		t.Fatal(err)
	}
	r1 := New(2)
	r1.Cache = c1
	jobs := testJobs(t, testSession(t))[:2]
	cold := r1.Run(context.Background(), jobs)
	if err := FirstErr(cold); err != nil {
		t.Fatal(err)
	}
	if err := c1.Close(); err != nil {
		t.Fatal(err)
	}

	c2, err := resultcache.Open(resultcache.Options{Path: path})
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	r2 := New(2)
	r2.Cache = c2
	warm := r2.Run(context.Background(), testJobs(t, testSession(t))[:2])
	if err := FirstErr(warm); err != nil {
		t.Fatal(err)
	}
	for i := range warm {
		if !warm[i].Cached {
			t.Fatalf("job %d not cached after restart", i)
		}
		if !reflect.DeepEqual(*cold[i].Res.RunResult, *warm[i].Res.RunResult) {
			t.Fatalf("job %d: restarted cache served a different result", i)
		}
	}
}

// TestJournalReplayPopulatesCache: a point restored from the checkpoint
// journal lands in the result cache, so the next repeat is a cache hit
// (journal lookups and cache hits stay distinguishable in Result).
func TestJournalReplayPopulatesCache(t *testing.T) {
	dir := t.TempDir()
	jnl, err := journal.Open(filepath.Join(dir, "sweep.ckpt"))
	if err != nil {
		t.Fatal(err)
	}
	jobs := testJobs(t, testSession(t))[:1]
	r1 := New(1)
	r1.Journal = jnl
	if err := FirstErr(r1.Run(context.Background(), jobs)); err != nil {
		t.Fatal(err)
	}

	c, err := resultcache.Open(resultcache.Options{})
	if err != nil {
		t.Fatal(err)
	}
	r2 := New(1)
	r2.Journal = jnl
	r2.Cache = c
	replayed := r2.Run(context.Background(), jobs)
	if err := FirstErr(replayed); err != nil {
		t.Fatal(err)
	}
	if !replayed[0].Replayed || replayed[0].Cached {
		t.Fatalf("want journal replay (Replayed, not Cached), got %+v", replayed[0])
	}
	again := r2.Run(context.Background(), jobs)
	if err := FirstErr(again); err != nil {
		t.Fatal(err)
	}
	if !again[0].Cached {
		t.Fatal("journal replay did not populate the result cache")
	}
}

// TestForkWarmupPropagatesToDerivedSessions: derived sessions inherit
// the runner's ForkWarmup, and family members reuse one warm snapshot.
func TestForkWarmupPropagatesToDerivedSessions(t *testing.T) {
	bp, _ := gcke.Benchmark("bp")
	sv, _ := gcke.Benchmark("sv")
	mk := func(limits []int) Job {
		return Job{
			Config: gcke.ScaledConfig(2), Cycles: 15_000, ProfileCycles: 10_000,
			Kernels: []gcke.Kernel{bp, sv},
			Scheme: gcke.Scheme{
				Partition: gcke.PartitionEven, Limiting: gcke.LimitStatic,
				StaticLimits: limits, Warmup: 5_000,
			},
		}
	}
	jobs := []Job{mk([]int{4, 4}), mk([]int{8, 8}), mk([]int{16, 16})}

	plain := New(2)
	ref := plain.Run(context.Background(), jobs)
	if err := FirstErr(ref); err != nil {
		t.Fatal(err)
	}
	if forks, _ := plain.ForkStats(); forks != 0 {
		t.Fatalf("forks without ForkWarmup = %d, want 0", forks)
	}

	forked := New(2)
	forked.ForkWarmup = true
	got := forked.Run(context.Background(), jobs)
	if err := FirstErr(got); err != nil {
		t.Fatal(err)
	}
	forks, bytes := forked.ForkStats()
	if forks != int64(len(jobs)) {
		t.Fatalf("forksTaken = %d, want %d", forks, len(jobs))
	}
	if bytes <= 0 {
		t.Fatalf("snapshotBytes = %d, want > 0", bytes)
	}
	for i := range got {
		if !reflect.DeepEqual(*ref[i].Res.RunResult, *got[i].Res.RunResult) {
			t.Fatalf("job %d: forked result differs from cold result", i)
		}
	}
}
