// Dynamic Warped-Slicer: the paper's baseline obtains scalability curves
// by profiling kernels *online* during concurrent execution — "running
// different numbers of TBs on SMs (1 TB on one SM, 2 TBs on a second SM
// and so on), where each SM is allocated to execute TBs from one kernel
// and time sharing of SMs is applied if the total number of possible TB
// configurations from all co-running kernels is more than the number of
// SMs" (Section 2.5).
//
// DynWS drives exactly that protocol through the GPU hook: profiling
// rounds assign each SM one (kernel, TB-count) configuration, let
// residency settle, measure IPC over a window, then move to the next
// round until every configuration is covered. The measured curves feed
// the same sweet-spot search as the static variant, and the chosen
// partition is applied to every SM for the rest of the run.

package core

import (
	"repro/internal/config"
	"repro/internal/gpu"
	"repro/internal/kern"
)

// dynAssign is one SM's profiling configuration.
type dynAssign struct {
	kernel int
	tbs    int
}

// DynWS is the online profiling controller. Create one per run and
// install its Hook in gpu.Options (HookInterval must divide the settle
// and window times; 1024 works).
type DynWS struct {
	cfg   *config.Config
	descs []*kern.Desc

	// SettleCycles is how long residency drains after a quota change
	// before measurement starts. WindowCycles is the measurement window.
	SettleCycles int64
	WindowCycles int64

	rounds [][]dynAssign
	curves [][]float64

	round      int
	phase      int // 0 settle, 1 measure
	phaseStart int64
	baseline   []uint64 // per-SM instruction counts at window start
	started    bool
	done       bool

	// Partition is the chosen per-kernel TB allocation once profiling
	// completes (nil before).
	Partition []int
	// TheoreticalWS is the sweet-spot sum of normalized measured IPCs.
	TheoreticalWS float64
	err           error
}

// NewDynWS plans the profiling schedule for the given workload.
func NewDynWS(cfg *config.Config, descs []*kern.Desc) *DynWS {
	d := &DynWS{
		cfg:          cfg,
		descs:        descs,
		SettleCycles: 4 * 1024,
		WindowCycles: 12 * 1024,
		curves:       make([][]float64, len(descs)),
	}
	// Enumerate every configuration: kernel k at 1..maxTBs(k).
	var all []dynAssign
	for k, desc := range descs {
		max := desc.MaxTBsPerSM(cfg)
		d.curves[k] = make([]float64, max)
		for n := 1; n <= max; n++ {
			all = append(all, dynAssign{kernel: k, tbs: n})
		}
	}
	// Time-share: chunk configurations into rounds of NumSMs.
	for len(all) > 0 {
		n := cfg.NumSMs
		if n > len(all) {
			n = len(all)
		}
		d.rounds = append(d.rounds, all[:n])
		all = all[n:]
	}
	return d
}

// Done reports whether profiling completed and the partition applied.
func (d *DynWS) Done() bool { return d.done }

// Err returns the sweet-spot search error, if any.
func (d *DynWS) Err() error { return d.err }

// ProfilingCycles returns the total length of the profiling phase.
func (d *DynWS) ProfilingCycles() int64 {
	return int64(len(d.rounds)) * (d.SettleCycles + d.WindowCycles)
}

// Hook drives the controller; install it as gpu.Options.Hook with an
// interval dividing SettleCycles and WindowCycles.
func (d *DynWS) Hook(g *gpu.GPU, cycle int64) {
	if d.done {
		return
	}
	if !d.started {
		d.started = true
		d.phase = 0
		d.phaseStart = cycle
		d.applyRound(g)
		return
	}
	switch d.phase {
	case 0: // settling
		if cycle-d.phaseStart >= d.SettleCycles {
			d.phase = 1
			d.phaseStart = cycle
			d.snapshot(g)
		}
	case 1: // measuring
		if cycle-d.phaseStart >= d.WindowCycles {
			d.record(g, cycle-d.phaseStart)
			d.round++
			if d.round >= len(d.rounds) {
				d.finish(g)
				return
			}
			d.phase = 0
			d.phaseStart = cycle
			d.applyRound(g)
		}
	}
}

// applyRound points each SM at its profiling configuration. SMs beyond
// the round's configurations idle on an even partition so they keep
// contributing realistic memory traffic.
func (d *DynWS) applyRound(g *gpu.GPU) {
	assigns := d.rounds[d.round]
	even := EvenQuota(d.cfg, d.descs)
	for i, s := range g.SMs {
		row := make([]int, len(d.descs))
		if i < len(assigns) {
			row[assigns[i].kernel] = assigns[i].tbs
		} else {
			copy(row, even)
		}
		s.SetQuota(row)
		s.Drain()
	}
}

func (d *DynWS) snapshot(g *gpu.GPU) {
	assigns := d.rounds[d.round]
	if d.baseline == nil {
		d.baseline = make([]uint64, d.cfg.NumSMs)
	}
	for i := range assigns {
		d.baseline[i] = g.SMs[i].K[assigns[i].kernel].Instrs
	}
}

func (d *DynWS) record(g *gpu.GPU, window int64) {
	assigns := d.rounds[d.round]
	for i, a := range assigns {
		instrs := g.SMs[i].K[a.kernel].Instrs - d.baseline[i]
		d.curves[a.kernel][a.tbs-1] = float64(instrs) / float64(window)
	}
}

// finish runs the sweet-spot search on the measured curves and applies
// the partition everywhere. If the search fails (e.g. a kernel measured
// zero IPC everywhere), it falls back to the even partition.
func (d *DynWS) finish(g *gpu.GPU) {
	row, theo, err := SweetSpot(d.cfg, d.descs, d.curves)
	if err != nil {
		d.err = err
		row = EvenQuota(d.cfg, d.descs)
		theo = 0
	}
	d.Partition = row
	d.TheoreticalWS = theo
	for _, s := range g.SMs {
		s.SetQuota(row)
	}
	d.done = true
}

// Curves exposes the measured scalability curves (after Done).
func (d *DynWS) Curves() [][]float64 { return d.curves }
