// SMK's periodic warp-instruction quota (the "+W" part of SMK-(P+W)).
//
// SMK profiles each kernel in isolation and periodically grants warp
// instruction quotas proportional to the isolated IPCs, so that resident
// kernels progress at rates mirroring their solo throughput (performance
// fairness on top of the DRF static partition). A kernel stops issuing
// when its quota is spent; a new quota set is assigned only when every
// kernel's quota reaches zero.

package core

import "repro/internal/sm"

// SMKGate is one SM's warp-instruction quota controller.
type SMKGate struct {
	quota []int64 // per-epoch grant
	rem   []int64
	// Liveness guard: if no gated kernel can spend its quota (e.g. a
	// kernel has no resident TBs), refresh after stuckAfter idle cycles
	// rather than deadlocking the SM.
	lastIssue  int64
	stuckAfter int64
}

// NewSMKGate builds the gate. isolatedIPC[k] is kernel k's profiled
// isolated IPC; epoch is the quota period in cycles. Each kernel's
// per-epoch grant is its proportional share of the epoch's issue
// bandwidth.
func NewSMKGate(isolatedIPC []float64, epoch int64) *SMKGate {
	n := len(isolatedIPC)
	g := &SMKGate{
		quota:      make([]int64, n),
		rem:        make([]int64, n),
		stuckAfter: 2048,
	}
	for k, ipc := range isolatedIPC {
		q := int64(ipc * float64(epoch) / float64(n))
		if q < 1 {
			q = 1
		}
		g.quota[k] = q
		g.rem[k] = q
	}
	return g
}

// CanIssue implements sm.IssueGate.
func (g *SMKGate) CanIssue(kernel int) bool { return g.rem[kernel] > 0 }

// OnIssue implements sm.IssueGate.
func (g *SMKGate) OnIssue(kernel int) {
	g.rem[kernel]--
	g.lastIssue = 0
	allSpent := true
	for _, r := range g.rem {
		if r > 0 {
			allSpent = false
			break
		}
	}
	if allSpent {
		for k := range g.rem {
			g.rem[k] = g.quota[k]
		}
	}
}

// Tick implements sm.IssueGate: the liveness guard.
func (g *SMKGate) Tick(cycle int64) {
	g.lastIssue++
	if g.lastIssue >= g.stuckAfter {
		for k := range g.rem {
			g.rem[k] = g.quota[k]
		}
		g.lastIssue = 0
	}
}

// Remaining exposes kernel k's unspent quota (tests and tracing).
func (g *SMKGate) Remaining(k int) int64 { return g.rem[k] }

var _ sm.IssueGate = (*SMKGate)(nil)
