package core

import (
	"testing"

	"repro/internal/config"
	"repro/internal/kern"
)

func pair(t *testing.T, a, b string) (*config.Config, []*kern.Desc) {
	t.Helper()
	cfg := config.Default()
	da, err := kern.ByName(a)
	if err != nil {
		t.Fatal(err)
	}
	db, err := kern.ByName(b)
	if err != nil {
		t.Fatal(err)
	}
	return &cfg, []*kern.Desc{&da, &db}
}

func TestFits(t *testing.T) {
	cfg, descs := pair(t, "bp", "sv")
	if !Fits(cfg, descs, []int{1, 1}) {
		t.Fatal("one TB each must fit")
	}
	if Fits(cfg, descs, []int{100, 100}) {
		t.Fatal("absurd partition must not fit")
	}
	// bp alone: 12 TBs is its occupancy limit.
	if !Fits(cfg, descs, []int{12, 0}) || Fits(cfg, descs, []int{13, 0}) {
		t.Fatal("bp occupancy limit must be 12 TBs")
	}
}

func TestSweetSpotPrefersLinearKernel(t *testing.T) {
	cfg, descs := pair(t, "bp", "sv")
	// Synthetic curves: bp scales linearly to 12 TBs; sv peaks at 4 TBs
	// then declines (the shape of the paper's Figure 3a).
	bpCurve := make([]float64, 12)
	for i := range bpCurve {
		bpCurve[i] = float64(i+1) / 12
	}
	svCurve := make([]float64, 16)
	for i := range svCurve {
		n := float64(i + 1)
		svCurve[i] = n / (1 + 0.25*n*n) // rises then falls, peak at n=2
	}
	tbs, theo, err := SweetSpot(cfg, descs, [][]float64{bpCurve, svCurve})
	if err != nil {
		t.Fatal(err)
	}
	if !Fits(cfg, descs, tbs) {
		t.Fatalf("partition %v infeasible", tbs)
	}
	if tbs[0] < 6 {
		t.Fatalf("linear kernel got only %d TBs: %v", tbs[0], tbs)
	}
	if tbs[1] > 6 {
		t.Fatalf("declining kernel got %d TBs (its peak is at 2): %v", tbs[1], tbs)
	}
	if theo <= 1.0 || theo > 2.0 {
		t.Fatalf("theoretical WS = %v, want in (1,2]", theo)
	}
}

func TestSweetSpotErrors(t *testing.T) {
	cfg, descs := pair(t, "bp", "sv")
	if _, _, err := SweetSpot(cfg, descs, [][]float64{{1}}); err == nil {
		t.Error("curve-count mismatch must error")
	}
	if _, _, err := SweetSpot(cfg, descs, [][]float64{{}, {1}}); err == nil {
		t.Error("empty curve must error")
	}
	if _, _, err := SweetSpot(cfg, descs, [][]float64{{0}, {0}}); err == nil {
		t.Error("all-zero curves must error")
	}
}

func TestDRFPartitionFeasibleAndMaximal(t *testing.T) {
	cfg, descs := pair(t, "bp", "sv")
	alloc := DRFPartition(cfg, descs)
	if !Fits(cfg, descs, alloc) {
		t.Fatalf("DRF partition %v infeasible", alloc)
	}
	// Maximal: no kernel can take one more TB.
	for k := range alloc {
		next := append([]int(nil), alloc...)
		next[k]++
		if Fits(cfg, descs, next) {
			t.Fatalf("DRF partition %v not maximal: kernel %d could take one more TB", alloc, k)
		}
	}
	if alloc[0] < 1 || alloc[1] < 1 {
		t.Fatalf("DRF must give every kernel at least one TB: %v", alloc)
	}
}

func TestDRFFairDominantShares(t *testing.T) {
	cfg, descs := pair(t, "hs", "cd") // very different resource shapes
	alloc := DRFPartition(cfg, descs)
	s0 := descs[0].DominantShare(cfg, alloc[0])
	s1 := descs[1].DominantShare(cfg, alloc[1])
	if s0 <= 0 || s1 <= 0 {
		t.Fatalf("degenerate shares: %v -> %v %v", alloc, s0, s1)
	}
	// DRF should not leave the shares wildly imbalanced.
	ratio := s0 / s1
	if ratio < 0.3 || ratio > 3.0 {
		t.Fatalf("dominant shares imbalanced: %v vs %v (alloc %v)", s0, s1, alloc)
	}
}

func TestSpatialQuotaCoversAllSMsAndKernels(t *testing.T) {
	cfg, descs := pair(t, "bp", "sv")
	q := SpatialQuota(cfg, descs)
	if len(q) != cfg.NumSMs {
		t.Fatalf("quota rows = %d, want %d", len(q), cfg.NumSMs)
	}
	smCount := make([]int, len(descs))
	for _, row := range q {
		owners := 0
		for k, v := range row {
			if v > 0 {
				owners++
				smCount[k]++
				if v != descs[k].MaxTBsPerSM(cfg) {
					t.Fatalf("spatial SM must run its kernel at full occupancy, got %d", v)
				}
			}
		}
		if owners != 1 {
			t.Fatalf("each SM must be owned by exactly one kernel, row %v", row)
		}
	}
	if smCount[0] != 8 || smCount[1] != 8 {
		t.Fatalf("16 SMs must split 8/8, got %v", smCount)
	}
}

func TestLeftoverQuota(t *testing.T) {
	cfg, descs := pair(t, "bp", "sv")
	alloc := LeftoverQuota(cfg, descs)
	if alloc[0] != descs[0].MaxTBsPerSM(cfg) {
		t.Fatalf("kernel 0 must get its occupancy limit, got %d", alloc[0])
	}
	if !Fits(cfg, descs, alloc) {
		t.Fatalf("leftover %v infeasible", alloc)
	}
}

func TestEvenQuotaFeasible(t *testing.T) {
	for _, names := range [][2]string{{"bp", "sv"}, {"hs", "cd"}, {"cp", "ks"}} {
		cfg, descs := pair(t, names[0], names[1])
		alloc := EvenQuota(cfg, descs)
		if !Fits(cfg, descs, alloc) {
			t.Errorf("%v: even quota %v infeasible", names, alloc)
		}
	}
}

func TestThreeKernelPartitions(t *testing.T) {
	cfg := config.Default()
	var descs []*kern.Desc
	for _, n := range []string{"bp", "sv", "dc"} {
		d, err := kern.ByName(n)
		if err != nil {
			t.Fatal(err)
		}
		dd := d
		descs = append(descs, &dd)
	}
	drf := DRFPartition(&cfg, descs)
	if !Fits(&cfg, descs, drf) {
		t.Fatalf("3-kernel DRF %v infeasible", drf)
	}
	for k, v := range drf {
		if v < 1 {
			t.Fatalf("kernel %d got no TBs: %v", k, drf)
		}
	}
	// Sweet spot over synthetic linear curves.
	curves := make([][]float64, 3)
	for i, d := range descs {
		m := d.MaxTBsPerSM(&cfg)
		c := make([]float64, m)
		for j := range c {
			c[j] = float64(j + 1)
		}
		curves[i] = c
	}
	tbs, _, err := SweetSpot(&cfg, descs, curves)
	if err != nil {
		t.Fatal(err)
	}
	if !Fits(&cfg, descs, tbs) {
		t.Fatalf("3-kernel sweet spot %v infeasible", tbs)
	}
}

func TestSMKGateQuotaProportionalToIPC(t *testing.T) {
	g := NewSMKGate([]float64{2.0, 1.0}, 1000)
	if g.Remaining(0) != 1000 || g.Remaining(1) != 500 {
		t.Fatalf("quotas = (%d,%d), want (1000,500)", g.Remaining(0), g.Remaining(1))
	}
}

func TestSMKGateBlocksAtZeroRefreshesWhenAllSpent(t *testing.T) {
	g := NewSMKGate([]float64{0.004, 0.002}, 1000) // quotas 2, 1
	if g.Remaining(0) != 2 || g.Remaining(1) != 1 {
		t.Fatalf("quotas = (%d,%d)", g.Remaining(0), g.Remaining(1))
	}
	g.OnIssue(0)
	g.OnIssue(0)
	if g.CanIssue(0) {
		t.Fatal("kernel 0 must be blocked at zero quota")
	}
	if !g.CanIssue(1) {
		t.Fatal("kernel 1 still has quota")
	}
	g.OnIssue(1)
	// All spent: refresh.
	if !g.CanIssue(0) || !g.CanIssue(1) {
		t.Fatal("quotas must refresh when all kernels are spent")
	}
}

func TestSMKGateLivenessGuard(t *testing.T) {
	g := NewSMKGate([]float64{0.002, 0.002}, 1000) // quotas 1, 1
	g.OnIssue(0)
	if g.CanIssue(0) {
		t.Fatal("spent")
	}
	// Kernel 1 never issues (e.g. no resident TBs): the guard must
	// refresh after the stuck window.
	for c := int64(0); c < 5000; c++ {
		g.Tick(c)
	}
	if !g.CanIssue(0) {
		t.Fatal("liveness guard did not refresh quotas")
	}
}
