package core

import (
	"testing"

	"repro/internal/config"
	"repro/internal/gpu"
	"repro/internal/kern"
	"repro/internal/sm"
)

func TestL2MILStartsOpen(t *testing.T) {
	l := NewL2MIL(2)
	if !l.Allow(0, 100) || !l.Allow(1, 100) {
		t.Fatal("fresh L2MIL must not limit")
	}
	if l.Limit(0) != milgPeakMax+1 {
		t.Fatalf("initial limit %d", l.Limit(0))
	}
}

func TestL2MILThrottlesDRAMBoundKernel(t *testing.T) {
	cfg := config.Scaled(2)
	bp, err := kern.ByName("bp")
	if err != nil {
		t.Fatal(err)
	}
	ks, err := kern.ByName("ks")
	if err != nil {
		t.Fatal(err)
	}
	descs := []*kern.Desc{&bp, &ks}
	l := NewL2MIL(2)
	opts := &gpu.Options{
		Cycles: 120_000,
		Quota:  gpu.UniformQuota(cfg.NumSMs, []int{7, 5}),
		Policies: gpu.PolicyFactory{
			Limiter: func(smID, n int) sm.Limiter { return l },
		},
		Hook:         l.Hook,
		HookInterval: 1024,
	}
	g, err := gpu.New(cfg, descs, opts)
	if err != nil {
		t.Fatal(err)
	}
	g.RunCycles(opts)
	// ks floods the L2/DRAM; its machine-wide limit must have been cut
	// well below the open value.
	if l.Limit(1) > milgPeakMax/2 {
		t.Fatalf("ks limit = %d, expected L2-side throttling", l.Limit(1))
	}
	r := g.Result()
	if r.Kernels[0].Instrs == 0 || r.Kernels[1].Instrs == 0 {
		t.Fatal("a kernel starved under L2MIL")
	}
}

func TestL2MILRecoversWhenHealthy(t *testing.T) {
	cfg := config.Scaled(1)
	l := NewL2MIL(1)
	l.limits[0] = 4
	bp, _ := kern.ByName("bp")
	descs := []*kern.Desc{&bp}
	opts := &gpu.Options{
		Cycles: 60_000,
		Quota:  gpu.UniformQuota(1, []int{2}), // light load: healthy L2
		Policies: gpu.PolicyFactory{
			Limiter: func(smID, n int) sm.Limiter { return l },
		},
		Hook:         l.Hook,
		HookInterval: 1024,
	}
	g, err := gpu.New(cfg, descs, opts)
	if err != nil {
		t.Fatal(err)
	}
	g.RunCycles(opts)
	if l.Limit(0) <= 4 {
		t.Fatalf("limit did not recover from 4: %d", l.Limit(0))
	}
}
