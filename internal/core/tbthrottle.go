// TB-granularity dynamic throttling, in the style of the thread-block
// throttling literature the paper positions itself against (Kayiran et
// al.'s DYNCTA; Section 5: "our schemes do not throttle any TBs or
// warps but limit the number of in-flight memory instructions"). The
// controller watches each SM's memory-pipeline stall fraction and
// adjusts per-kernel TB quotas: under heavy stalls the kernel
// generating the most L1D misses loses a thread block; when the
// pipeline is healthy, quotas recover toward the scheme's TB partition.
//
// The paper argues this granularity is too coarse — "WS loses the
// memory instruction limiting capability when there is only one TB from
// the memory-intensive kernel" — and the ablation
// (harness.AblationTBThrottle) measures exactly that comparison.

package core

import (
	"repro/internal/gpu"
)

// TBThrottle is the controller. Install Hook with an interval dividing
// Period.
type TBThrottle struct {
	// Target is the TB partition to recover toward (the scheme's
	// sweet-spot allocation).
	Target []int
	// Period is the decision interval in cycles.
	Period int64
	// StallCut is the per-SM stall fraction (per mille) above which a
	// TB is removed from the heaviest misser.
	StallCutPerMille int64

	lastComp   int64
	lastStall  []uint64
	lastMisses [][]uint64
}

// NewTBThrottle builds the controller for the given target partition.
func NewTBThrottle(target []int) *TBThrottle {
	return &TBThrottle{
		Target:           append([]int(nil), target...),
		Period:           8192,
		StallCutPerMille: 250,
	}
}

// Hook implements the gpu.Options hook.
func (t *TBThrottle) Hook(g *gpu.GPU, cycle int64) {
	if cycle-t.lastComp < t.Period {
		return
	}
	elapsed := cycle - t.lastComp
	if elapsed <= 0 {
		elapsed = 1
	}
	t.lastComp = cycle

	n := len(t.Target)
	if t.lastStall == nil {
		t.lastStall = make([]uint64, len(g.SMs))
		t.lastMisses = make([][]uint64, len(g.SMs))
		for i := range t.lastMisses {
			t.lastMisses[i] = make([]uint64, n)
		}
	}
	for i, s := range g.SMs {
		stallDelta := s.LSUStall - t.lastStall[i]
		t.lastStall[i] = s.LSUStall
		missDelta := make([]int64, n)
		var worst, worstDelta int64 = -1, -1
		for k := 0; k < n; k++ {
			m := s.L1.Stats[k].Misses
			missDelta[k] = int64(m - t.lastMisses[i][k])
			t.lastMisses[i][k] = m
			if missDelta[k] > worstDelta {
				worst, worstDelta = int64(k), missDelta[k]
			}
		}
		quota := append([]int(nil), s.Quota()...)
		if int64(stallDelta)*1000 >= elapsed*t.StallCutPerMille {
			// Unhealthy: remove one TB from the heaviest misser.
			if worst >= 0 && quota[worst] > 1 {
				quota[worst]--
			}
		} else {
			// Healthy: restore one TB toward the target partition.
			for k := 0; k < n; k++ {
				if quota[k] < t.Target[k] {
					quota[k]++
					break
				}
			}
		}
		s.SetQuota(quota)
	}
}
