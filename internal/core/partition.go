// Thread-block partitioning baselines: Warped-Slicer sweet-spot
// selection, SMK's dominant-resource-fair allocation, spatial
// multitasking and the left-over policy.

package core

import (
	"fmt"

	"repro/internal/config"
	"repro/internal/kern"
)

// Fits reports whether the given per-kernel TB counts satisfy every
// static resource constraint of one SM.
func Fits(cfg *config.Config, descs []*kern.Desc, tbs []int) bool {
	var threads, regs, smem, slots int
	for k, d := range descs {
		n := tbs[k]
		threads += n * d.ThreadsPerTB
		regs += n * d.ThreadsPerTB * d.RegsPerThread
		smem += n * d.SmemPerTB
		slots += n
	}
	return threads <= cfg.SM.MaxThreads &&
		regs <= cfg.SM.Registers &&
		smem <= cfg.SM.SmemBytes &&
		slots <= cfg.SM.MaxTBs
}

// SweetSpot implements Warped-Slicer's partitioning (Figure 3): given
// per-kernel scalability curves — curves[k][n-1] is kernel k's isolated
// IPC with n TBs per SM — it returns the feasible TB partition that
// minimizes the worst per-kernel performance degradation (maximizing
// min_k IPC_k(n_k)/IPC_k(n_max)), breaking ties by the sum of
// normalized IPCs. The second return value is the theoretical Weighted
// Speedup at the chosen point (Figure 4's "theoretical" series).
func SweetSpot(cfg *config.Config, descs []*kern.Desc, curves [][]float64) ([]int, float64, error) {
	k := len(descs)
	if k == 0 || len(curves) != k {
		return nil, 0, fmt.Errorf("core: SweetSpot needs one curve per kernel (%d vs %d)", len(curves), k)
	}
	peak := make([]float64, k)
	maxTB := make([]int, k)
	for i := range descs {
		maxTB[i] = len(curves[i])
		if maxTB[i] == 0 {
			return nil, 0, fmt.Errorf("core: kernel %s has an empty scalability curve", descs[i].Name)
		}
		for _, v := range curves[i] {
			if v > peak[i] {
				peak[i] = v
			}
		}
		if peak[i] <= 0 {
			return nil, 0, fmt.Errorf("core: kernel %s has a non-positive scalability curve", descs[i].Name)
		}
	}

	best := make([]int, k)
	bestMin, bestSum := -1.0, -1.0
	cur := make([]int, k)
	var walk func(i int)
	walk = func(i int) {
		if i == k {
			if !Fits(cfg, descs, cur) {
				return
			}
			mn, sum := 1e18, 0.0
			for j := 0; j < k; j++ {
				norm := curves[j][cur[j]-1] / peak[j]
				sum += norm
				if norm < mn {
					mn = norm
				}
			}
			if mn > bestMin || (mn == bestMin && sum > bestSum) {
				bestMin, bestSum = mn, sum
				copy(best, cur)
			}
			return
		}
		for n := 1; n <= maxTB[i]; n++ {
			cur[i] = n
			// Prune: infeasible prefixes only get worse.
			if !feasiblePrefix(cfg, descs, cur, i) {
				break
			}
			walk(i + 1)
		}
		cur[i] = 0
	}
	walk(0)
	if bestMin < 0 {
		return nil, 0, fmt.Errorf("core: no feasible TB partition for the workload")
	}
	return best, bestSum, nil
}

// feasiblePrefix checks resource feasibility considering only kernels
// 0..i (later kernels still need at least one TB each).
func feasiblePrefix(cfg *config.Config, descs []*kern.Desc, tbs []int, i int) bool {
	var threads, regs, smem, slots int
	for k := 0; k < len(descs); k++ {
		n := 1 // reserve one TB for kernels not yet assigned
		if k <= i {
			n = tbs[k]
		}
		d := descs[k]
		threads += n * d.ThreadsPerTB
		regs += n * d.ThreadsPerTB * d.RegsPerThread
		smem += n * d.SmemPerTB
		slots += n
	}
	return threads <= cfg.SM.MaxThreads &&
		regs <= cfg.SM.Registers &&
		smem <= cfg.SM.SmemBytes &&
		slots <= cfg.SM.MaxTBs
}

// DRFPartition implements SMK's static allocation: thread blocks are
// granted one at a time to the kernel with the smallest dominant share
// (its maximum used fraction across registers, shared memory, threads
// and TB slots) until nothing more fits. Every kernel receives at least
// one TB when feasible.
func DRFPartition(cfg *config.Config, descs []*kern.Desc) []int {
	k := len(descs)
	alloc := make([]int, k)
	for {
		bestK := -1
		bestShare := 0.0
		for i, d := range descs {
			next := append([]int(nil), alloc...)
			next[i]++
			if !Fits(cfg, descs, next) {
				continue
			}
			share := d.DominantShare(cfg, alloc[i])
			if bestK < 0 || share < bestShare {
				bestK, bestShare = i, share
			}
		}
		if bestK < 0 {
			break
		}
		alloc[bestK]++
	}
	return alloc
}

// SpatialQuota assigns whole SMs to kernels as evenly as possible
// (spatial multitasking): the returned matrix is Quota[sm][kernel].
func SpatialQuota(cfg *config.Config, descs []*kern.Desc) [][]int {
	k := len(descs)
	q := make([][]int, cfg.NumSMs)
	for s := 0; s < cfg.NumSMs; s++ {
		row := make([]int, k)
		owner := s * k / cfg.NumSMs
		row[owner] = descs[owner].MaxTBsPerSM(cfg)
		q[s] = row
	}
	return q
}

// LeftoverQuota implements the left-over policy: kernel 0 receives as
// many TBs as fit, each subsequent kernel fills what remains.
func LeftoverQuota(cfg *config.Config, descs []*kern.Desc) []int {
	alloc := make([]int, len(descs))
	for i := range descs {
		for {
			alloc[i]++
			if !Fits(cfg, descs, alloc) {
				alloc[i]--
				break
			}
		}
	}
	return alloc
}

// EvenQuota splits the SM as evenly as TB occupancy limits allow: each
// kernel gets floor(maxTBs/k) of its own limit (a simple non-profiled
// intra-SM baseline used by tests).
func EvenQuota(cfg *config.Config, descs []*kern.Desc) []int {
	k := len(descs)
	alloc := make([]int, k)
	for i, d := range descs {
		alloc[i] = d.MaxTBsPerSM(cfg) / k
		if alloc[i] < 1 {
			alloc[i] = 1
		}
	}
	for !Fits(cfg, descs, alloc) {
		// Shrink the largest allocation until feasible.
		maxI := 0
		for i := range alloc {
			if alloc[i] > alloc[maxI] {
				maxI = i
			}
		}
		if alloc[maxI] <= 1 {
			break
		}
		alloc[maxI]--
	}
	return alloc
}
