// Balanced Memory request Issuing (BMI), Section 3.2 of the paper.
//
// Both policies arbitrate the SM's single memory-instruction issue slot
// among the kernels that have a ready memory instruction in a cycle,
// preventing a memory-intensive kernel from starving its co-runners'
// access to the LSU.

package core

import (
	"fmt"

	"repro/internal/sm"
)

// RBMI issues memory instructions from concurrent kernels in a loose
// round-robin manner: the kernel after the last issuer has priority, but
// any ready kernel may issue when the preferred one has no candidate.
type RBMI struct {
	n    int
	next int
}

// NewRBMI builds an RBMI arbiter for n kernel slots.
func NewRBMI(n int) *RBMI { return &RBMI{n: n} }

// Pick implements sm.MemIssuePolicy.
func (r *RBMI) Pick(kernels []int) int {
	for off := 0; off < r.n; off++ {
		want := (r.next + off) % r.n
		for i, k := range kernels {
			if k == want {
				return i
			}
		}
	}
	return 0
}

// OnIssue implements sm.MemIssuePolicy.
func (r *RBMI) OnIssue(kernel, reqs int) {
	r.next = (kernel + 1) % r.n
}

var _ sm.MemIssuePolicy = (*RBMI)(nil)

// qbmiSampleReqs is the paper's resampling interval: Req/Minst of a
// kernel is re-estimated every 1024 memory requests it issues.
const qbmiSampleReqs = 1024

// rpmCap bounds the per-kernel Req/Minst estimate so the LCM stays
// small (the hardware uses small integer quota registers).
const rpmCap = 32

// QBMI is quota-based memory instruction issuing. Each kernel holds a
// quota computed as LCM(r_0..r_{K-1})/r_i, where r_i is its measured
// average requests per memory instruction; the kernel with the highest
// remaining quota has priority, each issue costs one quota unit, and a
// fresh quota set is *added* whenever any kernel's quota reaches zero
// (so a kernel alone on the memory pipeline is never blocked).
type QBMI struct {
	n     int
	quota []int64
	rpm   []int64 // current Req/Minst estimate, >= 1

	instrs []uint64 // memory instructions since last estimate
	reqs   []uint64 // requests since last estimate

	// RefreshAllZero switches to SMK-style refresh (new quotas only
	// once every kernel is spent). The paper refreshes when any kernel
	// reaches zero; this variant exists for the ablation study.
	RefreshAllZero bool
}

// NewQBMI builds a QBMI arbiter for n kernels. initRPM optionally seeds
// the Req/Minst estimates (nil starts at 1; the estimates converge after
// the first 1024 requests per kernel either way).
func NewQBMI(n int, initRPM []int) *QBMI {
	q := &QBMI{
		n:      n,
		quota:  make([]int64, n),
		rpm:    make([]int64, n),
		instrs: make([]uint64, n),
		reqs:   make([]uint64, n),
	}
	for i := 0; i < n; i++ {
		q.rpm[i] = 1
		if initRPM != nil && i < len(initRPM) && initRPM[i] > 0 {
			q.rpm[i] = int64(initRPM[i])
			if q.rpm[i] > rpmCap {
				q.rpm[i] = rpmCap
			}
		}
	}
	q.refresh()
	return q
}

// Pick implements sm.MemIssuePolicy: the candidate kernel with the
// largest remaining quota wins.
func (q *QBMI) Pick(kernels []int) int {
	best := 0
	for i := 1; i < len(kernels); i++ {
		if q.quota[kernels[i]] > q.quota[kernels[best]] {
			best = i
		}
	}
	return best
}

// OnIssue implements sm.MemIssuePolicy.
func (q *QBMI) OnIssue(kernel, reqs int) {
	q.instrs[kernel]++
	q.reqs[kernel] += uint64(reqs)
	if q.reqs[kernel] >= qbmiSampleReqs {
		rpm := int64((q.reqs[kernel] + q.instrs[kernel]/2) / q.instrs[kernel])
		if rpm < 1 {
			rpm = 1
		}
		if rpm > rpmCap {
			rpm = rpmCap
		}
		q.rpm[kernel] = rpm
		q.reqs[kernel] = 0
		q.instrs[kernel] = 0
	}
	q.quota[kernel]--
	if q.RefreshAllZero {
		for _, v := range q.quota {
			if v > 0 {
				return
			}
		}
		q.refresh()
		return
	}
	if q.quota[kernel] <= 0 {
		q.refresh()
	}
}

// refresh adds a new LCM-based quota set to the current values.
func (q *QBMI) refresh() {
	l := int64(1)
	for _, r := range q.rpm {
		l = lcm(l, r)
	}
	for i := range q.quota {
		q.quota[i] += l / q.rpm[i]
	}
}

// CheckInvariant asserts the quota conservation rule the refresh logic
// must maintain: quotas never go negative, and under the paper's refresh
// policy (a new LCM set is added the moment any kernel's quota reaches
// zero) every kernel holds at least one unit after each issue — a quota
// stuck at zero means the refresh never fired and that kernel is
// silently starved of the memory pipeline.
func (q *QBMI) CheckInvariant() error {
	for k, v := range q.quota {
		if v < 0 {
			return fmt.Errorf("QBMI quota of kernel %d is negative (%d)", k, v)
		}
		if v == 0 && !q.RefreshAllZero {
			return fmt.Errorf("QBMI quota of kernel %d stuck at zero without refresh", k)
		}
	}
	return nil
}

// Quota exposes the current quota of kernel k (for tests and tracing).
func (q *QBMI) Quota(k int) int64 { return q.quota[k] }

// RPM exposes the current Req/Minst estimate of kernel k.
func (q *QBMI) RPM(k int) int64 { return q.rpm[k] }

var _ sm.MemIssuePolicy = (*QBMI)(nil)

func gcd(a, b int64) int64 {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

func lcm(a, b int64) int64 {
	if a == 0 || b == 0 {
		return 0
	}
	return a / gcd(a, b) * b
}
