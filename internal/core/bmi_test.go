package core

import (
	"testing"
	"testing/quick"
)

func TestRBMIRoundRobin(t *testing.T) {
	r := NewRBMI(2)
	cands := []int{0, 1}
	// After kernel 0 issues, kernel 1 is preferred, and vice versa.
	pick := r.Pick(cands)
	r.OnIssue(cands[pick], 1)
	want := (cands[pick] + 1) % 2
	if got := cands[r.Pick(cands)]; got != want {
		t.Fatalf("after kernel %d issued, pick = %d, want %d", cands[pick], got, want)
	}
}

func TestRBMIFallsBackWhenPreferredAbsent(t *testing.T) {
	r := NewRBMI(3)
	r.OnIssue(0, 1) // prefer kernel 1 next
	// Only kernel 2 is a candidate.
	if got := r.Pick([]int{2}); got != 0 {
		t.Fatalf("pick = %d, want 0 (only candidate)", got)
	}
}

func TestQBMIQuotasInverseToRPM(t *testing.T) {
	// Paper formula: quota_i = LCM(r_0, r_1)/r_i. With r = (2, 3):
	// LCM 6 -> quotas (3, 2).
	q := NewQBMI(2, []int{2, 3})
	if q.Quota(0) != 3 || q.Quota(1) != 2 {
		t.Fatalf("quotas = (%d,%d), want (3,2)", q.Quota(0), q.Quota(1))
	}
}

func TestQBMIKsVsSv(t *testing.T) {
	// The paper's sv (3) and ks (17): LCM 51 -> quotas (17, 3).
	q := NewQBMI(2, []int{3, 17})
	if q.Quota(0) != 17 || q.Quota(1) != 3 {
		t.Fatalf("quotas = (%d,%d), want (17,3)", q.Quota(0), q.Quota(1))
	}
}

func TestQBMIPickHighestQuota(t *testing.T) {
	q := NewQBMI(2, []int{2, 3})
	if got := q.Pick([]int{0, 1}); got != 0 {
		t.Fatalf("pick = %d, want kernel 0 (quota 3 > 2)", got)
	}
	if got := q.Pick([]int{1, 0}); got != 1 {
		t.Fatalf("pick = %d, want index of kernel 0", got)
	}
}

func TestQBMIRefreshOnZero(t *testing.T) {
	q := NewQBMI(2, []int{2, 3})
	// Spend kernel 0's quota (3 issues of 2 requests each keeps rpm 2).
	for i := 0; i < 3; i++ {
		q.OnIssue(0, 2)
	}
	// Refresh must have added a new quota set to BOTH kernels: kernel 0
	// back to 3, kernel 1 still holding 2 + 2.
	if q.Quota(0) != 3 {
		t.Fatalf("kernel 0 quota after refresh = %d, want 3", q.Quota(0))
	}
	if q.Quota(1) != 4 {
		t.Fatalf("kernel 1 quota after refresh = %d, want 4 (2 banked + 2 new)", q.Quota(1))
	}
}

func TestQBMIBalancesRequests(t *testing.T) {
	// Simulate contention: both kernels always ready. Requests issued by
	// each kernel must converge to parity even though kernel 1 issues
	// many more requests per instruction.
	q := NewQBMI(2, []int{2, 16})
	reqs := [2]int{}
	cands := []int{0, 1}
	for i := 0; i < 10000; i++ {
		k := cands[q.Pick(cands)]
		var n int
		if k == 0 {
			n = 2
		} else {
			n = 16
		}
		q.OnIssue(k, n)
		reqs[k] += n
	}
	ratio := float64(reqs[0]) / float64(reqs[1])
	if ratio < 0.8 || ratio > 1.25 {
		t.Fatalf("request balance ratio = %v (reqs %v), want ~1", ratio, reqs)
	}
}

func TestQBMIRPMAdapts(t *testing.T) {
	q := NewQBMI(2, nil) // start with rpm 1
	// Kernel 0 issues 1024+ requests at 4 per instruction.
	for i := 0; i < 300; i++ {
		q.OnIssue(0, 4)
	}
	if got := q.RPM(0); got != 4 {
		t.Fatalf("rpm after resampling = %d, want 4", got)
	}
}

func TestQBMIRPMCapped(t *testing.T) {
	q := NewQBMI(1, []int{1000})
	if q.RPM(0) != rpmCap {
		t.Fatalf("rpm = %d, want capped at %d", q.RPM(0), rpmCap)
	}
}

func TestQBMISingleKernelNeverBlocked(t *testing.T) {
	q := NewQBMI(1, []int{5})
	for i := 0; i < 1000; i++ {
		if got := q.Pick([]int{0}); got != 0 {
			t.Fatal("single kernel must always win")
		}
		q.OnIssue(0, 5)
		if q.Quota(0) <= 0 {
			t.Fatal("refresh-on-zero must keep the quota positive")
		}
	}
}

func TestLCMGCD(t *testing.T) {
	cases := []struct{ a, b, want int64 }{
		{2, 3, 6}, {3, 17, 51}, {4, 6, 12}, {1, 1, 1}, {7, 7, 7},
	}
	for _, c := range cases {
		if got := lcm(c.a, c.b); got != c.want {
			t.Errorf("lcm(%d,%d) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestPropertyQuotaAlwaysPositiveAfterIssue(t *testing.T) {
	f := func(seq []uint8) bool {
		q := NewQBMI(3, []int{1, 3, 9})
		for _, s := range seq {
			k := int(s % 3)
			q.OnIssue(k, int(s%9)+1)
			// Refresh-on-zero invariant: no kernel stays at <= 0 after
			// the issuing kernel's quota is refreshed.
			if q.Quota(k) <= 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQBMIRefreshAllZeroVariant(t *testing.T) {
	q := NewQBMI(2, []int{2, 3}) // quotas (3, 2)
	q.RefreshAllZero = true
	for i := 0; i < 3; i++ {
		q.OnIssue(0, 2)
	}
	// Kernel 0 spent, kernel 1 still holds quota: no refresh yet.
	if q.Quota(0) > 0 {
		t.Fatalf("kernel 0 quota = %d, want <= 0 before all-zero refresh", q.Quota(0))
	}
	q.OnIssue(1, 3)
	q.OnIssue(1, 3)
	// Now all spent: refresh restores both.
	if q.Quota(0) <= 0 || q.Quota(1) <= 0 {
		t.Fatalf("quotas after all-zero refresh = (%d,%d)", q.Quota(0), q.Quota(1))
	}
}
