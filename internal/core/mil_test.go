package core

import "testing"

func TestSMILUnlimited(t *testing.T) {
	s := NewSMIL([]int{Unlimited, 4})
	if !s.Allow(0, 1000) {
		t.Fatal("Unlimited kernel must always be allowed")
	}
	if !s.Allow(1, 3) || s.Allow(1, 4) {
		t.Fatal("limit 4 must allow inflight<4 only")
	}
}

func TestSMILOutOfRangeKernel(t *testing.T) {
	s := NewSMIL([]int{2})
	if !s.Allow(5, 100) {
		t.Fatal("unknown kernel slots default to unlimited")
	}
}

func TestMILGStartsOpen(t *testing.T) {
	m := NewMILG()
	if m.Limit != milgPeakMax+1 {
		t.Fatalf("initial limit = %d, want %d", m.Limit, milgPeakMax+1)
	}
}

func TestMILGCutHalvesPeak(t *testing.T) {
	m := NewMILG()
	m.NoteInflight(64)
	m.cut()
	if m.Limit != 32 {
		t.Fatalf("cut limit = %d, want 32", m.Limit)
	}
}

func TestMILGCutFloorsAtOne(t *testing.T) {
	m := NewMILG()
	m.NoteInflight(1)
	m.cut()
	if m.Limit != 1 {
		t.Fatalf("cut floor = %d, want 1 (a kernel may never be fully blocked)", m.Limit)
	}
	m.cut()
	if m.Limit < 1 {
		t.Fatal("repeated cuts must not go below 1")
	}
}

func TestMILGReopenExponential(t *testing.T) {
	m := NewMILG()
	m.NoteInflight(10)
	m.cut() // limit 5, recover reset to 1
	base := m.Limit
	m.inflight = base
	var prev = base
	growth := []int{}
	for i := 0; i < 4; i++ {
		m.peak = prev
		m.reopen()
		growth = append(growth, m.Limit-prev)
		prev = m.Limit
		m.inflight = prev
	}
	// Steps double up to the cap of 4: 1, 2, 4, 4.
	want := []int{1, 2, 4, 4}
	for i := range want {
		if growth[i] != want[i] {
			t.Fatalf("recovery growth = %v, want %v", growth, want)
		}
	}
}

func TestMILGReopenCapped(t *testing.T) {
	m := NewMILG()
	m.peak = milgPeakMax
	m.reopen()
	if m.Limit > milgPeakMax+1 {
		t.Fatalf("limit %d exceeds the 7-bit counter ceiling", m.Limit)
	}
}

func TestMILGRsfailSaturates(t *testing.T) {
	m := NewMILG()
	for i := 0; i < 10000; i++ {
		m.OnRsFail()
	}
	if m.rsfail != milgRsfailMax {
		t.Fatalf("rsfail = %d, want saturated at %d (12-bit)", m.rsfail, milgRsfailMax)
	}
}

func TestMILGPeakTracksAndClamps(t *testing.T) {
	m := NewMILG()
	m.NoteInflight(50)
	m.NoteInflight(30)
	if m.peak != 50 {
		t.Fatalf("peak = %d, want 50", m.peak)
	}
	m.NoteInflight(500)
	if m.peak != milgPeakMax {
		t.Fatalf("peak = %d, want clamped to %d", m.peak, milgPeakMax)
	}
}

func TestMILGResidency(t *testing.T) {
	m := NewMILG()
	m.integral = 1000
	m.completed = 10
	if got := m.residency(); got != 100 {
		t.Fatalf("residency = %d, want 100", got)
	}
	m.completed = 0
	if got := m.residency(); got != 1000 {
		t.Fatalf("residency with zero completions = %d, want integral", got)
	}
}

func TestMILGCompletionCounting(t *testing.T) {
	m := NewMILG()
	m.NoteInflight(3) // issue of a 3-request instruction (0 -> 3)
	m.NoteInflight(2) // completion
	m.NoteInflight(1) // completion
	m.NoteInflight(0) // completion
	if m.completed != 3 {
		t.Fatalf("completed = %d, want 3", m.completed)
	}
}

func TestDMILThrottlesLongResidencyKernel(t *testing.T) {
	d := NewDMIL(2)
	// Kernel 0: short residency (fast turnover). Kernel 1: long
	// residency. Failures keep the pipeline unhealthy.
	cycle := int64(0)
	for interval := 0; interval < 20; interval++ {
		for i := 0; i < milgInterval; i++ {
			cycle++
			// Kernel 0 completes often; kernel 1 rarely.
			if i%10 == 0 {
				d.NoteInflight(0, 20+i%2) // wiggle around 20, completing
			}
			if i%200 == 0 {
				d.NoteInflight(1, 60+i%2)
			}
			d.OnRsFail(0)
			d.OnRsFail(1)
			d.Tick(cycle)
		}
	}
	// The long-residency kernel must be cut well below its observed
	// peak (~61); the victim's window must stay at or above its own
	// peak (~21) — it is never the one throttled.
	if d.Limit(1) > 40 {
		t.Fatalf("aggressor limit = %d, want cut below its ~61 peak", d.Limit(1))
	}
	if d.Limit(0) < 21 {
		t.Fatalf("victim limit = %d, must not fall below its ~21 peak", d.Limit(0))
	}
}

func TestDMILHealthyPipelineReopens(t *testing.T) {
	d := NewDMIL(2)
	// Force a cut first.
	d.NoteInflight(0, 64)
	d.NoteInflight(1, 64)
	cycle := int64(0)
	for i := 0; i < milgInterval+1; i++ {
		cycle++
		d.OnRsFail(0)
		d.OnRsFail(1)
		d.Tick(cycle)
	}
	cut0 := d.Limit(0)
	// Now run clean intervals: both must reopen.
	for i := 0; i < 4*milgInterval; i++ {
		cycle++
		d.Tick(cycle)
	}
	if d.Limit(0) <= cut0 {
		t.Fatalf("limit did not recover after clean intervals: %d <= %d", d.Limit(0), cut0)
	}
}

func TestDMILAllowUsesLimit(t *testing.T) {
	d := NewDMIL(1)
	d.gens[0].Limit = 5
	if !d.Allow(0, 4) || d.Allow(0, 5) {
		t.Fatal("Allow must compare inflight < limit")
	}
}

func TestGlobalDMILShared(t *testing.T) {
	g := NewGlobalDMIL(2)
	g.gens[0].Limit = 7
	if g.Limit(0) != 7 {
		t.Fatal("GlobalDMIL must expose the shared generators")
	}
}
