// L2MIL: memory instruction limiting driven by congestion *below* the
// L1 — the paper's Section 4.5 future work ("stalls encountered at the
// L1-interconnect and/or interconnect-L2 queues can be incorporated to
// obtain memory instruction limiting numbers").
//
// A single controller watches every L2 partition's per-kernel
// reservation failures plus the DRAM queue occupancy. Each interval it
// identifies the kernels responsible for at least an average share of
// the L2-side failures while the lower hierarchy is congested, halves
// their in-flight access limits machine-wide, and reopens everyone
// otherwise. The limits gate memory instruction issue at every SM, just
// like DMIL, but the feedback signal comes from the shared levels —
// useful when the interference point is the L2/DRAM rather than the
// private L1 (e.g. under cache bypassing).

package core

import (
	"repro/internal/gpu"
	"repro/internal/sm"
)

// L2MIL is the shared controller/limiter. Register the same instance as
// every SM's Limiter and install Hook as the gpu.Options hook.
type L2MIL struct {
	limits  []int
	recover []int

	lastRsFail []uint64
	lastMisses []uint64
	lastComp   int64

	// DRAMCongested is the queue occupancy (summed over channels) above
	// which the lower hierarchy counts as congested even without L2
	// reservation failures.
	DRAMCongested int
}

// NewL2MIL builds the controller for n kernel slots.
func NewL2MIL(n int) *L2MIL {
	l := &L2MIL{
		limits:        make([]int, n),
		recover:       make([]int, n),
		lastRsFail:    make([]uint64, n),
		lastMisses:    make([]uint64, n),
		DRAMCongested: 64,
	}
	for i := range l.limits {
		l.limits[i] = milgPeakMax + 1
		l.recover[i] = 1
	}
	return l
}

// Allow implements sm.Limiter.
func (l *L2MIL) Allow(kernel, inflight int) bool {
	return inflight < l.limits[kernel]
}

func (l *L2MIL) OnRequest(kernel int)              {}
func (l *L2MIL) OnRsFail(kernel int)               {}
func (l *L2MIL) NoteInflight(kernel, inflight int) {}
func (l *L2MIL) Tick(cycle int64)                  {}

var _ sm.Limiter = (*L2MIL)(nil)

// Limit exposes kernel k's current machine-wide limit.
func (l *L2MIL) Limit(k int) int { return l.limits[k] }

// Hook drives the controller; install with HookInterval dividing the
// 4096-cycle decision period.
func (l *L2MIL) Hook(g *gpu.GPU, cycle int64) {
	if cycle-l.lastComp < milgInterval {
		return
	}
	elapsed := cycle - l.lastComp
	if elapsed <= 0 {
		elapsed = 1
	}
	l.lastComp = cycle

	n := len(l.limits)
	deltas := make([]int64, n)
	var total int64
	for k := 0; k < n; k++ {
		st := g.L2KernelStats(k)
		rsDelta := int64(st.RsFail - l.lastRsFail[k])
		missDelta := int64(st.Misses - l.lastMisses[k])
		l.lastRsFail[k] = st.RsFail
		l.lastMisses[k] = st.Misses
		// Blame is L2 reservation-failure cycles when present; when the
		// congestion shows up only as a full DRAM queue, blame the L2
		// miss (DRAM traffic) contribution instead.
		deltas[k] = rsDelta*16 + missDelta
		total += deltas[k]
	}
	// The L2 heads retry once per cycle per partition, so failures are
	// normalized by interval cycles times partitions.
	parts := int64(g.Config().NumMemParts)
	congested := total >= elapsed*parts || g.DRAMQueueLen() >= l.DRAMCongested
	for k := 0; k < n; k++ {
		switch {
		case congested && deltas[k]*int64(n) >= total && total > 0:
			l.limits[k] >>= 1
			if l.limits[k] < 1 {
				l.limits[k] = 1
			}
			l.recover[k] = 1
		case congested:
			// Hold.
		default:
			l.limits[k] += l.recover[k]
			if l.limits[k] > milgPeakMax+1 {
				l.limits[k] = milgPeakMax + 1
			}
			if l.recover[k] < 16 {
				l.recover[k] *= 2
			}
		}
	}
}
