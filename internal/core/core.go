// Package core implements the paper's contribution: mechanisms that
// mitigate memory pipeline stalls under intra-SM concurrent kernel
// execution, plus the thread-block partitioning baselines they are
// evaluated on.
//
//   - Balanced Memory request Issuing (Section 3.2): RBMI issues memory
//     instructions from concurrent kernels round-robin; QBMI assigns
//     LCM-based quotas inversely proportional to each kernel's measured
//     requests-per-memory-instruction.
//   - Memory Instruction Limiting (Section 3.3): SMIL caps in-flight
//     memory instructions per kernel statically; DMIL adapts the cap at
//     runtime with one MILG (memory instruction limiting number
//     generator) per kernel per SM.
//   - TB partitioning baselines (Section 4): Warped-Slicer sweet-spot
//     selection from scalability curves, SMK's dominant-resource-fair
//     static partition with its periodic warp-instruction quota, spatial
//     multitasking, and the left-over policy.
package core
