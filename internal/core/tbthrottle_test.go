package core

import (
	"testing"

	"repro/internal/config"
	"repro/internal/gpu"
	"repro/internal/kern"
)

func TestTBThrottleReducesQuotaUnderStall(t *testing.T) {
	cfg := config.Scaled(2)
	bp, _ := kern.ByName("bp")
	ks, _ := kern.ByName("ks")
	descs := []*kern.Desc{&bp, &ks}
	target := []int{7, 5}
	tt := NewTBThrottle(target)
	opts := &gpu.Options{
		Cycles:       120_000,
		Quota:        gpu.UniformQuota(cfg.NumSMs, target),
		Hook:         tt.Hook,
		HookInterval: 1024,
	}
	g, err := gpu.New(cfg, descs, opts)
	if err != nil {
		t.Fatal(err)
	}
	g.RunCycles(opts)
	// Under bp+ks the pipeline stalls heavily; the heavy misser must
	// have lost TBs on at least one SM.
	reduced := false
	for _, s := range g.SMs {
		q := s.Quota()
		if q[0] < target[0] || q[1] < target[1] {
			reduced = true
		}
		for k, v := range q {
			if v < 1 || v > target[k] {
				t.Fatalf("quota %v out of [1, target] bounds", q)
			}
		}
	}
	if !reduced {
		t.Fatal("throttle never engaged despite heavy stalls")
	}
}

func TestTBThrottleRecoversWhenHealthy(t *testing.T) {
	cfg := config.Scaled(1)
	bp, _ := kern.ByName("bp")
	descs := []*kern.Desc{&bp}
	target := []int{8}
	tt := NewTBThrottle(target)
	// Start below target with a healthy pipeline: quota must recover.
	opts := &gpu.Options{
		Cycles:       60_000,
		Quota:        gpu.UniformQuota(1, []int{2}),
		Hook:         tt.Hook,
		HookInterval: 1024,
	}
	g, err := gpu.New(cfg, descs, opts)
	if err != nil {
		t.Fatal(err)
	}
	g.RunCycles(opts)
	if q := g.SMs[0].Quota()[0]; q < 6 {
		t.Fatalf("quota did not recover toward target: %d", q)
	}
}
