// Memory Instruction Limiting (MIL), Section 3.3 of the paper.
//
// Limits are expressed in in-flight memory *accesses* (coalesced
// requests): the paper's 7-bit in-flight counter saturates at 128 — the
// MSHR count, i.e. the number of accesses that can be outstanding at the
// L1D — so accesses are the unit that makes limits comparable across
// kernels with different coalescing degrees (a limit of 17 lets ks issue
// one 17-request instruction but bp eight 2-request ones).
//
// SMIL applies static per-kernel caps (the paper sweeps these in
// Figure 9). DMIL adapts the caps at runtime: each kernel on each SM
// owns a MILG — a memory instruction limiting number generator built
// from the paper's Figure 10 counters (7-bit peak in-flight, 12-bit
// saturating reservation-failure, 10-bit request).
//
// The paper's published update rule is
//
//	L_i = max(peak_inflight − (rsfail >> 10), 1)
//
// recomputed every 1024 requests, targeting "at most one reservation
// failure per memory request — a fully utilized/near stall-free memory
// pipeline". Applied verbatim in this simulator that rule cannot work,
// for reasons DESIGN.md §6.4 documents: in access units the subtraction
// is negligible against a peak of ~128, a stalled kernel reaches its
// 1024-request boundary only after millions of cycles, and per-request
// failure normalization cannot tell the aggressor from its victims
// (both see similar per-request failure rates while the aggressor's
// requests camp in the MSHRs for DRAM-scale latencies). The MILGs here
// therefore keep the paper's counters, floor-of-1 rule, and per-kernel
// per-SM structure, but decide once per fixed 4096-cycle interval with
// cross-kernel comparison inside each SM's DMIL unit:
//
//   - The pipeline is "unhealthy" when its reservation-failure (stall)
//     cycles exceed a quarter of the interval.
//   - When unhealthy, the kernels holding miss resources the longest
//     per request (time-integrated in-flight occupancy over completions
//     — residency, by Little's law) AND above an absolute floor that
//     only DRAM-bound traffic reaches are cut to half their observed
//     peak; everyone else keeps their window.
//   - Otherwise every window reopens past its observed peak with
//     exponentially growing steps (phase-change recovery, which the
//     paper's monotone formula lacks).

package core

import "repro/internal/sm"

// Unlimited is the SMIL cap meaning "no limit" (the paper's Inf point).
const Unlimited = 0

// SMIL statically caps in-flight memory instructions per kernel.
type SMIL struct {
	limits []int
}

// NewSMIL builds a static limiter; limits[k] == Unlimited disables the
// cap for kernel k.
func NewSMIL(limits []int) *SMIL {
	return &SMIL{limits: append([]int(nil), limits...)}
}

// Allow implements sm.Limiter.
func (s *SMIL) Allow(kernel, inflight int) bool {
	if kernel >= len(s.limits) || s.limits[kernel] == Unlimited {
		return true
	}
	return inflight < s.limits[kernel]
}

func (s *SMIL) OnRequest(kernel int)              {}
func (s *SMIL) OnRsFail(kernel int)               {}
func (s *SMIL) NoteInflight(kernel, inflight int) {}
func (s *SMIL) Tick(cycle int64)                  {}

// StaticLimit exposes kernel k's static cap (Unlimited = none). Only
// SMIL implements it: the invariant watchdog's cap rule applies to caps
// that never move during a run, while dynamic limiters (DMIL) may
// legitimately lower their limit below the current in-flight count.
func (s *SMIL) StaticLimit(k int) int {
	if k >= len(s.limits) {
		return Unlimited
	}
	return s.limits[k]
}

var _ sm.Limiter = (*SMIL)(nil)

// MILG hardware parameters (Section 4.4): counter widths bound the
// hardware cost to a few tens of bits per kernel per SM.
const (
	milgPeakBits   = 7  // up to 128 in-flight memory instructions
	milgRsfailBits = 12 // saturating failure counter
	milgReqBits    = 10 // sampling interval of 1024 requests
	milgShift      = 10 // rsfail >> 10 == failures per request

	milgPeakMax   = 1<<milgPeakBits - 1
	milgRsfailMax = 1<<milgRsfailBits - 1
	milgReqPeriod = 1 << milgReqBits
)

// milgMinCutResidency is the absolute residency (average in-flight
// cycles per request) below which a kernel is never throttled: an
// L2-resident kernel turns its miss entries over in well under this,
// so only kernels camping on miss resources for DRAM-scale latencies
// qualify as aggressors. This keeps C+C pairs (both fast-turnover)
// untouched, matching the paper's "no need to limit compute-intensive
// co-runners".
const milgMinCutResidency = 250

// milgInterval is the recompute period in cycles. The paper recomputes
// every 1024 requests; a stalled kernel issues requests slowly precisely
// because the pipeline is failing, so a fixed time window makes the
// generator converge within short experiments (the paper's runs are 2M
// cycles) and lets the failure counter be read as *stall cycles*: every
// failed attempt blocks the LSU head for exactly one cycle.
const milgInterval = 4096

// MILG is one memory instruction limiting number generator.
//
// It deviates from the paper's formula in one documented way: failures
// are normalized per interval cycle rather than per own request. A
// kernel whose instructions block the LSU head for a quarter of the
// interval is throttled multiplicatively; below a twelfth the limit
// recovers with exponential steps. Per-request normalization (the
// paper's rsfail >> 10) hides the asymmetry between an aggressor that
// monopolizes the memory pipeline with long-running bursts and its
// victims, because both see similar per-request failure rates while the
// aggressor absorbs nearly all failed cycles.
type MILG struct {
	Limit     int
	peak      int
	rsfail    uint32
	reqCount  uint32
	inflight  int
	integral  int64  // sum of inflight over the interval's cycles
	completed uint32 // requests completed in the interval
	lastComp  int64  // cycle of the last recompute
	recover   int    // recovery step, doubles per clean interval
}

// NewMILG returns a generator with the limit fully open.
func NewMILG() *MILG { return &MILG{Limit: milgPeakMax + 1, recover: 1} }

// cut halves the window (multiplicative decrease).
func (m *MILG) cut() {
	m.Limit = m.peak >> 1
	if m.Limit < 1 {
		m.Limit = 1
	}
	m.recover = 1
}

// hold keeps the current window (another kernel is the aggressor).
func (m *MILG) hold() {
	m.recover = 1
}

// reopen raises the window past the observed peak, doubling the step per
// consecutive clean interval so an over-throttled kernel recovers
// quickly after a phase change.
func (m *MILG) reopen() {
	if m.recover < 1 {
		m.recover = 1
	}
	m.Limit = m.peak + m.recover
	if m.Limit > milgPeakMax+1 {
		m.Limit = milgPeakMax + 1
	}
	if m.recover < 4 {
		m.recover *= 2
	}
}

// endInterval resets the interval counters.
func (m *MILG) endInterval(cycle int64) {
	m.reqCount = 0
	m.rsfail = 0
	m.peak = m.inflight
	m.integral = 0
	m.completed = 0
	m.lastComp = cycle
}

// OnRequest counts one issued memory request (10-bit saturating).
func (m *MILG) OnRequest() {
	if m.reqCount < milgReqPeriod-1 {
		m.reqCount++
	}
}

// OnRsFail counts one reservation failure (12-bit saturating).
func (m *MILG) OnRsFail() {
	if m.rsfail < milgRsfailMax {
		m.rsfail++
	}
}

// NoteInflight tracks the peak in-flight count of the interval and
// counts completions (an issue raises the count by the instruction's
// request count; a completion lowers it by exactly one).
func (m *MILG) NoteInflight(inflight int) {
	if inflight == m.inflight-1 {
		m.completed++
	}
	m.inflight = inflight
	if inflight > m.peak {
		m.peak = inflight
		if m.peak > milgPeakMax {
			m.peak = milgPeakMax
		}
	}
}

// residency is the interval's average cycles a request stayed in flight
// (time-integrated occupancy over completions, by Little's law).
func (m *MILG) residency() int64 {
	c := int64(m.completed)
	if c == 0 {
		c = 1
	}
	return m.integral / c
}

// DMIL is the dynamic limiter: one MILG per kernel (per SM — construct
// one DMIL per SM for the paper's "local DMIL").
type DMIL struct {
	gens     []*MILG
	cycle    int64
	lastComp int64
}

// NewDMIL builds a dynamic limiter for n kernel slots.
func NewDMIL(n int) *DMIL {
	d := &DMIL{gens: make([]*MILG, n)}
	for i := range d.gens {
		d.gens[i] = NewMILG()
	}
	return d
}

// Allow implements sm.Limiter.
func (d *DMIL) Allow(kernel, inflight int) bool {
	return inflight < d.gens[kernel].Limit
}

// OnRequest implements sm.Limiter.
func (d *DMIL) OnRequest(kernel int) { d.gens[kernel].OnRequest() }

// OnRsFail implements sm.Limiter.
func (d *DMIL) OnRsFail(kernel int) { d.gens[kernel].OnRsFail() }

// NoteInflight implements sm.Limiter.
func (d *DMIL) NoteInflight(kernel, inflight int) {
	d.gens[kernel].NoteInflight(inflight)
}

// Tick implements sm.Limiter. Every cycle it integrates each kernel's
// in-flight access count; every milgInterval cycles the generators
// decide: when the memory pipeline spent more than a sixteenth of the
// interval stalled, the kernels holding at least an average share of
// the miss resources the longest per request (residency — a DRAM-bound
// kernel's requests linger in MSHRs several times longer than an
// L2-resident kernel's, and neither failure counts nor raw occupancy
// separate aggressor from victim) are cut in half and the rest hold;
// otherwise every kernel's window reopens.
func (d *DMIL) Tick(cycle int64) {
	d.cycle = cycle
	for _, g := range d.gens {
		g.integral += int64(g.inflight)
	}
	if cycle-d.lastComp < milgInterval {
		return
	}
	elapsed := cycle - d.lastComp
	if elapsed <= 0 {
		elapsed = 1
	}
	var totalStall, totalRes int64
	for _, g := range d.gens {
		totalStall += int64(g.rsfail)
		totalRes += g.residency()
	}
	unhealthy := totalStall*4 >= elapsed
	n := int64(len(d.gens))
	for _, g := range d.gens {
		switch {
		case unhealthy && g.residency()*n >= totalRes && g.residency() >= milgMinCutResidency:
			g.cut()
		case unhealthy:
			// Victims reopen even while the pipeline is unhealthy: only
			// the aggressor should shrink.
			g.reopen()
		default:
			g.reopen()
		}
		g.endInterval(cycle)
	}
	d.lastComp = cycle
}

// Limit exposes kernel k's current limiting number.
func (d *DMIL) Limit(k int) int { return d.gens[k].Limit }

var _ sm.Limiter = (*DMIL)(nil)

// GlobalDMIL shares one set of MILGs across SMs (the paper's global
// variant, which requires every SM to run the same kernel mix; kept for
// the ablation study).
type GlobalDMIL struct {
	*DMIL
}

// NewGlobalDMIL builds the shared limiter; pass the same instance to
// every SM's factory slot.
func NewGlobalDMIL(n int) *GlobalDMIL { return &GlobalDMIL{DMIL: NewDMIL(n)} }
