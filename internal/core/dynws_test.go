package core

import (
	"testing"

	"repro/internal/config"
	"repro/internal/gpu"
	"repro/internal/kern"
)

func dynPair(t *testing.T) (config.Config, []*kern.Desc) {
	t.Helper()
	cfg := config.Scaled(4)
	a, err := kern.ByName("bp")
	if err != nil {
		t.Fatal(err)
	}
	b, err := kern.ByName("sv")
	if err != nil {
		t.Fatal(err)
	}
	return cfg, []*kern.Desc{&a, &b}
}

func TestDynWSSchedule(t *testing.T) {
	cfg, descs := dynPair(t)
	d := NewDynWS(&cfg, descs)
	// bp has 12 configurations, sv 16: 28 total over 4 SMs = 7 rounds.
	if got := len(d.rounds); got != 7 {
		t.Fatalf("rounds = %d, want 7", got)
	}
	seen := map[dynAssign]bool{}
	for _, round := range d.rounds {
		if len(round) > cfg.NumSMs {
			t.Fatalf("round with %d assignments on %d SMs", len(round), cfg.NumSMs)
		}
		for _, a := range round {
			if seen[a] {
				t.Fatalf("configuration %+v profiled twice", a)
			}
			seen[a] = true
		}
	}
	if len(seen) != 28 {
		t.Fatalf("covered %d configurations, want 28", len(seen))
	}
}

func TestDynWSConverges(t *testing.T) {
	cfg, descs := dynPair(t)
	d := NewDynWS(&cfg, descs)
	opts := &gpu.Options{
		Cycles:       d.ProfilingCycles() + 50_000,
		Quota:        gpu.UniformQuota(cfg.NumSMs, EvenQuota(&cfg, descs)),
		Hook:         d.Hook,
		HookInterval: 1024,
	}
	g, err := gpu.New(cfg, descs, opts)
	if err != nil {
		t.Fatal(err)
	}
	g.RunCycles(opts)
	if !d.Done() {
		t.Fatal("profiling did not complete")
	}
	if d.Err() != nil {
		t.Fatalf("sweet-spot search failed: %v", d.Err())
	}
	if len(d.Partition) != 2 || d.Partition[0] < 1 || d.Partition[1] < 1 {
		t.Fatalf("bad partition %v", d.Partition)
	}
	if !Fits(&cfg, descs, d.Partition) {
		t.Fatalf("partition %v infeasible", d.Partition)
	}
	// Every SM must hold the final uniform quota.
	for i, s := range g.SMs {
		q := s.Quota()
		if q[0] != d.Partition[0] || q[1] != d.Partition[1] {
			t.Fatalf("SM %d quota %v != partition %v", i, q, d.Partition)
		}
	}
	// Measured curves: bp's IPC at its max TBs must exceed its 1-TB IPC
	// (near-linear scaling).
	bpCurve := d.Curves()[0]
	if bpCurve[len(bpCurve)-1] <= bpCurve[0] {
		t.Fatalf("bp measured curve not increasing: %v", bpCurve)
	}
	if d.TheoreticalWS <= 0.5 {
		t.Fatalf("theoretical WS = %v", d.TheoreticalWS)
	}
}

func TestDynWSProfilingCyclesBound(t *testing.T) {
	cfg, descs := dynPair(t)
	d := NewDynWS(&cfg, descs)
	want := int64(7) * (d.SettleCycles + d.WindowCycles)
	if got := d.ProfilingCycles(); got != want {
		t.Fatalf("profiling cycles = %d, want %d", got, want)
	}
}
