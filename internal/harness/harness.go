// Package harness drives the paper's experiments: it owns the workload
// pair/triple sets, caches simulation results across figures, and
// renders the text tables that stand in for each figure and table of
// the evaluation (see DESIGN.md's experiment index).
package harness

import (
	"context"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"

	gcke "repro"
	"repro/internal/flight"
	"repro/internal/journal"
	"repro/internal/kern"
	"repro/internal/runner"
	"repro/internal/stats"
)

// Workload is a named kernel combination with its class label
// (C+C, C+M, M+M, or the 3-kernel variants).
type Workload struct {
	Names []string
	Class string
}

// Label renders "bp+sv".
func (w Workload) Label() string { return strings.Join(w.Names, "+") }

// classOf derives the class label (by the paper's Table 2 typing).
func classOf(names []string) string {
	parts := make([]string, len(names))
	for i, n := range names {
		d, err := kern.ByName(n)
		if err != nil {
			parts[i] = "?"
			continue
		}
		parts[i] = d.Class.String()
	}
	sort.Strings(parts) // C before M
	return strings.Join(parts, "+")
}

// NewWorkload builds a workload from kernel names.
func NewWorkload(names ...string) Workload {
	return Workload{Names: names, Class: classOf(names)}
}

// DefaultPairs is the 2-kernel workload set: the six pairs the paper
// examines closely plus further combinations covering every class.
func DefaultPairs() []Workload {
	pairs := [][]string{
		// The paper's selected two per class (Sections 3.1-3.4).
		{"pf", "bp"}, {"bp", "hs"}, // C+C
		{"bp", "sv"}, {"bp", "ks"}, // C+M
		{"sv", "ks"}, {"sv", "ax"}, // M+M
		// Additional coverage.
		{"cp", "dc"}, {"bs", "st"}, // C+C
		{"hs", "3m"}, {"st", "s2"}, {"cp", "cd"}, {"pf", "ax"}, // C+M
		{"3m", "s2"}, {"cd", "ks"}, // M+M
	}
	out := make([]Workload, len(pairs))
	for i, p := range pairs {
		out[i] = NewWorkload(p...)
	}
	return out
}

// AllPairs enumerates every 2-combination of the thirteen benchmarks
// (78 workloads, the paper's full sweep).
func AllPairs() []Workload {
	names := kern.Names()
	var out []Workload
	for i := 0; i < len(names); i++ {
		for j := i + 1; j < len(names); j++ {
			out = append(out, NewWorkload(names[i], names[j]))
		}
	}
	return out
}

// DefaultTriples is the 3-kernel workload set (Section 4.2), one or two
// per class.
func DefaultTriples() []Workload {
	triples := [][]string{
		{"pf", "bp", "dc"}, // C+C+C
		{"bp", "hs", "sv"}, // C+C+M
		{"bp", "sv", "ks"}, // C+M+M
		{"sv", "ks", "s2"}, // M+M+M
		{"cp", "st", "cd"}, // C+C+M
		{"pf", "3m", "ax"}, // C+M+M
	}
	out := make([]Workload, len(triples))
	for i, tr := range triples {
		out[i] = NewWorkload(tr...)
	}
	return out
}

// Harness runs and caches experiments against one Session. Experiment
// grids (every workload x scheme block) fan out over a bounded worker
// pool; because the engine is deterministic and results are rendered in
// submission order, the tables are byte-identical to a serial run.
type Harness struct {
	S   *gcke.Session
	Out io.Writer
	// Parallel bounds the worker pool used for experiment grids
	// (0 = GOMAXPROCS, 1 = strictly serial).
	Parallel int
	// Ctx, when non-nil, threads cancellation and deadlines into every
	// simulation the harness starts (nil means context.Background()).
	// Set it before the first Run.
	Ctx context.Context
	// Journal, when non-nil, checkpoints every completed workload run
	// keyed by its deterministic job fingerprint: on restart, journaled
	// points are replayed instead of re-simulated, and because the
	// engine is deterministic the re-rendered tables are byte-identical
	// to an uninterrupted run. Set it before the first Run.
	Journal *journal.Journal

	mu     sync.Mutex
	cache  map[string]*gcke.WorkloadResult
	flight flight.Group[string, *gcke.WorkloadResult]
}

// New creates a harness writing its tables to out.
func New(s *gcke.Session, out io.Writer) *Harness {
	return &Harness{S: s, Out: out, cache: make(map[string]*gcke.WorkloadResult)}
}

func (h *Harness) printf(format string, args ...any) {
	fmt.Fprintf(h.Out, format, args...)
}

func (h *Harness) ctx() context.Context {
	if h.Ctx != nil {
		return h.Ctx
	}
	return context.Background()
}

// kernels resolves a workload's descriptors.
func (h *Harness) kernels(w Workload) ([]gcke.Kernel, error) {
	out := make([]gcke.Kernel, len(w.Names))
	for i, n := range w.Names {
		d, err := gcke.Benchmark(n)
		if err != nil {
			return nil, err
		}
		out[i] = d
	}
	return out, nil
}

// Run simulates workload w under scheme, memoized. It is safe to call
// concurrently; concurrent calls with the same key share one simulation.
func (h *Harness) Run(w Workload, scheme gcke.Scheme) (*gcke.WorkloadResult, error) {
	key := w.Label() + "|" + scheme.Name() + fmt.Sprintf("|s%v|u%v|%v|q%v|b%v", scheme.Series, scheme.UCP, scheme.StaticLimits, scheme.QBMIRefreshAllZero, scheme.BypassL1) + fmt.Sprintf("|t%v", scheme.TBThrottle)
	h.mu.Lock()
	r, ok := h.cache[key]
	h.mu.Unlock()
	if ok {
		return r, nil
	}
	return h.flight.Do(key, func() (*gcke.WorkloadResult, error) {
		h.mu.Lock()
		r, ok := h.cache[key]
		h.mu.Unlock()
		if ok {
			return r, nil
		}
		ds, err := h.kernels(w)
		if err != nil {
			return nil, err
		}
		// Checkpoint fingerprint: the same identity the runner journals
		// under, so sweeps and harness figures share one journal.
		var ckpt string
		if h.Journal != nil {
			job := runner.Job{Session: h.S, Kernels: ds, Scheme: scheme}
			ckpt, err = job.Key()
			if err != nil {
				return nil, fmt.Errorf("%s under %s: %w", w.Label(), scheme.Name(), err)
			}
			var res gcke.WorkloadResult
			if ok, err := h.Journal.Lookup(ckpt, &res); err != nil {
				return nil, fmt.Errorf("%s under %s: reading journal: %w", w.Label(), scheme.Name(), err)
			} else if ok {
				h.mu.Lock()
				h.cache[key] = &res
				h.mu.Unlock()
				return &res, nil
			}
		}
		r, err = h.S.RunWorkloadCtx(h.ctx(), ds, scheme)
		if err != nil {
			return nil, fmt.Errorf("%s under %s: %w", w.Label(), scheme.Name(), err)
		}
		if h.Journal != nil {
			if err := h.Journal.Append(ckpt, r); err != nil {
				return nil, fmt.Errorf("%s under %s: checkpointing: %w", w.Label(), scheme.Name(), err)
			}
		}
		h.mu.Lock()
		h.cache[key] = r
		h.mu.Unlock()
		return r, nil
	})
}

// RunAll simulates every workload under every scheme on the harness's
// worker pool and returns results indexed [workload][scheme]. The first
// error (in grid order) aborts with a nil matrix.
func (h *Harness) RunAll(workloads []Workload, schemes []gcke.Scheme) ([][]*gcke.WorkloadResult, error) {
	results := make([][]*gcke.WorkloadResult, len(workloads))
	for i := range results {
		results[i] = make([]*gcke.WorkloadResult, len(schemes))
	}
	err := runner.MapErr(h.ctx(), h.Parallel, len(workloads)*len(schemes), func(k int) error {
		i, j := k/len(schemes), k%len(schemes)
		r, err := h.Run(workloads[i], schemes[j])
		if err != nil {
			return err
		}
		results[i][j] = r
		return nil
	})
	if err != nil {
		return nil, err
	}
	return results, nil
}

// classAverages groups per-workload values by class and appends an ALL
// row; classes are ordered C-first.
type classAgg struct {
	order []string
	vals  map[string][]float64
}

func newClassAgg() *classAgg {
	return &classAgg{vals: make(map[string][]float64)}
}

func (a *classAgg) add(class string, v float64) {
	if _, ok := a.vals[class]; !ok {
		a.order = append(a.order, class)
		sort.Strings(a.order)
	}
	a.vals[class] = append(a.vals[class], v)
	a.vals["ALL"] = append(a.vals["ALL"], v)
}

func (a *classAgg) rows() []string {
	return append(append([]string(nil), a.order...), "ALL")
}

func (a *classAgg) gmean(class string) float64 { return stats.GMean(a.vals[class]) }
func (a *classAgg) mean(class string) float64  { return stats.Mean(a.vals[class]) }
