// The motivation experiments: Figure 3 (scalability curves and the
// Warped-Slicer sweet spot), Figure 4 (theoretical vs achieved weighted
// speedup), Figure 5 (why L1D cache partitioning does not help) and
// Figure 6 (the compute kernel starving at the L1D).

package harness

import (
	gcke "repro"
	"repro/internal/runner"
	"repro/internal/stats"
)

// Figure3 prints the scalability curves of the two kernels and the
// sweet-spot partition Warped-Slicer selects.
func (h *Harness) Figure3(a, b string) error {
	w := NewWorkload(a, b)
	ds, err := h.kernels(w)
	if err != nil {
		return err
	}
	h.printf("Figure 3(a) — isolated IPC vs thread blocks per SM\n")
	curves := make([][]float64, 2)
	if err := runner.MapErr(h.ctx(), h.Parallel, len(ds), func(i int) error {
		c, err := h.S.CurveCtx(h.ctx(), ds[i])
		curves[i] = c
		return err
	}); err != nil {
		return err
	}
	for i, d := range ds {
		h.printf("%-4s:", d.Name)
		for _, v := range curves[i] {
			h.printf(" %6.2f", v)
		}
		h.printf("\n")
	}
	row, theo, err := h.S.Partition(ds, gcke.PartitionWarpedSlicer, nil)
	if err != nil {
		return err
	}
	h.printf("\nFigure 3(b) — sweet spot: %v TBs from %s, %v TBs from %s (theoretical WS %.2f)\n",
		row[0], a, row[1], b, theo)
	return nil
}

// Figure4Row is one class's theoretical-vs-achieved gap.
type Figure4Row struct {
	Class                 string
	Theoretical, Achieved float64
}

// Figure4 runs the pair set under Warped-Slicer and compares the
// theoretical weighted speedup at the chosen partition with the
// achieved one.
func (h *Harness) Figure4(pairs []Workload) ([]Figure4Row, error) {
	results, err := h.RunAll(pairs, []gcke.Scheme{{Partition: gcke.PartitionWarpedSlicer}})
	if err != nil {
		return nil, err
	}
	theo := newClassAgg()
	ach := newClassAgg()
	for i, w := range pairs {
		res := results[i][0]
		theo.add(w.Class, res.TheoreticalWS)
		ach.add(w.Class, res.WeightedSpeedup())
	}
	var rows []Figure4Row
	for _, c := range theo.rows() {
		rows = append(rows, Figure4Row{Class: c, Theoretical: theo.gmean(c), Achieved: ach.gmean(c)})
	}
	h.printf("Figure 4 — theoretical vs achieved Weighted Speedup under Warped-Slicer (gmean)\n")
	h.printf("%-6s %12s %9s %7s\n", "class", "theoretical", "achieved", "gap")
	for _, r := range rows {
		gap := 0.0
		if r.Theoretical > 0 {
			gap = 1 - r.Achieved/r.Theoretical
		}
		h.printf("%-6s %12.3f %9.3f %6.1f%%\n", r.Class, r.Theoretical, r.Achieved, gap*100)
	}
	return rows, nil
}

// Figure5Row compares WS with WS plus UCP L1D partitioning for one pair.
type Figure5Row struct {
	Pair           string
	Class          string
	WSBase, WSUCP  float64
	Miss0B, Miss1B float64 // per-kernel L1D miss rates, baseline
	Miss0U, Miss1U float64 // ... under UCP
	Rsf0B, Rsf1B   float64 // per-kernel rsfail rates, baseline
	Rsf0U, Rsf1U   float64
}

// Figure5 evaluates UCP cache partitioning on the paper's six selected
// pairs (plus class geometric means over the full set).
func (h *Harness) Figure5(pairs []Workload) ([]Figure5Row, error) {
	results, err := h.RunAll(pairs, []gcke.Scheme{
		{Partition: gcke.PartitionWarpedSlicer},
		{Partition: gcke.PartitionWarpedSlicer, UCP: true},
	})
	if err != nil {
		return nil, err
	}
	var rows []Figure5Row
	base := newClassAgg()
	ucp := newClassAgg()
	for i, w := range pairs {
		rb, ru := results[i][0], results[i][1]
		base.add(w.Class, rb.WeightedSpeedup())
		ucp.add(w.Class, ru.WeightedSpeedup())
		rows = append(rows, Figure5Row{
			Pair: w.Label(), Class: w.Class,
			WSBase: rb.WeightedSpeedup(), WSUCP: ru.WeightedSpeedup(),
			Miss0B: rb.Kernels[0].L1D.MissRate(), Miss1B: rb.Kernels[1].L1D.MissRate(),
			Miss0U: ru.Kernels[0].L1D.MissRate(), Miss1U: ru.Kernels[1].L1D.MissRate(),
			Rsf0B: rb.Kernels[0].L1D.RsFailRate(), Rsf1B: rb.Kernels[1].L1D.RsFailRate(),
			Rsf0U: ru.Kernels[0].L1D.RsFailRate(), Rsf1U: ru.Kernels[1].L1D.RsFailRate(),
		})
	}
	h.printf("Figure 5 — effectiveness of UCP L1D cache partitioning on Warped-Slicer\n")
	h.printf("(a) Weighted Speedup (class gmean, then selected pairs)\n")
	h.printf("%-8s %7s %15s\n", "class", "WS", "WS-L1DPartition")
	for _, c := range base.rows() {
		h.printf("%-8s %7.3f %15.3f\n", c, base.gmean(c), ucp.gmean(c))
	}
	h.printf("\n%-8s %7s %8s | (b) miss k0/k1 base->UCP | (c) rsfail k0/k1 base->UCP\n",
		"pair", "WS", "WS-UCP")
	for _, r := range rows {
		h.printf("%-8s %7.3f %8.3f |  %.2f/%.2f -> %.2f/%.2f   |  %.2f/%.2f -> %.2f/%.2f\n",
			r.Pair, r.WSBase, r.WSUCP,
			r.Miss0B, r.Miss1B, r.Miss0U, r.Miss1U,
			r.Rsf0B, r.Rsf1B, r.Rsf0U, r.Rsf1U)
	}
	return rows, nil
}

// Figure6 prints L1D accesses per 1K cycles for a C+M pair: each kernel
// in isolation, then concurrently (the starvation time series).
func (h *Harness) Figure6(a, b string, buckets int) error {
	w := NewWorkload(a, b)
	ds, err := h.kernels(w)
	if err != nil {
		return err
	}
	h.printf("Figure 6 — L1D accesses per %d cycles (%s compute, %s memory)\n",
		stats.SeriesInterval, a, b)
	// The two isolated series runs and the concurrent run are
	// independent simulations; overlap them on the pool.
	iso := make([]*gcke.RunResult, 2)
	var co *gcke.WorkloadResult
	if err := runner.MapErr(h.ctx(), h.Parallel, 3, func(i int) error {
		var err error
		if i < 2 {
			iso[i], err = h.S.RunIsolatedSeriesCtx(h.ctx(), ds[i])
		} else {
			co, err = h.Run(w, gcke.Scheme{Partition: gcke.PartitionWarpedSlicer, Series: true})
		}
		return err
	}); err != nil {
		return err
	}
	limit := func(s []uint32) []uint32 {
		if buckets > 0 && len(s) > buckets {
			return s[:buckets]
		}
		return s
	}
	h.printf("%-10s", "bucket")
	series := [][]uint32{
		limit(iso[0].Kernels[0].Series.L1Acc),
		limit(iso[1].Kernels[0].Series.L1Acc),
		limit(co.Kernels[0].Series.L1Acc),
		limit(co.Kernels[1].Series.L1Acc),
	}
	labels := []string{a + "-alone", b + "-alone", a + "-co", b + "-co"}
	for _, l := range labels {
		h.printf(" %9s", l)
	}
	h.printf("\n")
	n := len(series[0])
	for _, s := range series[1:] {
		if len(s) < n {
			n = len(s)
		}
	}
	for i := 0; i < n; i++ {
		h.printf("%-10d", i)
		for _, s := range series {
			h.printf(" %9d", s[i])
		}
		h.printf("\n")
	}
	// Summary: average accesses per bucket, the paper's headline
	// comparison (bp drops well below its isolated rate; sv dominates).
	h.printf("avg/1K:   ")
	for _, s := range series {
		var sum uint64
		for _, v := range s {
			sum += uint64(v)
		}
		h.printf(" %9.0f", float64(sum)/float64(len(s)))
	}
	h.printf("\n")
	return nil
}
