// Table 2 and Figure 2: benchmark characterization in isolation.

package harness

import (
	"repro/internal/kern"
	"repro/internal/runner"
)

// Table2Row is one benchmark's measured characteristics.
type Table2Row struct {
	Name                   string
	RFOcc, SmemOcc         float64
	ThreadOcc, TBOcc       float64
	CinstPerMinst          float64
	ReqPerMinst            float64
	L1DMissRate, L1DRsfail float64
	Class                  kern.Class
	IPC, ALUUtil, SFUUtil  float64
	LSUStallFrac           float64
}

// Table2 characterizes every benchmark in isolation (Table 2 and the
// Figure 2 series in one pass); the thirteen isolated runs execute
// concurrently on the harness's pool.
func (h *Harness) Table2() ([]Table2Row, error) {
	cfg := h.S.Config()
	names := kern.Names()
	rows := make([]Table2Row, len(names))
	err := runner.MapErr(h.ctx(), h.Parallel, len(names), func(i int) error {
		d, err := gckeBenchmark(names[i])
		if err != nil {
			return err
		}
		r, err := h.S.RunIsolatedCtx(h.ctx(), d)
		if err != nil {
			return err
		}
		cls, err := h.S.ClassifyCtx(h.ctx(), d)
		if err != nil {
			return err
		}
		occ := d.OccupancyAt(&cfg, d.MaxTBsPerSM(&cfg))
		k := r.Kernels[0]
		row := Table2Row{
			Name:         d.Name,
			RFOcc:        occ.RF,
			SmemOcc:      occ.Smem,
			ThreadOcc:    occ.Threads,
			TBOcc:        occ.TBs,
			L1DMissRate:  k.L1D.MissRate(),
			L1DRsfail:    k.L1D.RsFailRate(),
			Class:        cls,
			IPC:          k.IPC,
			ALUUtil:      r.ALUUtil(),
			SFUUtil:      r.SFUUtil(),
			LSUStallFrac: r.LSUStallFrac(),
		}
		if k.MemInstrs > 0 {
			row.CinstPerMinst = float64(k.Instrs-k.MemInstrs) / float64(k.MemInstrs)
			row.ReqPerMinst = float64(k.Requests) / float64(k.MemInstrs)
		}
		rows[i] = row
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// PrintTable2 renders the Table 2 reproduction.
func (h *Harness) PrintTable2() error {
	rows, err := h.Table2()
	if err != nil {
		return err
	}
	h.printf("Table 2 — benchmark characteristics (measured in isolation)\n")
	h.printf("%-5s %6s %8s %8s %7s %7s %7s %9s %11s %5s\n",
		"bench", "RF_oc", "SMEM_oc", "Thrd_oc", "TB_oc", "C/Minst", "Req/M", "l1d_miss", "l1d_rsfail", "type")
	for _, r := range rows {
		h.printf("%-5s %5.1f%% %7.1f%% %7.1f%% %6.1f%% %7.1f %7.1f %9.3f %11.3f %5s\n",
			r.Name, r.RFOcc*100, r.SmemOcc*100, r.ThreadOcc*100, r.TBOcc*100,
			r.CinstPerMinst, r.ReqPerMinst, r.L1DMissRate, r.L1DRsfail, r.Class)
	}
	h.printf("\nFigure 2 — computing resource utilization and LSU stalls\n")
	h.printf("%-5s %9s %9s %9s\n", "bench", "ALU_util", "SFU_util", "LSU_stall")
	for _, r := range rows {
		h.printf("%-5s %9.3f %9.3f %8.1f%%\n", r.Name, r.ALUUtil, r.SFUUtil, r.LSUStallFrac*100)
	}
	return nil
}

// gckeBenchmark adapts kern.ByName to the facade type.
func gckeBenchmark(name string) (kernDesc, error) {
	return kern.ByName(name)
}

type kernDesc = kern.Desc
