// Paper-vs-measured comparison: the published Table 2 characteristics
// and the evaluation's headline numbers, lined up against what this
// reproduction measures. ckebench writes the result to
// results/paper-vs-measured.txt, which EXPERIMENTS.md mirrors.

package harness

import (
	gcke "repro"
	"repro/internal/kern"
)

// paperTable2 is the published benchmark characterization (Table 2).
type paperTable2Row struct {
	CinstPerMinst float64
	ReqPerMinst   float64
	MissRate      float64
	RsfailRate    float64
	Class         kern.Class
}

// PaperTable2 returns the published Table 2 rows by benchmark name.
func PaperTable2() map[string]paperTable2Row {
	return map[string]paperTable2Row{
		"cp": {4, 2, 0.45, 0.04, kern.Compute},
		"hs": {7, 3, 0.97, 1.53, kern.Compute},
		"dc": {5, 1, 0.09, 0.17, kern.Compute},
		"pf": {6, 2, 0.99, 0.00, kern.Compute},
		"bp": {6, 2, 0.80, 0.33, kern.Compute},
		"bs": {4, 1, 1.00, 0.00, kern.Compute},
		"st": {4, 1, 0.67, 1.15, kern.Compute},
		"3m": {2, 1, 0.63, 5.45, kern.Memory},
		"sv": {3, 3, 0.78, 5.23, kern.Memory},
		"cd": {9, 6, 0.96, 7.23, kern.Memory},
		"s2": {2, 2, 0.92, 6.80, kern.Memory},
		"ks": {3, 17, 1.00, 7.96, kern.Memory},
		"ax": {2, 11, 0.97, 79.70, kern.Memory},
	}
}

// PaperHeadlines are the published evaluation results this reproduction
// targets at shape level.
type PaperHeadlines struct {
	// Average Weighted Speedups (Section 4.1.1): Spatial 1.13, WS 1.20,
	// WS-QBMI 1.22 (+1.5%), WS-DMIL 1.49 (+24.6%).
	SpatialWS, WSWS, WSQBMIWS, WSDMILWS float64
	// ANTT improvements over WS: QBMI 40.5%, DMIL 56.1%.
	QBMIANTTGain, DMILANTTGain float64
	// Fairness improvements over WS: QBMI 17.8%, DMIL 32.3%.
	QBMIFairGain, DMILFairGain float64
	// SMK (Section 4.1.2): WS gains of QBMI 4.4%, DMIL 27.2% over
	// SMK-(P+W); ANTT gains 49.2% and 64.6%.
	SMKQBMIWSGain, SMKDMILWSGain     float64
	SMKQBMIANTTGain, SMKDMILANTTGain float64
	// 3-kernel (Section 4.2): WS gains 3.2% / 19.4%; ANTT 58.3% / 68.7%.
	TriQBMIWSGain, TriDMILWSGain float64
}

// Published returns the paper's headline numbers.
func Published() PaperHeadlines {
	return PaperHeadlines{
		SpatialWS: 1.13, WSWS: 1.20, WSQBMIWS: 1.22, WSDMILWS: 1.49,
		QBMIANTTGain: 0.405, DMILANTTGain: 0.561,
		QBMIFairGain: 0.178, DMILFairGain: 0.323,
		SMKQBMIWSGain: 0.044, SMKDMILWSGain: 0.272,
		SMKQBMIANTTGain: 0.492, SMKDMILANTTGain: 0.646,
		TriQBMIWSGain: 0.032, TriDMILWSGain: 0.194,
	}
}

// PaperComparison runs the characterization and the headline evaluation
// and prints paper-vs-measured, side by side.
func (h *Harness) PaperComparison(pairs []Workload, triples []Workload) error {
	rows, err := h.Table2()
	if err != nil {
		return err
	}
	paper := PaperTable2()
	h.printf("Table 2 — paper vs measured\n")
	h.printf("%-5s | %5s %5s | %9s %9s | %10s %10s | %5s %5s\n",
		"bench", "C/M", "meas", "miss(pap)", "miss(mea)", "rsf(paper)", "rsf(meas)", "type", "meas")
	classOK := 0
	for _, r := range rows {
		p := paper[r.Name]
		match := " "
		if p.Class == r.Class {
			classOK++
			match = "="
		}
		h.printf("%-5s | %5.0f %5.1f | %9.2f %9.2f | %10.2f %10.2f | %4s%s %4s\n",
			r.Name, p.CinstPerMinst, r.CinstPerMinst,
			p.MissRate, r.L1DMissRate, p.RsfailRate, r.L1DRsfail,
			p.Class, match, r.Class)
	}
	h.printf("classification agreement: %d/13\n\n", classOK)

	// Headline gains over the WS baseline.
	pub := Published()
	gather := func(sc gcke.Scheme, ws []Workload) (wsv, antt, fair float64, err error) {
		results, err := h.RunAll(ws, []gcke.Scheme{sc})
		if err != nil {
			return 0, 0, 0, err
		}
		aggWS, aggANTT, aggFair := newClassAgg(), newClassAgg(), newClassAgg()
		for i, w := range ws {
			r := results[i][0]
			aggWS.add(w.Class, r.WeightedSpeedup())
			aggANTT.add(w.Class, r.ANTT())
			aggFair.add(w.Class, r.Fairness())
		}
		return aggWS.gmean("ALL"), aggANTT.gmean("ALL"), aggFair.gmean("ALL"), nil
	}
	type schemeRow struct {
		label string
		sc    gcke.Scheme
	}
	wsRows := []schemeRow{
		{"Spatial", gcke.Scheme{Partition: gcke.PartitionSpatial}},
		{"WS", gcke.Scheme{Partition: gcke.PartitionWarpedSlicer}},
		{"WS-QBMI", gcke.Scheme{Partition: gcke.PartitionWarpedSlicer, MemIssue: gcke.MemIssueQBMI}},
		{"WS-DMIL", gcke.Scheme{Partition: gcke.PartitionWarpedSlicer, Limiting: gcke.LimitDMIL}},
	}
	vals := map[string][3]float64{}
	for _, sr := range wsRows {
		ws, antt, fair, err := gather(sr.sc, pairs)
		if err != nil {
			return err
		}
		vals[sr.label] = [3]float64{ws, antt, fair}
	}
	base := vals["WS"]
	gain := func(label string, idx int) float64 {
		if base[idx] == 0 {
			return 0
		}
		if idx == 1 { // ANTT: lower is better
			return 1 - vals[label][idx]/base[idx]
		}
		return vals[label][idx]/base[idx] - 1
	}
	h.printf("Headline gains over the WS baseline (2-kernel set, gmean) — paper vs measured\n")
	h.printf("%-22s %8s %9s\n", "metric", "paper", "measured")
	h.printf("%-22s %7.1f%% %8.1f%%\n", "WS-QBMI WeightedSpd", (pub.WSQBMIWS/pub.WSWS-1)*100, gain("WS-QBMI", 0)*100)
	h.printf("%-22s %7.1f%% %8.1f%%\n", "WS-DMIL WeightedSpd", (pub.WSDMILWS/pub.WSWS-1)*100, gain("WS-DMIL", 0)*100)
	h.printf("%-22s %7.1f%% %8.1f%%\n", "WS-QBMI ANTT", pub.QBMIANTTGain*100, gain("WS-QBMI", 1)*100)
	h.printf("%-22s %7.1f%% %8.1f%%\n", "WS-DMIL ANTT", pub.DMILANTTGain*100, gain("WS-DMIL", 1)*100)
	h.printf("%-22s %7.1f%% %8.1f%%\n", "WS-QBMI Fairness", pub.QBMIFairGain*100, gain("WS-QBMI", 2)*100)
	h.printf("%-22s %7.1f%% %8.1f%%\n", "WS-DMIL Fairness", pub.DMILFairGain*100, gain("WS-DMIL", 2)*100)

	// SMK stack.
	smkRows := []schemeRow{
		{"SMK-(P+W)", gcke.Scheme{Partition: gcke.PartitionSMK, SMKQuota: true}},
		{"SMK-(P+QBMI)", gcke.Scheme{Partition: gcke.PartitionSMK, MemIssue: gcke.MemIssueQBMI}},
		{"SMK-(P+DMIL)", gcke.Scheme{Partition: gcke.PartitionSMK, Limiting: gcke.LimitDMIL}},
	}
	svals := map[string][3]float64{}
	for _, sr := range smkRows {
		ws, antt, fair, err := gather(sr.sc, pairs)
		if err != nil {
			return err
		}
		svals[sr.label] = [3]float64{ws, antt, fair}
	}
	sbase := svals["SMK-(P+W)"]
	sgain := func(label string, idx int) float64 {
		if sbase[idx] == 0 {
			return 0
		}
		if idx == 1 {
			return 1 - svals[label][idx]/sbase[idx]
		}
		return svals[label][idx]/sbase[idx] - 1
	}
	h.printf("%-22s %7.1f%% %8.1f%%\n", "SMK+QBMI WeightedSpd", pub.SMKQBMIWSGain*100, sgain("SMK-(P+QBMI)", 0)*100)
	h.printf("%-22s %7.1f%% %8.1f%%\n", "SMK+DMIL WeightedSpd", pub.SMKDMILWSGain*100, sgain("SMK-(P+DMIL)", 0)*100)
	h.printf("%-22s %7.1f%% %8.1f%%\n", "SMK+QBMI ANTT", pub.SMKQBMIANTTGain*100, sgain("SMK-(P+QBMI)", 1)*100)
	h.printf("%-22s %7.1f%% %8.1f%%\n", "SMK+DMIL ANTT", pub.SMKDMILANTTGain*100, sgain("SMK-(P+DMIL)", 1)*100)

	// 3-kernel stack.
	tri := map[string][3]float64{}
	for _, sr := range []schemeRow{
		{"WS", gcke.Scheme{Partition: gcke.PartitionWarpedSlicer}},
		{"WS-QBMI", gcke.Scheme{Partition: gcke.PartitionWarpedSlicer, MemIssue: gcke.MemIssueQBMI}},
		{"WS-DMIL", gcke.Scheme{Partition: gcke.PartitionWarpedSlicer, Limiting: gcke.LimitDMIL}},
	} {
		ws, antt, fair, err := gather(sr.sc, triples)
		if err != nil {
			return err
		}
		tri[sr.label] = [3]float64{ws, antt, fair}
	}
	tbase := tri["WS"]
	tgain := func(label string, idx int) float64 {
		if tbase[idx] == 0 {
			return 0
		}
		if idx == 1 {
			return 1 - tri[label][idx]/tbase[idx]
		}
		return tri[label][idx]/tbase[idx] - 1
	}
	h.printf("%-22s %7.1f%% %8.1f%%\n", "3-kern QBMI WeightedS", pub.TriQBMIWSGain*100, tgain("WS-QBMI", 0)*100)
	h.printf("%-22s %7.1f%% %8.1f%%\n", "3-kern DMIL WeightedS", pub.TriDMILWSGain*100, tgain("WS-DMIL", 0)*100)
	return nil
}
