package harness

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"

	gcke "repro"
	"repro/internal/journal"
)

func tinyHarness(t *testing.T) (*Harness, *bytes.Buffer) {
	t.Helper()
	s := gcke.NewSession(gcke.ScaledConfig(2), 15_000)
	s.ProfileCycles = 10_000
	var buf bytes.Buffer
	return New(s, &buf), &buf
}

func tinyPairs() []Workload {
	return []Workload{NewWorkload("pf", "bp"), NewWorkload("bp", "sv")}
}

func TestWorkloadLabelsAndClasses(t *testing.T) {
	w := NewWorkload("bp", "sv")
	if w.Label() != "bp+sv" {
		t.Fatalf("label = %q", w.Label())
	}
	if w.Class != "C+M" {
		t.Fatalf("class = %q, want C+M", w.Class)
	}
	if c := NewWorkload("sv", "ks").Class; c != "M+M" {
		t.Fatalf("class = %q, want M+M", c)
	}
	if c := NewWorkload("pf", "bp").Class; c != "C+C" {
		t.Fatalf("class = %q, want C+C", c)
	}
	if c := NewWorkload("sv", "bp").Class; c != "C+M" {
		t.Fatalf("class order must normalize, got %q", c)
	}
	if c := NewWorkload("bp", "sv", "ks").Class; c != "C+M+M" {
		t.Fatalf("triple class = %q", c)
	}
}

func TestDefaultPairSets(t *testing.T) {
	pairs := DefaultPairs()
	if len(pairs) < 12 {
		t.Fatalf("default pair set too small: %d", len(pairs))
	}
	classes := map[string]int{}
	for _, w := range pairs {
		classes[w.Class]++
	}
	for _, c := range []string{"C+C", "C+M", "M+M"} {
		if classes[c] < 2 {
			t.Errorf("class %s has only %d pairs", c, classes[c])
		}
	}
	if got := len(AllPairs()); got != 78 {
		t.Fatalf("AllPairs = %d, want 78 (13 choose 2)", got)
	}
	if len(DefaultTriples()) < 4 {
		t.Fatal("need at least one triple per class")
	}
}

func TestRunMemoizes(t *testing.T) {
	h, _ := tinyHarness(t)
	w := NewWorkload("bp", "sv")
	sc := gcke.Scheme{Partition: gcke.PartitionEven}
	r1, err := h.Run(w, sc)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := h.Run(w, sc)
	if err != nil {
		t.Fatal(err)
	}
	if r1 != r2 {
		t.Fatal("identical runs must be memoized")
	}
	// A different scheme must not hit the same cache entry.
	r3, err := h.Run(w, gcke.Scheme{Partition: gcke.PartitionLeftover})
	if err != nil {
		t.Fatal(err)
	}
	if r3 == r1 {
		t.Fatal("cache key ignores the scheme")
	}
}

func TestTable2Rows(t *testing.T) {
	h, buf := tinyHarness(t)
	rows, err := h.Table2()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 13 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.IPC <= 0 {
			t.Errorf("%s: no progress", r.Name)
		}
		if r.L1DMissRate < 0 || r.L1DMissRate > 1 {
			t.Errorf("%s: miss rate %v", r.Name, r.L1DMissRate)
		}
	}
	if err := h.PrintTable2(); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "Table 2") || !strings.Contains(out, "Figure 2") {
		t.Fatal("render missing headers")
	}
}

func TestFigure4GapExists(t *testing.T) {
	h, _ := tinyHarness(t)
	rows, err := h.Figure4(tinyPairs())
	if err != nil {
		t.Fatal(err)
	}
	var all *Figure4Row
	for i := range rows {
		if rows[i].Class == "ALL" {
			all = &rows[i]
		}
	}
	if all == nil {
		t.Fatal("no ALL row")
	}
	if all.Achieved >= all.Theoretical {
		t.Fatalf("achieved (%v) must fall short of theoretical (%v)", all.Achieved, all.Theoretical)
	}
}

func TestFigure5Runs(t *testing.T) {
	h, buf := tinyHarness(t)
	rows, err := h.Figure5(tinyPairs()[:1])
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0].WSBase <= 0 || rows[0].WSUCP <= 0 {
		t.Fatalf("bad rows %+v", rows)
	}
	if !strings.Contains(buf.String(), "Figure 5") {
		t.Fatal("missing render")
	}
}

func TestFigure6And8Render(t *testing.T) {
	h, buf := tinyHarness(t)
	if err := h.Figure6("bp", "sv", 4); err != nil {
		t.Fatal(err)
	}
	if err := h.Figure8("bp", "sv", 4); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "Figure 6") || !strings.Contains(out, "Figure 8") {
		t.Fatal("missing renders")
	}
}

func TestFigure9RendersGrid(t *testing.T) {
	h, buf := tinyHarness(t)
	if err := h.Figure9("bp", "sv", []int{8, 0}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "optimum:") || !strings.Contains(out, "inf") {
		t.Fatalf("grid render incomplete:\n%s", out)
	}
}

func TestFigure12And13And14(t *testing.T) {
	h, buf := tinyHarness(t)
	if err := h.Figure12(tinyPairs()); err != nil {
		t.Fatal(err)
	}
	if err := h.Figure13(tinyPairs()); err != nil {
		t.Fatal(err)
	}
	if err := h.Figure14([]Workload{NewWorkload("bp", "sv", "dc")}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Figure 12", "Figure 13", "Figure 14",
		"WeightedSpeedup", "ANTT", "Fairness", "WS-DMIL", "SMK-(P+W)"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q", want)
		}
	}
}

// TestParallelOutputByteIdentical pins the runner contract at the table
// level: a figure rendered from a parallel grid must be byte-identical
// to the strictly serial render — and a render interrupted partway and
// resumed from its checkpoint journal in a "new process" must be
// byte-identical too.
func TestParallelOutputByteIdentical(t *testing.T) {
	render := func(parallel int, jnl *journal.Journal, figs ...func(h *Harness) error) string {
		s := gcke.NewSession(gcke.ScaledConfig(2), 15_000)
		s.ProfileCycles = 10_000
		var buf bytes.Buffer
		h := New(s, &buf)
		h.Parallel = parallel
		h.Journal = jnl
		for _, fig := range figs {
			if err := fig(h); err != nil {
				t.Fatal(err)
			}
		}
		return buf.String()
	}
	fig12 := func(h *Harness) error { return h.Figure12(tinyPairs()) }
	fig9 := func(h *Harness) error { return h.Figure9("bp", "sv", []int{4, 16, 0}) }

	serial := render(1, nil, fig12, fig9)
	parallel := render(8, nil, fig12, fig9)
	if serial != parallel {
		t.Fatalf("parallel output differs from serial:\n--- serial ---\n%s\n--- parallel ---\n%s", serial, parallel)
	}

	// "Interrupted" sweep: only Figure 12 completes before the process
	// dies. The resumed render — fresh session and harness, same journal
	// file — must replay the checkpointed points and produce the exact
	// bytes of the uninterrupted run.
	path := filepath.Join(t.TempDir(), "bench.journal")
	j1, err := journal.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	render(8, j1, fig12)
	if err := j1.Close(); err != nil {
		t.Fatal(err)
	}
	j2, err := journal.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if j2.Len() == 0 {
		t.Fatal("interrupted render checkpointed nothing")
	}
	before := j2.Len()
	resumed := render(8, j2, fig12, fig9)
	if resumed != serial {
		t.Fatalf("resumed output differs from uninterrupted run:\n--- uninterrupted ---\n%s\n--- resumed ---\n%s", serial, resumed)
	}
	if j2.Len() <= before {
		t.Fatal("resumed render checkpointed no new points")
	}
}

func TestClassAgg(t *testing.T) {
	a := newClassAgg()
	a.add("C+M", 2)
	a.add("C+M", 8)
	a.add("M+M", 3)
	rows := a.rows()
	if len(rows) != 3 || rows[len(rows)-1] != "ALL" {
		t.Fatalf("rows = %v", rows)
	}
	if g := a.gmean("C+M"); g < 3.9 || g > 4.1 {
		t.Fatalf("gmean = %v, want 4", g)
	}
	if m := a.mean("C+M"); m != 5 {
		t.Fatalf("mean = %v, want 5", m)
	}
}

func TestPaperTargetsComplete(t *testing.T) {
	p := PaperTable2()
	if len(p) != 13 {
		t.Fatalf("paper table has %d rows", len(p))
	}
	for _, name := range []string{"cp", "hs", "dc", "pf", "bp", "bs", "st", "3m", "sv", "cd", "s2", "ks", "ax"} {
		if _, ok := p[name]; !ok {
			t.Errorf("missing paper row for %s", name)
		}
	}
	pub := Published()
	if pub.WSDMILWS <= pub.WSWS {
		t.Fatal("published DMIL must beat WS")
	}
}

func TestPaperComparisonRenders(t *testing.T) {
	h, buf := tinyHarness(t)
	err := h.PaperComparison(tinyPairs(), []Workload{NewWorkload("bp", "sv", "dc")})
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"paper vs measured", "classification agreement", "WS-DMIL"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
}
