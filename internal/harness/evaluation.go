// The headline evaluation: Figure 12 (QBMI/DMIL on Warped-Slicer vs
// spatial multitasking), Figure 13 (on SMK), Figure 14 (3-kernel
// workloads), the Section 4.3 sensitivity studies and the design
// ablations DESIGN.md calls out.

package harness

import (
	"strconv"

	gcke "repro"
	"repro/internal/config"
)

// schemeSet is a labelled list of schemes compared side by side.
type schemeSet struct {
	labels  []string
	schemes []gcke.Scheme
}

func wsSchemes() schemeSet {
	return schemeSet{
		labels: []string{"Spatial", "WS", "WS-QBMI", "WS-DMIL"},
		schemes: []gcke.Scheme{
			{Partition: gcke.PartitionSpatial},
			{Partition: gcke.PartitionWarpedSlicer},
			{Partition: gcke.PartitionWarpedSlicer, MemIssue: gcke.MemIssueQBMI},
			{Partition: gcke.PartitionWarpedSlicer, Limiting: gcke.LimitDMIL},
		},
	}
}

func smkSchemes() schemeSet {
	return schemeSet{
		labels: []string{"SMK-(P+W)", "SMK-(P+QBMI)", "SMK-(P+DMIL)"},
		schemes: []gcke.Scheme{
			{Partition: gcke.PartitionSMK, SMKQuota: true},
			{Partition: gcke.PartitionSMK, MemIssue: gcke.MemIssueQBMI},
			{Partition: gcke.PartitionSMK, Limiting: gcke.LimitDMIL},
		},
	}
}

// metric extracts one number from a result.
type metric struct {
	name string
	get  func(*gcke.WorkloadResult) float64
	// gmean selects geometric (speedup-like) vs arithmetic (rates).
	gmean bool
}

func evaluationMetrics() []metric {
	return []metric{
		{"WeightedSpeedup", func(r *gcke.WorkloadResult) float64 { return r.WeightedSpeedup() }, true},
		{"ANTT", func(r *gcke.WorkloadResult) float64 { return r.ANTT() }, true},
		{"Fairness", func(r *gcke.WorkloadResult) float64 { return r.Fairness() }, true},
		{"L1DMissRate", func(r *gcke.WorkloadResult) float64 {
			var acc, miss float64
			for _, k := range r.Kernels {
				acc += float64(k.L1D.Accesses)
				miss += float64(k.L1D.Misses - k.L1D.Merged)
			}
			if acc == 0 {
				return 0
			}
			return miss / acc
		}, false},
		{"L1DRsfailRate", func(r *gcke.WorkloadResult) float64 {
			var acc, rsf float64
			for _, k := range r.Kernels {
				acc += float64(k.L1D.Accesses)
				rsf += float64(k.L1D.RsFail)
			}
			if acc == 0 {
				return 0
			}
			return rsf / acc
		}, false},
		{"LSUStallFrac", func(r *gcke.WorkloadResult) float64 { return r.LSUStallFrac() }, false},
		{"ComputeUtil", func(r *gcke.WorkloadResult) float64 { return r.ComputeUtil() }, false},
	}
}

// compare runs every workload under every scheme (fanned out over the
// harness's worker pool) and prints one block per metric with
// class-aggregated rows.
func (h *Harness) compare(title string, workloads []Workload, set schemeSet, metrics []metric) error {
	// results[workload][scheme]
	results, err := h.RunAll(workloads, set.schemes)
	if err != nil {
		return err
	}
	h.printf("%s\n", title)
	for _, m := range metrics {
		aggs := make([]*classAgg, len(set.schemes))
		for j := range aggs {
			aggs[j] = newClassAgg()
		}
		for i, w := range workloads {
			for j := range set.schemes {
				aggs[j].add(w.Class, m.get(results[i][j]))
			}
		}
		h.printf("\n%s (%s by class)\n%-8s", m.name, map[bool]string{true: "gmean", false: "mean"}[m.gmean], "class")
		for _, l := range set.labels {
			h.printf(" %13s", l)
		}
		h.printf("\n")
		for _, c := range aggs[0].rows() {
			h.printf("%-8s", c)
			for j := range set.schemes {
				v := aggs[j].mean(c)
				if m.gmean {
					v = aggs[j].gmean(c)
				}
				h.printf(" %13.3f", v)
			}
			h.printf("\n")
		}
	}
	// Per-workload weighted speedup detail.
	h.printf("\nper-workload WeightedSpeedup\n%-10s %-6s", "workload", "class")
	for _, l := range set.labels {
		h.printf(" %13s", l)
	}
	h.printf("\n")
	for i, w := range workloads {
		h.printf("%-10s %-6s", w.Label(), w.Class)
		for j := range set.schemes {
			h.printf(" %13.3f", results[i][j].WeightedSpeedup())
		}
		h.printf("\n")
	}
	h.printf("\n")
	return nil
}

// Figure12 is the headline comparison on Warped-Slicer.
func (h *Harness) Figure12(pairs []Workload) error {
	return h.compare("Figure 12 — QBMI and DMIL on top of Warped-Slicer",
		pairs, wsSchemes(), evaluationMetrics())
}

// Figure13 is the comparison on SMK.
func (h *Harness) Figure13(pairs []Workload) error {
	return h.compare("Figure 13 — QBMI and DMIL on top of SMK",
		pairs, smkSchemes(),
		evaluationMetrics()[:3]) // the paper reports WS and ANTT for SMK
}

// Figure14 is the 3-kernel study.
func (h *Harness) Figure14(triples []Workload) error {
	set := schemeSet{
		labels: []string{"WS", "WS-QBMI", "WS-DMIL"},
		schemes: []gcke.Scheme{
			{Partition: gcke.PartitionWarpedSlicer},
			{Partition: gcke.PartitionWarpedSlicer, MemIssue: gcke.MemIssueQBMI},
			{Partition: gcke.PartitionWarpedSlicer, Limiting: gcke.LimitDMIL},
		},
	}
	return h.compare("Figure 14 — 3-kernel concurrent execution on Warped-Slicer",
		triples, set, evaluationMetrics()[:3])
}

// SensitivityL1D re-runs the core comparison with 48KB and 96KB L1Ds
// (Section 4.3). It builds fresh sessions since the architecture
// changes.
func SensitivityL1D(base gcke.Config, cycles int64, profileCycles int64, pairs []Workload, out *Harness) error {
	for _, size := range []int{48 * 1024, 96 * 1024} {
		cfg := base
		cfg.L1D.SizeBytes = size
		s := gcke.NewSession(cfg, cycles)
		s.ProfileCycles = profileCycles
		h := New(s, out.Out)
		h.Parallel = out.Parallel
		title := "Sensitivity — L1D capacity " + strconv.Itoa(size/1024) + "KB"
		if err := h.compare(title, pairs, wsSchemes(), evaluationMetrics()[:2]); err != nil {
			return err
		}
	}
	return nil
}

// SensitivityLRR re-runs the core comparison under loose round-robin
// warp scheduling (Section 4.3).
func SensitivityLRR(base gcke.Config, cycles int64, profileCycles int64, pairs []Workload, out *Harness) error {
	cfg := base
	cfg.SM.Scheduler = config.LRR
	s := gcke.NewSession(cfg, cycles)
	s.ProfileCycles = profileCycles
	h := New(s, out.Out)
	h.Parallel = out.Parallel
	return h.compare("Sensitivity — LRR warp scheduling", pairs, wsSchemes(), evaluationMetrics()[:2])
}

// AblationGlobalDMIL compares the paper's local (per-SM) DMIL with a
// global variant sharing one MILG set across SMs.
func (h *Harness) AblationGlobalDMIL(pairs []Workload) error {
	set := schemeSet{
		labels: []string{"WS-DMIL", "WS-gDMIL"},
		schemes: []gcke.Scheme{
			{Partition: gcke.PartitionWarpedSlicer, Limiting: gcke.LimitDMIL},
			{Partition: gcke.PartitionWarpedSlicer, Limiting: gcke.LimitGlobalDMIL},
		},
	}
	return h.compare("Ablation — local vs global DMIL", pairs, set, evaluationMetrics()[:2])
}

// AblationMSHR checks that the schemes stay effective with larger MSHR
// files (Section 4.3's claim).
func AblationMSHR(base gcke.Config, cycles int64, profileCycles int64, pairs []Workload, out *Harness) error {
	cfg := base
	cfg.L1D.MSHRs = 256
	s := gcke.NewSession(cfg, cycles)
	s.ProfileCycles = profileCycles
	h := New(s, out.Out)
	h.Parallel = out.Parallel
	return h.compare("Sensitivity — 256 L1D MSHRs", pairs, wsSchemes(), evaluationMetrics()[:2])
}

// AblationBypass studies the Section 4.5 interplay: bypassing the L1
// for the memory-intensive kernel of a C+M pair, with and without DMIL
// constraining the bypassed stream. The paper argues uncontrolled
// bypassing just moves the congestion down the hierarchy, and that MIL
// remains effective on top.
func (h *Harness) AblationBypass(pairs []Workload) error {
	set := schemeSet{
		labels: []string{"WS", "WS-Bypass", "WS-Byp+DMIL", "WS-DMIL"},
		schemes: []gcke.Scheme{
			{Partition: gcke.PartitionWarpedSlicer},
			{Partition: gcke.PartitionWarpedSlicer, BypassL1: []bool{false, true}},
			{Partition: gcke.PartitionWarpedSlicer, BypassL1: []bool{false, true}, Limiting: gcke.LimitDMIL},
			{Partition: gcke.PartitionWarpedSlicer, Limiting: gcke.LimitDMIL},
		},
	}
	return h.compare("Ablation — L1 bypassing for the memory-intensive kernel (Section 4.5)",
		pairs, set, evaluationMetrics()[:2])
}

// AblationDynWS compares statically-profiled Warped-Slicer with the
// paper's online-profiled dynamic variant.
func (h *Harness) AblationDynWS(pairs []Workload) error {
	set := schemeSet{
		labels: []string{"WS(static)", "WS(dynamic)"},
		schemes: []gcke.Scheme{
			{Partition: gcke.PartitionWarpedSlicer},
			{Partition: gcke.PartitionWarpedSlicerDyn},
		},
	}
	return h.compare("Ablation — static vs online-profiled Warped-Slicer",
		pairs, set, evaluationMetrics()[:3])
}

// AblationL2MIL compares L1-signal DMIL with the L2/DRAM-signal variant
// (Section 4.5 future work), alone and under cache bypassing where the
// interference point moves below the L1.
func (h *Harness) AblationL2MIL(pairs []Workload) error {
	set := schemeSet{
		labels: []string{"WS", "WS-DMIL", "WS-L2MIL", "WS-Byp+L2MIL"},
		schemes: []gcke.Scheme{
			{Partition: gcke.PartitionWarpedSlicer},
			{Partition: gcke.PartitionWarpedSlicer, Limiting: gcke.LimitDMIL},
			{Partition: gcke.PartitionWarpedSlicer, Limiting: gcke.LimitL2MIL},
			{Partition: gcke.PartitionWarpedSlicer, BypassL1: []bool{false, true}, Limiting: gcke.LimitL2MIL},
		},
	}
	return h.compare("Ablation — L2/DRAM-congestion-driven MIL (Section 4.5 future work)",
		pairs, set, evaluationMetrics()[:2])
}

// EnergyStudy reports the Section 4.5 energy-efficiency claim: higher
// utilization raises dynamic power but the reduced leakage per unit of
// work wins overall.
func (h *Harness) EnergyStudy(pairs []Workload) error {
	model := gcke.DefaultEnergyModel()
	set := wsSchemes()
	results, err := h.RunAll(pairs, set.schemes)
	if err != nil {
		return err
	}
	h.printf("Energy study (Section 4.5): instructions per microjoule, %v\n\n", "higher is better")
	h.printf("%-10s %-6s", "workload", "class")
	for _, l := range set.labels {
		h.printf(" %13s", l)
	}
	h.printf("\n")
	aggs := make([]*classAgg, len(set.schemes))
	for j := range aggs {
		aggs[j] = newClassAgg()
	}
	for i, w := range pairs {
		h.printf("%-10s %-6s", w.Label(), w.Class)
		for j := range set.schemes {
			eff := results[i][j].InstrsPerMicroJoule(model)
			aggs[j].add(w.Class, eff)
			h.printf(" %13.1f", eff)
		}
		h.printf("\n")
	}
	h.printf("\n%-10s %-6s", "gmean", "")
	for j := range set.schemes {
		h.printf(" %13.1f", aggs[j].gmean("ALL"))
	}
	h.printf("\n")
	return nil
}

// AblationQBMIRefresh compares the paper's refresh-on-any-zero QBMI
// with an SMK-style refresh-on-all-zero variant.
func (h *Harness) AblationQBMIRefresh(pairs []Workload) error {
	set := schemeSet{
		labels: []string{"QBMI(any0)", "QBMI(all0)"},
		schemes: []gcke.Scheme{
			{Partition: gcke.PartitionWarpedSlicer, MemIssue: gcke.MemIssueQBMI},
			{Partition: gcke.PartitionWarpedSlicer, MemIssue: gcke.MemIssueQBMI, QBMIRefreshAllZero: true},
		},
	}
	return h.compare("Ablation — QBMI quota refresh policy", pairs, set, evaluationMetrics()[:2])
}

// AblationTBThrottle compares TB-granularity dynamic throttling (the
// related-work approach) with the paper's in-flight access limiting:
// the paper argues MIL's finer granularity wins, especially when the
// memory-intensive kernel holds few TBs.
func (h *Harness) AblationTBThrottle(pairs []Workload) error {
	set := schemeSet{
		labels: []string{"WS", "WS-TBT", "WS-DMIL"},
		schemes: []gcke.Scheme{
			{Partition: gcke.PartitionWarpedSlicer},
			{Partition: gcke.PartitionWarpedSlicer, TBThrottle: true},
			{Partition: gcke.PartitionWarpedSlicer, Limiting: gcke.LimitDMIL},
		},
	}
	return h.compare("Ablation — TB-granularity throttling vs memory instruction limiting",
		pairs, set, evaluationMetrics()[:3])
}
