// The mechanism studies: Figure 8 (RBMI/QBMI recover the starved
// compute kernel), Figure 9 (the SMIL static-limit landscape) and
// Figure 11 (QBMI vs DMIL vs their combination).

package harness

import (
	"strconv"

	gcke "repro"
	"repro/internal/stats"
)

// Figure8 compares warp-instruction issue of a C+M pair under WS,
// WS-RBMI and WS-QBMI, including the per-kernel normalized IPCs the
// paper quotes (bp: 0.39 -> 0.45 -> 0.48).
func (h *Harness) Figure8(a, b string, buckets int) error {
	w := NewWorkload(a, b)
	schemes := []gcke.Scheme{
		{Partition: gcke.PartitionWarpedSlicer, Series: true},
		{Partition: gcke.PartitionWarpedSlicer, MemIssue: gcke.MemIssueRBMI, Series: true},
		{Partition: gcke.PartitionWarpedSlicer, MemIssue: gcke.MemIssueQBMI, Series: true},
	}
	h.printf("Figure 8 — warp instructions issued per %d cycles, %s+%s\n",
		stats.SeriesInterval, a, b)
	grid, err := h.RunAll([]Workload{w}, schemes)
	if err != nil {
		return err
	}
	results := grid[0]
	for i, sc := range schemes {
		r := results[i]
		s0 := r.Kernels[0].Series.Issued
		s1 := r.Kernels[1].Series.Issued
		if buckets > 0 && len(s0) > buckets {
			s0, s1 = s0[:buckets], s1[:buckets]
		}
		var t0, t1 uint64
		for _, v := range s0 {
			t0 += uint64(v)
		}
		for _, v := range s1 {
			t1 += uint64(v)
		}
		h.printf("%-8s avg issue/1K: %s=%6.0f %s=%6.0f\n",
			sc.Name(), a, float64(t0)/float64(len(s0)), b, float64(t1)/float64(len(s1)))
	}
	h.printf("\nFigure 8(d) — normalized IPC\n%-8s %8s %8s\n", "scheme", a, b)
	for i, sc := range schemes {
		sp := results[i].SpeedupsOf()
		h.printf("%-8s %8.3f %8.3f\n", sc.Name(), sp[0], sp[1])
	}
	return nil
}

// Figure9 sweeps static in-flight access limits over a grid for one
// pair and prints the Weighted Speedup surface (the paper's 3-D plots).
// Limits are in in-flight L1D accesses; 0 denotes unlimited (Inf).
func (h *Harness) Figure9(a, b string, grid []int) error {
	w := NewWorkload(a, b)
	name := func(v int) string {
		if v == 0 {
			return "inf"
		}
		return strconv.Itoa(v)
	}
	h.printf("Figure 9 — Weighted Speedup vs static limits, %s (rows: Limit_%s, cols: Limit_%s)\n",
		w.Label(), a, b)
	// Flatten the limit surface into one scheme list so all grid points
	// simulate concurrently on the pool.
	schemes := make([]gcke.Scheme, 0, len(grid)*len(grid))
	for _, l0 := range grid {
		for _, l1 := range grid {
			schemes = append(schemes, gcke.Scheme{
				Partition:    gcke.PartitionWarpedSlicer,
				Limiting:     gcke.LimitStatic,
				StaticLimits: []int{l0, l1},
			})
		}
	}
	results, err := h.RunAll([]Workload{w}, schemes)
	if err != nil {
		return err
	}
	h.printf("%7s", "")
	for _, l1 := range grid {
		h.printf(" %6s", name(l1))
	}
	h.printf("\n")
	best, bi, bj := -1.0, 0, 0
	for i, l0 := range grid {
		h.printf("%7s", name(l0))
		for j, l1 := range grid {
			ws := results[0][i*len(grid)+j].WeightedSpeedup()
			if ws > best {
				best, bi, bj = ws, l0, l1
			}
			h.printf(" %6.3f", ws)
		}
		h.printf("\n")
	}
	h.printf("optimum: (%s, %s) WS=%.3f\n\n", name(bi), name(bj), best)
	return nil
}

// Figure11 compares QBMI, DMIL and QBMI+DMIL on top of Warped-Slicer:
// weighted speedup by class plus per-pair L1D miss and rsfail rates.
func (h *Harness) Figure11(pairs []Workload, selected []Workload) error {
	schemes := []gcke.Scheme{
		{Partition: gcke.PartitionWarpedSlicer, MemIssue: gcke.MemIssueQBMI},
		{Partition: gcke.PartitionWarpedSlicer, Limiting: gcke.LimitDMIL},
		{Partition: gcke.PartitionWarpedSlicer, MemIssue: gcke.MemIssueQBMI, Limiting: gcke.LimitDMIL},
	}
	labels := []string{"WS-QBMI", "WS-DMIL", "WS-QBMI+DMIL"}

	h.printf("Figure 11(a) — Weighted Speedup (class gmean)\n")
	results, err := h.RunAll(pairs, schemes)
	if err != nil {
		return err
	}
	aggs := make([]*classAgg, len(schemes))
	for i := range aggs {
		aggs[i] = newClassAgg()
	}
	for wi, w := range pairs {
		for i := range schemes {
			aggs[i].add(w.Class, results[wi][i].WeightedSpeedup())
		}
	}
	h.printf("%-8s", "class")
	for _, l := range labels {
		h.printf(" %13s", l)
	}
	h.printf("\n")
	for _, c := range aggs[0].rows() {
		h.printf("%-8s", c)
		for i := range schemes {
			h.printf(" %13.3f", aggs[i].gmean(c))
		}
		h.printf("\n")
	}

	h.printf("\nFigure 11(b,c) — per-kernel L1D miss rate and rsfail rate on selected pairs\n")
	h.printf("%-8s %-13s %11s %13s\n", "pair", "scheme", "miss k0/k1", "rsfail k0/k1")
	sel, err := h.RunAll(selected, schemes)
	if err != nil {
		return err
	}
	for wi, w := range selected {
		for i := range schemes {
			r := sel[wi][i]
			h.printf("%-8s %-13s %5.2f/%5.2f %6.2f/%6.2f\n",
				w.Label(), labels[i],
				r.Kernels[0].L1D.MissRate(), r.Kernels[1].L1D.MissRate(),
				r.Kernels[0].L1D.RsFailRate(), r.Kernels[1].L1D.RsFailRate())
		}
	}
	return nil
}
