package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestWeightedSpeedup(t *testing.T) {
	if got := WeightedSpeedup([]float64{0.5, 0.7}); got != 1.2 {
		t.Fatalf("WS = %v", got)
	}
	if got := WeightedSpeedup(nil); got != 0 {
		t.Fatalf("WS(nil) = %v", got)
	}
}

func TestANTT(t *testing.T) {
	// Slowdowns 2 and 4 -> ANTT 3.
	if got := ANTT([]float64{0.5, 0.25}); got != 3 {
		t.Fatalf("ANTT = %v, want 3", got)
	}
	if got := ANTT([]float64{0, 1}); !math.IsInf(got, 1) {
		t.Fatalf("ANTT with a zero speedup = %v, want +Inf", got)
	}
	if got := ANTT(nil); got != 0 {
		t.Fatalf("ANTT(nil) = %v", got)
	}
}

func TestFairness(t *testing.T) {
	if got := Fairness([]float64{0.5, 0.25}); got != 0.5 {
		t.Fatalf("fairness = %v, want 0.5", got)
	}
	if got := Fairness([]float64{0.4, 0.4}); got != 1 {
		t.Fatalf("equal speedups fairness = %v, want 1", got)
	}
	if got := Fairness(nil); got != 0 {
		t.Fatal("empty fairness must be 0")
	}
}

func TestFairnessBounds(t *testing.T) {
	f := func(a, b float64) bool {
		a, b = math.Abs(a), math.Abs(b)
		if a == 0 && b == 0 {
			return true
		}
		v := Fairness([]float64{a, b})
		return v >= 0 && v <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestGMean(t *testing.T) {
	got := GMean([]float64{1, 4})
	if math.Abs(got-2) > 1e-12 {
		t.Fatalf("gmean(1,4) = %v, want 2", got)
	}
	// Non-positive values ignored.
	if got := GMean([]float64{0, 2, -1, 8}); math.Abs(got-4) > 1e-12 {
		t.Fatalf("gmean ignoring nonpositive = %v, want 4", got)
	}
	if GMean(nil) != 0 {
		t.Fatal("gmean(nil) != 0")
	}
}

func TestMean(t *testing.T) {
	if got := Mean([]float64{1, 2, 3}); got != 2 {
		t.Fatalf("mean = %v", got)
	}
	if Mean(nil) != 0 {
		t.Fatal("mean(nil) != 0")
	}
}

func TestRunResultRates(t *testing.T) {
	r := &RunResult{
		Cycles:         1000,
		SMCycles:       1000,
		LSUStallCycles: 250,
		ALUIssued:      2000,
		ALUPortCycles:  4000,
		SFUIssued:      100,
		SFUPortCycles:  1000,
	}
	if got := r.LSUStallFrac(); got != 0.25 {
		t.Fatalf("stall = %v", got)
	}
	if got := r.ALUUtil(); got != 0.5 {
		t.Fatalf("alu = %v", got)
	}
	if got := r.SFUUtil(); got != 0.1 {
		t.Fatalf("sfu = %v", got)
	}
	if got := r.ComputeUtil(); got != 2100.0/5000 {
		t.Fatalf("compute = %v", got)
	}
}

func TestRunResultZeroSafe(t *testing.T) {
	var r RunResult
	if r.LSUStallFrac() != 0 || r.ALUUtil() != 0 || r.SFUUtil() != 0 ||
		r.ComputeUtil() != 0 || r.TotalIPC() != 0 {
		t.Fatal("zero-value RunResult rates must be 0")
	}
}

func TestSpeedups(t *testing.T) {
	r := &RunResult{
		Cycles: 100,
		Kernels: []KernelResult{
			{Name: "a", IPC: 2},
			{Name: "b", IPC: 1},
		},
	}
	sp := r.Speedups([]float64{4, 4})
	if sp[0] != 0.5 || sp[1] != 0.25 {
		t.Fatalf("speedups = %v", sp)
	}
	// Zero isolated IPC must not divide by zero.
	sp = r.Speedups([]float64{0, 4})
	if sp[0] != 0 {
		t.Fatal("zero isolated IPC must yield 0 speedup")
	}
}

func TestTotalIPC(t *testing.T) {
	r := &RunResult{
		Cycles: 100,
		Kernels: []KernelResult{
			{Instrs: 150}, {Instrs: 50},
		},
	}
	if got := r.TotalIPC(); got != 2 {
		t.Fatalf("total IPC = %v", got)
	}
}

func TestStringRendering(t *testing.T) {
	r := &RunResult{
		Cycles:  10,
		Kernels: []KernelResult{{Name: "bp", IPC: 1.5}},
	}
	s := r.String()
	if s == "" {
		t.Fatal("empty render")
	}
}
