// Package stats collects simulation counters and computes the paper's
// evaluation metrics: per-kernel IPC, Weighted Speedup, ANTT (average
// normalized turnaround time), Fairness, LSU-stall percentage, compute
// utilization and L1D miss/reservation-failure rates. It also records
// the 1 K-cycle time series behind Figures 6 and 8.
package stats

import (
	"fmt"
	"math"

	"repro/internal/cache"
)

// KernelCounters aggregates activity of one kernel slot across all SMs.
type KernelCounters struct {
	Instrs     uint64 // all warp instructions issued
	ALUInstrs  uint64
	SFUInstrs  uint64
	SmemInstrs uint64 // shared-memory accesses (never touch the L1D)
	MemInstrs  uint64
	Requests   uint64 // coalesced requests issued to the L1D (successful accesses)
	StallRsf   uint64 // LSU stall cycles attributed to this kernel's failing access
	TBsDone    uint64
}

// SeriesInterval is the bucket width for time series, per the paper's
// 1 K-cycle sampling.
const SeriesInterval = 1024

// Series is one per-kernel time series (one value per 1 K-cycle bucket).
type Series struct {
	Issued []uint32 // warp instructions issued per bucket
	L1Acc  []uint32 // successful L1D accesses per bucket
}

// KernelResult is the per-kernel outcome of a run.
type KernelResult struct {
	Name       string
	Instrs     uint64
	IPC        float64
	SmemInstrs uint64
	MemInstrs  uint64
	Requests   uint64
	L1D        cache.KernelStats
	TBsDone    uint64
	Series     *Series // nil unless series collection was enabled
}

// RunResult is the outcome of one simulation.
type RunResult struct {
	Cycles  int64
	NumSMs  int
	Kernels []KernelResult

	// SM-level aggregates (summed over SMs).
	LSUStallCycles uint64 // cycles with the LSU head blocked by a reservation failure
	LSUBusyCycles  uint64 // cycles the LSU serviced a request
	ALUIssued      uint64
	SFUIssued      uint64
	ALUPortCycles  uint64 // cycles*ports summed over SMs
	SFUPortCycles  uint64
	SMCycles       uint64 // cycles summed over SMs

	// Mem aggregates memory-system activity for the energy model.
	Mem MemSystemCounters
}

// LSUStallFrac is the fraction of SM cycles with a stalled memory
// pipeline (the paper's "percentage of LSU stall cycles").
func (r *RunResult) LSUStallFrac() float64 {
	if r.SMCycles == 0 {
		return 0
	}
	return float64(r.LSUStallCycles) / float64(r.SMCycles)
}

// ALUUtil is ALU instructions issued per ALU issue slot.
func (r *RunResult) ALUUtil() float64 {
	if r.ALUPortCycles == 0 {
		return 0
	}
	return float64(r.ALUIssued) / float64(r.ALUPortCycles)
}

// SFUUtil is SFU instructions issued per SFU issue slot.
func (r *RunResult) SFUUtil() float64 {
	if r.SFUPortCycles == 0 {
		return 0
	}
	return float64(r.SFUIssued) / float64(r.SFUPortCycles)
}

// ComputeUtil is combined compute-issue-slot utilization.
func (r *RunResult) ComputeUtil() float64 {
	tot := r.ALUPortCycles + r.SFUPortCycles
	if tot == 0 {
		return 0
	}
	return float64(r.ALUIssued+r.SFUIssued) / float64(tot)
}

// TotalIPC is the machine-wide instructions per cycle.
func (r *RunResult) TotalIPC() float64 {
	if r.Cycles == 0 {
		return 0
	}
	var t uint64
	for _, k := range r.Kernels {
		t += k.Instrs
	}
	return float64(t) / float64(r.Cycles)
}

// Speedups returns per-kernel normalized IPC (shared IPC over isolated
// IPC). isolated[i] must be the isolated-execution IPC of kernel i.
func (r *RunResult) Speedups(isolated []float64) []float64 {
	out := make([]float64, len(r.Kernels))
	for i := range r.Kernels {
		if i < len(isolated) && isolated[i] > 0 {
			out[i] = r.Kernels[i].IPC / isolated[i]
		}
	}
	return out
}

// WeightedSpeedup is the sum of per-kernel speedups.
func WeightedSpeedup(speedups []float64) float64 {
	var s float64
	for _, v := range speedups {
		s += v
	}
	return s
}

// ANTT is the average normalized turnaround time: the mean of the
// per-kernel slowdowns (1/speedup). Lower is better.
func ANTT(speedups []float64) float64 {
	if len(speedups) == 0 {
		return 0
	}
	var s float64
	for _, v := range speedups {
		if v <= 0 {
			return math.Inf(1)
		}
		s += 1 / v
	}
	return s / float64(len(speedups))
}

// Fairness is min(speedup)/max(speedup). Higher is better; 1 is ideal.
func Fairness(speedups []float64) float64 {
	if len(speedups) == 0 {
		return 0
	}
	lo, hi := speedups[0], speedups[0]
	for _, v := range speedups[1:] {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	if hi <= 0 {
		return 0
	}
	return lo / hi
}

// GMean returns the geometric mean of xs, ignoring non-positive values.
func GMean(xs []float64) float64 {
	var sum float64
	n := 0
	for _, x := range xs {
		if x > 0 {
			sum += math.Log(x)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return math.Exp(sum / float64(n))
}

// Mean returns the arithmetic mean of xs (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// String renders a compact human-readable summary.
func (r *RunResult) String() string {
	s := fmt.Sprintf("cycles=%d computeUtil=%.3f lsuStall=%.3f\n",
		r.Cycles, r.ComputeUtil(), r.LSUStallFrac())
	for _, k := range r.Kernels {
		s += fmt.Sprintf("  %-4s ipc=%7.3f mem=%8d req=%9d l1dMiss=%.3f l1dRsfail=%.3f\n",
			k.Name, k.IPC, k.MemInstrs, k.Requests, k.L1D.MissRate(), k.L1D.RsFailRate())
	}
	return s
}
