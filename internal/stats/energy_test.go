package stats

import "testing"

func TestEnergyBreakdown(t *testing.T) {
	r := &RunResult{
		Cycles:        1000,
		SMCycles:      2000, // 2 SMs
		ALUIssued:     4000,
		SFUIssued:     100,
		LSUBusyCycles: 500,
		Mem:           MemSystemCounters{L2Accesses: 400, DRAMAccesses: 50, Flits: 3000},
		Kernels:       []KernelResult{{Instrs: 5000}},
	}
	m := DefaultEnergyModel()
	e := r.Energy(m)
	wantDyn := 4000*m.ALUInstrPJ + 100*m.SFUInstrPJ + 500*m.L1DAccessPJ +
		400*m.L2AccessPJ + 50*m.DRAMAccessPJ + 3000*m.FlitHopPJ
	if e.DynamicPJ != wantDyn {
		t.Fatalf("dynamic = %v, want %v", e.DynamicPJ, wantDyn)
	}
	if e.LeakagePJ != 2000*m.LeakagePJPerSMCycle {
		t.Fatalf("leakage = %v", e.LeakagePJ)
	}
	if e.TotalPJ() != e.DynamicPJ+e.LeakagePJ {
		t.Fatal("total mismatch")
	}
	if r.InstrsPerMicroJoule(m) <= 0 {
		t.Fatal("efficiency must be positive")
	}
}

// TestEnergyEfficiencyRewardsUtilization encodes the paper's Section 4.5
// argument: for the same cycle count (fixed leakage), doing more work
// yields better instructions-per-joule even though dynamic energy rises.
func TestEnergyEfficiencyRewardsUtilization(t *testing.T) {
	m := DefaultEnergyModel()
	lazy := &RunResult{
		SMCycles: 10_000, ALUIssued: 1_000, LSUBusyCycles: 200,
		Kernels: []KernelResult{{Instrs: 1_200}},
	}
	busy := &RunResult{
		SMCycles: 10_000, ALUIssued: 10_000, LSUBusyCycles: 2_000,
		Kernels: []KernelResult{{Instrs: 12_000}},
	}
	if busy.Energy(m).DynamicPJ <= lazy.Energy(m).DynamicPJ {
		t.Fatal("higher utilization must raise dynamic energy")
	}
	if busy.InstrsPerMicroJoule(m) <= lazy.InstrsPerMicroJoule(m) {
		t.Fatal("higher utilization must improve energy efficiency")
	}
}

func TestEnergyZeroSafe(t *testing.T) {
	var r RunResult
	if r.InstrsPerMicroJoule(DefaultEnergyModel()) != 0 {
		t.Fatal("zero run must have zero efficiency")
	}
}
