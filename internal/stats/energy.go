// Energy accounting (Section 4.5): the paper argues that although the
// proposed schemes may raise average dynamic power (compute utilization
// improves), whole-run energy efficiency improves because the same work
// finishes with far less leakage. This model makes that claim
// measurable: per-event dynamic energies plus per-SM-cycle leakage.

package stats

// EnergyModel holds per-event energies in picojoules and leakage in
// picojoules per SM-cycle. The defaults are order-of-magnitude figures
// for a 28 nm GPU (McPAT/GPUWattch-flavoured); the paper's argument
// depends only on leakage being a large fixed cost per cycle.
type EnergyModel struct {
	ALUInstrPJ   float64
	SFUInstrPJ   float64
	L1DAccessPJ  float64
	L2AccessPJ   float64
	DRAMAccessPJ float64
	FlitHopPJ    float64
	// LeakagePJPerSMCycle is burned every cycle by every SM regardless
	// of activity.
	LeakagePJPerSMCycle float64
}

// DefaultEnergyModel returns the reference constants.
func DefaultEnergyModel() EnergyModel {
	return EnergyModel{
		ALUInstrPJ:          20,
		SFUInstrPJ:          60,
		L1DAccessPJ:         30,
		L2AccessPJ:          75,
		DRAMAccessPJ:        2000,
		FlitHopPJ:           8,
		LeakagePJPerSMCycle: 400,
	}
}

// MemSystemCounters aggregates memory-system activity for the energy
// model (filled by the GPU at Result time).
type MemSystemCounters struct {
	L2Accesses   uint64
	DRAMAccesses uint64
	Flits        uint64
}

// Energy is a run's energy breakdown in picojoules.
type Energy struct {
	DynamicPJ float64
	LeakagePJ float64
}

// TotalPJ is dynamic plus leakage energy.
func (e Energy) TotalPJ() float64 { return e.DynamicPJ + e.LeakagePJ }

// Energy computes the run's energy under the model.
func (r *RunResult) Energy(m EnergyModel) Energy {
	// One successful L1D access per LSU-busy cycle.
	dyn := float64(r.ALUIssued)*m.ALUInstrPJ +
		float64(r.SFUIssued)*m.SFUInstrPJ +
		float64(r.LSUBusyCycles)*m.L1DAccessPJ +
		float64(r.Mem.L2Accesses)*m.L2AccessPJ +
		float64(r.Mem.DRAMAccesses)*m.DRAMAccessPJ +
		float64(r.Mem.Flits)*m.FlitHopPJ
	leak := float64(r.SMCycles) * m.LeakagePJPerSMCycle
	return Energy{DynamicPJ: dyn, LeakagePJ: leak}
}

// InstrsPerMicroJoule is the run's energy efficiency: warp instructions
// completed per microjoule (higher is better).
func (r *RunResult) InstrsPerMicroJoule(m EnergyModel) float64 {
	e := r.Energy(m).TotalPJ()
	if e <= 0 {
		return 0
	}
	var instrs uint64
	for _, k := range r.Kernels {
		instrs += k.Instrs
	}
	return float64(instrs) / (e / 1e6)
}
