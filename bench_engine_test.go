// Engine benchmarks: raw cycle-loop throughput (cycles/sec) and GC
// pressure (allocs/cycle) of the simulator core, measured over gpu.Run
// directly so session/profile overhead does not blur the numbers.
//
// The suite is the perf-regression harness for the cycle engine:
// results/BENCH_engine.json records the pre-parallel-engine baseline;
// CI runs the suite with -benchtime=1x as a smoke test. Run with
//
//	go test -run '^$' -bench BenchmarkSimulatorCycleRate -benchmem
package gcke_test

import (
	"os"
	"runtime"
	"testing"
	"time"

	gcke "repro"
	"repro/internal/gpu"
	"repro/internal/kern"
	"repro/internal/trace"
)

const engineBenchCycles = 20_000

// engineWorkload builds descriptors and an even quota for the named
// kernels on a benchCfg-scaled machine.
func engineWorkload(b *testing.B, names ...string) ([]*kern.Desc, [][]int, gcke.Config) {
	b.Helper()
	cfg := gcke.ScaledConfig(4)
	descs := make([]*kern.Desc, len(names))
	for i, n := range names {
		d, err := kern.ByName(n)
		if err != nil {
			b.Fatal(err)
		}
		dd := d
		descs[i] = &dd
	}
	per := make([]int, len(descs))
	for i, d := range descs {
		per[i] = d.MaxTBsPerSM(&cfg) / len(descs)
		if per[i] < 1 {
			per[i] = 1
		}
	}
	return descs, gpu.UniformQuota(cfg.NumSMs, per), cfg
}

// runEngineBench runs the cycle loop b.N times under opts and reports
// cycles/sec and allocs/cycle.
func runEngineBench(b *testing.B, names []string, mutate func(*gpu.Options)) {
	b.Helper()
	descs, quota, cfg := engineWorkload(b, names...)
	var ms0, ms1 runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&ms0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		opts := &gpu.Options{Cycles: engineBenchCycles, Quota: quota}
		if mutate != nil {
			mutate(opts)
		}
		if _, err := gpu.Run(cfg, descs, opts); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	runtime.ReadMemStats(&ms1)
	totalCycles := float64(b.N) * engineBenchCycles
	b.ReportMetric(totalCycles/b.Elapsed().Seconds(), "cycles/sec")
	b.ReportMetric(float64(ms1.Mallocs-ms0.Mallocs)/totalCycles, "allocs/cycle")
}

// BenchmarkSimulatorCycleRate measures raw simulator throughput across
// the engine's main operating points: one kernel, a two-kernel CKE mix,
// and the CKE mix with cycle-level tracing enabled.
func BenchmarkSimulatorCycleRate(b *testing.B) {
	b.Run("1kernel", func(b *testing.B) {
		runEngineBench(b, []string{"bp"}, nil)
	})
	b.Run("2kernelCKE", func(b *testing.B) {
		runEngineBench(b, []string{"bp", "sv"}, nil)
	})
	b.Run("2kernelCKE-trace", func(b *testing.B) {
		runEngineBench(b, []string{"bp", "sv"}, func(o *gpu.Options) {
			o.Trace = trace.New(1 << 14)
		})
	})
	// Intra-run parallelism. Speedup needs real cores: on a multi-core
	// machine the fan-out subtests should beat serial on the
	// multi-kernel mix; on one core they measure the fan-out overhead
	// instead (Workers=1, PartWorkers=1 resolve to the serial step).
	// -serial pins both fan-outs to 1; -parallel fans out the SM phase
	// only; -partparallel the memory partitions only; -pipelined both,
	// which additionally overlaps the memory side of cycle N with the SM
	// phase of cycle N+1.
	b.Run("2kernelCKE-serial", func(b *testing.B) {
		runEngineBench(b, []string{"bp", "sv"}, func(o *gpu.Options) {
			o.Workers = 1
			o.PartWorkers = 1
		})
	})
	b.Run("2kernelCKE-parallel", func(b *testing.B) {
		runEngineBench(b, []string{"bp", "sv"}, func(o *gpu.Options) {
			o.Workers = runtime.GOMAXPROCS(0)
			o.PartWorkers = 1
		})
	})
	b.Run("2kernelCKE-partparallel", func(b *testing.B) {
		runEngineBench(b, []string{"bp", "sv"}, func(o *gpu.Options) {
			o.Workers = 1
			o.PartWorkers = runtime.GOMAXPROCS(0)
		})
	})
	b.Run("2kernelCKE-pipelined", func(b *testing.B) {
		runEngineBench(b, []string{"bp", "sv"}, func(o *gpu.Options) {
			o.Workers = runtime.GOMAXPROCS(0)
			o.PartWorkers = runtime.GOMAXPROCS(0)
		})
	})
}

// engineRate runs the 2kernelCKE workload once with the given fan-outs
// and returns cycles/sec and allocs/cycle.
func engineRate(t *testing.T, workers, partWorkers int, cycles int64) (float64, float64) {
	t.Helper()
	cfg := gcke.ScaledConfig(4)
	var descs []*kern.Desc
	for _, n := range []string{"bp", "sv"} {
		d, err := kern.ByName(n)
		if err != nil {
			t.Fatal(err)
		}
		dd := d
		descs = append(descs, &dd)
	}
	per := make([]int, len(descs))
	for i, d := range descs {
		per[i] = d.MaxTBsPerSM(&cfg) / len(descs)
		if per[i] < 1 {
			per[i] = 1
		}
	}
	opts := &gpu.Options{
		Cycles:      cycles,
		Quota:       gpu.UniformQuota(cfg.NumSMs, per),
		Workers:     workers,
		PartWorkers: partWorkers,
	}
	var ms0, ms1 runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&ms0)
	start := time.Now()
	if _, err := gpu.Run(cfg, descs, opts); err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&ms1)
	return float64(cycles) / elapsed.Seconds(),
		float64(ms1.Mallocs-ms0.Mallocs) / float64(cycles)
}

// TestEngineBenchGate is the CI perf-regression gate (set BENCH_SMOKE=1
// to run it): allocs/cycle on the 2kernelCKE mix must not regress past
// the pooled-engine budget, and on a real multi-core host the pipelined
// engine must beat serial. The speedup assertion is skipped when
// GOMAXPROCS < 4 — with one core the fan-out cannot win, only cost.
func TestEngineBenchGate(t *testing.T) {
	if os.Getenv("BENCH_SMOKE") == "" {
		t.Skip("set BENCH_SMOKE=1 to run the engine perf gate")
	}
	const gateCycles = 40_000
	const allocBudget = 0.30

	_, allocs := engineRate(t, 2, 2, gateCycles)
	t.Logf("workers=2 partWorkers=2: %.4f allocs/cycle (budget %.2f)", allocs, allocBudget)
	if allocs > allocBudget {
		t.Errorf("allocs/cycle = %.4f, budget %.2f: the engine regressed into per-cycle allocation",
			allocs, allocBudget)
	}

	if p := runtime.GOMAXPROCS(0); p < 4 {
		t.Logf("GOMAXPROCS=%d: skipping the speedup assertion (needs >= 4 real cores)", p)
		return
	}
	// Warm once to populate kernel/profile-independent process state,
	// then compare medians-of-one: CI noise is absorbed by the generous
	// 1.2x bar (the multi-core target in results/BENCH_engine.json is
	// 1.5x).
	serial, _ := engineRate(t, 1, 1, gateCycles)
	piped, _ := engineRate(t, 0, 0, gateCycles)
	t.Logf("serial %.0f cycles/sec, pipelined %.0f cycles/sec (%.2fx)", serial, piped, piped/serial)
	if piped < 1.2*serial {
		t.Errorf("pipelined engine %.0f cycles/sec vs serial %.0f: speedup %.2fx < 1.2x on %d cores",
			piped, serial, piped/serial, runtime.GOMAXPROCS(0))
	}
}
