// Engine benchmarks: raw cycle-loop throughput (cycles/sec) and GC
// pressure (allocs/cycle) of the simulator core, measured over gpu.Run
// directly so session/profile overhead does not blur the numbers.
//
// The suite is the perf-regression harness for the cycle engine:
// results/BENCH_engine.json records the pre-parallel-engine baseline;
// CI runs the suite with -benchtime=1x as a smoke test. Run with
//
//	go test -run '^$' -bench BenchmarkSimulatorCycleRate -benchmem
package gcke_test

import (
	"runtime"
	"testing"

	gcke "repro"
	"repro/internal/gpu"
	"repro/internal/kern"
	"repro/internal/trace"
)

const engineBenchCycles = 20_000

// engineWorkload builds descriptors and an even quota for the named
// kernels on a benchCfg-scaled machine.
func engineWorkload(b *testing.B, names ...string) ([]*kern.Desc, [][]int, gcke.Config) {
	b.Helper()
	cfg := gcke.ScaledConfig(4)
	descs := make([]*kern.Desc, len(names))
	for i, n := range names {
		d, err := kern.ByName(n)
		if err != nil {
			b.Fatal(err)
		}
		dd := d
		descs[i] = &dd
	}
	per := make([]int, len(descs))
	for i, d := range descs {
		per[i] = d.MaxTBsPerSM(&cfg) / len(descs)
		if per[i] < 1 {
			per[i] = 1
		}
	}
	return descs, gpu.UniformQuota(cfg.NumSMs, per), cfg
}

// runEngineBench runs the cycle loop b.N times under opts and reports
// cycles/sec and allocs/cycle.
func runEngineBench(b *testing.B, names []string, mutate func(*gpu.Options)) {
	b.Helper()
	descs, quota, cfg := engineWorkload(b, names...)
	var ms0, ms1 runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&ms0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		opts := &gpu.Options{Cycles: engineBenchCycles, Quota: quota}
		if mutate != nil {
			mutate(opts)
		}
		if _, err := gpu.Run(cfg, descs, opts); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	runtime.ReadMemStats(&ms1)
	totalCycles := float64(b.N) * engineBenchCycles
	b.ReportMetric(totalCycles/b.Elapsed().Seconds(), "cycles/sec")
	b.ReportMetric(float64(ms1.Mallocs-ms0.Mallocs)/totalCycles, "allocs/cycle")
}

// BenchmarkSimulatorCycleRate measures raw simulator throughput across
// the engine's main operating points: one kernel, a two-kernel CKE mix,
// and the CKE mix with cycle-level tracing enabled.
func BenchmarkSimulatorCycleRate(b *testing.B) {
	b.Run("1kernel", func(b *testing.B) {
		runEngineBench(b, []string{"bp"}, nil)
	})
	b.Run("2kernelCKE", func(b *testing.B) {
		runEngineBench(b, []string{"bp", "sv"}, nil)
	})
	b.Run("2kernelCKE-trace", func(b *testing.B) {
		runEngineBench(b, []string{"bp", "sv"}, func(o *gpu.Options) {
			o.Trace = trace.New(1 << 14)
		})
	})
	// Intra-run parallelism (per-cycle SM tick fan-out). Speedup needs
	// real cores: on a multi-core machine workers=gomaxprocs should beat
	// serial on the multi-kernel mix; on one core it measures the
	// fan-out overhead instead.
	b.Run("2kernelCKE-serial", func(b *testing.B) {
		runEngineBench(b, []string{"bp", "sv"}, func(o *gpu.Options) {
			o.Workers = 1
		})
	})
	b.Run("2kernelCKE-parallel", func(b *testing.B) {
		runEngineBench(b, []string{"bp", "sv"}, func(o *gpu.Options) {
			o.Workers = runtime.GOMAXPROCS(0)
		})
	})
}
