package gcke

import (
	"testing"
)

// FuzzSchemeValidate drives Scheme.Validate and Scheme.Name over
// arbitrary field combinations — including kinds far outside the defined
// enums and per-kernel slices of every arity — asserting the properties
// drivers rely on when they assemble sweeps from user flags:
//
//   - neither Validate nor Name ever panics;
//   - Validate catches every per-kernel arity mismatch it documents, so
//     a scheme it accepts can never fail an arity check deeper in the
//     engine;
//   - Name always renders something (labels key result tables).
func FuzzSchemeValidate(f *testing.F) {
	f.Add(0, 0, 0, 2, uint8(0), false, false, false, 2)
	f.Add(int(PartitionSMK), int(MemIssueQBMI), int(LimitNone), 2, uint8(1), true, false, false, 2)
	f.Add(int(PartitionManual), 0, int(LimitStatic), 3, uint8(2), false, true, true, 3)
	f.Add(int(PartitionWarpedSlicerDyn), int(MemIssueRBMI), int(LimitL2MIL), 1, uint8(3), false, false, true, -1)
	f.Add(-5, 99, 42, 0, uint8(255), true, true, true, 100)
	f.Fuzz(func(t *testing.T, part, mem, lim, nKernels int, arity uint8,
		smkQuota, ucp, tbt bool, manualLen int) {
		if nKernels < 0 || nKernels > 8 {
			nKernels = 2
		}
		if manualLen < 0 || manualLen > 8 {
			manualLen = nKernels
		}
		// Per-kernel slice arities derived from one fuzzed byte so the
		// fuzzer can explore matched and mismatched combinations.
		staticLen := int(arity % 5)
		bypassLen := int(arity / 5 % 5)
		s := Scheme{
			Partition:          PartitionKind(part),
			MemIssue:           MemIssueKind(mem),
			Limiting:           LimitKind(lim),
			SMKQuota:           smkQuota,
			UCP:                ucp,
			TBThrottle:         tbt,
			QBMIRefreshAllZero: arity%2 == 0,
		}
		if staticLen > 0 {
			s.StaticLimits = make([]int, staticLen)
		}
		if bypassLen > 0 {
			s.BypassL1 = make([]bool, bypassLen)
		}
		if manualLen > 0 {
			s.ManualTBs = make([]int, manualLen)
			for i := range s.ManualTBs {
				s.ManualTBs[i] = 1
			}
		}

		err := s.Validate(nKernels)
		if name := s.Name(); name == "" {
			t.Fatal("Scheme.Name rendered empty")
		}
		if err != nil {
			return
		}
		// Accepted schemes must have consistent per-kernel arities — the
		// engine indexes these slices by kernel without re-checking.
		if s.Limiting == LimitStatic && len(s.StaticLimits) != nKernels {
			t.Fatalf("accepted LimitStatic with %d limits for %d kernels", len(s.StaticLimits), nKernels)
		}
		if s.Partition == PartitionManual && len(s.ManualTBs) != nKernels {
			t.Fatalf("accepted PartitionManual with %d quotas for %d kernels", len(s.ManualTBs), nKernels)
		}
		if s.BypassL1 != nil && len(s.BypassL1) != nKernels {
			t.Fatalf("accepted BypassL1 with %d entries for %d kernels", len(s.BypassL1), nKernels)
		}
		if s.SMKQuota && (s.MemIssue != MemIssueDefault || s.Limiting != LimitNone) {
			t.Fatal("accepted SMKQuota combined with a memory mechanism")
		}
	})
}
